// Minimal CSV writer/reader used by the experiment result cache and for
// exporting figure data for external plotting.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace acgpu {

/// Row-oriented CSV writer with RFC-4180 quoting (fields containing commas,
/// quotes or newlines get quoted; quotes are doubled).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);

  /// Quote a single field per RFC 4180.
  static std::string escape(const std::string& field);

 private:
  std::ostream& out_;
};

/// Parse one CSV line (RFC-4180 quoting). Multi-line quoted fields are not
/// supported — the result cache never produces them.
std::vector<std::string> parse_csv_line(const std::string& line);

}  // namespace acgpu
