#include "util/table.h"

#include <algorithm>
#include <cctype>

namespace acgpu {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

bool Table::looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit_seen = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) digit_seen = true;
    else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' && c != 'x' && c != '%')
      return false;
  }
  return digit_seen;
}

void Table::print(std::ostream& out) const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  if (cols == 0) return;

  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      const bool right = looks_numeric(cell);
      const std::size_t pad = width[c] - cell.size();
      if (c) out << "  ";
      if (right) out << std::string(pad, ' ') << cell;
      else out << cell << std::string(pad, ' ');
    }
    out << '\n';
  };

  if (!header_.empty()) {
    print_row(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < cols; ++c) total += width[c] + (c ? 2 : 0);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) print_row(r);
}

}  // namespace acgpu
