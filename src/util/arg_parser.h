// Tiny command-line flag parser for the examples and bench binaries.
//
// Supports --name=value, --name value, and boolean --name. Unknown flags are
// an error (fail fast rather than silently ignoring a typo). Every binary
// also gets --help for free.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace acgpu {

class ArgParser {
 public:
  /// `summary` is printed at the top of --help output.
  explicit ArgParser(std::string summary) : summary_(std::move(summary)) {}

  /// Register flags before parse(). `help` appears in --help.
  void add_flag(const std::string& name, const std::string& help,
                const std::string& default_value);
  void add_bool_flag(const std::string& name, const std::string& help);

  /// Parse argv. Returns false if --help was requested (help text already
  /// printed to stdout); throws acgpu::Error on unknown/malformed flags.
  bool parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  /// Parses byte-size syntax ("200MB") via parse_bytes.
  std::uint64_t get_bytes(const std::string& name) const;

  /// Non-flag positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string help_text() const;

 private:
  struct Flag {
    std::string help;
    std::string value;
    bool is_bool = false;
    bool seen = false;
  };

  const Flag& find(const std::string& name) const;

  std::string summary_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace acgpu
