// Wall-clock stopwatch over std::chrono::steady_clock.
#pragma once

#include <chrono>
#include <cstdint>

namespace acgpu {

/// Nanoseconds on the process's single monotonic clock
/// (std::chrono::steady_clock). Telemetry span timestamps
/// (telemetry/trace.h) and Stopwatch timings both read this function, so a
/// trace never mixes clock domains with the timings printed next to it.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic stopwatch. Started on construction; restart() re-zeroes it.
class Stopwatch {
 public:
  Stopwatch() : start_(now_ns()) {}

  void restart() { start_ = now_ns(); }

  /// Elapsed seconds since construction or the last restart().
  double seconds() const {
    return static_cast<double>(now_ns() - start_) * 1e-9;
  }

  double millis() const { return seconds() * 1e3; }

  /// Elapsed nanoseconds on the shared monotonic clock.
  std::uint64_t nanos() const { return now_ns() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace acgpu
