// Wall-clock stopwatch over std::chrono::steady_clock.
#pragma once

#include <chrono>

namespace acgpu {

/// Monotonic stopwatch. Started on construction; restart() re-zeroes it.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace acgpu
