// Byte-size and rate formatting/parsing ("200MB", "127.3 Gbps").
//
// The paper reports input sizes in KB/MB and throughput in Gbps (decimal
// gigabits per second); these helpers keep every bench and example consistent
// about the units.
#pragma once

#include <cstdint>
#include <string>

namespace acgpu {

/// 1 KB = 1024 bytes etc. — the paper's "50KB .. 200MB" are binary sizes.
inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

/// Format a byte count compactly: 512 -> "512B", 51200 -> "50KB",
/// 209715200 -> "200MB". Chooses the largest unit that divides cleanly or
/// falls back to one decimal place.
std::string format_bytes(std::uint64_t bytes);

/// Parse "50KB" / "200MB" / "1GB" / "123" (plain bytes). Case-insensitive,
/// optional whitespace before the unit. Throws acgpu::Error on junk.
std::uint64_t parse_bytes(const std::string& text);

/// Throughput in decimal gigabits per second, as the paper reports it:
/// bytes * 8 / seconds / 1e9.
double to_gbps(std::uint64_t bytes, double seconds);

/// Format a Gbps value with sensible precision ("127.3").
std::string format_gbps(double gbps);

/// Format seconds adaptively: "831us", "12.4ms", "3.02s".
std::string format_seconds(double seconds);

}  // namespace acgpu
