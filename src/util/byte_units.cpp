#include "util/byte_units.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/error.h"

namespace acgpu {

std::string format_bytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= kGiB) {
    if (bytes % kGiB == 0)
      std::snprintf(buf, sizeof buf, "%lluGB", static_cast<unsigned long long>(bytes / kGiB));
    else
      std::snprintf(buf, sizeof buf, "%.1fGB", static_cast<double>(bytes) / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    if (bytes % kMiB == 0)
      std::snprintf(buf, sizeof buf, "%lluMB", static_cast<unsigned long long>(bytes / kMiB));
    else
      std::snprintf(buf, sizeof buf, "%.1fMB", static_cast<double>(bytes) / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    if (bytes % kKiB == 0)
      std::snprintf(buf, sizeof buf, "%lluKB", static_cast<unsigned long long>(bytes / kKiB));
    else
      std::snprintf(buf, sizeof buf, "%.1fKB", static_cast<double>(bytes) / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof buf, "%lluB", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::uint64_t parse_bytes(const std::string& text) {
  ACGPU_CHECK(!text.empty(), "parse_bytes: empty string");
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    ACGPU_CHECK(false, "parse_bytes: no number in '" << text << "'");
  }
  ACGPU_CHECK(pos > 0 && value >= 0.0, "parse_bytes: no number in '" << text << "'");
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  std::string unit;
  for (; pos < text.size(); ++pos)
    unit.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(text[pos]))));
  double mult = 1.0;
  if (unit.empty() || unit == "B") {
    mult = 1.0;
  } else if (unit == "K" || unit == "KB" || unit == "KIB") {
    mult = static_cast<double>(kKiB);
  } else if (unit == "M" || unit == "MB" || unit == "MIB") {
    mult = static_cast<double>(kMiB);
  } else if (unit == "G" || unit == "GB" || unit == "GIB") {
    mult = static_cast<double>(kGiB);
  } else {
    ACGPU_CHECK(false, "parse_bytes: unknown unit '" << unit << "' in '" << text << "'");
  }
  return static_cast<std::uint64_t>(std::llround(value * mult));
}

double to_gbps(std::uint64_t bytes, double seconds) {
  ACGPU_CHECK(seconds > 0.0, "to_gbps: non-positive duration " << seconds);
  return static_cast<double>(bytes) * 8.0 / seconds / 1e9;
}

std::string format_gbps(double gbps) {
  char buf[32];
  if (gbps >= 100.0)
    std::snprintf(buf, sizeof buf, "%.0f", gbps);
  else if (gbps >= 1.0)
    std::snprintf(buf, sizeof buf, "%.1f", gbps);
  else
    std::snprintf(buf, sizeof buf, "%.3f", gbps);
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[32];
  if (seconds < 1e-3)
    std::snprintf(buf, sizeof buf, "%.0fus", seconds * 1e6);
  else if (seconds < 1.0)
    std::snprintf(buf, sizeof buf, "%.2fms", seconds * 1e3);
  else
    std::snprintf(buf, sizeof buf, "%.2fs", seconds);
  return buf;
}

}  // namespace acgpu
