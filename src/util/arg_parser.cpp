#include "util/arg_parser.h"

#include <cstdio>
#include <sstream>

#include "util/byte_units.h"
#include "util/error.h"

namespace acgpu {

void ArgParser::add_flag(const std::string& name, const std::string& help,
                         const std::string& default_value) {
  ACGPU_CHECK(!flags_.count(name), "duplicate flag --" << name);
  flags_[name] = Flag{help, default_value, /*is_bool=*/false, /*seen=*/false};
  order_.push_back(name);
}

void ArgParser::add_bool_flag(const std::string& name, const std::string& help) {
  ACGPU_CHECK(!flags_.count(name), "duplicate flag --" << name);
  flags_[name] = Flag{help, "false", /*is_bool=*/true, /*seen=*/false};
  order_.push_back(name);
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    ACGPU_CHECK(it != flags_.end(), "unknown flag --" << name);
    Flag& f = it->second;
    if (f.is_bool) {
      f.value = has_value ? value : "true";
    } else {
      if (!has_value) {
        ACGPU_CHECK(i + 1 < argc, "flag --" << name << " expects a value");
        value = argv[++i];
      }
      f.value = value;
    }
    f.seen = true;
  }
  return true;
}

const ArgParser::Flag& ArgParser::find(const std::string& name) const {
  auto it = flags_.find(name);
  ACGPU_CHECK(it != flags_.end(), "flag --" << name << " was never registered");
  return it->second;
}

std::string ArgParser::get(const std::string& name) const { return find(name).value; }

std::int64_t ArgParser::get_int(const std::string& name) const {
  const std::string& v = find(name).value;
  std::size_t pos = 0;
  const long long out = std::stoll(v, &pos);
  ACGPU_CHECK(pos == v.size(), "flag --" << name << ": '" << v << "' is not an integer");
  return out;
}

double ArgParser::get_double(const std::string& name) const {
  const std::string& v = find(name).value;
  std::size_t pos = 0;
  const double out = std::stod(v, &pos);
  ACGPU_CHECK(pos == v.size(), "flag --" << name << ": '" << v << "' is not a number");
  return out;
}

bool ArgParser::get_bool(const std::string& name) const {
  const std::string& v = find(name).value;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  ACGPU_CHECK(false, "flag --" << name << ": '" << v << "' is not a boolean");
  return false;
}

std::uint64_t ArgParser::get_bytes(const std::string& name) const {
  return parse_bytes(find(name).value);
}

std::string ArgParser::help_text() const {
  std::ostringstream os;
  os << summary_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name;
    if (!f.is_bool) os << "=<" << (f.value.empty() ? "value" : f.value) << ">";
    os << "\n      " << f.help << "\n";
  }
  os << "  --help\n      Show this message.\n";
  return os.str();
}

}  // namespace acgpu
