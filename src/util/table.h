// Console table printer. The figure benches print the same rows/series the
// paper plots; this keeps them aligned and readable in a terminal.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace acgpu {

/// Accumulates rows of string cells and prints them with per-column widths.
/// First row added via set_header() is separated by a rule. Numeric-looking
/// cells are right-aligned, text cells left-aligned.
class Table {
 public:
  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  std::size_t row_count() const { return rows_.size(); }

  void print(std::ostream& out) const;

 private:
  static bool looks_numeric(const std::string& s);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace acgpu
