#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace acgpu {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Samples::mean() const {
  ACGPU_CHECK(!xs_.empty(), "mean of empty sample set");
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Samples::min() const {
  ACGPU_CHECK(!xs_.empty(), "min of empty sample set");
  return *std::min_element(xs_.begin(), xs_.end());
}

double Samples::max() const {
  ACGPU_CHECK(!xs_.empty(), "max of empty sample set");
  return *std::max_element(xs_.begin(), xs_.end());
}

double Samples::percentile(double p) const {
  ACGPU_CHECK(!xs_.empty(), "percentile of empty sample set");
  ACGPU_CHECK(p >= 0.0 && p <= 100.0, "percentile must be in [0,100], got " << p);
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace acgpu
