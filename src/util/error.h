// Error handling helpers.
//
// Two complementary mechanisms:
//  - acgpu::Error (+ ACGPU_CHECK) for programmer errors and unrecoverable
//    precondition violations — throw, fail loudly.
//  - Status / Result<T> for expected, reportable failures at API boundaries
//    (Engine configuration, matcher adapters, pipeline submission). These
//    carry a StatusCode + message instead of unwinding, so harnesses like
//    the conformance sweep can report structured failures rather than
//    aborting the run.
#pragma once

#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace acgpu {

/// Exception type thrown by every acgpu component.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Failure classification for Status/Result. Deliberately small: callers
/// branch on "which kind of wrong", not on every possible cause.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something the API rejects
  kCapacityExceeded,  ///< fixed buffer/queue/device budget too small
  kOverloaded,        ///< transient backpressure: retry after the queue drains
  kUnavailable,       ///< target device/shard is marked failed or draining
  kInternal,          ///< invariant broke inside the library
};

inline const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kCapacityExceeded: return "capacity_exceeded";
    case StatusCode::kOverloaded: return "overloaded";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kInternal: return "internal";
  }
  return "?";
}

/// Value-semantic success/failure: cheap to copy, truthy when ok.
/// [[nodiscard]]: a dropped Status is a swallowed failure — callers must
/// branch on it, propagate it, or cast it away explicitly.
class [[nodiscard]] Status {
 public:
  Status() = default;  // ok
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status invalid_argument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status capacity_exceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  /// Admission control said no for now (bounded queue full); unlike
  /// kCapacityExceeded this is transient — retry once the consumer catches
  /// up. The streaming session service (serve/) is the main producer.
  static Status overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  /// The target device or shard is failed/draining (cluster tier). Unlike
  /// kOverloaded, retrying the SAME target will not help — route elsewhere
  /// or restore the device first.
  static Status unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Wraps an in-flight exception (acgpu::Error and friends) into a Status —
  /// how adapter seams convert the throwing core to the reporting boundary.
  static Status from_exception(const std::exception& e,
                               StatusCode code = StatusCode::kInternal) {
    return Status(code, e.what());
  }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return is_ok(); }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  /// "ok" or "invalid_argument: why" — for logs and reports.
  std::string to_string() const {
    if (is_ok()) return "ok";
    std::string out = ::acgpu::to_string(code_);
    if (!message_.empty()) out += ": " + message_;
    return out;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A Status that carries a T on success. No exceptions cross a Result
/// boundary: either `ok()` and `value()` is live, or `status()` explains.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (status_.is_ok())
      status_ = Status::internal("Result constructed from an ok Status without a value");
  }

  bool is_ok() const { return status_.is_ok(); }
  explicit operator bool() const { return is_ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    require_ok();
    return *value_;
  }
  const T& value() const& {
    require_ok();
    return *value_;
  }
  T&& value() && {
    require_ok();
    return *std::move(value_);
  }

 private:
  void require_ok() const {
    if (!is_ok()) throw Error("Result::value on failed result: " + status_.to_string());
  }

  Status status_;
  std::optional<T> value_;
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace acgpu

/// Precondition guard: throws acgpu::Error when `expr` is false.
/// Usage: ACGPU_CHECK(n > 0, "pattern count must be positive, got " << n);
#define ACGPU_CHECK(expr, msg_stream)                                       \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream acgpu_check_os_;                                   \
      acgpu_check_os_ << msg_stream;                                        \
      ::acgpu::detail::throw_check_failure(#expr, __FILE__, __LINE__,       \
                                           acgpu_check_os_.str());          \
    }                                                                       \
  } while (false)
