// Error handling helpers.
//
// The library throws acgpu::Error for all recoverable failures (bad
// arguments, malformed input files, capacity violations). ACGPU_CHECK is the
// canonical precondition guard: always on (not assert-style), cheap to use,
// and carries the failing expression plus a formatted message.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace acgpu {

/// Exception type thrown by every acgpu component.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace acgpu

/// Precondition guard: throws acgpu::Error when `expr` is false.
/// Usage: ACGPU_CHECK(n > 0, "pattern count must be positive, got " << n);
#define ACGPU_CHECK(expr, msg_stream)                                       \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream acgpu_check_os_;                                   \
      acgpu_check_os_ << msg_stream;                                        \
      ::acgpu::detail::throw_check_failure(#expr, __FILE__, __LINE__,       \
                                           acgpu_check_os_.str());          \
    }                                                                       \
  } while (false)
