#include "util/csv.h"

#include "util/error.h"

namespace acgpu {

std::string CsvWriter::escape(const std::string& field) {
  bool needs_quote = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      cur.push_back(c);
    }
  }
  ACGPU_CHECK(!in_quotes, "parse_csv_line: unterminated quote in '" << line << "'");
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace acgpu
