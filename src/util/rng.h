// Deterministic pseudo-random number generation.
//
// All workload generation in this repo is seeded and reproducible. We use
// SplitMix64 for seeding/state expansion and xoshiro256** as the workhorse
// generator (fast, high quality, trivially copyable — suitable for storing
// one generator per simulated entity without heap traffic).
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.h"

namespace acgpu {

/// SplitMix64: tiny generator used to expand a single 64-bit seed into
/// well-distributed state words (the canonical seeding procedure for
/// xoshiro-family generators).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the repo-wide PRNG. Satisfies UniformRandomBitGenerator so
/// it composes with <random> distributions, but we provide the handful of
/// draws the codebase needs directly to keep hot loops allocation- and
/// branch-light.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction;
  /// the slight modulo bias is below 2^-32 for every bound this repo uses.
  std::uint64_t next_below(std::uint64_t bound) {
    ACGPU_CHECK(bound > 0, "next_below requires a positive bound");
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    ACGPU_CHECK(lo <= hi, "next_in requires lo <= hi, got " << lo << ".." << hi);
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p of returning true.
  bool next_bool(double p) { return next_double() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// Derive a child seed from a parent seed and a stream index, so independent
/// components (corpus, patterns, sampler, ...) get decorrelated streams.
std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream);

}  // namespace acgpu
