// Streaming summary statistics and simple sample containers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace acgpu {

/// Streaming accumulator: count/mean/variance via Welford, plus min/max/sum.
/// O(1) memory; suitable for per-cycle simulator counters.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retaining sample set with percentile queries; used by benches that want
/// median/p95 over repeated runs.
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  std::size_t count() const { return xs_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  /// Percentile in [0,100] by linear interpolation; requires >=1 sample.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

 private:
  std::vector<double> xs_;
};

}  // namespace acgpu
