#include "util/rng.h"

namespace acgpu {

std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream) {
  // Feed both words through SplitMix64 twice; this is the standard trick for
  // building decorrelated streams out of one master seed.
  SplitMix64 sm(parent ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  sm.next();
  return sm.next();
}

}  // namespace acgpu
