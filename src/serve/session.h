// One live traffic stream inside the streaming session service (serve/).
//
// The paper's kernels — and the batched pipeline built on them — assume the
// whole input is resident and catch boundary-spanning matches with an
// X-byte overlap re-scan. A served stream cannot do that: data arrives in
// chunks, a pattern may straddle arbitrarily many chunk boundaries, and the
// previous chunk's bytes are gone by the time the next one arrives. A
// Session therefore carries just enough *state* across feed() calls to make
// chunked scanning exact without re-scanning history:
//
//  - kDfaState (AC-DFA engine variants): the carried DFA state is, by
//    construction, the longest suffix of everything fed so far that is a
//    prefix of some pattern. Advancing it over the first X-1 bytes of a new
//    chunk discovers every match that *spans* into the chunk (start before
//    the chunk, end inside it); matches wholly inside the chunk are the bulk
//    scanner's job. Because that suffix is at most X bytes long, the state
//    after a long chunk can be recomputed from the chunk's last X bytes
//    alone — host work per feed is O(X), independent of chunk size.
//
//  - kPfacTail (failureless/PFAC engine variant): PFAC has no carried state
//    to resume — an instance is rooted at every start position — so the
//    session instead keeps a bounded tail buffer of the last X-1 bytes of
//    history and roots boundary instances at each tail position, keeping
//    only matches that end inside the new chunk.
//
// Either way a boundary match is discovered exactly once, at the feed that
// completes it, with a global (stream-absolute) byte offset — and the bulk
// scanner never needs bytes from more than one chunk.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ac/dfa.h"
#include "ac/match.h"
#include "ac/pfac.h"
#include "util/error.h"

namespace acgpu::serve {

/// Deterministic session identity: the manager hands them out starting at 1
/// in open() order and never reuses one.
using SessionId = std::uint64_t;

/// How a session bridges chunk boundaries (picked from the engine variant).
enum class BoundaryMode : std::uint8_t { kDfaState, kPfacTail };

const char* to_string(BoundaryMode mode);

/// Per-session quotas; 0 = unlimited.
struct SessionLimits {
  /// Total bytes a session may feed; further feeds fail kCapacityExceeded.
  std::uint64_t max_bytes = 0;
  /// Matches retained per session; beyond it matches are dropped and the
  /// session is marked truncated (the stats record how many).
  std::uint64_t max_matches = 0;
};

struct SessionStats {
  std::uint64_t bytes_fed = 0;
  std::uint64_t chunks_fed = 0;
  std::uint64_t matches_delivered = 0;  ///< retained (includes polled ones)
  std::uint64_t spanning_matches = 0;   ///< found by the boundary continuation
  std::uint64_t matches_dropped = 0;    ///< lost to the match quota
  bool truncated = false;               ///< match quota was hit at least once
};

/// A session's full portable state: everything needed to continue the
/// stream on ANOTHER service/device with identical results. The cluster
/// tier's rebalance protocol is export_session() on the failed shard ->
/// import_session() on a healthy one; because the carried state is O(max
/// pattern length) and the buffered matches are whatever the client has not
/// polled yet, a snapshot is small no matter how many bytes were fed.
struct SessionSnapshot {
  SessionId id = 0;
  BoundaryMode mode = BoundaryMode::kDfaState;
  std::int32_t dfa_state = 0;  ///< kDfaState carried state
  std::string tail;            ///< kPfacTail carried history
  SessionLimits limits;
  SessionStats stats;               ///< bytes_fed continues global offsets
  std::vector<ac::Match> matches;   ///< buffered, not yet polled
};

class Session {
 public:
  /// `dfa` must outlive the session; `pfac` is required (and used) only in
  /// kPfacTail mode.
  Session(SessionId id, const ac::Dfa& dfa, const ac::PfacAutomaton* pfac,
          BoundaryMode mode, const SessionLimits& limits);

  /// Restores a migrated session from its snapshot (same id, carried state,
  /// stats, and buffered matches). The snapshot's mode must match the
  /// automata handed in, exactly as for the fresh constructor.
  Session(const SessionSnapshot& snapshot, const ac::Dfa& dfa,
          const ac::PfacAutomaton* pfac);

  /// Portable copy of the session's state (see SessionSnapshot). Leaves the
  /// session untouched; the caller (StreamService::export_session) closes
  /// it afterwards so exactly one home exists per stream.
  SessionSnapshot snapshot() const;

  SessionId id() const { return id_; }
  BoundaryMode mode() const { return mode_; }

  /// Quota admission for `n` more bytes; checked before any state mutates.
  Status admit_bytes(std::uint64_t n) const;

  /// Boundary continuation for the next chunk: emits every match spanning
  /// into `chunk` (global start before the chunk's first byte) into the
  /// delivery buffer, advances the carried state / tail buffer, and bumps
  /// the global offset. Must be called exactly once per fed chunk, in feed
  /// order, *before* the chunk's bulk matches are delivered.
  void begin_chunk(std::string_view chunk);

  /// Delivery from the bulk scanner: `m.end` is a global byte offset. The
  /// match quota is applied here (spanning matches pass through too).
  /// Returns false when the quota dropped the match.
  bool deliver(ac::Match m);

  /// Global offset of the next byte to be fed.
  std::uint64_t bytes_fed() const { return stats_.bytes_fed; }

  /// Hands the buffered matches to the caller (poll). Order is discovery
  /// order, which interleaves boundary and bulk deliveries — normalize with
  /// ac::normalize_matches before comparing against a batch scan.
  std::vector<ac::Match> take_matches();
  std::size_t buffered() const { return matches_.size(); }

  const SessionStats& stats() const { return stats_; }

  /// Carried automaton context — exposed for tests and debugging.
  std::int32_t dfa_state() const { return state_; }
  std::string_view tail() const { return tail_; }

 private:
  void deliver_spanning(std::uint64_t global_end, std::int32_t pattern);
  void begin_chunk_dfa(std::string_view chunk);
  void begin_chunk_pfac(std::string_view chunk);

  SessionId id_ = 0;
  const ac::Dfa* dfa_ = nullptr;
  const ac::PfacAutomaton* pfac_ = nullptr;
  BoundaryMode mode_ = BoundaryMode::kDfaState;
  SessionLimits limits_;

  std::int32_t state_ = 0;  ///< kDfaState: carried DFA state (0 = root)
  std::string tail_;        ///< kPfacTail: last X-1 bytes of history

  std::vector<ac::Match> matches_;  ///< delivered, awaiting poll
  SessionStats stats_;
};

}  // namespace acgpu::serve
