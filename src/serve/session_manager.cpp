#include "serve/session_manager.h"

#include <mutex>

namespace acgpu::serve {

SessionManager::SessionManager(std::uint32_t capacity, std::uint64_t id_namespace)
    : capacity_(capacity), next_id_(id_namespace + 1) {
  ACGPU_CHECK(capacity_ >= 1, "SessionManager capacity must be >= 1, got " << capacity);
}

Session& SessionManager::insert_locked(SessionId id, Session session,
                                       std::optional<SessionId>* evicted) {
  if (evicted != nullptr) evicted->reset();
  if (sessions_.size() >= capacity_) {
    const SessionId victim = lru_.back();
    lru_.pop_back();
    sessions_.erase(victim);
    ++evicted_;
    if (evicted != nullptr) *evicted = victim;
  }
  ++opened_;
  lru_.push_front(id);
  auto [it, inserted] = sessions_.try_emplace(
      id, Entry{std::move(session), lru_.begin()});
  ACGPU_CHECK(inserted, "session id " << id << " already live");
  return it->second.session;
}

Session& SessionManager::open(const ac::Dfa& dfa, const ac::PfacAutomaton* pfac,
                              BoundaryMode mode, const SessionLimits& limits,
                              std::optional<SessionId>* evicted) {
  std::scoped_lock lock(mu_);
  const SessionId id = next_id_++;
  return insert_locked(id, Session(id, dfa, pfac, mode, limits), evicted);
}

Session& SessionManager::adopt(const SessionSnapshot& snapshot, const ac::Dfa& dfa,
                               const ac::PfacAutomaton* pfac,
                               std::optional<SessionId>* evicted) {
  std::scoped_lock lock(mu_);
  return insert_locked(snapshot.id, Session(snapshot, dfa, pfac), evicted);
}

Session* SessionManager::touch(SessionId id) {
  std::scoped_lock lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  it->second.lru_pos = lru_.begin();
  return &it->second.session;
}

Session* SessionManager::find(SessionId id) {
  std::scoped_lock lock(mu_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second.session;
}

bool SessionManager::close(SessionId id) {
  std::scoped_lock lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  lru_.erase(it->second.lru_pos);
  sessions_.erase(it);
  return true;
}

std::vector<SessionId> SessionManager::ids_by_recency() const {
  return {lru_.begin(), lru_.end()};
}

}  // namespace acgpu::serve
