#include "serve/service.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>

#include "telemetry/flight_recorder.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/trace.h"
#include "util/stopwatch.h"

namespace acgpu::serve {

const char* to_string(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kDefault: return "default";
    case AdmissionPolicy::kAutoFlush: return "auto-flush";
    case AdmissionPolicy::kReject: return "reject";
  }
  return "?";
}

Status ServeOptions::validate() const {
  if (max_sessions == 0)
    return Status::invalid_argument("max_sessions must be >= 1");
  SchedulerOptions so;
  so.max_queue_bytes = max_queue_bytes;
  so.max_queue_chunks = max_queue_chunks;
  so.coalesce_bytes = coalesce_bytes;
  if (Status s = so.validate(); !s) return s;
  if (background && admission == AdmissionPolicy::kAutoFlush)
    return Status::invalid_argument(
        "AdmissionPolicy::kAutoFlush is synchronous-only; background mode "
        "must reject (the worker owns the engine)");
  return Status::ok();
}

namespace {

/// serve.* series handles, resolved once (registry references are stable).
struct MetricHandles {
  telemetry::Counter* opened = nullptr;
  telemetry::Counter* closed = nullptr;
  telemetry::Counter* evicted = nullptr;
  telemetry::Counter* feeds_accepted = nullptr;
  telemetry::Counter* feeds_rejected = nullptr;
  telemetry::Counter* quota_rejects = nullptr;
  telemetry::Counter* feed_bytes = nullptr;
  telemetry::Counter* batches = nullptr;
  telemetry::Counter* host_fallbacks = nullptr;
  telemetry::Counter* matches_delivered = nullptr;
  telemetry::Counter* matches_spanning = nullptr;
  telemetry::Counter* matches_dropped_quota = nullptr;
  telemetry::Counter* matches_dropped_closed = nullptr;
  telemetry::Counter* drains = nullptr;
  telemetry::Gauge* live = nullptr;
  telemetry::Gauge* queue_depth_chunks = nullptr;
  telemetry::Gauge* queue_depth_bytes = nullptr;
  telemetry::Gauge* queue_max_depth = nullptr;
  telemetry::Histogram* feed_latency = nullptr;
  telemetry::Histogram* batch_bytes = nullptr;
  telemetry::Histogram* batch_chunks = nullptr;
  telemetry::Histogram* batch_scan_ns = nullptr;

  telemetry::Counter* exported = nullptr;
  telemetry::Counter* imported = nullptr;

  void resolve(telemetry::MetricsRegistry& reg, const std::string& prefix) {
    const auto name = [&](const char* series) { return prefix + series; };
    opened = &reg.counter(name("serve.sessions.opened"));
    closed = &reg.counter(name("serve.sessions.closed"));
    evicted = &reg.counter(name("serve.sessions.evicted"));
    exported = &reg.counter(name("serve.sessions.exported"));
    imported = &reg.counter(name("serve.sessions.imported"));
    feeds_accepted = &reg.counter(name("serve.feeds.accepted"));
    feeds_rejected = &reg.counter(name("serve.feeds.rejected"));
    quota_rejects = &reg.counter(name("serve.feeds.quota_rejected"));
    feed_bytes = &reg.counter(name("serve.feed.bytes"));
    batches = &reg.counter(name("serve.batches"));
    host_fallbacks = &reg.counter(name("serve.scan.host_fallbacks"));
    matches_delivered = &reg.counter(name("serve.matches.delivered"));
    matches_spanning = &reg.counter(name("serve.matches.spanning"));
    matches_dropped_quota = &reg.counter(name("serve.matches.dropped_quota"));
    matches_dropped_closed = &reg.counter(name("serve.matches.dropped_closed"));
    drains = &reg.counter(name("serve.drains"));
    live = &reg.gauge(name("serve.sessions.live"));
    queue_depth_chunks = &reg.gauge(name("serve.queue.depth_chunks"));
    queue_depth_bytes = &reg.gauge(name("serve.queue.depth_bytes"));
    queue_max_depth = &reg.gauge(name("serve.queue.max_depth_chunks"));
    feed_latency = &reg.histogram(name("serve.feed.latency_ns"));
    batch_bytes = &reg.histogram(name("serve.batch.bytes"));
    batch_chunks = &reg.histogram(name("serve.batch.chunks"));
    batch_scan_ns = &reg.histogram(name("serve.batch.scan_ns"));
  }
};

}  // namespace

struct StreamService::Impl {
  ServeOptions options;
  /// Private device when ServeOptions::device is null (sized by the
  /// engine options' gpu/device_memory_bytes). Declared before `engine`
  /// so the engine is destroyed first.
  std::unique_ptr<Device> owned_device;
  Engine engine;
  /// kPfacTail boundary automaton (kPfac variant only).
  std::unique_ptr<ac::PfacAutomaton> pfac;
  BoundaryMode boundary = BoundaryMode::kDfaState;

  /// TrackedMutex so hostcheck can audit lock order; with no observer
  /// attached it is one branch over a plain mutex. The condition variables
  /// are _any so they drive the wrapper unchanged.
  mutable gpusim::TrackedMutex mu{"serve.mu"};
  std::condition_variable_any cv_work;  ///< worker: queue gained work / stopping
  std::condition_variable_any cv_idle;  ///< drain(): queue empty and not in flight
  SessionManager manager;
  Scheduler scheduler;
  ServiceStats stats;
  MetricHandles m;
  bool has_metrics = false;

  bool accepting = true;   ///< false after shutdown() begins
  bool stopping = false;   ///< worker exit signal
  bool in_flight = false;  ///< a batch is being scanned right now
  std::thread worker;

  Impl(ServeOptions opts, std::unique_ptr<Device> dev, Engine eng,
       std::unique_ptr<ac::PfacAutomaton> pf)
      : options(std::move(opts)),
        owned_device(std::move(dev)),
        engine(std::move(eng)),
        pfac(std::move(pf)),
        boundary(options.engine.variant == pipeline::KernelVariant::kPfac
                     ? BoundaryMode::kPfacTail
                     : BoundaryMode::kDfaState),
        manager(options.max_sessions, options.session_id_namespace),
        scheduler([&] {
          SchedulerOptions so;
          so.max_queue_bytes = options.max_queue_bytes;
          so.max_queue_chunks = options.max_queue_chunks;
          so.coalesce_bytes = options.coalesce_bytes;
          return so;
        }()) {
    if (options.admission == AdmissionPolicy::kDefault)
      options.admission = options.background ? AdmissionPolicy::kReject
                                             : AdmissionPolicy::kAutoFlush;
    if (options.host_observer != nullptr) {
      // Attach before the worker exists: TrackedMutex::attach is not safe
      // against a concurrent lock().
      mu.attach(options.host_observer);
      manager.attach_observer(options.host_observer);
      scheduler.attach_observer(options.host_observer);
    }
    if (options.metrics != nullptr) {
      m.resolve(*options.metrics, options.metrics_prefix);
      has_metrics = true;
    }
    if (options.background) worker = std::thread([this] { worker_loop(); });
  }

  ~Impl() { shutdown(); }

  void publish_queue_locked() {
    stats.queued_chunks = scheduler.queued_chunks();
    stats.queued_bytes = scheduler.queued_bytes();
    stats.max_queue_depth_chunks =
        std::max<std::uint64_t>(stats.max_queue_depth_chunks, stats.queued_chunks);
    if (!has_metrics) return;
    m.queue_depth_chunks->set(static_cast<double>(stats.queued_chunks));
    m.queue_depth_bytes->set(static_cast<double>(stats.queued_bytes));
    m.queue_max_depth->set_max(static_cast<double>(stats.queued_chunks));
  }

  /// Scans `batch` and delivers its matches. Caller holds `lk` (locked);
  /// in background mode the lock is dropped around the engine scan so
  /// feeds/polls proceed while the device is busy.
  void scan_and_dispatch(std::unique_lock<gpusim::TrackedMutex>& lk, CoalescedBatch batch) {
    in_flight = true;
    publish_queue_locked();
    const std::uint64_t batch_len = batch.text.size();
    const std::size_t chunk_count = batch.spans.size();

    // The superbatch span opens on the scanning thread (the worker in
    // background mode) so the engine.scan -> pipeline.run -> kernel.simulate
    // spans nest under it. A superbatch coalesces many requests, so the span
    // carries the LIST of member trace ids — the cross-batch links that let
    // one Perfetto search join a request's router.feed to the batch that
    // served it.
    telemetry::Span superbatch(options.tracer, "serve.superbatch");
    if (options.tracer != nullptr) {
      std::vector<std::uint64_t> ids;
      std::vector<SessionId> sessions;
      for (const ChunkSpan& cs : batch.spans) {
        if (cs.trace.valid()) ids.push_back(cs.trace.trace_id);
        sessions.push_back(cs.session);
      }
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      std::sort(sessions.begin(), sessions.end());
      sessions.erase(std::unique(sessions.begin(), sessions.end()),
                     sessions.end());
      std::string joined;
      for (std::uint64_t tid : ids) {
        if (!joined.empty()) joined += ",";
        joined += telemetry::trace_id_string(tid);
      }
      superbatch.annotate("trace_ids", joined);
      superbatch.annotate("sessions", std::to_string(sessions.size()));
      superbatch.annotate("chunks", std::to_string(chunk_count));
      superbatch.annotate("bytes", std::to_string(batch_len));
    }

    BatchScan scan;
    Stopwatch clock;
    if (options.background) {
      lk.unlock();
      scan = scan_batch(engine, engine.dfa(), batch, options.dispatcher);
      lk.lock();
    } else {
      scan = scan_batch(engine, engine.dfa(), batch, options.dispatcher);
    }
    const std::uint64_t scan_ns = clock.nanos();

    ++stats.batches;
    stats.sim_scan_seconds += scan.makespan_seconds;
    if (scan.host_fallback) ++stats.host_fallbacks;
    std::uint64_t delivered = 0, dropped_quota = 0, dropped_closed = 0;
    for (const BatchScan::Delivery& d : scan.matches) {
      Session* s = manager.find(d.session);
      if (s == nullptr) {
        ++dropped_closed;  // closed or evicted while the batch was queued
        continue;
      }
      if (s->deliver(d.match))
        ++delivered;
      else
        ++dropped_quota;
    }
    stats.matches_delivered += delivered;
    stats.matches_dropped_closed += dropped_closed;
    in_flight = false;
    publish_queue_locked();
    if (has_metrics) {
      m.batches->add(1);
      if (scan.host_fallback) m.host_fallbacks->add(1);
      m.matches_delivered->add(delivered);
      if (dropped_quota > 0) m.matches_dropped_quota->add(dropped_quota);
      if (dropped_closed > 0) m.matches_dropped_closed->add(dropped_closed);
      m.batch_bytes->observe(static_cast<double>(batch_len));
      m.batch_chunks->observe(static_cast<double>(chunk_count));
      m.batch_scan_ns->observe(static_cast<double>(scan_ns));
    }
    cv_idle.notify_all();
  }

  /// Synchronous flush of one superbatch. Caller holds `lk`.
  void flush_one_locked(std::unique_lock<gpusim::TrackedMutex>& lk) {
    if (!scheduler.has_work()) return;
    scan_and_dispatch(lk, scheduler.take_batch());
  }

  void worker_loop() {
    std::unique_lock<gpusim::TrackedMutex> lk(mu);
    for (;;) {
      cv_work.wait(lk, [&] { return stopping || scheduler.has_work(); });
      if (!scheduler.has_work()) {
        if (stopping) return;
        continue;
      }
      scan_and_dispatch(lk, scheduler.take_batch());
    }
  }

  void shutdown() {
    {
      std::unique_lock<gpusim::TrackedMutex> lk(mu);
      if (!accepting && !worker.joinable()) return;  // already shut down
      accepting = false;
      if (!options.background)
        while (scheduler.has_work()) flush_one_locked(lk);
      stopping = true;
    }
    cv_work.notify_all();
    if (worker.joinable()) worker.join();  // worker drains the queue first
  }
};

StreamService::StreamService(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
StreamService::StreamService(StreamService&&) noexcept = default;

StreamService& StreamService::operator=(StreamService&& other) noexcept {
  if (this != &other) {
    if (impl_) impl_->shutdown();
    impl_ = std::move(other.impl_);
  }
  return *this;
}

StreamService::~StreamService() {
  if (impl_) impl_->shutdown();
}

namespace {

/// The service-level hostcheck hook covers the engine too, unless the
/// caller wired the engine to a different observer explicitly.
ServeOptions with_forwarded_observer(const ServeOptions& options) {
  ServeOptions opts = options;
  if (opts.host_observer != nullptr && opts.engine.host_observer == nullptr)
    opts.engine.host_observer = opts.host_observer;
  return opts;
}

/// Resolves the device the service's engine binds to: the caller's shared
/// Device, or a private one sized by the engine options' gpu/memory fields.
/// On success `*device` points at the live device (owned or not).
Status resolve_device(const ServeOptions& opts,
                      std::unique_ptr<Device>& owned, Device** device) {
  *device = opts.device;
  if (*device != nullptr) return Status::ok();
  DeviceOptions dopt;
  dopt.gpu = opts.engine.gpu;
  dopt.memory_bytes = opts.engine.device_memory_bytes;
  dopt.host_observer = opts.engine.host_observer;
  Result<Device> dev = Device::create(dopt);
  if (!dev.is_ok()) return dev.status();
  owned = std::make_unique<Device>(std::move(dev.value()));
  *device = owned.get();
  return Status::ok();
}

}  // namespace

Result<StreamService> StreamService::create(const ac::PatternSet& patterns,
                                            const ServeOptions& options) {
  if (Status s = options.validate(); !s) return s;
  const ServeOptions opts = with_forwarded_observer(options);
  std::unique_ptr<Device> owned;
  Device* device = nullptr;
  if (Status s = resolve_device(opts, owned, &device); !s) return s;
  Result<Engine> engine = Engine::create(*device, patterns, opts.engine);
  if (!engine.is_ok()) return engine.status();
  std::unique_ptr<ac::PfacAutomaton> pfac;
  if (opts.engine.variant == pipeline::KernelVariant::kPfac) {
    try {
      pfac = std::make_unique<ac::PfacAutomaton>(patterns);
    } catch (const std::exception& e) {
      return Status::from_exception(e);
    }
  }
  return StreamService(std::make_unique<Impl>(opts, std::move(owned),
                                              std::move(engine).value(),
                                              std::move(pfac)));
}

Result<StreamService> StreamService::create(ac::Dfa dfa,
                                            const ServeOptions& options) {
  if (Status s = options.validate(); !s) return s;
  const ServeOptions opts = with_forwarded_observer(options);
  std::unique_ptr<Device> owned;
  Device* device = nullptr;
  if (Status s = resolve_device(opts, owned, &device); !s) return s;
  Result<Engine> engine =
      Engine::create(*device, std::move(dfa), opts.engine);
  if (!engine.is_ok()) return engine.status();
  return StreamService(std::make_unique<Impl>(
      opts, std::move(owned), std::move(engine).value(), nullptr));
}

Result<SessionId> StreamService::open() {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  if (!im.accepting)
    return Status::invalid_argument("StreamService is shut down");
  std::optional<SessionId> evicted;
  Session& s = im.manager.open(im.engine.dfa(), im.pfac.get(), im.boundary,
                               im.options.session_limits, &evicted);
  ++im.stats.sessions_opened;
  im.stats.sessions_live = im.manager.live();
  if (evicted.has_value()) {
    ++im.stats.sessions_evicted;
    im.scheduler.forget(*evicted);
    im.publish_queue_locked();
    if (im.options.recorder != nullptr)
      im.options.recorder->record(telemetry::FlightEventKind::kEviction,
                                  im.options.shard, *evicted);
  }
  if (im.has_metrics) {
    im.m.opened->add(1);
    if (evicted.has_value()) im.m.evicted->add(1);
    im.m.live->set(static_cast<double>(im.manager.live()));
  }
  return s.id();
}

Status StreamService::feed(SessionId id, std::string_view chunk,
                           telemetry::TraceContext trace) {
  Impl& im = *impl_;
  Stopwatch clock;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  if (!im.accepting)
    return Status::invalid_argument("StreamService is shut down");
  Session* s = im.manager.touch(id);
  if (s == nullptr)
    return Status::invalid_argument("unknown session id " + std::to_string(id) +
                                    " (never opened, closed, or evicted)");
  if (Status quota = s->admit_bytes(chunk.size()); !quota) {
    ++im.stats.quota_rejects;
    if (im.has_metrics) im.m.quota_rejects->add(1);
    if (im.options.recorder != nullptr)
      im.options.recorder->record(telemetry::FlightEventKind::kReject,
                                  im.options.shard, id, chunk.size(),
                                  static_cast<std::uint32_t>(quota.code()));
    return quota;
  }
  if (!chunk.empty()) {
    Status admit = im.scheduler.admission(chunk.size());
    if (!admit && im.options.admission == AdmissionPolicy::kAutoFlush) {
      // Make room by scanning inline; each flush frees at least one chunk,
      // and an oversized chunk is admissible once the queue is empty.
      while (!admit && im.scheduler.has_work()) {
        im.flush_one_locked(lk);
        admit = im.scheduler.admission(chunk.size());
      }
    }
    if (!admit) {
      ++im.stats.feeds_rejected;
      if (im.has_metrics) im.m.feeds_rejected->add(1);
      if (im.options.recorder != nullptr)
        im.options.recorder->record(telemetry::FlightEventKind::kReject,
                                    im.options.shard, id, chunk.size(),
                                    static_cast<std::uint32_t>(admit.code()));
      return admit;
    }
  }

  const SessionStats before = s->stats();
  s->begin_chunk(chunk);  // spanning matches + carried state, O(max pattern)
  const SessionStats& after = s->stats();
  const std::uint64_t spanned = after.spanning_matches - before.spanning_matches;
  const std::uint64_t delivered = after.matches_delivered - before.matches_delivered;
  const std::uint64_t dropped = after.matches_dropped - before.matches_dropped;
  im.stats.spanning_matches += spanned;
  im.stats.matches_delivered += delivered;
  ++im.stats.feeds_accepted;
  im.stats.bytes_accepted += chunk.size();

  if (!chunk.empty()) {
    Status admitted = im.scheduler.admit(PendingChunk{
        id, after.bytes_fed - chunk.size(), std::string(chunk), trace});
    ACGPU_CHECK(admitted.is_ok(),
                "admission re-check failed after acceptance: " << admitted.to_string());
    im.publish_queue_locked();
  }
  if (im.options.recorder != nullptr)
    im.options.recorder->record(telemetry::FlightEventKind::kAdmission,
                                im.options.shard, id, chunk.size());
  if (im.has_metrics) {
    im.m.feeds_accepted->add(1);
    im.m.feed_bytes->add(chunk.size());
    if (spanned > 0) im.m.matches_spanning->add(spanned);
    if (delivered > 0) im.m.matches_delivered->add(delivered);
    if (dropped > 0) im.m.matches_dropped_quota->add(dropped);
    im.m.feed_latency->observe(static_cast<double>(clock.nanos()));
  }
  if (im.options.background) {
    lk.unlock();
    im.cv_work.notify_one();
  }
  return Status::ok();
}

Result<std::vector<ac::Match>> StreamService::poll(SessionId id) {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  Session* s = im.manager.touch(id);
  if (s == nullptr)
    return Status::invalid_argument("unknown session id " + std::to_string(id) +
                                    " (never opened, closed, or evicted)");
  return s->take_matches();
}

Result<SessionStats> StreamService::session_stats(SessionId id) const {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  Session* s = im.manager.find(id);
  if (s == nullptr)
    return Status::invalid_argument("unknown session id " + std::to_string(id) +
                                    " (never opened, closed, or evicted)");
  return s->stats();
}

Status StreamService::close(SessionId id) {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  if (!im.manager.close(id))
    return Status::invalid_argument("unknown session id " + std::to_string(id) +
                                    " (never opened, closed, or evicted)");
  im.scheduler.forget(id);
  im.stats.sessions_live = im.manager.live();
  im.publish_queue_locked();
  if (im.has_metrics) {
    im.m.closed->add(1);
    im.m.live->set(static_cast<double>(im.manager.live()));
  }
  return Status::ok();
}

Result<SessionSnapshot> StreamService::export_session(SessionId id) {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  Session* s = im.manager.find(id);
  if (s == nullptr)
    return Status::invalid_argument("unknown session id " + std::to_string(id) +
                                    " (never opened, closed, or evicted)");
  // A snapshot taken while the session still has chunks queued (or inside
  // the batch being scanned right now) would silently lose their matches:
  // the session's carried state already advanced at feed time, but the bulk
  // deliveries only arrive when the batch is scanned.
  if (im.scheduler.queued_for(id) > 0 || im.in_flight)
    return Status::overloaded(
        "session " + std::to_string(id) +
        " still has queued or in-flight chunks; drain() before exporting");
  SessionSnapshot snapshot = s->snapshot();
  im.manager.close(id);
  ++im.stats.sessions_exported;
  im.stats.sessions_live = im.manager.live();
  if (im.has_metrics) {
    im.m.exported->add(1);
    im.m.live->set(static_cast<double>(im.manager.live()));
  }
  return snapshot;
}

Status StreamService::import_session(const SessionSnapshot& snapshot) {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  if (!im.accepting)
    return Status::invalid_argument("StreamService is shut down");
  if (snapshot.mode != im.boundary)
    return Status::invalid_argument(
        "snapshot boundary mode does not match this service's engine "
        "variant (" + std::string(to_string(snapshot.mode)) + " vs " +
        to_string(im.boundary) + ")");
  if (im.manager.find(snapshot.id) != nullptr)
    return Status::invalid_argument("session id " +
                                    std::to_string(snapshot.id) +
                                    " is already live here");
  std::optional<SessionId> evicted;
  im.manager.adopt(snapshot, im.engine.dfa(), im.pfac.get(), &evicted);
  ++im.stats.sessions_imported;
  im.stats.sessions_live = im.manager.live();
  if (evicted.has_value()) {
    ++im.stats.sessions_evicted;
    im.scheduler.forget(*evicted);
    im.publish_queue_locked();
    if (im.options.recorder != nullptr)
      im.options.recorder->record(telemetry::FlightEventKind::kEviction,
                                  im.options.shard, *evicted);
  }
  if (im.has_metrics) {
    im.m.imported->add(1);
    if (evicted.has_value()) im.m.evicted->add(1);
    im.m.live->set(static_cast<double>(im.manager.live()));
  }
  return Status::ok();
}

Status StreamService::pump() {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  if (im.options.background)
    return Status::invalid_argument(
        "pump() is synchronous-only; the background worker owns the engine");
  im.flush_one_locked(lk);
  return Status::ok();
}

Status StreamService::drain() {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  if (im.options.background) {
    im.cv_work.notify_one();
    im.cv_idle.wait(lk, [&] { return !im.scheduler.has_work() && !im.in_flight; });
  } else {
    while (im.scheduler.has_work()) im.flush_one_locked(lk);
  }
  ++im.stats.drains;
  if (im.has_metrics) im.m.drains->add(1);
  return Status::ok();
}

void StreamService::shutdown() { impl_->shutdown(); }

ServiceStats StreamService::stats() const {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  ServiceStats out = im.stats;
  out.sessions_live = im.manager.live();
  out.queued_chunks = im.scheduler.queued_chunks();
  out.queued_bytes = im.scheduler.queued_bytes();
  return out;
}

const ServeOptions& StreamService::options() const { return impl_->options; }
const ac::Dfa& StreamService::dfa() const { return impl_->engine.dfa(); }

}  // namespace acgpu::serve
