#include "serve/scheduler.h"

#include <algorithm>
#include <mutex>

#include "ac/parallel_matcher.h"
#include "ac/serial_matcher.h"
#include "dispatch/dispatcher.h"

namespace acgpu::serve {

Status SchedulerOptions::validate() const {
  if (max_queue_bytes == 0)
    return Status::invalid_argument("max_queue_bytes must be >= 1");
  if (max_queue_chunks == 0)
    return Status::invalid_argument("max_queue_chunks must be >= 1");
  if (coalesce_bytes == 0)
    return Status::invalid_argument("coalesce_bytes must be >= 1");
  return Status::ok();
}

Scheduler::Scheduler(const SchedulerOptions& options) : options_(options) {
  ACGPU_CHECK(options_.validate().is_ok(), options_.validate().to_string());
}

Status Scheduler::admission(std::uint64_t bytes) const {
  std::scoped_lock lock(mu_);
  return admission_locked(bytes);
}

Status Scheduler::admission_locked(std::uint64_t bytes) const {
  if (queue_.size() + 1 > options_.max_queue_chunks)
    return Status::overloaded("queue full: " + std::to_string(queue_.size()) +
                              " chunks pending (cap " +
                              std::to_string(options_.max_queue_chunks) + ")");
  if (queued_bytes_ + bytes > options_.max_queue_bytes) {
    // An oversized chunk (> the whole byte budget) is admissible only into
    // an empty queue; rejecting it forever would wedge its producer.
    if (!(queue_.empty() && bytes > options_.max_queue_bytes))
      return Status::overloaded(
          "queue full: " + std::to_string(queued_bytes_) + " bytes pending + " +
          std::to_string(bytes) + " over cap " +
          std::to_string(options_.max_queue_bytes));
  }
  return Status::ok();
}

Status Scheduler::admit(PendingChunk chunk) {
  if (chunk.bytes.empty()) return Status::ok();
  std::scoped_lock lock(mu_);
  if (Status s = admission_locked(chunk.bytes.size()); !s) return s;
  queued_bytes_ += chunk.bytes.size();
  queue_.push_back(std::move(chunk));
  return Status::ok();
}

CoalescedBatch Scheduler::take_batch() {
  std::scoped_lock lock(mu_);
  ACGPU_CHECK(!queue_.empty(), "take_batch on an empty queue");
  CoalescedBatch batch;
  while (!queue_.empty()) {
    const PendingChunk& head = queue_.front();
    if (!batch.spans.empty() &&
        batch.text.size() + head.bytes.size() > options_.coalesce_bytes)
      break;
    ChunkSpan span;
    span.session = head.session;
    span.begin = batch.text.size();
    span.end = span.begin + head.bytes.size();
    span.global_base = head.global_base;
    span.trace = head.trace;
    batch.text.append(head.bytes);
    batch.spans.push_back(span);
    queued_bytes_ -= head.bytes.size();
    queue_.pop_front();
  }
  return batch;
}

std::size_t Scheduler::queued_for(SessionId session) const {
  std::scoped_lock lock(mu_);
  std::size_t n = 0;
  for (const PendingChunk& c : queue_)
    if (c.session == session) ++n;
  return n;
}

std::size_t Scheduler::forget(SessionId session) {
  std::scoped_lock lock(mu_);
  std::size_t dropped = 0;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->session == session) {
      queued_bytes_ -= it->bytes.size();
      it = queue_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

namespace {

/// Partition filter: credit each match to the span holding its END byte,
/// keep it only when its START lies in the same span, and rebase the end
/// onto the session's global offsets.
void partition_matches(const std::vector<ac::Match>& found, const ac::Dfa& dfa,
                       const CoalescedBatch& batch, BatchScan& out) {
  const auto& spans = batch.spans;
  for (const ac::Match& m : found) {
    // First span with begin > m.end, then step back: the span holding end.
    const auto it = std::upper_bound(
        spans.begin(), spans.end(), m.end,
        [](std::uint64_t end, const ChunkSpan& s) { return end < s.begin; });
    ACGPU_CHECK(it != spans.begin(), "match end " << m.end << " before first span");
    const ChunkSpan& span = *(it - 1);
    ACGPU_CHECK(m.end < span.end, "match end " << m.end << " past span end " << span.end);
    const std::uint64_t start = m.end + 1 - dfa.pattern_length(m.pattern);
    if (start < span.begin) continue;  // crosses a joint: spurious or
                                       // already reported by the session's
                                       // boundary continuation
    out.matches.push_back(
        {span.session, ac::Match{span.global_base + (m.end - span.begin), m.pattern}});
  }
}

}  // namespace

BatchScan scan_batch(Engine& engine, const ac::Dfa& dfa,
                     const CoalescedBatch& batch) {
  BatchScan out;
  if (batch.text.empty()) return out;

  Result<ScanResult> scan = engine.scan(batch.text);
  if (scan.is_ok() && !scan.value().overflowed) {
    out.makespan_seconds = scan.value().stats.makespan_seconds;
    partition_matches(scan.value().matches, dfa, batch, out);
    return out;
  }
  // Device match buffer overflowed (dense workload) or the engine failed:
  // the host DFA is always exact, so serving degrades instead of dropping.
  out.host_fallback = true;
  partition_matches(ac::find_all(dfa, batch.text), dfa, batch, out);
  return out;
}

BatchScan scan_batch(Engine& engine, const ac::Dfa& dfa,
                     const CoalescedBatch& batch,
                     dispatch::Dispatcher* dispatcher) {
  if (dispatcher == nullptr) return scan_batch(engine, dfa, batch);
  BatchScan out;
  if (batch.text.empty()) return out;

  const dispatch::WorkloadSignature sig =
      dispatcher->signature(batch.text, /*session=*/true);
  const dispatch::Decision decision = dispatcher->choose(sig);
  const dispatch::CostModelConfig& cfg = dispatcher->cost_model().config();

  switch (decision.backend) {
    case dispatch::Backend::kSerialCpu:
      out.makespan_seconds =
          dispatch::modeled_serial_seconds(dfa, batch.text, cfg.cpu);
      partition_matches(ac::find_all(dfa, batch.text), dfa, batch, out);
      break;
    case dispatch::Backend::kParallelCpu:
      out.makespan_seconds =
          dispatch::modeled_parallel_seconds(dfa, batch.text, cfg);
      partition_matches(
          ac::find_all_parallel(dfa, batch.text, cfg.parallel_threads), dfa,
          batch, out);
      break;
    case dispatch::Backend::kGpuPipeline:
      out = scan_batch(engine, dfa, batch);
      break;
  }
  // The overflow fallback's host rescan is not a GPU timing — it would
  // poison the GPU curve's correction, so only clean executions feed back.
  if (!out.host_fallback)
    dispatcher->observe(decision, sig, out.makespan_seconds);
  return out;
}

}  // namespace acgpu::serve
