// Bounded ownership of live sessions with LRU eviction.
//
// The ROADMAP's north star is millions of concurrent streams; the host
// cannot hold per-stream state for all of them forever, so the manager caps
// live sessions at a fixed capacity and evicts the least-recently-touched
// one to admit a new open(). Eviction is forgetful by design — the evicted
// stream's carried state, tail buffer, and undelivered matches are dropped
// (an IDS that loses a flow's state re-anchors on the next flow) — and the
// service reports it through serve.sessions.evicted so operators can size
// the capacity to their traffic.
//
// Ids are deterministic: 1, 2, 3, ... in open() order, never reused, so a
// replayed workload names the same sessions every time.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "gpusim/host_observer.h"
#include "serve/session.h"

namespace acgpu::serve {

class SessionManager {
 public:
  /// At most `capacity` live sessions (>= 1). `id_namespace` offsets every
  /// generated id (namespace+1, namespace+2, ...): 0 keeps the classic
  /// 1,2,3 sequence, and the cluster tier gives each shard a disjoint
  /// high-bits namespace so ids are globally unique across devices
  /// (deterministically — shard k's n-th open always gets the same id).
  explicit SessionManager(std::uint32_t capacity,
                          std::uint64_t id_namespace = 0);

  /// Opens a new session (most-recently-used position). At capacity, the
  /// LRU session is destroyed first and its id reported via `evicted`.
  Session& open(const ac::Dfa& dfa, const ac::PfacAutomaton* pfac,
                BoundaryMode mode, const SessionLimits& limits,
                std::optional<SessionId>* evicted = nullptr);

  /// Inserts a migrated session restored from `snapshot`, preserving its
  /// id (which another manager generated — that is the point). Fails the
  /// process on an id collision with a live session; at capacity the LRU
  /// session is evicted exactly as in open().
  Session& adopt(const SessionSnapshot& snapshot, const ac::Dfa& dfa,
                 const ac::PfacAutomaton* pfac,
                 std::optional<SessionId>* evicted = nullptr);

  /// Looks a session up and marks it most recently used. Returns nullptr
  /// for ids that were never opened, were closed, or were evicted.
  Session* touch(SessionId id);

  /// Peek without disturbing recency (stats, dispatch of bulk matches).
  Session* find(SessionId id);

  /// Destroys a session; false when the id is not live.
  bool close(SessionId id);

  std::size_t live() const { return sessions_.size(); }
  std::uint32_t capacity() const { return capacity_; }
  std::uint64_t opened() const { return opened_; }
  std::uint64_t evicted() const { return evicted_; }

  /// Live ids, most recently used first (tests, introspection).
  std::vector<SessionId> ids_by_recency() const;

  /// Hands the internal table mutex to the hostcheck auditor
  /// (gpusim/host_observer.h). Like the scheduler's, this is a LEAF mutex —
  /// the manager never calls out while holding it — so the recorded
  /// serve.mu -> serve.manager.mu edges keep the lock-order graph acyclic.
  /// Call before the manager is shared.
  void attach_observer(gpusim::HostObserver* observer) { mu_.attach(observer); }

 private:
  struct Entry {
    Session session;
    std::list<SessionId>::iterator lru_pos;
  };

  Session& insert_locked(SessionId id, Session session,
                         std::optional<SessionId>* evicted);

  /// Leaf mutex over the session table mutators; see attach_observer.
  mutable gpusim::TrackedMutex mu_{"serve.manager.mu"};
  std::uint32_t capacity_;
  std::uint64_t next_id_ = 1;
  std::uint64_t opened_ = 0;
  std::uint64_t evicted_ = 0;
  std::list<SessionId> lru_;  ///< front = most recently used
  std::unordered_map<SessionId, Entry> sessions_;
};

}  // namespace acgpu::serve
