#include "serve/session.h"

#include <algorithm>

namespace acgpu::serve {

const char* to_string(BoundaryMode mode) {
  switch (mode) {
    case BoundaryMode::kDfaState: return "dfa-state";
    case BoundaryMode::kPfacTail: return "pfac-tail";
  }
  return "?";
}

Session::Session(SessionId id, const ac::Dfa& dfa, const ac::PfacAutomaton* pfac,
                 BoundaryMode mode, const SessionLimits& limits)
    : id_(id), dfa_(&dfa), pfac_(pfac), mode_(mode), limits_(limits) {
  ACGPU_CHECK(mode_ != BoundaryMode::kPfacTail || pfac_ != nullptr,
              "session " << id << ": kPfacTail needs a PfacAutomaton");
}

Session::Session(const SessionSnapshot& snapshot, const ac::Dfa& dfa,
                 const ac::PfacAutomaton* pfac)
    : Session(snapshot.id, dfa, pfac, snapshot.mode, snapshot.limits) {
  state_ = snapshot.dfa_state;
  tail_ = snapshot.tail;
  stats_ = snapshot.stats;
  matches_ = snapshot.matches;
}

SessionSnapshot Session::snapshot() const {
  SessionSnapshot out;
  out.id = id_;
  out.mode = mode_;
  out.dfa_state = state_;
  out.tail = tail_;
  out.limits = limits_;
  out.stats = stats_;
  out.matches = matches_;
  return out;
}

Status Session::admit_bytes(std::uint64_t n) const {
  if (limits_.max_bytes != 0 && stats_.bytes_fed + n > limits_.max_bytes)
    return Status::capacity_exceeded(
        "session " + std::to_string(id_) + ": byte quota " +
        std::to_string(limits_.max_bytes) + " exhausted (" +
        std::to_string(stats_.bytes_fed) + " fed, " + std::to_string(n) +
        " more)");
  return Status::ok();
}

bool Session::deliver(ac::Match m) {
  if (limits_.max_matches != 0 && stats_.matches_delivered >= limits_.max_matches) {
    ++stats_.matches_dropped;
    stats_.truncated = true;
    return false;
  }
  matches_.push_back(m);
  ++stats_.matches_delivered;
  return true;
}

void Session::deliver_spanning(std::uint64_t global_end, std::int32_t pattern) {
  ++stats_.spanning_matches;
  deliver(ac::Match{global_end, pattern});
}

void Session::begin_chunk(std::string_view chunk) {
  if (mode_ == BoundaryMode::kDfaState)
    begin_chunk_dfa(chunk);
  else
    begin_chunk_pfac(chunk);
  stats_.bytes_fed += chunk.size();
  ++stats_.chunks_fed;
}

void Session::begin_chunk_dfa(std::string_view chunk) {
  const std::uint32_t x = dfa_->max_pattern_length();
  const std::uint64_t base = stats_.bytes_fed;
  // A spanning match ends within the first X-1 chunk bytes (it starts at
  // least one byte earlier and is at most X long), so that prefix is the
  // only stretch the continuation has to walk.
  const std::size_t prefix =
      std::min<std::size_t>(chunk.size(), x > 0 ? x - 1 : 0);
  std::int32_t s = state_;
  for (std::size_t i = 0; i < prefix; ++i) {
    s = dfa_->next(s, static_cast<std::uint8_t>(chunk[i]));
    if (dfa_->is_match(s)) {
      for (const std::int32_t* p = dfa_->output_begin(s); p != dfa_->output_end(s); ++p)
        // Keep spanning matches only: start = base + i + 1 - len < base.
        // Matches contained in the chunk are the bulk scanner's to report.
        if (dfa_->pattern_length(*p) > i + 1) deliver_spanning(base + i, *p);
    }
  }
  if (chunk.size() >= x) {
    // The DFA state is the longest suffix of history that is a pattern
    // prefix — at most X bytes — so after a chunk of >= X bytes it is fully
    // determined by the chunk's last X bytes: re-root instead of walking
    // the whole chunk. (No match emission here: anything ending in these
    // bytes is contained in the chunk and belongs to the bulk scanner.)
    s = 0;
    for (std::size_t i = chunk.size() - x; i < chunk.size(); ++i)
      s = dfa_->next(s, static_cast<std::uint8_t>(chunk[i]));
  }
  // else: prefix == chunk.size() (chunk shorter than X), s is already exact.
  state_ = s;
}

void Session::begin_chunk_pfac(std::string_view chunk) {
  const std::uint32_t x = pfac_->max_pattern_length();
  const std::uint64_t base = stats_.bytes_fed;
  const std::size_t keep = x > 0 ? x - 1 : 0;
  if (!tail_.empty() && !chunk.empty()) {
    // Root one failureless instance at every tail position over tail +
    // first X-1 chunk bytes; an instance dies within X bytes, so nothing
    // past that prefix can matter.
    std::string buf = tail_;
    buf.append(chunk.substr(0, std::min<std::size_t>(chunk.size(), keep)));
    const std::size_t tail_len = tail_.size();
    for (std::size_t t = 0; t < tail_len; ++t)
      pfac_->run_from(buf, t, [&](std::size_t end, std::int32_t pattern) {
        // Matches ending inside the tail were reported by earlier feeds;
        // only those reaching into the new chunk are new.
        if (end >= tail_len) deliver_spanning(base + (end - tail_len), pattern);
      });
  }
  // New tail: the last X-1 bytes of (history + chunk).
  if (chunk.size() >= keep) {
    tail_.assign(chunk.substr(chunk.size() - keep));
  } else {
    tail_.append(chunk);
    if (tail_.size() > keep) tail_.erase(0, tail_.size() - keep);
  }
}

std::vector<ac::Match> Session::take_matches() {
  std::vector<ac::Match> out;
  out.swap(matches_);
  return out;
}

}  // namespace acgpu::serve
