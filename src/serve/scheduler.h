// Admission-controlled chunk queue + superbatch coalescer for the session
// service.
//
// Feeding one Engine::scan per arriving chunk would waste the batched
// pipeline: most chunks are packet-sized, and the pipeline's copy/compute
// overlap only pays off on large inputs. The scheduler instead parks
// accepted chunks in a bounded queue and coalesces many sessions' pending
// chunks into one contiguous superbatch per scan. Correctness of the
// concatenation relies on the partition filter in scan_batch(): a match is
// credited to the chunk containing its END byte and kept only when its
// START lies in the same chunk, so
//
//  - matches fabricated across a joint between two different sessions'
//    chunks are discarded, and
//  - a genuine cross-chunk match of one session is also discarded here —
//    the session's boundary continuation (serve/session.h) already reported
//    it at feed time — keeping every match exactly-once.
//
// Admission is a hard bound on queued chunks and bytes: when the queue is
// full the scheduler answers Status::kOverloaded (backpressure) instead of
// growing without bound. A single chunk larger than the whole byte budget
// is admitted only when the queue is empty, so it can never deadlock the
// producer that must drain it.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "ac/dfa.h"
#include "ac/match.h"
#include "gpusim/host_observer.h"
#include "pipeline/engine.h"
#include "serve/session.h"
#include "telemetry/trace_context.h"
#include "util/error.h"

namespace acgpu::dispatch {
class Dispatcher;
}  // namespace acgpu::dispatch

namespace acgpu::serve {

/// One accepted chunk awaiting a bulk scan. Bytes are owned: the caller's
/// buffer is free to die the moment feed() returns.
struct PendingChunk {
  SessionId session = 0;
  std::uint64_t global_base = 0;  ///< stream offset of bytes[0]
  std::string bytes;
  /// Causal identity minted at the router (invalid = untraced); rides the
  /// queue so the superbatch span can link back to every member request.
  telemetry::TraceContext trace;
};

struct SchedulerOptions {
  std::uint64_t max_queue_bytes = 32u << 20;
  std::uint32_t max_queue_chunks = 4096;
  /// Target superbatch size: take_batch() pops whole chunks until adding
  /// the next one would exceed this (always at least one chunk).
  std::uint64_t coalesce_bytes = 4u << 20;

  Status validate() const;
};

/// Where each coalesced chunk landed in the superbatch text.
struct ChunkSpan {
  SessionId session = 0;
  std::uint64_t begin = 0;        ///< offset in the superbatch
  std::uint64_t end = 0;          ///< one past the chunk's last byte
  std::uint64_t global_base = 0;  ///< stream offset of the chunk's byte 0
  telemetry::TraceContext trace;  ///< carried over from the PendingChunk
};

struct CoalescedBatch {
  std::string text;               ///< concatenated chunk bytes
  std::vector<ChunkSpan> spans;   ///< ascending, contiguous, non-empty
};

class Scheduler {
 public:
  explicit Scheduler(const SchedulerOptions& options);

  /// Can the queue take `bytes` more right now? kOverloaded when not.
  Status admission(std::uint64_t bytes) const;

  /// Enqueues after an admission() re-check; empty chunks are accepted and
  /// dropped (nothing to scan — the session bookkeeping already happened).
  Status admit(PendingChunk chunk);

  bool has_work() const { return !queue_.empty(); }
  std::uint64_t queued_bytes() const { return queued_bytes_; }
  std::uint32_t queued_chunks() const { return static_cast<std::uint32_t>(queue_.size()); }

  /// Pops the oldest chunks into one superbatch (FIFO across sessions, so a
  /// session's own chunks stay in feed order). Requires has_work().
  CoalescedBatch take_batch();

  /// Drops every queued chunk of `session` (closed or evicted), freeing its
  /// queue space. Returns the number of chunks dropped.
  std::size_t forget(SessionId session);

  /// Queued chunks belonging to `session` — export_session's precondition
  /// check (a session may only migrate once nothing of it is in the queue).
  std::size_t queued_for(SessionId session) const;

  const SchedulerOptions& options() const { return options_; }

  /// Hands the internal queue mutex to the hostcheck auditor
  /// (gpusim/host_observer.h). The mutex is a LEAF by design — the
  /// scheduler never calls out while holding it — so every recorded edge
  /// points INTO it (serve.mu -> serve.scheduler.mu) and the lock-order
  /// graph stays acyclic. Call before the scheduler is shared.
  void attach_observer(gpusim::HostObserver* observer) { mu_.attach(observer); }

 private:
  Status admission_locked(std::uint64_t bytes) const;

  SchedulerOptions options_;
  /// Leaf mutex over the queue mutators. The service mutex already
  /// serializes every caller; this one exists so hostcheck observes the
  /// real serve.mu -> scheduler.mu nesting (and guards the mutators if a
  /// future driver ever reaches the scheduler directly).
  mutable gpusim::TrackedMutex mu_{"serve.scheduler.mu"};
  std::deque<PendingChunk> queue_;
  std::uint64_t queued_bytes_ = 0;
};

/// Result of scanning one superbatch: per-session matches with global
/// offsets, ready for Session::deliver.
struct BatchScan {
  struct Delivery {
    SessionId session = 0;
    ac::Match match;
  };
  std::vector<Delivery> matches;
  bool host_fallback = false;  ///< device buffer overflowed / engine failed
  /// Simulated device seconds the batch's scan took (0 on the host-fallback
  /// path — the device never ran it to completion). The cluster throughput
  /// accounting sums these per shard.
  double makespan_seconds = 0;
};

/// Scans a coalesced superbatch through the engine and partitions the
/// matches back onto sessions with the start-in-same-chunk filter. When the
/// device match buffer overflows (or the engine reports any error), the
/// batch is re-scanned exactly on the host DFA — serving degrades to host
/// speed instead of dropping matches.
BatchScan scan_batch(Engine& engine, const ac::Dfa& dfa,
                     const CoalescedBatch& batch);

/// Dispatcher-aware variant (ServeOptions::dispatcher): consults the cost
/// model per superbatch and runs the chosen backend — the host DFA paths
/// (serial or the chunked parallel scan) execute exactly and report their
/// modeled CPU seconds as the batch makespan, the GPU decision takes the
/// engine path above (with its overflow fallback). Every executed decision
/// is fed back through Dispatcher::observe. Null dispatcher = the classic
/// always-engine behavior, bit-identical counters included.
BatchScan scan_batch(Engine& engine, const ac::Dfa& dfa,
                     const CoalescedBatch& batch,
                     dispatch::Dispatcher* dispatcher);

}  // namespace acgpu::serve
