// StreamService — the streaming session service over acgpu::Engine.
//
// The Engine (pipeline/engine.h) answers "scan this resident text"; the
// service answers the ROADMAP's production question: many concurrent
// traffic streams, each arriving chunk by chunk, with patterns spanning
// arbitrarily many chunk boundaries. It owns
//
//   Session         carried boundary state per stream (serve/session.h)
//   SessionManager  bounded live-session set with LRU eviction
//   Scheduler       bounded queue + superbatch coalescer + partitioner
//
// and one Engine that bulk-scans coalesced superbatches.
//
//   auto service = serve::StreamService::create(patterns, options);
//   auto id = service.value().open();
//   service.value().feed(id.value(), chunk);     // any chunking, any order
//   ...
//   service.value().drain();
//   auto matches = service.value().poll(id.value());   // global offsets
//
// Contracts (docs/SERVING.md spells them out):
//
//  - Exactly-once: across every chunking of a stream, poll() accumulates
//    exactly the matches Engine::scan would report on the concatenated
//    stream (compare after ac::normalize_matches). Enforced as the 15th
//    conformance matcher ("serve") and by the fuzzed-chunking tests.
//  - Backpressure: feed() returns Status with code kOverloaded when the
//    bounded queue is full — the service never buffers unboundedly. With
//    AdmissionPolicy::kAutoFlush (synchronous default) the service instead
//    scans inline, so feed() only blocks, never rejects.
//  - Eviction: open() beyond max_sessions evicts the LRU session; its
//    carried state, queued chunks, and unpolled matches are dropped.
//  - Drain/shutdown: drain() returns once every accepted chunk has been
//    scanned and delivered; shutdown() drains, stops accepting, and joins
//    the worker. The destructor shuts down.
//
// Threading: every public method is safe to call from any thread. With
// background=true a single worker thread consumes the queue (feed never
// scans); otherwise scans run inline on the calling thread, serialized by
// the service mutex.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "pipeline/engine.h"
#include "serve/scheduler.h"
#include "serve/session.h"
#include "serve/session_manager.h"
#include "util/error.h"

namespace acgpu::serve {

/// What feed() does when the bounded queue cannot take the chunk.
enum class AdmissionPolicy : std::uint8_t {
  /// Resolved at create(): kReject when background, kAutoFlush otherwise.
  kDefault,
  /// Scan inline to make room, then accept. Synchronous mode only: feed()
  /// may block on an Engine scan but never returns kOverloaded.
  kAutoFlush,
  /// Return kOverloaded; the caller retries after pump() (synchronous) or
  /// after the worker catches up (background).
  kReject,
};

const char* to_string(AdmissionPolicy policy);

struct ServeOptions {
  /// The bulk-scan engine. The kernel variant also picks the sessions'
  /// boundary mode: kPfac streams carry a tail buffer, the AC-DFA variants
  /// carry live DFA state.
  EngineOptions engine;

  /// The device to bind the engine to. Null = the service creates a private
  /// device from the deprecated EngineOptions::gpu/device_memory_bytes
  /// fields (the pre-cluster behavior). The cluster tier passes one
  /// externally owned acgpu::Device per shard; it must outlive the service.
  Device* device = nullptr;

  /// Adaptive backend routing (dispatch/dispatcher.h): when set, every
  /// coalesced superbatch is routed by the cost model — tiny batches run
  /// on the host DFA (serial or parallel) instead of paying the device's
  /// per-scan overhead, large ones still take the engine, and every
  /// executed decision refines the model. The dispatcher is shareable and
  /// thread-safe (the cluster tier points every shard at one); it must
  /// outlive the service. Null = classic always-engine scanning.
  dispatch::Dispatcher* dispatcher = nullptr;

  /// Offset for generated session ids (ids are namespace+1, namespace+2,
  /// ...). 0 keeps the classic deterministic 1,2,3 sequence; the cluster
  /// tier gives each shard a disjoint high-bits namespace so ids stay
  /// globally unique — and deterministic — across devices.
  std::uint64_t session_id_namespace = 0;

  /// Live-session cap (LRU eviction beyond it).
  std::uint32_t max_sessions = 1024;
  /// Quotas stamped onto every session at open().
  SessionLimits session_limits;

  /// Bounded-queue admission control (see SchedulerOptions).
  std::uint64_t max_queue_bytes = 32u << 20;
  std::uint32_t max_queue_chunks = 4096;
  std::uint64_t coalesce_bytes = 4u << 20;

  /// true: a worker thread consumes the queue; feed() never scans.
  bool background = false;
  AdmissionPolicy admission = AdmissionPolicy::kDefault;

  /// serve.* series sink; null = off. (Engine telemetry is configured
  /// separately through engine.telemetry.)
  telemetry::MetricsRegistry* metrics = nullptr;
  /// Prepended to every published series name ("device.3." =>
  /// device.3.serve.batches). The cluster tier sets one per shard; "" keeps
  /// the classic single-service names.
  std::string metrics_prefix;
  /// Host-span sink for serve.superbatch spans. The span is opened on the
  /// scanning thread (the worker in background mode) and annotated with the
  /// member chunks' trace ids, so one superbatch joins against every
  /// request it coalesced. Null = off. Independent of
  /// engine.telemetry.tracer — the cluster tier points both at the shard's
  /// tracer so engine.scan nests under serve.superbatch.
  telemetry::Tracer* tracer = nullptr;
  /// Flight recorder for admission/reject/eviction events; null = off.
  telemetry::FlightRecorder* recorder = nullptr;
  /// Shard index stamped on recorder events (0 standalone).
  std::uint32_t shard = 0;

  /// Hostcheck audit hook (gpusim/host_observer.h): when set, the service
  /// mutex, the scheduler/session-manager leaf mutexes, and — unless
  /// engine.host_observer is set separately — every Engine scan report
  /// their lock and stream activity to the auditor. Null = off, zero cost.
  gpusim::HostObserver* host_observer = nullptr;

  Status validate() const;
};

/// Point-in-time service counters (also published as serve.* metrics).
struct ServiceStats {
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_evicted = 0;
  std::uint64_t sessions_live = 0;
  std::uint64_t feeds_accepted = 0;
  std::uint64_t feeds_rejected = 0;   ///< kOverloaded answers
  std::uint64_t quota_rejects = 0;    ///< kCapacityExceeded answers
  std::uint64_t bytes_accepted = 0;
  std::uint64_t batches = 0;          ///< superbatches scanned
  std::uint64_t host_fallbacks = 0;   ///< overflow/engine-failure rescans
  std::uint64_t matches_delivered = 0;
  std::uint64_t spanning_matches = 0;
  std::uint64_t matches_dropped_closed = 0;  ///< delivery after close/evict
  std::uint64_t queued_chunks = 0;
  std::uint64_t queued_bytes = 0;
  std::uint64_t max_queue_depth_chunks = 0;
  std::uint64_t drains = 0;
  std::uint64_t sessions_exported = 0;  ///< migrated out (cluster rebalance)
  std::uint64_t sessions_imported = 0;  ///< migrated in
  /// Simulated device seconds across every superbatch scan — the shard's
  /// share of cluster device time (host fallbacks contribute nothing).
  double sim_scan_seconds = 0;
};

class StreamService {
 public:
  /// Compiles `patterns` into an Engine and stands the service up. Fails
  /// (no throw) on invalid options or Engine::create failure.
  static Result<StreamService> create(const ac::PatternSet& patterns,
                                      const ServeOptions& options = {});
  /// From a precompiled DFA (e.g. acgpu_cli --dict). Variant kPfac needs
  /// the pattern set and is rejected here, mirroring Engine::create.
  static Result<StreamService> create(ac::Dfa dfa,
                                      const ServeOptions& options = {});

  StreamService(StreamService&&) noexcept;
  StreamService& operator=(StreamService&&) noexcept;
  ~StreamService();  ///< shutdown()

  /// Opens a session (may evict the LRU one). Fails after shutdown().
  Result<SessionId> open();

  /// Feeds the next chunk of `id`'s stream. Empty chunks are accepted
  /// no-ops. Failure codes: kInvalidArgument (unknown/closed/evicted id, or
  /// after shutdown), kCapacityExceeded (session byte quota), kOverloaded
  /// (bounded queue full under AdmissionPolicy::kReject — retry later).
  /// `trace` (optional) is the request's causal identity, minted upstream
  /// (cluster::Router) — it rides the queue into the superbatch span.
  Status feed(SessionId id, std::string_view chunk,
              telemetry::TraceContext trace = {});

  /// Takes the matches delivered so far (global byte offsets, discovery
  /// order — normalize before comparing with a batch scan). drain() first
  /// for a complete answer.
  Result<std::vector<ac::Match>> poll(SessionId id);

  /// Per-session counters (buffered + polled).
  Result<SessionStats> session_stats(SessionId id) const;

  /// Destroys the session and forgets its queued chunks.
  Status close(SessionId id);

  /// Migration out: snapshots the session's portable state (carried
  /// automaton context, stats, unpolled matches) and closes it here. Fails
  /// kOverloaded while the session still has queued or in-flight chunks —
  /// drain() first, or the snapshot would lose their matches. The cluster
  /// Router drives this during rebalance; see docs/CLUSTER.md.
  Result<SessionSnapshot> export_session(SessionId id);

  /// Migration in: restores an exported session under its ORIGINAL id (may
  /// LRU-evict, like open). Fails kInvalidArgument when the id is already
  /// live here, the boundary mode does not match this service's engine
  /// variant, or the service is shut down.
  Status import_session(const SessionSnapshot& snapshot);

  /// Synchronous mode: scan one coalesced superbatch inline (how kReject
  /// callers make room). No-op when the queue is empty; invalid in
  /// background mode (the worker owns the engine there).
  Status pump();

  /// Blocks until every accepted chunk has been scanned and delivered.
  Status drain();

  /// drain(), stop accepting opens/feeds, join the worker. Idempotent.
  void shutdown();

  ServiceStats stats() const;
  const ServeOptions& options() const;
  const ac::Dfa& dfa() const;

 private:
  struct Impl;
  explicit StreamService(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace acgpu::serve
