// Minimal Snort-style rule parser for the intrusion-detection example.
//
// The paper motivates GPU Aho-Corasick with deep packet inspection in
// Snort-class NIDS. This parser understands the subset of the rule language
// that feeds multi-pattern matching: the rule header and the content:"..."
// options (with |AB CD| hex escapes), which become the AC dictionary.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ac/pattern_set.h"

namespace acgpu::workload {

struct SnortRule {
  std::string action;    ///< alert / log / drop ...
  std::string protocol;  ///< tcp / udp / icmp / ip
  std::string message;   ///< msg:"..." option, empty if absent
  std::vector<std::string> contents;  ///< content:"..." byte strings, decoded
  bool nocase = false;   ///< rule carries a `nocase;` modifier
};

/// True when every rule is case-insensitive — the whole dictionary can then
/// be compiled with build_dfa_folded(ascii_fold_map()) at zero runtime cost.
bool all_nocase(const std::vector<SnortRule>& rules);

/// Parses a rule file: one rule per line, '#' comments and blank lines
/// ignored. Throws acgpu::Error with a line number on malformed rules.
std::vector<SnortRule> parse_snort_rules(std::string_view text);

/// Flattens every content string of every rule into one PatternSet, and
/// fills `owner` (parallel to the PatternSet ids) with the rule index each
/// pattern came from, so matches can be attributed back to rules.
ac::PatternSet rules_to_patterns(const std::vector<SnortRule>& rules,
                                 std::vector<std::uint32_t>* owner);

/// Decodes a Snort content string: literal bytes plus |0A 0D| hex blocks.
std::string decode_content(std::string_view raw);

}  // namespace acgpu::workload
