#include "workload/packet_trace.h"

#include "util/error.h"
#include "util/rng.h"

namespace acgpu::workload {

PacketTrace make_packet_trace(std::string_view corpus,
                              const std::vector<std::string>& attacks,
                              const PacketTraceConfig& config,
                              std::vector<std::uint32_t>* injected) {
  ACGPU_CHECK(config.packets > 0, "make_packet_trace: zero packets");
  ACGPU_CHECK(config.min_bytes > 0 && config.min_bytes <= config.max_bytes,
              "make_packet_trace: bad size range [" << config.min_bytes << ", "
                                                    << config.max_bytes << "]");
  ACGPU_CHECK(corpus.size() > config.max_bytes,
              "make_packet_trace: corpus smaller than the largest packet");

  Rng rng(config.seed);
  PacketTrace trace;
  trace.offsets.reserve(config.packets + 1);
  trace.offsets.push_back(0);
  if (injected) injected->clear();

  const std::uint32_t small_cap = std::min<std::uint32_t>(200, config.max_bytes);
  std::size_t attack_cursor = 0;
  for (std::uint32_t i = 0; i < config.packets; ++i) {
    const bool small = rng.next_bool(config.small_fraction);
    const std::uint32_t hi = small ? std::max(config.min_bytes, small_cap)
                                   : config.max_bytes;
    const auto bytes =
        static_cast<std::uint32_t>(rng.next_in(config.min_bytes, hi));
    const std::uint64_t src = rng.next_below(corpus.size() - bytes + 1);
    std::string payload(corpus.substr(static_cast<std::size_t>(src), bytes));

    if (!attacks.empty() && rng.next_bool(config.attack_rate)) {
      const std::string& attack = attacks[attack_cursor++ % attacks.size()];
      if (attack.size() <= payload.size()) {
        const std::uint64_t pos = rng.next_below(payload.size() - attack.size() + 1);
        payload.replace(static_cast<std::size_t>(pos), attack.size(), attack);
        if (injected) injected->push_back(i);
      }
    }

    trace.data += payload;
    trace.offsets.push_back(static_cast<std::uint32_t>(trace.data.size()));
  }
  return trace;
}

}  // namespace acgpu::workload
