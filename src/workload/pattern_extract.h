// Pattern extraction per the paper's methodology: "we extracted input data
// and pattern data from the collected data" — i.e. the dictionary is made of
// substrings of the corpus itself, so matches genuinely occur and the trie
// shape reflects natural-language statistics.
#pragma once

#include <cstdint>
#include <string_view>

#include "ac/pattern_set.h"

namespace acgpu::workload {

struct ExtractConfig {
  std::uint32_t count = 1000;
  std::uint32_t min_length = 4;
  std::uint32_t max_length = 16;
  std::uint64_t seed = 0x9a77e12;
  /// Snap pattern starts to word boundaries (position 0 or just after a
  /// whitespace byte). Natural-language dictionaries are made of words and
  /// phrases, so they share prefixes heavily — this keeps the trie's hot
  /// upper levels compact, exactly like a real keyword dictionary. Off for
  /// non-text corpora (e.g. DNA).
  bool word_aligned = false;
};

/// Draws `count` distinct substrings of `corpus` with lengths uniform in
/// [min_length, max_length]. Throws if the corpus is too small to supply
/// the requested number of distinct patterns.
ac::PatternSet extract_patterns(std::string_view corpus, const ExtractConfig& config);

}  // namespace acgpu::workload
