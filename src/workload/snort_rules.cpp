#include "workload/snort_rules.h"

#include <cctype>
#include <sstream>

#include "util/error.h"

namespace acgpu::workload {

namespace {

bool is_hex(char c) {
  return std::isxdigit(static_cast<unsigned char>(c)) != 0;
}

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return c - 'A' + 10;
}

/// Extracts the value of `option:"..."` occurrences inside the rule body.
std::vector<std::string> option_values(std::string_view body, std::string_view option) {
  std::vector<std::string> values;
  std::size_t pos = 0;
  const std::string needle = std::string(option) + ":\"";
  while ((pos = body.find(needle, pos)) != std::string_view::npos) {
    pos += needle.size();
    const std::size_t end = body.find('"', pos);
    ACGPU_CHECK(end != std::string_view::npos,
                "unterminated " << option << " string in rule body");
    values.emplace_back(body.substr(pos, end - pos));
    pos = end + 1;
  }
  return values;
}

}  // namespace

std::string decode_content(std::string_view raw) {
  std::string out;
  bool in_hex = false;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    if (c == '|') {
      in_hex = !in_hex;
      continue;
    }
    if (!in_hex) {
      out.push_back(c);
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    ACGPU_CHECK(is_hex(c) && i + 1 < raw.size() && is_hex(raw[i + 1]),
                "bad hex escape in content '" << std::string(raw) << "'");
    out.push_back(static_cast<char>(hex_val(c) * 16 + hex_val(raw[i + 1])));
    ++i;
  }
  ACGPU_CHECK(!in_hex, "unterminated |hex| block in content '" << std::string(raw) << "'");
  return out;
}

std::vector<SnortRule> parse_snort_rules(std::string_view text) {
  std::vector<SnortRule> rules;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    std::string_view line = text.substr(start, nl - start);
    start = nl + 1;
    ++line_no;

    // Trim and skip comments/blanks.
    while (!line.empty() && std::isspace(static_cast<unsigned char>(line.front())))
      line.remove_prefix(1);
    while (!line.empty() && std::isspace(static_cast<unsigned char>(line.back())))
      line.remove_suffix(1);
    if (line.empty() || line.front() == '#') continue;

    const std::size_t open = line.find('(');
    const std::size_t close = line.rfind(')');
    ACGPU_CHECK(open != std::string_view::npos && close != std::string_view::npos &&
                    open < close,
                "rule on line " << line_no << " has no (...) body");

    SnortRule rule;
    std::istringstream header{std::string(line.substr(0, open))};
    header >> rule.action >> rule.protocol;
    ACGPU_CHECK(!rule.action.empty() && !rule.protocol.empty(),
                "rule on line " << line_no << " has a malformed header");

    const std::string_view body = line.substr(open + 1, close - open - 1);
    const auto msgs = option_values(body, "msg");
    if (!msgs.empty()) rule.message = msgs.front();
    for (const auto& raw : option_values(body, "content"))
      rule.contents.push_back(decode_content(raw));
    rule.nocase = body.find("nocase") != std::string_view::npos;
    ACGPU_CHECK(!rule.contents.empty(),
                "rule on line " << line_no << " has no content option (nothing to match)");
    rules.push_back(std::move(rule));
  }
  return rules;
}

bool all_nocase(const std::vector<SnortRule>& rules) {
  for (const auto& r : rules)
    if (!r.nocase) return false;
  return !rules.empty();
}

ac::PatternSet rules_to_patterns(const std::vector<SnortRule>& rules,
                                 std::vector<std::uint32_t>* owner) {
  std::vector<std::string> patterns;
  std::vector<std::uint32_t> owners;
  for (std::size_t r = 0; r < rules.size(); ++r) {
    for (const auto& content : rules[r].contents) {
      patterns.push_back(content);
      owners.push_back(static_cast<std::uint32_t>(r));
    }
  }
  // No dedup: two rules may legitimately share a content string, and the
  // owner table must stay parallel to the pattern ids.
  ac::PatternSet set(std::move(patterns), /*dedup=*/false);
  if (owner) *owner = std::move(owners);
  return set;
}

}  // namespace acgpu::workload
