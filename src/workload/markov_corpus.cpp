#include "workload/markov_corpus.h"

#include <algorithm>
#include <array>

#include "util/error.h"
#include "workload/seed_text.h"

namespace acgpu::workload {

namespace {

/// Raw successor counts per context, converted into the cumulative form.
using Counts = std::array<std::uint32_t, 256>;

}  // namespace

MarkovModel::MarkovModel(std::string_view training) {
  ACGPU_CHECK(training.size() >= 3, "MarkovModel: training text too short");
  start_[0] = static_cast<std::uint8_t>(training[0]);
  start_[1] = static_cast<std::uint8_t>(training[1]);
  std::vector<Counts> raw(65536);
  Counts uni{};
  for (std::size_t i = 0; i + 2 < training.size(); ++i) {
    const auto a = static_cast<std::uint8_t>(training[i]);
    const auto b = static_cast<std::uint8_t>(training[i + 1]);
    const auto c = static_cast<std::uint8_t>(training[i + 2]);
    ++raw[key(a, b)][c];
  }
  for (char ch : training) ++uni[static_cast<std::uint8_t>(ch)];

  auto build = [](const Counts& counts, Context& out) {
    std::uint32_t running = 0;
    for (std::uint32_t sym = 0; sym < 256; ++sym) {
      if (counts[sym] == 0) continue;
      running += counts[sym];
      out.cumulative.push_back(running);
      out.symbols.push_back(static_cast<std::uint8_t>(sym));
    }
    out.total = running;
  };

  table_.resize(65536);
  for (std::size_t k = 0; k < raw.size(); ++k) {
    build(raw[k], table_[k]);
    if (table_[k].total > 0) ++contexts_observed_;
  }
  build(uni, unigram_);
  ACGPU_CHECK(unigram_.total > 0, "MarkovModel: empty unigram distribution");
}

std::uint8_t MarkovModel::sample(const Context& ctx, Rng& rng) const {
  const Context& c = ctx.total > 0 ? ctx : unigram_;
  const auto r = static_cast<std::uint32_t>(rng.next_below(c.total)) + 1;
  const auto it = std::lower_bound(c.cumulative.begin(), c.cumulative.end(), r);
  return c.symbols[static_cast<std::size_t>(it - c.cumulative.begin())];
}

std::string MarkovModel::generate(std::size_t bytes, std::uint64_t seed) const {
  ACGPU_CHECK(bytes > 0, "MarkovModel::generate: zero bytes requested");
  Rng rng(seed);
  std::string out;
  out.reserve(bytes);
  std::uint8_t a = start_[0], b = start_[1];
  out.push_back(static_cast<char>(a));
  if (bytes > 1) out.push_back(static_cast<char>(b));
  while (out.size() < bytes) {
    const std::uint8_t c = sample(table_[key(a, b)], rng);
    out.push_back(static_cast<char>(c));
    a = b;
    b = c;
  }
  out.resize(bytes);
  return out;
}

std::string make_corpus(std::size_t bytes, std::uint64_t seed) {
  static const MarkovModel model{seed_text()};
  return model.generate(bytes, seed);
}

}  // namespace acgpu::workload
