// Embedded English seed text for the Markov corpus generator.
//
// The paper trained its inputs on ~50 GB of magazine text (TIME, BBC, ...).
// We can't ship that, so the generator learns character statistics from this
// embedded magazine-style sample and synthesises arbitrarily large corpora
// with a similar byte distribution and branching structure.
#pragma once

#include <string_view>

namespace acgpu::workload {

/// A few KB of original magazine-register English prose.
std::string_view seed_text();

}  // namespace acgpu::workload
