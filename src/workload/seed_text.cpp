#include "workload/seed_text.h"

namespace acgpu::workload {

namespace {

// Original prose written for this repository in a newsmagazine register:
// full sentences, mixed-case, punctuation, numerals — the character
// statistics that matter for an Aho-Corasick workload on English text.
constexpr const char kSeed[] =
    "The city council voted on Tuesday to approve a sweeping plan that would "
    "reshape the waterfront district over the next fifteen years. Supporters "
    "of the measure argued that the investment, estimated at 2.4 billion "
    "dollars, would bring thousands of jobs to a region that has struggled "
    "since the shipyards closed. Critics countered that the plan favors "
    "developers over residents, and that rising rents would push working "
    "families farther from the urban core. The vote, which passed by a narrow "
    "margin of five to four, followed six hours of public comment from more "
    "than two hundred speakers.\n"
    "Scientists announced last week the discovery of a bacterial enzyme that "
    "breaks down common plastics at room temperature. The finding, published "
    "in a leading journal, could transform how cities handle the millions of "
    "tons of packaging waste produced each year. In laboratory trials the "
    "enzyme digested a plastic bottle in roughly eleven days, a process that "
    "would otherwise take centuries in a landfill. Researchers cautioned that "
    "industrial deployment remains years away, and that reducing consumption "
    "is still the most effective strategy available to governments.\n"
    "The championship match drew a record television audience on Saturday "
    "night, with an estimated ninety million viewers watching the final set. "
    "Analysts attributed the surge to the rivalry between the two young "
    "champions, whose contrasting styles have revived interest in the sport. "
    "Ticket prices on the secondary market reached four thousand dollars, the "
    "highest figure ever recorded for the event. The winner, who grew up "
    "training on public courts, dedicated the trophy to her grandmother and "
    "announced a foundation to build facilities in underserved neighborhoods.\n"
    "Central banks across three continents signaled this month that interest "
    "rates would remain elevated through the end of the year. Markets "
    "responded with a broad selloff in technology shares, while energy and "
    "utility stocks held steady. Economists remain divided over whether the "
    "tightening cycle has already pushed several economies toward recession, "
    "or whether resilient consumer spending will carry growth into the next "
    "quarter. Inflation, which peaked at nine percent, has cooled to just "
    "above four, still well above the two percent target that policymakers "
    "consider healthy.\n"
    "A retrospective of the photographer's work opened at the national museum "
    "this weekend, spanning five decades of portraits, street scenes, and "
    "war reportage. Visitors moved slowly through galleries hung with prints "
    "that had never before been shown in public, including contact sheets "
    "from the famous harbor series of 1968. The curator described the "
    "collection as a meditation on attention itself, on what it means to "
    "look carefully at ordinary people in extraordinary circumstances. The "
    "exhibition runs through late January and will travel to museums in "
    "Seoul, Berlin, and Buenos Aires next spring.\n"
    "Engineers testing the new high-speed rail line reported that the train "
    "reached 312 kilometers per hour on the coastal segment, ahead of "
    "schedule and under budget. The project, a decade in the making, links "
    "four major cities and is expected to remove eighty thousand car trips "
    "from the highways every day. Environmental groups praised the reduction "
    "in emissions but raised concerns about habitat fragmentation along the "
    "inland corridor, where fencing interrupts the seasonal migration of "
    "deer and smaller mammals. Officials promised wildlife crossings at "
    "twelve locations before passenger service begins.\n";

}  // namespace

std::string_view seed_text() { return kSeed; }

}  // namespace acgpu::workload
