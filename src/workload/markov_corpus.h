// Order-2 character Markov generator: synthesises arbitrarily large
// English-like corpora from a small training text (workload/seed_text.h),
// standing in for the paper's 50 GB magazine collection.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace acgpu::workload {

class MarkovModel {
 public:
  /// Learns P(next char | previous two chars) from `training`. Contexts
  /// never seen fall back to the unigram distribution.
  explicit MarkovModel(std::string_view training);

  /// Deterministically generates `bytes` of text for a given seed.
  std::string generate(std::size_t bytes, std::uint64_t seed) const;

  /// Number of distinct two-character contexts observed.
  std::size_t context_count() const { return contexts_observed_; }

 private:
  struct Context {
    // Cumulative counts over the observed successors, for O(log n) sampling.
    std::vector<std::uint32_t> cumulative;
    std::vector<std::uint8_t> symbols;
    std::uint32_t total = 0;
  };

  static std::size_t key(std::uint8_t a, std::uint8_t b) {
    return (static_cast<std::size_t>(a) << 8) | b;
  }

  std::uint8_t sample(const Context& ctx, Rng& rng) const;

  std::vector<Context> table_;  // 65536 contexts
  Context unigram_;
  std::uint8_t start_[2] = {0, 0};  ///< generation starts from the training prefix
  std::size_t contexts_observed_ = 0;
};

/// Convenience: the repo-default corpus (seed_text-trained model).
std::string make_corpus(std::size_t bytes, std::uint64_t seed);

}  // namespace acgpu::workload
