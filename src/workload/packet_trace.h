// Synthetic packet traces for the NIDS use case (the paper's motivating
// application; Gnort [16] batches packets to the GPU). Payloads are cut
// from the magazine corpus with attack strings injected at a configurable
// rate, sizes drawn from a bimodal small/large mix like real traffic.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace acgpu::workload {

/// A batch of packets flattened for device upload: payload bytes are
/// concatenated in `data`; packet i occupies [offsets[i], offsets[i+1]).
struct PacketTrace {
  std::string data;
  std::vector<std::uint32_t> offsets;  ///< size() == packet_count() + 1

  std::size_t packet_count() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  std::string_view packet(std::size_t i) const {
    return std::string_view(data).substr(offsets[i], offsets[i + 1] - offsets[i]);
  }
};

struct PacketTraceConfig {
  std::uint32_t packets = 1000;
  std::uint32_t min_bytes = 64;
  std::uint32_t max_bytes = 1460;
  /// Fraction of small (<= 200 B) packets — real traffic is bimodal.
  double small_fraction = 0.5;
  /// Probability that a packet gets one attack payload injected.
  double attack_rate = 0.01;
  std::uint64_t seed = 0xbadc0de;
};

/// Builds a trace whose benign bytes come from `corpus` and whose attacks
/// are drawn round-robin from `attacks` (may be empty -> no injections).
/// `injected`, when non-null, receives the indices of attacked packets.
PacketTrace make_packet_trace(std::string_view corpus,
                              const std::vector<std::string>& attacks,
                              const PacketTraceConfig& config,
                              std::vector<std::uint32_t>* injected = nullptr);

}  // namespace acgpu::workload
