#include "workload/dna.h"

#include <unordered_set>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace acgpu::workload {

namespace {
constexpr char kBases[4] = {'A', 'C', 'G', 'T'};
}

std::string make_dna_sequence(std::size_t bases, std::uint64_t seed) {
  ACGPU_CHECK(bases > 0, "make_dna_sequence: zero bases");
  Rng rng(seed);
  std::string out(bases, 'A');
  for (auto& c : out) c = kBases[rng.next_below(4)];
  return out;
}

ac::PatternSet extract_dna_motifs(const std::string& genome, std::uint32_t count,
                                  std::uint32_t length, double mutate_rate,
                                  std::uint64_t seed) {
  ACGPU_CHECK(count > 0, "extract_dna_motifs: zero motifs");
  ACGPU_CHECK(length > 0 && genome.size() >= length,
              "extract_dna_motifs: motif length " << length
                  << " does not fit the genome (" << genome.size() << " bases)");
  Rng rng(seed);
  std::unordered_set<std::string> seen;
  std::vector<std::string> motifs;
  motifs.reserve(count);
  const std::uint64_t max_attempts = static_cast<std::uint64_t>(count) * 1000;
  std::uint64_t attempts = 0;
  while (motifs.size() < count) {
    ACGPU_CHECK(++attempts <= max_attempts,
                "extract_dna_motifs: could not find " << count << " distinct motifs");
    const std::uint64_t pos = rng.next_below(genome.size() - length + 1);
    std::string motif = genome.substr(static_cast<std::size_t>(pos), length);
    for (auto& c : motif)
      if (rng.next_bool(mutate_rate)) c = kBases[rng.next_below(4)];
    if (seen.insert(motif).second) motifs.push_back(std::move(motif));
  }
  return ac::PatternSet(std::move(motifs), /*dedup=*/false);
}

}  // namespace acgpu::workload
