#include "workload/pattern_extract.h"

#include <unordered_set>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace acgpu::workload {

ac::PatternSet extract_patterns(std::string_view corpus, const ExtractConfig& config) {
  ACGPU_CHECK(config.count > 0, "extract_patterns: zero patterns requested");
  ACGPU_CHECK(config.min_length > 0 && config.min_length <= config.max_length,
              "extract_patterns: bad length range [" << config.min_length << ", "
                                                     << config.max_length << "]");
  ACGPU_CHECK(corpus.size() >= config.max_length,
              "extract_patterns: corpus smaller than max pattern length");

  Rng rng(config.seed);
  std::unordered_set<std::string> seen;
  std::vector<std::string> patterns;
  patterns.reserve(config.count);

  // Distinct substrings are abundant in natural text; cap the attempts so a
  // pathological corpus (e.g. all one character) fails loudly instead of
  // spinning forever.
  const std::uint64_t max_attempts = static_cast<std::uint64_t>(config.count) * 1000;
  std::uint64_t attempts = 0;
  auto is_boundary = [&](std::uint64_t pos) {
    if (pos == 0) return true;
    const char prev = corpus[static_cast<std::size_t>(pos - 1)];
    return prev == ' ' || prev == '\n' || prev == '\t';
  };

  while (patterns.size() < config.count) {
    ACGPU_CHECK(++attempts <= max_attempts,
                "extract_patterns: could not find " << config.count
                    << " distinct patterns (corpus too repetitive?)");
    const std::uint32_t len = static_cast<std::uint32_t>(
        rng.next_in(config.min_length, config.max_length));
    std::uint64_t pos = rng.next_below(corpus.size() - len + 1);
    if (config.word_aligned) {
      while (pos < corpus.size() - len && !is_boundary(pos)) ++pos;
      if (!is_boundary(pos)) continue;  // ran off the end: redraw
    }
    std::string candidate(corpus.substr(static_cast<std::size_t>(pos), len));
    if (seen.insert(candidate).second) patterns.push_back(std::move(candidate));
  }
  return ac::PatternSet(std::move(patterns), /*dedup=*/false);
}

}  // namespace acgpu::workload
