// DNA workload for the bioinformatics example/tests (the paper cites
// genome/protein matching as a core AC application domain).
#pragma once

#include <cstdint>
#include <string>

#include "ac/pattern_set.h"

namespace acgpu::workload {

/// Random nucleotide sequence over {A, C, G, T}.
std::string make_dna_sequence(std::size_t bases, std::uint64_t seed);

/// `count` distinct DNA motifs of the given length, drawn from `genome` with
/// `mutate_rate` per-base substitution probability (so some motifs match the
/// genome exactly and some do not — realistic probe behaviour).
ac::PatternSet extract_dna_motifs(const std::string& genome, std::uint32_t count,
                                  std::uint32_t length, double mutate_rate,
                                  std::uint64_t seed);

}  // namespace acgpu::workload
