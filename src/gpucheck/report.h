// Audit report: the machine-readable outcome of running one or more kernel
// launches under the gpucheck Recorder. Holds the hazard exemplars (capped;
// the full occurrence counts survive the cap), plus whole-launch coalescing
// and bank-conflict statistics that the audit layer turns into budget
// verdicts. Serialises to human-readable text and to JSON (consumed by the
// ac_memcheck CLI and by CI).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "gpucheck/hazard.h"

namespace acgpu::telemetry {
class MetricsRegistry;
}

namespace acgpu::gpucheck {

/// Warp-load coalescing tally (loads only: GlobalLoadU8 / GlobalLoadU32 /
/// GlobalLoadU32Async). `ideal` for one request is the number of segments a
/// contiguous packing of the accessed bytes starting at the request's lowest
/// address would touch — so unavoidable segment straddles are not penalised,
/// but scattered or strided lanes are.
struct CoalescingStats {
  std::uint64_t load_requests = 0;      ///< warp-level load instructions
  std::uint64_t load_transactions = 0;  ///< segments actually touched
  std::uint64_t ideal_transactions = 0;
  std::uint64_t excess_requests = 0;  ///< requests with actual > ideal
  std::uint32_t worst_actual = 0;     ///< of the worst excess request
  std::uint32_t worst_ideal = 0;
  AccessSite worst;  ///< first lane of the worst excess request

  /// The subset a kernel CAN keep coalesced and the budgets assert on: the
  /// cooperative-staging class — blocking 4-byte loads in barrier epoch 0
  /// plus every async prefetch load. Match-emission CSR loads (epoch >= 1,
  /// data-dependent scatter) and byte-granular matching loads fall outside
  /// it by construction.
  std::uint64_t staging_requests = 0;
  std::uint64_t staging_excess = 0;
  std::uint32_t staging_worst_actual = 0;
  std::uint32_t staging_worst_ideal = 0;
  AccessSite staging_worst;

  void merge(const CoalescingStats& other);
};

/// Shared-memory bank-conflict tally across every warp-level shared access.
struct BankStats {
  std::uint64_t accesses = 0;             ///< warp-level shared instructions
  std::uint64_t conflicted_accesses = 0;  ///< accesses with degree > 1
  std::uint32_t max_degree = 0;           ///< worst per-group conflict degree
  AccessSite worst;                       ///< first lane of the worst access

  void merge(const BankStats& other);
};

struct AuditReport {
  std::vector<Hazard> hazards;  ///< exemplars, capped at the recorder's limit
  /// Total occurrences per HazardKind, including deduplicated and capped
  /// findings (index = static_cast<std::size_t>(kind)).
  std::array<std::uint64_t, kHazardKindCount> occurrences{};
  std::uint64_t dropped_hazards = 0;  ///< findings beyond the exemplar cap

  CoalescingStats coalescing;
  BankStats bank;

  // Launch-shape counters (sanity that the audit actually saw work).
  std::uint64_t blocks = 0;
  std::uint64_t warps = 0;
  std::uint64_t barriers = 0;  ///< barrier releases observed
  std::uint64_t accesses = 0;  ///< warp-level memory instructions observed

  std::uint64_t count(HazardKind kind) const {
    return occurrences[static_cast<std::size_t>(kind)];
  }
  std::uint64_t total_hazards() const;
  /// True when no hazard of any kind occurred (statistics are not verdicts:
  /// a report with bank conflicts but no budget hazard is still clean).
  bool clean() const { return total_hazards() == 0; }

  /// Folds `other` into this report, keeping at most `max_hazards` exemplars.
  void merge(const AuditReport& other, std::size_t max_hazards);

  void write_text(std::ostream& out) const;
  void write_json(std::ostream& out) const;
};

/// The report's telemetry projection: (metric name, value) pairs under the
/// "gpucheck." prefix (gpucheck.bank.max_degree, gpucheck.coalescing.ratio,
/// ...). This is the single source of truth for both the "telemetry" object
/// in AuditReport::write_json and publish() below, so an audit's JSON and a
/// metrics snapshot of the same run can never disagree.
std::vector<std::pair<std::string, double>> telemetry_series(
    const AuditReport& report);

/// Publishes telemetry_series() into `registry` as gauges (max_degree via
/// set_max so repeated audits keep the worst case).
void publish(const AuditReport& report, telemetry::MetricsRegistry& registry);

}  // namespace acgpu::gpucheck
