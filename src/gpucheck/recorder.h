// The access recorder: a gpusim::AccessObserver that watches every memory
// instruction, barrier event, and block/warp lifecycle of a launch and runs
// the hazard analyzers of ISSUE's racecheck/memcheck family over the stream:
//
//   * shared-memory races   — per-byte shadow of the last writer and the last
//     two distinct readers; conflicting accesses (>= 1 store) from different
//     threads in the same barrier epoch are a race. One hazard per
//     instruction pair, so a 16-lane conflicting store reports once.
//   * read-before-write     — a shared load of bytes no thread has stored
//     since block start (the shadow's writer slot is empty).
//   * out-of-bounds         — shared accesses past the block's region, device
//     accesses past the allocation point, texel fetches outside the binding.
//     Offending lanes are suppressed (loads read 0) so the audit continues.
//   * global write races    — same-byte device stores from two threads with
//     no ordering (different blocks, or same block and same barrier epoch).
//   * coalescing lint       — per warp-load transaction counts vs the ideal
//     of a contiguous packing at the request's lowest address (stats; the
//     audit layer turns budget breaches into hazards).
//   * bank-conflict stats   — per shared access conflict degree through
//     gpusim::bank_conflicts (stats; budgets applied by the audit layer).
//   * barrier divergence    — the scheduler's divergence callback, plus a
//     per-warp arrival-count cross-check when the block retires.
//
// One Recorder instance covers one launch (or several launches of the same
// logical kernel — block ids must not repeat while a block is in flight).
#pragma once

#include <array>
#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gpucheck/report.h"
#include "gpusim/access_observer.h"
#include "gpusim/warp.h"

namespace acgpu::gpucheck {

struct RecorderOptions {
  bool check_races = true;          ///< shared-memory race analyzer
  bool check_uninit_shared = true;  ///< read-before-write analyzer
  bool check_oob = true;            ///< bounds analyzers (+ lane suppression)
  bool check_global_races = true;   ///< device-memory write-race analyzer
  bool lint_coalescing = true;      ///< per-load transaction statistics
  std::size_t max_hazards = 64;     ///< exemplar cap (occurrences keep counting)
  std::uint32_t banks = 16;         ///< shared bank model for the statistics
  std::uint32_t conflict_group = 16;
  std::uint32_t segment_bytes = 128;  ///< coalescing window
};

class Recorder final : public gpusim::AccessObserver {
 public:
  explicit Recorder(RecorderOptions options = {});

  const AuditReport& report() const { return report_; }
  AuditReport take_report() { return std::move(report_); }

  // --- gpusim::AccessObserver ------------------------------------------------
  void block_started(std::uint64_t block_id, std::uint32_t num_warps,
                     std::uint32_t block_threads,
                     std::uint32_t shared_bytes) override;
  void block_finished(std::uint64_t block_id) override;
  std::uint32_t memory_access(const gpusim::Warp& warp,
                              gpusim::OpKind kind) override;
  void barrier_arrival(const gpusim::Warp& warp) override;
  void barrier_release(std::uint64_t block_id) override;
  void barrier_divergence(std::uint64_t block_id,
                          const gpusim::Warp& warp) override;

 private:
  /// One prior access to a byte, compact enough for a per-byte shadow.
  struct ByteAccess {
    std::int64_t thread = -1;  ///< < 0: slot empty
    std::uint32_t epoch = 0;
    std::uint64_t instr = 0;
    std::uint64_t base = 0;  ///< base address of the access
    std::uint8_t width = 0;
    gpusim::OpKind op{};
  };
  /// Shadow state of one shared byte: the last writer plus up to two readers
  /// from distinct threads (two, so T1-read / T2-read / T2-store still
  /// surfaces the T1/T2 write-after-read race).
  struct SharedByte {
    ByteAccess writer;
    ByteAccess reader;
    ByteAccess reader2;
  };

  struct BlockState {
    std::uint32_t shared_bytes = 0;
    std::uint32_t epoch = 0;
    std::uint64_t next_instr = 0;
    std::vector<SharedByte> shadow;             ///< size shared_bytes
    std::vector<std::uint32_t> barrier_counts;  ///< arrivals per warp
    std::set<std::pair<std::uint64_t, std::uint64_t>> race_pairs;
    std::set<std::uint64_t> uninit_instrs;
    std::set<std::uint64_t> oob_instrs;
    bool divergence_reported = false;
  };

  /// Owner of the last store to one device-memory byte.
  struct GlobalByte {
    std::uint64_t block = 0;
    std::int64_t thread = -1;
    std::uint32_t epoch = 0;
    std::uint64_t instr = 0;
    std::uint64_t base = 0;
  };

  BlockState& block_state(std::uint64_t block_id);
  AccessSite site_of(const gpusim::Warp& warp, std::uint32_t lane,
                     gpusim::OpKind op, std::uint64_t instr, std::uint64_t addr,
                     std::uint8_t width, bool is_store,
                     std::uint32_t epoch) const;
  AccessSite site_of_byte(std::uint64_t block_id, const ByteAccess& access,
                          bool is_store) const;
  void add_hazard(HazardKind kind, std::string message, AccessSite first,
                  AccessSite second = {});

  std::uint32_t shared_access(const gpusim::Warp& warp, gpusim::OpKind kind,
                              BlockState& bs, std::uint64_t instr);
  std::uint32_t global_access(const gpusim::Warp& warp, gpusim::OpKind kind,
                              BlockState& bs, std::uint64_t instr);
  std::uint32_t tex_access(const gpusim::Warp& warp, gpusim::OpKind kind,
                           BlockState& bs, std::uint64_t instr);

  RecorderOptions opts_;
  AuditReport report_;
  std::unordered_map<std::uint64_t, BlockState> blocks_;
  std::unordered_map<std::uint64_t, GlobalByte> global_shadow_;
  std::set<std::array<std::uint64_t, 4>> global_race_pairs_;
};

}  // namespace acgpu::gpucheck
