#include "gpucheck/recorder.h"

#include <algorithm>
#include <sstream>

#include "gpusim/coalescer.h"
#include "gpusim/shared_memory.h"
#include "gpusim/texture.h"

namespace acgpu::gpucheck {

using gpusim::OpKind;
using gpusim::Warp;

Recorder::Recorder(RecorderOptions options) : opts_(options) {}

Recorder::BlockState& Recorder::block_state(std::uint64_t block_id) {
  return blocks_[block_id];
}

AccessSite Recorder::site_of(const Warp& warp, std::uint32_t lane, OpKind op,
                             std::uint64_t instr, std::uint64_t addr,
                             std::uint8_t width, bool is_store,
                             std::uint32_t epoch) const {
  AccessSite site;
  site.block = warp.block_id;
  site.warp = warp.warp_in_block;
  site.lane = lane;
  site.thread = warp.thread_in_block(lane);
  site.epoch = epoch;
  site.instr = instr;
  site.addr = addr;
  site.width = width;
  site.is_store = is_store;
  site.op = op;
  return site;
}

AccessSite Recorder::site_of_byte(std::uint64_t block_id,
                                  const ByteAccess& access,
                                  bool is_store) const {
  AccessSite site;
  site.block = block_id;
  site.warp = static_cast<std::uint32_t>(access.thread) / Warp::kMaxLanes;
  site.lane = static_cast<std::uint32_t>(access.thread) % Warp::kMaxLanes;
  site.thread = access.thread;
  site.epoch = access.epoch;
  site.instr = access.instr;
  site.addr = access.base;
  site.width = access.width;
  site.is_store = is_store;
  site.op = access.op;
  return site;
}

void Recorder::add_hazard(HazardKind kind, std::string message,
                          AccessSite first, AccessSite second) {
  ++report_.occurrences[static_cast<std::size_t>(kind)];
  if (report_.hazards.size() >= opts_.max_hazards) {
    ++report_.dropped_hazards;
    return;
  }
  Hazard h;
  h.kind = kind;
  h.message = std::move(message);
  h.first = first;
  h.second = second;
  report_.hazards.push_back(std::move(h));
}

void Recorder::block_started(std::uint64_t block_id, std::uint32_t num_warps,
                             std::uint32_t block_threads,
                             std::uint32_t shared_bytes) {
  (void)block_threads;
  BlockState& bs = blocks_[block_id];
  bs = BlockState{};
  bs.shared_bytes = shared_bytes;
  bs.shadow.resize(shared_bytes);
  bs.barrier_counts.assign(num_warps, 0);
  ++report_.blocks;
  report_.warps += num_warps;
}

void Recorder::block_finished(std::uint64_t block_id) {
  auto it = blocks_.find(block_id);
  if (it == blocks_.end()) return;
  BlockState& bs = it->second;
  if (!bs.divergence_reported && !bs.barrier_counts.empty()) {
    const auto [lo, hi] =
        std::minmax_element(bs.barrier_counts.begin(), bs.barrier_counts.end());
    if (*lo != *hi) {
      std::ostringstream msg;
      msg << "warps of block " << block_id
          << " reached unequal barrier counts (warp "
          << (lo - bs.barrier_counts.begin()) << ": " << *lo << ", warp "
          << (hi - bs.barrier_counts.begin()) << ": " << *hi << ")";
      add_hazard(HazardKind::kBarrierDivergence, msg.str(), {});
    }
  }
  blocks_.erase(it);
}

void Recorder::barrier_arrival(const Warp& warp) {
  BlockState& bs = block_state(warp.block_id);
  if (warp.warp_in_block < bs.barrier_counts.size())
    ++bs.barrier_counts[warp.warp_in_block];
}

void Recorder::barrier_release(std::uint64_t block_id) {
  ++block_state(block_id).epoch;
  ++report_.barriers;
}

void Recorder::barrier_divergence(std::uint64_t block_id, const Warp& warp) {
  BlockState& bs = block_state(block_id);
  bs.divergence_reported = true;
  std::ostringstream msg;
  msg << "warp " << warp.warp_in_block << " (threads "
      << warp.thread_in_block(0) << ".."
      << warp.thread_in_block(warp.lane_count - 1) << ") of block " << block_id
      << " finished without reaching the barrier its sibling warp(s) were "
         "waiting at (epoch "
      << bs.epoch << ")";
  AccessSite site;
  site.block = block_id;
  site.warp = warp.warp_in_block;
  site.lane = 0;
  site.thread = warp.thread_in_block(0);
  site.epoch = bs.epoch;
  site.instr = bs.next_instr;
  site.op = OpKind::Barrier;
  add_hazard(HazardKind::kBarrierDivergence, msg.str(), site);
}

std::uint32_t Recorder::memory_access(const Warp& warp, OpKind kind) {
  BlockState& bs = block_state(warp.block_id);
  const std::uint64_t instr = bs.next_instr++;
  ++report_.accesses;
  switch (kind) {
    case OpKind::SharedLoadU8:
    case OpKind::SharedLoadU32:
    case OpKind::SharedStoreU32:
      return shared_access(warp, kind, bs, instr);
    case OpKind::GlobalLoadU8:
    case OpKind::GlobalLoadU32:
    case OpKind::GlobalStoreU32:
    case OpKind::GlobalLoadU32Async:
      return global_access(warp, kind, bs, instr);
    case OpKind::TexFetch:
    case OpKind::TexFetch2:
      return tex_access(warp, kind, bs, instr);
    default:
      return 0;
  }
}

std::uint32_t Recorder::shared_access(const Warp& warp, OpKind kind,
                                      BlockState& bs, std::uint64_t instr) {
  const bool is_store = kind == OpKind::SharedStoreU32;
  const std::uint8_t width = kind == OpKind::SharedLoadU8 ? 1 : 4;
  const std::uint64_t size = warp.smem ? warp.smem->size() : 0;
  if (bs.shadow.size() < size) bs.shadow.resize(size);
  std::uint32_t suppress = 0;

  std::array<std::uint32_t, Warp::kMaxLanes> bank_addrs{};
  std::uint32_t n_bank = 0;
  std::uint32_t worst_lane = 0;
  std::uint64_t uninit_bytes = 0;
  std::uint64_t first_uninit_addr = 0;
  std::int32_t first_uninit_lane = -1;

  for (std::uint32_t l = 0; l < warp.lane_count; ++l) {
    if (!warp.mask[l]) continue;
    const auto a = static_cast<std::uint32_t>(warp.addr[l]);
    if (opts_.check_oob && a + std::uint64_t{width} > size) {
      suppress |= 1u << l;
      if (bs.oob_instrs.insert(instr).second) {
        std::ostringstream msg;
        msg << "shared " << (is_store ? "store" : "load") << " of "
            << static_cast<unsigned>(width) << " byte(s) at 0x" << std::hex << a
            << std::dec << " outside the " << size << "-byte block region";
        add_hazard(HazardKind::kSharedOutOfBounds, msg.str(),
                   site_of(warp, l, kind, instr, a, width, is_store, bs.epoch));
      }
      continue;
    }
    if (n_bank < bank_addrs.size()) bank_addrs[n_bank++] = a;
    if (n_bank == 1) worst_lane = l;

    if (!opts_.check_races && !opts_.check_uninit_shared) continue;
    ByteAccess cur;
    cur.thread = warp.thread_in_block(l);
    cur.epoch = bs.epoch;
    cur.instr = instr;
    cur.base = a;
    cur.width = width;
    cur.op = kind;
    for (std::uint32_t b = a; b < a + width; ++b) {
      SharedByte& sb = bs.shadow[b];
      if (is_store) {
        if (opts_.check_races) {
          const ByteAccess* prior = nullptr;
          if (sb.writer.thread >= 0 && sb.writer.epoch == bs.epoch &&
              sb.writer.thread != cur.thread) {
            prior = &sb.writer;
          } else if (sb.reader.thread >= 0 && sb.reader.epoch == bs.epoch &&
                     sb.reader.thread != cur.thread) {
            prior = &sb.reader;
          } else if (sb.reader2.thread >= 0 && sb.reader2.epoch == bs.epoch &&
                     sb.reader2.thread != cur.thread) {
            prior = &sb.reader2;
          }
          if (prior != nullptr &&
              bs.race_pairs.insert({std::min(prior->instr, instr),
                                    std::max(prior->instr, instr)})
                  .second) {
            const bool prior_store = prior == &sb.writer;
            std::ostringstream msg;
            msg << "conflicting shared accesses to byte 0x" << std::hex << b
                << std::dec << " in barrier epoch " << bs.epoch << ": thread "
                << prior->thread << " (" << (prior_store ? "store" : "load")
                << ") vs thread " << cur.thread
                << " (store) with no __syncthreads between them";
            add_hazard(HazardKind::kSharedRace, msg.str(),
                       site_of_byte(warp.block_id, *prior, prior_store),
                       site_of(warp, l, kind, instr, a, width, true, bs.epoch));
          }
        }
        sb.writer = cur;
      } else {
        if (sb.writer.thread < 0) {
          if (opts_.check_uninit_shared) {
            ++uninit_bytes;
            if (first_uninit_lane < 0) {
              first_uninit_lane = static_cast<std::int32_t>(l);
              first_uninit_addr = b;
            }
          }
        } else if (opts_.check_races && sb.writer.epoch == bs.epoch &&
                   sb.writer.thread != cur.thread &&
                   bs.race_pairs.insert({std::min(sb.writer.instr, instr),
                                         std::max(sb.writer.instr, instr)})
                       .second) {
          std::ostringstream msg;
          msg << "conflicting shared accesses to byte 0x" << std::hex << b
              << std::dec << " in barrier epoch " << bs.epoch << ": thread "
              << sb.writer.thread << " (store) vs thread " << cur.thread
              << " (load) with no __syncthreads between them";
          add_hazard(HazardKind::kSharedRace, msg.str(),
                     site_of_byte(warp.block_id, sb.writer, true),
                     site_of(warp, l, kind, instr, a, width, false, bs.epoch));
        }
        // Track up to two readers from distinct threads.
        if (sb.reader.thread < 0 || sb.reader.thread == cur.thread)
          sb.reader = cur;
        else
          sb.reader2 = cur;
      }
    }
  }

  if (uninit_bytes > 0 && bs.uninit_instrs.insert(instr).second) {
    const auto lane = static_cast<std::uint32_t>(first_uninit_lane);
    std::ostringstream msg;
    msg << "shared load reads " << uninit_bytes
        << " byte(s) never stored by the block, first at 0x" << std::hex
        << first_uninit_addr << std::dec;
    add_hazard(HazardKind::kUninitSharedRead, msg.str(),
               site_of(warp, lane, kind, instr, warp.addr[lane], width, false,
                       bs.epoch));
  }

  if (n_bank > 0) {
    const gpusim::BankCost bc = gpusim::bank_conflicts(
        std::span<const std::uint32_t>(bank_addrs.data(), n_bank), opts_.banks,
        opts_.conflict_group);
    ++report_.bank.accesses;
    if (bc.max_degree > 1) ++report_.bank.conflicted_accesses;
    if (bc.max_degree > report_.bank.max_degree) {
      report_.bank.max_degree = bc.max_degree;
      report_.bank.worst = site_of(warp, worst_lane, kind, instr,
                                   bank_addrs[0], width, is_store, bs.epoch);
    }
  }
  return suppress;
}

std::uint32_t Recorder::global_access(const Warp& warp, OpKind kind,
                                      BlockState& bs, std::uint64_t instr) {
  const bool is_store = kind == OpKind::GlobalStoreU32;
  const std::uint8_t width = kind == OpKind::GlobalLoadU8 ? 1 : 4;
  const std::uint64_t limit = warp.gmem ? warp.gmem->allocated() : 0;
  std::uint32_t suppress = 0;

  std::array<gpusim::DevAddr, Warp::kMaxLanes> in_bounds{};
  std::uint32_t n = 0;
  std::uint32_t first_lane = 0;

  for (std::uint32_t l = 0; l < warp.lane_count; ++l) {
    if (!warp.mask[l]) continue;
    const std::uint64_t a = warp.addr[l];
    if (opts_.check_oob && a + width > limit) {
      suppress |= 1u << l;
      if (bs.oob_instrs.insert(instr).second) {
        std::ostringstream msg;
        msg << "global " << (is_store ? "store" : "load") << " of "
            << static_cast<unsigned>(width) << " byte(s) at 0x" << std::hex << a
            << std::dec << " beyond the device allocation point (" << limit
            << " bytes allocated)";
        add_hazard(HazardKind::kGlobalOutOfBounds, msg.str(),
                   site_of(warp, l, kind, instr, a, width, is_store, bs.epoch));
      }
      continue;
    }
    if (n == 0) first_lane = l;
    if (n < in_bounds.size()) in_bounds[n++] = a;

    if (is_store && opts_.check_global_races) {
      const std::int64_t thread = warp.thread_in_block(l);
      for (std::uint64_t b = a; b < a + width; ++b) {
        GlobalByte& owner = global_shadow_[b];
        const bool racy =
            owner.thread >= 0 &&
            (owner.block != warp.block_id ||
             (owner.thread != thread && owner.epoch == bs.epoch));
        if (racy && global_race_pairs_
                        .insert({owner.block, owner.instr, warp.block_id, instr})
                        .second) {
          ByteAccess prior;
          prior.thread = owner.thread;
          prior.epoch = owner.epoch;
          prior.instr = owner.instr;
          prior.base = owner.base;
          prior.width = 4;
          prior.op = OpKind::GlobalStoreU32;
          std::ostringstream msg;
          msg << "unordered global stores to byte 0x" << std::hex << b
              << std::dec << ": block " << owner.block << " thread "
              << owner.thread << " vs block " << warp.block_id << " thread "
              << thread;
          add_hazard(HazardKind::kGlobalWriteRace, msg.str(),
                     site_of_byte(owner.block, prior, true),
                     site_of(warp, l, kind, instr, a, width, true, bs.epoch));
        }
        owner.block = warp.block_id;
        owner.thread = thread;
        owner.epoch = bs.epoch;
        owner.instr = instr;
        owner.base = a;
      }
    }
  }

  if (!is_store && opts_.lint_coalescing && n > 0) {
    const gpusim::CoalesceResult c =
        gpusim::coalesce(std::span<const gpusim::DevAddr>(in_bounds.data(), n),
                         width, opts_.segment_bytes);
    const gpusim::DevAddr lo =
        *std::min_element(in_bounds.begin(), in_bounds.begin() + n);
    // Ideal: the segments a contiguous packing of the accessed bytes would
    // touch, starting at the request's own lowest address — alignment the
    // kernel cannot avoid is not penalised, scatter and stride are.
    const std::uint64_t span_end = lo + std::uint64_t{n} * width;
    const auto ideal = static_cast<std::uint32_t>(
        (span_end - 1) / opts_.segment_bytes - lo / opts_.segment_bytes + 1);
    CoalescingStats& cs = report_.coalescing;
    const bool staging_class = kind == OpKind::GlobalLoadU32Async ||
                               (bs.epoch == 0 && kind == OpKind::GlobalLoadU32);
    ++cs.load_requests;
    cs.load_transactions += c.transactions;
    cs.ideal_transactions += ideal;
    if (staging_class) ++cs.staging_requests;
    if (c.transactions > ideal) {
      ++cs.excess_requests;
      const std::uint32_t gap = c.transactions - ideal;
      if (!cs.worst.valid() || gap > cs.worst_actual - cs.worst_ideal) {
        cs.worst_actual = c.transactions;
        cs.worst_ideal = ideal;
        cs.worst = site_of(warp, first_lane, kind, instr, in_bounds[0], width,
                           false, bs.epoch);
      }
      if (staging_class) {
        ++cs.staging_excess;
        if (!cs.staging_worst.valid() ||
            gap > cs.staging_worst_actual - cs.staging_worst_ideal) {
          cs.staging_worst_actual = c.transactions;
          cs.staging_worst_ideal = ideal;
          cs.staging_worst = site_of(warp, first_lane, kind, instr,
                                     in_bounds[0], width, false, bs.epoch);
        }
      }
    }
  }
  return suppress;
}

std::uint32_t Recorder::tex_access(const Warp& warp, OpKind kind,
                                   BlockState& bs, std::uint64_t instr) {
  const gpusim::Texture2D* tex =
      kind == OpKind::TexFetch ? warp.tex : warp.tex2;
  if (tex == nullptr || !tex->bound() || !opts_.check_oob) return 0;
  std::uint32_t suppress = 0;
  for (std::uint32_t l = 0; l < warp.lane_count; ++l) {
    if (!warp.mask[l]) continue;
    const std::uint32_t x = warp.tex_x[l];
    const std::uint32_t y = warp.tex_y[l];
    if (x < tex->width() && y < tex->rows()) continue;
    suppress |= 1u << l;
    if (bs.oob_instrs.insert(instr).second) {
      std::ostringstream msg;
      msg << "texel fetch (" << x << "," << y << ") outside the "
          << tex->width() << "x" << tex->rows() << " texture binding";
      add_hazard(HazardKind::kTextureOutOfBounds, msg.str(),
                 site_of(warp, l, kind, instr, tex->addr_of(x, y), 4, false,
                         bs.epoch));
    }
  }
  return suppress;
}

}  // namespace acgpu::gpucheck
