// The audit harness: runs every shipped kernel variant under the Recorder
// over oracle workloads, applies per-target hazard budgets, and checks the
// kernel's match output against the serial reference at the same time — a
// hazard-free launch that returns wrong matches is still a failed audit.
//
// Per-target budgets (what "clean" asserts beyond the recorder's analyzers):
//
//   target               bank budget        staging coalescing
//   ac-global            —                  —   (byte loads, by design)
//   ac-shared-diagonal   max degree 1       required
//   ac-shared-naive      conflicts EXPECTED required
//   ac-shared-seq        —                  —   (per-thread serial copy)
//   ac-db-diagonal       max degree 1       required (incl. async prefetch)
//   ac-db-naive          conflicts EXPECTED required
//   compressed           —                  required
//   pfac                 —                  —   (lane death scatters loads)
//   packet               —                  —   (packet offsets irregular)
//   pipeline             max degree 1       required (shared kernel per batch)
//
// The degree-1 budget is only sound when chunk_words is a multiple of the
// bank count, so the harness rounds every per-workload chunk up to 64 bytes
// (16 words on the 16-bank model). The naive scheme's "conflicts expected"
// assertion — the paper's Fig. 23 motivation — applies once the text is long
// enough that at least two threads of a half-warp scan concurrently
// (text_len > chunk_bytes).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "gpucheck/recorder.h"
#include "oracle/matcher.h"

namespace acgpu::gpucheck {

enum class AuditTarget : std::uint8_t {
  kAcGlobal,            ///< ac_kernel, global-only approach
  kAcSharedDiagonal,    ///< ac_kernel, shared staging, diagonal scheme
  kAcSharedNaive,       ///< ac_kernel, shared staging, row-major scheme
  kAcSharedSequential,  ///< ac_kernel, per-thread serial staging
  kAcDbDiagonal,        ///< double-buffered multi-tile kernel, diagonal
  kAcDbNaive,           ///< double-buffered multi-tile kernel, row-major
  kCompressed,          ///< compressed-STT kernel
  kPfac,                ///< failureless (PFAC) kernel
  kPacket,              ///< packet-batch kernel
  kPipeline,            ///< batched multi-stream pipeline, shared kernel
};

const char* to_string(AuditTarget target);
const std::vector<AuditTarget>& all_audit_targets();
/// Resolves a target by its to_string name; throws acgpu::Error on an
/// unknown name (the message lists the valid ones).
AuditTarget audit_target_from_name(std::string_view name);

/// A hazard budget applied on top of a Recorder's report. Exposed so tests
/// can assert budgets against hand-built kernels too.
struct Budget {
  std::uint32_t max_bank_degree = 0;     ///< 0 = no cap
  bool expect_bank_conflicts = false;    ///< degree must EXCEED 1 (naive)
  bool require_coalesced_staging = false;
  std::size_t max_hazards = 64;
};

/// The static budget of one audit target (the dynamic naive-scheme
/// expectation is enabled by audit_workload once the text qualifies).
Budget target_budget(AuditTarget target);

/// Appends budget-violation hazards (kBankConflictBudget,
/// kCoalescingExcess) to `report` based on its statistics.
void apply_budget(AuditReport& report, const Budget& budget);

struct AuditSpec {
  std::uint32_t threads_per_block = 64;  ///< db targets use 32 (shared cap)
  /// Per-workload chunk floor; always rounded up to a multiple of 64 bytes
  /// and above the dictionary's overlap.
  std::uint32_t chunk_floor_bytes = 64;
  std::uint32_t tiles_per_block = 3;  ///< double-buffer targets
  std::uint32_t packet_bytes = 512;   ///< packet split size, packet target
  RecorderOptions recorder{};
};

struct AuditOutcome {
  AuditReport report;
  bool matches_ok = false;  ///< kernel output equals the serial reference
  std::uint64_t match_count = 0;
};

/// Runs `target` over one compiled workload under the Recorder, applies the
/// target's budget, and diffs the matches against the serial reference.
AuditOutcome audit_workload(AuditTarget target,
                            const oracle::CompiledWorkload& workload,
                            const AuditSpec& spec = {});

struct SweepTargetResult {
  AuditTarget target{};
  AuditReport report;  ///< merged across all audited workloads
  std::uint64_t workloads = 0;
  std::uint64_t mismatches = 0;  ///< workloads whose matches diverged
};

/// PR-1 conformance workloads under audit: generates `iterations` oracle
/// workloads from `seed` (oracle::generate_workload) and audits each target
/// over each of them. An empty `targets` list means all targets.
std::vector<SweepTargetResult> audit_conformance(
    std::uint64_t seed, std::uint64_t iterations,
    const std::vector<AuditTarget>& targets = {}, const AuditSpec& spec = {});

}  // namespace acgpu::gpucheck
