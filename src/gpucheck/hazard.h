// Hazard taxonomy of the kernel auditor (gpucheck) — the
// cuda-memcheck/racecheck-style findings the analyzers in recorder.h emit.
//
// The simulator has no program counters, so an access site is identified in
// thread/address terms: block, warp, lane, thread-in-block, the per-block
// warp-instruction ordinal (stable across runs — the sim is deterministic),
// the barrier epoch, and the byte address. That is enough to replay and
// localise a finding: the ordinal pins the exact co_await in the kernel
// body's execution order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "gpusim/warp.h"

namespace acgpu::gpucheck {

enum class HazardKind : std::uint8_t {
  kSharedRace,          ///< same-epoch conflicting shared accesses, >= 1 store
  kBarrierDivergence,   ///< not every live warp reached the barrier
  kSharedOutOfBounds,   ///< shared access outside the block's region
  kGlobalOutOfBounds,   ///< device access beyond the allocated space
  kTextureOutOfBounds,  ///< texel fetch outside the bound width x rows
  kUninitSharedRead,    ///< shared load of bytes never stored by the block
  kGlobalWriteRace,     ///< unordered same-address device stores, two threads
  kCoalescingExcess,    ///< warp load moved more segments than its ideal
  kBankConflictBudget,  ///< shared conflict degree outside the target budget
};
constexpr std::size_t kHazardKindCount = 9;

const char* to_string(HazardKind kind);

/// One access site. `thread` < 0 marks an empty/unused site (e.g. the second
/// site of a one-sided hazard).
struct AccessSite {
  std::uint64_t block = 0;
  std::uint32_t warp = 0;
  std::uint32_t lane = 0;
  std::int64_t thread = -1;  ///< thread index within the block
  std::uint32_t epoch = 0;   ///< barrier epoch (0 before the first barrier)
  std::uint64_t instr = 0;   ///< warp-instruction ordinal within the block
  std::uint64_t addr = 0;    ///< byte address (shared or device space)
  std::uint8_t width = 0;    ///< access bytes
  bool is_store = false;
  gpusim::OpKind op = gpusim::OpKind::None;

  bool valid() const { return thread >= 0; }
};

std::ostream& operator<<(std::ostream& out, const AccessSite& site);

/// One finding: the kind, a formatted one-liner, and the (up to two)
/// structured access sites behind it — `first` is the earlier/prior access,
/// `second` the one that completed the hazard.
struct Hazard {
  HazardKind kind{};
  std::string message;
  AccessSite first;
  AccessSite second;
};

std::ostream& operator<<(std::ostream& out, const Hazard& hazard);

/// Short instruction-set name for reports ("shared-store-u32", "tex-fetch").
const char* op_name(gpusim::OpKind op);

}  // namespace acgpu::gpucheck
