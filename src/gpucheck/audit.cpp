#include "gpucheck/audit.h"

#include <algorithm>
#include <sstream>

#include "ac/chunking.h"
#include "ac/serial_matcher.h"
#include "kernels/ac_kernel.h"
#include "kernels/compressed_kernel.h"
#include "kernels/packet_kernel.h"
#include "kernels/pfac_kernel.h"
#include "oracle/workload_gen.h"
#include "pipeline/pipeline.h"
#include "util/error.h"

namespace acgpu::gpucheck {
namespace {

using oracle::CompiledWorkload;

struct TargetInfo {
  AuditTarget target;
  const char* name;
  Budget budget;
};

constexpr Budget kNoBudget{};
constexpr Budget kDiagonalBudget{1, false, true, 64};
constexpr Budget kNaiveBudget{0, true, true, 64};
constexpr Budget kStagingOnlyBudget{0, false, true, 64};

const TargetInfo kTargets[] = {
    {AuditTarget::kAcGlobal, "ac-global", kNoBudget},
    {AuditTarget::kAcSharedDiagonal, "ac-shared-diagonal", kDiagonalBudget},
    {AuditTarget::kAcSharedNaive, "ac-shared-naive", kNaiveBudget},
    {AuditTarget::kAcSharedSequential, "ac-shared-sequential", kNoBudget},
    {AuditTarget::kAcDbDiagonal, "ac-db-diagonal", kDiagonalBudget},
    {AuditTarget::kAcDbNaive, "ac-db-naive", kNaiveBudget},
    {AuditTarget::kCompressed, "compressed", kStagingOnlyBudget},
    {AuditTarget::kPfac, "pfac", kNoBudget},
    {AuditTarget::kPacket, "packet", kNoBudget},
    {AuditTarget::kPipeline, "pipeline", kDiagonalBudget},
};

const TargetInfo& info_of(AuditTarget target) {
  for (const TargetInfo& info : kTargets)
    if (info.target == target) return info;
  ACGPU_CHECK(false, "unknown audit target id "
                         << static_cast<unsigned>(target));
  return kTargets[0];
}

/// Chunk for the shared-staging targets: a multiple of 64 bytes (16 words on
/// the 16-bank model — the diagonal degree-1 invariant needs chunk_words to
/// be a bank-count multiple) strictly above the dictionary's overlap.
std::uint32_t pick_chunk(const CompiledWorkload& w, std::uint32_t floor_bytes) {
  const std::uint32_t overlap =
      ac::required_overlap(w.dfa().max_pattern_length());
  const std::uint32_t chunk = std::max(floor_bytes, overlap + 1);
  return (chunk + 63) / 64 * 64;
}

gpusim::DeviceMemory make_device(std::size_t text_bytes, std::uint64_t threads,
                                 std::uint32_t capacity,
                                 std::size_t table_bytes) {
  const std::size_t buffer = threads * (4 + 8ull * capacity);
  return gpusim::DeviceMemory((8u << 20) + text_bytes + 2 * table_bytes +
                              2 * buffer);
}

gpusim::GpuConfig audit_config() {
  gpusim::GpuConfig cfg = gpusim::GpuConfig::gtx285();
  cfg.num_sms = 4;  // functional-mode audits simulate every block
  return cfg;
}

void push_budget_hazard(AuditReport& report, HazardKind kind,
                        std::string message, AccessSite site,
                        std::size_t max_hazards) {
  ++report.occurrences[static_cast<std::size_t>(kind)];
  if (report.hazards.size() >= max_hazards) {
    ++report.dropped_hazards;
    return;
  }
  Hazard h;
  h.kind = kind;
  h.message = std::move(message);
  h.first = site;
  report.hazards.push_back(std::move(h));
}

/// Runs `launch(capacity)` with growing match capacity until the device
/// buffer stops overflowing; each retry uses a fresh Recorder so hazards are
/// not double-counted. `launch` fills `report` and returns the Collected.
template <typename Launch>
kernels::MatchBuffer::Collected collect_audited(const char* who,
                                                Launch&& launch) {
  for (std::uint32_t capacity = 64; capacity <= (1u << 14); capacity *= 4) {
    auto collected = launch(capacity);
    if (!collected.overflowed) return collected;
  }
  ACGPU_CHECK(false, who << ": match buffer overflow at capacity" << (1u << 14));
  return {};
}

bool same_matches(std::vector<ac::Match> got,
                  const std::vector<ac::Match>& expected) {
  ac::normalize_matches(got);
  return got == expected;
}

AuditOutcome audit_ac(AuditTarget target, const CompiledWorkload& w,
                      const AuditSpec& spec) {
  kernels::AcLaunchSpec ls;
  switch (target) {
    case AuditTarget::kAcGlobal:
      ls.approach = kernels::Approach::kGlobalOnly;
      break;
    case AuditTarget::kAcSharedDiagonal:
      ls.approach = kernels::Approach::kShared;
      ls.scheme = kernels::StoreScheme::kDiagonal;
      break;
    case AuditTarget::kAcSharedNaive:
      ls.approach = kernels::Approach::kShared;
      ls.scheme = kernels::StoreScheme::kCoalescedNaive;
      break;
    case AuditTarget::kAcSharedSequential:
      ls.approach = kernels::Approach::kShared;
      ls.scheme = kernels::StoreScheme::kSequential;
      break;
    case AuditTarget::kAcDbDiagonal:
      ls.approach = kernels::Approach::kShared;
      ls.scheme = kernels::StoreScheme::kDiagonal;
      ls.tiles_per_block = spec.tiles_per_block;
      break;
    case AuditTarget::kAcDbNaive:
      ls.approach = kernels::Approach::kShared;
      ls.scheme = kernels::StoreScheme::kCoalescedNaive;
      ls.tiles_per_block = spec.tiles_per_block;
      break;
    default:
      ACGPU_CHECK(false, "audit_ac called with a non-ac target");
  }
  ls.chunk_bytes = pick_chunk(w, spec.chunk_floor_bytes);
  // The double-buffered region is halves * (T+1) * chunk; T=32 keeps even a
  // 128-byte chunk inside the 16 KB shared budget.
  ls.threads_per_block =
      ls.tiles_per_block > 1 ? 32 : spec.threads_per_block;
  ls.sim.mode = gpusim::SimMode::Functional;

  const gpusim::GpuConfig cfg = audit_config();
  const std::uint64_t threads =
      (w.text().size() + ls.chunk_bytes - 1) / ls.chunk_bytes +
      ls.threads_per_block * ls.tiles_per_block;

  AuditOutcome outcome;
  const auto collected =
      collect_audited(to_string(target), [&](std::uint32_t capacity) {
        ls.match_capacity = capacity;
        Recorder recorder(spec.recorder);
        ls.sim.observer = &recorder;
        gpusim::DeviceMemory mem = make_device(w.text().size(), threads,
                                               capacity, w.dfa().stt_bytes());
        const kernels::DeviceDfa ddfa(mem, w.dfa());
        const auto addr = kernels::upload_text(mem, w.text());
        auto matches =
            kernels::run_ac_kernel(cfg, mem, ddfa, addr, w.text().size(), ls)
                .matches;
        outcome.report = recorder.take_report();
        return matches;
      });

  Budget budget = info_of(target).budget;
  // At least two threads of a half-warp must scan concurrently for the
  // naive scheme's conflicts to be observable.
  if (ls.approach != kernels::Approach::kShared ||
      w.text().size() <= ls.chunk_bytes)
    budget.expect_bank_conflicts = false;
  budget.max_hazards = spec.recorder.max_hazards;
  apply_budget(outcome.report, budget);

  outcome.match_count = collected.matches.size();
  outcome.matches_ok =
      same_matches(collected.matches, oracle::reference_matches(w));
  return outcome;
}

AuditOutcome audit_compressed(const CompiledWorkload& w,
                              const AuditSpec& spec) {
  kernels::CompressedLaunchSpec ls;
  ls.chunk_bytes = pick_chunk(w, spec.chunk_floor_bytes);
  ls.threads_per_block = spec.threads_per_block;
  ls.sim.mode = gpusim::SimMode::Functional;

  const gpusim::GpuConfig cfg = audit_config();
  const std::uint64_t threads =
      (w.text().size() + ls.chunk_bytes - 1) / ls.chunk_bytes +
      ls.threads_per_block;

  AuditOutcome outcome;
  const auto collected =
      collect_audited("compressed", [&](std::uint32_t capacity) {
        ls.match_capacity = capacity;
        Recorder recorder(spec.recorder);
        ls.sim.observer = &recorder;
        gpusim::DeviceMemory mem =
            make_device(w.text().size(), threads, capacity,
                        w.compressed().size_bytes() + (1u << 20));
        const kernels::DeviceCompressedDfa dcdfa(mem, w.compressed(), w.dfa());
        const auto addr = kernels::upload_text(mem, w.text());
        auto matches = kernels::run_compressed_kernel(cfg, mem, dcdfa, addr,
                                                      w.text().size(), ls)
                           .matches;
        outcome.report = recorder.take_report();
        return matches;
      });

  Budget budget = info_of(AuditTarget::kCompressed).budget;
  budget.max_hazards = spec.recorder.max_hazards;
  apply_budget(outcome.report, budget);
  outcome.match_count = collected.matches.size();
  outcome.matches_ok =
      same_matches(collected.matches, oracle::reference_matches(w));
  return outcome;
}

AuditOutcome audit_pfac(const CompiledWorkload& w, const AuditSpec& spec) {
  kernels::PfacLaunchSpec ls;
  ls.threads_per_block = spec.threads_per_block;
  ls.sim.mode = gpusim::SimMode::Functional;

  const gpusim::GpuConfig cfg = audit_config();
  const std::uint64_t threads = w.text().size() + ls.threads_per_block;

  AuditOutcome outcome;
  const auto collected = collect_audited("pfac", [&](std::uint32_t capacity) {
    ls.match_capacity = capacity;
    Recorder recorder(spec.recorder);
    ls.sim.observer = &recorder;
    gpusim::DeviceMemory mem = make_device(w.text().size(), threads, capacity,
                                           w.pfac().stt().size_bytes());
    const kernels::DevicePfac dpfac(mem, w.pfac());
    const auto addr = kernels::upload_text(mem, w.text());
    auto matches =
        kernels::run_pfac_kernel(cfg, mem, dpfac, addr, w.text().size(), ls)
            .matches;
    outcome.report = recorder.take_report();
    return matches;
  });

  outcome.match_count = collected.matches.size();
  outcome.matches_ok =
      same_matches(collected.matches, oracle::reference_matches(w));
  return outcome;
}

/// The batched multi-stream pipeline under audit: the shared/diagonal kernel
/// launched once per batch on one Recorder, so the cross-launch analyzers see
/// the whole batched run (slot staging, per-batch buffers) as one history.
/// The batch size targets a handful of batches so slot cycling and boundary
/// stitching are both on the record.
AuditOutcome audit_pipeline(const CompiledWorkload& w, const AuditSpec& spec) {
  pipeline::PipelineOptions opt;
  opt.variant = pipeline::KernelVariant::kShared;
  opt.scheme = kernels::StoreScheme::kDiagonal;
  opt.streams = 2;
  opt.chunk_bytes = pick_chunk(w, spec.chunk_floor_bytes);
  opt.threads_per_block = spec.threads_per_block;
  opt.mode = gpusim::SimMode::Functional;
  opt.batch_bytes =
      std::max<std::uint64_t>(opt.chunk_bytes, (w.text().size() + 2) / 3);

  const gpusim::GpuConfig cfg = audit_config();
  AuditOutcome outcome;
  std::vector<ac::Match> matches;
  for (std::uint32_t capacity = 64; capacity <= (1u << 14); capacity *= 4) {
    opt.match_capacity = capacity;
    Recorder recorder(spec.recorder);
    opt.observer = &recorder;
    // Observer-attached runs keep every batch's buffers live (the recorder's
    // cross-launch shadow would misread recycling); budget for all of them.
    gpusim::DeviceMemory mem(64u << 20);
    const kernels::DeviceDfa ddfa(mem, w.dfa());
    pipeline::MatchPipeline pipe(cfg, mem, ddfa, opt);
    auto r = pipe.run(w.text());
    ACGPU_CHECK(r.is_ok(), "pipeline audit: " << r.status().to_string());
    outcome.report = recorder.take_report();
    if (!r.value().overflowed) {
      matches = std::move(r.value().matches);
      break;
    }
    ACGPU_CHECK(capacity * 4 <= (1u << 14),
                "pipeline audit: match buffer overflow at capacity " << capacity);
  }

  Budget budget = info_of(AuditTarget::kPipeline).budget;
  budget.max_hazards = spec.recorder.max_hazards;
  apply_budget(outcome.report, budget);
  outcome.match_count = matches.size();
  outcome.matches_ok =
      same_matches(std::move(matches), oracle::reference_matches(w));
  return outcome;
}

AuditOutcome audit_packet(const CompiledWorkload& w, const AuditSpec& spec) {
  // Split the workload text into fixed-size packets; each packet is an
  // independent matching domain, so the reference is one serial scan per
  // packet.
  workload::PacketTrace trace;
  trace.data = w.raw().text;
  trace.offsets.push_back(0);
  const std::uint32_t step = std::max(1u, spec.packet_bytes);
  for (std::uint64_t off = 0; off < trace.data.size(); off += step)
    trace.offsets.push_back(static_cast<std::uint32_t>(
        std::min<std::uint64_t>(off + step, trace.data.size())));

  std::vector<kernels::PacketMatch> expected;
  for (std::size_t p = 0; p + 1 < trace.offsets.size(); ++p) {
    ac::match_serial(w.dfa(), trace.packet(p), [&](std::uint64_t end,
                                                   std::int32_t pattern) {
      expected.push_back(kernels::PacketMatch{
          static_cast<std::uint32_t>(p), static_cast<std::uint32_t>(end),
          pattern});
    });
  }
  std::sort(expected.begin(), expected.end());

  const gpusim::GpuConfig cfg = audit_config();
  AuditOutcome outcome;
  std::vector<kernels::PacketMatch> got;
  for (std::uint32_t capacity = 16; capacity <= (1u << 14); capacity *= 4) {
    kernels::PacketLaunchSpec ls;
    ls.threads_per_block = spec.threads_per_block;
    ls.match_capacity = capacity;
    ls.sim.mode = gpusim::SimMode::Functional;
    Recorder recorder(spec.recorder);
    ls.sim.observer = &recorder;
    gpusim::DeviceMemory mem =
        make_device(trace.data.size() + 4 * trace.offsets.size(),
                    trace.packet_count() + spec.threads_per_block, capacity,
                    w.dfa().stt_bytes());
    const kernels::DeviceDfa ddfa(mem, w.dfa());
    const kernels::DeviceBatch batch(mem, trace);
    auto result = kernels::run_packet_kernel(cfg, mem, ddfa, batch, ls);
    outcome.report = recorder.take_report();
    if (!result.overflowed) {
      got = std::move(result.matches);
      break;
    }
    ACGPU_CHECK(capacity * 4 <= (1u << 14),
                "packet audit: match buffer overflow at capacity " << capacity);
  }

  std::sort(got.begin(), got.end());
  outcome.match_count = got.size();
  outcome.matches_ok = got == expected;
  return outcome;
}

}  // namespace

const char* to_string(AuditTarget target) { return info_of(target).name; }

const std::vector<AuditTarget>& all_audit_targets() {
  static const std::vector<AuditTarget> all = [] {
    std::vector<AuditTarget> v;
    for (const TargetInfo& info : kTargets) v.push_back(info.target);
    return v;
  }();
  return all;
}

AuditTarget audit_target_from_name(std::string_view name) {
  for (const TargetInfo& info : kTargets)
    if (name == info.name) return info.target;
  std::ostringstream known;
  for (const TargetInfo& info : kTargets) known << " " << info.name;
  ACGPU_CHECK(false, "unknown audit target '" << name << "'; known:" << known.str());
  return AuditTarget::kAcGlobal;
}

Budget target_budget(AuditTarget target) { return info_of(target).budget; }

void apply_budget(AuditReport& report, const Budget& budget) {
  if (budget.max_bank_degree > 0 &&
      report.bank.max_degree > budget.max_bank_degree) {
    std::ostringstream msg;
    msg << "shared conflict degree " << report.bank.max_degree
        << " exceeds the target budget of " << budget.max_bank_degree;
    push_budget_hazard(report, HazardKind::kBankConflictBudget, msg.str(),
                       report.bank.worst, budget.max_hazards);
  }
  if (budget.expect_bank_conflicts && report.bank.max_degree <= 1 &&
      report.bank.accesses > 0) {
    std::ostringstream msg;
    msg << "expected bank conflicts are absent: the scheme audited at degree "
        << report.bank.max_degree << " over " << report.bank.accesses
        << " shared accesses (is the audit wired to the right layout?)";
    push_budget_hazard(report, HazardKind::kBankConflictBudget, msg.str(), {},
                       budget.max_hazards);
  }
  if (budget.require_coalesced_staging &&
      report.coalescing.staging_excess > 0) {
    std::ostringstream msg;
    msg << report.coalescing.staging_excess << " of "
        << report.coalescing.staging_requests
        << " staging-class load(s) exceeded their ideal transaction count "
           "(worst "
        << report.coalescing.staging_worst_actual << " vs "
        << report.coalescing.staging_worst_ideal << ")";
    push_budget_hazard(report, HazardKind::kCoalescingExcess, msg.str(),
                       report.coalescing.staging_worst, budget.max_hazards);
  }
}

AuditOutcome audit_workload(AuditTarget target, const CompiledWorkload& w,
                            const AuditSpec& spec) {
  if (w.text().empty()) {
    // The kernels have no work on an empty text (the adapters return {} the
    // same way); a trivially clean report with an empty-match diff.
    AuditOutcome outcome;
    outcome.matches_ok = oracle::reference_matches(w).empty();
    return outcome;
  }
  switch (target) {
    case AuditTarget::kCompressed:
      return audit_compressed(w, spec);
    case AuditTarget::kPfac:
      return audit_pfac(w, spec);
    case AuditTarget::kPacket:
      return audit_packet(w, spec);
    case AuditTarget::kPipeline:
      return audit_pipeline(w, spec);
    default:
      return audit_ac(target, w, spec);
  }
}

std::vector<SweepTargetResult> audit_conformance(
    std::uint64_t seed, std::uint64_t iterations,
    const std::vector<AuditTarget>& targets, const AuditSpec& spec) {
  const std::vector<AuditTarget>& picked =
      targets.empty() ? all_audit_targets() : targets;
  std::vector<SweepTargetResult> results(picked.size());
  for (std::size_t t = 0; t < picked.size(); ++t) results[t].target = picked[t];

  for (std::uint64_t i = 0; i < iterations; ++i) {
    const CompiledWorkload w(oracle::generate_workload(seed, i));
    for (std::size_t t = 0; t < picked.size(); ++t) {
      AuditOutcome outcome = audit_workload(picked[t], w, spec);
      results[t].report.merge(outcome.report, spec.recorder.max_hazards);
      ++results[t].workloads;
      if (!outcome.matches_ok) ++results[t].mismatches;
    }
  }
  return results;
}

}  // namespace acgpu::gpucheck
