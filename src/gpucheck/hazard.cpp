#include "gpucheck/hazard.h"

#include <ostream>

namespace acgpu::gpucheck {

const char* to_string(HazardKind kind) {
  switch (kind) {
    case HazardKind::kSharedRace: return "shared-race";
    case HazardKind::kBarrierDivergence: return "barrier-divergence";
    case HazardKind::kSharedOutOfBounds: return "shared-oob";
    case HazardKind::kGlobalOutOfBounds: return "global-oob";
    case HazardKind::kTextureOutOfBounds: return "texture-oob";
    case HazardKind::kUninitSharedRead: return "uninit-shared-read";
    case HazardKind::kGlobalWriteRace: return "global-write-race";
    case HazardKind::kCoalescingExcess: return "coalescing-excess";
    case HazardKind::kBankConflictBudget: return "bank-conflict-budget";
  }
  return "unknown";
}

const char* op_name(gpusim::OpKind op) {
  using gpusim::OpKind;
  switch (op) {
    case OpKind::None: return "none";
    case OpKind::Compute: return "compute";
    case OpKind::GlobalLoadU8: return "global-load-u8";
    case OpKind::GlobalLoadU32: return "global-load-u32";
    case OpKind::GlobalStoreU32: return "global-store-u32";
    case OpKind::SharedLoadU8: return "shared-load-u8";
    case OpKind::SharedLoadU32: return "shared-load-u32";
    case OpKind::SharedStoreU32: return "shared-store-u32";
    case OpKind::TexFetch: return "tex-fetch";
    case OpKind::TexFetch2: return "tex-fetch2";
    case OpKind::Barrier: return "barrier";
    case OpKind::GlobalLoadU32Async: return "global-load-u32-async";
    case OpKind::AsyncWait: return "async-wait";
  }
  return "unknown";
}

std::ostream& operator<<(std::ostream& out, const AccessSite& site) {
  if (!site.valid()) return out << "<no site>";
  out << "block " << site.block << " warp " << site.warp << " lane "
      << site.lane << " (thread " << site.thread << ") instr #" << site.instr
      << " epoch " << site.epoch << ": " << op_name(site.op) << " @0x"
      << std::hex << site.addr << std::dec;
  if (site.width > 0)
    out << " (" << static_cast<unsigned>(site.width) << "B "
        << (site.is_store ? "store" : "load") << ")";
  return out;
}

std::ostream& operator<<(std::ostream& out, const Hazard& hazard) {
  out << to_string(hazard.kind) << ": " << hazard.message;
  if (hazard.first.valid()) out << "\n    first:  " << hazard.first;
  if (hazard.second.valid()) out << "\n    second: " << hazard.second;
  return out;
}

}  // namespace acgpu::gpucheck
