#include "gpucheck/report.h"

#include <ostream>
#include <sstream>
#include <string>

#include "telemetry/metrics_registry.h"

namespace acgpu::gpucheck {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_site_json(std::ostream& out, const AccessSite& site) {
  if (!site.valid()) {
    out << "null";
    return;
  }
  out << "{\"block\":" << site.block << ",\"warp\":" << site.warp
      << ",\"lane\":" << site.lane << ",\"thread\":" << site.thread
      << ",\"epoch\":" << site.epoch << ",\"instr\":" << site.instr
      << ",\"addr\":" << site.addr
      << ",\"width\":" << static_cast<unsigned>(site.width)
      << ",\"store\":" << (site.is_store ? "true" : "false") << ",\"op\":\""
      << op_name(site.op) << "\"}";
}

}  // namespace

void CoalescingStats::merge(const CoalescingStats& other) {
  load_requests += other.load_requests;
  load_transactions += other.load_transactions;
  ideal_transactions += other.ideal_transactions;
  excess_requests += other.excess_requests;
  staging_requests += other.staging_requests;
  staging_excess += other.staging_excess;
  if (other.worst.valid() &&
      (!worst.valid() || other.worst_actual - other.worst_ideal >
                             worst_actual - worst_ideal)) {
    worst_actual = other.worst_actual;
    worst_ideal = other.worst_ideal;
    worst = other.worst;
  }
  if (other.staging_worst.valid() &&
      (!staging_worst.valid() ||
       other.staging_worst_actual - other.staging_worst_ideal >
           staging_worst_actual - staging_worst_ideal)) {
    staging_worst_actual = other.staging_worst_actual;
    staging_worst_ideal = other.staging_worst_ideal;
    staging_worst = other.staging_worst;
  }
}

void BankStats::merge(const BankStats& other) {
  accesses += other.accesses;
  conflicted_accesses += other.conflicted_accesses;
  if (other.max_degree > max_degree) {
    max_degree = other.max_degree;
    worst = other.worst;
  }
}

std::uint64_t AuditReport::total_hazards() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : occurrences) total += n;
  return total;
}

void AuditReport::merge(const AuditReport& other, std::size_t max_hazards) {
  for (const Hazard& h : other.hazards) {
    if (hazards.size() < max_hazards)
      hazards.push_back(h);
    else
      ++dropped_hazards;
  }
  for (std::size_t k = 0; k < occurrences.size(); ++k)
    occurrences[k] += other.occurrences[k];
  dropped_hazards += other.dropped_hazards;
  coalescing.merge(other.coalescing);
  bank.merge(other.bank);
  blocks += other.blocks;
  warps += other.warps;
  barriers += other.barriers;
  accesses += other.accesses;
}

void AuditReport::write_text(std::ostream& out) const {
  out << "audit: " << blocks << " blocks, " << warps << " warps, " << accesses
      << " memory instrs, " << barriers << " barrier releases\n";
  out << "coalescing: " << coalescing.load_requests << " load requests, "
      << coalescing.load_transactions << " transactions (ideal "
      << coalescing.ideal_transactions << "), " << coalescing.excess_requests
      << " over ideal; staging class: " << coalescing.staging_requests
      << " requests, " << coalescing.staging_excess << " over ideal\n";
  if (coalescing.worst.valid())
    out << "  worst: " << coalescing.worst_actual << " vs ideal "
        << coalescing.worst_ideal << " at " << coalescing.worst << "\n";
  if (coalescing.staging_worst.valid())
    out << "  worst staging: " << coalescing.staging_worst_actual
        << " vs ideal " << coalescing.staging_worst_ideal << " at "
        << coalescing.staging_worst << "\n";
  out << "banks: " << bank.accesses << " shared accesses, "
      << bank.conflicted_accesses << " conflicted, max degree "
      << bank.max_degree << "\n";
  if (bank.worst.valid() && bank.max_degree > 1)
    out << "  worst: " << bank.worst << "\n";
  if (clean()) {
    out << "hazards: none\n";
    return;
  }
  out << "hazards: " << total_hazards() << " total";
  for (std::size_t k = 0; k < occurrences.size(); ++k)
    if (occurrences[k] > 0)
      out << ", " << to_string(static_cast<HazardKind>(k)) << "="
          << occurrences[k];
  out << "\n";
  for (const Hazard& h : hazards) out << "  " << h << "\n";
  if (dropped_hazards > 0)
    out << "  ... " << dropped_hazards << " further finding(s) not shown\n";
}

void AuditReport::write_json(std::ostream& out) const {
  out << "{\"blocks\":" << blocks << ",\"warps\":" << warps
      << ",\"accesses\":" << accesses << ",\"barriers\":" << barriers
      << ",\"clean\":" << (clean() ? "true" : "false")
      << ",\"total_hazards\":" << total_hazards()
      << ",\"dropped_hazards\":" << dropped_hazards;
  out << ",\"occurrences\":{";
  bool first = true;
  for (std::size_t k = 0; k < occurrences.size(); ++k) {
    if (occurrences[k] == 0) continue;
    if (!first) out << ",";
    first = false;
    out << "\"" << to_string(static_cast<HazardKind>(k))
        << "\":" << occurrences[k];
  }
  out << "}";
  out << ",\"coalescing\":{\"load_requests\":" << coalescing.load_requests
      << ",\"transactions\":" << coalescing.load_transactions
      << ",\"ideal\":" << coalescing.ideal_transactions
      << ",\"excess_requests\":" << coalescing.excess_requests
      << ",\"staging_requests\":" << coalescing.staging_requests
      << ",\"staging_excess\":" << coalescing.staging_excess << "}";
  out << ",\"banks\":{\"accesses\":" << bank.accesses
      << ",\"conflicted\":" << bank.conflicted_accesses
      << ",\"max_degree\":" << bank.max_degree << "}";
  out << ",\"telemetry\":{";
  bool first_series = true;
  for (const auto& [name, value] : telemetry_series(*this)) {
    if (!first_series) out << ",";
    first_series = false;
    out << "\"" << name << "\":" << value;
  }
  out << "}";
  out << ",\"hazards\":[";
  for (std::size_t i = 0; i < hazards.size(); ++i) {
    if (i > 0) out << ",";
    const Hazard& h = hazards[i];
    out << "{\"kind\":\"" << to_string(h.kind) << "\",\"message\":\""
        << json_escape(h.message) << "\",\"first\":";
    write_site_json(out, h.first);
    out << ",\"second\":";
    write_site_json(out, h.second);
    out << "}";
  }
  out << "]}";
}

std::vector<std::pair<std::string, double>> telemetry_series(
    const AuditReport& report) {
  const auto ratio = [](std::uint64_t num, std::uint64_t den) {
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
  };
  return {
      {"gpucheck.bank.max_degree", static_cast<double>(report.bank.max_degree)},
      {"gpucheck.bank.conflict_ratio",
       ratio(report.bank.conflicted_accesses, report.bank.accesses)},
      // Transactions per ideal transaction: 1.0 = perfectly coalesced.
      {"gpucheck.coalescing.ratio",
       ratio(report.coalescing.load_transactions,
             report.coalescing.ideal_transactions)},
      {"gpucheck.coalescing.excess_requests",
       static_cast<double>(report.coalescing.excess_requests)},
      {"gpucheck.coalescing.staging_excess",
       static_cast<double>(report.coalescing.staging_excess)},
      {"gpucheck.hazards.total", static_cast<double>(report.total_hazards())},
  };
}

void publish(const AuditReport& report, telemetry::MetricsRegistry& registry) {
  for (const auto& [name, value] : telemetry_series(report)) {
    if (name == "gpucheck.bank.max_degree")
      registry.gauge(name).set_max(value);
    else
      registry.gauge(name).set(value);
  }
}

}  // namespace acgpu::gpucheck
