#include "telemetry/health.h"

#include <algorithm>

#include "telemetry/metrics_registry.h"
#include "util/error.h"

namespace acgpu::telemetry {

const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::kOk: return "ok";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kUnhealthy: return "unhealthy";
  }
  return "?";
}

SloPolicy SloPolicy::serving_defaults() {
  SloPolicy p;
  p.feed_p99_ns = {50e6, 250e6};   // 50 ms degraded, 250 ms unhealthy
  p.queue_depth = {64, 256};
  p.error_rate = {0.05, 0.25};
  return p;
}

HealthMonitor::HealthMonitor(std::uint32_t shards, SloPolicy policy,
                             MetricsRegistry* metrics)
    : policy_(policy) {
  ACGPU_CHECK(shards >= 1, "HealthMonitor needs at least one shard");
  policy_.window = std::max(1u, policy_.window);
  shards_.reserve(shards);
  for (std::uint32_t k = 0; k < shards; ++k) {
    auto s = std::make_unique<PerShard>();
    s->ring.reserve(policy_.window);
    if (metrics != nullptr) {
      const std::string prefix = "health." + std::to_string(k) + ".";
      s->g_state = &metrics->gauge(prefix + "state");
      s->g_p50 = &metrics->gauge(prefix + "feed_p50_ns");
      s->g_p99 = &metrics->gauge(prefix + "feed_p99_ns");
      s->g_queue = &metrics->gauge(prefix + "queue_depth");
      s->g_error = &metrics->gauge(prefix + "error_rate");
      s->g_eviction = &metrics->gauge(prefix + "eviction_rate");
      s->g_breaches = &metrics->gauge(prefix + "breaches");
    }
    shards_.push_back(std::move(s));
  }
}

void HealthMonitor::observe_feed(std::uint32_t shard, double latency_ns, bool ok) {
  ACGPU_CHECK(shard < shards_.size(), "health shard " << shard << " out of range");
  PerShard& s = *shards_[shard];
  std::scoped_lock lock(s.mu);
  const FeedSample sample{latency_ns, ok};
  if (s.ring.size() < policy_.window) {
    s.ring.push_back(sample);
    if (!ok) ++s.errors_in_ring;
  } else {
    FeedSample& old = s.ring[s.next];
    if (!old.ok) --s.errors_in_ring;
    if (!ok) ++s.errors_in_ring;
    old = sample;
    s.next = (s.next + 1) % policy_.window;
  }
  ++s.total_feeds;
  // Tumbling eviction window: every W feeds, fold the eviction count into a
  // rate and restart the count.
  if (++s.feeds_in_tumble >= policy_.window) {
    s.last_eviction_rate =
        static_cast<double>(s.evictions_window) / policy_.window;
    s.evictions_window = 0;
    s.feeds_in_tumble = 0;
  }
}

void HealthMonitor::observe_queue_depth(std::uint32_t shard, double depth) {
  ACGPU_CHECK(shard < shards_.size(), "health shard " << shard << " out of range");
  PerShard& s = *shards_[shard];
  std::scoped_lock lock(s.mu);
  s.queue_depth = depth;
}

void HealthMonitor::observe_eviction(std::uint32_t shard, std::uint64_t n) {
  ACGPU_CHECK(shard < shards_.size(), "health shard " << shard << " out of range");
  PerShard& s = *shards_[shard];
  std::scoped_lock lock(s.mu);
  s.evictions_window += n;
}

namespace {

double percentile_of(std::vector<double>& sorted_scratch, double pct) {
  if (sorted_scratch.empty()) return 0;
  std::sort(sorted_scratch.begin(), sorted_scratch.end());
  const double rank = pct / 100.0 * static_cast<double>(sorted_scratch.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_scratch.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_scratch[lo] * (1.0 - frac) + sorted_scratch[hi] * frac;
}

/// Worst breach level of `value` against `target`; appends the dimension to
/// `breached` when it trips at all.
HealthState judge(double value, const SloTarget& target, const char* dimension,
                  std::string& breached, HealthState worst) {
  if (!target.enforced()) return worst;
  HealthState level = HealthState::kOk;
  if (value > target.unhealthy)
    level = HealthState::kUnhealthy;
  else if (value > target.degraded)
    level = HealthState::kDegraded;
  if (level == HealthState::kOk) return worst;
  if (!breached.empty()) breached += ",";
  breached += dimension;
  return level > worst ? level : worst;
}

}  // namespace

HealthState HealthMonitor::evaluate(std::uint32_t shard) {
  ACGPU_CHECK(shard < shards_.size(), "health shard " << shard << " out of range");
  PerShard& s = *shards_[shard];

  HealthState from{}, to{};
  bool transitioned = false;
  {
    std::scoped_lock lock(s.mu);
    std::vector<double> lat;
    lat.reserve(s.ring.size());
    for (const FeedSample& f : s.ring) lat.push_back(f.latency_ns);
    const double p50 = percentile_of(lat, 50);
    const double p99 = percentile_of(lat, 99);
    const double error_rate =
        s.ring.empty() ? 0
                       : static_cast<double>(s.errors_in_ring) /
                             static_cast<double>(s.ring.size());
    const double eviction_rate = s.last_eviction_rate;
    const bool warm = s.ring.size() >= policy_.min_samples;

    std::string breached;
    HealthState next = HealthState::kOk;
    if (warm) {
      next = judge(p50, policy_.feed_p50_ns, "feed_p50_ns", breached, next);
      next = judge(p99, policy_.feed_p99_ns, "feed_p99_ns", breached, next);
      next = judge(error_rate, policy_.error_rate, "error_rate", breached, next);
      next = judge(eviction_rate, policy_.eviction_rate, "eviction_rate",
                   breached, next);
    }
    next = judge(s.queue_depth, policy_.queue_depth, "queue_depth", breached, next);

    from = s.state;
    to = next;
    transitioned = from != to;
    if (to > from) ++s.breaches;
    s.state = to;
    s.breached = std::move(breached);

    if (s.g_state != nullptr) {
      s.g_state->set(static_cast<double>(to));
      s.g_p50->set(p50);
      s.g_p99->set(p99);
      s.g_queue->set(s.queue_depth);
      s.g_error->set(error_rate);
      s.g_eviction->set(eviction_rate);
      s.g_breaches->set(static_cast<double>(s.breaches));
    }
  }
  if (transitioned) {
    TransitionListener listener;
    {
      std::scoped_lock lock(listener_mu_);
      listener = listener_;
    }
    if (listener) listener(shard, from, to);
  }
  return to;
}

HealthState HealthMonitor::state(std::uint32_t shard) const {
  ACGPU_CHECK(shard < shards_.size(), "health shard " << shard << " out of range");
  const PerShard& s = *shards_[shard];
  std::scoped_lock lock(s.mu);
  return s.state;
}

ShardHealth HealthMonitor::snapshot_locked(const PerShard& s) const {
  ShardHealth out;
  out.state = s.state;
  std::vector<double> lat;
  lat.reserve(s.ring.size());
  for (const FeedSample& f : s.ring) lat.push_back(f.latency_ns);
  out.feed_p50_ns = percentile_of(lat, 50);
  out.feed_p99_ns = percentile_of(lat, 99);
  out.queue_depth = s.queue_depth;
  out.error_rate = s.ring.empty()
                       ? 0
                       : static_cast<double>(s.errors_in_ring) /
                             static_cast<double>(s.ring.size());
  out.eviction_rate = s.last_eviction_rate;
  out.window_samples = s.ring.size();
  out.breaches = s.breaches;
  out.breached = s.breached;
  return out;
}

ShardHealth HealthMonitor::shard_health(std::uint32_t shard) const {
  ACGPU_CHECK(shard < shards_.size(), "health shard " << shard << " out of range");
  const PerShard& s = *shards_[shard];
  std::scoped_lock lock(s.mu);
  return snapshot_locked(s);
}

void HealthMonitor::set_transition_listener(TransitionListener listener) {
  std::scoped_lock lock(listener_mu_);
  listener_ = std::move(listener);
}

}  // namespace acgpu::telemetry
