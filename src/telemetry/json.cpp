#include "telemetry/json.h"

#include <cctype>
#include <cstdlib>

namespace acgpu::telemetry {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::optional<double> JsonValue::number_at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  return v->number();
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse() {
    std::optional<JsonValue> value = parse_value();
    if (!value) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        std::optional<std::string> s = parse_string();
        if (!s) return std::nullopt;
        return JsonValue(std::move(*s));
      }
      case 't': return literal("true") ? std::optional<JsonValue>(JsonValue(true))
                                       : std::nullopt;
      case 'f': return literal("false") ? std::optional<JsonValue>(JsonValue(false))
                                        : std::nullopt;
      case 'n': return literal("null") ? std::optional<JsonValue>(JsonValue())
                                       : std::nullopt;
      default: return parse_number();
    }
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return std::nullopt;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    return JsonValue(value);
  }

  std::optional<std::string> parse_string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // The emitters only escape control characters; decode the BMP
          // code point as UTF-8 and reject surrogate pairs as out of scope.
          if (code >= 0xD800 && code <= 0xDFFF) return std::nullopt;
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> parse_array() {
    if (!eat('[')) return std::nullopt;
    JsonValue::Array items;
    skip_ws();
    if (eat(']')) return JsonValue(std::move(items));
    while (true) {
      std::optional<JsonValue> item = parse_value();
      if (!item) return std::nullopt;
      items.push_back(std::move(*item));
      if (eat(']')) return JsonValue(std::move(items));
      if (!eat(',')) return std::nullopt;
    }
  }

  std::optional<JsonValue> parse_object() {
    if (!eat('{')) return std::nullopt;
    JsonValue::Object members;
    skip_ws();
    if (eat('}')) return JsonValue(std::move(members));
    while (true) {
      skip_ws();
      std::optional<std::string> key = parse_string();
      if (!key) return std::nullopt;
      if (!eat(':')) return std::nullopt;
      std::optional<JsonValue> value = parse_value();
      if (!value) return std::nullopt;
      members.insert_or_assign(std::move(*key), std::move(*value));
      if (eat('}')) return JsonValue(std::move(members));
      if (!eat(',')) return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace acgpu::telemetry
