// telemetry::Logger — severity-filtered, rate-limited diagnostics.
//
// Library code used to print straight to stderr (the PR 6 stream-clamp
// warning guarded itself with a process-global static). That pattern cannot
// be tested, silenced, or redirected, and it rate-limits per *process*, not
// per logger. The Logger replaces it: every diagnostic goes through
// log(severity, key, message), where `key` names the event class
// ("pipeline.streams_clamped", "cluster.shard_failed") and the per-key
// budget decides whether the message reaches the sink or is counted as
// suppressed. A null Logger* in options structs falls back to
// Logger::global() (stderr), so default behavior still surfaces warnings —
// once per key, exactly like the old static guard — while tests and
// embedders install their own sink.
//
// Rate limiting: each key may emit `burst` messages per window. window_ns=0
// (the default) means one window for the logger's lifetime — i.e. the first
// `burst` occurrences print, the rest are counted. A finite window re-arms
// the key when it elapses, and the first message of the new window reports
// how many were suppressed meanwhile. The clock is injectable for tests.
//
// Thread-safety: log() takes the logger mutex (diagnostics are not a hot
// path — the hot paths emit metrics and flight-recorder events instead).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace acgpu::telemetry {

enum class LogSeverity : std::uint8_t { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* to_string(LogSeverity severity);

/// Receives every emitted (non-suppressed) message.
using LogSink =
    std::function<void(LogSeverity, std::string_view key, std::string_view message)>;

struct LoggerOptions {
  /// Messages below this severity are dropped (not counted as suppressed).
  LogSeverity min_severity = LogSeverity::kInfo;
  /// Messages a key may emit per window before suppression kicks in.
  std::uint32_t burst = 1;
  /// Rate window in nanoseconds; 0 = never re-arms (once-per-lifetime keys,
  /// the drop-in replacement for the old static one-time guards).
  std::uint64_t window_ns = 0;
  /// Null = the default stderr sink ("[warn] key: message").
  LogSink sink;
  /// Test seam: monotonic-nanosecond source. Null = acgpu::now_ns.
  std::function<std::uint64_t()> clock;
};

struct LoggerStats {
  std::uint64_t emitted = 0;
  std::uint64_t suppressed = 0;
  std::uint64_t filtered = 0;  ///< below min_severity
};

class Logger {
 public:
  explicit Logger(LoggerOptions options = {});

  /// Emits (or suppresses) one message under `key`'s rate budget. `key`
  /// follows the dotted metric naming scheme by convention.
  void log(LogSeverity severity, std::string_view key, std::string_view message);

  void debug(std::string_view key, std::string_view message) {
    log(LogSeverity::kDebug, key, message);
  }
  void info(std::string_view key, std::string_view message) {
    log(LogSeverity::kInfo, key, message);
  }
  void warn(std::string_view key, std::string_view message) {
    log(LogSeverity::kWarn, key, message);
  }
  void error(std::string_view key, std::string_view message) {
    log(LogSeverity::kError, key, message);
  }

  LoggerStats stats() const;
  /// Messages suppressed under `key` so far (across all windows).
  std::uint64_t suppressed(std::string_view key) const;

  /// The process-wide default logger (stderr, burst 1, lifetime window).
  /// Library code takes a Logger* (null = global()) rather than reaching
  /// for this directly.
  static Logger& global();

 private:
  struct KeyState {
    std::uint64_t window_start_ns = 0;
    std::uint32_t emitted_in_window = 0;
    std::uint64_t suppressed_in_window = 0;
    std::uint64_t suppressed_total = 0;
  };

  LoggerOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, KeyState, std::less<>> keys_;
  LoggerStats stats_;
};

}  // namespace acgpu::telemetry
