// FlightRecorder — the always-on black box for the serving fleet.
//
// Metrics aggregate away the story and traces are too heavy to leave on in
// production; the flight recorder sits between them: every thread appends
// compact 32-byte binary events (admission, batch issue/retire, staging
// lease grant/release, shard failure, hazard) into its own fixed-size ring
// buffer, overwriting the oldest — so at any moment the recorder holds the
// fleet's last moments at a cost of four relaxed atomic stores per event.
// When something dies (Router::mark_failed, a hazard report, a fatal
// Status) or someone asks (dump()), the rings are merged, time-sorted, and
// serialized to a postmortem JSON joined with a metrics snapshot: evidence
// of what every thread was doing in the window before the failure.
//
// Concurrency: each ring is written by exactly one thread (thread-local
// slot assignment, like Tracer's track assignment); writes are lock-free —
// a slot is four relaxed atomic u64 stores plus one release store of the
// ring head. Readers (dump) take no writer-visible lock; an event being
// overwritten concurrently with a dump may read torn and is discarded by
// the head re-check. The registration mutex is taken once per thread.
//
// A null FlightRecorder* everywhere means recording is off and costs one
// branch — the "exactly zero when TelemetryOptions is null" half of the CI
// overhead gate.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace acgpu::telemetry {

class MetricsSnapshot;

enum class FlightEventKind : std::uint8_t {
  kAdmission = 0,      ///< feed accepted       a=session id, b=chunk bytes
  kReject = 1,         ///< feed rejected       a=session id, code=StatusCode
  kEviction = 2,       ///< LRU session evicted a=session id
  kBatchIssue = 3,     ///< pipeline batch H2D  a=batch index, b=staged bytes
  kBatchRetire = 4,    ///< pipeline batch D2H  a=batch index, b=output bytes
  kLeaseGrant = 5,     ///< staging lease out   a=buffer index, code=pool class
  kLeaseRelease = 6,   ///< staging lease back  a=buffer index, code=pool class
  kShardFailure = 7,   ///< device marked failed
  kShardRestore = 8,   ///< device restored
  kHealthTransition = 9,  ///< a=from HealthState, b=to HealthState
  kHazard = 10,        ///< auditor-detected hazard, code=hazard kind
  kError = 11,         ///< fatal/unexpected Status, code=StatusCode
  kMark = 12,          ///< caller-defined marker (tests, tools)
};

const char* to_string(FlightEventKind kind);

/// One decoded event (the dump-side view; the rings store packed words).
struct FlightEvent {
  std::uint64_t t_ns = 0;   ///< wall clock (acgpu::now_ns)
  FlightEventKind kind{};
  std::uint32_t shard = 0;  ///< owning shard / device index (0 standalone)
  std::uint32_t code = 0;   ///< kind-specific discriminator
  std::uint64_t a = 0;      ///< kind-specific payload
  std::uint64_t b = 0;
  std::uint32_t thread = 0; ///< recorder slot of the writing thread
};

struct FlightRecorderOptions {
  /// Events retained per thread; rounded up to a power of two. 4096 events
  /// x 32 bytes = 128 KiB per thread.
  std::uint32_t ring_capacity = 1u << 12;
  /// Rings available; threads beyond this drop events (counted).
  std::uint32_t max_threads = 64;
  /// Default postmortem window: only events newer than now - window are
  /// dumped. 0 = everything still in the rings.
  std::uint64_t dump_window_ns = 0;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});

  /// Lock-free append (after the calling thread's first event, which
  /// registers its ring under the mutex).
  void record(FlightEventKind kind, std::uint32_t shard = 0, std::uint64_t a = 0,
              std::uint64_t b = 0, std::uint32_t code = 0);

  /// Total events ever recorded / dropped for want of a ring.
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

  /// Merged, time-sorted copy of every ring's retained events, filtered to
  /// the last `window_ns` (0 = the options default; options 0 = no filter).
  std::vector<FlightEvent> events(std::uint64_t window_ns = 0) const;

  /// Serializes events(window_ns) + `reason` + an optional metrics snapshot
  /// as the postmortem JSON (schema: docs/OBSERVABILITY.md). Safe to call
  /// while other threads keep recording.
  void write_postmortem(std::ostream& out, std::string_view reason,
                        const MetricsSnapshot* metrics = nullptr,
                        std::uint64_t window_ns = 0) const;

  const FlightRecorderOptions& options() const { return options_; }

 private:
  /// Ring slots are four relaxed-atomic words so concurrent dump reads are
  /// race-free (possibly torn across words — the head re-check discards
  /// slots overwritten mid-copy).
  struct Slot {
    std::atomic<std::uint64_t> t_ns{0};
    std::atomic<std::uint64_t> meta{0};  ///< kind | shard<<8 | code<<32
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
  };
  struct Ring {
    std::atomic<std::uint64_t> head{0};  ///< total writes; slot = head & mask
    std::unique_ptr<Slot[]> slots;
  };

  Ring* thread_ring();

  FlightRecorderOptions options_;
  std::uint32_t mask_ = 0;  ///< ring_capacity - 1 (capacity forced to 2^n)
  std::uint64_t serial_ = 0;  ///< keys thread-local ring cache, unique per recorder
  mutable std::mutex mu_;     ///< ring registration only
  std::vector<std::unique_ptr<Ring>> rings_;
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace acgpu::telemetry
