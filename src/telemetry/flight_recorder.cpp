#include "telemetry/flight_recorder.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

#include "telemetry/metrics_registry.h"
#include "telemetry/trace.h"  // json_escape
#include "util/stopwatch.h"

namespace acgpu::telemetry {

const char* to_string(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kAdmission: return "admission";
    case FlightEventKind::kReject: return "reject";
    case FlightEventKind::kEviction: return "eviction";
    case FlightEventKind::kBatchIssue: return "batch_issue";
    case FlightEventKind::kBatchRetire: return "batch_retire";
    case FlightEventKind::kLeaseGrant: return "lease_grant";
    case FlightEventKind::kLeaseRelease: return "lease_release";
    case FlightEventKind::kShardFailure: return "shard_failure";
    case FlightEventKind::kShardRestore: return "shard_restore";
    case FlightEventKind::kHealthTransition: return "health_transition";
    case FlightEventKind::kHazard: return "hazard";
    case FlightEventKind::kError: return "error";
    case FlightEventKind::kMark: return "mark";
  }
  return "?";
}

namespace {

std::uint32_t round_up_pow2(std::uint32_t v) {
  std::uint32_t p = 1;
  while (p < v && p < (1u << 30)) p <<= 1;
  return p;
}

/// Per-recorder serial keys the thread-local ring cache (the Tracer idiom:
/// survives a recorder dying and another reusing its address).
std::uint64_t next_recorder_serial() {
  static std::atomic<std::uint64_t> serial{1};
  return serial.fetch_add(1, std::memory_order_relaxed);
}

constexpr std::uint64_t pack_meta(FlightEventKind kind, std::uint32_t shard,
                                  std::uint32_t code) {
  return static_cast<std::uint64_t>(kind) |
         (static_cast<std::uint64_t>(shard & 0xFFFFFFu) << 8) |
         (static_cast<std::uint64_t>(code) << 32);
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(options), serial_(next_recorder_serial()) {
  options_.ring_capacity = round_up_pow2(std::max(2u, options_.ring_capacity));
  options_.max_threads = std::max(1u, options_.max_threads);
  mask_ = options_.ring_capacity - 1;
  rings_.reserve(options_.max_threads);
}

FlightRecorder::Ring* FlightRecorder::thread_ring() {
  // Slot index per (thread, recorder); nullptr caches "over max_threads" so
  // dropping threads never retake the registration mutex.
  thread_local std::map<std::uint64_t, Ring*> cache;
  const auto it = cache.find(serial_);
  if (it != cache.end()) return it->second;

  std::scoped_lock lock(mu_);
  Ring* ring = nullptr;
  if (rings_.size() < options_.max_threads) {
    auto owned = std::make_unique<Ring>();
    owned->slots = std::make_unique<Slot[]>(options_.ring_capacity);
    ring = owned.get();
    rings_.push_back(std::move(owned));
  }
  cache.emplace(serial_, ring);
  return ring;
}

void FlightRecorder::record(FlightEventKind kind, std::uint32_t shard,
                            std::uint64_t a, std::uint64_t b, std::uint32_t code) {
  Ring* ring = thread_ring();
  if (ring == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[head & mask_];
  slot.t_ns.store(now_ns(), std::memory_order_relaxed);
  slot.meta.store(pack_meta(kind, shard, code), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  // Publish: readers only trust slots below head, so the payload stores
  // above must be visible first.
  ring->head.store(head + 1, std::memory_order_release);
}

std::uint64_t FlightRecorder::recorded() const {
  std::scoped_lock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_)
    total += ring->head.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t FlightRecorder::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

std::vector<FlightEvent> FlightRecorder::events(std::uint64_t window_ns) const {
  if (window_ns == 0) window_ns = options_.dump_window_ns;
  const std::uint64_t now = now_ns();
  const std::uint64_t cutoff =
      window_ns == 0 || window_ns > now ? 0 : now - window_ns;

  std::vector<FlightEvent> out;
  std::scoped_lock lock(mu_);  // stops ring registration, not recording
  for (std::size_t r = 0; r < rings_.size(); ++r) {
    const Ring& ring = *rings_[r];
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    const std::uint64_t count =
        std::min<std::uint64_t>(head, options_.ring_capacity);
    for (std::uint64_t i = head - count; i < head; ++i) {
      const Slot& slot = ring.slots[i & mask_];
      FlightEvent ev;
      ev.t_ns = slot.t_ns.load(std::memory_order_relaxed);
      const std::uint64_t meta = slot.meta.load(std::memory_order_relaxed);
      ev.a = slot.a.load(std::memory_order_relaxed);
      ev.b = slot.b.load(std::memory_order_relaxed);
      // Re-check: if the writer lapped this slot while we copied it, the
      // words may be torn — discard rather than report fiction.
      if (ring.head.load(std::memory_order_acquire) - i > options_.ring_capacity)
        continue;
      ev.kind = static_cast<FlightEventKind>(meta & 0xFF);
      ev.shard = static_cast<std::uint32_t>((meta >> 8) & 0xFFFFFFu);
      ev.code = static_cast<std::uint32_t>(meta >> 32);
      ev.thread = static_cast<std::uint32_t>(r);
      if (ev.t_ns >= cutoff) out.push_back(ev);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEvent& x, const FlightEvent& y) {
                     return x.t_ns < y.t_ns;
                   });
  return out;
}

void FlightRecorder::write_postmortem(std::ostream& out, std::string_view reason,
                                      const MetricsSnapshot* metrics,
                                      std::uint64_t window_ns) const {
  const std::vector<FlightEvent> evs = events(window_ns);
  out << "{\"postmortem\":{";
  out << "\"reason\":\"" << json_escape(reason) << "\"";
  out << ",\"dumped_t_ns\":" << now_ns();
  out << ",\"window_ns\":"
      << (window_ns != 0 ? window_ns : options_.dump_window_ns);
  out << ",\"recorded\":" << recorded();
  out << ",\"dropped\":" << dropped();
  out << ",\"events\":[";
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const FlightEvent& e = evs[i];
    if (i > 0) out << ",";
    out << "\n{\"t_ns\":" << e.t_ns << ",\"kind\":\"" << to_string(e.kind)
        << "\",\"shard\":" << e.shard << ",\"code\":" << e.code
        << ",\"a\":" << e.a << ",\"b\":" << e.b << ",\"thread\":" << e.thread
        << "}";
  }
  out << "\n]}";
  if (metrics != nullptr) {
    // MetricsSnapshot::write_json emits {"metrics":{...}}; splice its body
    // so the postmortem is one well-formed object.
    out << ",";
    std::ostringstream tmp;
    metrics->write_json(tmp);
    std::string body = tmp.str();
    const std::size_t open = body.find('{');
    const std::size_t close = body.rfind('}');
    out << body.substr(open + 1, close - open - 1);
  }
  out << "}\n";
}

}  // namespace acgpu::telemetry
