#include "telemetry/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <ostream>

#include "util/error.h"

namespace acgpu::telemetry {

namespace {

/// Per-Tracer serial so thread-local state survives a Tracer being destroyed
/// and another allocated at the same address (tests do this freely).
std::uint64_t next_tracer_serial() {
  static std::atomic<std::uint64_t> serial{1};
  return serial.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Tracer::Tracer() : epoch_ns_(now_ns()), serial_(next_tracer_serial()) {}

Tracer::ThreadState& Tracer::thread_state() {
  thread_local std::map<std::uint64_t, ThreadState> states;
  ThreadState& st = states[serial_];
  if (st.track == 0) {
    std::lock_guard<std::mutex> lock(mu_);
    st.track = next_track_++;
  }
  return st;
}

std::uint64_t Tracer::begin_span(std::string_view name) {
  ThreadState& st = thread_state();
  ActiveSpan span;
  span.name = std::string(name);
  span.start_ns = now_ns();
  span.parent = st.stack.empty() ? 0 : st.stack.back().id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    span.id = next_id_++;
  }
  st.stack.push_back(std::move(span));
  return st.stack.back().id;
}

void Tracer::end_span(std::uint64_t id) {
  ThreadState& st = thread_state();
  ACGPU_CHECK(!st.stack.empty() && st.stack.back().id == id,
              "span " << id << " ended out of order (spans are RAII-nested "
                      << "per thread)");
  ActiveSpan span = std::move(st.stack.back());
  st.stack.pop_back();

  TraceEvent event;
  event.name = std::move(span.name);
  event.track = st.track;
  event.start_ns = span.start_ns - epoch_ns_;
  event.dur_ns = now_ns() - span.start_ns;
  event.id = span.id;
  event.parent = span.parent;
  event.args = std::move(span.args);
  std::lock_guard<std::mutex> lock(mu_);
  completed_.push_back(std::move(event));
}

void Tracer::annotate(std::string_view key, std::string_view value) {
  ThreadState& st = thread_state();
  ACGPU_CHECK(!st.stack.empty(), "annotate('" << std::string(key)
                                              << "') with no open span");
  st.stack.back().args.emplace_back(std::string(key), std::string(value));
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_.size();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::uint64_t ChromeTrace::process(std::string_view name) {
  for (std::size_t i = 0; i < processes_.size(); ++i)
    if (processes_[i].name == name) return i + 1;
  processes_.push_back({std::string(name), {}});
  return processes_.size();
}

std::uint64_t ChromeTrace::track(std::uint64_t pid, std::string_view name) {
  ACGPU_CHECK(pid >= 1 && pid <= processes_.size(), "unknown trace pid " << pid);
  Process& p = processes_[pid - 1];
  for (std::size_t i = 0; i < p.tracks.size(); ++i)
    if (p.tracks[i] == name) return i + 1;
  p.tracks.push_back(std::string(name));
  return p.tracks.size();
}

void ChromeTrace::add_slice(std::uint64_t pid, std::uint64_t tid,
                            std::string_view name, std::uint64_t start_ns,
                            std::uint64_t dur_ns,
                            std::vector<std::pair<std::string, std::string>> args) {
  slices_.push_back({pid, tid, std::string(name), start_ns, dur_ns, std::move(args)});
}

void ChromeTrace::add_counter(std::uint64_t pid, std::string_view series,
                              std::uint64_t t_ns, double value) {
  counters_.push_back({pid, std::string(series), t_ns, value});
}

void ChromeTrace::add_tracer(const Tracer& tracer, std::string_view process_name) {
  const std::uint64_t pid = process(process_name);
  for (const TraceEvent& e : tracer.events()) {
    char track_name[32];
    std::snprintf(track_name, sizeof track_name, "thread %llu",
                  static_cast<unsigned long long>(e.track));
    const std::uint64_t tid = track(pid, track_name);
    std::vector<std::pair<std::string, std::string>> args = e.args;
    args.emplace_back("span_id", std::to_string(e.id));
    if (e.parent != 0) args.emplace_back("parent_span_id", std::to_string(e.parent));
    add_slice(pid, tid, e.name, e.start_ns, e.dur_ns, std::move(args));
  }
}

namespace {

/// Trace-event timestamps are microseconds; emit ns-precision fractions.
void write_us(std::ostream& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out << buf;
}

}  // namespace

void ChromeTrace::write(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&]() {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  // Track metadata: names for every process and thread row.
  for (std::size_t p = 0; p < processes_.size(); ++p) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":" << (p + 1)
        << ",\"name\":\"process_name\",\"args\":{\"name\":\""
        << json_escape(processes_[p].name) << "\"}}";
    for (std::size_t t = 0; t < processes_[p].tracks.size(); ++t) {
      sep();
      out << "{\"ph\":\"M\",\"pid\":" << (p + 1) << ",\"tid\":" << (t + 1)
          << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
          << json_escape(processes_[p].tracks[t]) << "\"}}";
    }
  }

  // Slices, sorted (pid, tid, start, longer-first) so nested host spans
  // enclose their children and per-track device slices come out monotone.
  std::vector<const Slice*> order;
  order.reserve(slices_.size());
  for (const Slice& s : slices_) order.push_back(&s);
  std::stable_sort(order.begin(), order.end(), [](const Slice* a, const Slice* b) {
    if (a->pid != b->pid) return a->pid < b->pid;
    if (a->tid != b->tid) return a->tid < b->tid;
    if (a->start_ns != b->start_ns) return a->start_ns < b->start_ns;
    return a->dur_ns > b->dur_ns;
  });
  for (const Slice* s : order) {
    sep();
    out << "{\"ph\":\"X\",\"pid\":" << s->pid << ",\"tid\":" << s->tid
        << ",\"name\":\"" << json_escape(s->name) << "\",\"ts\":";
    write_us(out, s->start_ns);
    out << ",\"dur\":";
    write_us(out, s->dur_ns);
    if (!s->args.empty()) {
      out << ",\"args\":{";
      for (std::size_t i = 0; i < s->args.size(); ++i) {
        if (i > 0) out << ",";
        out << "\"" << json_escape(s->args[i].first) << "\":\""
            << json_escape(s->args[i].second) << "\"";
      }
      out << "}";
    }
    out << "}";
  }

  // Counter samples, sorted (pid, series, t) for deterministic output.
  std::vector<const Counter*> corder;
  corder.reserve(counters_.size());
  for (const Counter& c : counters_) corder.push_back(&c);
  std::stable_sort(corder.begin(), corder.end(), [](const Counter* a, const Counter* b) {
    if (a->pid != b->pid) return a->pid < b->pid;
    if (a->series != b->series) return a->series < b->series;
    return a->t_ns < b->t_ns;
  });
  for (const Counter* c : corder) {
    sep();
    out << "{\"ph\":\"C\",\"pid\":" << c->pid << ",\"tid\":0,\"name\":\""
        << json_escape(c->series) << "\",\"ts\":";
    write_us(out, c->t_ns);
    out << ",\"args\":{\"value\":" << c->value << "}}";
  }

  out << "\n]}\n";
}

}  // namespace acgpu::telemetry
