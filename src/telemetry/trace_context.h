// TraceContext — the causal identity of one request as it crosses layers.
//
// A feed() enters at cluster::Router, is parked in a serve::Scheduler queue,
// coalesced into a superbatch with other sessions' chunks, scanned through
// the pipeline, and simulated on a device — four layers, up to three threads,
// and two clock domains. The TraceContext is the thread of Ariadne: the
// router mints one per request (deterministic ids — run twice, get the same
// ids), every span the request touches is annotated with its trace id, and
// Perfetto's query/search joins them back into one causal chain:
//
//   router.feed  #tid ──► serve.superbatch  #tid,... ──► pipeline.run
//    (router process)       (shard k host process)          │
//                                                    pipeline.batch
//                                                           │
//                                                    kernel.simulate
//
// Cross-batch links: a superbatch coalesces many sessions' chunks, so its
// span carries the *list* of member trace ids — one superbatch span joins
// against every request it served.
//
// parent_span records the minting span's id inside the minting tracer; it
// does not create a Perfetto parent link across processes (those are
// same-thread nesting links), it preserves causality in the args.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

namespace acgpu::telemetry {

struct TraceContext {
  std::uint64_t trace_id = 0;     ///< 0 = untraced (tracing off / pre-router)
  std::uint64_t parent_span = 0;  ///< minting span's id in the minting tracer

  bool valid() const { return trace_id != 0; }
};

/// Canonical rendering of a trace id in span args ("t0000002a"): fixed-width
/// hex so Perfetto text search matches whole ids, never prefixes.
inline std::string trace_id_string(std::uint64_t trace_id) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "t%08llx", static_cast<unsigned long long>(trace_id));
  return buf;
}

/// Deterministic trace-id mint: ids are namespace+1, namespace+2, ... in
/// admission order. With a deterministic workload replay the n-th request
/// gets the same id in every run, which is what lets tests (and humans
/// comparing two trace files) name "the" request. Thread-safe.
class TraceContextMinter {
 public:
  explicit TraceContextMinter(std::uint64_t id_namespace = 0)
      : next_(id_namespace + 1) {}

  TraceContext mint(std::uint64_t parent_span = 0) {
    return TraceContext{next_.fetch_add(1, std::memory_order_relaxed), parent_span};
  }

  /// Ids handed out so far.
  std::uint64_t minted(std::uint64_t id_namespace = 0) const {
    return next_.load(std::memory_order_relaxed) - id_namespace - 1;
  }

 private:
  std::atomic<std::uint64_t> next_;
};

}  // namespace acgpu::telemetry
