#include "telemetry/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "telemetry/json.h"
#include "util/error.h"
#include "util/table.h"

namespace acgpu::telemetry {

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

bool valid_metric_name(std::string_view name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  bool prev_dot = false;
  for (const char c : name) {
    if (c == '.') {
      if (prev_dot) return false;
      prev_dot = true;
      continue;
    }
    prev_dot = false;
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

void Histogram::observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.add(v);
  if (samples_.count() < kSampleCap) samples_.add(v);
}

HistogramSummary Histogram::summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSummary s;
  s.count = stats_.count();
  if (s.count == 0) return s;
  s.mean = stats_.mean();
  s.min = stats_.min();
  s.max = stats_.max();
  s.p50 = samples_.percentile(50);
  s.p90 = samples_.percentile(90);
  s.p99 = samples_.percentile(99);
  return s;
}

std::optional<double> MetricsSnapshot::value(std::string_view name) const {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const SnapshotEntry& e, std::string_view n) { return e.name < n; });
  if (it == entries.end() || it->name != name) return std::nullopt;
  return it->value;
}

namespace {

/// JSON has no Inf/NaN; clamp the (never expected) degenerate values to 0.
double json_safe(double v) { return std::isfinite(v) ? v : 0.0; }

std::string format_value(double v) {
  std::ostringstream os;
  os << json_safe(v);
  return os.str();
}

}  // namespace

void MetricsSnapshot::write_json(std::ostream& out) const {
  out << "{\"metrics\":{";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << entries[i].name << "\":" << json_safe(entries[i].value);
  }
  out << "},\"kinds\":{";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << entries[i].name << "\":\"" << to_string(entries[i].kind) << "\"";
  }
  out << "}}\n";
}

void MetricsSnapshot::write_csv(std::ostream& out) const {
  out << "name,kind,value\n";
  for (const SnapshotEntry& e : entries)
    out << e.name << "," << to_string(e.kind) << "," << json_safe(e.value) << "\n";
}

void MetricsSnapshot::write_table(std::ostream& out) const {
  Table table;
  table.set_header({"metric", "kind", "value"});
  for (const SnapshotEntry& e : entries)
    table.add_row({e.name, to_string(e.kind), format_value(e.value)});
  table.print(out);
}

std::optional<MetricsSnapshot> parse_snapshot(std::string_view json_text) {
  const std::optional<JsonValue> root = parse_json(json_text);
  if (!root || !root->is_object()) return std::nullopt;
  const JsonValue* metrics = root->find("metrics");
  if (metrics == nullptr || !metrics->is_object()) return std::nullopt;
  const JsonValue* kinds = root->find("kinds");

  MetricsSnapshot snap;
  for (const auto& [name, value] : metrics->object()) {
    if (!value.is_number()) return std::nullopt;
    SnapshotEntry entry;
    entry.name = name;
    entry.value = value.number();
    entry.kind = MetricKind::kGauge;
    if (kinds != nullptr && kinds->is_object()) {
      if (const JsonValue* k = kinds->find(name); k != nullptr && k->is_string()) {
        if (k->string() == "counter") entry.kind = MetricKind::kCounter;
        if (k->string() == "histogram") entry.kind = MetricKind::kHistogram;
      }
    }
    snap.entries.push_back(std::move(entry));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) { return a.name < b.name; });
  return snap;
}

MetricsRegistry::Metric& MetricsRegistry::resolve(std::string_view name,
                                                  MetricKind kind) {
  // Caller holds mu_: lookup, kind check, and lazy creation are one step so
  // two threads racing on a new name cannot each construct the sub-object.
  auto it = metrics_.find(name);
  if (it == metrics_.end())
    it = metrics_.emplace(std::string(name), Metric{kind, nullptr, nullptr, nullptr}).first;
  Metric& m = it->second;
  ACGPU_CHECK(m.kind == kind, "metric '" << std::string(name) << "' registered as "
                                         << to_string(m.kind) << ", requested as "
                                         << to_string(kind));
  return m;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  ACGPU_CHECK(valid_metric_name(name),
              "malformed metric name '" << std::string(name)
                                        << "' (want lowercase dotted segments)");
  std::lock_guard<std::mutex> lock(mu_);
  Metric& m = resolve(name, MetricKind::kCounter);
  if (!m.counter) m.counter = std::make_unique<Counter>();
  return *m.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  ACGPU_CHECK(valid_metric_name(name),
              "malformed metric name '" << std::string(name)
                                        << "' (want lowercase dotted segments)");
  std::lock_guard<std::mutex> lock(mu_);
  Metric& m = resolve(name, MetricKind::kGauge);
  if (!m.gauge) m.gauge = std::make_unique<Gauge>();
  return *m.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  ACGPU_CHECK(valid_metric_name(name),
              "malformed metric name '" << std::string(name)
                                        << "' (want lowercase dotted segments)");
  std::lock_guard<std::mutex> lock(mu_);
  Metric& m = resolve(name, MetricKind::kHistogram);
  if (!m.histogram) m.histogram = std::make_unique<Histogram>();
  return *m.histogram;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, metric] : metrics_) {
    switch (metric.kind) {
      case MetricKind::kCounter:
        snap.entries.push_back({name, MetricKind::kCounter,
                                static_cast<double>(metric.counter->value())});
        break;
      case MetricKind::kGauge:
        snap.entries.push_back({name, MetricKind::kGauge, metric.gauge->value()});
        break;
      case MetricKind::kHistogram: {
        const HistogramSummary s = metric.histogram->summary();
        const auto add = [&](const char* suffix, double v) {
          snap.entries.push_back({name + suffix, MetricKind::kHistogram, v});
        };
        add(".count", static_cast<double>(s.count));
        add(".mean", s.mean);
        add(".min", s.min);
        add(".max", s.max);
        add(".p50", s.p50);
        add(".p90", s.p90);
        add(".p99", s.p99);
        break;
      }
    }
  }
  // std::map iterates in name order, but histogram expansion appends suffixed
  // names that can interleave out of order relative to later metrics.
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) { return a.name < b.name; });
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace acgpu::telemetry
