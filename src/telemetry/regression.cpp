#include "telemetry/regression.h"

#include <cmath>
#include <ostream>
#include <sstream>

#include "telemetry/json.h"
#include "util/table.h"

namespace acgpu::telemetry {

Result<RegressionBaseline> parse_baseline(std::string_view json_text) {
  const std::optional<JsonValue> root = parse_json(json_text);
  if (!root || !root->is_object())
    return Status::invalid_argument("baseline is not a JSON object");
  const JsonValue* checks = root->find("checks");
  if (checks == nullptr || !checks->is_array())
    return Status::invalid_argument("baseline has no \"checks\" array");

  RegressionBaseline baseline;
  for (const JsonValue& item : checks->array()) {
    if (!item.is_object())
      return Status::invalid_argument("baseline check is not an object");
    const JsonValue* name = item.find("name");
    if (name == nullptr || !name->is_string())
      return Status::invalid_argument("baseline check without a \"name\"");
    RegressionCheck check;
    check.name = name->string();
    check.min = item.number_at("min");
    check.max = item.number_at("max");
    if (!check.min && !check.max)
      return Status::invalid_argument("check '" + check.name +
                                      "' has neither \"min\" nor \"max\"");
    if (check.min && check.max && *check.min > *check.max)
      return Status::invalid_argument("check '" + check.name +
                                      "' has min above max");
    baseline.checks.push_back(std::move(check));
  }
  if (baseline.checks.empty())
    return Status::invalid_argument("baseline has no checks");
  return baseline;
}

namespace {

std::string format_number(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

std::optional<RegressionViolation> evaluate(const MetricsSnapshot& snapshot,
                                            const RegressionCheck& check) {
  const std::optional<double> value = snapshot.value(check.name);
  if (!value) {
    RegressionViolation v;
    v.name = check.name;
    v.missing = true;
    v.detail = "series missing from snapshot";
    return v;
  }
  if (check.min && *value < *check.min) {
    RegressionViolation v;
    v.name = check.name;
    v.value = *value;
    v.detail = format_number(*value) + " below min " + format_number(*check.min);
    return v;
  }
  if (check.max && *value > *check.max) {
    RegressionViolation v;
    v.name = check.name;
    v.value = *value;
    v.detail = format_number(*value) + " above max " + format_number(*check.max);
    return v;
  }
  return std::nullopt;
}

}  // namespace

RegressionVerdict check_regression(const MetricsSnapshot& snapshot,
                                   const RegressionBaseline& baseline) {
  RegressionVerdict verdict;
  verdict.checks = baseline.checks.size();
  for (const RegressionCheck& check : baseline.checks)
    if (std::optional<RegressionViolation> v = evaluate(snapshot, check))
      verdict.violations.push_back(std::move(*v));
  return verdict;
}

void write_verdict_table(const MetricsSnapshot& snapshot,
                         const RegressionBaseline& baseline, std::ostream& out) {
  Table table;
  table.set_header({"check", "min", "max", "observed", "verdict"});
  for (const RegressionCheck& check : baseline.checks) {
    const std::optional<double> value = snapshot.value(check.name);
    const std::optional<RegressionViolation> violation = evaluate(snapshot, check);
    table.add_row({check.name, check.min ? format_number(*check.min) : "-",
                   check.max ? format_number(*check.max) : "-",
                   value ? format_number(*value) : "(missing)",
                   violation ? "FAIL: " + violation->detail : "ok"});
  }
  table.print(out);
}

void write_baseline(const MetricsSnapshot& snapshot,
                    const std::vector<std::string>& names, double slack,
                    std::ostream& out) {
  out << "{\"checks\":[";
  bool first = true;
  for (const std::string& name : names) {
    const std::optional<double> value = snapshot.value(name);
    ACGPU_CHECK(value.has_value(),
                "cannot band '" << name << "': series missing from snapshot");
    if (!first) out << ",";
    first = false;
    const double lo = *value >= 0 ? *value * (1 - slack) : *value * (1 + slack);
    const double hi = *value >= 0 ? *value * (1 + slack) : *value * (1 - slack);
    out << "\n  {\"name\":\"" << name << "\",\"min\":" << lo << ",\"max\":" << hi
        << "}";
  }
  out << "\n]}\n";
}

}  // namespace acgpu::telemetry
