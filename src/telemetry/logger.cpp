#include "telemetry/logger.h"

#include <cstdio>

#include "util/stopwatch.h"

namespace acgpu::telemetry {

const char* to_string(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug: return "debug";
    case LogSeverity::kInfo: return "info";
    case LogSeverity::kWarn: return "warn";
    case LogSeverity::kError: return "error";
  }
  return "?";
}

namespace {

void stderr_sink(LogSeverity severity, std::string_view key, std::string_view message) {
  std::fprintf(stderr, "acgpu [%s] %.*s: %.*s\n", to_string(severity),
               static_cast<int>(key.size()), key.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace

Logger::Logger(LoggerOptions options) : options_(std::move(options)) {
  if (!options_.sink) options_.sink = stderr_sink;
  if (!options_.clock) options_.clock = [] { return now_ns(); };
}

void Logger::log(LogSeverity severity, std::string_view key, std::string_view message) {
  // Decide + record under the mutex, but call the sink outside it: sinks may
  // be arbitrarily slow (or re-enter a logger-adjacent path).
  std::string to_emit;
  {
    std::scoped_lock lock(mu_);
    if (severity < options_.min_severity) {
      ++stats_.filtered;
      return;
    }
    const std::uint64_t now = options_.clock();
    auto it = keys_.find(key);
    if (it == keys_.end())
      it = keys_.emplace(std::string(key), KeyState{now, 0, 0, 0}).first;
    KeyState& state = it->second;
    if (options_.window_ns != 0 && now - state.window_start_ns >= options_.window_ns) {
      state.window_start_ns = now;
      state.emitted_in_window = 0;
      state.suppressed_in_window = 0;
    }
    if (state.emitted_in_window >= options_.burst) {
      ++state.suppressed_in_window;
      ++state.suppressed_total;
      ++stats_.suppressed;
      return;
    }
    ++state.emitted_in_window;
    ++stats_.emitted;
    to_emit.assign(message);
    // The first message of a re-armed window carries the count of what the
    // previous window swallowed, so suppression is visible, not silent.
    if (state.emitted_in_window == 1 && state.suppressed_total > 0)
      to_emit += " (" + std::to_string(state.suppressed_total) +
                 " earlier occurrence(s) suppressed)";
  }
  options_.sink(severity, key, to_emit);
}

LoggerStats Logger::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

std::uint64_t Logger::suppressed(std::string_view key) const {
  std::scoped_lock lock(mu_);
  const auto it = keys_.find(key);
  return it == keys_.end() ? 0 : it->second.suppressed_total;
}

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

}  // namespace acgpu::telemetry
