// Minimal JSON reader for the telemetry tool chain: parsing checked-in
// regression baselines, re-reading metrics snapshots, and round-trip
// validating emitted Chrome-trace files in tests. Full JSON value model
// (object/array/string/number/bool/null), no streaming, no writer — every
// emitter in this codebase writes its JSON by hand.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace acgpu::telemetry {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  // Object keys keep insertion order irrelevant; lookups are by name.
  using Object = std::map<std::string, JsonValue, std::less<>>;
  using Array = std::vector<JsonValue>;

  JsonValue() = default;
  explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  explicit JsonValue(double n) : type_(Type::kNumber), number_(n) {}
  explicit JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  explicit JsonValue(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  explicit JsonValue(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool boolean() const { return bool_; }
  double number() const { return number_; }
  const std::string& string() const { return string_; }
  const Array& array() const { return array_; }
  const Object& object() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// find() + number(); std::nullopt when absent or not a number.
  std::optional<double> number_at(std::string_view key) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// not). Returns std::nullopt on malformed input.
std::optional<JsonValue> parse_json(std::string_view text);

}  // namespace acgpu::telemetry
