// HealthMonitor — per-shard rolling-window SLOs that close the loop into
// routing.
//
// The metrics registry answers "what happened since the process started";
// an SLO needs "how is shard k doing *right now*". The monitor keeps, per
// shard, a sliding window of the last W feed outcomes (latency + success),
// the queue depth last observed, and a per-window eviction count, and
// evaluates them against declarative targets:
//
//   dimension          window semantics        SloPolicy field
//   feed p50 / p99     sliding (last W feeds)  feed_p50_ns / feed_p99_ns
//   error rate         sliding (last W feeds)  error_rate
//   queue depth        instantaneous gauge     queue_depth
//   eviction rate      tumbling (per W feeds)  eviction_rate
//
// Each SloTarget carries two thresholds; crossing `degraded` trips
// HealthState::kDegraded, crossing `unhealthy` trips kUnhealthy, and the
// worst breached dimension wins. Latency/error/eviction dimensions stay
// quiet until the shard has `min_samples` feeds in its window (cold shards
// are not "unhealthy", they are unknown — treated as ok); queue depth is a
// gauge and judges immediately.
//
// Breaches publish health.<shard>.* series into the registry (state,
// percentiles, rates, breach count) and fire the transition listener, which
// is how cluster::Router learns to deprioritize a degraded shard and treat
// an unhealthy one as failed-soft — observability driving behavior, the
// tentpole's third leg.
//
// Thread-safety: every method is safe from any thread (per-shard mutex; the
// listener is invoked outside it).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace acgpu::telemetry {

class MetricsRegistry;
class Gauge;

enum class HealthState : std::uint8_t { kOk = 0, kDegraded = 1, kUnhealthy = 2 };

const char* to_string(HealthState state);

/// One SLO dimension's breach thresholds. Infinity (the default) = the
/// threshold is not enforced.
struct SloTarget {
  double degraded = std::numeric_limits<double>::infinity();
  double unhealthy = std::numeric_limits<double>::infinity();

  bool enforced() const {
    return degraded != std::numeric_limits<double>::infinity() ||
           unhealthy != std::numeric_limits<double>::infinity();
  }
};

/// Declarative SLO targets (docs/OBSERVABILITY.md carries the table).
struct SloPolicy {
  SloTarget feed_p50_ns;
  SloTarget feed_p99_ns;
  SloTarget queue_depth;     ///< queued chunks at last observation
  SloTarget error_rate;      ///< failed feeds / feeds in window, [0,1]
  SloTarget eviction_rate;   ///< evictions / feeds per tumbling window, [0,1]

  /// Sliding-window size in feeds (latency percentiles + error rate).
  std::uint32_t window = 256;
  /// Latency/rate dimensions abstain below this many windowed samples.
  std::uint32_t min_samples = 16;

  /// Any target set => the monitor is worth standing up.
  bool enabled() const {
    return feed_p50_ns.enforced() || feed_p99_ns.enforced() ||
           queue_depth.enforced() || error_rate.enforced() ||
           eviction_rate.enforced();
  }

  /// Targets sized for the simulated serving demos: p99 feed under 50 ms /
  /// 250 ms, queue under 64 / 256 chunks, error rate under 5% / 25%.
  static SloPolicy serving_defaults();
};

/// Point-in-time view of one shard's window (health.<k>.* mirrors it).
struct ShardHealth {
  HealthState state = HealthState::kOk;
  double feed_p50_ns = 0;
  double feed_p99_ns = 0;
  double queue_depth = 0;
  double error_rate = 0;
  double eviction_rate = 0;
  std::uint64_t window_samples = 0;  ///< feeds currently in the window
  std::uint64_t breaches = 0;        ///< transitions into a worse state
  std::string breached;  ///< comma-joined breached dimensions ("" when ok)
};

class HealthMonitor {
 public:
  /// `metrics` null = no series published (states still evaluate).
  HealthMonitor(std::uint32_t shards, SloPolicy policy,
                MetricsRegistry* metrics = nullptr);

  /// One feed outcome on `shard`: wall-clock latency + success. Cheap
  /// (per-shard mutex + ring store); call on every feed.
  void observe_feed(std::uint32_t shard, double latency_ns, bool ok);
  void observe_queue_depth(std::uint32_t shard, double depth);
  void observe_eviction(std::uint32_t shard, std::uint64_t n = 1);

  /// Re-judges `shard` against the policy, publishes health.<shard>.*, and
  /// fires the transition listener on a state change. Returns the state.
  /// O(window log window) — call every feed, or batch via an interval.
  HealthState evaluate(std::uint32_t shard);

  /// Last evaluated state (no re-evaluation).
  HealthState state(std::uint32_t shard) const;
  ShardHealth shard_health(std::uint32_t shard) const;

  /// Called (outside the shard lock) whenever evaluate() changes a state.
  using TransitionListener =
      std::function<void(std::uint32_t shard, HealthState from, HealthState to)>;
  void set_transition_listener(TransitionListener listener);

  std::uint32_t shard_count() const { return static_cast<std::uint32_t>(shards_.size()); }
  const SloPolicy& policy() const { return policy_; }

 private:
  struct FeedSample {
    double latency_ns = 0;
    bool ok = true;
  };
  struct PerShard {
    mutable std::mutex mu;
    std::vector<FeedSample> ring;  ///< capacity = policy.window
    std::size_t next = 0;          ///< ring cursor
    std::uint64_t total_feeds = 0;
    std::uint64_t errors_in_ring = 0;
    double queue_depth = 0;
    std::uint64_t evictions_window = 0;   ///< current tumbling window
    std::uint32_t feeds_in_tumble = 0;
    double last_eviction_rate = 0;        ///< last completed tumbling window
    HealthState state = HealthState::kOk;
    std::uint64_t breaches = 0;
    std::string breached;

    // health.<k>.* handles (null when no registry).
    Gauge* g_state = nullptr;
    Gauge* g_p50 = nullptr;
    Gauge* g_p99 = nullptr;
    Gauge* g_queue = nullptr;
    Gauge* g_error = nullptr;
    Gauge* g_eviction = nullptr;
    Gauge* g_breaches = nullptr;
  };

  ShardHealth snapshot_locked(const PerShard& s) const;

  SloPolicy policy_;
  std::vector<std::unique_ptr<PerShard>> shards_;
  std::mutex listener_mu_;
  TransitionListener listener_;
};

}  // namespace acgpu::telemetry
