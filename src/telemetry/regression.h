// Perf-regression gate: compares a fresh MetricsSnapshot against a
// checked-in baseline of named bounds with tolerance bands. This is what
// protects the pipeline's overlap win, the diagonal scheme's degree-1 bank
// behaviour, and the texture-cache hit-rate floor from silent regression
// (bench/check_regression + the telemetry ctest label run it in CI).
//
// Baseline JSON (bench/baselines/telemetry_baseline.json):
//
//   {
//     "workload": {"size_bytes": ..., "streams": ...},   // documentation
//     "checks": [
//       {"name": "pipeline.overlap_ratio", "min": 0.90},
//       {"name": "gpusim.shared.max_degree", "min": 1, "max": 1},
//       {"name": "gpusim.tex.hit_rate", "min": 0.95}
//     ]
//   }
//
// A check may carry "min", "max", or both; the band between them is the
// tolerance. A name missing from the snapshot is itself a violation — a
// deleted series must be a deliberate baseline update, never an accident
// (the update workflow is in docs/OBSERVABILITY.md).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "telemetry/metrics_registry.h"
#include "util/error.h"

namespace acgpu::telemetry {

struct RegressionCheck {
  std::string name;
  std::optional<double> min;
  std::optional<double> max;
};

struct RegressionBaseline {
  std::vector<RegressionCheck> checks;
};

/// Parses a baseline document. Fails (no throw) on malformed JSON, a check
/// without a name, or a check with neither bound.
Result<RegressionBaseline> parse_baseline(std::string_view json_text);

struct RegressionViolation {
  std::string name;
  bool missing = false;  ///< the snapshot has no series of this name
  double value = 0;      ///< observed (when present)
  std::string detail;    ///< human-readable "0.42 below min 0.90"
};

struct RegressionVerdict {
  std::vector<RegressionViolation> violations;
  std::size_t checks = 0;
  bool pass() const { return violations.empty(); }
};

/// Applies every baseline check to the snapshot.
RegressionVerdict check_regression(const MetricsSnapshot& snapshot,
                                   const RegressionBaseline& baseline);

/// Per-check table (name, bounds, observed, verdict) for CLI output.
void write_verdict_table(const MetricsSnapshot& snapshot,
                         const RegressionBaseline& baseline, std::ostream& out);

/// Serialises a baseline whose bounds band the snapshot's current values:
/// lower bounds at value*(1-slack) and upper bounds at value*(1+slack) for
/// the named series — the --write-baseline update workflow.
void write_baseline(const MetricsSnapshot& snapshot,
                    const std::vector<std::string>& names, double slack,
                    std::ostream& out);

}  // namespace acgpu::telemetry
