// Process-wide metrics registry: labeled counters, gauges, and histograms
// published under stable dotted names ("gpusim.shared.conflict_cycles",
// "pipeline.batch.h2d_ns", ...). Every instrumented subsystem — the gpusim
// kernel counters, the texture cache, scheduler stalls, the stream engines,
// and the pipeline stages — publishes into one registry, so a single
// snapshot explains a whole run and CI can diff it against baselines
// (telemetry/regression.h).
//
// Concurrency: counter/gauge updates are lock-free atomics, histogram
// observations take a per-histogram mutex, and metric registration takes the
// registry mutex. Returned metric references are stable for the registry's
// lifetime, so hot paths resolve a name once and publish through the
// reference. The parallel matchers publish from worker threads; the
// registry is exercised under ACGPU_TSAN in tests/telemetry_registry_test.
//
// Naming scheme (docs/OBSERVABILITY.md): lowercase dotted segments,
// [a-z0-9_] within a segment, subsystem first ("gpusim.", "pipeline.",
// "gpucheck."). Histogram snapshots expand into derived series
// (<name>.count/.mean/.min/.max/.p50/.p90/.p99).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.h"

namespace acgpu::telemetry {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* to_string(MetricKind kind);

/// Monotonically increasing count (events, bytes, cycles). Lock-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (a ratio, a rate, a depth). Lock-free.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Keeps the maximum of all set_max() calls (e.g. worst conflict degree).
  void set_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution summary of a histogram at snapshot time.
struct HistogramSummary {
  std::uint64_t count = 0;
  double mean = 0, min = 0, max = 0;
  double p50 = 0, p90 = 0, p99 = 0;
};

/// Sample distribution (latencies, per-batch durations). Guarded by a
/// per-histogram mutex; percentile queries retain samples up to a cap, while
/// count/mean/min/max stay exact beyond it.
class Histogram {
 public:
  void observe(double v);
  HistogramSummary summary() const;

 private:
  static constexpr std::size_t kSampleCap = 1u << 16;

  mutable std::mutex mu_;
  Samples samples_;       // retained for percentiles, capped at kSampleCap
  RunningStats stats_;    // exact count/mean/min/max over every observation
};

/// One named series in a snapshot. Histograms contribute several entries
/// (derived ".count"/".p99"/... names) that all carry kind kHistogram.
struct SnapshotEntry {
  std::string name;
  MetricKind kind{};
  double value = 0;
};

/// Point-in-time copy of a registry, ordered by name. This is the exchange
/// format between a run and its consumers: JSON/CSV files, the --stats
/// table, and the regression gate.
class MetricsSnapshot {
 public:
  std::vector<SnapshotEntry> entries;  ///< sorted by name, names distinct

  std::optional<double> value(std::string_view name) const;

  /// {"metrics":{"name":value,...}} — the schema check_regression and the
  /// telemetry tests parse back (telemetry/json.h).
  void write_json(std::ostream& out) const;
  /// "name,kind,value" rows with a header line.
  void write_csv(std::ostream& out) const;
  /// Human-readable aligned table (the --stats view).
  void write_table(std::ostream& out) const;
};

/// Parses a snapshot previously serialised by MetricsSnapshot::write_json.
/// Returns std::nullopt when the text is not valid snapshot JSON.
std::optional<MetricsSnapshot> parse_snapshot(std::string_view json_text);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named metric. Throws acgpu::Error on a malformed
  /// name or when the name is already registered with a different kind —
  /// dotted names are a contract, not a convention.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  std::size_t size() const;
  MetricsSnapshot snapshot() const;
  /// Drops every registered metric (between runs / tests). References
  /// obtained before reset() dangle; re-resolve after.
  void reset();

  /// The process-wide default registry. Library code takes a registry
  /// pointer (nullptr = telemetry off) rather than reaching for this;
  /// global() is for tools that want one shared sink without plumbing.
  static MetricsRegistry& global();

 private:
  struct Metric {
    MetricKind kind{};
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Metric& resolve(std::string_view name, MetricKind kind);

  mutable std::mutex mu_;
  std::map<std::string, Metric, std::less<>> metrics_;
};

/// True when `name` follows the dotted naming scheme: non-empty [a-z0-9_]
/// segments joined by single dots.
bool valid_metric_name(std::string_view name);

}  // namespace acgpu::telemetry
