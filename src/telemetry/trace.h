// Scoped-span tracing and Chrome trace-event export.
//
// Two time domains meet in one trace file, as two Chrome "processes":
//
//   - Host spans (Tracer + ACGPU_TRACE_SPAN): wall-clock nanoseconds on the
//     process's monotonic clock (acgpu::now_ns — the same clock Stopwatch
//     reads), one track per host thread, RAII nesting giving parent/child
//     links. Engine::scan -> MatchPipeline::run -> per-batch issue -> kernel
//     simulation all record here.
//   - Simulated-device slices (pipeline/telemetry_export.h): the resolved
//     gpusim stream timeline, one track per stream plus one per engine
//     (copy/compute), on the simulated clock.
//
// ChromeTrace accumulates both, plus counter tracks (queue depth, engine
// occupancy), and writes the standard trace-event JSON that chrome://tracing
// and Perfetto load directly (docs/OBSERVABILITY.md shows how).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/stopwatch.h"

namespace acgpu::telemetry {

/// One completed slice destined for a trace track. Timestamps are
/// nanoseconds in the owning process's clock domain.
struct TraceEvent {
  std::string name;
  std::uint64_t track = 0;     ///< tid within the owning process
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t id = 0;        ///< span id, unique within one Tracer
  std::uint64_t parent = 0;    ///< enclosing span id; 0 = root
  std::vector<std::pair<std::string, std::string>> args;
};

/// Collects completed host-side spans. Span begin/end is thread-safe; the
/// per-thread nesting stack lives in thread-local storage, so spans opened
/// on different threads land on different tracks and never interleave.
/// A null Tracer* everywhere means tracing is off and costs one branch.
class Tracer {
 public:
  Tracer();

  /// Opens a span; pair with end_span. Most callers use the Span RAII type
  /// or ACGPU_TRACE_SPAN instead.
  std::uint64_t begin_span(std::string_view name);
  void end_span(std::uint64_t id);
  /// Attaches a key/value to the currently open span on this thread.
  void annotate(std::string_view key, std::string_view value);

  /// Monotonic-clock origin (now_ns at construction); exported timestamps
  /// are relative to it so traces start near t=0.
  std::uint64_t epoch_ns() const { return epoch_ns_; }

  /// Completed spans so far (copy under the tracer lock). Spans still open
  /// are not included.
  std::vector<TraceEvent> events() const;
  std::size_t event_count() const;

 private:
  struct ActiveSpan {
    std::uint64_t id = 0;
    std::string name;
    std::uint64_t start_ns = 0;
    std::uint64_t parent = 0;
    std::vector<std::pair<std::string, std::string>> args;
  };
  struct ThreadState {
    std::uint64_t track = 0;
    std::vector<ActiveSpan> stack;
  };

  ThreadState& thread_state();

  std::uint64_t epoch_ns_ = 0;
  std::uint64_t serial_ = 0;  ///< keys thread-local state; unique per Tracer
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_track_ = 1;
  std::vector<TraceEvent> completed_;
};

/// RAII span: no-op when `tracer` is null (telemetry off).
class Span {
 public:
  Span(Tracer* tracer, std::string_view name) : tracer_(tracer) {
    if (tracer_ != nullptr) id_ = tracer_->begin_span(name);
  }
  ~Span() {
    if (tracer_ != nullptr) tracer_->end_span(id_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key/value argument to this span (no-op when off).
  void annotate(std::string_view key, std::string_view value) {
    if (tracer_ != nullptr) tracer_->annotate(key, value);
  }

  /// This span's id within its tracer (0 when tracing is off) — what a
  /// TraceContext records as parent_span.
  std::uint64_t id() const { return id_; }

 private:
  Tracer* tracer_;
  std::uint64_t id_ = 0;
};

// Scoped span over the enclosing block; `tracer` may be null (no-op).
//   ACGPU_TRACE_SPAN(tracer, "pipeline.run");
#define ACGPU_TRACE_SPAN_CONCAT2(a, b) a##b
#define ACGPU_TRACE_SPAN_CONCAT(a, b) ACGPU_TRACE_SPAN_CONCAT2(a, b)
#define ACGPU_TRACE_SPAN(tracer, name) \
  ::acgpu::telemetry::Span ACGPU_TRACE_SPAN_CONCAT(acgpu_trace_span_, __LINE__){(tracer), (name)}

/// Accumulates slices and counter samples across processes (clock domains)
/// and writes Chrome trace-event JSON. Deterministic output: tracks are
/// emitted in registration order, slices sorted by (pid, tid, start).
class ChromeTrace {
 public:
  /// Registers (or finds) a Chrome "process" — one clock domain / top-level
  /// group in the Perfetto UI.
  std::uint64_t process(std::string_view name);
  /// Registers (or finds) a named track inside a process.
  std::uint64_t track(std::uint64_t pid, std::string_view name);

  void add_slice(std::uint64_t pid, std::uint64_t tid, std::string_view name,
                 std::uint64_t start_ns, std::uint64_t dur_ns,
                 std::vector<std::pair<std::string, std::string>> args = {});
  /// One sample on a counter track ("queue depth" over time). Chrome draws
  /// step functions between samples.
  void add_counter(std::uint64_t pid, std::string_view series,
                   std::uint64_t t_ns, double value);
  /// Folds a Tracer's completed spans in as `process_name`, one track per
  /// source thread, timestamps re-based to the tracer epoch.
  void add_tracer(const Tracer& tracer, std::string_view process_name = "acgpu host");

  std::size_t slice_count() const { return slices_.size(); }

  /// Standard {"traceEvents":[...]} JSON; ts/dur in microseconds as the
  /// format requires (fractional, so nanosecond precision survives).
  void write(std::ostream& out) const;

 private:
  struct Process {
    std::string name;
    std::vector<std::string> tracks;  // tid = index + 1
  };
  struct Slice {
    std::uint64_t pid = 0, tid = 0;
    std::string name;
    std::uint64_t start_ns = 0, dur_ns = 0;
    std::vector<std::pair<std::string, std::string>> args;
  };
  struct Counter {
    std::uint64_t pid = 0;
    std::string series;
    std::uint64_t t_ns = 0;
    double value = 0;
  };

  std::vector<Process> processes_;  // pid = index + 1
  std::vector<Slice> slices_;
  std::vector<Counter> counters_;
};

/// Escapes a string for embedding in a JSON string literal.
std::string json_escape(std::string_view s);

}  // namespace acgpu::telemetry
