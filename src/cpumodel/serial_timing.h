// Timing model for the paper's serial baseline (2.2 GHz Core2).
//
// Why a model instead of host wall-clock: the GPU side of every speedup
// figure is *simulated* GTX 285 time, so the CPU side must be measured in
// the same world for the ratios to mean anything. The model walks the DFA
// over a sample of the input, runs every STT access through an L1/L2 cache
// model, and converts cycles/byte into seconds at the Core2 clock. Host
// wall-clock is still measured and reported alongside (harness).
#pragma once

#include <cstdint>
#include <string_view>

#include "ac/dfa.h"

namespace acgpu::cpumodel {

struct CpuConfig {
  double clock_ghz = 2.2;  ///< paper's Intel Core2

  /// DFA inner-loop cost with all data in L1: byte load, column index
  /// arithmetic, STT load, match-column test, loop bookkeeping. Core2
  /// retires this dependent chain in roughly a dozen cycles.
  std::uint32_t base_cycles_per_byte = 12;

  // Core2-class cache hierarchy.
  std::uint64_t l1_bytes = 32 * 1024;
  std::uint32_t l1_line_bytes = 64;
  std::uint32_t l1_assoc = 8;
  std::uint64_t l2_bytes = 2 * 1024 * 1024;
  std::uint32_t l2_line_bytes = 64;
  std::uint32_t l2_assoc = 8;

  std::uint32_t l2_hit_cycles = 14;   ///< extra cycles on an L1 miss that hits L2
  std::uint32_t mem_cycles = 230;     ///< extra cycles on an L2 miss

  static CpuConfig core2();
};

struct SerialEstimate {
  double cycles_per_byte = 0;
  double seconds = 0;  ///< for the full text length passed in
  double l1_miss_rate = 0;
  double l2_miss_rate = 0;  ///< misses per L2 access (i.e. per L1 miss)
  std::uint64_t sampled_bytes = 0;
};

/// Walks the DFA over `sample` (typically a prefix of the real input),
/// simulating the cache behaviour of every STT and input access, then
/// scales cycles/byte to `full_text_len` bytes.
SerialEstimate estimate_serial(const ac::Dfa& dfa, std::string_view sample,
                               std::uint64_t full_text_len,
                               const CpuConfig& config = CpuConfig::core2());

}  // namespace acgpu::cpumodel
