#include "cpumodel/cache_model.h"

#include "util/error.h"

namespace acgpu::cpumodel {

SetAssocCache::SetAssocCache(std::uint64_t bytes, std::uint32_t line_bytes,
                             std::uint32_t assoc)
    : line_bytes_(line_bytes), assoc_(assoc) {
  ACGPU_CHECK(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0,
              "cache line size must be a power of two, got " << line_bytes);
  ACGPU_CHECK(assoc > 0, "cache associativity must be positive");
  ACGPU_CHECK(bytes >= static_cast<std::uint64_t>(line_bytes) * assoc,
              "cache of " << bytes << "B cannot hold one " << assoc << "-way set");
  sets_ = bytes / (static_cast<std::uint64_t>(line_bytes) * assoc);
  ways_.assign(sets_ * assoc_, Way{});
}

bool SetAssocCache::access(std::uint64_t addr) {
  const std::uint64_t line = addr / line_bytes_;
  Way* set = ways_.data() + (line % sets_) * assoc_;
  ++tick_;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].tag == line) {
      set[w].last_use = tick_;
      ++hits_;
      return true;
    }
  }
  Way* victim = &set[0];
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].tag == kInvalid) {
      victim = &set[w];
      break;
    }
    if (set[w].last_use < victim->last_use) victim = &set[w];
  }
  victim->tag = line;
  victim->last_use = tick_;
  ++misses_;
  return false;
}

void SetAssocCache::clear() {
  for (auto& w : ways_) w = Way{};
  tick_ = hits_ = misses_ = 0;
}

}  // namespace acgpu::cpumodel
