// Set-associative cache model used by the serial-CPU timing estimate.
//
// The paper's serial baseline ran on a 2.2 GHz Core2; its run time grows
// with the pattern count because the STT working set falls out of the CPU
// caches. This small LRU model reproduces that effect.
#pragma once

#include <cstdint>
#include <vector>

namespace acgpu::cpumodel {

class SetAssocCache {
 public:
  SetAssocCache(std::uint64_t bytes, std::uint32_t line_bytes, std::uint32_t assoc);

  /// Probes (and fills) the line containing `addr`. True on hit.
  bool access(std::uint64_t addr);

  void clear();
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double miss_rate() const {
    const std::uint64_t n = hits_ + misses_;
    return n == 0 ? 0.0 : static_cast<double>(misses_) / static_cast<double>(n);
  }
  std::uint32_t line_bytes() const { return line_bytes_; }

 private:
  struct Way {
    std::uint64_t tag = kInvalid;
    std::uint64_t last_use = 0;
  };
  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};

  std::uint32_t line_bytes_;
  std::uint32_t assoc_;
  std::uint64_t sets_;
  std::vector<Way> ways_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace acgpu::cpumodel
