#include "cpumodel/serial_timing.h"

#include "cpumodel/cache_model.h"
#include "util/error.h"

namespace acgpu::cpumodel {

CpuConfig CpuConfig::core2() { return CpuConfig{}; }

SerialEstimate estimate_serial(const ac::Dfa& dfa, std::string_view sample,
                               std::uint64_t full_text_len, const CpuConfig& config) {
  ACGPU_CHECK(!sample.empty(), "estimate_serial: empty sample");
  ACGPU_CHECK(full_text_len >= sample.size(),
              "estimate_serial: full length " << full_text_len
                  << " smaller than the sample (" << sample.size() << ")");

  SetAssocCache l1(config.l1_bytes, config.l1_line_bytes, config.l1_assoc);
  SetAssocCache l2(config.l2_bytes, config.l2_line_bytes, config.l2_assoc);

  // Address layout for the model: the STT occupies [0, stt_bytes) and the
  // input text follows it, exactly as a real process would lay them out.
  const ac::SttMatrix& stt = dfa.stt();
  const std::uint64_t pitch_bytes = static_cast<std::uint64_t>(stt.pitch()) * 4;
  const std::uint64_t text_base = static_cast<std::uint64_t>(stt.rows()) * pitch_bytes;

  std::uint64_t extra_cycles = 0;
  auto touch = [&](std::uint64_t addr) {
    if (l1.access(addr)) return;
    if (l2.access(addr)) {
      extra_cycles += config.l2_hit_cycles;
      return;
    }
    extra_cycles += config.l2_hit_cycles + config.mem_cycles;
  };

  std::int32_t state = 0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const auto byte = static_cast<std::uint8_t>(sample[i]);
    touch(text_base + i);  // sequential input read
    const std::uint64_t row = static_cast<std::uint64_t>(state) * pitch_bytes;
    touch(row + (1 + byte) * 4);  // next-state entry
    state = stt.next(state, byte);
    touch(static_cast<std::uint64_t>(state) * pitch_bytes);  // match column
  }

  SerialEstimate est;
  est.sampled_bytes = sample.size();
  est.cycles_per_byte =
      config.base_cycles_per_byte +
      static_cast<double>(extra_cycles) / static_cast<double>(sample.size());
  est.seconds = static_cast<double>(full_text_len) * est.cycles_per_byte /
                (config.clock_ghz * 1e9);
  est.l1_miss_rate = l1.miss_rate();
  est.l2_miss_rate = l2.miss_rate();
  return est;
}

}  // namespace acgpu::cpumodel
