// acgpu::dispatch::CostModel — predicted modeled-seconds per backend.
//
// Everything in this repo runs against deterministic models (cpumodel for
// the 2.2 GHz Core2 host, gpusim for the GTX 285), so CPU and GPU costs are
// directly comparable "modeled seconds". The cost model predicts that cost
// for each of the three execution backends:
//
//   kSerialCpu    one core walking the DFA (ac::find_all); cost is
//                 bytes x cycles/byte / clock. cycles/byte is NOT flat:
//                 cpumodel simulates cold caches, so small scans pay a
//                 warm-up cpb several times the asymptote. calibrate_cpu
//                 therefore prices a log-spaced ladder of sample prefixes
//                 and analytic() interpolates the resulting (bytes,
//                 seconds) anchors; the flat base_cycles_per_byte line is
//                 only the uncalibrated fallback.
//   kParallelCpu  the multicore-AC chunked scan (ac::find_all_parallel);
//                 serial cost / (threads x efficiency) + a fork/join
//                 overhead term — so serial wins tiny inputs.
//   kGpuPipeline  the batched multi-stream Engine; a per-scan overhead
//                 (PCIe latency + pipeline fill) + bytes / throughput,
//                 seeded analytically from gpusim::GpuConfig and replaced
//                 by a two-point probe fit at DispatchEngine creation.
//
// The analytic curves give the crossover *shape*; online refinement keeps
// them honest: observe() folds actual modeled seconds into a per
// (signature-bucket, backend) EWMA correction factor applied on top of the
// analytic prediction. CPU backends' actuals come from the same model
// family, so their corrections hover at 1; the GPU curve learns batching
// quantization the linear fit misses. See docs/DISPATCH.md.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cpumodel/serial_timing.h"
#include "dispatch/signature.h"
#include "gpusim/config.h"

namespace acgpu::dispatch {

/// The three execution backends the dispatcher routes between.
enum class Backend : std::uint8_t {
  kSerialCpu = 0,
  kParallelCpu = 1,
  kGpuPipeline = 2,
};
inline constexpr int kBackendCount = 3;

const char* to_string(Backend backend);

struct CostModelConfig {
  /// Host model used for both CPU curves (and by the modeled executions).
  cpumodel::CpuConfig cpu = cpumodel::CpuConfig::core2();

  /// Parallel-CPU curve: modeled core count (fixed, NOT hardware
  /// concurrency — decisions must be machine-independent), scaling
  /// efficiency, and the per-scan fork/join overhead that hands tiny
  /// inputs to the serial backend.
  unsigned parallel_threads = 8;
  double parallel_efficiency = 0.70;
  double parallel_overhead_seconds = 30e-6;

  /// GPU curve seed (replaced by probe calibration when available):
  /// per-scan overhead and sustained bytes/second.
  double gpu_overhead_seconds = 60e-6;
  double gpu_bytes_per_second = 1.5e9;

  /// Online refinement: weight of the newest observation in the per-bucket
  /// correction EWMA. 0 disables refinement.
  double ewma_alpha = 0.35;
};

/// Seeds the GPU curve analytically from the chip model: overhead from two
/// PCIe latencies plus a pipeline-fill allowance, slope from the series
/// combination of PCIe bandwidth and an assumed kernel throughput.
CostModelConfig seed_config(const gpusim::GpuConfig& gpu,
                            const cpumodel::CpuConfig& cpu =
                                cpumodel::CpuConfig::core2());

struct Prediction {
  std::array<double, kBackendCount> seconds{};
  Backend best = Backend::kSerialCpu;
  double best_seconds = 0.0;
  /// Modeled seconds of the best backend that is NOT `best` — the margin
  /// mispredictions are judged against.
  double runner_up_seconds = 0.0;
};

/// Prices an actual host-side execution in modeled seconds: samples up to
/// 64KB of `text` through cpumodel::estimate_serial and scales to the full
/// length. This is the "actual" the CPU backends report back to observe()
/// — the same model family the predictions come from, so corrections
/// hover at 1 while the decisions stay deterministic.
double modeled_serial_seconds(const ac::Dfa& dfa, std::string_view text,
                              const cpumodel::CpuConfig& cpu);

/// The parallel-CPU variant: serial cost / (threads x efficiency) plus the
/// fork/join overhead, with the same sampling rule.
double modeled_parallel_seconds(const ac::Dfa& dfa, std::string_view text,
                                const CostModelConfig& config);

class CostModel {
 public:
  explicit CostModel(const CostModelConfig& config = {});

  /// Calibrates the serial cost curve from cpumodel::estimate_serial over
  /// `sample` (typically a prefix of real traffic or synthetic text built
  /// from the dictionary): prices a log-spaced ladder of sample prefixes
  /// into (bytes, seconds) anchors so the size-dependent cache-warm-up
  /// cpb is captured, not just the asymptote.
  void calibrate_cpu(const ac::Dfa& dfa, std::string_view sample);

  /// Installs a measured GPU curve (from the DispatchEngine's two-point
  /// probe); replaces the analytic seed.
  void set_gpu_curve(double overhead_seconds, double bytes_per_second);

  /// Analytic-plus-correction prediction for one backend.
  double predict(Backend backend, const WorkloadSignature& sig) const;

  /// Predictions for all backends, ranked.
  Prediction predict_all(const WorkloadSignature& sig) const;

  /// Folds an actual modeled-seconds observation into the per
  /// (bucket, backend) correction EWMA.
  void observe(Backend backend, const WorkloadSignature& sig,
               double actual_seconds);

  /// Current correction factor for (bucket of sig, backend); 1.0 when no
  /// observations have landed yet.
  double correction(Backend backend, const WorkloadSignature& sig) const;

  double serial_cycles_per_byte() const { return serial_cycles_per_byte_; }
  double gpu_overhead_seconds() const { return gpu_overhead_seconds_; }
  double gpu_bytes_per_second() const { return gpu_bytes_per_second_; }
  const CostModelConfig& config() const { return config_; }

 private:
  double analytic(Backend backend, const WorkloadSignature& sig) const;
  double serial_analytic_seconds(double bytes) const;

  CostModelConfig config_;
  double serial_cycles_per_byte_;
  /// Calibrated (bytes, seconds) anchors, ascending in bytes; empty until
  /// calibrate_cpu runs, in which case the flat cpb line is used.
  std::vector<std::pair<double, double>> serial_anchors_;
  double gpu_overhead_seconds_;
  double gpu_bytes_per_second_;

  mutable std::mutex mu_;  // guards corrections_ (serve workers call observe)
  std::unordered_map<std::string, std::array<double, kBackendCount>>
      corrections_;
};

}  // namespace acgpu::dispatch
