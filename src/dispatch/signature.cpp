#include "dispatch/signature.h"

#include <algorithm>
#include <bitset>
#include <cstdio>

namespace acgpu::dispatch {
namespace {

std::uint8_t log2_class(std::uint64_t v) {
  std::uint8_t c = 0;
  while (v > 1) {
    v >>= 1;
    ++c;
  }
  return c;
}

}  // namespace

PatternStats compute_pattern_stats(const ac::Dfa& dfa) {
  PatternStats stats;
  stats.pattern_count = static_cast<std::uint32_t>(dfa.pattern_count());
  stats.max_pattern_len = dfa.max_pattern_length();
  stats.state_count = dfa.state_count();
  stats.stt_bytes = dfa.stt_bytes();
  std::uint64_t total = 0;
  for (std::uint32_t len : dfa.pattern_lengths()) total += len;
  stats.avg_pattern_len =
      stats.pattern_count == 0
          ? 0.0
          : static_cast<double>(total) / static_cast<double>(stats.pattern_count);
  return stats;
}

WorkloadSignature make_signature(const PatternStats& stats,
                                 std::string_view text, bool session) {
  WorkloadSignature sig;
  sig.text_bytes = text.size();
  sig.pattern_count = stats.pattern_count;
  sig.max_pattern_len = stats.max_pattern_len;
  sig.avg_pattern_len = stats.avg_pattern_len;
  sig.session = session;
  if (!text.empty()) {
    // Evenly strided sample: O(kDensitySampleBytes) regardless of text size.
    std::bitset<256> seen;
    const std::size_t n = std::min(text.size(), kDensitySampleBytes);
    const std::size_t stride = std::max<std::size_t>(1, text.size() / n);
    std::size_t sampled = 0;
    for (std::size_t i = 0; i < text.size() && sampled < n; i += stride, ++sampled)
      seen.set(static_cast<std::uint8_t>(text[i]));
    sig.alphabet_density = static_cast<double>(seen.count()) / 256.0;
  }
  return sig;
}

WorkloadSignature make_signature(const ac::Dfa& dfa, std::string_view text,
                                 bool session) {
  return make_signature(compute_pattern_stats(dfa), text, session);
}

SignatureBucket bucket_of(const WorkloadSignature& sig) {
  SignatureBucket b;
  b.size_class = sig.text_bytes == 0 ? 0 : log2_class(sig.text_bytes);
  b.pattern_class = sig.pattern_count == 0 ? 0 : log2_class(sig.pattern_count);
  b.length_class =
      sig.max_pattern_len == 0 ? 0 : log2_class(sig.max_pattern_len);
  double d = std::clamp(sig.alphabet_density, 0.0, 1.0);
  b.density_class = static_cast<std::uint8_t>(
      std::min(7, static_cast<int>(d * 8.0)));
  b.session = sig.session;
  return b;
}

std::string bucket_key(const SignatureBucket& bucket) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "s%u.p%u.l%u.d%u.%s",
                unsigned(bucket.size_class), unsigned(bucket.pattern_class),
                unsigned(bucket.length_class), unsigned(bucket.density_class),
                bucket.session ? "sess" : "bulk");
  return std::string(buf);
}

}  // namespace acgpu::dispatch
