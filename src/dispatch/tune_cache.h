// acgpu::dispatch::TuneCache — content-hash-keyed on-disk autotune cache.
//
// The kernel-cache idiom (libgpuarray's gpuarray_cache_sql, hcBLAS's
// autogemm winners): tuning is expensive, dictionaries are stable, so the
// Autotuner's winners persist across processes in a small line-oriented
// text file and are loaded at DispatchEngine creation. Entries key on
//
//   (dictionary content hash, signature bucket key)
//
// where the hash is FNV-1a over a schema version tag, the chip model name,
// and every pattern's bytes — so editing ONE pattern, changing the schema,
// or switching the simulated chip invalidates every entry for that
// dictionary, while unrelated dictionaries coexist in one file.
//
// File format (docs/DISPATCH.md), one entry per line:
//
//   acgpu-tune v1
//   <hash-hex> <bucket> <tpb> <chunk> <pool> <streams> <split> <gbps>
//
// Unknown versions and malformed lines are skipped (treated as misses),
// never errors: the cache is an accelerator, not a dependency.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "ac/pattern_set.h"
#include "util/error.h"

namespace acgpu::dispatch {

/// Winning pipeline knobs for one (dictionary, bucket); mirrors the
/// EngineOptions fields the Autotuner sweeps.
struct TunedParams {
  std::uint32_t threads_per_block = 256;
  std::uint64_t chunk_bytes = 0;  ///< 0 = engine auto-derive
  std::uint32_t pool_depth = 0;   ///< 0 = engine default (streams)
  std::uint32_t streams = 2;
  bool split_readback = true;
  /// Modeled throughput measured when this entry won, for reporting only.
  double gbps = 0.0;

  friend bool operator==(const TunedParams&, const TunedParams&) = default;
};

/// FNV-1a over schema version + `salt` (chip model name) + pattern bytes.
/// Any change to the dictionary contents changes the hash — the cache's
/// only invalidation rule.
std::uint64_t dictionary_hash(const ac::PatternSet& patterns,
                              std::string_view salt = {});

class TuneCache {
 public:
  /// Loads entries from `path`, merging over whatever is already cached.
  /// A missing file is OK (empty cache); malformed lines are skipped.
  Status load(const std::string& path);

  /// Atomically rewrites `path` with every cached entry (temp + rename).
  Status save(const std::string& path) const;

  std::optional<TunedParams> find(std::uint64_t dict_hash,
                                  const std::string& bucket) const;
  void insert(std::uint64_t dict_hash, const std::string& bucket,
              const TunedParams& params);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// $ACGPU_TUNE_CACHE if set, else ".acgpu_tune_cache" in the CWD.
  static std::string default_path();

 private:
  // Ordered so save() is deterministic (stable diffs, stable tests).
  std::map<std::pair<std::uint64_t, std::string>, TunedParams> entries_;
};

}  // namespace acgpu::dispatch
