// acgpu::dispatch — the brain that routes scans between backends.
//
// Two layers:
//
//   Dispatcher      advisory and shareable: owns the CostModel, the
//                   per-dfa PatternStats, and the dispatch.* telemetry.
//                   serve::StreamService (host-DFA-vs-device per
//                   superbatch) and cluster::Router (bulk scans) consult
//                   one via choose()/observe() while keeping their own
//                   execution paths. Thread-safe — serve workers and the
//                   router's caller thread may race on it.
//
//   DispatchEngine  executing facade for benches, the oracle matcher, and
//                   single-device embedders: owns a private Device, the
//                   GPU Engine, and the Dispatcher; scan() extracts the
//                   signature, routes to ac::find_all /
//                   ac::find_all_parallel / Engine::scan, feeds the
//                   outcome back into the model, and reports which backend
//                   ran plus its modeled seconds. At creation it
//                   calibrates the CPU curve from a synthetic sample and
//                   the GPU curve from a two-point probe, loads the
//                   TuneCache, and lazily builds per-bucket engines from
//                   cached winners.
//
// All costs are deterministic modeled seconds (cpumodel / gpusim), so the
// routing decisions — and the regression gate pinning them — are identical
// on every machine. See docs/DISPATCH.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "dispatch/autotuner.h"
#include "dispatch/cost_model.h"
#include "dispatch/signature.h"
#include "dispatch/tune_cache.h"
#include "pipeline/engine.h"
#include "telemetry/metrics_registry.h"

namespace acgpu::dispatch {

/// Routing override: kAuto trusts the cost model; the fixed policies pin
/// one backend (static-baseline benches); kWorst picks the model's
/// predicted-slowest backend — the WILL_FAIL regression demo.
enum class ForcePolicy : std::uint8_t {
  kAuto = 0,
  kSerial,
  kParallel,
  kGpu,
  kWorst,
};

struct DispatcherOptions {
  CostModelConfig cost;
  ForcePolicy force = ForcePolicy::kAuto;
  /// An auto decision counts as mispredicted when its actual modeled
  /// seconds exceed the predicted runner-up by this fraction.
  double mispredict_margin = 0.10;
  /// Optional dispatch.* series (decisions per backend, mispredictions,
  /// tune-cache traffic). Null = counters still kept in-process.
  telemetry::MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix = "dispatch";
};

struct Decision {
  Backend backend = Backend::kSerialCpu;
  Prediction prediction;
  bool forced = false;
};

/// Aggregate counters, mirrored to telemetry when a registry is wired.
struct DispatchStats {
  std::uint64_t decisions[kBackendCount] = {0, 0, 0};
  std::uint64_t mispredictions = 0;
  std::uint64_t tune_cache_hits = 0;
  std::uint64_t tune_cache_misses = 0;
  std::uint64_t tunes = 0;
};

class Dispatcher {
 public:
  /// `dfa` must outlive the dispatcher (pattern stats are cached from it).
  Dispatcher(const ac::Dfa& dfa, const DispatcherOptions& options = {});

  const PatternStats& pattern_stats() const { return stats_; }
  WorkloadSignature signature(std::string_view text, bool session) const {
    return make_signature(stats_, text, session);
  }

  /// Ranks the backends for `sig` and applies the force policy; bumps the
  /// per-backend decision counter. The overload overrides the configured
  /// policy for this one decision (static-baseline benches).
  Decision choose(const WorkloadSignature& sig);
  Decision choose(const WorkloadSignature& sig, ForcePolicy force);

  /// Feeds the executed decision's actual modeled seconds back: refines
  /// the per-bucket EWMA and, for unforced decisions that lost to the
  /// predicted runner-up by more than the margin, counts a misprediction.
  void observe(const Decision& decision, const WorkloadSignature& sig,
               double actual_seconds);

  /// Tune-cache traffic hooks (DispatchEngine / Autotuner drivers call
  /// these so the counters live with the rest of dispatch.*).
  void note_tune_cache(bool hit);
  void note_tune();

  CostModel& cost_model() { return model_; }
  const CostModel& cost_model() const { return model_; }
  const DispatcherOptions& options() const { return options_; }
  DispatchStats stats() const;

 private:
  DispatcherOptions options_;
  PatternStats stats_;
  CostModel model_;

  std::atomic<std::uint64_t> decisions_[kBackendCount] = {};
  std::atomic<std::uint64_t> mispredictions_{0};
  std::atomic<std::uint64_t> tune_cache_hits_{0};
  std::atomic<std::uint64_t> tune_cache_misses_{0};
  std::atomic<std::uint64_t> tunes_{0};

  telemetry::Counter* decision_counters_[kBackendCount] = {};
  telemetry::Counter* mispredict_counter_ = nullptr;
  telemetry::Counter* tune_hit_counter_ = nullptr;
  telemetry::Counter* tune_miss_counter_ = nullptr;
  telemetry::Counter* tune_counter_ = nullptr;
};

struct DispatchEngineOptions {
  /// Base GPU engine config; `gpu`/`device_memory_bytes` size the facade's
  /// private Device.
  EngineOptions engine;
  DispatcherOptions dispatcher;

  /// Calibration at create: CPU cycles/byte from a synthetic sample, GPU
  /// overhead+slope from a two-point scan probe through the real engine.
  bool calibrate = true;
  std::uint64_t probe_small_bytes = 64u << 10;
  std::uint64_t probe_large_bytes = 256u << 10;

  /// Autotune cache: "" disables persistence. When `autotune_on_miss` is
  /// set, a GPU-routed bucket with no cached winner is tuned inline with
  /// `tune_budget` (offline/CLI use — never enable on a latency path).
  std::string tune_cache_path;
  bool autotune_on_miss = false;
  TuneBudget tune_budget;
  /// Cap on distinct per-bucket tuned engines kept alive (beyond it, the
  /// base engine serves the bucket).
  std::uint32_t max_tuned_engines = 4;
};

struct DispatchResult {
  std::vector<ac::Match> matches;  ///< normalized (end, pattern)
  Backend backend = Backend::kSerialCpu;
  double modeled_seconds = 0.0;
  bool overflowed = false;
};

class DispatchEngine {
 public:
  static Result<DispatchEngine> create(const ac::PatternSet& patterns,
                                       const DispatchEngineOptions& options =
                                           {});

  DispatchEngine(DispatchEngine&&) noexcept;
  DispatchEngine& operator=(DispatchEngine&&) noexcept;
  ~DispatchEngine();

  /// Routes per the cost model (or the force policy) and executes.
  Result<DispatchResult> scan(std::string_view text);

  /// Pins one backend for this scan — the static baselines benches compare
  /// the dispatcher against. Still feeds observe() (forced, so never a
  /// misprediction).
  Result<DispatchResult> scan_forced(std::string_view text, Backend backend);

  /// One scan under an explicit policy (kWorst drives the WILL_FAIL demo).
  Result<DispatchResult> scan_with(std::string_view text, ForcePolicy force);

  Dispatcher& dispatcher();
  const ac::Dfa& dfa() const;
  Engine& gpu_engine();
  Device& device();
  const TuneCache& tune_cache() const;
  /// Persists the tune cache (no-op without a configured path).
  Status save_tune_cache() const;

 private:
  struct Impl;
  explicit DispatchEngine(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace acgpu::dispatch
