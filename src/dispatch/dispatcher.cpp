#include "dispatch/dispatcher.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "ac/parallel_matcher.h"
#include "ac/serial_matcher.h"

namespace acgpu::dispatch {

Dispatcher::Dispatcher(const ac::Dfa& dfa, const DispatcherOptions& options)
    : options_(options), stats_(compute_pattern_stats(dfa)),
      model_(options.cost) {
  if (options_.metrics != nullptr) {
    telemetry::MetricsRegistry& m = *options_.metrics;
    const std::string& p = options_.metrics_prefix;
    for (int b = 0; b < kBackendCount; ++b)
      decision_counters_[b] = &m.counter(
          p + ".decisions." + to_string(static_cast<Backend>(b)));
    mispredict_counter_ = &m.counter(p + ".mispredictions");
    tune_hit_counter_ = &m.counter(p + ".tune_cache.hits");
    tune_miss_counter_ = &m.counter(p + ".tune_cache.misses");
    tune_counter_ = &m.counter(p + ".tune_cache.tunes");
  }
}

Decision Dispatcher::choose(const WorkloadSignature& sig) {
  return choose(sig, options_.force);
}

Decision Dispatcher::choose(const WorkloadSignature& sig,
                            ForcePolicy force) {
  Decision d;
  d.prediction = model_.predict_all(sig);
  switch (force) {
    case ForcePolicy::kAuto:
      d.backend = d.prediction.best;
      break;
    case ForcePolicy::kSerial:
      d.backend = Backend::kSerialCpu;
      d.forced = true;
      break;
    case ForcePolicy::kParallel:
      d.backend = Backend::kParallelCpu;
      d.forced = true;
      break;
    case ForcePolicy::kGpu:
      d.backend = Backend::kGpuPipeline;
      d.forced = true;
      break;
    case ForcePolicy::kWorst: {
      int worst = 0;
      for (int b = 1; b < kBackendCount; ++b)
        if (d.prediction.seconds[static_cast<std::size_t>(b)] >
            d.prediction.seconds[static_cast<std::size_t>(worst)])
          worst = b;
      d.backend = static_cast<Backend>(worst);
      d.forced = true;
      break;
    }
  }
  const auto b = static_cast<std::size_t>(d.backend);
  decisions_[b].fetch_add(1, std::memory_order_relaxed);
  if (decision_counters_[b] != nullptr) decision_counters_[b]->add(1);
  return d;
}

void Dispatcher::observe(const Decision& decision,
                         const WorkloadSignature& sig,
                         double actual_seconds) {
  model_.observe(decision.backend, sig, actual_seconds);
  if (decision.forced) return;
  if (actual_seconds > decision.prediction.runner_up_seconds *
                           (1.0 + options_.mispredict_margin)) {
    mispredictions_.fetch_add(1, std::memory_order_relaxed);
    if (mispredict_counter_ != nullptr) mispredict_counter_->add(1);
  }
}

void Dispatcher::note_tune_cache(bool hit) {
  if (hit) {
    tune_cache_hits_.fetch_add(1, std::memory_order_relaxed);
    if (tune_hit_counter_ != nullptr) tune_hit_counter_->add(1);
  } else {
    tune_cache_misses_.fetch_add(1, std::memory_order_relaxed);
    if (tune_miss_counter_ != nullptr) tune_miss_counter_->add(1);
  }
}

void Dispatcher::note_tune() {
  tunes_.fetch_add(1, std::memory_order_relaxed);
  if (tune_counter_ != nullptr) tune_counter_->add(1);
}

DispatchStats Dispatcher::stats() const {
  DispatchStats s;
  for (int b = 0; b < kBackendCount; ++b)
    s.decisions[b] = decisions_[b].load(std::memory_order_relaxed);
  s.mispredictions = mispredictions_.load(std::memory_order_relaxed);
  s.tune_cache_hits = tune_cache_hits_.load(std::memory_order_relaxed);
  s.tune_cache_misses = tune_cache_misses_.load(std::memory_order_relaxed);
  s.tunes = tunes_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// DispatchEngine

struct DispatchEngine::Impl {
  DispatchEngineOptions options;
  ac::PatternSet patterns;
  // Heap-held so its address is stable: the engines below keep a reference
  // to it across the Impl's own moves. Declared before them so it outlives
  // them on destruction.
  std::unique_ptr<Device> device;
  Engine engine;  // base GPU engine (created with options.engine)
  Dispatcher dispatcher;
  TuneCache cache;
  std::uint64_t dict_hash = 0;

  // bucket key -> tuned engine (nullptr sentinel = resolved to base).
  std::mutex tuned_mu;
  std::map<std::string, std::unique_ptr<Engine>> tuned;

  Impl(DispatchEngineOptions opts, ac::PatternSet pats,
       std::unique_ptr<Device> dev, Engine eng)
      : options(std::move(opts)),
        patterns(std::move(pats)),
        device(std::move(dev)),
        engine(std::move(eng)),
        dispatcher(engine.dfa(), options.dispatcher) {}

  // Resolves which engine a GPU-routed bucket runs on: a cached tuned
  // winner if one exists (lazily instantiated, capped), else the base
  // engine. Counts cache traffic once per bucket.
  Engine& engine_for(const SignatureBucket& bucket) {
    const std::string key = bucket_key(bucket);
    std::lock_guard<std::mutex> lock(tuned_mu);
    auto it = tuned.find(key);
    if (it != tuned.end())
      return it->second != nullptr ? *it->second : engine;

    std::optional<TunedParams> params = cache.find(dict_hash, key);
    if (!params.has_value() && options.autotune_on_miss) {
      dispatcher.note_tune_cache(false);
      Autotuner tuner(*device, patterns, options.engine);
      Result<TuneOutcome> tuned_r =
          tuner.tune(bucket, options.tune_budget, &cache);
      if (tuned_r.is_ok() && !tuned_r.value().from_cache) {
        dispatcher.note_tune();
        params = tuned_r.value().params;
      }
    } else {
      dispatcher.note_tune_cache(params.has_value());
    }

    std::unique_ptr<Engine> built;
    if (params.has_value() &&
        tuned.size() < options.max_tuned_engines) {
      EngineOptions opt = options.engine;
      opt.threads_per_block = params->threads_per_block;
      opt.chunk_bytes = params->chunk_bytes;
      opt.pool_depth = params->pool_depth;
      opt.streams = params->streams;
      opt.split_readback = params->split_readback;
      Result<Engine> e = Engine::create(*device, patterns, opt);
      if (e.is_ok()) built = std::make_unique<Engine>(std::move(e.value()));
    }
    auto [pos, _] = tuned.emplace(key, std::move(built));
    return pos->second != nullptr ? *pos->second : engine;
  }
};

DispatchEngine::DispatchEngine(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
DispatchEngine::DispatchEngine(DispatchEngine&&) noexcept = default;
DispatchEngine& DispatchEngine::operator=(DispatchEngine&&) noexcept =
    default;
DispatchEngine::~DispatchEngine() = default;

Result<DispatchEngine> DispatchEngine::create(
    const ac::PatternSet& patterns, const DispatchEngineOptions& options) {
  DeviceOptions dopt;
  dopt.gpu = options.engine.gpu;
  dopt.memory_bytes = options.engine.device_memory_bytes;
  dopt.host_observer = options.engine.host_observer;
  Result<Device> created = Device::create(dopt);
  if (!created.is_ok()) return created.status();
  // The Engine keeps a reference to its Device, so the Device must live at
  // a stable address before Engine::create sees it.
  auto device = std::make_unique<Device>(std::move(created.value()));

  Result<Engine> engine = Engine::create(*device, patterns, options.engine);
  if (!engine.is_ok()) return engine.status();

  auto impl = std::make_unique<Impl>(options, patterns, std::move(device),
                                     std::move(engine.value()));
  impl->dict_hash =
      dictionary_hash(impl->patterns, chip_salt(impl->device->gpu()));
  if (!impl->options.tune_cache_path.empty()) {
    Status loaded = impl->cache.load(impl->options.tune_cache_path);
    if (!loaded.is_ok()) return loaded;
  }

  CostModel& model = impl->dispatcher.cost_model();
  if (impl->options.calibrate) {
    // CPU curve: cycles/byte over a synthetic 16 KiB sample built from the
    // dictionary (same generator the autotuner probes with).
    SignatureBucket sample_bucket;
    sample_bucket.size_class = 14;
    const std::string sample = make_probe_text(
        impl->patterns, sample_bucket, 16u << 10, impl->dict_hash);
    model.calibrate_cpu(impl->engine.dfa(), sample);

    // GPU curve: two-point probe through the real engine, fit to
    // overhead + bytes/slope. Falls back to the analytic seed when the
    // probe is degenerate (equal times, failed scans).
    SignatureBucket small_b, large_b;
    small_b.size_class = 63;  // size_class 63 = "use max_bytes exactly"
    large_b.size_class = 63;
    const std::string small_text =
        make_probe_text(impl->patterns, small_b,
                        impl->options.probe_small_bytes, impl->dict_hash);
    const std::string large_text = make_probe_text(
        impl->patterns, large_b, impl->options.probe_large_bytes,
        impl->dict_hash);
    Result<ScanResult> s = impl->engine.scan(small_text);
    Result<ScanResult> l = impl->engine.scan(large_text);
    if (s.is_ok() && l.is_ok()) {
      const double ts = s.value().stats.makespan_seconds;
      const double tl = l.value().stats.makespan_seconds;
      const double db = static_cast<double>(large_text.size()) -
                        static_cast<double>(small_text.size());
      if (tl > ts && db > 0.0) {
        const double slope_bps = db / (tl - ts);
        const double overhead =
            std::max(0.0, ts - static_cast<double>(small_text.size()) /
                                   slope_bps);
        model.set_gpu_curve(overhead, slope_bps);
      }
    }
  }
  return DispatchEngine(std::move(impl));
}

Result<DispatchResult> DispatchEngine::scan(std::string_view text) {
  return scan_with(text, impl_->dispatcher.options().force);
}

Result<DispatchResult> DispatchEngine::scan_with(std::string_view text,
                                                 ForcePolicy force) {
  const WorkloadSignature sig =
      impl_->dispatcher.signature(text, /*session=*/false);
  Decision decision = impl_->dispatcher.choose(sig, force);

  DispatchResult out;
  out.backend = decision.backend;
  const cpumodel::CpuConfig& cpu =
      impl_->dispatcher.cost_model().config().cpu;
  switch (decision.backend) {
    case Backend::kSerialCpu: {
      out.matches = ac::find_all(impl_->engine.dfa(), text);
      out.modeled_seconds = modeled_serial_seconds(impl_->engine.dfa(), text, cpu);
      break;
    }
    case Backend::kParallelCpu: {
      const CostModelConfig& cfg = impl_->dispatcher.cost_model().config();
      out.matches = ac::find_all_parallel(impl_->engine.dfa(), text,
                                          cfg.parallel_threads);
      out.modeled_seconds =
          modeled_parallel_seconds(impl_->engine.dfa(), text, cfg);
      break;
    }
    case Backend::kGpuPipeline: {
      Engine& engine = impl_->engine_for(bucket_of(sig));
      Result<ScanResult> scan = engine.scan(text);
      if (!scan.is_ok()) return scan.status();
      out.matches = std::move(scan.value().matches);
      out.overflowed = scan.value().overflowed;
      out.modeled_seconds = scan.value().stats.makespan_seconds;
      break;
    }
  }
  ac::normalize_matches(out.matches);
  impl_->dispatcher.observe(decision, sig, out.modeled_seconds);
  return out;
}

Result<DispatchResult> DispatchEngine::scan_forced(std::string_view text,
                                                   Backend backend) {
  ForcePolicy force = ForcePolicy::kAuto;
  switch (backend) {
    case Backend::kSerialCpu: force = ForcePolicy::kSerial; break;
    case Backend::kParallelCpu: force = ForcePolicy::kParallel; break;
    case Backend::kGpuPipeline: force = ForcePolicy::kGpu; break;
  }
  return scan_with(text, force);
}

Dispatcher& DispatchEngine::dispatcher() { return impl_->dispatcher; }
const ac::Dfa& DispatchEngine::dfa() const { return impl_->engine.dfa(); }
Engine& DispatchEngine::gpu_engine() { return impl_->engine; }
Device& DispatchEngine::device() { return *impl_->device; }
const TuneCache& DispatchEngine::tune_cache() const { return impl_->cache; }

Status DispatchEngine::save_tune_cache() const {
  if (impl_->options.tune_cache_path.empty()) return Status::ok();
  return impl_->cache.save(impl_->options.tune_cache_path);
}

}  // namespace acgpu::dispatch
