#include "dispatch/tune_cache.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace acgpu::dispatch {
namespace {

constexpr std::string_view kHeader = "acgpu-tune v1";
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::string_view bytes) {
  for (char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  // Separator byte so {"ab","c"} and {"a","bc"} hash differently.
  h ^= 0xffu;
  h *= kFnvPrime;
}

}  // namespace

std::uint64_t dictionary_hash(const ac::PatternSet& patterns,
                              std::string_view salt) {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, kHeader);
  fnv_mix(h, salt);
  for (std::string_view p : patterns) fnv_mix(h, p);
  return h;
}

Status TuneCache::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::ok();  // missing cache = empty cache
  std::string line;
  if (!std::getline(in, line) || line != kHeader)
    return Status::ok();  // unknown version: all misses, never an error
  while (std::getline(in, line)) {
    std::istringstream row(line);
    std::string hash_hex, bucket;
    TunedParams p;
    unsigned split = 1;
    if (!(row >> hash_hex >> bucket >> p.threads_per_block >> p.chunk_bytes >>
          p.pool_depth >> p.streams >> split >> p.gbps))
      continue;  // malformed line: skip
    p.split_readback = split != 0;
    char* end = nullptr;
    const std::uint64_t hash = std::strtoull(hash_hex.c_str(), &end, 16);
    if (end == nullptr || *end != '\0') continue;
    entries_[{hash, bucket}] = p;
  }
  return Status::ok();
}

Status TuneCache::save(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out)
      return Status::invalid_argument("tune cache: cannot write " + tmp);
    out << kHeader << "\n";
    char hex[24];
    for (const auto& [key, p] : entries_) {
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(key.first));
      out << hex << ' ' << key.second << ' ' << p.threads_per_block << ' '
          << p.chunk_bytes << ' ' << p.pool_depth << ' ' << p.streams << ' '
          << (p.split_readback ? 1 : 0) << ' ' << p.gbps << "\n";
    }
    if (!out)
      return Status::internal("tune cache: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    return Status::internal("tune cache: rename to " + path + " failed");
  return Status::ok();
}

std::optional<TunedParams> TuneCache::find(std::uint64_t dict_hash,
                                           const std::string& bucket) const {
  auto it = entries_.find({dict_hash, bucket});
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void TuneCache::insert(std::uint64_t dict_hash, const std::string& bucket,
                       const TunedParams& params) {
  entries_[{dict_hash, bucket}] = params;
}

std::string TuneCache::default_path() {
  if (const char* env = std::getenv("ACGPU_TUNE_CACHE"); env && *env)
    return env;
  return ".acgpu_tune_cache";
}

}  // namespace acgpu::dispatch
