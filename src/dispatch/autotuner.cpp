#include "dispatch/autotuner.h"

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace acgpu::dispatch {

std::string chip_salt(const gpusim::GpuConfig& gpu) {
  return "sms" + std::to_string(gpu.num_sms) + ".clk" +
         std::to_string(gpu.clock_ghz) + ".tpbmax" +
         std::to_string(gpu.max_threads_per_sm);
}

std::string make_probe_text(const ac::PatternSet& patterns,
                            const SignatureBucket& bucket,
                            std::uint64_t max_bytes, std::uint64_t seed) {
  const std::uint64_t want = bucket.size_class >= 63
                                 ? max_bytes
                                 : (std::uint64_t{1} << bucket.size_class);
  const std::uint64_t size =
      std::clamp<std::uint64_t>(want, 4u << 10, std::max<std::uint64_t>(
                                                    4u << 10, max_bytes));
  Rng rng(derive_seed(seed, 0x7e57));
  std::string text;
  text.reserve(size);
  while (text.size() < size) {
    // ~1 planted pattern fragment per 256 filler bytes keeps the match
    // density realistic without flooding match buffers.
    if (!patterns.empty() && rng.next_below(256) == 0) {
      std::string_view p = patterns[rng.next_below(
          static_cast<std::uint64_t>(patterns.size()))];
      text.append(p.substr(0, std::min<std::size_t>(p.size(),
                                                    size - text.size())));
    } else {
      text.push_back(static_cast<char>('a' + rng.next_below(26)));
    }
  }
  return text;
}

Autotuner::Autotuner(Device& device, const ac::PatternSet& patterns,
                     const EngineOptions& base)
    : device_(device),
      patterns_(patterns),
      base_(base),
      dict_hash_(dictionary_hash(patterns, chip_salt(device.gpu()))) {}

Result<TuneOutcome> Autotuner::tune(const SignatureBucket& bucket,
                                    const TuneBudget& budget,
                                    TuneCache* cache) {
  const std::string bucket_id = bucket_key(bucket);
  if (cache != nullptr) {
    if (auto hit = cache->find(dict_hash_, bucket_id)) {
      TuneOutcome out;
      out.params = *hit;
      out.from_cache = true;
      return out;
    }
  }

  // Candidate grid, most-promising-first so small budgets still cover the
  // axes that matter most (threads_per_block, then staging scheme).
  std::vector<TunedParams> candidates;
  const auto push = [&](std::uint32_t tpb, std::uint32_t streams,
                        std::uint32_t pool, bool split,
                        std::uint64_t chunk) {
    TunedParams p;
    p.threads_per_block = tpb;
    p.streams = streams;
    p.pool_depth = pool;
    p.split_readback = split;
    p.chunk_bytes = chunk;
    candidates.push_back(p);
  };
  push(base_.threads_per_block, base_.streams, base_.pool_depth,
       base_.split_readback, base_.chunk_bytes);  // baseline first
  push(256, 4, 8, true, 0);
  push(128, 4, 8, true, 0);
  push(256, 2, 0, true, 0);
  push(64, 4, 8, true, 0);
  push(256, 4, 8, false, 0);
  push(256, 8, 8, true, 0);
  push(128, 8, 8, true, 0);
  push(256, 4, 2, true, 0);
  push(512, 4, 8, true, 0);
  push(256, 4, 8, true, 64u << 10);
  push(128, 2, 0, false, 0);
  if (candidates.size() > budget.max_configs)
    candidates.resize(std::max<std::uint32_t>(1, budget.max_configs));

  const std::string probe =
      make_probe_text(patterns_, bucket, budget.probe_bytes,
                      derive_seed(dict_hash_, bucket.size_class));

  TuneOutcome out;
  bool have_winner = false;
  for (const TunedParams& cand : candidates) {
    EngineOptions opt = base_;
    opt.mode = gpusim::SimMode::Timed;  // sampled blocks: cheap, modeled
    opt.threads_per_block = cand.threads_per_block;
    opt.streams = cand.streams;
    opt.pool_depth = cand.pool_depth;
    opt.split_readback = cand.split_readback;
    opt.chunk_bytes = cand.chunk_bytes;
    Result<Engine> engine = Engine::create(device_, patterns_, opt);
    if (!engine.is_ok()) continue;  // invalid combo for this device: skip
    Result<ScanResult> scan = engine.value().scan(probe);
    if (!scan.is_ok()) continue;
    ++out.configs_tried;
    const double seconds = scan.value().stats.makespan_seconds;
    if (!have_winner || seconds < out.probe_seconds) {
      have_winner = true;
      out.probe_seconds = seconds;
      out.params = cand;
      out.params.gbps = seconds > 0.0
                            ? static_cast<double>(probe.size()) / seconds / 1e9
                            : 0.0;
    }
  }
  if (!have_winner)
    return Status::internal("autotune: no candidate config ran for bucket " +
                            bucket_id);
  if (cache != nullptr) cache->insert(dict_hash_, bucket_id, out.params);
  return out;
}

}  // namespace acgpu::dispatch
