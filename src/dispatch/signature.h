// acgpu::dispatch — workload signatures and signature buckets.
//
// The paper's own sweeps (Figs 13-23) show the winning matcher flips between
// serial CPU, parallel CPU, and the GPU kernel variants as input size,
// pattern count, and alphabet change. A WorkloadSignature is the cheap
// per-batch fingerprint the dispatcher keys those crossovers on:
//
//   - text_bytes           scan size (the dominant axis)
//   - pattern_count        dictionary size (STT rows ~ states)
//   - max/avg pattern len  chunk-overlap X and output density proxies
//   - alphabet_density     distinct bytes in a bounded sample / 256
//   - session              latency-sensitive serve superbatch vs bulk scan
//
// Pattern-derived fields depend only on the dictionary, so they are computed
// ONCE per automaton (PatternStats) and reused; per-batch extraction touches
// at most kDensitySampleBytes of the text. Signatures quantize into
// SignatureBuckets (log2 size classes) — the unit the cost model refines
// over and the autotuner caches winners for (docs/DISPATCH.md).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "ac/dfa.h"

namespace acgpu::dispatch {

/// Upper bound on bytes sampled for alphabet density; the sample is strided
/// evenly across the text so signature extraction is O(1) per batch.
inline constexpr std::size_t kDensitySampleBytes = 2048;

/// Dictionary-derived half of the signature; compute once per Dfa.
struct PatternStats {
  std::uint32_t pattern_count = 0;
  std::uint32_t max_pattern_len = 0;
  double avg_pattern_len = 0.0;
  std::uint32_t state_count = 0;
  std::uint64_t stt_bytes = 0;
};

PatternStats compute_pattern_stats(const ac::Dfa& dfa);

/// The full per-batch fingerprint the dispatcher routes on.
struct WorkloadSignature {
  std::uint64_t text_bytes = 0;
  std::uint32_t pattern_count = 0;
  std::uint32_t max_pattern_len = 0;
  double avg_pattern_len = 0.0;
  /// Distinct byte values in the sampled window / 256, in (0, 1].
  double alphabet_density = 0.0;
  /// true = latency-sensitive serve superbatch; false = bulk scan.
  bool session = false;
};

/// Cheap per-batch extraction: pattern fields come from `stats`, text fields
/// from a bounded strided sample of `text`.
WorkloadSignature make_signature(const PatternStats& stats,
                                 std::string_view text, bool session = false);

/// Convenience for one-off callers (tests, CLI): recomputes PatternStats.
WorkloadSignature make_signature(const ac::Dfa& dfa, std::string_view text,
                                 bool session = false);

/// Quantized signature — the granularity the cost model's online refinement
/// and the autotuner's cache operate at. Two signatures in the same bucket
/// are assumed to behave alike.
struct SignatureBucket {
  std::uint8_t size_class = 0;     ///< floor(log2(text_bytes)), 0 for empty
  std::uint8_t pattern_class = 0;  ///< floor(log2(pattern_count))
  std::uint8_t length_class = 0;   ///< floor(log2(max_pattern_len))
  std::uint8_t density_class = 0;  ///< alphabet_density quantized to 0..7
  bool session = false;

  friend bool operator==(const SignatureBucket&,
                         const SignatureBucket&) = default;
};

SignatureBucket bucket_of(const WorkloadSignature& sig);

/// Stable textual key, e.g. "s12.p5.l3.d2.bulk" — used as the map key for
/// online refinement and as the bucket column in the tune cache file.
std::string bucket_key(const SignatureBucket& bucket);

}  // namespace acgpu::dispatch
