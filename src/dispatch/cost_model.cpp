#include "dispatch/cost_model.h"

#include <algorithm>

namespace acgpu::dispatch {

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kSerialCpu: return "serial";
    case Backend::kParallelCpu: return "parallel";
    case Backend::kGpuPipeline: return "gpu";
  }
  return "?";
}

namespace {

/// Host scans are modeled, not wall-clocked: sample up to this many bytes
/// through cpumodel::estimate_serial to price the actual text.
constexpr std::size_t kHostSampleBytes = 64u << 10;

}  // namespace

double modeled_serial_seconds(const ac::Dfa& dfa, std::string_view text,
                              const cpumodel::CpuConfig& cpu) {
  if (text.empty()) return 0.0;
  return cpumodel::estimate_serial(
             dfa, text.substr(0, std::min(text.size(), kHostSampleBytes)),
             text.size(), cpu)
      .seconds;
}

double modeled_parallel_seconds(const ac::Dfa& dfa, std::string_view text,
                                const CostModelConfig& config) {
  if (text.empty()) return 0.0;
  const double serial = modeled_serial_seconds(dfa, text, config.cpu);
  const double speedup =
      std::max(1.0, static_cast<double>(config.parallel_threads) *
                        config.parallel_efficiency);
  return serial / speedup + config.parallel_overhead_seconds;
}

CostModelConfig seed_config(const gpusim::GpuConfig& gpu,
                            const cpumodel::CpuConfig& cpu) {
  CostModelConfig config;
  config.cpu = cpu;
  // Per-scan GPU overhead: H2D + D2H PCIe latency plus a pipeline-fill
  // allowance (first batch has no overlap partner).
  config.gpu_overhead_seconds = 2.0 * gpu.pcie_latency_seconds + 40e-6;
  // Sustained slope: PCIe transfer in series with an assumed kernel
  // throughput. Deliberately rough — the DispatchEngine probe replaces it.
  const double assumed_kernel_bps = 3.0e9;
  config.gpu_bytes_per_second =
      1.0 / (1.0 / gpu.pcie_bytes_per_second + 1.0 / assumed_kernel_bps);
  return config;
}

CostModel::CostModel(const CostModelConfig& config)
    : config_(config),
      serial_cycles_per_byte_(config.cpu.base_cycles_per_byte),
      gpu_overhead_seconds_(config.gpu_overhead_seconds),
      gpu_bytes_per_second_(config.gpu_bytes_per_second) {}

void CostModel::calibrate_cpu(const ac::Dfa& dfa, std::string_view sample) {
  if (sample.empty()) return;
  // Price a log-spaced ladder of prefixes: cpumodel's cache simulation
  // makes small scans several times more expensive per byte than the
  // asymptote, and a single cpb would systematically under-price them
  // (sending tiny scans to the wrong backend until the EWMA catches up).
  static constexpr std::size_t kAnchorBytes[] = {64,        256,      1u << 10,
                                                 4u << 10,  16u << 10,
                                                 64u << 10};
  std::vector<std::pair<double, double>> anchors;
  for (std::size_t bytes : kAnchorBytes) {
    const std::size_t n = std::min(bytes, sample.size());
    if (!anchors.empty() && static_cast<double>(n) <= anchors.back().first)
      continue;
    cpumodel::SerialEstimate est = cpumodel::estimate_serial(
        dfa, sample.substr(0, n), n, config_.cpu);
    if (est.seconds > 0.0)
      anchors.emplace_back(static_cast<double>(n), est.seconds);
  }
  if (anchors.empty()) return;
  serial_anchors_ = std::move(anchors);
  // Keep the scalar accessor meaningful: the asymptotic slope of the
  // calibrated curve (its last segment), which is also what extrapolation
  // past the largest anchor uses.
  cpumodel::SerialEstimate full =
      cpumodel::estimate_serial(dfa, sample, sample.size(), config_.cpu);
  if (full.cycles_per_byte > 0.0)
    serial_cycles_per_byte_ = full.cycles_per_byte;
}

void CostModel::set_gpu_curve(double overhead_seconds,
                              double bytes_per_second) {
  if (overhead_seconds >= 0.0) gpu_overhead_seconds_ = overhead_seconds;
  if (bytes_per_second > 0.0) gpu_bytes_per_second_ = bytes_per_second;
}

double CostModel::serial_analytic_seconds(double bytes) const {
  if (bytes <= 0.0) return 0.0;
  if (serial_anchors_.empty())
    return bytes * serial_cycles_per_byte_ / (config_.cpu.clock_ghz * 1e9);
  const auto& first = serial_anchors_.front();
  if (bytes <= first.first) return first.second * (bytes / first.first);
  for (std::size_t i = 1; i < serial_anchors_.size(); ++i) {
    const auto& lo = serial_anchors_[i - 1];
    const auto& hi = serial_anchors_[i];
    if (bytes <= hi.first) {
      const double t = (bytes - lo.first) / (hi.first - lo.first);
      return lo.second + t * (hi.second - lo.second);
    }
  }
  // Past the ladder: extrapolate with the asymptotic (last-segment) slope.
  const auto& last = serial_anchors_.back();
  double slope = last.second / last.first;
  if (serial_anchors_.size() >= 2) {
    const auto& prev = serial_anchors_[serial_anchors_.size() - 2];
    slope = (last.second - prev.second) / (last.first - prev.first);
  }
  return last.second + (bytes - last.first) * slope;
}

double CostModel::analytic(Backend backend,
                           const WorkloadSignature& sig) const {
  const double bytes = static_cast<double>(sig.text_bytes);
  const double serial_seconds = serial_analytic_seconds(bytes);
  switch (backend) {
    case Backend::kSerialCpu:
      return serial_seconds;
    case Backend::kParallelCpu: {
      const double speedup = std::max(
          1.0, static_cast<double>(config_.parallel_threads) *
                   config_.parallel_efficiency);
      return serial_seconds / speedup + config_.parallel_overhead_seconds;
    }
    case Backend::kGpuPipeline:
      return gpu_overhead_seconds_ + bytes / gpu_bytes_per_second_;
  }
  return serial_seconds;
}

double CostModel::predict(Backend backend,
                          const WorkloadSignature& sig) const {
  return analytic(backend, sig) * correction(backend, sig);
}

Prediction CostModel::predict_all(const WorkloadSignature& sig) const {
  Prediction p;
  std::array<double, kBackendCount> corr{1.0, 1.0, 1.0};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = corrections_.find(bucket_key(bucket_of(sig)));
    if (it != corrections_.end()) corr = it->second;
  }
  for (int b = 0; b < kBackendCount; ++b)
    p.seconds[static_cast<std::size_t>(b)] =
        analytic(static_cast<Backend>(b), sig) *
        corr[static_cast<std::size_t>(b)];
  int best = 0;
  for (int b = 1; b < kBackendCount; ++b)
    if (p.seconds[static_cast<std::size_t>(b)] <
        p.seconds[static_cast<std::size_t>(best)])
      best = b;
  p.best = static_cast<Backend>(best);
  p.best_seconds = p.seconds[static_cast<std::size_t>(best)];
  p.runner_up_seconds = p.best_seconds;
  bool first = true;
  for (int b = 0; b < kBackendCount; ++b) {
    if (b == best) continue;
    const double s = p.seconds[static_cast<std::size_t>(b)];
    if (first || s < p.runner_up_seconds) p.runner_up_seconds = s;
    first = false;
  }
  return p;
}

void CostModel::observe(Backend backend, const WorkloadSignature& sig,
                        double actual_seconds) {
  if (config_.ewma_alpha <= 0.0 || actual_seconds <= 0.0) return;
  const double base = analytic(backend, sig);
  if (base <= 0.0) return;
  // Clamp the per-observation ratio so one quantization outlier cannot
  // poison a bucket; the EWMA still converges to persistent bias.
  const double ratio = std::clamp(actual_seconds / base, 0.25, 4.0);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = corrections_.try_emplace(
      bucket_key(bucket_of(sig)),
      std::array<double, kBackendCount>{1.0, 1.0, 1.0});
  double& c = it->second[static_cast<std::size_t>(backend)];
  c = (1.0 - config_.ewma_alpha) * c + config_.ewma_alpha * ratio;
}

double CostModel::correction(Backend backend,
                             const WorkloadSignature& sig) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = corrections_.find(bucket_key(bucket_of(sig)));
  if (it == corrections_.end()) return 1.0;
  return it->second[static_cast<std::size_t>(backend)];
}

}  // namespace acgpu::dispatch
