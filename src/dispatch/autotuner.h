// acgpu::dispatch::Autotuner — offline per-bucket sweep of pipeline knobs.
//
// For one dictionary on one device, the autotuner sweeps the EngineOptions
// knobs that moved the needle in the paper's Figs 13-23 and the pipeline
// benches — threads_per_block, chunk_bytes, pool_depth, and the staging
// scheme (streams x split_readback) — over a deterministic synthetic probe
// text sized for the signature bucket, in Timed mode (sampled blocks,
// extrapolated makespan: cheap). The winner (minimum modeled makespan) is
// stored in the TuneCache keyed by (dictionary content hash, bucket key),
// so the second process with the same dictionary re-tunes nothing.
//
// "Offline" means: run from the ext_dispatch CLI or a CI step with a
// budget, never on the scan path. The DispatchEngine only *reads* the
// cache at creation (tune-on-miss is opt-in via DispatcherOptions).
#pragma once

#include <cstdint>

#include "dispatch/signature.h"
#include "dispatch/tune_cache.h"
#include "pipeline/engine.h"

namespace acgpu::dispatch {

struct TuneBudget {
  /// Cap on candidate configurations measured per bucket. The candidate
  /// list is deterministic, ordered most-promising-first, and truncated to
  /// this cap — a budget of 1 measures only the baseline config.
  std::uint32_t max_configs = 12;
  /// Cap on the synthetic probe text (the bucket's representative size is
  /// clamped to [4 KiB, probe_bytes]).
  std::uint64_t probe_bytes = 1u << 20;

  /// CI smoke budget: 4 configs, 128 KiB probes.
  static TuneBudget small() { return TuneBudget{4, 128u << 10}; }
};

struct TuneOutcome {
  TunedParams params;
  bool from_cache = false;       ///< cache hit — nothing was measured
  std::uint32_t configs_tried = 0;
  double probe_seconds = 0.0;    ///< winner's modeled makespan on the probe
};

class Autotuner {
 public:
  /// Engines are created per candidate against `device`; `base` supplies
  /// every knob the sweep does not touch (variant, placement, mode is
  /// forced to Timed). The pattern set and device must outlive the tuner.
  Autotuner(Device& device, const ac::PatternSet& patterns,
            const EngineOptions& base);

  /// Tunes one bucket. When `cache` is non-null it is consulted first
  /// (hit => from_cache, zero configs tried) and the winner is inserted
  /// on miss; the caller decides when to save() the cache to disk.
  Result<TuneOutcome> tune(const SignatureBucket& bucket,
                           const TuneBudget& budget, TuneCache* cache);

  std::uint64_t dict_hash() const { return dict_hash_; }

 private:
  Device& device_;
  const ac::PatternSet& patterns_;
  EngineOptions base_;
  std::uint64_t dict_hash_;
};

/// Deterministic probe text for a bucket: pattern fragments planted in
/// seeded random filler, sized 2^size_class clamped to [4 KiB, max_bytes].
std::string make_probe_text(const ac::PatternSet& patterns,
                            const SignatureBucket& bucket,
                            std::uint64_t max_bytes, std::uint64_t seed);

/// Chip identity folded into dictionary_hash's salt: tuned winners for one
/// simulated chip must not be replayed on another.
std::string chip_salt(const gpusim::GpuConfig& gpu);

}  // namespace acgpu::dispatch
