#include "ac/serial_matcher.h"

namespace acgpu::ac {

std::vector<Match> find_all(const Dfa& dfa, std::string_view text) {
  CollectSink sink;
  match_serial(dfa, text, sink);
  return std::move(sink.matches());
}

std::uint64_t count_matches(const Dfa& dfa, std::string_view text) {
  CountSink sink;
  match_serial(dfa, text, sink);
  return sink.count();
}

}  // namespace acgpu::ac
