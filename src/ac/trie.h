// Keyword trie — the goto function's skeleton (phase 1, step 1 of the paper's
// AC construction).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "ac/pattern_set.h"

namespace acgpu::ac {

/// State index type. State 0 is always the root.
using State = std::int32_t;

/// Trie over the full byte alphabet. Children are kept in per-node ordered
/// maps: the trie is a construction-time structure only (the matchers run on
/// the flattened DFA), and natural-language dictionaries have low branching
/// factors, so dense 256-entry child arrays would waste ~1 KB per node.
class Trie {
 public:
  /// Builds the trie for a whole dictionary. Node ids are assigned in
  /// creation order (root = 0), which matches the paper's Fig. 1 numbering
  /// for patterns inserted in order.
  explicit Trie(const PatternSet& patterns);

  std::size_t node_count() const { return nodes_.size(); }

  /// Child for `byte`, or kNoChild.
  State child(State node, std::uint8_t byte) const;
  static constexpr State kNoChild = -1;

  /// Depth of the node == length of the string spelling it.
  std::uint32_t depth(State node) const { return nodes_[node].depth; }

  /// Pattern ids that end exactly at this node (not including failure-link
  /// suffix matches; those are added by the Automaton).
  const std::vector<std::int32_t>& terminal_patterns(State node) const {
    return nodes_[node].terminals;
  }

  /// Ordered children of a node (byte -> state), exposed for BFS traversals.
  const std::map<std::uint8_t, State>& children(State node) const {
    return nodes_[node].children;
  }

 private:
  struct Node {
    std::map<std::uint8_t, State> children;
    std::vector<std::int32_t> terminals;
    std::uint32_t depth = 0;
  };

  State add_child(State node, std::uint8_t byte);

  std::vector<Node> nodes_;
};

}  // namespace acgpu::ac
