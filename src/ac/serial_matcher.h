// Serial DFA matcher — the paper's single-core baseline (Figs 13/16).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "ac/dfa.h"
#include "ac/match.h"

namespace acgpu::ac {

/// Scans `text` through the DFA, one STT lookup per byte, invoking
/// `sink(end_index, pattern_id)` for every occurrence. `base` is added to
/// reported end indices (used when scanning a window of a larger text).
/// Returns the final DFA state (callers resuming a scan can pass it back as
/// `start_state`).
template <typename Sink>
std::int32_t match_serial(const Dfa& dfa, std::string_view text, Sink&& sink,
                          std::uint64_t base = 0, std::int32_t start_state = 0) {
  std::int32_t state = start_state;
  const auto* stt = &dfa.stt();
  for (std::size_t i = 0; i < text.size(); ++i) {
    state = stt->next(state, static_cast<std::uint8_t>(text[i]));
    if (stt->output_id(state) != 0) {
      for (const std::int32_t* p = dfa.output_begin(state); p != dfa.output_end(state); ++p)
        sink(base + i, *p);
    }
  }
  return state;
}

/// Convenience wrappers.
std::vector<Match> find_all(const Dfa& dfa, std::string_view text);
std::uint64_t count_matches(const Dfa& dfa, std::string_view text);

}  // namespace acgpu::ac
