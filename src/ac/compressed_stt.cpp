#include "ac/compressed_stt.h"

#include "util/error.h"

namespace acgpu::ac {

CompressedStt::CompressedStt(const Dfa& dfa) {
  const std::uint32_t states = dfa.state_count();
  ACGPU_CHECK(states > 0, "CompressedStt: empty DFA");

  for (std::uint32_t b = 0; b < 256; ++b)
    root_row_[b] = dfa.next(0, static_cast<std::uint8_t>(b));

  rows_.resize(states);
  output_ids_.resize(states);
  for (std::uint32_t s = 0; s < states; ++s) {
    Row& row = rows_[s];
    row.base = static_cast<std::uint32_t>(targets_.size());
    output_ids_[s] = dfa.stt().output_id(static_cast<std::int32_t>(s));
    for (std::uint32_t b = 0; b < 256; ++b) {
      const std::int32_t target =
          dfa.next(static_cast<std::int32_t>(s), static_cast<std::uint8_t>(b));
      if (s != 0 && target == root_row_[b]) continue;  // root-default entry
      if (s == 0) continue;  // the root row itself lives in root_row_
      row.bitmap[b >> 5] |= 1u << (b & 31);
      targets_.push_back(target);
    }
  }

  const double dense = static_cast<double>(dfa.stt_bytes());
  ratio_ = dense / static_cast<double>(size_bytes());
}

std::size_t CompressedStt::size_bytes() const {
  return rows_.size() * sizeof(Row) + targets_.size() * sizeof(std::int32_t) +
         output_ids_.size() * sizeof(std::int32_t) + sizeof(root_row_);
}

}  // namespace acgpu::ac
