#include "ac/nfa_matcher.h"

namespace acgpu::ac {

std::vector<Match> find_all_nfa(const Automaton& automaton, std::string_view text) {
  CollectSink sink;
  match_nfa(automaton, text, sink);
  return std::move(sink.matches());
}

}  // namespace acgpu::ac
