// Incremental (streaming) matching: feed the text in arbitrary slices and
// get exactly the matches a single pass would produce. This is how an IDS
// consumes reassembled TCP streams — patterns may straddle feed boundaries,
// which the carried DFA state handles for free.
#pragma once

#include <cstdint>
#include <string_view>

#include "ac/dfa.h"
#include "ac/match.h"

namespace acgpu::ac {

class StreamMatcher {
 public:
  /// The Dfa must outlive the matcher.
  explicit StreamMatcher(const Dfa& dfa) : dfa_(&dfa) {}

  /// Scans the next slice; reported match ends are absolute offsets into
  /// the concatenation of everything fed so far. Matches are emitted in
  /// discovery (feed) order — see the ordering contract in ac/match.h:
  /// normalize with ac::normalize_matches before comparing against a batch
  /// matcher's output.
  template <typename Sink>
  void feed(std::string_view slice, Sink&& sink) {
    const auto* stt = &dfa_->stt();
    std::int32_t state = state_;
    for (std::size_t i = 0; i < slice.size(); ++i) {
      state = stt->next(state, static_cast<std::uint8_t>(slice[i]));
      if (stt->output_id(state) != 0) {
        for (const std::int32_t* p = dfa_->output_begin(state);
             p != dfa_->output_end(state); ++p)
          sink(consumed_ + i, *p);
      }
    }
    state_ = state;
    consumed_ += slice.size();
  }

  /// Bytes consumed across all feeds.
  std::uint64_t bytes_consumed() const { return consumed_; }
  /// Current DFA state (0 = root).
  std::int32_t state() const { return state_; }
  /// Forget all history; the next feed starts a fresh text.
  void reset() {
    state_ = 0;
    consumed_ = 0;
  }

 private:
  const Dfa* dfa_;
  std::int32_t state_ = 0;
  std::uint64_t consumed_ = 0;
};

}  // namespace acgpu::ac
