// PFAC (Parallel Failureless Aho-Corasick), Lin et al. [3] — the related-work
// variant the paper discusses and our extension ablation implements. The
// failure links are removed entirely: one matcher instance starts at *every*
// text position and simply dies on the first absent goto edge, so each
// instance only detects patterns that begin at its own start byte.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "ac/match.h"
#include "ac/pattern_set.h"
#include "ac/stt_layout.h"

namespace acgpu::ac {

/// Failureless automaton: a trie flattened into an STT-like table where an
/// absent edge maps to the dead sentinel (-1) instead of a failure target.
/// Match column semantics are identical to Dfa's (output ids into a CSR).
class PfacAutomaton {
 public:
  explicit PfacAutomaton(const PatternSet& patterns);

  std::uint32_t state_count() const { return stt_.rows(); }
  const SttMatrix& stt() const { return stt_; }

  static constexpr std::int32_t kDead = -1;
  std::int32_t next(std::int32_t state, std::uint8_t byte) const {
    return stt_.next(state, byte);
  }

  const std::int32_t* output_begin(std::int32_t state) const {
    return out_ids_.data() + out_begin_[static_cast<std::size_t>(stt_.output_id(state))];
  }
  const std::int32_t* output_end(std::int32_t state) const {
    return out_ids_.data() + out_begin_[static_cast<std::size_t>(stt_.output_id(state)) + 1];
  }

  /// Pattern ids for a raw output id (match-column value; 0 = empty set).
  const std::int32_t* id_output_begin(std::int32_t oid) const {
    return out_ids_.data() + out_begin_[static_cast<std::size_t>(oid)];
  }
  const std::int32_t* id_output_end(std::int32_t oid) const {
    return out_ids_.data() + out_begin_[static_cast<std::size_t>(oid) + 1];
  }

  std::uint32_t max_pattern_length() const { return max_pattern_length_; }
  std::uint32_t pattern_length(std::int32_t id) const {
    return pattern_lengths_[static_cast<std::size_t>(id)];
  }

  /// Scan the instance starting at text position `start`; emits matches that
  /// begin at `start` (their ends are reported, consistent with Match).
  template <typename Sink>
  void run_from(std::string_view text, std::size_t start, Sink&& sink) const {
    std::int32_t state = 0;
    const std::size_t limit =
        std::min(text.size(), start + static_cast<std::size_t>(max_pattern_length_));
    for (std::size_t i = start; i < limit; ++i) {
      state = next(state, static_cast<std::uint8_t>(text[i]));
      if (state == kDead) return;
      if (stt_.output_id(state) != 0)
        for (const std::int32_t* p = output_begin(state); p != output_end(state); ++p)
          sink(i, *p);
    }
  }

 private:
  SttMatrix stt_;
  std::vector<std::uint32_t> out_begin_;
  std::vector<std::int32_t> out_ids_;
  std::vector<std::uint32_t> pattern_lengths_;
  std::uint32_t max_pattern_length_ = 0;
};

/// Serial PFAC matcher over the full text (one instance per position).
std::vector<Match> find_all_pfac(const PfacAutomaton& pfac, std::string_view text);

}  // namespace acgpu::ac
