// Chunk decomposition with the paper's X-byte overlap rule (Section IV.B.3).
//
// Each GPU thread scans one chunk plus `X = max pattern length` extra bytes
// so that patterns straddling a chunk boundary are still found. To avoid
// duplicates, a thread only *reports* matches whose START index lies inside
// its own chunk; matches that start earlier belong to the previous thread.
// These helpers centralise that arithmetic so the kernels, the CPU reference
// decomposition, and the tests all agree on it.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "ac/dfa.h"
#include "ac/match.h"

namespace acgpu::ac {

/// One thread's assignment.
struct Chunk {
  std::uint64_t begin = 0;     ///< first byte the thread owns
  std::uint64_t end = 0;       ///< one past the last byte it owns
  std::uint64_t scan_end = 0;  ///< one past the last byte it scans (overlap)
};

/// Splits [0, text_len) into chunks of `chunk_size` bytes (the final chunk
/// may be shorter) with `overlap` extra scan bytes each. overlap should be
/// max_pattern_length - 1: a match starting on a chunk's last byte ends at
/// most overlap bytes past the chunk.
std::vector<Chunk> make_chunks(std::uint64_t text_len, std::uint64_t chunk_size,
                               std::uint32_t overlap);

/// The overlap the paper's rule requires for a dictionary whose longest
/// pattern has `max_pattern_length` bytes.
constexpr std::uint32_t required_overlap(std::uint32_t max_pattern_length) {
  return max_pattern_length > 0 ? max_pattern_length - 1 : 0;
}

/// Dedup rule: should a match of `length` ending at `end` (absolute index)
/// be reported by the thread owning `chunk`? True iff the match starts
/// within [chunk.begin, chunk.end).
constexpr bool chunk_owns_match(const Chunk& chunk, std::uint64_t end,
                                std::uint32_t length) {
  const std::uint64_t start = end + 1 - length;
  return start >= chunk.begin && start < chunk.end;
}

/// CPU reference implementation of chunked matching: scans every chunk
/// independently (fresh DFA state per chunk) and applies the dedup rule.
/// Produces exactly the same multiset of matches as one serial pass —
/// asserted by the test suite and relied on by the GPU kernels, which
/// mirror this decomposition.
std::vector<Match> find_all_chunked(const Dfa& dfa, std::string_view text,
                                    std::uint64_t chunk_size);

}  // namespace acgpu::ac
