// Compressed State Transition Table.
//
// The dense STT costs states x 257 x 4 bytes (123 MB at 20,000 patterns) —
// the paper's refs [19] (Zha, Scarpazza, Sahni) compress it to fit tighter
// memories. This implements the bitmap scheme: for every state, transitions
// that differ from the ROOT row's transition for the same byte are stored
// explicitly (a 256-bit bitmap plus a popcount-indexed target array);
// everything else falls back to the root row. Deep states differ from the
// root in only a handful of bytes, so the table shrinks by ~10-60x.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "ac/dfa.h"
#include "ac/match.h"

namespace acgpu::ac {

class CompressedStt {
 public:
  explicit CompressedStt(const Dfa& dfa);

  std::uint32_t state_count() const { return static_cast<std::uint32_t>(rows_.size()); }

  /// Exact equivalent of Dfa::next.
  std::int32_t next(std::int32_t state, std::uint8_t byte) const {
    const Row& row = rows_[static_cast<std::size_t>(state)];
    const std::uint32_t word = byte >> 5;          // 8 words of 32 bits
    const std::uint32_t bit = byte & 31;
    const std::uint32_t mask = row.bitmap[word];
    if ((mask >> bit & 1) == 0) return root_row_[byte];
    // Rank of this bit: explicit targets are packed in byte order.
    std::uint32_t rank = row.base;
    for (std::uint32_t w = 0; w < word; ++w)
      rank += static_cast<std::uint32_t>(__builtin_popcount(row.bitmap[w]));
    rank += static_cast<std::uint32_t>(
        __builtin_popcount(mask & ((bit == 0 ? 0u : (~0u >> (32 - bit))))));
    return targets_[rank];
  }

  /// Exact equivalent of the STT match column.
  std::int32_t output_id(std::int32_t state) const {
    return output_ids_[static_cast<std::size_t>(state)];
  }

  /// Compressed footprint in bytes (bitmaps + targets + match column).
  std::size_t size_bytes() const;
  /// Dense STT bytes / compressed bytes.
  double compression_ratio() const { return ratio_; }

  // --- raw accessors for the GPU upload (kernels/compressed_kernel) ---
  std::uint32_t row_bitmap(std::int32_t state, std::uint32_t word) const {
    return rows_[static_cast<std::size_t>(state)].bitmap[word];
  }
  std::uint32_t row_base(std::int32_t state) const {
    return rows_[static_cast<std::size_t>(state)].base;
  }
  const std::vector<std::int32_t>& targets() const { return targets_; }
  std::int32_t root_next(std::uint8_t byte) const { return root_row_[byte]; }

 private:
  struct Row {
    std::uint32_t bitmap[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    std::uint32_t base = 0;  ///< index of this row's first explicit target
  };

  std::vector<Row> rows_;
  std::vector<std::int32_t> targets_;
  std::vector<std::int32_t> output_ids_;
  std::int32_t root_row_[256] = {};
  double ratio_ = 1.0;
};

/// Serial matcher over the compressed table; reports exactly what
/// match_serial reports. The Dfa supplies the output CSR (shared).
template <typename Sink>
void match_compressed(const CompressedStt& stt, const Dfa& dfa,
                      std::string_view text, Sink&& sink, std::uint64_t base = 0) {
  std::int32_t state = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    state = stt.next(state, static_cast<std::uint8_t>(text[i]));
    const std::int32_t oid = stt.output_id(state);
    if (oid != 0) {
      for (const std::int32_t* p = dfa.id_output_begin(oid);
           p != dfa.id_output_end(oid); ++p)
        sink(base + i, *p);
    }
  }
}

}  // namespace acgpu::ac
