// The State Transition Table (STT) — the paper's Fig. 5 data structure.
//
// A 2-D int32 matrix: one row per DFA state, 257 columns. Column 0 is the
// match column ("M" in the paper; here it stores an output-set id, 0 = no
// match). Columns 1..256 hold the next state for input bytes 0..255. The
// GPU side binds this matrix as a 2-D texture.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "util/error.h"

namespace acgpu::ac {

class SttMatrix {
 public:
  /// Fixed by the paper: 256 byte columns + 1 match column.
  static constexpr std::uint32_t kColumns = 257;
  /// Column index for input byte b.
  static constexpr std::uint32_t column_for_byte(std::uint8_t b) {
    return 1u + b;
  }

  SttMatrix() = default;

  /// Allocates rows x kColumns, zero-initialised (state 0 / no match).
  /// `pad_pitch_to` rounds the row pitch up to a multiple (e.g. 64 elements)
  /// so texture rows can be segment-aligned; 0 keeps pitch == kColumns.
  explicit SttMatrix(std::uint32_t rows, std::uint32_t pad_pitch_to = 0);

  std::uint32_t rows() const { return rows_; }
  std::uint32_t pitch() const { return pitch_; }

  std::int32_t at(std::uint32_t row, std::uint32_t col) const {
    return data_[static_cast<std::size_t>(row) * pitch_ + col];
  }
  std::int32_t& at(std::uint32_t row, std::uint32_t col) {
    return data_[static_cast<std::size_t>(row) * pitch_ + col];
  }

  /// Next state for (state, byte) — the hot accessor.
  std::int32_t next(std::int32_t state, std::uint8_t byte) const {
    return data_[static_cast<std::size_t>(state) * pitch_ + 1 + byte];
  }
  /// Output-set id of a state (0 = not a match state).
  std::int32_t output_id(std::int32_t state) const {
    return data_[static_cast<std::size_t>(state) * pitch_];
  }

  const std::int32_t* data() const { return data_.data(); }
  std::size_t size_bytes() const { return data_.size() * sizeof(std::int32_t); }

  /// Binary round-trip (versioned header). Throws acgpu::Error on a
  /// malformed stream.
  void save(std::ostream& out) const;
  static SttMatrix load(std::istream& in);

  friend bool operator==(const SttMatrix& a, const SttMatrix& b) {
    return a.rows_ == b.rows_ && a.pitch_ == b.pitch_ && a.data_ == b.data_;
  }

 private:
  std::uint32_t rows_ = 0;
  std::uint32_t pitch_ = 0;
  std::vector<std::int32_t> data_;
};

}  // namespace acgpu::ac
