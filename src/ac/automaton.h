// The classic Aho-Corasick automaton (NFA form): goto function (the trie),
// failure function (BFS over the trie), and output function (pattern sets
// per state, closed over failure links). Section II of the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ac/pattern_set.h"
#include "ac/trie.h"

namespace acgpu::ac {

/// Immutable NFA-form automaton. Holds the trie plus failure links and the
/// output function as a CSR (compressed sparse row) table so that states
/// with no output cost nothing.
class Automaton {
 public:
  explicit Automaton(const PatternSet& patterns);

  std::size_t state_count() const { return trie_.node_count(); }
  const Trie& trie() const { return trie_; }

  /// goto function g(state, byte): child in the trie, kFail when absent.
  /// Per the paper, the root never fails: g(0, b) = 0 for absent edges.
  static constexpr State kFail = -1;
  State goto_fn(State state, std::uint8_t byte) const;

  /// failure function f(state). f(root) is root.
  State fail(State state) const { return fail_[state]; }

  /// Pattern ids emitted at `state` (closed over failure links: includes
  /// every keyword that is a suffix of the string spelling this state).
  /// Returned ids are sorted ascending.
  std::vector<std::int32_t> output(State state) const;
  bool has_output(State state) const {
    return out_begin_[state] != out_begin_[state + 1];
  }
  std::size_t output_count(State state) const {
    return static_cast<std::size_t>(out_begin_[state + 1] - out_begin_[state]);
  }

  /// States in BFS order from the root (root first). DFA construction and
  /// several invariants rely on parents preceding children.
  const std::vector<State>& bfs_order() const { return bfs_order_; }

  /// Total number of (state, pattern) output entries across all states.
  std::size_t total_output_entries() const { return out_ids_.size(); }

 private:
  Trie trie_;
  std::vector<State> fail_;
  std::vector<State> bfs_order_;
  // Output CSR: ids for state s live in out_ids_[out_begin_[s] .. out_begin_[s+1]).
  std::vector<std::uint32_t> out_begin_;
  std::vector<std::int32_t> out_ids_;
};

}  // namespace acgpu::ac
