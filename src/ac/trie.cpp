#include "ac/trie.h"

#include <limits>

#include "util/error.h"

namespace acgpu::ac {

Trie::Trie(const PatternSet& patterns) {
  nodes_.emplace_back();  // root
  for (std::size_t id = 0; id < patterns.size(); ++id) {
    State node = 0;
    for (unsigned char byte : patterns[id]) {
      State next = child(node, byte);
      if (next == kNoChild) next = add_child(node, byte);
      node = next;
    }
    nodes_[node].terminals.push_back(static_cast<std::int32_t>(id));
  }
}

State Trie::child(State node, std::uint8_t byte) const {
  const auto& ch = nodes_[node].children;
  auto it = ch.find(byte);
  return it == ch.end() ? kNoChild : it->second;
}

State Trie::add_child(State node, std::uint8_t byte) {
  ACGPU_CHECK(nodes_.size() < static_cast<std::size_t>(std::numeric_limits<State>::max()),
              "trie exceeds 2^31-1 nodes");
  const State id = static_cast<State>(nodes_.size());
  const std::uint32_t d = nodes_[node].depth + 1;
  nodes_.emplace_back();
  nodes_[id].depth = d;
  nodes_[node].children.emplace(byte, id);
  return id;
}

}  // namespace acgpu::ac
