#include "ac/naive_matcher.h"

#include <algorithm>

namespace acgpu::ac {

std::vector<Match> find_all_naive(const PatternSet& patterns, std::string_view text) {
  std::vector<Match> out;
  for (std::size_t pos = 0; pos < text.size(); ++pos) {
    for (std::size_t id = 0; id < patterns.size(); ++id) {
      const std::string_view p = patterns[id];
      if (p.size() <= text.size() - pos && text.substr(pos, p.size()) == p)
        out.push_back(Match{pos + p.size() - 1, static_cast<std::int32_t>(id)});
    }
  }
  // Normalise to (end, pattern) order so comparisons with AC output are
  // order-insensitive.
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace acgpu::ac
