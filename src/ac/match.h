// Match records and sink concepts shared by every matcher in the library.
#pragma once

#include <cstdint>
#include <vector>

namespace acgpu::ac {

/// One pattern occurrence. `end` is the index of the occurrence's last byte
/// in the text; the start index is `end - length + 1` where `length` is the
/// pattern's length. Matchers report ends because that is when an AC
/// automaton discovers a match.
struct Match {
  std::uint64_t end = 0;
  std::int32_t pattern = 0;

  friend bool operator==(const Match&, const Match&) = default;
  friend auto operator<=>(const Match&, const Match&) = default;
};

/// Sink that retains every match (tests, small inputs).
class CollectSink {
 public:
  void operator()(std::uint64_t end, std::int32_t pattern) {
    matches_.push_back(Match{end, pattern});
  }
  std::vector<Match>& matches() { return matches_; }
  const std::vector<Match>& matches() const { return matches_; }

 private:
  std::vector<Match> matches_;
};

/// Sink that only counts (benchmarks at full data scale).
class CountSink {
 public:
  void operator()(std::uint64_t, std::int32_t) { ++count_; }
  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

}  // namespace acgpu::ac
