// Match records and sink concepts shared by every matcher in the library.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace acgpu::ac {

/// One pattern occurrence. `end` is the index of the occurrence's last byte
/// in the text; the start index is `end - length + 1` where `length` is the
/// pattern's length. Matchers report ends because that is when an AC
/// automaton discovers a match.
struct Match {
  std::uint64_t end = 0;
  std::int32_t pattern = 0;

  friend bool operator==(const Match&, const Match&) = default;
  friend auto operator<=>(const Match&, const Match&) = default;
};

/// Canonical normalized order for cross-matcher comparison: ascending by
/// (end, pattern).
///
/// Output-ordering contract. The *batch* matchers (find_all_parallel,
/// find_all_chunked, find_all_pfac, find_all_naive, and every kernel's
/// collected output) return this normalized form. The *incremental* paths —
/// match_serial/match_nfa sinks and StreamMatcher::feed — emit in discovery
/// order: ends ascend, and several patterns ending on the same byte are
/// emitted in the state's output-set order. Output sets happen to be stored
/// id-sorted today, making discovery order coincide with normalized order,
/// but that is an implementation detail, not a promise: anything comparing
/// two matchers' outputs (the conformance oracle above all) must normalize
/// both sides with this function first and compare multisets.
inline std::vector<Match>& normalize_matches(std::vector<Match>& matches) {
  std::sort(matches.begin(), matches.end());
  return matches;
}

/// Sink that retains every match (tests, small inputs).
class CollectSink {
 public:
  void operator()(std::uint64_t end, std::int32_t pattern) {
    matches_.push_back(Match{end, pattern});
  }
  std::vector<Match>& matches() { return matches_; }
  const std::vector<Match>& matches() const { return matches_; }

 private:
  std::vector<Match> matches_;
};

/// Sink that only counts (benchmarks at full data scale).
class CountSink {
 public:
  void operator()(std::uint64_t, std::int32_t) { ++count_; }
  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

}  // namespace acgpu::ac
