#include "ac/pattern_set.h"

#include <algorithm>
#include <unordered_set>

#include "util/error.h"

namespace acgpu::ac {

PatternSet::PatternSet(std::vector<std::string> patterns, bool dedup) {
  // Owned keys: patterns are short (SSO), so views into moved-from strings
  // would dangle. The copy cost is negligible at dictionary scale.
  std::unordered_set<std::string> seen;
  patterns_.reserve(patterns.size());
  for (auto& p : patterns) {
    ACGPU_CHECK(!p.empty(), "PatternSet: empty pattern at index " << patterns_.size());
    if (dedup && !seen.insert(p).second) continue;
    total_bytes_ += p.size();
    patterns_.push_back(std::move(p));
  }
  if (!patterns_.empty()) {
    auto by_size = [](const auto& a, const auto& b) { return a.size() < b.size(); };
    min_length_ = static_cast<std::uint32_t>(
        std::min_element(patterns_.begin(), patterns_.end(), by_size)->size());
    max_length_ = static_cast<std::uint32_t>(
        std::max_element(patterns_.begin(), patterns_.end(), by_size)->size());
  }
}

}  // namespace acgpu::ac
