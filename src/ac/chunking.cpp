#include "ac/chunking.h"

#include <algorithm>

#include "ac/serial_matcher.h"
#include "util/error.h"

namespace acgpu::ac {

std::vector<Chunk> make_chunks(std::uint64_t text_len, std::uint64_t chunk_size,
                               std::uint32_t overlap) {
  ACGPU_CHECK(chunk_size > 0, "make_chunks: chunk_size must be positive");
  std::vector<Chunk> chunks;
  chunks.reserve(static_cast<std::size_t>((text_len + chunk_size - 1) / chunk_size));
  for (std::uint64_t begin = 0; begin < text_len; begin += chunk_size) {
    Chunk c;
    c.begin = begin;
    c.end = std::min(text_len, begin + chunk_size);
    c.scan_end = std::min(text_len, c.end + overlap);
    chunks.push_back(c);
  }
  return chunks;
}

std::vector<Match> find_all_chunked(const Dfa& dfa, std::string_view text,
                                    std::uint64_t chunk_size) {
  const std::uint32_t overlap = required_overlap(dfa.max_pattern_length());
  std::vector<Match> out;
  for (const Chunk& c : make_chunks(text.size(), chunk_size, overlap)) {
    const std::string_view window =
        text.substr(static_cast<std::size_t>(c.begin),
                    static_cast<std::size_t>(c.scan_end - c.begin));
    match_serial(dfa, window, [&](std::uint64_t end, std::int32_t id) {
      if (chunk_owns_match(c, end, dfa.pattern_length(id)))
        out.push_back(Match{end, id});
    }, /*base=*/c.begin);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace acgpu::ac
