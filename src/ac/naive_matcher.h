// Naive O(n * total-pattern-bytes) matcher: direct substring comparison at
// every position. The ground-truth oracle for property tests — deliberately
// written with no shared machinery with the AC matchers.
#pragma once

#include <string_view>
#include <vector>

#include "ac/match.h"
#include "ac/pattern_set.h"

namespace acgpu::ac {

std::vector<Match> find_all_naive(const PatternSet& patterns, std::string_view text);

}  // namespace acgpu::ac
