#include "ac/pfac.h"

#include <algorithm>

#include "ac/trie.h"
#include "util/error.h"

namespace acgpu::ac {

PfacAutomaton::PfacAutomaton(const PatternSet& patterns)
    : max_pattern_length_(patterns.max_length()) {
  ACGPU_CHECK(!patterns.empty(), "PfacAutomaton: empty pattern set");
  pattern_lengths_.reserve(patterns.size());
  for (std::size_t id = 0; id < patterns.size(); ++id)
    pattern_lengths_.push_back(patterns.length(id));
  Trie trie(patterns);
  stt_ = SttMatrix(static_cast<std::uint32_t>(trie.node_count()));

  // Every edge defaults to dead; only real trie edges survive. In PFAC a
  // match instance never restarts, so no failure targets exist.
  for (std::uint32_t r = 0; r < stt_.rows(); ++r)
    for (std::uint32_t b = 0; b < 256; ++b)
      stt_.at(r, SttMatrix::column_for_byte(static_cast<std::uint8_t>(b))) = kDead;

  out_begin_ = {0, 0};
  for (std::uint32_t s = 0; s < stt_.rows(); ++s) {
    for (const auto& [byte, child] : trie.children(static_cast<State>(s)))
      stt_.at(s, SttMatrix::column_for_byte(byte)) = child;
    const auto& terminals = trie.terminal_patterns(static_cast<State>(s));
    if (!terminals.empty()) {
      stt_.at(s, 0) = static_cast<std::int32_t>(out_begin_.size() - 1);
      out_ids_.insert(out_ids_.end(), terminals.begin(), terminals.end());
      out_begin_.push_back(static_cast<std::uint32_t>(out_ids_.size()));
    }
  }
}

std::vector<Match> find_all_pfac(const PfacAutomaton& pfac, std::string_view text) {
  CollectSink sink;
  for (std::size_t start = 0; start < text.size(); ++start)
    pfac.run_from(text, start, sink);
  auto out = std::move(sink.matches());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace acgpu::ac
