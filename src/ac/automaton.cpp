#include "ac/automaton.h"

#include <algorithm>
#include <queue>

#include "util/error.h"

namespace acgpu::ac {

Automaton::Automaton(const PatternSet& patterns) : trie_(patterns) {
  const std::size_t n = trie_.node_count();
  fail_.assign(n, 0);
  bfs_order_.reserve(n);

  // BFS from the root, computing failure links (Aho & Corasick 1975, Alg. 3):
  // for a child c of s via byte b, f(c) is found by walking f(s) until a
  // state with a b-child exists (the root accepts everything).
  std::queue<State> queue;
  bfs_order_.push_back(0);
  for (const auto& [byte, child] : trie_.children(0)) {
    (void)byte;
    fail_[child] = 0;
    queue.push(child);
  }
  while (!queue.empty()) {
    const State s = queue.front();
    queue.pop();
    bfs_order_.push_back(s);
    for (const auto& [byte, child] : trie_.children(s)) {
      State f = fail_[s];
      while (f != 0 && trie_.child(f, byte) == Trie::kNoChild) f = fail_[f];
      const State via = trie_.child(f, byte);
      fail_[child] = (via != Trie::kNoChild && via != child) ? via : 0;
      queue.push(child);
    }
  }
  ACGPU_CHECK(bfs_order_.size() == n, "BFS did not reach every trie node");

  // Output function closed over failure links: out(s) = terminals(s) ∪
  // out(f(s)). Computing in BFS order guarantees out(f(s)) is final, because
  // failure links always point to strictly shallower states.
  std::vector<std::vector<std::int32_t>> out(n);
  for (State s : bfs_order_) {
    const State f = fail_[s];
    const auto& own = trie_.terminal_patterns(s);
    auto& dst = out[s];
    if (s != 0 && !out[f].empty()) dst = out[f];
    dst.insert(dst.end(), own.begin(), own.end());
    std::sort(dst.begin(), dst.end());
    dst.erase(std::unique(dst.begin(), dst.end()), dst.end());
  }

  out_begin_.assign(n + 1, 0);
  for (std::size_t s = 0; s < n; ++s)
    out_begin_[s + 1] = out_begin_[s] + static_cast<std::uint32_t>(out[s].size());
  out_ids_.reserve(out_begin_[n]);
  for (std::size_t s = 0; s < n; ++s)
    out_ids_.insert(out_ids_.end(), out[s].begin(), out[s].end());
}

State Automaton::goto_fn(State state, std::uint8_t byte) const {
  const State child = trie_.child(state, byte);
  if (child != Trie::kNoChild) return child;
  return state == 0 ? 0 : kFail;
}

std::vector<std::int32_t> Automaton::output(State state) const {
  return std::vector<std::int32_t>(out_ids_.begin() + out_begin_[state],
                                   out_ids_.begin() + out_begin_[state + 1]);
}

}  // namespace acgpu::ac
