#include "ac/dfa.h"

#include <istream>
#include <ostream>

#include "util/error.h"

namespace acgpu::ac {

ByteMap identity_byte_map() {
  ByteMap map{};
  for (int b = 0; b < 256; ++b) map[b] = static_cast<std::uint8_t>(b);
  return map;
}

ByteMap ascii_fold_map() {
  ByteMap map = identity_byte_map();
  for (int b = 'A'; b <= 'Z'; ++b) map[b] = static_cast<std::uint8_t>(b - 'A' + 'a');
  return map;
}

Dfa::Dfa(const Automaton& automaton, const PatternSet& patterns,
         std::uint32_t pad_pitch_to, const std::optional<ByteMap>& byte_map)
    : stt_(static_cast<std::uint32_t>(automaton.state_count()), pad_pitch_to) {
  const Trie& trie = automaton.trie();

  // δ(s, b): child when the goto edge exists, otherwise δ(f(s), b). Filling
  // in BFS order makes the parent-of-failure row available before it is
  // consulted (failure links point strictly shallower). With a byte map,
  // column b carries the transition for map[b].
  const ByteMap map = byte_map.value_or(identity_byte_map());
  for (State s : automaton.bfs_order()) {
    const State f = automaton.fail(s);
    for (std::uint32_t b = 0; b < 256; ++b) {
      const std::uint32_t col = SttMatrix::column_for_byte(static_cast<std::uint8_t>(b));
      const std::uint8_t eff = map[b];
      const State child = trie.child(s, eff);
      if (child != Trie::kNoChild) {
        stt_.at(static_cast<std::uint32_t>(s), col) = child;
      } else if (s != 0) {
        stt_.at(static_cast<std::uint32_t>(s), col) =
            stt_.at(static_cast<std::uint32_t>(f), col);
      }  // root default: stays 0
    }
  }

  // Output sets: assign compact output ids to match states; the STT match
  // column stores the id (0 = non-match), the CSR stores the pattern lists.
  out_begin_ = {0, 0};  // id 0: empty set
  for (State s : automaton.bfs_order()) {
    if (!automaton.has_output(s)) continue;
    const auto ids = automaton.output(s);
    stt_.at(static_cast<std::uint32_t>(s), 0) =
        static_cast<std::int32_t>(out_begin_.size() - 1);
    out_ids_.insert(out_ids_.end(), ids.begin(), ids.end());
    out_begin_.push_back(static_cast<std::uint32_t>(out_ids_.size()));
  }

  pattern_lengths_.reserve(patterns.size());
  for (std::size_t id = 0; id < patterns.size(); ++id)
    pattern_lengths_.push_back(patterns.length(id));
  max_pattern_length_ = patterns.max_length();
}

namespace {

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  ACGPU_CHECK(in.good(), "Dfa::load: truncated stream");
  return v;
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& v) {
  write_u32(out, static_cast<std::uint32_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& in) {
  const std::uint32_t n = read_u32(in);
  // Validate the declared size against the actual stream length so a
  // corrupt count cannot trigger an absurd allocation.
  const auto pos = in.tellg();
  if (pos >= 0) {
    in.seekg(0, std::ios::end);
    const std::uint64_t remaining = static_cast<std::uint64_t>(in.tellg() - pos);
    in.seekg(pos);
    ACGPU_CHECK(static_cast<std::uint64_t>(n) * sizeof(T) <= remaining,
                "Dfa::load: vector of " << n << " elements exceeds the stream");
  }
  std::vector<T> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(T)));
  ACGPU_CHECK(in.good(), "Dfa::load: truncated vector body");
  return v;
}

constexpr char kMagic[8] = {'A', 'C', 'D', 'F', 'A', '0', '0', '1'};

}  // namespace

void Dfa::save(std::ostream& out) const {
  out.write(kMagic, sizeof kMagic);
  stt_.save(out);
  write_vec(out, out_begin_);
  write_vec(out, out_ids_);
  write_vec(out, pattern_lengths_);
  write_u32(out, max_pattern_length_);
  ACGPU_CHECK(out.good(), "Dfa::save: stream write failed");
}

Dfa Dfa::load(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof magic);
  ACGPU_CHECK(in.good() && std::equal(magic, magic + 8, kMagic), "Dfa::load: bad magic");
  Dfa dfa;
  dfa.stt_ = SttMatrix::load(in);
  dfa.out_begin_ = read_vec<std::uint32_t>(in);
  dfa.out_ids_ = read_vec<std::int32_t>(in);
  dfa.pattern_lengths_ = read_vec<std::uint32_t>(in);
  dfa.max_pattern_length_ = read_u32(in);
  ACGPU_CHECK(dfa.out_begin_.size() >= 2, "Dfa::load: missing output CSR");
  return dfa;
}

Dfa build_dfa(const PatternSet& patterns, std::uint32_t pad_pitch_to) {
  ACGPU_CHECK(!patterns.empty(), "build_dfa: empty pattern set");
  Automaton automaton(patterns);
  return Dfa(automaton, patterns, pad_pitch_to);
}

Dfa build_dfa_folded(const PatternSet& patterns, const ByteMap& map,
                     std::uint32_t pad_pitch_to) {
  ACGPU_CHECK(!patterns.empty(), "build_dfa_folded: empty pattern set");
  // Map the patterns; keep ids aligned with the ORIGINAL set (no dedup —
  // two patterns may fold to the same string and both must be reported).
  std::vector<std::string> folded;
  folded.reserve(patterns.size());
  for (const auto& p : patterns) {
    std::string m(p);
    for (auto& c : m) c = static_cast<char>(map[static_cast<std::uint8_t>(c)]);
    folded.push_back(std::move(m));
  }
  const PatternSet mapped(std::move(folded), /*dedup=*/false);
  Automaton automaton(mapped);
  return Dfa(automaton, mapped, pad_pitch_to, map);
}

}  // namespace acgpu::ac
