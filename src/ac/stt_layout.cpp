#include "ac/stt_layout.h"

#include <istream>
#include <ostream>

namespace acgpu::ac {
namespace {

constexpr char kMagic[8] = {'A', 'C', 'S', 'T', 'T', '0', '0', '1'};

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  ACGPU_CHECK(in.good(), "SttMatrix::load: truncated stream");
  return v;
}

/// Bytes left in the stream — guards against headers that declare absurd
/// sizes (a corrupt byte must not trigger a multi-gigabyte allocation).
std::uint64_t remaining_bytes(std::istream& in) {
  const auto pos = in.tellg();
  if (pos < 0) return ~std::uint64_t{0};  // non-seekable: skip the guard
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(pos);
  return static_cast<std::uint64_t>(end - pos);
}

}  // namespace

SttMatrix::SttMatrix(std::uint32_t rows, std::uint32_t pad_pitch_to)
    : rows_(rows), pitch_(kColumns) {
  ACGPU_CHECK(rows > 0, "SttMatrix requires at least one state row");
  if (pad_pitch_to > 0)
    pitch_ = (kColumns + pad_pitch_to - 1) / pad_pitch_to * pad_pitch_to;
  data_.assign(static_cast<std::size_t>(rows_) * pitch_, 0);
}

void SttMatrix::save(std::ostream& out) const {
  out.write(kMagic, sizeof kMagic);
  write_u32(out, rows_);
  write_u32(out, pitch_);
  out.write(reinterpret_cast<const char*>(data_.data()),
            static_cast<std::streamsize>(size_bytes()));
  ACGPU_CHECK(out.good(), "SttMatrix::save: stream write failed");
}

SttMatrix SttMatrix::load(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof magic);
  ACGPU_CHECK(in.good() && std::equal(magic, magic + 8, kMagic),
              "SttMatrix::load: bad magic");
  SttMatrix m;
  m.rows_ = read_u32(in);
  m.pitch_ = read_u32(in);
  ACGPU_CHECK(m.rows_ > 0 && m.pitch_ >= kColumns,
              "SttMatrix::load: corrupt header (rows=" << m.rows_
                  << ", pitch=" << m.pitch_ << ")");
  const std::uint64_t body =
      static_cast<std::uint64_t>(m.rows_) * m.pitch_ * sizeof(std::int32_t);
  ACGPU_CHECK(body <= remaining_bytes(in),
              "SttMatrix::load: header declares " << body
                  << "B of table but the stream is shorter");
  m.data_.resize(static_cast<std::size_t>(m.rows_) * m.pitch_);
  in.read(reinterpret_cast<char*>(m.data_.data()),
          static_cast<std::streamsize>(m.size_bytes()));
  ACGPU_CHECK(in.good(), "SttMatrix::load: truncated table body");
  return m;
}

}  // namespace acgpu::ac
