#include "ac/parallel_matcher.h"

#include <algorithm>
#include <thread>

#include "ac/chunking.h"
#include "ac/serial_matcher.h"
#include "util/error.h"

namespace acgpu::ac {

namespace {

unsigned resolve_threads(unsigned threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Runs `worker(w)` for w in [0, workers) on that many threads. Exceptions
/// from workers are rethrown on the calling thread (first one wins).
template <typename Fn>
void run_workers(unsigned workers, Fn&& worker) {
  if (workers == 1) {
    worker(0);
    return;
  }
  std::vector<std::thread> pool;
  std::vector<std::exception_ptr> errors(workers);
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      try {
        worker(w);
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (auto& t : pool) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace

std::vector<Match> find_all_parallel(const Dfa& dfa, std::string_view text,
                                     unsigned threads) {
  const unsigned workers = resolve_threads(threads);
  if (text.empty()) return {};

  // One contiguous span of chunks per worker; each chunk is scanned with a
  // fresh DFA state and the ownership rule applied, exactly like the GPU
  // decomposition.
  const std::uint32_t overlap = required_overlap(dfa.max_pattern_length());
  const std::uint64_t span =
      std::max<std::uint64_t>(1, (text.size() + workers - 1) / workers);
  std::vector<std::vector<Match>> partial(workers);

  run_workers(workers, [&](unsigned w) {
    const std::uint64_t begin = w * span;
    if (begin >= text.size()) return;
    const std::uint64_t end = std::min<std::uint64_t>(text.size(), begin + span);
    const Chunk chunk{begin, end,
                      std::min<std::uint64_t>(text.size(), end + overlap)};
    const std::string_view window =
        text.substr(static_cast<std::size_t>(chunk.begin),
                    static_cast<std::size_t>(chunk.scan_end - chunk.begin));
    auto& out = partial[w];
    match_serial(dfa, window, [&](std::uint64_t match_end, std::int32_t id) {
      if (chunk_owns_match(chunk, match_end, dfa.pattern_length(id)))
        out.push_back(Match{match_end, id});
    }, /*base=*/chunk.begin);
  });

  std::vector<Match> all;
  std::size_t total = 0;
  for (const auto& p : partial) total += p.size();
  all.reserve(total);
  for (auto& p : partial) all.insert(all.end(), p.begin(), p.end());
  std::sort(all.begin(), all.end());
  return all;
}

std::uint64_t count_matches_parallel(const Dfa& dfa, std::string_view text,
                                     unsigned threads) {
  const unsigned workers = resolve_threads(threads);
  if (text.empty()) return 0;
  const std::uint32_t overlap = required_overlap(dfa.max_pattern_length());
  const std::uint64_t span =
      std::max<std::uint64_t>(1, (text.size() + workers - 1) / workers);
  std::vector<std::uint64_t> counts(workers, 0);

  run_workers(workers, [&](unsigned w) {
    const std::uint64_t begin = w * span;
    if (begin >= text.size()) return;
    const std::uint64_t end = std::min<std::uint64_t>(text.size(), begin + span);
    const Chunk chunk{begin, end,
                      std::min<std::uint64_t>(text.size(), end + overlap)};
    const std::string_view window =
        text.substr(static_cast<std::size_t>(chunk.begin),
                    static_cast<std::size_t>(chunk.scan_end - chunk.begin));
    std::uint64_t n = 0;
    match_serial(dfa, window, [&](std::uint64_t match_end, std::int32_t id) {
      if (chunk_owns_match(chunk, match_end, dfa.pattern_length(id))) ++n;
    }, chunk.begin);
    counts[w] = n;
  });

  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  return total;
}

}  // namespace acgpu::ac
