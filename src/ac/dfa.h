// DFA form of the Aho-Corasick machine (the paper's Section II, Fig. 2/3):
// failure transitions are compiled away so the matcher makes exactly one
// STT lookup per input byte.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <vector>

#include "ac/automaton.h"
#include "ac/pattern_set.h"
#include "ac/stt_layout.h"

namespace acgpu::ac {

/// Input-byte normalisation baked into the STT columns: column b gets the
/// transition for map[b]. With identity_byte_map() the DFA matches exactly;
/// with ascii_fold_map() it matches case-insensitively (Snort's `nocase`)
/// at zero runtime cost — the table does the folding.
using ByteMap = std::array<std::uint8_t, 256>;
ByteMap identity_byte_map();
ByteMap ascii_fold_map();

/// Immutable AC DFA: the STT plus the output function (pattern-id lists per
/// match state, stored as CSR and referenced from the STT's match column)
/// and the pattern lengths (needed to convert match *ends* into match
/// *starts* for the chunk-overlap dedup rule).
class Dfa {
 public:
  /// Compiles the NFA-form automaton. `pad_pitch_to` is forwarded to the
  /// SttMatrix (texture-friendly row alignment). When `byte_map` is given,
  /// the automaton must have been built over mapped patterns (see
  /// build_dfa_folded); column b is then filled with the transition for
  /// byte_map[b].
  Dfa(const Automaton& automaton, const PatternSet& patterns,
      std::uint32_t pad_pitch_to = 0,
      const std::optional<ByteMap>& byte_map = std::nullopt);

  std::uint32_t state_count() const { return stt_.rows(); }
  std::size_t pattern_count() const { return pattern_lengths_.size(); }

  const SttMatrix& stt() const { return stt_; }

  /// One-lookup transition.
  std::int32_t next(std::int32_t state, std::uint8_t byte) const {
    return stt_.next(state, byte);
  }
  bool is_match(std::int32_t state) const { return stt_.output_id(state) != 0; }

  /// Pattern ids emitted at `state` (empty span for non-match states).
  /// Pointers remain valid for the Dfa's lifetime.
  const std::int32_t* output_begin(std::int32_t state) const {
    return out_ids_.data() + out_begin_[static_cast<std::size_t>(stt_.output_id(state))];
  }
  const std::int32_t* output_end(std::int32_t state) const {
    return out_ids_.data() + out_begin_[static_cast<std::size_t>(stt_.output_id(state)) + 1];
  }

  /// Pattern ids for a raw output id (the value stored in the STT match
  /// column; id 0 is the empty set). Used when expanding device match
  /// records on the host.
  const std::int32_t* id_output_begin(std::int32_t oid) const {
    return out_ids_.data() + out_begin_[static_cast<std::size_t>(oid)];
  }
  const std::int32_t* id_output_end(std::int32_t oid) const {
    return out_ids_.data() + out_begin_[static_cast<std::size_t>(oid) + 1];
  }
  std::size_t output_id_count() const { return out_begin_.size() - 1; }

  std::uint32_t pattern_length(std::int32_t id) const {
    return pattern_lengths_[static_cast<std::size_t>(id)];
  }
  const std::vector<std::uint32_t>& pattern_lengths() const {
    return pattern_lengths_;
  }
  /// The paper's X (chunk overlap).
  std::uint32_t max_pattern_length() const { return max_pattern_length_; }

  /// Device-side footprint of the table the paper ships to the GPU.
  std::size_t stt_bytes() const { return stt_.size_bytes(); }

  /// Raw output CSR (indexed by output id; id 0 is the empty set) and the
  /// pattern-id list — exposed so the GPU side can upload them verbatim.
  const std::vector<std::uint32_t>& output_offsets() const { return out_begin_; }
  const std::vector<std::int32_t>& output_ids() const { return out_ids_; }

  /// Binary round-trip of the complete DFA (STT + outputs + lengths).
  void save(std::ostream& out) const;
  static Dfa load(std::istream& in);

 private:
  Dfa() = default;

  SttMatrix stt_;
  // Output CSR indexed by output id (id 0 is the empty set).
  std::vector<std::uint32_t> out_begin_;
  std::vector<std::int32_t> out_ids_;
  std::vector<std::uint32_t> pattern_lengths_;
  std::uint32_t max_pattern_length_ = 0;
};

/// Convenience: patterns -> DFA in one call (builds the intermediate
/// automaton internally).
Dfa build_dfa(const PatternSet& patterns, std::uint32_t pad_pitch_to = 0);

/// Byte-normalising variant: patterns are mapped through `map` before the
/// automaton is built, and every STT column b carries the transition for
/// map[b]. With ascii_fold_map() this yields case-insensitive matching with
/// the standard matchers/kernels unchanged. Reported pattern ids refer to
/// the original (unmapped) pattern set.
Dfa build_dfa_folded(const PatternSet& patterns, const ByteMap& map,
                     std::uint32_t pad_pitch_to = 0);

}  // namespace acgpu::ac
