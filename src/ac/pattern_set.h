// A validated, immutable set of byte-string patterns (the paper's
// "dictionary" / finite set of keywords).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace acgpu::ac {

/// Owns the dictionary the automaton is built from. Patterns are arbitrary
/// byte strings (alphabet = 256, as in the paper's 257-column STT). Pattern
/// ids are their indices in insertion order.
class PatternSet {
 public:
  PatternSet() = default;

  /// Builds from strings; rejects empty patterns. When `dedup` is true,
  /// duplicate strings are dropped (keeping the first occurrence) — the AC
  /// automaton cannot distinguish duplicates anyway.
  explicit PatternSet(std::vector<std::string> patterns, bool dedup = true);

  std::size_t size() const { return patterns_.size(); }
  bool empty() const { return patterns_.empty(); }

  std::string_view operator[](std::size_t id) const { return patterns_[id]; }
  std::uint32_t length(std::size_t id) const {
    return static_cast<std::uint32_t>(patterns_[id].size());
  }

  /// The paper's X: overlap appended to each thread's chunk.
  std::uint32_t max_length() const { return max_length_; }
  std::uint32_t min_length() const { return min_length_; }
  std::uint64_t total_bytes() const { return total_bytes_; }

  auto begin() const { return patterns_.begin(); }
  auto end() const { return patterns_.end(); }

 private:
  std::vector<std::string> patterns_;
  std::uint32_t max_length_ = 0;
  std::uint32_t min_length_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace acgpu::ac
