// Multi-threaded CPU matcher: the chunk + X-overlap decomposition of
// ac/chunking.h executed with std::thread — the "best multithreaded
// implementation on a multicore processor" baseline that the paper's related
// work (Zha & Sahni [18]) compares against.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "ac/dfa.h"
#include "ac/match.h"

namespace acgpu::ac {

/// Scans `text` with `threads` worker threads (0 = hardware concurrency).
/// Produces exactly the single-pass match multiset, sorted by (end, pattern).
std::vector<Match> find_all_parallel(const Dfa& dfa, std::string_view text,
                                     unsigned threads = 0);

/// Count-only variant for benchmarking.
std::uint64_t count_matches_parallel(const Dfa& dfa, std::string_view text,
                                     unsigned threads = 0);

}  // namespace acgpu::ac
