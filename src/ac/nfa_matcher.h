// NFA-form matcher: walks goto/failure links directly (the paper's Fig. 1
// machine). Slower than the DFA (amortised O(1) but with failure-chain
// walks); kept as an independent oracle for the test suite and to quantify
// the DFA conversion's benefit in the micro benches.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "ac/automaton.h"
#include "ac/match.h"

namespace acgpu::ac {

template <typename Sink>
void match_nfa(const Automaton& automaton, std::string_view text, Sink&& sink,
               std::uint64_t base = 0) {
  State state = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const auto byte = static_cast<std::uint8_t>(text[i]);
    State next = automaton.goto_fn(state, byte);
    while (next == Automaton::kFail) {
      state = automaton.fail(state);
      next = automaton.goto_fn(state, byte);
    }
    state = next;
    if (automaton.has_output(state))
      for (std::int32_t id : automaton.output(state)) sink(base + i, id);
  }
}

std::vector<Match> find_all_nfa(const Automaton& automaton, std::string_view text);

}  // namespace acgpu::ac
