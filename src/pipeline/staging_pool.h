// Sized staging-buffer pool for the three-stage pipeline.
//
// The pipeline's old staging layer was a fixed ring of device slots, each
// held from the start of its batch's H2D until the batch's D2H completed —
// so the upload of batch b+slots waited on a readback it did not depend on,
// and stream counts beyond 2 changed nothing. StagingPool replaces the ring
// with two independently recycled pools:
//
//   upload pool:    device slice buffers, leased from H2D start to KERNEL
//                   end (the kernel is the last reader of the staged input);
//   readback pool:  output staging buffers, leased from kernel end to D2H
//                   end.
//
// A lease records the simulated time its buffer frees (`ready`); acquire()
// hands out the buffer that frees earliest, so heterogeneous batches never
// rotate onto the slowest slot. The pool is also safe to drive from real
// host threads (mutex + condvar): `acquire_blocking` parks until a buffer
// is released, which is what the serve-side stress tests exercise under
// ACGPU_TSAN.
//
// Reuse-after-release hygiene: with `poison_on_release` set, every released
// buffer is filled with kPoisonByte before it re-enters the free list, so a
// stage that reads a buffer it no longer leases sees poison instead of the
// previous batch's bytes (tests/pipeline_pool_test.cpp proves the fill).
// The poison is also *verified* on the next lease: a buffer that comes back
// with any non-poison byte was scribbled on while un-leased — a
// use-after-release by some stage — and the pool throws instead of handing
// the corrupted buffer out.
//
// With a HostObserver attached (gpusim/host_observer.h), every acquire and
// release is recorded for the hostcheck happens-before auditor, which
// checks the full lease protocol (double-lease, release-while-in-flight,
// leaks at drain) against the stream timeline.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "gpusim/device_memory.h"
#include "gpusim/host_observer.h"

namespace acgpu::pipeline {

class StagingPool {
 public:
  /// The byte released buffers are filled with under poison_on_release.
  static constexpr std::uint8_t kPoisonByte = 0xDB;

  struct Options {
    std::uint32_t buffers = 2;        ///< pool depth (>= 1)
    std::uint64_t buffer_bytes = 0;   ///< payload bytes per buffer
    std::uint64_t pad_bytes = 8;      ///< tail pad (word-granular kernel loads)
    bool poison_on_release = false;   ///< scribble kPoisonByte on release
    /// With poison_on_release: check the poison is intact on the next
    /// acquire and throw acgpu::Error when any byte changed while the
    /// buffer was un-leased (a use-after-release scribble).
    bool verify_poison_on_lease = true;
    /// Lease/release recording sink for the hostcheck auditor; null = off.
    gpusim::HostObserver* observer = nullptr;
    /// Name the observer reports this pool under ("upload", "readback").
    const char* name = "staging";
    /// The StreamSim this pool's buffers serve (StreamSim::sim_id()) —
    /// scopes the auditor's lease attribution to one device's offset space.
    std::uint32_t sim = 0;
  };

  /// One leased buffer. `ready` is the simulated timestamp at which the
  /// previous lease of this buffer drained — the producer must not issue an
  /// op that touches the buffer before then (wait_until on its stream).
  /// [[nodiscard]]: dropping a Lease leaks the buffer (there is no RAII
  /// release — the drain time is only known after the consumer resolves).
  struct [[nodiscard]] Lease {
    gpusim::DevAddr addr = 0;
    std::uint32_t index = 0;
    double ready = 0;
  };

  /// Allocates buffers*(buffer_bytes+pad_bytes) from `mem` up front. Throws
  /// acgpu::Error when the arena cannot hold the pool (callers translate to
  /// Status::capacity_exceeded) or buffers == 0.
  StagingPool(gpusim::DeviceMemory& mem, const Options& options);

  StagingPool(const StagingPool&) = delete;
  StagingPool& operator=(const StagingPool&) = delete;

  /// Hands out the free buffer whose previous lease drains earliest.
  /// Returns nullopt when every buffer is leased (pool exhausted) — the
  /// simulated pipeline treats that as a bug, host threads should use
  /// acquire_blocking.
  [[nodiscard]] std::optional<Lease> try_acquire();

  /// Blocks the calling host thread until a buffer frees. For real
  /// multi-threaded producers (stress tests, future host-parallel drivers);
  /// the single-threaded simulated pipeline never parks.
  [[nodiscard]] Lease acquire_blocking();

  /// Returns buffer `index` to the pool; `drained_at` is the simulated time
  /// its last consumer completes (the next lease's `ready`). Releasing an
  /// un-leased index throws.
  void release(std::uint32_t index, double drained_at = 0.0);

  std::uint32_t size() const { return static_cast<std::uint32_t>(slots_.size()); }
  std::uint64_t buffer_bytes() const { return options_.buffer_bytes; }
  std::uint32_t available() const;
  /// High-water mark of simultaneously leased buffers.
  std::uint32_t max_in_use() const;
  /// Total acquisitions served (try_acquire successes + acquire_blocking).
  std::uint64_t acquires() const;
  /// acquire_blocking calls that had to park for a release.
  std::uint64_t exhaustion_waits() const;

 private:
  struct Slot {
    gpusim::DevAddr addr = 0;
    double ready = 0;   ///< simulated drain time of the last lease
    bool leased = false;
    bool poisoned = false;  ///< released with poison; verified on re-lease
  };

  Lease lease_locked(std::uint32_t index);

  gpusim::DeviceMemory& mem_;
  Options options_;
  std::uint32_t pool_id_ = 0;  ///< observer registration (when attached)

  mutable std::mutex mu_;
  std::condition_variable available_cv_;
  std::vector<Slot> slots_;
  std::uint32_t in_use_ = 0;
  std::uint32_t max_in_use_ = 0;
  std::uint64_t acquires_ = 0;
  std::uint64_t exhaustion_waits_ = 0;
};

}  // namespace acgpu::pipeline
