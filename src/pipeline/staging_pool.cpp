#include "pipeline/staging_pool.h"

#include <algorithm>

#include "util/error.h"

namespace acgpu::pipeline {

StagingPool::StagingPool(gpusim::DeviceMemory& mem, const Options& options)
    : mem_(mem), options_(options) {
  ACGPU_CHECK(options.buffers >= 1, "StagingPool needs at least one buffer");
  slots_.resize(options.buffers);
  for (Slot& slot : slots_)
    slot.addr = mem_.alloc(options_.buffer_bytes + options_.pad_bytes);
  if (options_.observer != nullptr)
    pool_id_ = options_.observer->register_pool(
        options_.name, options_.buffers, options_.buffer_bytes, options_.sim);
}

StagingPool::Lease StagingPool::lease_locked(std::uint32_t index) {
  Slot& slot = slots_[index];
  if (slot.poisoned) {
    // The buffer was poison-filled on release; any byte that changed since
    // means a stage wrote to memory it no longer leased.
    const std::uint64_t len = options_.buffer_bytes + options_.pad_bytes;
    const std::uint8_t* bytes = mem_.raw(slot.addr, len);
    for (std::uint64_t i = 0; i < len; ++i)
      ACGPU_CHECK(bytes[i] == kPoisonByte,
                  "StagingPool: buffer " << index << " byte " << i
                      << " was overwritten (0x" << std::hex
                      << static_cast<unsigned>(bytes[i]) << std::dec
                      << " != poison) while un-leased — use-after-release");
    slot.poisoned = false;
  }
  slot.leased = true;
  ++in_use_;
  max_in_use_ = std::max(max_in_use_, in_use_);
  ++acquires_;
  if (options_.observer != nullptr)
    options_.observer->on_lease(gpusim::HostLeaseRecord{
        pool_id_, index, slot.addr, options_.buffer_bytes, slot.ready});
  return Lease{slot.addr, index, slot.ready};
}

std::optional<StagingPool::Lease> StagingPool::try_acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint32_t best = size();
  for (std::uint32_t i = 0; i < size(); ++i) {
    if (slots_[i].leased) continue;
    if (best == size() || slots_[i].ready < slots_[best].ready) best = i;
  }
  if (best == size()) return std::nullopt;
  return lease_locked(best);
}

StagingPool::Lease StagingPool::acquire_blocking() {
  std::unique_lock<std::mutex> lock(mu_);
  bool waited = false;
  for (;;) {
    std::uint32_t best = size();
    for (std::uint32_t i = 0; i < size(); ++i) {
      if (slots_[i].leased) continue;
      if (best == size() || slots_[i].ready < slots_[best].ready) best = i;
    }
    if (best != size()) {
      if (waited) ++exhaustion_waits_;
      return lease_locked(best);
    }
    waited = true;
    available_cv_.wait(lock);
  }
}

void StagingPool::release(std::uint32_t index, double drained_at) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ACGPU_CHECK(index < size(), "StagingPool::release: index " << index
                                    << " out of range (pool of " << size() << ")");
    Slot& slot = slots_[index];
    ACGPU_CHECK(slot.leased,
                "StagingPool::release: buffer " << index << " is not leased");
    if (options_.poison_on_release) {
      mem_.fill(slot.addr, kPoisonByte,
                options_.buffer_bytes + options_.pad_bytes);
      slot.poisoned = options_.verify_poison_on_lease;
    }
    slot.leased = false;
    slot.ready = std::max(slot.ready, drained_at);
    --in_use_;
    if (options_.observer != nullptr)
      options_.observer->on_release(
          gpusim::HostReleaseRecord{pool_id_, index, drained_at});
  }
  available_cv_.notify_one();
}

std::uint32_t StagingPool::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size() - in_use_;
}

std::uint32_t StagingPool::max_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_in_use_;
}

std::uint64_t StagingPool::acquires() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acquires_;
}

std::uint64_t StagingPool::exhaustion_waits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return exhaustion_waits_;
}

}  // namespace acgpu::pipeline
