#include "pipeline/telemetry_export.h"

#include <algorithm>
#include <ostream>
#include <string>
#include <vector>

namespace acgpu::pipeline {
namespace {

std::uint64_t to_ns(double seconds) {
  return seconds <= 0 ? 0 : static_cast<std::uint64_t>(seconds * 1e9 + 0.5);
}

}  // namespace

void add_scan_to_trace(telemetry::ChromeTrace& trace, const PipelineResult& result,
                       const TraceExportOptions& options) {
  const std::uint64_t pid = trace.process(options.process_name);
  const std::uint64_t offset_ns = to_ns(options.time_offset_seconds);

  // Register stream tracks first (ascending ids), then the engine rows, so
  // the Perfetto layout reads top-down: per-stream program order, then the
  // hardware engines the streams contend for. Readback gets its own row:
  // with the pipeline's split-readback mode an upload and a readback run
  // simultaneously (full-duplex PCIe), so folding D2H onto the copy row
  // would draw overlapping slices on one track.
  std::uint32_t max_stream = 0;
  for (const gpusim::StreamOp& op : result.timeline)
    max_stream = std::max(max_stream, op.stream);
  std::vector<std::uint64_t> stream_tid(max_stream + 1);
  for (std::uint32_t s = 0; s <= max_stream; ++s)
    stream_tid[s] = trace.track(pid, "stream " + std::to_string(s));
  const std::uint64_t copy_tid = trace.track(pid, "copy engine");
  const std::uint64_t readback_tid = trace.track(pid, "readback engine");
  const std::uint64_t compute_tid = trace.track(pid, "compute engine");

  for (const gpusim::StreamOp& op : result.timeline) {
    const std::uint64_t start = offset_ns + to_ns(op.start);
    const std::uint64_t dur = to_ns(op.end - op.start);
    std::vector<std::pair<std::string, std::string>> args;
    args.emplace_back("kind", gpusim::to_string(op.kind));
    args.emplace_back("op", std::to_string(op.id));
    if (op.bytes > 0) args.emplace_back("bytes", std::to_string(op.bytes));
    const std::string& name = op.label.empty() ? "(unnamed op)" : op.label;
    trace.add_slice(pid, stream_tid[op.stream], name, start, dur, args);
    const std::uint64_t engine_tid = op.kind == gpusim::StreamOpKind::kKernel
                                         ? compute_tid
                                         : op.kind == gpusim::StreamOpKind::kD2H
                                               ? readback_tid
                                               : copy_tid;
    trace.add_slice(pid, engine_tid, name, start, dur, std::move(args));
  }

  // Counter track: batches in flight (H2D start -> D2H end). BatchTrace is
  // sorted by issue order, but completions interleave — merge the +1/-1
  // edges by time.
  struct Edge {
    std::uint64_t t_ns = 0;
    int delta = 0;
  };
  std::vector<Edge> queue_edges;
  for (const BatchTrace& b : result.batches) {
    queue_edges.push_back({offset_ns + to_ns(b.submit_seconds), +1});
    queue_edges.push_back({offset_ns + to_ns(b.complete_seconds), -1});
  }
  const auto emit_counter = [&](std::vector<Edge> edges, const char* series) {
    std::stable_sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
      if (a.t_ns != b.t_ns) return a.t_ns < b.t_ns;
      return a.delta < b.delta;  // close before open at the same instant
    });
    int level = 0;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      level += edges[i].delta;
      // Collapse simultaneous edges into the final level at that time.
      if (i + 1 < edges.size() && edges[i + 1].t_ns == edges[i].t_ns) continue;
      trace.add_counter(pid, series, edges[i].t_ns, level);
    }
  };
  emit_counter(queue_edges, "pipeline.queue_depth");

  // Counter track: engines busy at once (0-2) — the overlap story at a
  // glance; the regions at 2 are exactly PipelineStats::overlap_seconds.
  std::vector<Edge> busy_edges;
  for (const gpusim::StreamOp& op : result.timeline) {
    busy_edges.push_back({offset_ns + to_ns(op.start), +1});
    busy_edges.push_back({offset_ns + to_ns(op.end), -1});
  }
  emit_counter(busy_edges, "device.engines_busy");
}

void write_chrome_trace(const PipelineResult& result,
                        const telemetry::Tracer* tracer, std::ostream& out) {
  telemetry::ChromeTrace trace;
  if (tracer != nullptr) trace.add_tracer(*tracer);
  add_scan_to_trace(trace, result);
  trace.write(out);
}

}  // namespace acgpu::pipeline
