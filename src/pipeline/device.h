// acgpu::Device — explicit ownership of one simulated GPU.
//
// Before the cluster tier, Engine::create built a private DeviceMemory and
// the process was implicitly single-device. Device splits that out: it owns
// the simulated device's identity (a process-unique id from
// gpusim/device_registry.h), its memory arena, the HostObserver seam, and a
// scan mutex that serializes the engines sharing it — one process, many
// devices, many engines:
//
//   Device (identity, DeviceMemory arena, observer seam, scan mutex)
//     ├── Engine A  (automaton + pipeline bound to Device&)
//     └── Engine B  (another automaton on the same device)
//
//   auto device = acgpu::Device::create();
//   auto engine = acgpu::Engine::create(device.value(), patterns);
//
// Engines bound to the same Device serialize their scans on the device's
// scan mutex ("device.<id>.mu" in hostcheck traces): each MatchPipeline run
// marks/releases a per-run region of the shared arena, so two runs may not
// interleave on one device. Engines on DIFFERENT devices are fully
// independent and scan concurrently — that is the property the cluster tier
// scales on.
//
// The legacy single-arg Engine::create(patterns, options) remains as a
// deprecated shim that creates a private Device per engine (see
// docs/PIPELINE.md for the migration note).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "gpusim/config.h"
#include "gpusim/device_memory.h"
#include "gpusim/host_observer.h"
#include "util/error.h"

namespace acgpu {

struct DeviceOptions {
  /// Simulated chip model and its memory budget.
  gpusim::GpuConfig gpu = gpusim::GpuConfig::gtx285();
  std::size_t memory_bytes = 256u << 20;

  /// Hostcheck audit hook (gpusim/host_observer.h): the device's scan mutex
  /// registers here, and engines bound to the device inherit it for their
  /// stream/lease records unless they were wired to an observer explicitly.
  /// Null = off, zero cost.
  gpusim::HostObserver* host_observer = nullptr;

  /// Telemetry/trace label; "" derives "device.<id>" from the global id.
  std::string name;
};

class Device {
 public:
  /// Stands a simulated device up: allocates a process-unique id, the
  /// memory arena, and registers with the device registry. Fails (no throw)
  /// on a zero memory budget or arena construction failure.
  static Result<Device> create(const DeviceOptions& options = {});

  Device(Device&&) noexcept;
  Device& operator=(Device&&) noexcept;
  ~Device();  ///< unregisters from the device registry

  /// Process-unique id (gpusim::allocate_device_id) — never reused, so
  /// traces and metric series from different devices never collide.
  std::uint32_t id() const;
  /// "device.<id>" unless DeviceOptions::name overrode it. Used as the
  /// metric prefix root and the Chrome-trace process name.
  const std::string& name() const;

  const gpusim::GpuConfig& gpu() const;
  std::size_t memory_bytes() const;
  gpusim::DeviceMemory& memory();
  gpusim::HostObserver* host_observer() const;

  /// Serializes scans of the engines sharing this device (they share one
  /// arena and mark/release per-run regions). Engine::scan acquires it;
  /// harness code that touches memory() directly should too.
  gpusim::TrackedMutex& scan_mutex();

  /// Fail-stop health flag for the cluster tier: a failed device refuses
  /// new scans (Engine::scan answers kUnavailableDevice via
  /// Status::internal) until restore(). Flipping the flag never interrupts
  /// a scan in progress — the failure model is fail-stop-with-drain
  /// (docs/CLUSTER.md).
  bool healthy() const;
  void mark_failed(std::string reason);
  void restore();
  /// Last mark_failed reason; empty while healthy.
  std::string fail_reason() const;

 private:
  struct Impl;
  explicit Device(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace acgpu
