// acgpu::Engine — the library's supported entry point.
//
// Wraps the full compile -> stage -> match -> collect sequence behind one
// object: build it from a pattern set (EngineOptions picks the kernel
// variant, store scheme, stream count, and batch size), then scan() any
// number of inputs through the batched multi-stream pipeline
// (pipeline/pipeline.h). The raw kernel-launch entry points
// (kernels::run_ac_kernel and friends) remain available for harness/ablation
// code but are internal API — see the migration notes in README.md.
//
// Ownership (since the cluster tier): an Engine is a lightweight automaton +
// pipeline bound to an acgpu::Device (pipeline/device.h), which owns the
// simulated GPU — its memory arena, identity, observer seam, and the scan
// mutex serializing the engines that share it:
//
//   auto device = acgpu::Device::create();
//   auto engine = acgpu::Engine::create(device.value(),
//                                       ac::PatternSet({"he", "she"}));
//   auto scan = engine.value().scan(text);
//   for (ac::Match m : scan.value().matches) { ... }
//
// DEPRECATED: the single-argument Engine::create(patterns, options) remains
// as a shim that creates a private Device per engine (EngineOptions::gpu /
// device_memory_bytes / host_observer configure it). It keeps old call sites
// compiling but cannot share a device across engines — new code should
// create the Device explicitly. Migration notes: docs/PIPELINE.md.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "ac/dfa.h"
#include "ac/pattern_set.h"
#include "ac/pfac.h"
#include "gpusim/config.h"
#include "gpusim/device_memory.h"
#include "kernels/device_dfa.h"
#include "kernels/pfac_kernel.h"
#include "pipeline/device.h"
#include "pipeline/pipeline.h"
#include "util/error.h"

namespace acgpu {

/// Observability sinks for an Engine (telemetry/metrics_registry.h,
/// telemetry/trace.h). Both default to null = telemetry off, which costs
/// nothing on the scan path beyond a branch per batch. When set, every scan
/// publishes gpusim.*/pipeline.* series into the registry and records
/// engine.scan -> pipeline.run -> pipeline.batch -> kernel.simulate spans;
/// pipeline/telemetry_export.h turns the result + tracer into a Chrome
/// trace, and examples/acgpu_prof.cpp is the ready-made frontend.
struct TelemetryOptions {
  telemetry::MetricsRegistry* metrics = nullptr;
  telemetry::Tracer* tracer = nullptr;
  /// Always-on flight recorder (telemetry/flight_recorder.h): batch
  /// issue/retire and staging-lease events land in its per-thread rings for
  /// postmortem dumps. Null = no recording (a branch per event).
  telemetry::FlightRecorder* recorder = nullptr;
  /// Severity/rate-limited log sink (telemetry/logger.h) for one-time
  /// warnings (stream clamps) and failure events. Null = the process-global
  /// logger, which writes to stderr.
  telemetry::Logger* logger = nullptr;
  /// Prepended to every published series name ("device.3." turns
  /// pipeline.runs into device.3.pipeline.runs). The cluster tier sets it
  /// per shard so N devices' series never collide; "" keeps the classic
  /// single-device names.
  std::string metrics_prefix;
  /// Shard/device index stamped on flight-recorder events (0 standalone).
  std::uint32_t shard = 0;

  bool enabled() const {
    return metrics != nullptr || tracer != nullptr || recorder != nullptr;
  }
};

struct EngineOptions {
  /// Device kernel: the paper's shared-memory kernel (default), the
  /// global-memory ablation, or PFAC.
  pipeline::KernelVariant variant = pipeline::KernelVariant::kShared;
  /// Shared-memory store scheme (kShared only); the diagonal scheme is the
  /// paper's bank-conflict-free layout.
  kernels::StoreScheme scheme = kernels::StoreScheme::kDiagonal;
  kernels::SttPlacement stt_placement = kernels::SttPlacement::kTexture;

  /// Streams the pipeline cycles batches across (>= 2 overlaps copy with
  /// compute; 1 is the serial-staging baseline). Clamped to the staging
  /// pool depth — never silently: see pipeline.streams_clamped.
  std::uint32_t streams = 2;
  /// Owned input bytes per pipeline batch (a ceiling — high stream counts
  /// shrink the effective batch so every lane stays fed).
  std::uint64_t batch_bytes = 4u << 20;
  /// Upload staging-pool depth in slice buffers; 0 = 2x streams.
  std::uint32_t pool_depth = 0;
  /// Readback staging-pool depth in output buffers; 0 = pool_depth.
  std::uint32_t readback_depth = 0;
  /// Issue D2H copies on a dedicated readback DMA queue (full-duplex PCIe).
  /// false = the GT200 single-copy-queue model, where uploads and readbacks
  /// serialize on one engine.
  bool split_readback = true;

  /// Functional simulates every block (exact matches — the default);
  /// Timed samples waves for throughput studies and skips match collection.
  gpusim::SimMode mode = gpusim::SimMode::Functional;

  /// DEPRECATED (private-Device shim only): simulated device and its memory
  /// budget for the legacy create(patterns, options) path. Ignored by the
  /// Device& overloads — the explicit Device carries its own config.
  gpusim::GpuConfig gpu = gpusim::GpuConfig::gtx285();
  std::size_t device_memory_bytes = 256u << 20;

  /// Advanced knobs (0 = derive): per-thread chunk for the AC kernels.
  std::uint32_t chunk_bytes = 0;
  std::uint32_t threads_per_block = 256;
  std::uint32_t match_capacity = 64;

  /// Metrics/tracing sinks; zero-cost when left defaulted (off).
  TelemetryOptions telemetry;

  /// Host-pipeline audit hook (gpusim/host_observer.h): when set, every
  /// scan records its stream ops, staging leases, and ordering edges for
  /// the hostcheck happens-before auditor. Null = inherit the Device's
  /// observer (the usual wiring); set explicitly to divert one engine's
  /// records elsewhere.
  gpusim::HostObserver* host_observer = nullptr;
};

/// One scan's output: global-offset matches plus the pipeline's simulated
/// timing story (see pipeline::PipelineResult).
using ScanResult = pipeline::PipelineResult;

class Engine {
 public:
  /// Compiles `patterns` and uploads the automaton to `device`. The device
  /// must outlive the engine; engines sharing it serialize their scans on
  /// its scan mutex. Fails (no throw) on an empty pattern set, inconsistent
  /// options, or a device-memory budget too small for the automaton.
  static Result<Engine> create(Device& device, const ac::PatternSet& patterns,
                               const EngineOptions& options = {});

  /// Builds the engine from a precompiled automaton (e.g. loaded from the
  /// binary .acdfa format) when the original pattern set is gone. PFAC
  /// rebuilds its automaton from the patterns, so variant kPfac fails.
  static Result<Engine> create(Device& device, ac::Dfa dfa,
                               const EngineOptions& options = {});

  /// DEPRECATED single-device shims: create a private Device per engine
  /// from EngineOptions::gpu / device_memory_bytes / host_observer. Every
  /// internal caller has been ported to the explicit-Device overloads (or
  /// to a facade that owns its device — serve::StreamService,
  /// dispatch::DispatchEngine); -Werror builds flag new uses. See
  /// docs/PIPELINE.md for the migration recipe.
  [[deprecated(
      "create a Device explicitly and call Engine::create(device, ...)")]]
  static Result<Engine> create(const ac::PatternSet& patterns,
                               const EngineOptions& options = {});
  [[deprecated(
      "create a Device explicitly and call Engine::create(device, ...)")]]
  static Result<Engine> create(ac::Dfa dfa, const EngineOptions& options = {});

  /// Matches `text` through the batched multi-stream pipeline. Safe to call
  /// repeatedly and from any thread — scans serialize on the device's scan
  /// mutex. Fails kUnavailable when the device is marked failed.
  Result<ScanResult> scan(std::string_view text);

  const EngineOptions& options() const { return options_; }
  const ac::Dfa& dfa() const { return *dfa_; }
  std::size_t pattern_count() const { return dfa_->pattern_count(); }

  /// Process-unique engine id (never reused, monotonically increasing
  /// across all devices) — disambiguates per-engine records in traces and
  /// hostcheck reports in a multi-engine process.
  std::uint32_t id() const { return id_; }

  /// The device the engine is bound to (the private one on the deprecated
  /// path). Stable for the engine's lifetime.
  Device& device() { return *device_; }
  const Device& device() const { return *device_; }

  /// The bound device's memory — kept for harness code that co-locates
  /// extra buffers or inspects allocation.
  gpusim::DeviceMemory& device_memory() { return device_->memory(); }

  Engine(Engine&&) = default;
  Engine& operator=(Engine&&) = default;

 private:
  Engine() = default;

  static Result<Engine> build(Device& device, std::unique_ptr<Device> owned,
                              const ac::PatternSet* patterns, ac::Dfa* dfa,
                              const EngineOptions& options);

  EngineOptions options_;
  std::uint32_t id_ = 0;
  Device* device_ = nullptr;             ///< bound device (never null once built)
  std::unique_ptr<Device> owned_device_; ///< deprecated shim path only
  ac::PatternSet patterns_;
  // unique_ptrs keep the Engine movable: DeviceDfa/DevicePfac hold references
  // into the device arena and dfa_/pfac_, which must stay at stable addresses.
  std::unique_ptr<ac::Dfa> dfa_;
  std::unique_ptr<ac::PfacAutomaton> pfac_;
  std::unique_ptr<kernels::DeviceDfa> ddfa_;
  std::unique_ptr<kernels::DevicePfac> dpfac_;
  std::unique_ptr<pipeline::MatchPipeline> pipeline_;
};

}  // namespace acgpu
