#include "pipeline/pipeline.h"

#include <algorithm>
#include <map>
#include <optional>

#include "pipeline/staging_pool.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/logger.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/trace.h"
#include "util/stats.h"

namespace acgpu::pipeline {

const char* to_string(KernelVariant variant) {
  switch (variant) {
    case KernelVariant::kGlobalOnly: return "global-only";
    case KernelVariant::kShared: return "shared";
    case KernelVariant::kPfac: return "pfac";
  }
  return "?";
}

Status PipelineOptions::validate() const {
  if (streams == 0) return Status::invalid_argument("streams must be >= 1");
  if (batch_bytes == 0) return Status::invalid_argument("batch_bytes must be >= 1");
  if (chunk_bytes != 0 && chunk_bytes % 4 != 0)
    return Status::invalid_argument("chunk_bytes must be a multiple of 4");
  if (threads_per_block == 0 || threads_per_block % 32 != 0)
    return Status::invalid_argument("threads_per_block must be a positive multiple of 32");
  if (variant == KernelVariant::kPfac && scheme != kernels::StoreScheme::kDiagonal)
    return Status::invalid_argument(
        "store scheme does not apply to the PFAC kernel (leave it defaulted)");
  return Status::ok();
}

namespace {

/// Resolved staging-layer geometry: pool depths, the stream clamp, and the
/// rebalanced batch size (PipelineStats mirrors these for the run).
struct StagingPlan {
  std::uint32_t pool_depth = 0;
  std::uint32_t readback_depth = 0;
  std::uint32_t effective_streams = 0;
  std::uint64_t batch_bytes = 0;
  bool streams_clamped = false;
};

/// rebalance_batches floor: batches never shrink below this (nor below the
/// configured batch_bytes when that is already smaller).
constexpr std::uint64_t kAutoBatchFloor = 64u << 10;
/// rebalance_batches target: keep every lane at least this many batches deep.
constexpr std::uint64_t kBatchesPerLane = 4;

StagingPlan resolve_staging(const PipelineOptions& opt, std::uint64_t text_len) {
  StagingPlan plan;
  plan.pool_depth = opt.pool_depth != 0 ? opt.pool_depth : 2 * opt.streams;
  plan.effective_streams = std::min(opt.streams, plan.pool_depth);
  plan.streams_clamped = plan.effective_streams < opt.streams;
  plan.readback_depth =
      opt.readback_depth != 0 ? opt.readback_depth : plan.pool_depth;

  plan.batch_bytes = opt.batch_bytes;
  if (opt.rebalance_batches && text_len > 0) {
    const std::uint64_t lanes = plan.effective_streams;
    const std::uint64_t target = (text_len + kBatchesPerLane * lanes - 1) /
                                 (kBatchesPerLane * lanes);
    if (target < plan.batch_bytes)
      plan.batch_bytes =
          std::max(target, std::min<std::uint64_t>(plan.batch_bytes, kAutoBatchFloor));
  }
  return plan;
}

/// Stream-clamp warning, routed through the telemetry logger: the
/// process-global logger emits once per process (its keys never re-arm); a
/// caller-provided logger applies its own rate limit. Every occurrence still
/// counts into pipeline.streams_clamped and the run's stats.
void warn_streams_clamped(telemetry::Logger* logger, std::uint32_t requested,
                          std::uint32_t pool_depth, std::uint32_t effective) {
  telemetry::Logger& log =
      logger != nullptr ? *logger : telemetry::Logger::global();
  log.warn("pipeline.streams_clamped",
           "requested " + std::to_string(requested) +
               " streams exceed the staging pool depth " +
               std::to_string(pool_depth) + "; running " +
               std::to_string(effective) +
               " stream(s). Raise PipelineOptions::pool_depth (or leave it "
               "0 = 2x streams) to feed every lane. (see "
               "pipeline.streams_clamped)");
}

struct BatchGeometry {
  std::uint32_t overlap = 0;      ///< max_pattern_length - 1 carry bytes
  std::uint32_t chunk_bytes = 0;  ///< AC kernels only
  std::uint32_t threads_per_block = 0;
  std::uint64_t slice_cap = 0;  ///< largest device slice (owned + overlap)
};

/// Derives chunk/block geometry, shrinking the block when the shared-memory
/// staging region would not fit the SM.
Result<BatchGeometry> resolve_geometry(const PipelineOptions& opt,
                                       std::uint64_t batch_bytes,
                                       const gpusim::GpuConfig& config,
                                       std::uint32_t max_pattern_length,
                                       std::uint64_t text_len) {
  BatchGeometry g;
  g.overlap = max_pattern_length > 0 ? max_pattern_length - 1 : 0;
  g.threads_per_block = opt.threads_per_block;
  g.slice_cap = std::min<std::uint64_t>(batch_bytes, text_len) + g.overlap;

  if (opt.variant == KernelVariant::kPfac) return g;

  g.chunk_bytes = opt.chunk_bytes != 0
                      ? opt.chunk_bytes
                      : std::max<std::uint32_t>(32, (g.overlap + 4) & ~3u);
  if (g.overlap >= g.chunk_bytes)
    return Status::invalid_argument(
        "chunk_bytes " + std::to_string(g.chunk_bytes) +
        " too small for max pattern length " + std::to_string(max_pattern_length));
  if (opt.variant == KernelVariant::kShared) {
    // Staging needs (T+1) chunk-sized regions of the SM's shared memory.
    while (g.threads_per_block > 32 &&
           (g.threads_per_block + 1) * g.chunk_bytes > config.shared_mem_bytes)
      g.threads_per_block -= 32;
    if ((g.threads_per_block + 1) * g.chunk_bytes > config.shared_mem_bytes)
      return Status::capacity_exceeded(
          "staged block for chunk_bytes " + std::to_string(g.chunk_bytes) +
          " exceeds shared memory even at 32 threads/block");
  }
  return g;
}

/// Timed-mode timing reuse: batches are homogeneous by construction, so one
/// simulated launch per distinct slice length covers the rest.
struct CachedTiming {
  double kernel_seconds = 0;
  std::uint64_t output_bytes = 0;
};

constexpr double kSimNs = 1e9;  ///< simulated seconds -> nanoseconds

/// Publishes the run into the registry: the summed kernel counters under
/// gpusim.*, run aggregates under pipeline.*, per-batch and per-op
/// distributions under pipeline.batch.* / pipeline.op.*.
void publish_run(const PipelineResult& result, telemetry::MetricsRegistry& reg,
                 const std::string& prefix) {
  gpusim::publish(result.metrics, reg, prefix + "gpusim");

  // Series names carry the caller's prefix so N devices publishing into one
  // registry stay apart ("device.3.pipeline.runs" vs "pipeline.runs").
  const auto name = [&](const char* series) { return prefix + series; };
  const PipelineStats& s = result.stats;
  reg.counter(name("pipeline.runs")).add(1);
  reg.counter(name("pipeline.batches")).add(s.batches);
  reg.counter(name("pipeline.input_bytes")).add(s.input_bytes);
  reg.counter(name("pipeline.staged_bytes")).add(s.staged_bytes);
  reg.counter(name("pipeline.output_bytes")).add(s.output_bytes);
  reg.counter(name("pipeline.matches_reported")).add(result.total_reported);
  reg.gauge(name("pipeline.overlap_ratio")).set(s.overlap_ratio);
  reg.gauge(name("pipeline.throughput_gbps")).set(s.throughput_gbps());
  reg.gauge(name("pipeline.makespan_seconds")).set(s.makespan_seconds);
  reg.gauge(name("pipeline.copy_busy_seconds")).set(s.copy_busy_seconds);
  reg.gauge(name("pipeline.h2d_busy_seconds")).set(s.h2d_busy_seconds);
  reg.gauge(name("pipeline.d2h_busy_seconds")).set(s.d2h_busy_seconds);
  reg.gauge(name("pipeline.compute_busy_seconds")).set(s.compute_busy_seconds);
  reg.gauge(name("pipeline.overlap_seconds")).set(s.overlap_seconds);
  reg.gauge(name("pipeline.blocked_seconds")).set(s.blocked_seconds);
  reg.gauge(name("pipeline.readback_wait_seconds")).set(s.readback_wait_seconds);
  reg.gauge(name("pipeline.max_queue_depth")).set_max(s.max_queue_depth);
  reg.gauge(name("pipeline.pool_depth")).set(s.pool_depth);
  reg.gauge(name("pipeline.readback_depth")).set(s.readback_depth);
  reg.gauge(name("pipeline.effective_streams")).set(s.effective_streams);
  reg.gauge(name("pipeline.effective_batch_bytes")).set(
      static_cast<double>(s.effective_batch_bytes));
  if (s.streams_clamped) reg.counter(name("pipeline.streams_clamped")).add(1);

  telemetry::Histogram& latency = reg.histogram(name("pipeline.batch.latency_ns"));
  telemetry::Histogram& blocked = reg.histogram(name("pipeline.batch.blocked_ns"));
  telemetry::Histogram& rb_wait = reg.histogram(name("pipeline.batch.readback_wait_ns"));
  telemetry::Histogram& depth = reg.histogram(name("pipeline.batch.queue_depth"));
  for (const BatchTrace& t : result.batches) {
    latency.observe((t.complete_seconds - t.submit_seconds) * kSimNs);
    blocked.observe(t.blocked_seconds * kSimNs);
    rb_wait.observe(t.readback_wait_seconds * kSimNs);
    depth.observe(t.queue_depth);
  }

  telemetry::Histogram& h2d = reg.histogram(name("pipeline.batch.h2d_ns"));
  telemetry::Histogram& kernel = reg.histogram(name("pipeline.batch.kernel_ns"));
  telemetry::Histogram& d2h = reg.histogram(name("pipeline.batch.d2h_ns"));
  for (const gpusim::StreamOp& op : result.timeline) {
    const double ns = (op.end - op.start) * kSimNs;
    switch (op.kind) {
      case gpusim::StreamOpKind::kH2D: h2d.observe(ns); break;
      case gpusim::StreamOpKind::kKernel: kernel.observe(ns); break;
      case gpusim::StreamOpKind::kD2H: d2h.observe(ns); break;
    }
  }
}

}  // namespace

MatchPipeline::MatchPipeline(const gpusim::GpuConfig& config,
                             gpusim::DeviceMemory& mem,
                             const kernels::DeviceDfa& ddfa, PipelineOptions options)
    : config_(config), mem_(mem), ddfa_(&ddfa), options_(std::move(options)) {}

MatchPipeline::MatchPipeline(const gpusim::GpuConfig& config,
                             gpusim::DeviceMemory& mem,
                             const kernels::DevicePfac& dpfac, PipelineOptions options)
    : config_(config), mem_(mem), dpfac_(&dpfac), options_(std::move(options)) {}

Result<PipelineResult> MatchPipeline::run(std::string_view text) {
  const PipelineOptions& opt = options_;
  if (Status s = opt.validate(); !s) return s;
  if (opt.variant == KernelVariant::kPfac) {
    if (dpfac_ == nullptr)
      return Status::invalid_argument("PFAC variant needs a DevicePfac pipeline");
  } else if (ddfa_ == nullptr) {
    return Status::invalid_argument("AC variants need a DeviceDfa pipeline");
  }

  PipelineResult result;
  if (text.empty()) return result;

  ACGPU_TRACE_SPAN(opt.tracer, "pipeline.run");

  const std::uint32_t max_len = opt.variant == KernelVariant::kPfac
                                    ? dpfac_->max_pattern_length()
                                    : ddfa_->max_pattern_length();
  const StagingPlan plan = resolve_staging(opt, text.size());
  if (plan.streams_clamped)
    warn_streams_clamped(opt.logger, opt.streams, plan.pool_depth,
                         plan.effective_streams);

  Result<BatchGeometry> geo =
      resolve_geometry(opt, plan.batch_bytes, config_, max_len, text.size());
  if (!geo) return geo.status();
  const BatchGeometry g = geo.value();

  const std::uint64_t batch_count =
      (text.size() + plan.batch_bytes - 1) / plan.batch_bytes;

  try {
    // split_readback gives the device a dedicated D2H queue (the PCIe link
    // is full duplex). The sim keeps a reference to its config, so the
    // adjusted copy must outlive it.
    gpusim::GpuConfig run_cfg = config_;
    if (opt.split_readback && run_cfg.readback_engines == 0)
      run_cfg.readback_engines = 1;
    gpusim::StreamSim sim(run_cfg, mem_);
    sim.set_host_observer(opt.host_observer);
    for (std::uint32_t s = 0; s < plan.effective_streams; ++s) sim.create_stream();

    // Staging pools, allocated below batch_mark so per-batch recycling never
    // frees them. Upload slices carry 8 pad bytes (word-granular staging
    // loads never run off the slice); readback leases are 0-byte accounting
    // entries — the kernel launches allocate the real output buffers.
    const std::size_t outer_mark = mem_.mark();
    StagingPool::Options upload_opt{plan.pool_depth, g.slice_cap, 8, false};
    upload_opt.observer = opt.host_observer;
    upload_opt.name = "upload";
    upload_opt.sim = sim.sim_id();
    StagingPool::Options readback_opt{plan.readback_depth, 0, 0, false};
    readback_opt.observer = opt.host_observer;
    readback_opt.name = "readback";
    readback_opt.sim = sim.sim_id();
    StagingPool upload(mem_, upload_opt);
    StagingPool readback(mem_, readback_opt);
    const std::size_t batch_mark = mem_.mark();

    std::vector<double> completion;  // per batch: D2H end on the timeline
    completion.reserve(batch_count);
    std::map<std::uint64_t, CachedTiming> timing_cache;  // keyed by slice bytes
    Samples latencies;

    // The copy engine serves its queue in issue order, so issuing d2h(b)
    // right behind kernel(b) head-of-line-blocks h2d(b+1) behind a copy that
    // cannot start until the kernel ends — false serialization, no overlap.
    // Standard remedy on single-copy-queue devices: software-pipelined issue
    // order. Each batch's D2H is held back one iteration and enqueued after
    // the NEXT batch's H2D + kernel.
    struct PendingD2H {
      BatchTrace trace;
      gpusim::StreamId stream = 0;
    };
    std::optional<PendingD2H> pending;
    const auto flush_pending = [&]() {
      if (!pending) return;
      BatchTrace& t = pending->trace;
      // Readback staging lease: held from here (the batch's kernel has long
      // ended) to D2H end, recycled independently of the upload pool.
      const StagingPool::Lease rb = readback.try_acquire().value();
      if (opt.recorder != nullptr)
        opt.recorder->record(telemetry::FlightEventKind::kLeaseGrant, opt.shard,
                             rb.index, 0, /*code=*/1);
      t.readback_wait_seconds =
          std::max(0.0, rb.ready - sim.stream_ready(pending->stream));
      sim.wait_until(pending->stream, rb.ready);
      const std::uint64_t d2h_id = sim.charge_d2h(
          pending->stream, t.output_bytes, "d2h b" + std::to_string(t.index));
      t.complete_seconds = sim.op_end(d2h_id);
      readback.release(rb.index, t.complete_seconds);
      if (opt.recorder != nullptr) {
        opt.recorder->record(telemetry::FlightEventKind::kLeaseRelease,
                             opt.shard, rb.index, 0, /*code=*/1);
        opt.recorder->record(telemetry::FlightEventKind::kBatchRetire,
                             opt.shard, t.index, t.output_bytes);
      }
      completion.push_back(t.complete_seconds);
      t.queue_depth = 1;
      for (std::uint64_t j = 0; j < t.index; ++j)
        if (completion[j] > t.submit_seconds) ++t.queue_depth;
      latencies.add(t.complete_seconds - t.submit_seconds);

      result.stats.staged_bytes += t.staged_bytes;
      result.stats.output_bytes += t.output_bytes;
      result.stats.blocked_seconds += t.blocked_seconds;
      result.stats.readback_wait_seconds += t.readback_wait_seconds;
      result.stats.max_queue_depth =
          std::max(result.stats.max_queue_depth, t.queue_depth);
      result.batches.push_back(t);
      pending.reset();
    };

    const ac::Dfa* dfa = ddfa_ != nullptr ? &ddfa_->host_dfa() : nullptr;
    const ac::PfacAutomaton* pfac =
        dpfac_ != nullptr ? &dpfac_->host_automaton() : nullptr;

    for (std::uint64_t b = 0; b < batch_count; ++b) {
      const std::uint64_t base = b * plan.batch_bytes;
      const std::uint64_t owned =
          std::min<std::uint64_t>(plan.batch_bytes, text.size() - base);
      const std::uint64_t slice = std::min<std::uint64_t>(owned + g.overlap, text.size() - base);
      const gpusim::StreamId stream =
          static_cast<gpusim::StreamId>(b % plan.effective_streams);

      ACGPU_TRACE_SPAN(opt.tracer, "pipeline.batch");
      BatchTrace trace;
      trace.index = b;
      trace.stream = stream;
      trace.owned_bytes = owned;
      trace.staged_bytes = slice;

      // Upload staging lease: held from H2D start to KERNEL end (the kernel
      // is the last reader of the staged slice), so this batch never waits
      // on a readback it does not depend on. The pool hands back the buffer
      // that drains earliest; any wait is genuine upload backpressure. The
      // single-threaded driver releases every lease within its iteration,
      // so the pool cannot be exhausted here (value() is safe).
      const StagingPool::Lease up = upload.try_acquire().value();
      if (opt.recorder != nullptr) {
        opt.recorder->record(telemetry::FlightEventKind::kLeaseGrant, opt.shard,
                             up.index, 0, /*code=*/0);
        opt.recorder->record(telemetry::FlightEventKind::kBatchIssue, opt.shard,
                             b, slice);
      }
      const gpusim::DevAddr dst = up.addr;
      trace.blocked_seconds = std::max(0.0, up.ready - sim.stream_ready(stream));
      sim.wait_until(stream, up.ready);

      const std::uint64_t h2d_id =
          sim.memcpy_h2d(stream, dst, text.data() + base, slice, "h2d b" + std::to_string(b));
      mem_.fill(dst + slice, 0, 8);
      trace.submit_seconds = sim.timeline()[h2d_id].start;
      trace.issue_index = h2d_id;

      // One kernel launch over the slice. Timed runs may reuse the simulated
      // duration of an earlier same-length batch.
      const bool reuse = opt.mode == gpusim::SimMode::Timed && opt.reuse_timing;
      const auto cached = reuse ? timing_cache.find(slice) : timing_cache.end();
      if (cached != timing_cache.end()) {
        const std::uint64_t kid =
            sim.charge_kernel(stream, cached->second.kernel_seconds,
                              "kernel b" + std::to_string(b) + " (reused timing)");
        sim.annotate(kid, dst, slice, /*is_write=*/false);
        trace.kernel_seconds = cached->second.kernel_seconds;
        trace.output_bytes = cached->second.output_bytes;
      } else {
        // Recycle the previous batch's match buffer — unless an access
        // observer is attached, whose cross-launch global-write shadow would
        // misread address reuse as a race.
        ACGPU_TRACE_SPAN(opt.tracer, "kernel.simulate");
        if (opt.observer == nullptr) mem_.release(batch_mark);

        gpusim::LaunchOptions sim_opt;
        sim_opt.mode = opt.mode;
        sim_opt.sample_waves = opt.sample_waves;
        sim_opt.observer = opt.observer;

        double scale = 1.0;
        std::uint64_t threads = 0, reported = 0;
        if (opt.variant == KernelVariant::kPfac) {
          kernels::PfacLaunchSpec spec;
          spec.threads_per_block = g.threads_per_block;
          spec.match_capacity = opt.pfac_match_capacity;
          spec.sim = sim_opt;
          kernels::PfacLaunchOutcome out = kernels::run_pfac_kernel_stream(
              sim, stream, *dpfac_, dst, slice, spec, "kernel b" + std::to_string(b));
          trace.kernel_seconds = out.sim.seconds;
          scale = out.sim.scale();
          threads = out.threads;
          reported = out.matches.total_reported;
          result.overflowed |= out.matches.overflowed;
          result.metrics += out.sim.metrics;
          if (opt.mode == gpusim::SimMode::Functional)
            for (const ac::Match& m : out.matches.matches) {
              const std::uint64_t start = m.end + 1 - pfac->pattern_length(m.pattern);
              if (start < owned) result.matches.push_back(ac::Match{base + m.end, m.pattern});
            }
        } else {
          kernels::AcLaunchSpec spec;
          spec.approach = opt.variant == KernelVariant::kGlobalOnly
                              ? kernels::Approach::kGlobalOnly
                              : kernels::Approach::kShared;
          spec.scheme = opt.scheme;
          spec.chunk_bytes = g.chunk_bytes;
          spec.threads_per_block = g.threads_per_block;
          spec.match_capacity = opt.match_capacity;
          spec.stt_placement = opt.stt_placement;
          spec.sim = sim_opt;
          kernels::AcLaunchOutcome out = kernels::run_ac_kernel_stream(
              sim, stream, *ddfa_, dst, slice, spec, "kernel b" + std::to_string(b));
          trace.kernel_seconds = out.sim.seconds;
          scale = out.sim.scale();
          threads = out.threads;
          reported = out.matches.total_reported;
          result.overflowed |= out.matches.overflowed;
          result.metrics += out.sim.metrics;
          if (opt.mode == gpusim::SimMode::Functional)
            for (const ac::Match& m : out.matches.matches) {
              const std::uint64_t start = m.end + 1 - dfa->pattern_length(m.pattern);
              if (start < owned) result.matches.push_back(ac::Match{base + m.end, m.pattern});
            }
        }
        // The stream runners enqueue exactly one kernel op — annotate it as
        // the last reader of the staged slice for the hostcheck auditor.
        sim.annotate(sim.timeline().back().id, dst, slice, /*is_write=*/false);
        result.total_reported += reported;
        // D2H payload: the per-thread count array plus the (extrapolated in
        // Timed mode) match records.
        trace.output_bytes =
            threads * 4 +
            static_cast<std::uint64_t>(static_cast<double>(reported) * scale) * 8;
        if (reuse) timing_cache[slice] = {trace.kernel_seconds, trace.output_bytes};
      }

      // The kernel was the last reader of the staged slice: the upload
      // buffer recycles at kernel end, not D2H end — what lets a deep pool
      // keep feeding lanes while readbacks drain.
      upload.release(up.index, sim.stream_ready(stream));
      if (opt.recorder != nullptr)
        opt.recorder->record(telemetry::FlightEventKind::kLeaseRelease,
                             opt.shard, up.index, 0, /*code=*/0);

      // Issue the PREVIOUS batch's D2H now that this batch's H2D and kernel
      // are in the copy/compute queues, then hold this one back in turn.
      flush_pending();
      pending = PendingD2H{trace, stream};
    }
    flush_pending();

    const gpusim::OverlapStats ov = sim.overlap();
    result.stats.batches = batch_count;
    result.stats.input_bytes = text.size();
    result.stats.makespan_seconds = ov.makespan;
    result.stats.copy_busy_seconds = ov.copy_busy;
    result.stats.h2d_busy_seconds = ov.h2d_busy;
    result.stats.d2h_busy_seconds = ov.d2h_busy;
    result.stats.compute_busy_seconds = ov.compute_busy;
    result.stats.overlap_seconds = ov.overlapped;
    result.stats.overlap_ratio = ov.overlap_ratio();
    result.stats.effective_streams = plan.effective_streams;
    result.stats.pool_depth = plan.pool_depth;
    result.stats.readback_depth = plan.readback_depth;
    result.stats.effective_batch_bytes = plan.batch_bytes;
    result.stats.streams_clamped = plan.streams_clamped;
    result.stats.latency_p50_seconds = latencies.percentile(50);
    result.stats.latency_p90_seconds = latencies.percentile(90);
    result.stats.latency_p99_seconds = latencies.percentile(99);
    result.timeline = sim.timeline();

    if (opt.observer == nullptr) mem_.release(outer_mark);
  } catch (const std::exception& e) {
    return Status::from_exception(e);
  }

  std::sort(result.matches.begin(), result.matches.end());
  // Deterministic export order: flush order equals issue order today, but
  // consumers (trace export, reports) must not depend on that accident.
  std::sort(result.batches.begin(), result.batches.end(),
            [](const BatchTrace& a, const BatchTrace& b) {
              if (a.issue_index != b.issue_index) return a.issue_index < b.issue_index;
              return a.index < b.index;
            });
  if (opt.metrics != nullptr) publish_run(result, *opt.metrics, opt.metrics_prefix);
  return result;
}

}  // namespace acgpu::pipeline
