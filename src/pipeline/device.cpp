#include "pipeline/device.h"

#include <mutex>

#include "gpusim/device_registry.h"

namespace acgpu {

struct Device::Impl {
  DeviceOptions options;
  std::uint32_t id = 0;
  std::string name;
  std::unique_ptr<gpusim::DeviceMemory> memory;
  gpusim::TrackedMutex scan_mu;

  /// Guards the health flag (scan_mu stays scan-only so the hostcheck
  /// lock-order graph keeps device.<id>.mu a leaf).
  mutable std::mutex health_mu;
  bool healthy = true;
  std::string fail_reason;

  Impl(DeviceOptions opts, std::uint32_t device_id, std::string device_name)
      : options(std::move(opts)),
        id(device_id),
        name(std::move(device_name)),
        memory(std::make_unique<gpusim::DeviceMemory>(options.memory_bytes)),
        scan_mu(name + ".mu") {
    if (options.host_observer != nullptr) scan_mu.attach(options.host_observer);
  }
};

Device::Device(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Device::Device(Device&&) noexcept = default;

Device& Device::operator=(Device&& other) noexcept {
  if (this != &other) {
    if (impl_) gpusim::unregister_device(impl_->id);
    impl_ = std::move(other.impl_);
  }
  return *this;
}

Device::~Device() {
  if (impl_) gpusim::unregister_device(impl_->id);
}

Result<Device> Device::create(const DeviceOptions& options) {
  if (options.memory_bytes == 0)
    return Status::invalid_argument("Device memory budget must be > 0");
  const std::uint32_t id = gpusim::allocate_device_id();
  std::string name =
      options.name.empty() ? "device." + std::to_string(id) : options.name;
  std::unique_ptr<Impl> impl;
  try {
    impl = std::make_unique<Impl>(options, id, std::move(name));
  } catch (const std::exception& e) {
    return Status::from_exception(e);
  }
  gpusim::register_device(
      gpusim::DeviceInfo{impl->id, impl->name, options.memory_bytes});
  return Device(std::move(impl));
}

std::uint32_t Device::id() const { return impl_->id; }
const std::string& Device::name() const { return impl_->name; }
const gpusim::GpuConfig& Device::gpu() const { return impl_->options.gpu; }
std::size_t Device::memory_bytes() const { return impl_->options.memory_bytes; }
gpusim::DeviceMemory& Device::memory() { return *impl_->memory; }
gpusim::HostObserver* Device::host_observer() const {
  return impl_->options.host_observer;
}
gpusim::TrackedMutex& Device::scan_mutex() { return impl_->scan_mu; }

bool Device::healthy() const {
  std::scoped_lock lock(impl_->health_mu);
  return impl_->healthy;
}

void Device::mark_failed(std::string reason) {
  std::scoped_lock lock(impl_->health_mu);
  impl_->healthy = false;
  impl_->fail_reason = reason.empty() ? "marked failed" : std::move(reason);
}

void Device::restore() {
  std::scoped_lock lock(impl_->health_mu);
  impl_->healthy = true;
  impl_->fail_reason.clear();
}

std::string Device::fail_reason() const {
  std::scoped_lock lock(impl_->health_mu);
  return impl_->fail_reason;
}

}  // namespace acgpu
