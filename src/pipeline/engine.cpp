#include "pipeline/engine.h"

#include "telemetry/trace.h"

namespace acgpu {
namespace {

pipeline::PipelineOptions to_pipeline_options(const EngineOptions& options) {
  pipeline::PipelineOptions popt;
  popt.variant = options.variant;
  popt.scheme = options.scheme;
  popt.stt_placement = options.stt_placement;
  popt.streams = options.streams;
  popt.batch_bytes = options.batch_bytes;
  popt.pool_depth = options.pool_depth;
  popt.readback_depth = options.readback_depth;
  popt.split_readback = options.split_readback;
  popt.chunk_bytes = options.chunk_bytes;
  popt.threads_per_block = options.threads_per_block;
  popt.match_capacity = options.match_capacity;
  popt.mode = options.mode;
  popt.metrics = options.telemetry.metrics;
  popt.tracer = options.telemetry.tracer;
  popt.host_observer = options.host_observer;
  return popt;
}

}  // namespace

Result<Engine> Engine::create(const ac::PatternSet& patterns,
                              const EngineOptions& options) {
  if (patterns.empty()) return Status::invalid_argument("empty pattern set");

  const pipeline::PipelineOptions popt = to_pipeline_options(options);
  if (Status s = popt.validate(); !s) return s;

  Engine engine;
  engine.options_ = options;
  engine.patterns_ = patterns;
  try {
    engine.mem_ =
        std::make_unique<gpusim::DeviceMemory>(options.device_memory_bytes);
    if (options.variant == pipeline::KernelVariant::kPfac) {
      engine.pfac_ = std::make_unique<ac::PfacAutomaton>(patterns);
      engine.dpfac_ =
          std::make_unique<kernels::DevicePfac>(*engine.mem_, *engine.pfac_);
      engine.pipeline_ = std::make_unique<pipeline::MatchPipeline>(
          engine.options_.gpu, *engine.mem_, *engine.dpfac_, popt);
    }
    // The host DFA is built for every variant: dfa() is part of the facade
    // (serial cross-checks, pattern metadata) even when PFAC matches.
    engine.dfa_ = std::make_unique<ac::Dfa>(
        ac::build_dfa(patterns, /*pad_pitch_to=*/8));
    if (options.variant != pipeline::KernelVariant::kPfac) {
      engine.ddfa_ =
          std::make_unique<kernels::DeviceDfa>(*engine.mem_, *engine.dfa_);
      engine.pipeline_ = std::make_unique<pipeline::MatchPipeline>(
          engine.options_.gpu, *engine.mem_, *engine.ddfa_, popt);
    }
  } catch (const std::exception& e) {
    return Status::from_exception(e);
  }
  return engine;
}

Result<Engine> Engine::create(ac::Dfa dfa, const EngineOptions& options) {
  if (dfa.pattern_count() == 0)
    return Status::invalid_argument("DFA has no patterns");
  if (options.variant == pipeline::KernelVariant::kPfac)
    return Status::invalid_argument(
        "PFAC rebuilds its automaton from the pattern set; use "
        "Engine::create(PatternSet, ...) for variant kPfac");

  const pipeline::PipelineOptions popt = to_pipeline_options(options);
  if (Status s = popt.validate(); !s) return s;

  Engine engine;
  engine.options_ = options;
  try {
    engine.mem_ =
        std::make_unique<gpusim::DeviceMemory>(options.device_memory_bytes);
    engine.dfa_ = std::make_unique<ac::Dfa>(std::move(dfa));
    engine.ddfa_ =
        std::make_unique<kernels::DeviceDfa>(*engine.mem_, *engine.dfa_);
    engine.pipeline_ = std::make_unique<pipeline::MatchPipeline>(
        engine.options_.gpu, *engine.mem_, *engine.ddfa_, popt);
  } catch (const std::exception& e) {
    return Status::from_exception(e);
  }
  return engine;
}

Result<ScanResult> Engine::scan(std::string_view text) {
  if (pipeline_ == nullptr)
    return Status::internal("Engine used after being moved from");
  ACGPU_TRACE_SPAN(options_.telemetry.tracer, "engine.scan");
  return pipeline_->run(text);
}

}  // namespace acgpu
