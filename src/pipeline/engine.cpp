#include "pipeline/engine.h"

#include <atomic>
#include <mutex>

#include "telemetry/trace.h"

namespace acgpu {
namespace {

/// Process-unique engine ids, across every device (see Engine::id).
std::atomic<std::uint32_t> g_next_engine_id{0};

pipeline::PipelineOptions to_pipeline_options(const EngineOptions& options) {
  pipeline::PipelineOptions popt;
  popt.variant = options.variant;
  popt.scheme = options.scheme;
  popt.stt_placement = options.stt_placement;
  popt.streams = options.streams;
  popt.batch_bytes = options.batch_bytes;
  popt.pool_depth = options.pool_depth;
  popt.readback_depth = options.readback_depth;
  popt.split_readback = options.split_readback;
  popt.chunk_bytes = options.chunk_bytes;
  popt.threads_per_block = options.threads_per_block;
  popt.match_capacity = options.match_capacity;
  popt.mode = options.mode;
  popt.metrics = options.telemetry.metrics;
  popt.metrics_prefix = options.telemetry.metrics_prefix;
  popt.tracer = options.telemetry.tracer;
  popt.recorder = options.telemetry.recorder;
  popt.logger = options.telemetry.logger;
  popt.shard = options.telemetry.shard;
  popt.host_observer = options.host_observer;
  return popt;
}

/// The deprecated single-arg path builds a private device from the legacy
/// EngineOptions fields.
Result<std::unique_ptr<Device>> make_private_device(const EngineOptions& options) {
  DeviceOptions dopt;
  dopt.gpu = options.gpu;
  dopt.memory_bytes = options.device_memory_bytes;
  dopt.host_observer = options.host_observer;
  Result<Device> device = Device::create(dopt);
  if (!device.is_ok()) return device.status();
  return std::make_unique<Device>(std::move(device).value());
}

}  // namespace

Result<Engine> Engine::build(Device& device, std::unique_ptr<Device> owned,
                             const ac::PatternSet* patterns, ac::Dfa* dfa,
                             const EngineOptions& options) {
  EngineOptions opts = options;
  // Engines on an audited device inherit its observer seam unless they were
  // wired somewhere else explicitly.
  if (opts.host_observer == nullptr)
    opts.host_observer = device.host_observer();

  const pipeline::PipelineOptions popt = to_pipeline_options(opts);
  if (Status s = popt.validate(); !s) return s;

  Engine engine;
  engine.options_ = std::move(opts);
  engine.id_ = g_next_engine_id.fetch_add(1, std::memory_order_relaxed);
  engine.device_ = &device;
  engine.owned_device_ = std::move(owned);
  try {
    if (patterns != nullptr) {
      engine.patterns_ = *patterns;
      if (engine.options_.variant == pipeline::KernelVariant::kPfac) {
        engine.pfac_ = std::make_unique<ac::PfacAutomaton>(*patterns);
        engine.dpfac_ = std::make_unique<kernels::DevicePfac>(device.memory(),
                                                              *engine.pfac_);
        engine.pipeline_ = std::make_unique<pipeline::MatchPipeline>(
            device.gpu(), device.memory(), *engine.dpfac_, popt);
      }
      // The host DFA is built for every variant: dfa() is part of the facade
      // (serial cross-checks, pattern metadata) even when PFAC matches.
      engine.dfa_ = std::make_unique<ac::Dfa>(
          ac::build_dfa(*patterns, /*pad_pitch_to=*/8));
    } else {
      engine.dfa_ = std::make_unique<ac::Dfa>(std::move(*dfa));
    }
    if (engine.options_.variant != pipeline::KernelVariant::kPfac) {
      engine.ddfa_ =
          std::make_unique<kernels::DeviceDfa>(device.memory(), *engine.dfa_);
      engine.pipeline_ = std::make_unique<pipeline::MatchPipeline>(
          device.gpu(), device.memory(), *engine.ddfa_, popt);
    }
  } catch (const std::exception& e) {
    return Status::from_exception(e);
  }
  return engine;
}

Result<Engine> Engine::create(Device& device, const ac::PatternSet& patterns,
                              const EngineOptions& options) {
  if (patterns.empty()) return Status::invalid_argument("empty pattern set");
  return build(device, nullptr, &patterns, nullptr, options);
}

Result<Engine> Engine::create(Device& device, ac::Dfa dfa,
                              const EngineOptions& options) {
  if (dfa.pattern_count() == 0)
    return Status::invalid_argument("DFA has no patterns");
  if (options.variant == pipeline::KernelVariant::kPfac)
    return Status::invalid_argument(
        "PFAC rebuilds its automaton from the pattern set; use "
        "Engine::create(Device&, PatternSet, ...) for variant kPfac");
  return build(device, nullptr, nullptr, &dfa, options);
}

// Definitions of the deprecated shims themselves (the attribute warns on
// use, and a definition counts as one on some toolchains).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

Result<Engine> Engine::create(const ac::PatternSet& patterns,
                              const EngineOptions& options) {
  if (patterns.empty()) return Status::invalid_argument("empty pattern set");
  Result<std::unique_ptr<Device>> device = make_private_device(options);
  if (!device.is_ok()) return device.status();
  std::unique_ptr<Device> owned = std::move(device).value();
  Device& ref = *owned;
  return build(ref, std::move(owned), &patterns, nullptr, options);
}

Result<Engine> Engine::create(ac::Dfa dfa, const EngineOptions& options) {
  if (dfa.pattern_count() == 0)
    return Status::invalid_argument("DFA has no patterns");
  if (options.variant == pipeline::KernelVariant::kPfac)
    return Status::invalid_argument(
        "PFAC rebuilds its automaton from the pattern set; use "
        "Engine::create(PatternSet, ...) for variant kPfac");
  Result<std::unique_ptr<Device>> device = make_private_device(options);
  if (!device.is_ok()) return device.status();
  std::unique_ptr<Device> owned = std::move(device).value();
  Device& ref = *owned;
  return build(ref, std::move(owned), nullptr, &dfa, options);
}

#pragma GCC diagnostic pop

Result<ScanResult> Engine::scan(std::string_view text) {
  if (pipeline_ == nullptr)
    return Status::internal("Engine used after being moved from");
  if (!device_->healthy())
    return Status::unavailable("device '" + device_->name() +
                               "' is marked failed: " + device_->fail_reason());
  ACGPU_TRACE_SPAN(options_.telemetry.tracer, "engine.scan");
  // Engines sharing the device share its arena (each run marks/releases a
  // per-run region), so scans on one device are serialized here. Engines on
  // different devices proceed concurrently.
  std::scoped_lock lock(device_->scan_mutex());
  return pipeline_->run(text);
}

}  // namespace acgpu
