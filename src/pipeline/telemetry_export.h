// Chrome-trace export of a pipeline run's simulated timeline.
//
// One Chrome "process" per clock domain: the simulated device gets a track
// per stream (the per-batch H2D/kernel/D2H interleaving — with >= 2 streams
// the copy/compute overlap is visible across tracks), a track per engine
// (the copy engine's and compute engine's serialised schedules), and two
// counter tracks — "pipeline.queue_depth" (in-flight batches, from the
// BatchTrace records) and "device.engines_busy" (0-2, from the engine
// busy intervals). Host-side spans recorded by a Tracer ride along as a
// second process on the wall clock. docs/OBSERVABILITY.md shows how to read
// the result in Perfetto.
#pragma once

#include <iosfwd>
#include <string>

#include "pipeline/pipeline.h"
#include "telemetry/trace.h"

namespace acgpu::pipeline {

struct TraceExportOptions {
  /// Chrome process name for the simulated-device tracks. Give each scan its
  /// own name ("device scan 0", ...) to stack multiple runs in one file.
  std::string process_name = "acgpu simulated device";
  /// Added to every simulated timestamp (seconds) — lets sequential scans
  /// land end-to-end on one timeline instead of overprinting at t=0.
  double time_offset_seconds = 0;
};

/// Appends the run's stream/engine tracks and counter tracks to `trace`.
void add_scan_to_trace(telemetry::ChromeTrace& trace, const PipelineResult& result,
                       const TraceExportOptions& options = {});

/// One-call export: device tracks for `result`, host spans from `tracer`
/// when non-null, written as Chrome trace-event JSON.
void write_chrome_trace(const PipelineResult& result,
                        const telemetry::Tracer* tracer, std::ostream& out);

}  // namespace acgpu::pipeline
