// Batched multi-stream matching pipeline (the library's production path).
//
// The paper's kernels assume the text is already resident on the device; at
// production scale the PCIe copy dominates a monolithic launch. MatchPipeline
// splits an arbitrarily large input into batches and runs each through a
// three-stage software pipeline — upload (H2D), compute (kernel), readback
// (D2H) — cycled across N simulated streams (gpusim/stream.h). Each stream
// is one pipeline lane; stages of different batches overlap because the
// upload engine, the compute engine, and the readback engine are independent
// resources:
//
//   upload:   [H2D b0][H2D b1][H2D b2][H2D b3]...
//   compute:          [krn b0][krn b1][krn b2]...
//   readback:                 [D2H b0][D2H b1]...
//
// Staging is a sized buffer pool (pipeline/staging_pool.h), not a fixed
// double-buffer: `pool_depth` upload slices (leased H2D -> kernel end, the
// kernel being the last reader of the staged input) and `readback_depth`
// output buffers (leased kernel end -> D2H end) recycle independently, so a
// batch's upload never waits on a readback it does not depend on. Requested
// streams are clamped to the pool depth — a pool of D buffers can only feed
// D lanes — and the clamp is surfaced (stats.streams_clamped, the
// pipeline.streams_clamped counter, a one-time warning) instead of silently
// degrading.
//
// Readback runs on its own DMA queue by default (`split_readback`, modelled
// by gpusim's dedicated readback engine): the PCIe link is full duplex, so
// an upload and a readback proceed simultaneously and throughput approaches
// the upload-bound limit serial(copy+compute)/max(h2d, kernel, d2h) instead
// of plateauing at the shared-engine bound. The driver still issues each
// batch's D2H after the NEXT batch's H2D + kernel (software-pipelined issue
// order), which keeps the legacy shared-engine mode (split_readback=false)
// from head-of-line-blocking uploads behind readbacks.
//
// Correctness at batch boundaries uses the same X-byte overlap rule as
// ac/chunking.h, one level up: each batch's device slice carries
// max_pattern_length-1 bytes of the next batch, and a match is kept iff its
// START lies in the batch's owned range — so matches spanning a boundary are
// reported exactly once, by the earlier batch.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "ac/match.h"
#include "gpusim/metrics.h"
#include "gpusim/stream.h"
#include "kernels/ac_kernel.h"
#include "kernels/pfac_kernel.h"
#include "util/error.h"

namespace acgpu::telemetry {
class MetricsRegistry;
class Tracer;
class FlightRecorder;
class Logger;
}

namespace acgpu::pipeline {

/// Which device kernel the pipeline drives per batch.
enum class KernelVariant : std::uint8_t { kGlobalOnly, kShared, kPfac };

const char* to_string(KernelVariant variant);

struct PipelineOptions {
  KernelVariant variant = KernelVariant::kShared;
  kernels::StoreScheme scheme = kernels::StoreScheme::kDiagonal;
  kernels::SttPlacement stt_placement = kernels::SttPlacement::kTexture;

  /// Streams (pipeline lanes) to cycle batches across. 1 = no overlap (the
  /// baseline the BENCH_pipeline numbers compare against). Clamped to the
  /// staging-pool depth, with the clamp surfaced (never silent).
  std::uint32_t streams = 2;
  /// Owned input bytes per batch (the device slice adds the overlap carry).
  /// When `rebalance_batches` is set this is a ceiling: high stream counts
  /// shrink the effective batch so every lane stays fed.
  std::uint64_t batch_bytes = 4u << 20;
  /// Upload staging-pool depth in device slice buffers. 0 = 2x streams.
  /// Effective streams = min(streams, pool_depth): a pool of D buffers can
  /// feed at most D lanes (stats.streams_clamped reports the clamp).
  std::uint32_t pool_depth = 0;
  /// Readback staging-pool depth in output buffers. 0 = pool_depth.
  std::uint32_t readback_depth = 0;
  /// Issue D2H copies on a dedicated readback DMA queue (full-duplex PCIe).
  /// false falls back to the GT200 single-copy-queue model, where uploads
  /// and readbacks serialise on one engine — the historical 1.63x plateau.
  bool split_readback = true;
  /// Shrink the effective batch size when the stream count is high enough
  /// that `batch_bytes` would leave lanes idle (target: >= 4 batches per
  /// lane, never below 64 KB or above batch_bytes). Purely a timing
  /// rebalance — matches are exact for any batch size.
  bool rebalance_batches = true;

  /// Per-thread chunk for the AC kernels; 0 derives the smallest legal value
  /// (>= 32, a multiple of 4, larger than the overlap).
  std::uint32_t chunk_bytes = 0;
  std::uint32_t threads_per_block = 256;
  std::uint32_t match_capacity = 64;
  /// PFAC runs one thread per byte, so its record slots are priced per input
  /// byte — keep this small (patterns starting at one position).
  std::uint32_t pfac_match_capacity = 8;

  /// Functional: every block of every batch simulated — matches exact (the
  /// conformance/audit path). Timed: sampled-wave timing per batch — the
  /// throughput path; match collection is skipped.
  gpusim::SimMode mode = gpusim::SimMode::Functional;
  std::uint32_t sample_waves = 3;
  /// Timed mode only: batches with the same slice length reuse the first
  /// batch's simulated kernel time instead of re-sampling it (they are
  /// homogeneous by construction), making 100+-batch sweeps cheap.
  bool reuse_timing = true;
  /// Hazard-audit hook forwarded to every batch launch. When set, per-batch
  /// device buffers are not recycled: the recorder's cross-launch global
  /// shadow would misread a reused match-buffer address as a write race.
  gpusim::AccessObserver* observer = nullptr;
  /// Host-pipeline audit hook (gpusim/host_observer.h): records every stream
  /// op, staging lease, and ordering edge of the run for the hostcheck
  /// happens-before auditor. Orthogonal to `observer` (which audits device
  /// thread interleavings inside one kernel). Null = off, zero cost.
  gpusim::HostObserver* host_observer = nullptr;

  /// Telemetry sinks (telemetry/metrics_registry.h, telemetry/trace.h).
  /// Null = off, and the hot path pays one branch per batch. When set, the
  /// run publishes gpusim.* and pipeline.* series into the registry and
  /// records host-side spans (run -> batch -> kernel) in the tracer.
  telemetry::MetricsRegistry* metrics = nullptr;
  telemetry::Tracer* tracer = nullptr;
  /// Flight recorder (telemetry/flight_recorder.h): batch issue/retire and
  /// staging-lease grant/release events. Null = off, one branch per event.
  telemetry::FlightRecorder* recorder = nullptr;
  /// Log sink for one-time warnings (the stream clamp). Null = the
  /// process-global logger (stderr).
  telemetry::Logger* logger = nullptr;
  /// Prepended to every published series name ("device.3." =>
  /// device.3.pipeline.runs, device.3.gpusim.tex.hits, ...). The cluster
  /// tier sets one per shard; "" keeps the classic single-device names.
  std::string metrics_prefix;
  /// Shard/device index stamped on flight-recorder events (0 standalone).
  std::uint32_t shard = 0;

  /// Rejects inconsistent combinations (PFAC with a store scheme override,
  /// zero streams, ...). Streams above the pool depth are NOT an error —
  /// they clamp, and the clamp is surfaced in the run's stats/telemetry.
  Status validate() const;
};

/// Per-batch record on the simulated timeline. `stream` and `issue_index`
/// tie the record back to the StreamOp timeline so a run's interleaving is
/// reconstructible (and exportable as a Chrome trace) without re-running;
/// PipelineResult::batches is sorted by (issue_index, index) before return.
struct BatchTrace {
  std::uint64_t index = 0;
  std::uint32_t stream = 0;        ///< stream the batch's ops were issued on
  std::uint64_t issue_index = 0;   ///< timeline op id of the batch's H2D
  std::uint64_t owned_bytes = 0;   ///< bytes this batch reports matches for
  std::uint64_t staged_bytes = 0;  ///< H2D payload (owned + overlap carry)
  std::uint64_t output_bytes = 0;  ///< D2H payload (counts + match records)
  double submit_seconds = 0;       ///< H2D start (after any backpressure wait)
  double complete_seconds = 0;     ///< D2H end
  double kernel_seconds = 0;
  double blocked_seconds = 0;  ///< time the submit waited for an upload buffer
  double readback_wait_seconds = 0;  ///< time the D2H waited for a readback buffer
  std::uint32_t queue_depth = 0;  ///< in-flight batches at submit (incl. this)
};

struct PipelineStats {
  std::uint64_t batches = 0;
  std::uint64_t input_bytes = 0;   ///< text length
  std::uint64_t staged_bytes = 0;  ///< total H2D payload (incl. overlap carry)
  std::uint64_t output_bytes = 0;  ///< total D2H payload
  double makespan_seconds = 0;     ///< simulated end-to-end (copy + compute)
  double copy_busy_seconds = 0;    ///< all transfers (both directions)
  double h2d_busy_seconds = 0;     ///< upload stage busy time
  double d2h_busy_seconds = 0;     ///< readback stage busy time
  double compute_busy_seconds = 0;
  double overlap_seconds = 0;  ///< both engine classes busy simultaneously
  double overlap_ratio = 0;    ///< overlap / min(copy, compute) busy time
  double blocked_seconds = 0;  ///< total upload-buffer backpressure wait
  double readback_wait_seconds = 0;  ///< total readback-buffer wait
  std::uint32_t max_queue_depth = 0;

  /// Resolved staging geometry for the run — what actually executed, after
  /// pool-depth defaults, the stream clamp, and batch rebalancing.
  std::uint32_t effective_streams = 0;
  std::uint32_t pool_depth = 0;      ///< upload staging buffers
  std::uint32_t readback_depth = 0;  ///< readback staging buffers
  std::uint64_t effective_batch_bytes = 0;
  bool streams_clamped = false;  ///< requested streams exceeded the pool depth
  double latency_p50_seconds = 0;  ///< per-batch submit -> D2H-complete
  double latency_p90_seconds = 0;
  double latency_p99_seconds = 0;

  /// End-to-end matching throughput in Gbit/s of input scanned.
  double throughput_gbps() const {
    return makespan_seconds > 0
               ? static_cast<double>(input_bytes) * 8.0 / makespan_seconds / 1e9
               : 0.0;
  }
};

struct PipelineResult {
  /// Global-offset matches, sorted (end, pattern), exactly-once across batch
  /// boundaries. Complete only in Functional mode.
  std::vector<ac::Match> matches;
  std::uint64_t total_reported = 0;
  bool overflowed = false;  ///< some per-thread match slot overflowed
  /// Kernel counters summed over every simulated batch launch (batches that
  /// reuse a cached Timed duration contribute nothing — their kernel was
  /// never re-simulated).
  gpusim::Metrics metrics;
  PipelineStats stats;
  std::vector<BatchTrace> batches;
  /// The resolved stream timeline (H2D/kernel/D2H ops) — report/figure input.
  std::vector<gpusim::StreamOp> timeline;
};

/// Drives one device automaton over arbitrarily many inputs. The automaton
/// (and the DeviceMemory it lives in) must outlive the pipeline; each run()
/// allocates its slot buffers on top and recycles them per batch.
class MatchPipeline {
 public:
  /// AC-DFA pipeline (variant kGlobalOnly or kShared).
  MatchPipeline(const gpusim::GpuConfig& config, gpusim::DeviceMemory& mem,
                const kernels::DeviceDfa& ddfa, PipelineOptions options);
  /// PFAC pipeline (variant kPfac).
  MatchPipeline(const gpusim::GpuConfig& config, gpusim::DeviceMemory& mem,
                const kernels::DevicePfac& dpfac, PipelineOptions options);

  const PipelineOptions& options() const { return options_; }

  /// Matches `text` through the batched multi-stream pipeline. An empty text
  /// succeeds with an empty result. Fails (no throw) on inconsistent options
  /// or a device-memory budget too small for the slot buffers.
  Result<PipelineResult> run(std::string_view text);

 private:
  gpusim::GpuConfig config_;  // by value: pipelines outlive caller temporaries
  gpusim::DeviceMemory& mem_;
  const kernels::DeviceDfa* ddfa_ = nullptr;
  const kernels::DevicePfac* dpfac_ = nullptr;
  PipelineOptions options_;
};

}  // namespace acgpu::pipeline
