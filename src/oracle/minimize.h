// Divergence minimizer: shrinks a diverging (patterns, text) workload to a
// minimal reproducer — greedy pattern dropping, delta-debugging-style text
// chunk removal, and pattern truncation, iterated to a fixpoint — and
// renders the result as a ready-to-paste C++ regression test.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "oracle/differential.h"
#include "oracle/matcher.h"

namespace acgpu::oracle {

struct MinimizeOptions {
  /// Upper bound on shrink-to-fixpoint rounds (each round is a full pattern
  /// + text + truncation sweep); the loop stops early when a round makes no
  /// progress.
  std::size_t max_rounds = 8;
  /// Cap on candidate evaluations (each one recompiles the workload and
  /// re-runs the matcher); minimization stops — keeping the best reproducer
  /// found so far — when it is exhausted.
  std::size_t max_evaluations = 4000;
};

/// A shrunk diverging input. `divergence` is recomputed on the minimized
/// workload, so its expected/got records match what the pasted test sees.
struct Reproducer {
  Workload workload;
  std::string matcher;
  std::uint64_t salt = 0;
  Divergence divergence;
};

/// Shrinks `workload` while `matcher` (run with `salt`) still diverges from
/// the serial reference. Returns nullopt when the input does not diverge in
/// the first place. Candidates that fail to compile or throw while matching
/// are treated as uninteresting (only the original divergence counts).
std::optional<Reproducer> minimize_divergence(const Workload& workload,
                                              const Matcher& matcher,
                                              std::uint64_t salt,
                                              const MinimizeOptions& options = {});

/// Renders a reproducer as a self-contained gtest TEST(...) body asserting
/// that the matcher agrees with the serial reference on the minimized
/// input. Bytes are emitted as 3-digit octal escapes, so arbitrary binary
/// patterns/texts round-trip through the C++ literal.
std::string to_cpp_test(const Reproducer& reproducer);

}  // namespace acgpu::oracle
