// Differential runner: executes one workload across a set of matcher
// adapters and diffs every adapter's normalized match multiset against the
// serial-DFA reference, reporting the first divergence with enough context
// (byte offset, DFA state, expected-vs-got record) to debug it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "oracle/matcher.h"

namespace acgpu::oracle {

/// First point where one matcher's normalized output differs from the
/// reference's. `expected`/`got` are the records at the first differing
/// index of the two sorted vectors; a missing `expected` means the matcher
/// produced extra matches past the reference's end (and vice versa).
struct Divergence {
  std::string workload;      ///< Workload::name
  std::string matcher;       ///< diverging adapter
  std::uint64_t salt = 0;    ///< salt the adapter ran with (replays it)
  std::size_t index = 0;     ///< first differing index in normalized order
  std::optional<ac::Match> expected;  ///< reference[index], if in range
  std::optional<ac::Match> got;       ///< matcher[index], if in range
  std::size_t reference_count = 0;
  std::size_t matcher_count = 0;
  /// Text index of the divergence: the smaller of the two records' ends
  /// (clamped to the text) — where to start staring at the input.
  std::uint64_t byte_offset = 0;
  /// Serial DFA state after consuming text[0..byte_offset] — pinpoints the
  /// automaton context the diverging matcher mishandled.
  std::int32_t dfa_state = 0;
};

/// Diffs a matcher's normalized output against the normalized reference.
/// Returns nullopt when they are identical multisets.
std::optional<Divergence> diff_matches(const CompiledWorkload& workload,
                                       const std::string& matcher_name,
                                       std::uint64_t salt,
                                       const std::vector<ac::Match>& reference,
                                       const std::vector<ac::Match>& got);

/// One-line human-readable rendering of a divergence.
std::string describe(const Divergence& divergence);

/// One adapter that failed to produce output at all — a structured Status
/// from Matcher::try_run (an adapter exception, or a pipeline error code) —
/// as opposed to producing output that diverges.
struct MatcherFailure {
  std::string workload;    ///< Workload::name
  std::string matcher;     ///< failing adapter
  std::uint64_t salt = 0;  ///< salt the adapter ran with (replays it)
  Status status;           ///< code + message of the failure
};

/// One-line human-readable rendering of a failure.
std::string describe(const MatcherFailure& failure);

struct DifferentialReport {
  std::vector<Divergence> divergences;  ///< at most one per matcher
  std::vector<MatcherFailure> failures;  ///< adapters that errored outright
  std::size_t matchers_run = 0;
  std::size_t reference_count = 0;  ///< matches in the reference multiset
  bool ok() const { return divergences.empty() && failures.empty(); }
};

/// Runs every adapter on the workload (all with the same salt) and diffs
/// each against the serial reference.
DifferentialReport run_differential(const CompiledWorkload& workload,
                                    const std::vector<const Matcher*>& matchers,
                                    std::uint64_t salt);

}  // namespace acgpu::oracle
