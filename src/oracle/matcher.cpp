#include "oracle/matcher.h"

#include "ac/serial_matcher.h"
#include "util/error.h"

namespace acgpu::oracle {

CompiledWorkload::CompiledWorkload(Workload workload)
    : workload_(std::move(workload)),
      patterns_(workload_.patterns),
      automaton_(patterns_),
      dfa_(automaton_, patterns_, /*pad_pitch_to=*/8) {
  ACGPU_CHECK(!patterns_.empty(),
              "CompiledWorkload '" << workload_.name << "': empty pattern set");
}

const ac::CompressedStt& CompiledWorkload::compressed() const {
  if (!compressed_) compressed_ = std::make_unique<ac::CompressedStt>(dfa_);
  return *compressed_;
}

const ac::PfacAutomaton& CompiledWorkload::pfac() const {
  if (!pfac_) pfac_ = std::make_unique<ac::PfacAutomaton>(patterns_);
  return *pfac_;
}

std::vector<ac::Match> reference_matches(const CompiledWorkload& workload) {
  auto matches = ac::find_all(workload.dfa(), workload.text());
  ac::normalize_matches(matches);
  return matches;
}

}  // namespace acgpu::oracle
