// Cross-matcher conformance oracle: a uniform adapter interface over every
// matcher variant in the repo plus a registry, so the differential runner
// (oracle/differential.h) can prove that all of them produce the same match
// multiset. The paper's evaluation (Figs 13-23) compares runtimes of
// implementations it *assumes* are equivalent; this subsystem is where that
// assumption is enforced.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ac/automaton.h"
#include "ac/compressed_stt.h"
#include "ac/dfa.h"
#include "ac/match.h"
#include "ac/pattern_set.h"
#include "ac/pfac.h"
#include "util/error.h"

namespace acgpu::oracle {

/// One differential-testing input: a dictionary plus a text. Plain data so
/// the minimizer can mutate it freely.
struct Workload {
  std::string name;                   ///< family tag, for reports
  std::vector<std::string> patterns;  ///< non-empty byte strings
  std::string text;                   ///< may be empty (a target edge case)
};

/// Shared compiled artifacts, built once per workload and reused by every
/// adapter so a differential run compiles each structure exactly once. The
/// compressed table and the failureless (PFAC) automaton are compiled
/// lazily — only the matchers that need them pay for them.
class CompiledWorkload {
 public:
  /// Throws acgpu::Error on an empty pattern list (no automaton to build).
  explicit CompiledWorkload(Workload workload);

  const Workload& raw() const { return workload_; }
  const std::string& name() const { return workload_.name; }
  std::string_view text() const { return workload_.text; }

  const ac::PatternSet& patterns() const { return patterns_; }
  const ac::Automaton& automaton() const { return automaton_; }
  const ac::Dfa& dfa() const { return dfa_; }
  const ac::CompressedStt& compressed() const;  ///< built on first use
  const ac::PfacAutomaton& pfac() const;        ///< built on first use

 private:
  Workload workload_;
  ac::PatternSet patterns_;
  ac::Automaton automaton_;
  ac::Dfa dfa_;
  mutable std::unique_ptr<ac::CompressedStt> compressed_;
  mutable std::unique_ptr<ac::PfacAutomaton> pfac_;
};

/// Adapter over one matcher variant. Implementations must return the
/// normalized multiset (ac::normalize_matches order) of every occurrence in
/// the workload's text, and must be deterministic for a given (workload,
/// salt) pair. `salt` decorrelates randomized internals between iterations:
/// the stream adapter draws its feed-slice boundaries from it, the chunked
/// and parallel adapters their decomposition sizes. Adapters with no
/// randomized internals ignore it.
class Matcher {
 public:
  virtual ~Matcher() = default;
  virtual const std::string& name() const = 0;
  virtual std::vector<ac::Match> run(const CompiledWorkload& workload,
                                     std::uint64_t salt) const = 0;

  /// No-throw variant for the differential runner: a crash in one adapter
  /// becomes a structured failure in the report instead of aborting the
  /// whole sweep. The default wraps run(); adapters that already speak
  /// Status (the pipeline) override it to forward their own codes.
  virtual Result<std::vector<ac::Match>> try_run(const CompiledWorkload& workload,
                                                 std::uint64_t salt) const {
    try {
      return run(workload, salt);
    } catch (const std::exception& e) {
      return Status::from_exception(e);
    }
  }
};

/// The reference the differential runner diffs every adapter against: one
/// serial DFA pass (ac::match_serial), normalized. Using the DFA scan (and
/// diffing the naive substring matcher against it) cross-validates the DFA
/// construction itself.
std::vector<ac::Match> reference_matches(const CompiledWorkload& workload);

/// Registry of the built-in adapters. Names (one per variant):
///   naive, nfa, serial, chunked, parallel, stream, compressed, pfac,
///   gpu-global, gpu-shared, gpu-shared-naive, gpu-compressed, gpu-pfac,
///   pipeline, serve, router, dispatch
const std::vector<std::string>& registered_matcher_names();

/// Instantiates one registered adapter; throws acgpu::Error on an unknown
/// name (the error message lists the valid ones).
std::unique_ptr<Matcher> make_matcher(std::string_view name);

/// All registered adapters, in registry order.
std::vector<std::unique_ptr<Matcher>> make_all_matchers();

/// Adapters for a selection of names; an empty list means all of them.
std::vector<std::unique_ptr<Matcher>> make_matchers(
    const std::vector<std::string>& names);

}  // namespace acgpu::oracle
