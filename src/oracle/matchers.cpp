// The built-in adapters: one per matcher variant in the repo. Each wraps
// compile + match + normalization behind the uniform Matcher interface so
// the differential runner can treat a CPU scan and a simulated kernel
// launch identically.
#include <algorithm>
#include <optional>
#include <sstream>

#include "ac/chunking.h"
#include "ac/naive_matcher.h"
#include "ac/nfa_matcher.h"
#include "ac/parallel_matcher.h"
#include "ac/serial_matcher.h"
#include "ac/stream_matcher.h"
#include "gpusim/device_memory.h"
#include "kernels/ac_kernel.h"
#include "kernels/compressed_kernel.h"
#include "kernels/pfac_kernel.h"
#include "oracle/matcher.h"
#include "pipeline/pipeline.h"
#include "cluster/router.h"
#include "dispatch/dispatcher.h"
#include "serve/service.h"
#include "util/error.h"
#include "util/rng.h"

namespace acgpu::oracle {
namespace {

// ---------------------------------------------------------------------------
// CPU adapters
// ---------------------------------------------------------------------------

class NaiveMatcher final : public Matcher {
 public:
  const std::string& name() const override {
    static const std::string n = "naive";
    return n;
  }
  std::vector<ac::Match> run(const CompiledWorkload& w, std::uint64_t) const override {
    auto out = ac::find_all_naive(w.patterns(), w.text());
    ac::normalize_matches(out);
    return out;
  }
};

class NfaMatcher final : public Matcher {
 public:
  const std::string& name() const override {
    static const std::string n = "nfa";
    return n;
  }
  std::vector<ac::Match> run(const CompiledWorkload& w, std::uint64_t) const override {
    auto out = ac::find_all_nfa(w.automaton(), w.text());
    ac::normalize_matches(out);
    return out;
  }
};

class SerialMatcher final : public Matcher {
 public:
  const std::string& name() const override {
    static const std::string n = "serial";
    return n;
  }
  std::vector<ac::Match> run(const CompiledWorkload& w, std::uint64_t) const override {
    auto out = ac::find_all(w.dfa(), w.text());
    ac::normalize_matches(out);
    return out;
  }
};

/// CPU reference decomposition (fresh state per chunk + ownership rule),
/// with the chunk size drawn from the salt so successive iterations probe
/// different boundary positions.
class ChunkedMatcher final : public Matcher {
 public:
  const std::string& name() const override {
    static const std::string n = "chunked";
    return n;
  }
  std::vector<ac::Match> run(const CompiledWorkload& w, std::uint64_t salt) const override {
    if (w.text().empty()) return {};
    Rng rng(derive_seed(salt, /*stream=*/1));
    // Bias toward small chunks (boundaries everywhere) but occasionally use
    // a chunk larger than the whole text (single-chunk degenerate case).
    const std::uint64_t cap =
        rng.next_bool(0.25) ? w.text().size() + 16 : std::min<std::uint64_t>(w.text().size(), 64);
    const std::uint64_t chunk = rng.next_in(1, std::max<std::uint64_t>(1, cap));
    auto out = ac::find_all_chunked(w.dfa(), w.text(), chunk);
    ac::normalize_matches(out);
    return out;
  }
};

class ParallelMatcher final : public Matcher {
 public:
  const std::string& name() const override {
    static const std::string n = "parallel";
    return n;
  }
  std::vector<ac::Match> run(const CompiledWorkload& w, std::uint64_t salt) const override {
    static constexpr unsigned kThreadChoices[] = {1, 2, 3, 7, 16, 64};
    Rng rng(derive_seed(salt, /*stream=*/2));
    const unsigned threads = kThreadChoices[rng.next_below(std::size(kThreadChoices))];
    auto out = ac::find_all_parallel(w.dfa(), w.text(), threads);
    ac::normalize_matches(out);
    return out;
  }
};

/// Feeds the text in salt-derived random slices (including empty feeds and
/// 1-byte feeds) — every slice boundary is a potential straddle bug.
class StreamAdapter final : public Matcher {
 public:
  const std::string& name() const override {
    static const std::string n = "stream";
    return n;
  }
  std::vector<ac::Match> run(const CompiledWorkload& w, std::uint64_t salt) const override {
    ac::StreamMatcher stream(w.dfa());
    ac::CollectSink sink;
    const std::string_view text = w.text();
    Rng rng(derive_seed(salt, /*stream=*/3));
    std::size_t pos = 0;
    while (pos < text.size()) {
      std::size_t len = 0;
      switch (rng.next_below(4)) {
        case 0: len = 0; break;                          // empty feed
        case 1: len = 1; break;                          // byte-at-a-time
        case 2: len = 1 + rng.next_below(16); break;     // small slices
        default: len = 1 + rng.next_below(256); break;   // packet-sized
      }
      len = std::min(len, text.size() - pos);
      stream.feed(text.substr(pos, len), sink);
      pos += len;
    }
    auto out = std::move(sink.matches());
    ac::normalize_matches(out);
    return out;
  }
};

class CompressedMatcher final : public Matcher {
 public:
  const std::string& name() const override {
    static const std::string n = "compressed";
    return n;
  }
  std::vector<ac::Match> run(const CompiledWorkload& w, std::uint64_t) const override {
    ac::CollectSink sink;
    ac::match_compressed(w.compressed(), w.dfa(), w.text(), sink);
    auto out = std::move(sink.matches());
    ac::normalize_matches(out);
    return out;
  }
};

class PfacMatcher final : public Matcher {
 public:
  const std::string& name() const override {
    static const std::string n = "pfac";
    return n;
  }
  std::vector<ac::Match> run(const CompiledWorkload& w, std::uint64_t) const override {
    auto out = ac::find_all_pfac(w.pfac(), w.text());
    ac::normalize_matches(out);
    return out;
  }
};

// ---------------------------------------------------------------------------
// Simulated-GPU adapters
// ---------------------------------------------------------------------------

/// Smallest legal chunk for a dictionary: a multiple of 4 strictly larger
/// than the overlap (the kernels reject anything else), with a floor so
/// typical workloads still exercise many chunk boundaries.
std::uint32_t pick_chunk_bytes(const CompiledWorkload& w, std::uint32_t floor_bytes) {
  const std::uint32_t overlap = ac::required_overlap(w.dfa().max_pattern_length());
  const std::uint32_t chunk = std::max(floor_bytes, overlap + 1);
  return (chunk + 3) / 4 * 4;
}

/// Simulated device sized for this run: tables + text + match buffer, plus
/// slack for the 256-byte allocation alignment. Fresh per run so repeated
/// conformance iterations never leak device allocations into each other.
gpusim::DeviceMemory make_device(const CompiledWorkload& w, std::uint64_t threads,
                                std::uint32_t capacity, std::size_t table_bytes) {
  const std::size_t buffer = threads * (4 + 8ull * capacity);
  return gpusim::DeviceMemory((4u << 20) + w.text().size() + 2 * table_bytes +
                              2 * buffer);
}

gpusim::GpuConfig sim_config() {
  gpusim::GpuConfig cfg = gpusim::GpuConfig::gtx285();
  cfg.num_sms = 4;  // functional-mode runs simulate every block; keep it quick
  return cfg;
}

/// Runs `launch(capacity)` with doubling match capacity until the device
/// buffer stops overflowing (dense workloads like an all-'a' text overflow
/// the default). `Launch` returns a MatchBuffer::Collected.
template <typename Launch>
std::vector<ac::Match> collect_with_retry(const char* who, Launch&& launch) {
  for (std::uint32_t capacity = 64; capacity <= (1u << 14); capacity *= 4) {
    auto collected = launch(capacity);
    if (!collected.overflowed) {
      ac::normalize_matches(collected.matches);
      return std::move(collected.matches);
    }
  }
  ACGPU_CHECK(false, who << ": match buffer overflow at capacity " << (1u << 14));
  return {};
}

class GpuAcMatcher final : public Matcher {
 public:
  GpuAcMatcher(std::string name, kernels::Approach approach,
               kernels::StoreScheme scheme)
      : name_(std::move(name)), approach_(approach), scheme_(scheme) {}

  const std::string& name() const override { return name_; }

  std::vector<ac::Match> run(const CompiledWorkload& w, std::uint64_t) const override {
    if (w.text().empty()) return {};
    const gpusim::GpuConfig cfg = sim_config();
    kernels::AcLaunchSpec spec;
    spec.approach = approach_;
    spec.scheme = scheme_;
    spec.chunk_bytes = pick_chunk_bytes(w, 32);
    spec.threads_per_block = 64;
    spec.sim.mode = gpusim::SimMode::Functional;
    const std::uint64_t threads =
        (w.text().size() + spec.chunk_bytes - 1) / spec.chunk_bytes +
        spec.threads_per_block;
    return collect_with_retry(name_.c_str(), [&](std::uint32_t capacity) {
      spec.match_capacity = capacity;
      gpusim::DeviceMemory mem = make_device(w, threads, capacity, w.dfa().stt_bytes());
      const kernels::DeviceDfa ddfa(mem, w.dfa());
      const auto addr = kernels::upload_text(mem, w.text());
      return kernels::run_ac_kernel(cfg, mem, ddfa, addr, w.text().size(), spec)
          .matches;
    });
  }

 private:
  std::string name_;
  kernels::Approach approach_;
  kernels::StoreScheme scheme_;
};

class GpuCompressedMatcher final : public Matcher {
 public:
  const std::string& name() const override {
    static const std::string n = "gpu-compressed";
    return n;
  }
  std::vector<ac::Match> run(const CompiledWorkload& w, std::uint64_t) const override {
    if (w.text().empty()) return {};
    const gpusim::GpuConfig cfg = sim_config();
    kernels::CompressedLaunchSpec spec;
    spec.chunk_bytes = pick_chunk_bytes(w, 32);
    spec.threads_per_block = 64;
    spec.sim.mode = gpusim::SimMode::Functional;
    const std::uint64_t threads =
        (w.text().size() + spec.chunk_bytes - 1) / spec.chunk_bytes +
        spec.threads_per_block;
    return collect_with_retry("gpu-compressed", [&](std::uint32_t capacity) {
      spec.match_capacity = capacity;
      gpusim::DeviceMemory mem =
          make_device(w, threads, capacity, w.compressed().size_bytes() + (1u << 20));
      const kernels::DeviceCompressedDfa dcdfa(mem, w.compressed(), w.dfa());
      const auto addr = kernels::upload_text(mem, w.text());
      return kernels::run_compressed_kernel(cfg, mem, dcdfa, addr, w.text().size(),
                                            spec)
          .matches;
    });
  }
};

class GpuPfacMatcher final : public Matcher {
 public:
  const std::string& name() const override {
    static const std::string n = "gpu-pfac";
    return n;
  }
  std::vector<ac::Match> run(const CompiledWorkload& w, std::uint64_t) const override {
    if (w.text().empty()) return {};
    const gpusim::GpuConfig cfg = sim_config();
    kernels::PfacLaunchSpec spec;
    spec.threads_per_block = 64;
    spec.sim.mode = gpusim::SimMode::Functional;
    const std::uint64_t threads = w.text().size() + spec.threads_per_block;
    return collect_with_retry("gpu-pfac", [&](std::uint32_t capacity) {
      spec.match_capacity = capacity;
      gpusim::DeviceMemory mem =
          make_device(w, threads, capacity, w.pfac().stt().size_bytes());
      const kernels::DevicePfac dpfac(mem, w.pfac());
      const auto addr = kernels::upload_text(mem, w.text());
      return kernels::run_pfac_kernel(cfg, mem, dpfac, addr, w.text().size(), spec)
          .matches;
    });
  }
};

/// The batched multi-stream pipeline (src/pipeline/) in Functional mode.
/// The salt draws the stream count, the kernel variant, and a batch size
/// biased toward tiny batches, so successive iterations probe the stitch
/// logic at every batch-boundary offset across the AC and PFAC paths.
/// Overrides try_run: the pipeline reports Status instead of throwing, so
/// its own error codes reach the differential report intact.
class PipelineMatcher final : public Matcher {
 public:
  const std::string& name() const override {
    static const std::string n = "pipeline";
    return n;
  }

  std::vector<ac::Match> run(const CompiledWorkload& w, std::uint64_t salt) const override {
    return try_run(w, salt).value();  // throws acgpu::Error on a failed Status
  }

  Result<std::vector<ac::Match>> try_run(const CompiledWorkload& w,
                                         std::uint64_t salt) const override {
    if (w.text().empty()) return std::vector<ac::Match>{};
    Rng rng(derive_seed(salt, /*stream=*/7));
    pipeline::PipelineOptions opt;
    static constexpr pipeline::KernelVariant kVariants[] = {
        pipeline::KernelVariant::kShared,
        pipeline::KernelVariant::kGlobalOnly,
        pipeline::KernelVariant::kPfac,
    };
    opt.variant = kVariants[rng.next_below(std::size(kVariants))];
    opt.streams = 1 + static_cast<std::uint32_t>(rng.next_below(6));
    // Staging-geometry fuzz: shallow pools exercise the stream clamp and
    // buffer recycling, 0 the auto depth; the readback pool and the
    // duplex/legacy DMA split are drawn independently. All of it is pure
    // timing — matches must not move.
    opt.pool_depth = static_cast<std::uint32_t>(rng.next_below(5));
    opt.readback_depth = static_cast<std::uint32_t>(rng.next_below(3));
    opt.split_readback = !rng.next_bool(0.25);
    // Bias toward tiny batches (stitch boundaries everywhere) but
    // occasionally cover the whole text in a single batch.
    const std::uint64_t cap = rng.next_bool(0.25)
                                  ? w.text().size() + 16
                                  : std::min<std::uint64_t>(w.text().size(), 64);
    opt.batch_bytes = rng.next_in(1, std::max<std::uint64_t>(1, cap));
    opt.chunk_bytes = pick_chunk_bytes(w, 32);
    opt.threads_per_block = 64;
    opt.mode = gpusim::SimMode::Functional;

    const gpusim::GpuConfig cfg = sim_config();
    auto finish = [](pipeline::PipelineResult&& result) {
      ac::normalize_matches(result.matches);
      return std::move(result.matches);
    };
    for (std::uint32_t capacity = 64; capacity <= (1u << 14); capacity *= 4) {
      opt.match_capacity = capacity;
      opt.pfac_match_capacity = capacity;
      gpusim::DeviceMemory mem(64u << 20);
      if (opt.variant == pipeline::KernelVariant::kPfac) {
        const kernels::DevicePfac dpfac(mem, w.pfac());
        pipeline::MatchPipeline pipe(cfg, mem, dpfac, opt);
        auto r = pipe.run(w.text());
        if (!r.is_ok()) return r.status();
        if (!r.value().overflowed) return finish(std::move(r.value()));
      } else {
        const kernels::DeviceDfa ddfa(mem, w.dfa());
        pipeline::MatchPipeline pipe(cfg, mem, ddfa, opt);
        auto r = pipe.run(w.text());
        if (!r.is_ok()) return r.status();
        if (!r.value().overflowed) return finish(std::move(r.value()));
      }
    }
    return Status::capacity_exceeded(
        "pipeline: match buffer overflow at capacity 16384");
  }
};

/// The streaming session service (src/serve/) end to end: the text is fed
/// in salt-derived random slices (empty feeds, 1-byte feeds, packet-sized
/// feeds) so every slice boundary probes the session's boundary
/// continuation, while the engine variant, stream count, batch size, and
/// queue/coalesce knobs are drawn from the salt too. A salt-chosen decoy
/// session feeds interleaved traffic through the same service so the
/// superbatch partitioner is exercised across sessions. Like the pipeline
/// adapter, overrides try_run to forward the service's own Status codes.
class ServeMatcher final : public Matcher {
 public:
  const std::string& name() const override {
    static const std::string n = "serve";
    return n;
  }

  std::vector<ac::Match> run(const CompiledWorkload& w, std::uint64_t salt) const override {
    return try_run(w, salt).value();  // throws acgpu::Error on a failed Status
  }

  Result<std::vector<ac::Match>> try_run(const CompiledWorkload& w,
                                         std::uint64_t salt) const override {
    Rng rng(derive_seed(salt, /*stream=*/11));
    serve::ServeOptions opt;
    static constexpr pipeline::KernelVariant kVariants[] = {
        pipeline::KernelVariant::kShared,
        pipeline::KernelVariant::kGlobalOnly,
        pipeline::KernelVariant::kPfac,
    };
    opt.engine.variant = kVariants[rng.next_below(std::size(kVariants))];
    opt.engine.streams = 1 + static_cast<std::uint32_t>(rng.next_below(3));
    const std::uint64_t cap = rng.next_bool(0.25)
                                  ? w.text().size() + 16
                                  : std::min<std::uint64_t>(w.text().size(), 64);
    opt.engine.batch_bytes = rng.next_in(1, std::max<std::uint64_t>(1, cap));
    opt.engine.chunk_bytes = pick_chunk_bytes(w, 32);
    opt.engine.threads_per_block = 64;
    opt.engine.mode = gpusim::SimMode::Functional;
    opt.engine.gpu = sim_config();
    opt.engine.device_memory_bytes = 64u << 20;
    // Tiny bounds so admission control and coalescing both fire; kAutoFlush
    // keeps the adapter total (it scans inline instead of rejecting).
    opt.max_queue_chunks = 2 + static_cast<std::uint32_t>(rng.next_below(15));
    opt.coalesce_bytes = 1 + rng.next_below(4096);
    opt.admission = serve::AdmissionPolicy::kAutoFlush;

    auto service = serve::StreamService::create(w.patterns(), opt);
    if (!service.is_ok()) return service.status();
    serve::StreamService& srv = service.value();

    Result<serve::SessionId> id = srv.open();
    if (!id.is_ok()) return id.status();
    // Decoy stream interleaved through the same service: its chunks share
    // superbatches with the primary session's, so the partition filter must
    // keep the two streams' matches apart.
    std::optional<serve::SessionId> decoy;
    if (rng.next_bool(0.5)) {
      Result<serve::SessionId> d = srv.open();
      if (!d.is_ok()) return d.status();
      decoy = d.value();
    }

    const std::string_view text = w.text();
    std::size_t pos = 0;
    while (pos < text.size()) {
      std::size_t len = 0;
      switch (rng.next_below(4)) {
        case 0: len = 0; break;                          // empty feed
        case 1: len = 1; break;                          // byte-at-a-time
        case 2: len = 1 + rng.next_below(16); break;     // small slices
        default: len = 1 + rng.next_below(256); break;   // packet-sized
      }
      len = std::min(len, text.size() - pos);
      if (Status s = srv.feed(id.value(), text.substr(pos, len)); !s) return s;
      pos += len;
      if (decoy.has_value() && rng.next_bool(0.5)) {
        const std::size_t dlen =
            std::min<std::size_t>(1 + rng.next_below(64), text.size());
        if (Status s = srv.feed(*decoy, text.substr(0, dlen)); !s) return s;
      }
    }
    if (Status s = srv.drain(); !s) return s;
    Result<std::vector<ac::Match>> out = srv.poll(id.value());
    if (!out.is_ok()) return out.status();
    std::vector<ac::Match> matches = std::move(out).value();
    ac::normalize_matches(matches);
    return matches;
  }
};

/// End-to-end cluster adapter: drives the multi-device Router tier
/// (cluster/router.h). The salt draws the shard count from {1, 2, 4}, the
/// kernel variant/stream count/batch and queue knobs like the serve
/// adapter, and — on a coin flip when more than one shard is up — injects a
/// fail-stop device failure at a salt-chosen midpoint of the stream, so
/// roughly half of all conformance trials exercise the export -> import
/// session migration and its boundary-state carry. A second coin flip runs
/// the bulk scatter/gather scan() path instead of the session path, probing
/// the slab seam filter and the k-way merge. Overrides try_run to forward
/// the Router's own Status codes.
class RouterMatcher final : public Matcher {
 public:
  const std::string& name() const override {
    static const std::string n = "router";
    return n;
  }

  std::vector<ac::Match> run(const CompiledWorkload& w, std::uint64_t salt) const override {
    return try_run(w, salt).value();  // throws acgpu::Error on a failed Status
  }

  Result<std::vector<ac::Match>> try_run(const CompiledWorkload& w,
                                         std::uint64_t salt) const override {
    Rng rng(derive_seed(salt, /*stream=*/13));
    cluster::ClusterOptions opt;
    static constexpr std::uint32_t kDevices[] = {1, 2, 4};
    opt.devices = kDevices[rng.next_below(std::size(kDevices))];
    static constexpr pipeline::KernelVariant kVariants[] = {
        pipeline::KernelVariant::kShared,
        pipeline::KernelVariant::kGlobalOnly,
        pipeline::KernelVariant::kPfac,
    };
    opt.engine.variant = kVariants[rng.next_below(std::size(kVariants))];
    opt.engine.streams = 1 + static_cast<std::uint32_t>(rng.next_below(3));
    const std::uint64_t cap = rng.next_bool(0.25)
                                  ? w.text().size() + 16
                                  : std::min<std::uint64_t>(w.text().size(), 64);
    opt.engine.batch_bytes = rng.next_in(1, std::max<std::uint64_t>(1, cap));
    opt.engine.chunk_bytes = pick_chunk_bytes(w, 32);
    opt.engine.threads_per_block = 64;
    opt.engine.mode = gpusim::SimMode::Functional;
    opt.engine.gpu = sim_config();
    opt.engine.device_memory_bytes = 64u << 20;
    opt.max_queue_chunks = 2 + static_cast<std::uint32_t>(rng.next_below(15));
    opt.coalesce_bytes = 1 + rng.next_below(4096);
    opt.admission = serve::AdmissionPolicy::kAutoFlush;

    auto router = cluster::Router::create(w.patterns(), opt);
    if (!router.is_ok()) return router.status();
    cluster::Router& cl = router.value();
    const std::string_view text = w.text();
    const bool inject_failure = opt.devices > 1 && rng.next_bool(0.5);

    if (rng.next_bool(0.33)) {
      // Bulk scatter/gather path. A pre-scan failure shrinks the healthy
      // set, so the slab partition and seam filter re-derive for W-1.
      if (inject_failure) {
        const std::uint32_t victim =
            static_cast<std::uint32_t>(rng.next_below(opt.devices));
        if (Status s = cl.mark_failed(victim); !s) return s;
      }
      Result<cluster::ClusterScanResult> scan = cl.scan(text);
      if (!scan.is_ok()) return scan.status();
      return std::move(scan).value().matches;
    }

    Result<serve::SessionId> id = cl.open();
    if (!id.is_ok()) return id.status();
    // Decoy stream on another shard (or the same one when devices == 1):
    // cross-shard traffic must never bleed into the primary session.
    std::optional<serve::SessionId> decoy;
    if (rng.next_bool(0.5)) {
      Result<serve::SessionId> d = cl.open();
      if (!d.is_ok()) return d.status();
      decoy = d.value();
    }
    const std::size_t failure_at =
        inject_failure ? rng.next_below(text.size() + 1) : text.size() + 1;

    std::size_t pos = 0;
    bool failed_yet = false;
    for (;;) {
      if (inject_failure && !failed_yet && pos >= failure_at) {
        // Fail the primary session's CURRENT home mid-stream; the session
        // migrates with its carried boundary state and unpolled matches.
        Result<std::uint32_t> home = cl.shard_of(id.value());
        if (!home.is_ok()) return home.status();
        if (Status s = cl.mark_failed(home.value()); !s) return s;
        failed_yet = true;
      }
      if (pos >= text.size()) break;
      std::size_t len = 0;
      switch (rng.next_below(4)) {
        case 0: len = 0; break;                          // empty feed
        case 1: len = 1; break;                          // byte-at-a-time
        case 2: len = 1 + rng.next_below(16); break;     // small slices
        default: len = 1 + rng.next_below(256); break;   // packet-sized
      }
      len = std::min(len, text.size() - pos);
      if (Status s = cl.feed(id.value(), text.substr(pos, len)); !s) return s;
      pos += len;
      if (decoy.has_value() && rng.next_bool(0.5)) {
        const std::size_t dlen =
            std::min<std::size_t>(1 + rng.next_below(64), text.size());
        if (Status s = cl.feed(*decoy, text.substr(0, dlen)); !s) return s;
      }
    }
    if (Status s = cl.drain(); !s) return s;
    return cl.poll(id.value());
  }
};

/// Adaptive-dispatch adapter: drives the DispatchEngine facade
/// (dispatch/dispatcher.h). The salt draws the kernel variant, stream
/// count, batch size — and, crucially, the force policy from all five of
/// {auto, serial, parallel, gpu, worst}: whatever backend the cost model
/// (or the override) picks, the match multiset must be identical, which is
/// exactly the dispatcher's correctness contract — routing is a pure
/// timing decision, invisible to matches. Calibration probes are skipped
/// (analytic seed only) so Functional-mode trials stay fast. Overrides
/// try_run to forward the engine's own Status codes.
class DispatchMatcher final : public Matcher {
 public:
  const std::string& name() const override {
    static const std::string n = "dispatch";
    return n;
  }

  std::vector<ac::Match> run(const CompiledWorkload& w, std::uint64_t salt) const override {
    return try_run(w, salt).value();  // throws acgpu::Error on a failed Status
  }

  Result<std::vector<ac::Match>> try_run(const CompiledWorkload& w,
                                         std::uint64_t salt) const override {
    Rng rng(derive_seed(salt, /*stream=*/17));
    dispatch::DispatchEngineOptions opt;
    static constexpr pipeline::KernelVariant kVariants[] = {
        pipeline::KernelVariant::kShared,
        pipeline::KernelVariant::kGlobalOnly,
        pipeline::KernelVariant::kPfac,
    };
    opt.engine.variant = kVariants[rng.next_below(std::size(kVariants))];
    opt.engine.streams = 1 + static_cast<std::uint32_t>(rng.next_below(3));
    const std::uint64_t cap = rng.next_bool(0.25)
                                  ? w.text().size() + 16
                                  : std::min<std::uint64_t>(w.text().size(), 64);
    opt.engine.batch_bytes = rng.next_in(1, std::max<std::uint64_t>(1, cap));
    opt.engine.chunk_bytes = pick_chunk_bytes(w, 32);
    opt.engine.threads_per_block = 64;
    opt.engine.mode = gpusim::SimMode::Functional;
    opt.engine.gpu = sim_config();
    opt.engine.device_memory_bytes = 64u << 20;
    opt.calibrate = false;
    static constexpr dispatch::ForcePolicy kPolicies[] = {
        dispatch::ForcePolicy::kAuto,     dispatch::ForcePolicy::kSerial,
        dispatch::ForcePolicy::kParallel, dispatch::ForcePolicy::kGpu,
        dispatch::ForcePolicy::kWorst,
    };
    opt.dispatcher.force = kPolicies[rng.next_below(std::size(kPolicies))];

    for (std::uint32_t capacity = 64; capacity <= (1u << 14); capacity *= 4) {
      opt.engine.match_capacity = capacity;
      Result<dispatch::DispatchEngine> engine =
          dispatch::DispatchEngine::create(w.patterns(), opt);
      if (!engine.is_ok()) return engine.status();
      Result<dispatch::DispatchResult> scan = engine.value().scan(w.text());
      if (!scan.is_ok()) return scan.status();
      if (!scan.value().overflowed) return std::move(scan).value().matches;
    }
    return Status::internal("dispatch adapter overflowed at every capacity");
  }
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

std::unique_ptr<Matcher> instantiate(std::string_view name) {
  if (name == "naive") return std::make_unique<NaiveMatcher>();
  if (name == "nfa") return std::make_unique<NfaMatcher>();
  if (name == "serial") return std::make_unique<SerialMatcher>();
  if (name == "chunked") return std::make_unique<ChunkedMatcher>();
  if (name == "parallel") return std::make_unique<ParallelMatcher>();
  if (name == "stream") return std::make_unique<StreamAdapter>();
  if (name == "compressed") return std::make_unique<CompressedMatcher>();
  if (name == "pfac") return std::make_unique<PfacMatcher>();
  if (name == "gpu-global")
    return std::make_unique<GpuAcMatcher>("gpu-global", kernels::Approach::kGlobalOnly,
                                          kernels::StoreScheme::kDiagonal);
  if (name == "gpu-shared")
    return std::make_unique<GpuAcMatcher>("gpu-shared", kernels::Approach::kShared,
                                          kernels::StoreScheme::kDiagonal);
  if (name == "gpu-shared-naive")
    return std::make_unique<GpuAcMatcher>("gpu-shared-naive",
                                          kernels::Approach::kShared,
                                          kernels::StoreScheme::kCoalescedNaive);
  if (name == "gpu-compressed") return std::make_unique<GpuCompressedMatcher>();
  if (name == "gpu-pfac") return std::make_unique<GpuPfacMatcher>();
  if (name == "pipeline") return std::make_unique<PipelineMatcher>();
  if (name == "serve") return std::make_unique<ServeMatcher>();
  if (name == "router") return std::make_unique<RouterMatcher>();
  if (name == "dispatch") return std::make_unique<DispatchMatcher>();
  return nullptr;
}

}  // namespace

const std::vector<std::string>& registered_matcher_names() {
  static const std::vector<std::string> names = {
      "naive",      "nfa",        "serial",         "chunked",
      "parallel",   "stream",     "compressed",     "pfac",
      "gpu-global", "gpu-shared", "gpu-shared-naive", "gpu-compressed",
      "gpu-pfac",   "pipeline",   "serve",          "router",
      "dispatch",
  };
  return names;
}

std::unique_ptr<Matcher> make_matcher(std::string_view name) {
  auto matcher = instantiate(name);
  if (!matcher) {
    std::ostringstream known;
    for (const auto& n : registered_matcher_names()) known << " " << n;
    ACGPU_CHECK(false, "unknown matcher '" << name << "'; registered:" << known.str());
  }
  return matcher;
}

std::vector<std::unique_ptr<Matcher>> make_all_matchers() {
  std::vector<std::unique_ptr<Matcher>> out;
  for (const auto& name : registered_matcher_names())
    out.push_back(make_matcher(name));
  return out;
}

std::vector<std::unique_ptr<Matcher>> make_matchers(
    const std::vector<std::string>& names) {
  if (names.empty()) return make_all_matchers();
  std::vector<std::unique_ptr<Matcher>> out;
  for (const auto& name : names) out.push_back(make_matcher(name));
  return out;
}

}  // namespace acgpu::oracle
