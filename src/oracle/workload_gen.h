// Seeded deterministic workload generator for the conformance oracle.
//
// Workloads cycle through hand-designed families that target the places
// where reformulated matchers historically diverge: patterns straddling
// chunk/overlap boundaries at X = max pattern length, suffix-of-suffix
// output chains, patterns longer than a thread chunk, degenerate alphabets
// (empty/1-byte texts, a single repeated byte, all 256 byte values
// including 0x00 and 0xFF), and adversarial overlap-heavy dictionaries.
// generate_workload(seed, i) is a pure function — the same (seed, i) pair
// always yields byte-identical patterns and text, so any CLI-reported
// divergence replays exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "oracle/matcher.h"

namespace acgpu::oracle {

/// Number of distinct workload families the generator cycles through.
std::size_t workload_family_count();

/// The family a given iteration draws from (iteration % family count) —
/// exposed so tests can target one family.
const char* workload_family_name(std::uint64_t iteration);

/// Deterministically generates workload `iteration` of a conformance run
/// rooted at `seed`. Guarantees: at least one non-empty pattern; every
/// pattern is at most 120 bytes (so the shared-memory kernels' staged block
/// always fits); the text may be empty.
Workload generate_workload(std::uint64_t seed, std::uint64_t iteration);

}  // namespace acgpu::oracle
