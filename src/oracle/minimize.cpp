#include "oracle/minimize.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"

namespace acgpu::oracle {
namespace {

/// Evaluation budgeter + predicate: does the candidate still diverge?
class Shrinker {
 public:
  Shrinker(const Matcher& matcher, std::uint64_t salt, const MinimizeOptions& options)
      : matcher_(matcher), salt_(salt), options_(options) {}

  /// Returns the divergence if the candidate reproduces one, nullopt
  /// otherwise (including when the candidate fails to compile or the
  /// matcher throws — a *different* failure is not the bug being shrunk).
  std::optional<Divergence> diverges(const Workload& candidate) {
    if (candidate.patterns.empty()) return std::nullopt;
    if (++evaluations_ > options_.max_evaluations) return std::nullopt;
    try {
      const CompiledWorkload compiled(candidate);
      const auto reference = reference_matches(compiled);
      const auto got = matcher_.run(compiled, salt_);
      return diff_matches(compiled, matcher_.name(), salt_, reference, got);
    } catch (const Error&) {
      return std::nullopt;
    }
  }

  bool budget_left() const { return evaluations_ <= options_.max_evaluations; }

 private:
  const Matcher& matcher_;
  std::uint64_t salt_;
  const MinimizeOptions& options_;
  std::size_t evaluations_ = 0;
};

/// Greedy pattern-set reduction: drop one pattern at a time, keeping every
/// drop that still diverges; repeats until no single drop survives.
bool shrink_patterns(Workload& w, Shrinker& shrink) {
  bool progressed = false;
  bool changed = true;
  while (changed && w.patterns.size() > 1) {
    changed = false;
    for (std::size_t i = 0; i < w.patterns.size(); ++i) {
      Workload candidate = w;
      candidate.patterns.erase(candidate.patterns.begin() +
                               static_cast<std::ptrdiff_t>(i));
      if (shrink.diverges(candidate)) {
        w = std::move(candidate);
        progressed = changed = true;
        break;  // indices shifted; rescan
      }
    }
  }
  return progressed;
}

/// Trims the text from the back, then the front, using power-of-two step
/// sizes. Interior removals (shrink_text below) shift every later match
/// offset, which kills offset-dependent divergences — the chunk-boundary
/// bug class this harness targets. Power-of-two front trims keep every
/// match end's residue modulo any power-of-two chunk size intact, so those
/// divergences survive aggressive trimming.
bool shrink_text_ends(Workload& w, Shrinker& shrink) {
  bool progressed = false;
  for (bool from_back : {true, false}) {
    std::size_t step = 1;
    while (step * 2 <= w.text.size()) step *= 2;
    while (step >= 1 && !w.text.empty()) {
      if (step > w.text.size()) {
        step /= 2;
        continue;
      }
      Workload candidate = w;
      if (from_back)
        candidate.text.erase(candidate.text.size() - step, step);
      else
        candidate.text.erase(0, step);
      if (shrink.diverges(candidate)) {
        w = std::move(candidate);
        progressed = true;  // keep the same step while it works
      } else {
        step /= 2;
      }
      if (!shrink.budget_left()) return progressed;
    }
  }
  return progressed;
}

/// ddmin-style text reduction: remove ever-smaller chunks while the
/// divergence persists, down to single bytes.
bool shrink_text(Workload& w, Shrinker& shrink) {
  bool progressed = false;
  std::size_t granularity = 2;
  while (!w.text.empty() && granularity <= std::max<std::size_t>(2, w.text.size())) {
    const std::size_t chunk =
        std::max<std::size_t>(1, (w.text.size() + granularity - 1) / granularity);
    bool removed = false;
    for (std::size_t begin = 0; begin < w.text.size(); begin += chunk) {
      Workload candidate = w;
      candidate.text.erase(begin, chunk);
      if (shrink.diverges(candidate)) {
        w = std::move(candidate);
        progressed = removed = true;
        break;  // layout changed; restart this granularity
      }
    }
    if (!removed) {
      if (chunk == 1) break;
      granularity *= 2;
    }
    if (!shrink.budget_left()) break;
  }
  return progressed;
}

/// Pattern truncation: trim bytes off either end of each pattern while the
/// divergence persists (shorter patterns make the reproducer easier to
/// reason about even when none can be dropped outright).
bool shrink_pattern_bytes(Workload& w, Shrinker& shrink) {
  bool progressed = false;
  for (std::size_t i = 0; i < w.patterns.size(); ++i) {
    for (bool from_back : {true, false}) {
      while (w.patterns[i].size() > 1) {
        Workload candidate = w;
        if (from_back)
          candidate.patterns[i].pop_back();
        else
          candidate.patterns[i].erase(0, 1);
        if (!shrink.diverges(candidate)) break;
        w = std::move(candidate);
        progressed = true;
      }
    }
  }
  return progressed;
}

void append_octal(std::string& out, std::string_view bytes) {
  for (const char c : bytes) {
    const auto b = static_cast<unsigned>(static_cast<unsigned char>(c));
    out += '\\';
    out += static_cast<char>('0' + ((b >> 6) & 7));
    out += static_cast<char>('0' + ((b >> 3) & 7));
    out += static_cast<char>('0' + (b & 7));
  }
}

/// Identifier-safe content hash so pasted tests get stable, unique names.
std::uint64_t fingerprint(const Reproducer& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;
    h *= 0x100000001b3ULL;
  };
  mix(r.matcher);
  for (const auto& p : r.workload.patterns) mix(p);
  mix(r.workload.text);
  return h;
}

}  // namespace

std::optional<Reproducer> minimize_divergence(const Workload& workload,
                                              const Matcher& matcher,
                                              std::uint64_t salt,
                                              const MinimizeOptions& options) {
  Shrinker shrink(matcher, salt, options);
  Workload best = workload;
  auto divergence = shrink.diverges(best);
  if (!divergence) return std::nullopt;

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    bool progressed = false;
    progressed |= shrink_patterns(best, shrink);
    progressed |= shrink_text_ends(best, shrink);
    progressed |= shrink_text(best, shrink);
    progressed |= shrink_pattern_bytes(best, shrink);
    if (!progressed || !shrink.budget_left()) break;
  }

  // Recompute the divergence on the final workload so the report matches it.
  Shrinker confirm(matcher, salt, options);
  divergence = confirm.diverges(best);
  ACGPU_CHECK(divergence.has_value(),
              "minimizer invariant violated: shrunk workload no longer diverges");
  best.name = "minimized:" + workload.name;
  return Reproducer{std::move(best), matcher.name(), salt, std::move(*divergence)};
}

std::string to_cpp_test(const Reproducer& r) {
  std::ostringstream os;
  os << "// Minimized by the conformance oracle (" << r.divergence.workload
     << "). Paste into tests/ and keep.\n";
  char name[64];
  std::snprintf(name, sizeof name, "%016llx",
                static_cast<unsigned long long>(fingerprint(r)));
  std::string matcher_id = r.matcher;
  std::replace(matcher_id.begin(), matcher_id.end(), '-', '_');
  os << "TEST(ConformanceRegression, " << matcher_id << "_" << name << ") {\n";
  os << "  const std::vector<std::string> patterns = {\n";
  for (const auto& p : r.workload.patterns) {
    std::string lit;
    append_octal(lit, p);
    os << "      std::string(\"" << lit << "\", " << p.size() << "),\n";
  }
  os << "  };\n";
  std::string text_lit;
  append_octal(text_lit, r.workload.text);
  os << "  const std::string text(\"" << text_lit << "\", " << r.workload.text.size()
     << ");\n";
  os << "  const acgpu::oracle::CompiledWorkload workload(\n"
     << "      acgpu::oracle::Workload{\"regression\", patterns, text});\n";
  os << "  const auto matcher = acgpu::oracle::make_matcher(\"" << r.matcher
     << "\");\n";
  os << "  EXPECT_EQ(matcher->run(workload, " << r.salt << "ULL),\n"
     << "            acgpu::oracle::reference_matches(workload));\n";
  os << "}\n";
  return os.str();
}

}  // namespace acgpu::oracle
