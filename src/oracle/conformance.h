// Top-level conformance loop: generate seeded workloads, run them through
// every registered matcher differentially, optionally minimize each
// divergence to a reproducer. The library behind examples/ac_conformance
// and the tier-1 conformance smoke test.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "oracle/differential.h"
#include "oracle/minimize.h"

namespace acgpu::oracle {

struct ConformanceOptions {
  std::uint64_t seed = 42;
  std::uint64_t iterations = 100;
  /// Registered matcher names to run; empty means all of them.
  std::vector<std::string> matchers;
  /// Shrink each divergence to a minimal reproducer (slower on failure,
  /// free when everything conforms).
  bool minimize = false;
  /// Stop after this many diverging (workload, matcher) pairs.
  std::size_t max_failures = 10;
  /// Progress/divergence log (nullptr = silent).
  std::ostream* log = nullptr;
};

struct ConformanceResult {
  std::uint64_t iterations = 0;        ///< workloads executed
  std::uint64_t comparisons = 0;       ///< matcher runs diffed
  std::uint64_t reference_matches = 0; ///< total matches in the references
  std::vector<Divergence> divergences;
  std::vector<MatcherFailure> failures;  ///< adapters that errored outright
  std::vector<Reproducer> reproducers;  ///< parallel to divergences when minimizing
  bool ok() const { return divergences.empty() && failures.empty(); }
};

/// Runs the loop with the registry's adapters (options.matchers selects).
ConformanceResult run_conformance(const ConformanceOptions& options);

/// Same loop over caller-supplied adapters — how tests inject a broken
/// matcher and assert the harness catches it.
ConformanceResult run_conformance(const ConformanceOptions& options,
                                  const std::vector<const Matcher*>& matchers);

}  // namespace acgpu::oracle
