#include "oracle/differential.h"

#include <algorithm>
#include <sstream>

#include "ac/serial_matcher.h"

namespace acgpu::oracle {
namespace {

/// Serial DFA state after consuming text[0..offset] (inclusive).
std::int32_t state_after(const CompiledWorkload& workload, std::uint64_t offset) {
  const std::string_view text = workload.text();
  if (text.empty()) return 0;
  const std::size_t end = std::min<std::size_t>(offset + 1, text.size());
  std::int32_t state = 0;
  for (std::size_t i = 0; i < end; ++i)
    state = workload.dfa().next(state, static_cast<std::uint8_t>(text[i]));
  return state;
}

}  // namespace

std::optional<Divergence> diff_matches(const CompiledWorkload& workload,
                                       const std::string& matcher_name,
                                       std::uint64_t salt,
                                       const std::vector<ac::Match>& reference,
                                       const std::vector<ac::Match>& got) {
  const std::size_t common = std::min(reference.size(), got.size());
  std::size_t index = common;
  for (std::size_t i = 0; i < common; ++i) {
    if (reference[i] != got[i]) {
      index = i;
      break;
    }
  }
  if (index == common && reference.size() == got.size()) return std::nullopt;

  Divergence d;
  d.workload = workload.name();
  d.matcher = matcher_name;
  d.salt = salt;
  d.index = index;
  if (index < reference.size()) d.expected = reference[index];
  if (index < got.size()) d.got = got[index];
  d.reference_count = reference.size();
  d.matcher_count = got.size();
  std::uint64_t offset = 0;
  if (d.expected && d.got)
    offset = std::min(d.expected->end, d.got->end);
  else if (d.expected)
    offset = d.expected->end;
  else if (d.got)
    offset = d.got->end;
  if (!workload.text().empty())
    offset = std::min<std::uint64_t>(offset, workload.text().size() - 1);
  d.byte_offset = offset;
  d.dfa_state = state_after(workload, offset);
  return d;
}

std::string describe(const Divergence& d) {
  auto render = [](const std::optional<ac::Match>& m) {
    if (!m) return std::string("<none>");
    std::ostringstream os;
    os << "(end=" << m->end << ", pattern=" << m->pattern << ")";
    return os.str();
  };
  std::ostringstream os;
  os << d.matcher << " diverges from serial reference on " << d.workload
     << " (salt " << d.salt << "): at sorted index " << d.index << " expected "
     << render(d.expected) << " got " << render(d.got) << "; counts "
     << d.reference_count << " vs " << d.matcher_count << "; byte offset "
     << d.byte_offset << ", DFA state " << d.dfa_state;
  return os.str();
}

std::string describe(const MatcherFailure& f) {
  std::ostringstream os;
  os << f.matcher << " failed on " << f.workload << " (salt " << f.salt
     << "): " << f.status.to_string();
  return os.str();
}

DifferentialReport run_differential(const CompiledWorkload& workload,
                                    const std::vector<const Matcher*>& matchers,
                                    std::uint64_t salt) {
  DifferentialReport report;
  const std::vector<ac::Match> reference = reference_matches(workload);
  report.reference_count = reference.size();
  for (const Matcher* matcher : matchers) {
    Result<std::vector<ac::Match>> got = matcher->try_run(workload, salt);
    ++report.matchers_run;
    if (!got.is_ok()) {
      report.failures.push_back(
          MatcherFailure{workload.name(), matcher->name(), salt, got.status()});
      continue;
    }
    if (auto d =
            diff_matches(workload, matcher->name(), salt, reference, got.value()))
      report.divergences.push_back(std::move(*d));
  }
  return report;
}

}  // namespace acgpu::oracle
