#include "oracle/conformance.h"

#include <ostream>

#include "oracle/workload_gen.h"
#include "util/rng.h"

namespace acgpu::oracle {

ConformanceResult run_conformance(const ConformanceOptions& options,
                                  const std::vector<const Matcher*>& matchers) {
  ConformanceResult result;
  for (std::uint64_t i = 0; i < options.iterations; ++i) {
    const Workload workload = generate_workload(options.seed, i);
    const std::uint64_t salt = derive_seed(options.seed, ~i);
    const CompiledWorkload compiled(workload);
    const DifferentialReport report = run_differential(compiled, matchers, salt);
    ++result.iterations;
    result.comparisons += report.matchers_run;
    result.reference_matches += report.reference_count;
    if (options.log && (i + 1) % 50 == 0)
      *options.log << "  ... " << (i + 1) << "/" << options.iterations
                   << " workloads, " << result.comparisons << " comparisons, "
                   << result.divergences.size() << " divergences\n";
    for (const MatcherFailure& f : report.failures) {
      if (options.log) *options.log << "FAILURE: " << describe(f) << "\n";
      result.failures.push_back(f);
      if (result.divergences.size() + result.failures.size() >=
          options.max_failures)
        return result;
    }
    for (const Divergence& d : report.divergences) {
      if (options.log) *options.log << "DIVERGENCE: " << describe(d) << "\n";
      result.divergences.push_back(d);
      if (options.minimize) {
        const Matcher* diverged = nullptr;
        for (const Matcher* m : matchers)
          if (m->name() == d.matcher) diverged = m;
        if (auto repro =
                diverged ? minimize_divergence(workload, *diverged, salt)
                         : std::nullopt) {
          if (options.log)
            *options.log << "minimized to " << repro->workload.patterns.size()
                         << " pattern(s), " << repro->workload.text.size()
                         << "-byte text:\n"
                         << to_cpp_test(*repro);
          result.reproducers.push_back(std::move(*repro));
        }
      }
      if (result.divergences.size() + result.failures.size() >=
          options.max_failures)
        return result;
    }
  }
  return result;
}

ConformanceResult run_conformance(const ConformanceOptions& options) {
  const auto owned = make_matchers(options.matchers);
  std::vector<const Matcher*> matchers;
  matchers.reserve(owned.size());
  for (const auto& m : owned) matchers.push_back(m.get());
  return run_conformance(options, matchers);
}

}  // namespace acgpu::oracle
