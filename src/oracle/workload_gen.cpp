#include "oracle/workload_gen.h"

#include <algorithm>
#include <string>

#include "util/rng.h"
#include "workload/markov_corpus.h"
#include "workload/pattern_extract.h"

namespace acgpu::oracle {
namespace {

/// The GPU adapters' chunk floor (oracle/matchers.cpp); several families
/// deliberately plant patterns across multiples of it.
constexpr std::size_t kChunkFloor = 32;
/// Pattern-length ceiling keeping (threads_per_block + 1) * chunk inside the
/// 16 KB shared memory of the simulated SM.
constexpr std::size_t kMaxPatternLen = 120;

std::string random_bytes(Rng& rng, std::size_t len, std::uint32_t alphabet,
                         char base = 'a') {
  std::string s(len, base);
  for (auto& c : s)
    c = static_cast<char>(base + static_cast<char>(rng.next_below(alphabet)));
  return s;
}

/// Natural-language corpus with patterns extracted from it (the paper's own
/// methodology) — the "realistic" family.
Workload gen_corpus(Rng& rng) {
  const std::size_t bytes = 2000 + rng.next_below(6000);
  std::string text = workload::make_corpus(bytes, rng.next_u64());
  workload::ExtractConfig ec;
  ec.count = static_cast<std::uint32_t>(8 + rng.next_below(40));
  ec.min_length = static_cast<std::uint32_t>(2 + rng.next_below(3));
  ec.max_length = ec.min_length + static_cast<std::uint32_t>(rng.next_below(12));
  ec.seed = rng.next_u64();
  ec.word_aligned = rng.next_bool(0.5);
  const ac::PatternSet ps = workload::extract_patterns(text, ec);
  return {"corpus", {ps.begin(), ps.end()}, std::move(text)};
}

/// Patterns planted to straddle every multiple of the GPU chunk floor at
/// every phase (start offsets 1..len-1 before the boundary) — the paper's
/// X-overlap rule is exercised on each one.
Workload gen_boundary(Rng& rng) {
  const std::size_t len = 3 + rng.next_below(10);
  const std::string pattern = random_bytes(rng, len, 4, 'p');
  std::string filler_pattern = random_bytes(rng, 2 + rng.next_below(4), 4, 'a');
  std::string text = random_bytes(rng, kChunkFloor * (8 + rng.next_below(24)), 4, 'a');
  for (std::size_t boundary = kChunkFloor; boundary + len < text.size();
       boundary += kChunkFloor) {
    // Straddle: start `back` bytes before the boundary, 1 <= back < len.
    const std::size_t back = 1 + rng.next_below(len - 1);
    if (boundary >= back) text.replace(boundary - back, len, pattern);
  }
  return {"boundary", {pattern, std::move(filler_pattern)}, std::move(text)};
}

/// Suffix-of-suffix output chains: every suffix of one base string is its
/// own pattern, so reaching the deep state must emit the whole chain via
/// the failure-closed output sets.
Workload gen_suffix_chain(Rng& rng) {
  const std::size_t len = 4 + rng.next_below(12);
  const std::string base = random_bytes(rng, len, 3, 's');
  std::vector<std::string> patterns;
  for (std::size_t l = 1; l <= base.size(); ++l)
    patterns.push_back(base.substr(base.size() - l));
  std::string text;
  const std::size_t reps = 4 + rng.next_below(60);
  for (std::size_t r = 0; r < reps; ++r) {
    text += random_bytes(rng, rng.next_below(2 * kChunkFloor), 3, 's');
    text += base;
  }
  return {"suffix-chain", std::move(patterns), std::move(text)};
}

/// One-symbol alphabet: maximal overlap density (every position matches
/// every pattern), the classic match-buffer / dedup stress.
Workload gen_single_byte(Rng& rng) {
  const char byte = rng.next_bool(0.5) ? 'a' : static_cast<char>(0x00);
  std::vector<std::string> patterns;
  const std::size_t kinds = 1 + rng.next_below(6);
  for (std::size_t k = 1; k <= kinds; ++k)
    patterns.emplace_back(k, byte);
  std::string text(1 + rng.next_below(1500), byte);
  return {"single-byte", std::move(patterns), std::move(text)};
}

/// Full 256-value alphabet including 0x00 and 0xFF — the 257-column STT's
/// byte<->column mapping and the kernels' padding handling are on trial.
Workload gen_full_alphabet(Rng& rng) {
  std::string text = random_bytes(rng, 512 + rng.next_below(2048), 256,
                                  static_cast<char>(0));
  // Guarantee the extremes appear, in matchable context.
  const std::string extremes = {static_cast<char>(0x00), static_cast<char>(0xFF),
                                static_cast<char>(0x00), static_cast<char>(0xFF)};
  text.insert(rng.next_below(text.size()), extremes);
  std::vector<std::string> patterns = {extremes.substr(0, 2), extremes.substr(1, 2)};
  const std::size_t extracted = 4 + rng.next_below(12);
  for (std::size_t k = 0; k < extracted; ++k) {
    const std::size_t len = 1 + rng.next_below(6);
    const std::size_t pos = rng.next_below(text.size() - len);
    patterns.push_back(text.substr(pos, len));
  }
  return {"full-alphabet", std::move(patterns), std::move(text)};
}

/// Patterns longer than a GPU thread chunk (the adapters must grow the
/// chunk to keep overlap < chunk; the decomposition math is the target).
Workload gen_long_pattern(Rng& rng) {
  const std::size_t len =
      kChunkFloor + 8 + rng.next_below(kMaxPatternLen - kChunkFloor - 8);
  const std::string pattern = random_bytes(rng, len, 3, 'L');
  std::string text = random_bytes(rng, len * (4 + rng.next_below(12)), 3, 'L');
  const std::size_t plants = 2 + rng.next_below(5);
  for (std::size_t p = 0; p < plants; ++p)
    text.replace(rng.next_below(text.size() - len), len, pattern);
  std::string probe = pattern.substr(rng.next_below(len / 2), 2 + rng.next_below(6));
  return {"long-pattern", {pattern, std::move(probe)}, std::move(text)};
}

/// Degenerate texts: empty, one byte, and texts at/near the chunk floor.
Workload gen_tiny_text(Rng& rng) {
  static constexpr std::size_t kSizes[] = {0,  1,  2,  3,  7, kChunkFloor - 1,
                                           kChunkFloor, kChunkFloor + 1, 40};
  const std::size_t size = kSizes[rng.next_below(std::size(kSizes))];
  std::vector<std::string> patterns;
  const std::size_t kinds = 1 + rng.next_below(4);
  for (std::size_t k = 0; k < kinds; ++k)
    patterns.push_back(random_bytes(rng, 1 + rng.next_below(5), 2, 'a'));
  std::string text = random_bytes(rng, size, 2, 'a');
  return {"tiny-text", std::move(patterns), std::move(text)};
}

/// Adversarial overlap-heavy dictionary over a two-symbol alphabet: dense
/// cross-pattern overlaps, heavy failure-link traffic, many same-end
/// multi-pattern emissions.
Workload gen_overlap_heavy(Rng& rng) {
  std::vector<std::string> patterns;
  const std::size_t count = 6 + rng.next_below(30);
  for (std::size_t k = 0; k < count; ++k)
    patterns.push_back(random_bytes(rng, 1 + rng.next_below(8), 2, 'a'));
  std::string text = random_bytes(rng, 256 + rng.next_below(4096), 2, 'a');
  return {"overlap-heavy", std::move(patterns), std::move(text)};
}

using Family = Workload (*)(Rng&);
constexpr Family kFamilies[] = {
    gen_corpus,       gen_boundary,     gen_suffix_chain, gen_single_byte,
    gen_full_alphabet, gen_long_pattern, gen_tiny_text,    gen_overlap_heavy,
};
constexpr const char* kFamilyNames[] = {
    "corpus",        "boundary",     "suffix-chain", "single-byte",
    "full-alphabet", "long-pattern", "tiny-text",    "overlap-heavy",
};

}  // namespace

std::size_t workload_family_count() { return std::size(kFamilies); }

const char* workload_family_name(std::uint64_t iteration) {
  return kFamilyNames[iteration % std::size(kFamilies)];
}

Workload generate_workload(std::uint64_t seed, std::uint64_t iteration) {
  Rng rng(derive_seed(seed, iteration));
  Workload w = kFamilies[iteration % std::size(kFamilies)](rng);
  // Two appends, not operator+: the temporary-concat form trips a GCC 12
  // -Wrestrict false positive (PR 105651) under -Werror.
  w.name += '#';
  w.name += std::to_string(iteration);
  return w;
}

}  // namespace acgpu::oracle
