// Umbrella header for the acgpu library.
//
// acgpu reproduces "High Throughput Parallel Implementation of Aho-Corasick
// Algorithm on a GPU" (Tran, Lee, Hong, Choi — IPPS 2013): a complete
// Aho-Corasick toolkit (ac/), a discrete-event SIMT GPU simulator standing
// in for the paper's GTX 285 (gpusim/), the paper's two matching kernels and
// the PFAC variant (kernels/), the batched multi-stream matching pipeline and
// the acgpu::Engine facade (pipeline/), the adaptive backend dispatcher with
// its cost model and offline autotuner (dispatch/), the streaming session
// service for stateful cross-chunk scanning (serve/), the multi-device
// scatter/gather router tier sharding sessions and bulk scans across N
// simulated devices (cluster/), a Core2-class serial timing model
// (cpumodel/), workload generators (workload/), the evaluation harness that
// regenerates the paper's figures (harness/), and the cross-matcher
// differential conformance oracle (oracle/).
#pragma once

// ---------------------------------------------------------------------------
// Public API. acgpu::Engine (pipeline/engine.h) is the supported way to use
// the library: compile patterns once, scan arbitrarily large inputs through
// the batched multi-stream pipeline. The ac/ toolkit is public for host-side
// matching and automaton inspection.
// ---------------------------------------------------------------------------
#include "ac/automaton.h"
#include "ac/chunking.h"
#include "ac/compressed_stt.h"
#include "ac/dfa.h"
#include "ac/match.h"
#include "ac/naive_matcher.h"
#include "ac/nfa_matcher.h"
#include "ac/parallel_matcher.h"
#include "ac/pattern_set.h"
#include "ac/pfac.h"
#include "ac/serial_matcher.h"
#include "ac/stream_matcher.h"
#include "ac/stt_layout.h"
#include "ac/trie.h"
#include "cluster/merge.h"
#include "cluster/router.h"
#include "dispatch/autotuner.h"
#include "dispatch/cost_model.h"
#include "dispatch/dispatcher.h"
#include "dispatch/signature.h"
#include "dispatch/tune_cache.h"
#include "pipeline/device.h"
#include "pipeline/engine.h"
#include "pipeline/pipeline.h"
#include "pipeline/telemetry_export.h"
#include "serve/scheduler.h"
#include "serve/service.h"
#include "serve/session.h"
#include "serve/session_manager.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/health.h"
#include "telemetry/json.h"
#include "telemetry/logger.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/regression.h"
#include "telemetry/trace.h"
#include "telemetry/trace_context.h"
#include "util/arg_parser.h"
#include "util/byte_units.h"
#include "util/csv.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/table.h"

// ---------------------------------------------------------------------------
// Internal API. Everything below is the machinery behind the facade —
// exposed for the harness, benches, tests, and ablation studies, but not a
// stability surface. In particular the direct kernel-launch entry points
// (kernels::run_ac_kernel, kernels::run_pfac_kernel, and their _stream
// variants) bypass the pipeline's batching, stitching, and device-memory
// management: new code should go through acgpu::Engine instead (see the
// migration notes in README.md).
// ---------------------------------------------------------------------------
#include "cpumodel/cache_model.h"
#include "cpumodel/serial_timing.h"
#include "gpusim/config.h"
#include "gpusim/coalescer.h"
#include "gpusim/device_memory.h"
#include "gpusim/launcher.h"
#include "gpusim/metrics.h"
#include "gpusim/scheduler.h"
#include "gpusim/shared_memory.h"
#include "gpusim/stream.h"
#include "gpusim/texture.h"
#include "gpusim/texture_cache.h"
#include "harness/experiment.h"
#include "harness/figures.h"
#include "harness/report.h"
#include "harness/result_cache.h"
#include "kernels/ac_kernel.h"      // internal: use acgpu::Engine
#include "kernels/compressed_kernel.h"  // internal: use acgpu::Engine
#include "kernels/device_dfa.h"
#include "kernels/match_output.h"
#include "kernels/packet_kernel.h"  // internal: use acgpu::Engine
#include "kernels/pfac_kernel.h"    // internal: use acgpu::Engine
#include "kernels/store_scheme.h"
#include "oracle/conformance.h"
#include "oracle/differential.h"
#include "oracle/matcher.h"
#include "oracle/minimize.h"
#include "oracle/workload_gen.h"
#include "workload/dna.h"
#include "workload/markov_corpus.h"
#include "workload/pattern_extract.h"
#include "workload/packet_trace.h"
#include "workload/seed_text.h"
#include "workload/snort_rules.h"
