#include "gpusim/shared_memory.h"

#include <algorithm>
#include <array>
#include <utility>

namespace acgpu::gpusim {

BankCost bank_conflicts(std::span<const std::uint32_t> addrs, std::uint32_t banks,
                        std::uint32_t group) {
  ACGPU_CHECK(banks > 0 && banks <= 64, "bank count " << banks << " out of range");
  ACGPU_CHECK(group > 0 && group <= 32, "conflict group " << group << " out of range");
  BankCost cost;

  for (std::size_t begin = 0; begin < addrs.size(); begin += group) {
    const std::size_t end = std::min(addrs.size(), begin + group);

    // Distinct words accessed within this half-warp. Lanes hitting the same
    // word are satisfied by one access (hardware broadcast); lanes hitting
    // different words on the same bank serialise.
    std::array<std::uint32_t, 32> words{};
    std::size_t n_words = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t word = addrs[i] / 4;  // successive words -> successive banks
      bool dup = false;
      for (std::size_t j = 0; j < n_words; ++j)
        if (words[j] == word) {
          dup = true;
          break;
        }
      if (!dup) words[n_words++] = word;
    }

    std::array<std::uint32_t, 64> per_bank{};
    std::uint32_t degree = 1;  // a group always costs at least one access
    for (std::size_t j = 0; j < n_words; ++j)
      degree = std::max(degree, ++per_bank[words[j] % banks]);

    ++cost.groups;
    cost.total_degree += degree;
    cost.max_degree = std::max(cost.max_degree, degree);
  }
  return cost;
}

}  // namespace acgpu::gpusim
