// Process-global device identity for multi-device simulation.
//
// One process used to mean one simulated device, so nothing in gpusim needed
// a name: streams counted from 0, sims were anonymous, and every metric
// series implicitly belonged to "the" device. The cluster tier
// (src/cluster/) instantiates N independent devices in one process, so
// anything that leaves a device — metric prefixes, Chrome-trace tracks,
// hostcheck records, merged match streams — needs an identity that is
// unambiguous across all of them.
//
// The registry hands out process-unique device ids (never reused, so a
// device torn down and rebuilt is distinguishable in a trace) and tracks the
// live set for introspection. It is NOT a resource manager: registering is
// cheap bookkeeping, and the simulated memory/engines live wherever the
// caller put them (acgpu::Device in pipeline/device.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace acgpu::gpusim {

/// Descriptor of one live registered device.
struct DeviceInfo {
  std::uint32_t id = 0;       ///< process-unique, never reused
  std::string name;           ///< "device.<id>" unless the caller named it
  std::size_t memory_bytes = 0;
};

/// Reserves the next process-unique device id (thread-safe, monotonically
/// increasing from 0, never reused). Does not register anything.
std::uint32_t allocate_device_id();

/// Adds `info` to the live set. `info.id` must come from
/// allocate_device_id(); registering the same id twice is an error.
void register_device(const DeviceInfo& info);

/// Removes a device from the live set (idempotent — unknown ids are
/// ignored so a moved-from owner's destructor is harmless).
void unregister_device(std::uint32_t id);

/// Snapshot of the live set, ascending by id.
std::vector<DeviceInfo> registered_devices();

/// Live-set lookup; empty name when the id is not live.
std::string device_name(std::uint32_t id);

}  // namespace acgpu::gpusim
