// Global-memory coalescing model (the paper's Section IV "coalesced
// accesses"): the lane addresses of one warp-level load/store are combined
// into the minimum set of aligned segments; each distinct segment is one
// memory transaction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/device_memory.h"

namespace acgpu::gpusim {

struct CoalesceResult {
  std::uint32_t transactions = 0;  ///< distinct segments touched
  std::uint64_t bytes = 0;         ///< transactions * segment size
};

/// Coalesces the accesses of one warp instruction. `addrs` are the active
/// lanes' byte addresses, `access_bytes` the per-lane access width, and
/// `segment_bytes` the coalescing window (128 B on GT200). An access that
/// straddles a segment boundary touches both segments.
CoalesceResult coalesce(std::span<const DevAddr> addrs, std::uint32_t access_bytes,
                        std::uint32_t segment_bytes);

/// The distinct aligned segment base addresses (for cache-line style
/// consumers like the texture-miss path). Sorted ascending.
std::vector<DevAddr> distinct_segments(std::span<const DevAddr> addrs,
                                       std::uint32_t access_bytes,
                                       std::uint32_t segment_bytes);

}  // namespace acgpu::gpusim
