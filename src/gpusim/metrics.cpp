#include "gpusim/metrics.h"

#include <algorithm>

namespace acgpu::gpusim {

Metrics& Metrics::operator+=(const Metrics& o) {
  warp_instructions += o.warp_instructions;
  issue_cycles += o.issue_cycles;
  global_requests += o.global_requests;
  global_transactions += o.global_transactions;
  global_bytes += o.global_bytes;
  shared_requests += o.shared_requests;
  shared_groups += o.shared_groups;
  shared_conflict_cycles += o.shared_conflict_cycles;
  shared_max_degree = std::max(shared_max_degree, o.shared_max_degree);
  tex_requests += o.tex_requests;
  tex_lane_fetches += o.tex_lane_fetches;
  tex_misses += o.tex_misses;
  tex_l2_misses += o.tex_l2_misses;
  stall_global_cycles += o.stall_global_cycles;
  stall_shared_cycles += o.stall_shared_cycles;
  stall_tex_cycles += o.stall_tex_cycles;
  stall_barrier_cycles += o.stall_barrier_cycles;
  barriers += o.barriers;
  blocks_completed += o.blocks_completed;
  warps_completed += o.warps_completed;
  return *this;
}

std::ostream& operator<<(std::ostream& out, const Metrics& m) {
  out << "warp_instr=" << m.warp_instructions
      << " gmem_req=" << m.global_requests
      << " gmem_txn=" << m.global_transactions
      << " smem_req=" << m.shared_requests
      << " smem_conflict_cyc=" << m.shared_conflict_cycles
      << " tex_req=" << m.tex_requests
      << " tex_hit=" << m.tex_hit_rate()
      << " blocks=" << m.blocks_completed;
  return out;
}

}  // namespace acgpu::gpusim
