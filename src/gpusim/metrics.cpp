#include "gpusim/metrics.h"

#include <algorithm>
#include <string>

#include "telemetry/metrics_registry.h"

namespace acgpu::gpusim {

Metrics& Metrics::operator+=(const Metrics& o) {
  warp_instructions += o.warp_instructions;
  issue_cycles += o.issue_cycles;
  global_requests += o.global_requests;
  global_transactions += o.global_transactions;
  global_bytes += o.global_bytes;
  shared_requests += o.shared_requests;
  shared_groups += o.shared_groups;
  shared_conflict_cycles += o.shared_conflict_cycles;
  shared_max_degree = std::max(shared_max_degree, o.shared_max_degree);
  tex_requests += o.tex_requests;
  tex_lane_fetches += o.tex_lane_fetches;
  tex_misses += o.tex_misses;
  tex_l2_misses += o.tex_l2_misses;
  stall_global_cycles += o.stall_global_cycles;
  stall_shared_cycles += o.stall_shared_cycles;
  stall_tex_cycles += o.stall_tex_cycles;
  stall_barrier_cycles += o.stall_barrier_cycles;
  barriers += o.barriers;
  blocks_completed += o.blocks_completed;
  warps_completed += o.warps_completed;
  return *this;
}

std::ostream& operator<<(std::ostream& out, const Metrics& m) {
  out << "warp_instr=" << m.warp_instructions
      << " gmem_req=" << m.global_requests
      << " gmem_txn=" << m.global_transactions
      << " smem_req=" << m.shared_requests
      << " smem_conflict_cyc=" << m.shared_conflict_cycles
      << " tex_req=" << m.tex_requests
      << " tex_hit=" << m.tex_hit_rate()
      << " blocks=" << m.blocks_completed;
  return out;
}

void publish(const Metrics& m, telemetry::MetricsRegistry& registry,
             std::string_view prefix) {
  const std::string p(prefix);
  const auto count = [&](const char* name, std::uint64_t value) {
    registry.counter(p + name).add(value);
  };
  count(".issue.warp_instructions", m.warp_instructions);
  count(".issue.cycles", m.issue_cycles);
  count(".global.requests", m.global_requests);
  count(".global.transactions", m.global_transactions);
  count(".global.bytes", m.global_bytes);
  count(".shared.requests", m.shared_requests);
  count(".shared.groups", m.shared_groups);
  count(".shared.conflict_cycles", m.shared_conflict_cycles);
  count(".tex.requests", m.tex_requests);
  count(".tex.lane_fetches", m.tex_lane_fetches);
  count(".tex.misses", m.tex_misses);
  count(".tex.l2_misses", m.tex_l2_misses);
  count(".stall.global_cycles", m.stall_global_cycles);
  count(".stall.shared_cycles", m.stall_shared_cycles);
  count(".stall.tex_cycles", m.stall_tex_cycles);
  count(".stall.barrier_cycles", m.stall_barrier_cycles);
  count(".barriers", m.barriers);
  count(".blocks_completed", m.blocks_completed);
  count(".warps_completed", m.warps_completed);
  registry.gauge(p + ".shared.max_degree")
      .set_max(static_cast<double>(m.shared_max_degree));
  registry.gauge(p + ".shared.avg_degree").set(m.avg_shared_degree());
  registry.gauge(p + ".tex.hit_rate").set(m.tex_hit_rate());
  registry.gauge(p + ".global.transactions_per_request")
      .set(m.avg_transactions_per_request());
}

}  // namespace acgpu::gpusim
