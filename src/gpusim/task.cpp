#include "gpusim/task.h"

#include "util/error.h"

namespace acgpu::gpusim {

void WarpTask::resume() {
  ACGPU_CHECK(handle_ && !handle_.done(), "resume of a finished warp task");
  handle_.resume();
  if (handle_.done() && handle_.promise().exception)
    std::rethrow_exception(handle_.promise().exception);
}

}  // namespace acgpu::gpusim
