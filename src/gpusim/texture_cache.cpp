#include "gpusim/texture_cache.h"

#include "util/error.h"

namespace acgpu::gpusim {

TextureCache::TextureCache(std::uint32_t bytes, std::uint32_t line_bytes,
                           std::uint32_t assoc)
    : line_bytes_(line_bytes), assoc_(assoc) {
  ACGPU_CHECK(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0,
              "texture cache line size must be a power of two");
  ACGPU_CHECK(assoc > 0, "texture cache associativity must be positive");
  ACGPU_CHECK(bytes >= line_bytes * assoc,
              "texture cache of " << bytes << "B cannot hold one " << assoc << "-way set");
  sets_ = bytes / (line_bytes * assoc);
  ACGPU_CHECK(sets_ > 0, "texture cache has zero sets");
  ways_.assign(static_cast<std::size_t>(sets_) * assoc_, Way{});
}

bool TextureCache::access(DevAddr addr) {
  const DevAddr line = addr / line_bytes_;
  Way* set = ways_.data() + set_index(line) * assoc_;
  ++tick_;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].tag == line) {
      set[w].last_use = tick_;
      ++hits_;
      return true;
    }
  }
  // Miss: fill an invalid way if one exists, else evict the LRU way.
  Way* victim = &set[0];
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].tag == kInvalid) {
      victim = &set[w];
      break;
    }
    if (set[w].last_use < victim->last_use) victim = &set[w];
  }
  victim->tag = line;
  victim->last_use = tick_;
  ++misses_;
  return false;
}

bool TextureCache::contains(DevAddr addr) const {
  const DevAddr line = addr / line_bytes_;
  const Way* set = ways_.data() + set_index(line) * assoc_;
  for (std::uint32_t w = 0; w < assoc_; ++w)
    if (set[w].tag == line) return true;
  return false;
}

void TextureCache::clear() {
  for (auto& w : ways_) w = Way{};
  tick_ = hits_ = misses_ = 0;
}

}  // namespace acgpu::gpusim
