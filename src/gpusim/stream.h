// CUDA-style streams and events on the simulated timeline.
//
// The scheduler (gpusim/scheduler.h) times ONE kernel launch; production
// throughput comes from overlapping host<->device copies with kernel
// execution across independent streams. StreamSim models that layer the way
// GT200-era hardware does it: one DMA copy engine (H2D and D2H serialise on
// it), one compute engine (no concurrent kernels), and per-stream FIFO
// ordering. GpuConfig::readback_engines >= 1 switches to the Fermi-and-later
// dual-copy layout: D2H ops occupy their own engine(s), so an upload and a
// readback overlap on the full-duplex PCIe link. Operations resolve eagerly —
// enqueue order is issue order, so an op starts at max(stream ready, engine
// free, recorded dependencies) and the whole timeline is known as soon as the
// last op is enqueued.
//
// Functional side effects (the actual byte movement, the kernel's stores)
// happen at enqueue time in program order; only the *clock* is simulated.
// That keeps multi-launch pipelines exact in Functional mode while the
// timeline still shows copies and kernels overlapping.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/config.h"
#include "gpusim/host_observer.h"
#include "gpusim/launcher.h"

namespace acgpu::gpusim {

using StreamId = std::uint32_t;
using EventId = std::uint32_t;

/// What engine an operation occupies (and how the timeline renders it).
enum class StreamOpKind : std::uint8_t { kH2D, kD2H, kKernel };

const char* to_string(StreamOpKind kind);

/// One resolved operation on the simulated timeline.
struct StreamOp {
  std::uint64_t id = 0;
  StreamId stream = 0;
  StreamOpKind kind{};
  double start = 0;  ///< seconds on the simulated clock
  double end = 0;
  std::uint64_t bytes = 0;  ///< copies: payload size; kernels: 0
  std::string label;
};

/// Busy/overlap accounting over a resolved timeline.
struct OverlapStats {
  double copy_busy = 0;     ///< union of all transfer busy intervals (both directions)
  double h2d_busy = 0;      ///< union of upload (H2D) busy intervals
  double d2h_busy = 0;      ///< union of readback (D2H) busy intervals
  double compute_busy = 0;  ///< union of kernel busy intervals
  double overlapped = 0;    ///< time both engine classes were busy at once
  double makespan = 0;      ///< completion of the last operation
  /// Fraction of the hideable engine time actually hidden: overlapped over
  /// min(copy, compute) busy time. 1.0 = perfect copy/compute overlap.
  double overlap_ratio() const {
    const double hideable = copy_busy < compute_busy ? copy_busy : compute_busy;
    return hideable > 0 ? overlapped / hideable : 0.0;
  }
};

class StreamSim {
 public:
  StreamSim(const GpuConfig& config, DeviceMemory& gmem);

  StreamId create_stream();
  std::uint32_t stream_count() const { return static_cast<std::uint32_t>(streams_.size()); }

  /// Async host->device copy: bytes move NOW (program order), the copy-engine
  /// time is charged on the stream. Returns the op id (timeline() index).
  std::uint64_t memcpy_h2d(StreamId stream, DevAddr dst, const void* src,
                           std::size_t bytes, std::string label = {});
  /// Async device->host copy.
  std::uint64_t memcpy_d2h(StreamId stream, void* dst, DevAddr src,
                           std::size_t bytes, std::string label = {});
  /// Charges a device->host transfer without moving bytes — for Timed-mode
  /// pipelines where the payload size is known but the simulated kernel only
  /// produced a sample of it.
  std::uint64_t charge_d2h(StreamId stream, std::size_t bytes, std::string label = {});

  /// Enqueues a kernel launch: runs gpusim::launch immediately (side effects
  /// and timing), charges its simulated duration on the compute engine.
  LaunchResult launch(StreamId stream, const Texture2D* tex, const LaunchDims& dims,
                      KernelFn kernel, const LaunchOptions& options = {},
                      const Texture2D* tex2 = nullptr, std::string label = {});
  /// Charges a kernel of known duration without re-simulating it (timing
  /// reuse across same-shape batches).
  std::uint64_t charge_kernel(StreamId stream, double seconds, std::string label = {});

  /// Records an event capturing the completion time of all work enqueued on
  /// `stream` so far (cudaEventRecord).
  EventId record_event(StreamId stream);
  /// The next op enqueued on `stream` will not start before the event
  /// completes (cudaStreamWaitEvent). The event must already be recorded.
  void wait_event(StreamId stream, EventId event);
  /// Host-driven dependency: the next op on `stream` will not start before
  /// `seconds` — how a bounded-queue producer applies backpressure delays.
  void wait_until(StreamId stream, double seconds);

  double event_seconds(EventId event) const;
  /// Completion time of all work enqueued on `stream` so far.
  double stream_ready(StreamId stream) const;
  /// Completion time of one op.
  double op_end(std::uint64_t op_id) const;
  /// Completion time of everything enqueued so far (cudaDeviceSynchronize).
  double synchronize() const;

  const std::vector<StreamOp>& timeline() const { return timeline_; }
  OverlapStats overlap() const;

  DeviceMemory& memory() { return gmem_; }
  const GpuConfig& config() const { return cfg_; }
  /// Simulated seconds one `bytes`-sized PCIe transfer takes.
  double transfer_seconds(std::size_t bytes) const;

  /// Attaches a hostcheck recorder (gpusim/host_observer.h): every enqueue,
  /// event record, and wait is reported from here on. Null detaches. The
  /// sim registers itself on attach, so records of successive sims never
  /// collide. Zero-cost when unattached (one branch per op).
  void set_host_observer(HostObserver* observer);
  HostObserver* host_observer() const { return host_observer_; }
  /// This sim's observer registration id (0 when unattached). Staging pools
  /// serving this sim's timeline register under it, so the auditor can
  /// scope lease attribution per device (cluster arenas overlap in offset
  /// space).
  std::uint32_t sim_id() const { return sim_id_; }

  /// Declares that op `op_id` reads or writes device range
  /// [addr, addr+bytes) — the annotation the happens-before auditor checks
  /// conflicting accesses over. No-op without an attached observer. Copy
  /// ops (memcpy_h2d/memcpy_d2h) annotate themselves; callers annotate
  /// kernel reads/writes, which only they know.
  void annotate(std::uint64_t op_id, DevAddr addr, std::uint64_t bytes,
                bool is_write);

 private:
  struct StreamState {
    double ready = 0;        ///< completion of the stream's last op
    double pending_dep = 0;  ///< dependency applied to the next op
  };

  StreamState& state(StreamId stream);
  double enqueue(StreamId stream, StreamOpKind kind, double duration,
                 std::uint64_t bytes, std::string label);

  const GpuConfig& cfg_;
  DeviceMemory& gmem_;
  HostObserver* host_observer_ = nullptr;
  std::uint32_t sim_id_ = 0;  ///< assigned by the observer on attach
  std::vector<StreamState> streams_;
  std::vector<double> copy_engine_free_;  ///< one slot per DMA engine (H2D; D2H too
                                          ///< when no dedicated readback engine)
  std::vector<double> readback_engine_free_;  ///< dedicated D2H queues (may be empty)
  double compute_free_ = 0;
  std::vector<StreamOp> timeline_;
  std::vector<double> events_;
};

}  // namespace acgpu::gpusim
