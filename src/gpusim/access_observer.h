// Access-recording hook points for the simulator — the seam the gpucheck/
// hazard auditor plugs into (LaunchOptions::observer).
//
// The scheduler calls the observer at block dispatch/retire, once per
// warp-level memory instruction (before the data movement is performed), at
// every barrier arrival/release, and when a warp's coroutine completes. The
// observer sees the live Warp — identity, active mask, lane addresses,
// texture coordinates — and can veto individual lanes: the bitmask returned
// from memory_access() marks lanes whose data movement must be SUPPRESSED
// (an out-of-bounds access the auditor has already recorded; suppressed
// loads produce 0). That is what lets a cuda-memcheck-style tool report a
// hazard with full context and keep the simulation running instead of dying
// on the memory model's hard bounds check.
//
// With an observer attached the scheduler also releases a barrier when every
// *remaining* warp of the block is waiting even though other warps exited
// without reaching it — reporting the divergence instead of deadlocking, so
// deliberately-broken kernels can be audited end to end. Without an observer
// that situation remains the hard "unfinished blocks" error.
#pragma once

#include <cstdint>

namespace acgpu::gpusim {

class Warp;
enum class OpKind : std::uint8_t;

class AccessObserver {
 public:
  virtual ~AccessObserver() = default;

  /// A block's warps were created and scheduled (Functional mode: every
  /// block; Timed mode: the sampled ones).
  virtual void block_started(std::uint64_t block_id, std::uint32_t num_warps,
                             std::uint32_t block_threads,
                             std::uint32_t shared_bytes) {
    (void)block_id, (void)num_warps, (void)block_threads, (void)shared_bytes;
  }
  virtual void block_finished(std::uint64_t block_id) { (void)block_id; }

  /// One warp-level memory instruction (global/shared/texture/async load),
  /// observed BEFORE its data movement. Active lanes are those with
  /// warp.mask[l] set for l < warp.lane_count; addresses/coordinates are in
  /// the warp's lane buffers. Returns a bitmask (bit l = lane l) of lanes to
  /// suppress.
  virtual std::uint32_t memory_access(const Warp& warp, OpKind kind) {
    (void)warp, (void)kind;
    return 0;
  }

  /// `warp` issued __syncthreads and joined its block's barrier queue.
  virtual void barrier_arrival(const Warp& warp) { (void)warp; }
  /// All live warps of `block_id` arrived; the barrier released.
  virtual void barrier_release(std::uint64_t block_id) { (void)block_id; }

  /// `warp`'s coroutine ran to completion.
  virtual void warp_finished(const Warp& warp) { (void)warp; }

  /// `warp` finished while sibling warps were waiting at a barrier it never
  /// reached — barrier divergence. The scheduler releases the waiters (audit
  /// mode keeps going); the observer records the hazard.
  virtual void barrier_divergence(std::uint64_t block_id, const Warp& warp) {
    (void)block_id, (void)warp;
  }
};

}  // namespace acgpu::gpusim
