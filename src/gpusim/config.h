// Simulated GPU parameters.
//
// The repo reproduces a CUDA paper without CUDA hardware, so timing comes
// from a discrete-event SIMT model. Every calibration constant lives here
// (and nowhere else); the gtx285() preset documents the provenance of each
// value. Absolute accuracy is explicitly out of scope — the model exists to
// reproduce the paper's *relative* effects (coalescing, bank conflicts,
// texture caching, latency hiding).
#pragma once

#include <cstdint>

namespace acgpu::gpusim {

struct GpuConfig {
  // --- chip topology -------------------------------------------------------
  std::uint32_t num_sms = 30;          ///< GT200: 30 SMs (paper: "240 thread processors")
  std::uint32_t sps_per_sm = 8;        ///< 8 scalar processors per SM
  std::uint32_t warp_size = 32;
  std::uint32_t max_blocks_per_sm = 8;   ///< GT200 resident-block limit
  std::uint32_t max_threads_per_sm = 1024;
  double clock_ghz = 1.476;            ///< GTX 285 shader clock

  // --- instruction issue ---------------------------------------------------
  /// A warp instruction executes over warp_size/sps_per_sm = 4 shader
  /// clocks on GT200; the SM issue port serialises warps.
  std::uint32_t cycles_per_warp_instr = 4;

  // --- shared memory -------------------------------------------------------
  std::uint32_t shared_mem_bytes = 16 * 1024;  ///< per SM, split across resident blocks
  std::uint32_t shared_banks = 16;             ///< GT200: 16 banks, 32-bit wide
  /// GT200 resolves conflicts per *half-warp* (16 lanes).
  std::uint32_t shared_conflict_group = 16;
  /// Service cycles for one conflict-free half-warp access; an n-way
  /// conflict costs n times this (serialised on the shared-memory port).
  std::uint32_t shared_service_cycles = 2;

  // --- global memory (device memory / G-DRAM) ------------------------------
  std::uint32_t global_latency_cycles = 450;   ///< load-to-use latency
  std::uint32_t coalesce_segment_bytes = 128;  ///< coalescing window
  /// Bandwidth occupancy of one 128-byte transaction on the shared memory
  /// system: GTX 285 moves ~159 GB/s; at the 1.476 GHz shader clock that is
  /// ~108 B/cycle, i.e. ~1.2 cycles per segment. Rounded up a little for
  /// DRAM inefficiency.
  double cycles_per_segment = 1.5;

  // --- texture path --------------------------------------------------------
  std::uint32_t tex_cache_bytes = 8 * 1024;  ///< per-SM L1 texture cache (approx.)
  std::uint32_t tex_cache_line_bytes = 32;
  std::uint32_t tex_cache_assoc = 4;
  /// Service cycles at the texture unit for a (cached) fetch by one warp.
  std::uint32_t tex_hit_cycles = 4;
  /// GPU-wide L2 texture cache. GT200 has ~256 KB of per-memory-partition
  /// texture L2; we size it at 512 KB because our LRU model has no
  /// prefetching or sectoring and would otherwise understate the real
  /// hierarchy's hit rate on hot STT rows. An L1 miss that hits L2 pays
  /// tex_l2_latency_cycles.
  std::uint32_t tex_l2_bytes = 512 * 1024;
  std::uint32_t tex_l2_assoc = 8;
  std::uint32_t tex_l2_latency_cycles = 180;
  /// An L2 miss pays the full global latency plus segment occupancy per line.
  std::uint32_t tex_miss_latency_cycles = 450;

  // --- synchronisation ------------------------------------------------------
  std::uint32_t barrier_cycles = 4;  ///< cost of __syncthreads once all arrive

  // --- host interconnect (PCIe) --------------------------------------------
  /// Sustained host<->device copy bandwidth. PCIe 2.0 x16 (GTX 285 era)
  /// moves ~5.2 GB/s nominal, ~4 GB/s sustained for large pinned transfers.
  double pcie_bytes_per_second = 4.0e9;
  /// Fixed per-transfer cost (driver launch + DMA setup).
  double pcie_latency_seconds = 10e-6;
  /// Concurrent DMA engines. GT200 has a single copy engine: one transfer at
  /// a time, but it runs concurrently with kernel execution — the overlap
  /// the stream scheduler (gpusim/stream.h) models.
  std::uint32_t copy_engines = 1;
  /// Dedicated device->host DMA queues. 0 (the GT200 default) means D2H
  /// shares copy_engines — upload and readback serialise on one queue.
  /// >= 1 gives readback its own engine(s), the Fermi-and-later dual-copy
  /// layout that exploits the full-duplex PCIe link: an H2D and a D2H can
  /// be in flight simultaneously. The pipeline's split readback stage
  /// (pipeline/pipeline.h) opts into this per run.
  std::uint32_t readback_engines = 0;

  /// Resident blocks per SM for a kernel needing `shared_bytes` of shared
  /// memory and `threads` threads per block (occupancy calculation).
  std::uint32_t occupancy_blocks(std::uint32_t threads,
                                 std::uint32_t shared_bytes) const;

  /// Convert simulated cycles to seconds at the shader clock.
  double seconds(double cycles) const { return cycles / (clock_ghz * 1e9); }

  /// Nvidia GeForce GTX 285 (the paper's device).
  static GpuConfig gtx285();
};

}  // namespace acgpu::gpusim
