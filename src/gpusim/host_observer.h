// Host-orchestration recording hook points — the seam the hostcheck/
// happens-before auditor plugs into (the device-side twin is
// access_observer.h, which gpucheck uses to audit hazards INSIDE a kernel).
//
// The async host pipeline synchronizes through three vocabularies:
//
//   streams/events   StreamSim op enqueue, cudaEventRecord/WaitEvent, and
//                    the host-driven wait_until timestamp dependency;
//   staging leases   StagingPool acquire/release of upload and readback
//                    buffers (pipeline/staging_pool.h);
//   host locks       the serve-side mutexes (service, session manager,
//                    scheduler) wrapped in TrackedMutex below.
//
// A HostObserver receives one callback per such action, in a single global
// order (implementations serialize internally). hostcheck::Recorder is the
// shipped implementation; it replays the record stream into an op DAG,
// computes vector-clock happens-before, and reports schedules that are only
// correct by timing luck. Every hook site is guarded by a null check, so an
// unattached pipeline pays one predictable branch per action — the same
// zero-cost-when-off contract as AccessObserver and TelemetryOptions.
//
// This header lives in gpusim (not hostcheck) because gpusim is the lowest
// layer every instrumented component already links: StreamSim reports its
// own ops here, while the staging pools and serve locks sit above and reuse
// the same interface. Only the analyzer (src/hostcheck/) depends on the
// records' meaning.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace acgpu::gpusim {

/// Engine class a host-visible stream op occupies (mirrors StreamOpKind;
/// duplicated so record consumers do not need stream.h).
enum class HostOpKind : std::uint8_t { kH2D = 0, kKernel = 1, kD2H = 2 };

/// One enqueued stream operation, as resolved on the simulated timeline.
/// `sim` scopes ids: each StreamSim instance registers itself and restarts
/// op/stream/event numbering, so records from successive Engine::scan calls
/// never collide.
struct HostOpRecord {
  std::uint32_t sim = 0;
  std::uint64_t op = 0;  ///< StreamSim timeline index
  std::uint32_t stream = 0;
  HostOpKind kind{};
  double start = 0;  ///< simulated seconds
  double end = 0;
  std::uint64_t bytes = 0;
  std::string label;
};

/// A device-address range an op reads or writes, declared by the layer that
/// knows it (the pipeline annotates its H2D writes and kernel reads of the
/// staged slice; StreamSim annotates functional copies itself). Conflicting
/// unordered ranges are the auditor's core hazard.
struct HostAccessRecord {
  std::uint32_t sim = 0;
  std::uint64_t op = 0;
  std::uint64_t addr = 0;
  std::uint64_t bytes = 0;
  bool is_write = false;
};

/// cudaEventRecord: the event captures completion of all work enqueued on
/// `stream` so far.
struct HostEventRecord {
  std::uint32_t sim = 0;
  std::uint32_t event = 0;
  std::uint32_t stream = 0;
  double seconds = 0;
};

/// cudaStreamWaitEvent: the next op on `stream` starts after the event.
struct HostWaitEventRecord {
  std::uint32_t sim = 0;
  std::uint32_t stream = 0;
  std::uint32_t event = 0;
};

/// Host-driven timestamp dependency: the next op on `stream` starts at or
/// after `seconds`. Ops already enqueued whose end <= seconds are thereby
/// ordered before it — the lease-recycling handshake the pipeline uses.
struct HostWaitUntilRecord {
  std::uint32_t sim = 0;
  std::uint32_t stream = 0;
  double seconds = 0;
};

/// StagingPool::try_acquire / acquire_blocking handed out buffer `buffer`
/// of pool `pool`. `ready` is the simulated drain time of the previous
/// lease — the producer must not touch the buffer before then.
struct HostLeaseRecord {
  std::uint32_t pool = 0;
  std::uint32_t buffer = 0;
  std::uint64_t addr = 0;
  std::uint64_t bytes = 0;
  double ready = 0;
};

/// StagingPool::release: the buffer re-enters the free list, declared
/// drained at simulated time `drained_at`.
struct HostReleaseRecord {
  std::uint32_t pool = 0;
  std::uint32_t buffer = 0;
  double drained_at = 0;
};

/// TrackedMutex acquire/release, keyed by the registered mutex id and the
/// calling thread. Acquire-while-holding pairs build the lock-order graph.
struct HostLockRecord {
  std::uint64_t thread = 0;
  std::uint32_t mutex = 0;
  bool acquire = false;
};

class HostObserver {
 public:
  virtual ~HostObserver() = default;

  /// A StreamSim came up; the returned id scopes its op/stream/event
  /// numbering. Successive sims are totally ordered by host program order
  /// (each pipeline run resolves fully before the next begins), so the
  /// auditor never compares accesses across sims.
  virtual std::uint32_t register_sim() = 0;
  /// A StagingPool came up under `name` ("upload", "readback", ...).
  /// `sim` is the StreamSim whose timeline the pool's buffers serve:
  /// device addresses are arena offsets, so pools of different devices
  /// (cluster shards) occupy overlapping ranges, and the auditor must only
  /// attribute a sim's accesses to that sim's own pools.
  virtual std::uint32_t register_pool(const std::string& name,
                                      std::uint32_t buffers,
                                      std::uint64_t buffer_bytes,
                                      std::uint32_t sim) = 0;
  /// A TrackedMutex came up under `name` ("serve.mu", "serve.scheduler.mu").
  virtual std::uint32_t register_mutex(const std::string& name) = 0;

  virtual void on_op(const HostOpRecord& record) = 0;
  virtual void on_access(const HostAccessRecord& record) = 0;
  virtual void on_event_record(const HostEventRecord& record) = 0;
  virtual void on_wait_event(const HostWaitEventRecord& record) = 0;
  virtual void on_wait_until(const HostWaitUntilRecord& record) = 0;
  virtual void on_lease(const HostLeaseRecord& record) = 0;
  virtual void on_release(const HostReleaseRecord& record) = 0;
  virtual void on_lock(const HostLockRecord& record) = 0;
};

/// A named std::mutex that reports acquire/release to a HostObserver —
/// Lockable, so std::unique_lock/std::scoped_lock/condition_variable_any
/// drive it unchanged. With no observer attached (the default) lock() is
/// one branch over the plain mutex. attach() must happen before the mutex
/// is shared across threads (construction time in practice).
///
/// condition_variable_any waits report the wait's release/re-acquire pair
/// too, so the auditor's per-thread held set stays exact across waits.
class TrackedMutex {
 public:
  explicit TrackedMutex(std::string name) : name_(std::move(name)) {}

  TrackedMutex(const TrackedMutex&) = delete;
  TrackedMutex& operator=(const TrackedMutex&) = delete;

  /// Registers with `observer` (null detaches). Not thread-safe against
  /// concurrent lock(); call before the mutex goes live.
  void attach(HostObserver* observer) {
    observer_ = observer;
    if (observer_ != nullptr) id_ = observer_->register_mutex(name_);
  }

  void lock() {
    mu_.lock();
    record(true);
  }
  bool try_lock() {
    if (!mu_.try_lock()) return false;
    record(true);
    return true;
  }
  void unlock() {
    record(false);
    mu_.unlock();
  }

  const std::string& name() const { return name_; }

 private:
  void record(bool acquire) {
    if (observer_ == nullptr) return;
    observer_->on_lock(HostLockRecord{
        std::hash<std::thread::id>{}(std::this_thread::get_id()), id_, acquire});
  }

  std::mutex mu_;
  std::string name_;
  HostObserver* observer_ = nullptr;
  std::uint32_t id_ = 0;
};

}  // namespace acgpu::gpusim
