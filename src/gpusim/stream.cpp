#include "gpusim/stream.h"

#include <algorithm>

#include "util/error.h"

namespace acgpu::gpusim {

const char* to_string(StreamOpKind kind) {
  switch (kind) {
    case StreamOpKind::kH2D: return "h2d";
    case StreamOpKind::kD2H: return "d2h";
    case StreamOpKind::kKernel: return "kernel";
  }
  return "?";
}

StreamSim::StreamSim(const GpuConfig& config, DeviceMemory& gmem)
    : cfg_(config), gmem_(gmem) {
  ACGPU_CHECK(cfg_.copy_engines >= 1, "need at least one copy engine");
  copy_engine_free_.assign(cfg_.copy_engines, 0.0);
  readback_engine_free_.assign(cfg_.readback_engines, 0.0);
}

StreamId StreamSim::create_stream() {
  streams_.push_back({});
  return static_cast<StreamId>(streams_.size() - 1);
}

StreamSim::StreamState& StreamSim::state(StreamId stream) {
  ACGPU_CHECK(stream < streams_.size(), "unknown stream id " << stream);
  return streams_[stream];
}

double StreamSim::transfer_seconds(std::size_t bytes) const {
  return cfg_.pcie_latency_seconds +
         static_cast<double>(bytes) / cfg_.pcie_bytes_per_second;
}

void StreamSim::set_host_observer(HostObserver* observer) {
  host_observer_ = observer;
  if (host_observer_ != nullptr) sim_id_ = host_observer_->register_sim();
}

void StreamSim::annotate(std::uint64_t op_id, DevAddr addr, std::uint64_t bytes,
                         bool is_write) {
  if (host_observer_ == nullptr) return;
  ACGPU_CHECK(op_id < timeline_.size(), "annotate: unknown op id " << op_id);
  host_observer_->on_access(
      HostAccessRecord{sim_id_, op_id, addr, bytes, is_write});
}

double StreamSim::enqueue(StreamId stream, StreamOpKind kind, double duration,
                          std::uint64_t bytes, std::string label) {
  StreamState& s = state(stream);
  double* engine_free = &compute_free_;
  if (kind == StreamOpKind::kD2H && !readback_engine_free_.empty()) {
    // Dedicated readback queue(s): a D2H never waits behind an H2D.
    engine_free = &*std::min_element(readback_engine_free_.begin(),
                                     readback_engine_free_.end());
  } else if (kind != StreamOpKind::kKernel) {
    // With several DMA engines, a transfer grabs whichever frees first.
    engine_free = &*std::min_element(copy_engine_free_.begin(), copy_engine_free_.end());
  }
  const double start = std::max({s.ready, s.pending_dep, *engine_free});
  const double end = start + duration;
  s.ready = end;
  s.pending_dep = 0;
  *engine_free = end;
  timeline_.push_back(StreamOp{static_cast<std::uint64_t>(timeline_.size()), stream,
                               kind, start, end, bytes, std::move(label)});
  if (host_observer_ != nullptr) {
    const StreamOp& op = timeline_.back();
    host_observer_->on_op(HostOpRecord{
        sim_id_, op.id, op.stream,
        kind == StreamOpKind::kH2D      ? HostOpKind::kH2D
        : kind == StreamOpKind::kKernel ? HostOpKind::kKernel
                                        : HostOpKind::kD2H,
        op.start, op.end, op.bytes, op.label});
  }
  return end;
}

std::uint64_t StreamSim::memcpy_h2d(StreamId stream, DevAddr dst, const void* src,
                                    std::size_t bytes, std::string label) {
  gmem_.copy_in(dst, src, bytes);
  enqueue(stream, StreamOpKind::kH2D, transfer_seconds(bytes), bytes, std::move(label));
  const std::uint64_t id = timeline_.back().id;
  annotate(id, dst, bytes, /*is_write=*/true);
  return id;
}

std::uint64_t StreamSim::memcpy_d2h(StreamId stream, void* dst, DevAddr src,
                                    std::size_t bytes, std::string label) {
  gmem_.copy_out(dst, src, bytes);
  enqueue(stream, StreamOpKind::kD2H, transfer_seconds(bytes), bytes, std::move(label));
  const std::uint64_t id = timeline_.back().id;
  annotate(id, src, bytes, /*is_write=*/false);
  return id;
}

std::uint64_t StreamSim::charge_d2h(StreamId stream, std::size_t bytes, std::string label) {
  enqueue(stream, StreamOpKind::kD2H, transfer_seconds(bytes), bytes, std::move(label));
  return timeline_.back().id;
}

LaunchResult StreamSim::launch(StreamId stream, const Texture2D* tex,
                               const LaunchDims& dims, KernelFn kernel,
                               const LaunchOptions& options, const Texture2D* tex2,
                               std::string label) {
  LaunchResult result =
      gpusim::launch(cfg_, gmem_, tex, dims, std::move(kernel), options, tex2);
  enqueue(stream, StreamOpKind::kKernel, result.seconds, 0, std::move(label));
  return result;
}

std::uint64_t StreamSim::charge_kernel(StreamId stream, double seconds, std::string label) {
  ACGPU_CHECK(seconds >= 0, "kernel duration must be non-negative");
  enqueue(stream, StreamOpKind::kKernel, seconds, 0, std::move(label));
  return timeline_.back().id;
}

EventId StreamSim::record_event(StreamId stream) {
  events_.push_back(state(stream).ready);
  const auto id = static_cast<EventId>(events_.size() - 1);
  if (host_observer_ != nullptr)
    host_observer_->on_event_record(
        HostEventRecord{sim_id_, id, stream, events_.back()});
  return id;
}

void StreamSim::wait_event(StreamId stream, EventId event) {
  StreamState& s = state(stream);
  s.pending_dep = std::max(s.pending_dep, event_seconds(event));
  if (host_observer_ != nullptr)
    host_observer_->on_wait_event(HostWaitEventRecord{sim_id_, stream, event});
}

void StreamSim::wait_until(StreamId stream, double seconds) {
  StreamState& s = state(stream);
  s.pending_dep = std::max(s.pending_dep, seconds);
  if (host_observer_ != nullptr)
    host_observer_->on_wait_until(HostWaitUntilRecord{sim_id_, stream, seconds});
}

double StreamSim::event_seconds(EventId event) const {
  ACGPU_CHECK(event < events_.size(), "unknown event id " << event);
  return events_[event];
}

double StreamSim::stream_ready(StreamId stream) const {
  ACGPU_CHECK(stream < streams_.size(), "unknown stream id " << stream);
  return streams_[stream].ready;
}

double StreamSim::op_end(std::uint64_t op_id) const {
  ACGPU_CHECK(op_id < timeline_.size(), "unknown op id " << op_id);
  return timeline_[op_id].end;
}

double StreamSim::synchronize() const {
  double latest = 0;
  for (const StreamState& s : streams_) latest = std::max(latest, s.ready);
  return latest;
}

namespace {

/// Total length of the union of [start, end) intervals.
double merged_busy(std::vector<std::pair<double, double>>& spans) {
  if (spans.empty()) return 0;
  std::sort(spans.begin(), spans.end());
  double busy = 0, lo = spans.front().first, hi = spans.front().second;
  for (const auto& [s, e] : spans) {
    if (s > hi) {
      busy += hi - lo;
      lo = s;
      hi = e;
    } else {
      hi = std::max(hi, e);
    }
  }
  return busy + (hi - lo);
}

}  // namespace

OverlapStats StreamSim::overlap() const {
  OverlapStats stats;
  std::vector<std::pair<double, double>> copy, compute, h2d, d2h;
  for (const StreamOp& op : timeline_) {
    if (op.kind == StreamOpKind::kKernel) {
      compute.emplace_back(op.start, op.end);
    } else {
      copy.emplace_back(op.start, op.end);
      (op.kind == StreamOpKind::kH2D ? h2d : d2h).emplace_back(op.start, op.end);
    }
    stats.makespan = std::max(stats.makespan, op.end);
  }
  stats.copy_busy = merged_busy(copy);
  stats.h2d_busy = merged_busy(h2d);
  stats.d2h_busy = merged_busy(d2h);
  stats.compute_busy = merged_busy(compute);
  // Overlap = |copy ∪ compute| subtracted from the sum of the two unions.
  std::vector<std::pair<double, double>> all;
  all.reserve(copy.size() + compute.size());
  all.insert(all.end(), copy.begin(), copy.end());
  all.insert(all.end(), compute.begin(), compute.end());
  stats.overlapped = stats.copy_busy + stats.compute_busy - merged_busy(all);
  return stats;
}

}  // namespace acgpu::gpusim
