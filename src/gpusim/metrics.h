// Counters collected during a simulated kernel launch. The Fig-19 bench and
// the test suite read these to verify the model behaves as designed (e.g.
// the diagonal store scheme really does eliminate bank conflicts).
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>

namespace acgpu::telemetry {
class MetricsRegistry;
}

namespace acgpu::gpusim {

struct Metrics {
  // Instruction issue.
  std::uint64_t warp_instructions = 0;  ///< warp-instructions issued
  std::uint64_t issue_cycles = 0;       ///< cycles the issue ports were busy

  // Global memory.
  std::uint64_t global_requests = 0;      ///< warp-level load/store instructions
  std::uint64_t global_transactions = 0;  ///< 128B segments actually moved
  std::uint64_t global_bytes = 0;         ///< segment bytes moved (incl. waste)

  // Shared memory.
  std::uint64_t shared_requests = 0;        ///< warp-level accesses
  std::uint64_t shared_groups = 0;          ///< half-warp groups processed
  std::uint64_t shared_conflict_cycles = 0; ///< extra cycles beyond conflict-free
  std::uint64_t shared_max_degree = 0;      ///< worst conflict degree seen

  // Texture path.
  std::uint64_t tex_requests = 0;  ///< warp-level fetches
  std::uint64_t tex_lane_fetches = 0;
  std::uint64_t tex_misses = 0;     ///< L1-missing cache lines
  std::uint64_t tex_l2_misses = 0;  ///< lines that also missed the tex L2

  // Stall accounting (per warp, summed): cycles between a warp becoming
  // blocked on a resource and its resumption.
  std::uint64_t stall_global_cycles = 0;
  std::uint64_t stall_shared_cycles = 0;
  std::uint64_t stall_tex_cycles = 0;
  std::uint64_t stall_barrier_cycles = 0;

  std::uint64_t barriers = 0;
  std::uint64_t blocks_completed = 0;
  std::uint64_t warps_completed = 0;

  double tex_hit_rate() const {
    return tex_lane_fetches == 0
               ? 1.0
               : 1.0 - static_cast<double>(tex_misses) / static_cast<double>(tex_lane_fetches);
  }
  double avg_transactions_per_request() const {
    return global_requests == 0
               ? 0.0
               : static_cast<double>(global_transactions) / static_cast<double>(global_requests);
  }
  double avg_shared_degree() const {
    return shared_groups == 0
               ? 0.0
               : 1.0 + static_cast<double>(shared_conflict_cycles) /
                           static_cast<double>(shared_groups);
  }

  Metrics& operator+=(const Metrics& o);
};

std::ostream& operator<<(std::ostream& out, const Metrics& m);

/// Publishes every counter under stable dotted names in the telemetry
/// registry ("<prefix>.shared.conflict_cycles", "<prefix>.tex.hit_rate",
/// ...; docs/OBSERVABILITY.md lists the scheme). Counters accumulate across
/// calls; max-degree and the derived rates are gauges (max / last-write).
void publish(const Metrics& m, telemetry::MetricsRegistry& registry,
             std::string_view prefix = "gpusim");

}  // namespace acgpu::gpusim
