// Per-SM texture cache model: set-associative with LRU replacement, indexed
// by device byte address. The paper stores the STT in texture memory so the
// hot (shallow) automaton states stay cached; the pattern-count sweeps in
// Figs 16-18 hinge on this cache's hit rate falling as the STT grows.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/device_memory.h"

namespace acgpu::gpusim {

class TextureCache {
 public:
  /// `bytes` capacity, `line_bytes` per line, `assoc`-way sets, LRU.
  TextureCache(std::uint32_t bytes, std::uint32_t line_bytes, std::uint32_t assoc);

  /// Probes the line containing `addr`; fills it on miss. Returns true on hit.
  bool access(DevAddr addr);

  /// Probe without filling (tests/inspection).
  bool contains(DevAddr addr) const;

  void clear();

  std::uint32_t line_bytes() const { return line_bytes_; }
  std::uint32_t sets() const { return sets_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Way {
    DevAddr tag = kInvalid;
    std::uint64_t last_use = 0;
  };
  static constexpr DevAddr kInvalid = ~DevAddr{0};

  std::size_t set_index(DevAddr line) const { return line % sets_; }

  std::uint32_t line_bytes_;
  std::uint32_t assoc_;
  std::uint32_t sets_;
  std::vector<Way> ways_;  // sets_ x assoc_
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace acgpu::gpusim
