#include "gpusim/config.h"

#include <algorithm>

#include "util/error.h"

namespace acgpu::gpusim {

std::uint32_t GpuConfig::occupancy_blocks(std::uint32_t threads,
                                          std::uint32_t shared_bytes) const {
  ACGPU_CHECK(threads > 0 && threads <= max_threads_per_sm,
              "occupancy: block of " << threads << " threads does not fit an SM");
  ACGPU_CHECK(shared_bytes <= shared_mem_bytes,
              "occupancy: block needs " << shared_bytes
                  << "B shared memory but the SM has " << shared_mem_bytes << "B");
  std::uint32_t blocks = max_blocks_per_sm;
  blocks = std::min(blocks, max_threads_per_sm / threads);
  if (shared_bytes > 0) blocks = std::min(blocks, shared_mem_bytes / shared_bytes);
  return std::max(1u, blocks);
}

GpuConfig GpuConfig::gtx285() { return GpuConfig{}; }

}  // namespace acgpu::gpusim
