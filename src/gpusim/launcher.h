// Kernel launch API: the CUDA-shaped entry point of the simulator.
//
// Timed mode simulates a few full occupancy waves of blocks (data-parallel
// blocks are homogeneous) and extrapolates the makespan to the whole grid;
// Functional mode runs every block — used by the correctness tests, and by
// any caller that needs the kernel's memory side-effects for the full input.
#pragma once

#include <cstdint>

#include "gpusim/config.h"
#include "gpusim/scheduler.h"

namespace acgpu::gpusim {

enum class SimMode {
  Timed,       ///< sampled blocks, extrapolated timing
  Functional,  ///< every block simulated (timing exact, side effects complete)
};

struct LaunchOptions {
  SimMode mode = SimMode::Timed;
  /// Full occupancy waves to simulate in Timed mode (>= 2 recommended so the
  /// steady state dominates the pipeline fill).
  std::uint32_t sample_waves = 3;
  /// Access-recording hook (gpusim/access_observer.h): receives every memory
  /// access, barrier event, and block/warp lifecycle callback, and switches
  /// the scheduler to audit-tolerant behaviour (OOB suppression, lenient
  /// barrier release). Not owned; must outlive the launch. nullptr = off.
  AccessObserver* observer = nullptr;
};

struct LaunchResult {
  double cycles = 0;   ///< full-grid makespan estimate (== sim in Functional)
  double seconds = 0;  ///< cycles at the configured shader clock
  double sim_makespan_cycles = 0;
  std::uint64_t simulated_blocks = 0;
  std::uint64_t grid_blocks = 0;
  Metrics metrics;

  double scale() const {
    return simulated_blocks == 0
               ? 1.0
               : static_cast<double>(grid_blocks) / static_cast<double>(simulated_blocks);
  }
};

LaunchResult launch(const GpuConfig& config, DeviceMemory& gmem,
                    const Texture2D* tex, const LaunchDims& dims, KernelFn kernel,
                    const LaunchOptions& options = {},
                    const Texture2D* tex2 = nullptr);

}  // namespace acgpu::gpusim
