#include "gpusim/texture.h"

namespace acgpu::gpusim {

Texture2D::Texture2D(const DeviceMemory* mem, DevAddr base, std::uint32_t width,
                     std::uint32_t rows, std::uint32_t pitch_elems)
    : mem_(mem), base_(base), width_(width), rows_(rows), pitch_elems_(pitch_elems) {
  ACGPU_CHECK(mem != nullptr, "Texture2D: null device memory");
  ACGPU_CHECK(width > 0 && rows > 0, "Texture2D: empty binding");
  ACGPU_CHECK(pitch_elems >= width,
              "Texture2D: pitch " << pitch_elems << " narrower than width " << width);
  // Validate the whole region up front so fetches can stay cheap.
  (void)mem_->raw(base_, static_cast<std::size_t>(rows_) * pitch_elems_ * 4);
}

}  // namespace acgpu::gpusim
