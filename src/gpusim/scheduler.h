// Discrete-event SIMT engine.
//
// Models: per-SM in-order issue port (warps serialise on it), per-SM shared
// memory unit (service time = bank-conflict degree), per-SM texture unit +
// texture cache, and one GPU-wide global memory system (latency plus
// per-segment bandwidth occupancy). Warps are coroutines that suspend at
// every instruction; blocks are dispatched to SMs as slots free, exactly
// like hardware block scheduling.
//
// Timing extrapolation: thread blocks of a data-parallel kernel are
// homogeneous, so the engine can simulate a sample of the grid (enough
// "waves" to reach steady state) and scale the makespan to the full grid —
// see Launcher. In Functional mode every block runs, which is what the
// correctness tests use.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "gpusim/access_observer.h"
#include "gpusim/config.h"
#include "gpusim/metrics.h"
#include "gpusim/task.h"
#include "gpusim/texture_cache.h"
#include "gpusim/warp.h"

namespace acgpu::gpusim {

/// Grid geometry of a launch.
struct LaunchDims {
  std::uint64_t grid_blocks = 0;
  std::uint32_t block_threads = 0;
  std::uint32_t shared_bytes = 0;  ///< shared memory per block (0 = none)
};

/// Factory invoked once per simulated warp. The Warp reference stays valid
/// for the coroutine's lifetime.
using KernelFn = std::function<WarpTask(Warp&)>;

struct RunStats {
  double makespan_cycles = 0;        ///< simulated time for the simulated blocks
  std::uint64_t simulated_blocks = 0;
  Metrics metrics;
};

class Scheduler {
 public:
  /// `observer` (optional) receives the access-recording callbacks of
  /// gpusim/access_observer.h and switches the barrier logic to the lenient
  /// audit behaviour described there.
  Scheduler(const GpuConfig& config, DeviceMemory& gmem, const Texture2D* tex,
            const LaunchDims& dims, KernelFn kernel,
            const Texture2D* tex2 = nullptr, AccessObserver* observer = nullptr);

  /// Simulates exactly the given block ids (sorted ascending recommended).
  RunStats run(const std::vector<std::uint64_t>& block_ids);

 private:
  struct BlockRun;

  struct WarpRun {
    Warp warp;
    WarpTask task;
    BlockRun* block = nullptr;
    OpKind last_stall = OpKind::None;
    double async_ready = 0;     ///< completion time of the outstanding async load
    bool async_pending = false;
  };

  struct BlockRun {
    std::uint64_t block_id = 0;
    std::uint32_t sm = 0;
    std::unique_ptr<SharedMemory> smem;
    std::vector<std::unique_ptr<WarpRun>> warps;
    std::uint32_t done_warps = 0;
    std::vector<WarpRun*> barrier_queue;
    double barrier_latest_arrival = 0;
  };

  struct Sm {
    double issue_free = 0;
    double shared_free = 0;
    double tex_free = 0;
    std::unique_ptr<TextureCache> tcache;
    std::uint32_t resident = 0;
  };

  struct Event {
    double time = 0;
    std::uint64_t seq = 0;
    WarpRun* warp = nullptr;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.time > b.time || (a.time == b.time && a.seq > b.seq);
    }
  };

  void dispatch_block(std::uint64_t block_id, std::uint32_t sm, double time);
  void finish_block(BlockRun* block, double time);
  /// Executes one step of `w` at event time `t`: resume the coroutine, cost
  /// the instruction it issued, perform data movement, schedule its resume.
  void step_warp(WarpRun* w, double t);
  void schedule(WarpRun* w, double time);

  // Instruction handlers: return the warp's ready time given issue end.
  double handle_global(WarpRun* w, double issued);
  double handle_shared(WarpRun* w, double issued);
  double handle_tex(WarpRun* w, double issued, const Texture2D* texture);

  /// Releases `block`'s barrier queue at `release` time, notifying the
  /// observer; `issued` is the arrival time used for stall accounting.
  void release_barrier(BlockRun* block, double release, double issued);

  const GpuConfig& cfg_;
  DeviceMemory& gmem_;
  const Texture2D* tex_;
  const Texture2D* tex2_;
  LaunchDims dims_;
  KernelFn kernel_;
  AccessObserver* observer_ = nullptr;
  std::uint32_t warps_per_block_;

  std::vector<Sm> sms_;
  std::unique_ptr<TextureCache> tex_l2_;  ///< GPU-wide texture L2
  double mem_pipe_free_ = 0;  ///< global memory system bandwidth pipe
  std::vector<std::uint64_t> pending_blocks_;  // stack of not-yet-dispatched ids
  std::vector<std::unique_ptr<BlockRun>> active_blocks_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::uint64_t next_seq_ = 0;
  double last_time_ = 0;
  Metrics metrics_;
};

}  // namespace acgpu::gpusim
