// WarpTask: the C++20 coroutine type a simulated warp program returns.
//
// A kernel is written as one coroutine per warp (SIMT: one program counter
// per warp). Each co_await issues one warp-level instruction (memory access,
// barrier, or compute) to the scheduler; the scheduler costs it, performs
// the data movement, and resumes the warp at the instruction's completion
// time.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace acgpu::gpusim {

class WarpTask {
 public:
  struct promise_type {
    std::exception_ptr exception;

    WarpTask get_return_object() {
      return WarpTask{Handle::from_promise(*this)};
    }
    // Lazily started: the scheduler performs the first resume at dispatch.
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  WarpTask() = default;
  explicit WarpTask(Handle h) : handle_(h) {}
  WarpTask(const WarpTask&) = delete;
  WarpTask& operator=(const WarpTask&) = delete;
  WarpTask(WarpTask&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  WarpTask& operator=(WarpTask&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  ~WarpTask() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return !handle_ || handle_.done(); }

  /// Resume to the next suspension point. Rethrows any exception the kernel
  /// body raised (after the coroutine reached its final suspend).
  void resume();

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

}  // namespace acgpu::gpusim
