#include "gpusim/device_memory.h"

namespace acgpu::gpusim {

DeviceMemory::DeviceMemory(std::size_t capacity) : bytes_(capacity, 0) {
  ACGPU_CHECK(capacity > 0, "DeviceMemory: zero capacity");
}

DevAddr DeviceMemory::alloc(std::size_t bytes, std::size_t align) {
  ACGPU_CHECK(align > 0 && (align & (align - 1)) == 0,
              "DeviceMemory::alloc: alignment " << align << " is not a power of two");
  const std::size_t base = (next_ + align - 1) & ~(align - 1);
  ACGPU_CHECK(base + bytes <= bytes_.size(),
              "device out of memory: want " << bytes << "B at offset " << base
                  << ", capacity " << bytes_.size() << "B");
  next_ = base + bytes;
  return base;
}

void DeviceMemory::copy_in(DevAddr dst, const void* src, std::size_t bytes) {
  bounds_check(dst, bytes);
  std::memcpy(bytes_.data() + dst, src, bytes);
}

void DeviceMemory::copy_out(void* dst, DevAddr src, std::size_t bytes) const {
  bounds_check(src, bytes);
  std::memcpy(dst, bytes_.data() + src, bytes);
}

void DeviceMemory::fill(DevAddr dst, std::uint8_t value, std::size_t bytes) {
  bounds_check(dst, bytes);
  std::memset(bytes_.data() + dst, value, bytes);
}

}  // namespace acgpu::gpusim
