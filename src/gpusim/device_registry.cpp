#include "gpusim/device_registry.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "util/error.h"

namespace acgpu::gpusim {
namespace {

std::atomic<std::uint32_t> g_next_id{0};

struct Registry {
  std::mutex mu;
  std::vector<DeviceInfo> live;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives static teardown
  return *r;
}

}  // namespace

std::uint32_t allocate_device_id() {
  return g_next_id.fetch_add(1, std::memory_order_relaxed);
}

void register_device(const DeviceInfo& info) {
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  for (const DeviceInfo& d : r.live)
    ACGPU_CHECK(d.id != info.id, "device id " << info.id
                                              << " registered twice ('" << d.name
                                              << "' and '" << info.name << "')");
  r.live.push_back(info);
  std::sort(r.live.begin(), r.live.end(),
            [](const DeviceInfo& a, const DeviceInfo& b) { return a.id < b.id; });
}

void unregister_device(std::uint32_t id) {
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  std::erase_if(r.live, [&](const DeviceInfo& d) { return d.id == id; });
}

std::vector<DeviceInfo> registered_devices() {
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  return r.live;
}

std::string device_name(std::uint32_t id) {
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  for (const DeviceInfo& d : r.live)
    if (d.id == id) return d.name;
  return {};
}

}  // namespace acgpu::gpusim
