// Warp execution context: identity, lane operand buffers, and the awaitable
// instruction set a kernel coroutine programs against.
//
// Protocol: the kernel fills the lane buffers (addresses / store values /
// texture coordinates / active mask) and co_awaits one of the instruction
// helpers. The scheduler then inspects `pending`, applies the timing model,
// performs the data movement (loads fill `value`), and resumes the warp at
// the instruction's completion time.
#pragma once

#include <array>
#include <coroutine>
#include <cstdint>

#include "gpusim/device_memory.h"
#include "gpusim/shared_memory.h"
#include "gpusim/texture.h"

namespace acgpu::gpusim {

enum class OpKind : std::uint8_t {
  None,
  Compute,        ///< pending_instrs warp instructions, no memory
  GlobalLoadU8,   ///< addr -> value (zero-extended byte)
  GlobalLoadU32,  ///< addr -> value
  GlobalStoreU32, ///< value -> addr
  SharedLoadU8,   ///< addr (shared space) -> value
  SharedLoadU32,
  SharedStoreU32,
  TexFetch,       ///< (tex_x, tex_y) -> value from the primary texture
  TexFetch2,      ///< same, from the secondary texture binding
  Barrier,        ///< __syncthreads
  /// Non-blocking load: addr -> async_value; the warp continues immediately
  /// and pays the remaining latency at the matching AsyncWait. One
  /// outstanding async load per warp (like an in-flight register load that
  /// stalls on first use — the CUDA "load early, use late" idiom).
  GlobalLoadU32Async,
  AsyncWait,      ///< block until the async load completes; async_value -> value
};

class Warp {
 public:
  static constexpr std::uint32_t kMaxLanes = 32;

  // --- identity (set by the scheduler at dispatch) --------------------------
  std::uint64_t block_id = 0;
  std::uint32_t warp_in_block = 0;
  std::uint32_t block_dim = 0;     ///< threads per block
  std::uint64_t grid_blocks = 0;
  std::uint32_t lane_count = 0;    ///< threads in this warp (< 32 for the tail warp)

  // --- memory handles (set by the scheduler) --------------------------------
  DeviceMemory* gmem = nullptr;
  SharedMemory* smem = nullptr;
  const Texture2D* tex = nullptr;
  const Texture2D* tex2 = nullptr;  ///< optional secondary texture

  // --- lane operand buffers --------------------------------------------------
  std::array<DevAddr, kMaxLanes> addr{};
  std::array<std::uint32_t, kMaxLanes> value{};
  std::array<std::uint32_t, kMaxLanes> async_value{};
  std::array<std::uint32_t, kMaxLanes> tex_x{};
  std::array<std::uint32_t, kMaxLanes> tex_y{};
  std::array<bool, kMaxLanes> mask{};

  // --- pending instruction slot (read by the scheduler) ----------------------
  OpKind pending = OpKind::None;
  std::uint32_t pending_instrs = 0;

  /// Thread index within the block of lane `l`.
  std::uint32_t thread_in_block(std::uint32_t l) const {
    return warp_in_block * kMaxLanes + l;
  }
  /// Global thread index of lane `l`.
  std::uint64_t global_thread(std::uint32_t l) const {
    return block_id * block_dim + thread_in_block(l);
  }

  void mask_all() {
    for (std::uint32_t l = 0; l < kMaxLanes; ++l) mask[l] = l < lane_count;
  }
  void mask_none() { mask.fill(false); }
  bool any_active() const {
    for (std::uint32_t l = 0; l < lane_count; ++l)
      if (mask[l]) return true;
    return false;
  }

  // --- the instruction set ----------------------------------------------------
  struct [[nodiscard]] Await {
    Warp& warp;
    OpKind kind;
    std::uint32_t instrs;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) noexcept {
      warp.pending = kind;
      warp.pending_instrs = instrs;
    }
    void await_resume() const noexcept {}
  };

  /// Pure ALU work: `instrs` warp instructions (state update arithmetic,
  /// address computation, branches). Calibration hook for the timing model.
  Await compute(std::uint32_t instrs) { return {*this, OpKind::Compute, instrs}; }

  Await global_load_u8() { return {*this, OpKind::GlobalLoadU8, 1}; }
  Await global_load_u32() { return {*this, OpKind::GlobalLoadU32, 1}; }
  Await global_store_u32() { return {*this, OpKind::GlobalStoreU32, 1}; }
  Await shared_load_u8() { return {*this, OpKind::SharedLoadU8, 1}; }
  Await shared_load_u32() { return {*this, OpKind::SharedLoadU32, 1}; }
  Await shared_store_u32() { return {*this, OpKind::SharedStoreU32, 1}; }
  Await tex_fetch() { return {*this, OpKind::TexFetch, 1}; }
  Await tex_fetch2() { return {*this, OpKind::TexFetch2, 1}; }
  Await barrier() { return {*this, OpKind::Barrier, 1}; }
  Await global_load_u32_async() { return {*this, OpKind::GlobalLoadU32Async, 1}; }
  Await async_wait() { return {*this, OpKind::AsyncWait, 1}; }
};

}  // namespace acgpu::gpusim
