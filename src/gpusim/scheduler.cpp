#include "gpusim/scheduler.h"

#include <algorithm>
#include <bit>

#include "gpusim/coalescer.h"
#include "util/error.h"

namespace acgpu::gpusim {

Scheduler::Scheduler(const GpuConfig& config, DeviceMemory& gmem,
                     const Texture2D* tex, const LaunchDims& dims, KernelFn kernel,
                     const Texture2D* tex2, AccessObserver* observer)
    : cfg_(config), gmem_(gmem), tex_(tex), tex2_(tex2), dims_(dims),
      kernel_(std::move(kernel)), observer_(observer) {
  ACGPU_CHECK(dims.grid_blocks > 0, "launch with zero blocks");
  ACGPU_CHECK(dims.block_threads > 0 && dims.block_threads <= cfg_.max_threads_per_sm,
              "block of " << dims.block_threads << " threads is not launchable");
  warps_per_block_ = (dims.block_threads + Warp::kMaxLanes - 1) / Warp::kMaxLanes;
  sms_.resize(cfg_.num_sms);
  for (auto& sm : sms_)
    sm.tcache = std::make_unique<TextureCache>(cfg_.tex_cache_bytes,
                                               cfg_.tex_cache_line_bytes,
                                               cfg_.tex_cache_assoc);
  tex_l2_ = std::make_unique<TextureCache>(cfg_.tex_l2_bytes,
                                           cfg_.tex_cache_line_bytes,
                                           cfg_.tex_l2_assoc);
}

void Scheduler::schedule(WarpRun* w, double time) {
  events_.push(Event{time, next_seq_++, w});
}

void Scheduler::dispatch_block(std::uint64_t block_id, std::uint32_t sm, double time) {
  auto block = std::make_unique<BlockRun>();
  block->block_id = block_id;
  block->sm = sm;
  if (dims_.shared_bytes > 0)
    block->smem = std::make_unique<SharedMemory>(dims_.shared_bytes);
  block->warps.reserve(warps_per_block_);
  for (std::uint32_t wi = 0; wi < warps_per_block_; ++wi) {
    auto wr = std::make_unique<WarpRun>();
    Warp& warp = wr->warp;
    warp.block_id = block_id;
    warp.warp_in_block = wi;
    warp.block_dim = dims_.block_threads;
    warp.grid_blocks = dims_.grid_blocks;
    warp.lane_count =
        std::min(Warp::kMaxLanes, dims_.block_threads - wi * Warp::kMaxLanes);
    warp.gmem = &gmem_;
    warp.smem = block->smem.get();
    warp.tex = tex_;
    warp.tex2 = tex2_;
    wr->block = block.get();
    wr->task = kernel_(warp);
    ACGPU_CHECK(wr->task.valid(), "kernel factory returned an invalid task");
    block->warps.push_back(std::move(wr));
  }
  sms_[sm].resident++;
  if (observer_)
    observer_->block_started(block_id, warps_per_block_, dims_.block_threads,
                             dims_.shared_bytes);
  for (auto& wr : block->warps) schedule(wr.get(), time);
  active_blocks_.push_back(std::move(block));
}

void Scheduler::finish_block(BlockRun* block, double time) {
  ACGPU_CHECK(block->barrier_queue.empty(),
              "block " << block->block_id << " finished with warps stuck at a barrier");
  const std::uint32_t sm = block->sm;
  sms_[sm].resident--;
  metrics_.blocks_completed++;
  if (observer_) observer_->block_finished(block->block_id);
  auto it = std::find_if(active_blocks_.begin(), active_blocks_.end(),
                         [&](const auto& b) { return b.get() == block; });
  ACGPU_CHECK(it != active_blocks_.end(), "finished block not found among active blocks");
  active_blocks_.erase(it);
  if (!pending_blocks_.empty()) {
    const std::uint64_t next = pending_blocks_.back();
    pending_blocks_.pop_back();
    dispatch_block(next, sm, time);
  }
}

double Scheduler::handle_global(WarpRun* w, double issued) {
  Warp& warp = w->warp;
  const bool is_store = warp.pending == OpKind::GlobalStoreU32;
  const std::uint32_t width = warp.pending == OpKind::GlobalLoadU8 ? 1 : 4;
  const std::uint32_t suppress =
      observer_ ? observer_->memory_access(warp, warp.pending) : 0;

  std::array<DevAddr, Warp::kMaxLanes> active{};
  std::size_t n = 0;
  for (std::uint32_t l = 0; l < warp.lane_count; ++l)
    if (warp.mask[l]) active[n++] = warp.addr[l];
  if (n == 0) return issued;

  const CoalesceResult c =
      coalesce(std::span<const DevAddr>(active.data(), n), width,
               cfg_.coalesce_segment_bytes);
  metrics_.global_requests++;
  metrics_.global_transactions += c.transactions;
  metrics_.global_bytes += c.bytes;

  mem_pipe_free_ = std::max(mem_pipe_free_, issued) +
                   c.transactions * cfg_.cycles_per_segment;

  // Data movement happens at issue order (the event loop processes events in
  // time order, so memory effects are applied in a consistent global order).
  for (std::uint32_t l = 0; l < warp.lane_count; ++l) {
    if (!warp.mask[l]) continue;
    if ((suppress >> l) & 1u) {
      if (!is_store) warp.value[l] = 0;
      continue;
    }
    switch (warp.pending) {
      case OpKind::GlobalLoadU8:
        warp.value[l] = gmem_.load_u8(warp.addr[l]);
        break;
      case OpKind::GlobalLoadU32:
        warp.value[l] = gmem_.load_u32(warp.addr[l]);
        break;
      case OpKind::GlobalStoreU32:
        gmem_.store_u32(warp.addr[l], warp.value[l]);
        break;
      default:
        ACGPU_CHECK(false, "unreachable global op");
    }
  }

  if (is_store) return issued;  // stores retire through the pipe; warp proceeds
  const double ready = mem_pipe_free_ + cfg_.global_latency_cycles;
  metrics_.stall_global_cycles += static_cast<std::uint64_t>(ready - issued);
  return ready;
}

double Scheduler::handle_shared(WarpRun* w, double issued) {
  Warp& warp = w->warp;
  ACGPU_CHECK(warp.smem != nullptr, "shared access in a kernel launched without shared memory");
  const std::uint32_t width = warp.pending == OpKind::SharedLoadU8 ? 1 : 4;
  (void)width;
  const std::uint32_t suppress =
      observer_ ? observer_->memory_access(warp, warp.pending) : 0;

  std::array<std::uint32_t, Warp::kMaxLanes> active{};
  std::size_t n = 0;
  for (std::uint32_t l = 0; l < warp.lane_count; ++l)
    if (warp.mask[l]) active[n++] = static_cast<std::uint32_t>(warp.addr[l]);
  if (n == 0) return issued;

  const BankCost bc = bank_conflicts(std::span<const std::uint32_t>(active.data(), n),
                                     cfg_.shared_banks, cfg_.shared_conflict_group);
  metrics_.shared_requests++;
  metrics_.shared_groups += bc.groups;
  metrics_.shared_conflict_cycles += (bc.total_degree - bc.groups) * cfg_.shared_service_cycles;
  metrics_.shared_max_degree = std::max<std::uint64_t>(metrics_.shared_max_degree, bc.max_degree);

  Sm& sm = sms_[w->block->sm];
  const double unit_start = std::max(issued, sm.shared_free);
  const double cost = bc.total_degree * cfg_.shared_service_cycles;
  sm.shared_free = unit_start + cost;

  // GT200 replays a bank-conflicting access once per extra way, consuming
  // issue slots the other warps of the SM cannot use.
  const double replay =
      static_cast<double>(bc.total_degree - bc.groups) * cfg_.cycles_per_warp_instr;
  sm.issue_free = std::max(sm.issue_free, issued) + replay;
  metrics_.issue_cycles += static_cast<std::uint64_t>(replay);

  for (std::uint32_t l = 0; l < warp.lane_count; ++l) {
    if (!warp.mask[l]) continue;
    if ((suppress >> l) & 1u) {
      if (warp.pending != OpKind::SharedStoreU32) warp.value[l] = 0;
      continue;
    }
    const auto a = static_cast<std::uint32_t>(warp.addr[l]);
    switch (warp.pending) {
      case OpKind::SharedLoadU8:
        warp.value[l] = warp.smem->load_u8(a);
        break;
      case OpKind::SharedLoadU32:
        warp.value[l] = warp.smem->load_u32(a);
        break;
      case OpKind::SharedStoreU32:
        warp.smem->store_u32(a, warp.value[l]);
        break;
      default:
        ACGPU_CHECK(false, "unreachable shared op");
    }
  }

  const double ready = unit_start + cost;
  metrics_.stall_shared_cycles += static_cast<std::uint64_t>(ready - issued);
  return ready;
}

double Scheduler::handle_tex(WarpRun* w, double issued, const Texture2D* texture) {
  Warp& warp = w->warp;
  ACGPU_CHECK(texture != nullptr && texture->bound(),
              "texture fetch without a bound texture");
  const std::uint32_t suppress =
      observer_ ? observer_->memory_access(warp, warp.pending) : 0;
  for (std::uint32_t l = 0; l < warp.lane_count; ++l)
    if (warp.mask[l] && ((suppress >> l) & 1u)) warp.value[l] = 0;

  // Distinct cache lines touched by the warp's active lanes.
  Sm& sm = sms_[w->block->sm];
  std::array<DevAddr, Warp::kMaxLanes> lines{};
  std::size_t n_lines = 0;
  std::uint32_t lane_fetches = 0;
  for (std::uint32_t l = 0; l < warp.lane_count; ++l) {
    if (!warp.mask[l] || ((suppress >> l) & 1u)) continue;
    ++lane_fetches;
    const DevAddr line =
        texture->addr_of(warp.tex_x[l], warp.tex_y[l]) / sm.tcache->line_bytes();
    bool dup = false;
    for (std::size_t j = 0; j < n_lines; ++j)
      if (lines[j] == line) {
        dup = true;
        break;
      }
    if (!dup) lines[n_lines++] = line;
  }
  if (lane_fetches == 0) return issued;

  std::uint32_t l1_miss_lines = 0;
  std::uint32_t l2_miss_lines = 0;
  for (std::size_t j = 0; j < n_lines; ++j) {
    const DevAddr line_addr = lines[j] * sm.tcache->line_bytes();
    if (sm.tcache->access(line_addr)) continue;
    ++l1_miss_lines;
    if (!tex_l2_->access(line_addr)) ++l2_miss_lines;
  }

  metrics_.tex_requests++;
  metrics_.tex_lane_fetches += lane_fetches;
  metrics_.tex_misses += l1_miss_lines;
  metrics_.tex_l2_misses += l2_miss_lines;

  const double unit_start = std::max(issued, sm.tex_free);
  sm.tex_free = unit_start + cfg_.tex_hit_cycles;
  double ready = unit_start + cfg_.tex_hit_cycles;
  if (l1_miss_lines > 0) {
    // L1 misses served from the GPU-wide texture L2; lines missing there
    // move through the global memory system.
    ready = std::max(ready, unit_start + cfg_.tex_l2_latency_cycles);
    if (l2_miss_lines > 0) {
      const double line_occupancy = cfg_.cycles_per_segment *
                                    sm.tcache->line_bytes() /
                                    cfg_.coalesce_segment_bytes;
      mem_pipe_free_ =
          std::max(mem_pipe_free_, unit_start) + l2_miss_lines * line_occupancy;
      ready = std::max(ready, mem_pipe_free_ + cfg_.tex_miss_latency_cycles);
    }
  }

  for (std::uint32_t l = 0; l < warp.lane_count; ++l) {
    if (!warp.mask[l] || ((suppress >> l) & 1u)) continue;
    warp.value[l] =
        static_cast<std::uint32_t>(texture->fetch(warp.tex_x[l], warp.tex_y[l]));
  }

  metrics_.stall_tex_cycles += static_cast<std::uint64_t>(ready - issued);
  return ready;
}

void Scheduler::release_barrier(BlockRun* block, double release, double issued) {
  for (WarpRun* waiting : block->barrier_queue) {
    metrics_.stall_barrier_cycles += static_cast<std::uint64_t>(release - issued);
    schedule(waiting, release);
  }
  block->barrier_queue.clear();
  block->barrier_latest_arrival = 0;
  if (observer_) observer_->barrier_release(block->block_id);
}

void Scheduler::step_warp(WarpRun* w, double t) {
  Sm& sm = sms_[w->block->sm];

  // Wait for the SM issue port (FCFS in event-time order), then execute.
  const double start = std::max(t, sm.issue_free);
  w->warp.pending = OpKind::None;
  w->task.resume();

  if (w->task.done()) {
    metrics_.warps_completed++;
    BlockRun* block = w->block;
    ++block->done_warps;
    if (observer_) {
      observer_->warp_finished(w->warp);
      // Audit mode: a warp exited while siblings wait at a barrier it never
      // reached. Report the divergence and release the waiters so the block
      // can be audited to completion (without an observer this deadlocks
      // into the hard "unfinished blocks" error below).
      const std::uint32_t live =
          static_cast<std::uint32_t>(block->warps.size()) - block->done_warps;
      if (!block->barrier_queue.empty() && block->barrier_queue.size() == live) {
        observer_->barrier_divergence(block->block_id, w->warp);
        release_barrier(block, block->barrier_latest_arrival + cfg_.barrier_cycles,
                        start);
      }
    }
    if (block->done_warps == block->warps.size()) finish_block(block, start);
    last_time_ = std::max(last_time_, start);
    return;
  }

  Warp& warp = w->warp;
  const std::uint32_t instrs =
      warp.pending == OpKind::Compute ? std::max(1u, warp.pending_instrs) : 1u;
  const double issue_time = static_cast<double>(instrs) * cfg_.cycles_per_warp_instr;
  const double issued = start + issue_time;
  sm.issue_free = issued;
  metrics_.warp_instructions += instrs;
  metrics_.issue_cycles += static_cast<std::uint64_t>(issue_time);

  double ready = issued;
  switch (warp.pending) {
    case OpKind::Compute:
      break;
    case OpKind::GlobalLoadU8:
    case OpKind::GlobalLoadU32:
    case OpKind::GlobalStoreU32:
      ready = handle_global(w, issued);
      break;
    case OpKind::GlobalLoadU32Async: {
      ACGPU_CHECK(!w->async_pending,
                  "async load issued while one is already outstanding");
      // Same transaction/pipe accounting as a blocking load, but the warp
      // keeps running; data is captured at issue (consistent memory order)
      // into the side buffer and the remaining latency is paid at AsyncWait.
      const std::uint32_t suppress =
          observer_ ? observer_->memory_access(warp, warp.pending) : 0;
      std::array<DevAddr, Warp::kMaxLanes> active{};
      std::size_t n = 0;
      for (std::uint32_t l = 0; l < warp.lane_count; ++l)
        if (warp.mask[l]) active[n++] = warp.addr[l];
      if (n > 0) {
        const CoalesceResult c = coalesce(std::span<const DevAddr>(active.data(), n),
                                          4, cfg_.coalesce_segment_bytes);
        metrics_.global_requests++;
        metrics_.global_transactions += c.transactions;
        metrics_.global_bytes += c.bytes;
        mem_pipe_free_ = std::max(mem_pipe_free_, issued) +
                         c.transactions * cfg_.cycles_per_segment;
        for (std::uint32_t l = 0; l < warp.lane_count; ++l)
          if (warp.mask[l])
            warp.async_value[l] =
                ((suppress >> l) & 1u) ? 0 : gmem_.load_u32(warp.addr[l]);
        w->async_ready = mem_pipe_free_ + cfg_.global_latency_cycles;
        w->async_pending = true;
      } else {
        w->async_ready = issued;
        w->async_pending = true;
      }
      break;
    }
    case OpKind::AsyncWait: {
      ACGPU_CHECK(w->async_pending, "AsyncWait without an outstanding async load");
      ready = std::max(issued, w->async_ready);
      metrics_.stall_global_cycles += static_cast<std::uint64_t>(ready - issued);
      warp.value = warp.async_value;
      w->async_pending = false;
      break;
    }
    case OpKind::SharedLoadU8:
    case OpKind::SharedLoadU32:
    case OpKind::SharedStoreU32:
      ready = handle_shared(w, issued);
      break;
    case OpKind::TexFetch:
      ready = handle_tex(w, issued, warp.tex);
      break;
    case OpKind::TexFetch2:
      ready = handle_tex(w, issued, warp.tex2);
      break;
    case OpKind::Barrier: {
      BlockRun* block = w->block;
      metrics_.barriers++;
      if (observer_) observer_->barrier_arrival(warp);
      block->barrier_queue.push_back(w);
      block->barrier_latest_arrival = std::max(block->barrier_latest_arrival, issued);
      const std::uint32_t live =
          static_cast<std::uint32_t>(block->warps.size()) - block->done_warps;
      ACGPU_CHECK(block->barrier_queue.size() <= live,
                  "barrier arrivals exceed live warps in block " << block->block_id);
      if (block->barrier_queue.size() == live)
        release_barrier(block, block->barrier_latest_arrival + cfg_.barrier_cycles,
                        issued);
      last_time_ = std::max(last_time_, issued);
      return;  // resumption scheduled by the barrier release
    }
    case OpKind::None:
      ACGPU_CHECK(false, "warp suspended without a pending instruction");
  }

  last_time_ = std::max(last_time_, ready);
  schedule(w, ready);
}

RunStats Scheduler::run(const std::vector<std::uint64_t>& block_ids) {
  ACGPU_CHECK(!block_ids.empty(), "Scheduler::run with no blocks");
  metrics_ = Metrics{};
  last_time_ = 0;
  mem_pipe_free_ = 0;
  for (auto& sm : sms_) {
    sm.issue_free = sm.shared_free = sm.tex_free = 0;
    sm.resident = 0;
    sm.tcache->clear();
  }
  tex_l2_->clear();

  const std::uint32_t occupancy =
      cfg_.occupancy_blocks(dims_.block_threads, dims_.shared_bytes);

  // Pending stack holds the tail of the id list; initial waves fill SMs
  // round-robin, mirroring the hardware block scheduler.
  pending_blocks_.assign(block_ids.rbegin(), block_ids.rend());
  std::uint32_t sm_rr = 0;
  for (std::uint32_t wave = 0; wave < occupancy && !pending_blocks_.empty(); ++wave) {
    for (std::uint32_t s = 0; s < cfg_.num_sms && !pending_blocks_.empty(); ++s) {
      const std::uint64_t id = pending_blocks_.back();
      pending_blocks_.pop_back();
      dispatch_block(id, sm_rr % cfg_.num_sms, 0.0);
      ++sm_rr;
    }
  }

  while (!events_.empty()) {
    const Event ev = events_.top();
    events_.pop();
    step_warp(ev.warp, ev.time);
  }
  ACGPU_CHECK(active_blocks_.empty() && pending_blocks_.empty(),
              "simulation drained its event queue with unfinished blocks (deadlock?)");

  RunStats stats;
  stats.makespan_cycles = last_time_;
  stats.simulated_blocks = block_ids.size();
  stats.metrics = metrics_;
  return stats;
}

}  // namespace acgpu::gpusim
