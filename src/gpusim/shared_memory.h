// Per-block shared memory: storage plus the 16-bank conflict model
// (Section IV of the paper — the diagonal store scheme exists to make the
// degree computed here equal to 1).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/error.h"

namespace acgpu::gpusim {

/// Result of running one warp access through the bank model.
struct BankCost {
  std::uint32_t groups = 0;        ///< conflict groups (half-warps) processed
  std::uint32_t total_degree = 0;  ///< sum of per-group conflict degrees
  std::uint32_t max_degree = 0;    ///< worst group
};

/// Computes conflict degrees for one warp-level shared access. `addrs` are
/// active lanes' byte addresses in shared-memory space, processed in groups
/// of `group` lanes (16 = half-warp on GT200). Within a group, the degree is
/// the maximum number of *distinct words* mapped to one bank; all lanes
/// reading the same word count once (hardware broadcast).
BankCost bank_conflicts(std::span<const std::uint32_t> addrs, std::uint32_t banks,
                        std::uint32_t group);

/// Storage for one resident block's shared memory.
class SharedMemory {
 public:
  explicit SharedMemory(std::uint32_t bytes) : bytes_(bytes, 0) {
    ACGPU_CHECK(bytes > 0, "SharedMemory: zero size");
  }

  std::uint32_t size() const { return static_cast<std::uint32_t>(bytes_.size()); }

  std::uint8_t load_u8(std::uint32_t a) const {
    bounds_check(a, 1);
    return bytes_[a];
  }
  std::uint32_t load_u32(std::uint32_t a) const {
    bounds_check(a, 4);
    std::uint32_t v;
    std::memcpy(&v, bytes_.data() + a, 4);
    return v;
  }
  void store_u8(std::uint32_t a, std::uint8_t v) {
    bounds_check(a, 1);
    bytes_[a] = v;
  }
  void store_u32(std::uint32_t a, std::uint32_t v) {
    bounds_check(a, 4);
    std::memcpy(bytes_.data() + a, &v, 4);
  }

  void clear() { std::fill(bytes_.begin(), bytes_.end(), std::uint8_t{0}); }

 private:
  void bounds_check(std::uint32_t a, std::uint32_t n) const {
    ACGPU_CHECK(static_cast<std::size_t>(a) + n <= bytes_.size(),
                "shared memory access [" << a << ", " << a + n << ") out of bounds (size "
                                         << bytes_.size() << ")");
  }

  std::vector<std::uint8_t> bytes_;
};

}  // namespace acgpu::gpusim
