// Simulated device (global) memory: one flat little-endian address space
// with a bump allocator, mirroring cudaMalloc + cudaMemcpy.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/error.h"

namespace acgpu::gpusim {

/// Byte address in simulated device memory.
using DevAddr = std::uint64_t;

class DeviceMemory {
 public:
  /// `capacity` bytes of device memory (GTX 285: 1 GB).
  explicit DeviceMemory(std::size_t capacity);

  std::size_t capacity() const { return bytes_.size(); }
  std::size_t allocated() const { return next_; }

  /// Bump allocation, 256-byte aligned by default (texture/segment friendly).
  DevAddr alloc(std::size_t bytes, std::size_t align = 256);

  /// Stack discipline for sweeps: mark() the allocator position, allocate
  /// per-configuration buffers, then release(mark) to reuse the space.
  std::size_t mark() const { return next_; }
  void release(std::size_t m) {
    ACGPU_CHECK(m <= next_, "DeviceMemory::release: mark " << m
                                << " is above the allocation point " << next_);
    next_ = m;
  }

  /// Host -> device copy (cudaMemcpyHostToDevice).
  void copy_in(DevAddr dst, const void* src, std::size_t bytes);
  /// Device -> host copy (cudaMemcpyDeviceToHost).
  void copy_out(void* dst, DevAddr src, std::size_t bytes) const;
  void fill(DevAddr dst, std::uint8_t value, std::size_t bytes);

  std::uint8_t load_u8(DevAddr a) const {
    bounds_check(a, 1);
    return bytes_[a];
  }
  std::uint32_t load_u32(DevAddr a) const {
    bounds_check(a, 4);
    std::uint32_t v;
    std::memcpy(&v, bytes_.data() + a, 4);
    return v;
  }
  std::int32_t load_i32(DevAddr a) const {
    return static_cast<std::int32_t>(load_u32(a));
  }
  void store_u8(DevAddr a, std::uint8_t v) {
    bounds_check(a, 1);
    bytes_[a] = v;
  }
  void store_u32(DevAddr a, std::uint32_t v) {
    bounds_check(a, 4);
    std::memcpy(bytes_.data() + a, &v, 4);
  }
  void store_i32(DevAddr a, std::int32_t v) {
    store_u32(a, static_cast<std::uint32_t>(v));
  }

  /// Direct read-only view (texture binding, bulk verification).
  const std::uint8_t* raw(DevAddr a, std::size_t bytes) const {
    bounds_check(a, bytes);
    return bytes_.data() + a;
  }

 private:
  void bounds_check(DevAddr a, std::size_t bytes) const {
    ACGPU_CHECK(a + bytes <= bytes_.size(),
                "device memory access [" << a << ", " << a + bytes
                    << ") out of bounds (capacity " << bytes_.size() << ")");
  }

  std::vector<std::uint8_t> bytes_;
  std::size_t next_ = 0;
};

}  // namespace acgpu::gpusim
