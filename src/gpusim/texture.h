// 2-D int32 texture view over device memory — how the paper binds the STT.
//
// A texture is read-only, addressed by (x=column, y=row), with a row pitch
// so rows can be segment-aligned. The texture cache (texture_cache.h) models
// the on-chip caching; this class only does addressing and data fetch.
#pragma once

#include <cstdint>

#include "gpusim/device_memory.h"

namespace acgpu::gpusim {

class Texture2D {
 public:
  Texture2D() = default;

  /// Binds `rows` x `width` int32 elements at `base`, rows `pitch_elems`
  /// elements apart (pitch_elems >= width).
  Texture2D(const DeviceMemory* mem, DevAddr base, std::uint32_t width,
            std::uint32_t rows, std::uint32_t pitch_elems);

  std::uint32_t width() const { return width_; }
  std::uint32_t rows() const { return rows_; }

  /// Byte address of element (x, y) — what the texture cache indexes on.
  DevAddr addr_of(std::uint32_t x, std::uint32_t y) const {
    return base_ + (static_cast<DevAddr>(y) * pitch_elems_ + x) * 4;
  }

  /// Data fetch (bounds-checked against the bound region).
  std::int32_t fetch(std::uint32_t x, std::uint32_t y) const {
    ACGPU_CHECK(x < width_ && y < rows_,
                "texture fetch (" << x << "," << y << ") outside " << width_
                    << "x" << rows_ << " binding");
    return mem_->load_i32(addr_of(x, y));
  }

  bool bound() const { return mem_ != nullptr; }

 private:
  const DeviceMemory* mem_ = nullptr;
  DevAddr base_ = 0;
  std::uint32_t width_ = 0;
  std::uint32_t rows_ = 0;
  std::uint32_t pitch_elems_ = 0;
};

}  // namespace acgpu::gpusim
