#include "gpusim/coalescer.h"

#include <algorithm>

#include "util/error.h"

namespace acgpu::gpusim {

std::vector<DevAddr> distinct_segments(std::span<const DevAddr> addrs,
                                       std::uint32_t access_bytes,
                                       std::uint32_t segment_bytes) {
  ACGPU_CHECK(segment_bytes > 0 && (segment_bytes & (segment_bytes - 1)) == 0,
              "segment size must be a power of two, got " << segment_bytes);
  ACGPU_CHECK(access_bytes > 0, "access width must be positive");
  std::vector<DevAddr> segs;
  segs.reserve(addrs.size());
  for (DevAddr a : addrs) {
    const DevAddr first = a / segment_bytes;
    const DevAddr last = (a + access_bytes - 1) / segment_bytes;
    for (DevAddr s = first; s <= last; ++s) segs.push_back(s * segment_bytes);
  }
  std::sort(segs.begin(), segs.end());
  segs.erase(std::unique(segs.begin(), segs.end()), segs.end());
  return segs;
}

CoalesceResult coalesce(std::span<const DevAddr> addrs, std::uint32_t access_bytes,
                        std::uint32_t segment_bytes) {
  const auto segs = distinct_segments(addrs, access_bytes, segment_bytes);
  CoalesceResult r;
  r.transactions = static_cast<std::uint32_t>(segs.size());
  r.bytes = static_cast<std::uint64_t>(segs.size()) * segment_bytes;
  return r;
}

}  // namespace acgpu::gpusim
