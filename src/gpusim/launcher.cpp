#include "gpusim/launcher.h"

#include <numeric>

#include "util/error.h"

namespace acgpu::gpusim {
namespace {

/// Evenly spaced sample of `want` block ids out of [0, grid). The grid tail
/// (a possibly partial final block) is pinned into the sample.
std::vector<std::uint64_t> sample_blocks(std::uint64_t grid, std::uint64_t want) {
  std::vector<std::uint64_t> ids;
  if (want >= grid) {
    ids.resize(grid);
    std::iota(ids.begin(), ids.end(), 0);
    return ids;
  }
  ids.reserve(want);
  for (std::uint64_t i = 0; i < want; ++i) ids.push_back(i * grid / want);
  ids.back() = grid - 1;
  return ids;
}

}  // namespace

LaunchResult launch(const GpuConfig& config, DeviceMemory& gmem,
                    const Texture2D* tex, const LaunchDims& dims, KernelFn kernel,
                    const LaunchOptions& options, const Texture2D* tex2) {
  ACGPU_CHECK(dims.grid_blocks > 0, "launch: empty grid");
  Scheduler scheduler(config, gmem, tex, dims, std::move(kernel), tex2,
                      options.observer);

  std::vector<std::uint64_t> ids;
  if (options.mode == SimMode::Functional) {
    ids = sample_blocks(dims.grid_blocks, dims.grid_blocks);
  } else {
    const std::uint32_t occupancy =
        config.occupancy_blocks(dims.block_threads, dims.shared_bytes);
    const std::uint64_t per_wave =
        static_cast<std::uint64_t>(config.num_sms) * occupancy;
    const std::uint64_t want = std::max<std::uint64_t>(
        1, per_wave * std::max(1u, options.sample_waves));
    ids = sample_blocks(dims.grid_blocks, want);
  }

  const RunStats stats = scheduler.run(ids);

  LaunchResult result;
  result.sim_makespan_cycles = stats.makespan_cycles;
  result.simulated_blocks = stats.simulated_blocks;
  result.grid_blocks = dims.grid_blocks;
  result.cycles = stats.makespan_cycles * result.scale();
  result.seconds = config.seconds(result.cycles);
  result.metrics = stats.metrics;
  return result;
}

}  // namespace acgpu::gpusim
