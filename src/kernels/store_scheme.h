// Shared-memory placement schemes for the staged input block — the paper's
// Section IV.B.3 and the subject of its Fig. 23 ablation.
//
// The staged region is addressed logically as `owner` chunks of
// `chunk_words` 32-bit words each (owner = the thread that will scan that
// chunk), plus a tail region for the last thread's overlap. A scheme maps
// the logical (owner, word) pair to a physical shared-memory word.
//
//  - kCoalescedNaive: row-major (owner * chunk_words + word). With
//    chunk sizes that are a multiple of 64 bytes this puts word w of every
//    owner on the SAME bank, so the matching phase's lockstep reads are
//    16-way conflicts — the paper's motivating problem.
//  - kDiagonal: the paper's scheme — word w of owner o is rotated to slot
//    (w + o) mod chunk_words inside o's region, so at every matching step
//    the 16 threads of a half-warp hit 16 distinct banks, and the staging
//    stores are conflict-free too.
//  - kSequential is the layout used by the no-coalescing baseline (each
//    thread copies its own chunk serially); physically identical to
//    kCoalescedNaive, listed separately because the *load* pattern differs.
#pragma once

#include <cstdint>
#include <string>

namespace acgpu::kernels {

enum class StoreScheme : std::uint8_t {
  kSequential,      ///< per-thread serial copy, row-major layout
  kCoalescedNaive,  ///< coalesced loads, row-major stores (Fig 23 baseline)
  kDiagonal,        ///< coalesced loads, bank-conflict-free diagonal stores
};

const char* to_string(StoreScheme scheme);

/// Physical shared-memory *word* index for logical (owner, word).
/// `chunk_words` is the per-owner region size in words; the tail overlap
/// region is addressed as owner == num_chunks and is stored row-major in
/// every scheme (only one thread ever reads it at a given step).
std::uint32_t map_word(StoreScheme scheme, std::uint32_t owner, std::uint32_t word,
                       std::uint32_t chunk_words);

/// Physical shared-memory *byte* address for a logical byte offset into the
/// staged region (logical offset = position within the block's data,
/// chunk-major). Used by the matching phase.
std::uint32_t map_byte(StoreScheme scheme, std::uint32_t logical_byte,
                       std::uint32_t chunk_bytes);

}  // namespace acgpu::kernels
