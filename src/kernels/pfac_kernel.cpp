#include "kernels/pfac_kernel.h"

#include <algorithm>
#include <array>
#include <optional>

#include "util/error.h"

namespace acgpu::kernels {

DevicePfac::DevicePfac(gpusim::DeviceMemory& mem, const ac::PfacAutomaton& pfac)
    : host_(&pfac), max_pattern_length_(pfac.max_pattern_length()) {
  const ac::SttMatrix& stt = pfac.stt();
  const gpusim::DevAddr stt_addr = mem.alloc(stt.size_bytes());
  mem.copy_in(stt_addr, stt.data(), stt.size_bytes());
  texture_ = gpusim::Texture2D(&mem, stt_addr, ac::SttMatrix::kColumns, stt.rows(),
                               stt.pitch());

  // Rebuild the CSR from the automaton's accessors (it does not expose the
  // raw arrays; terminal sets are tiny, so this stays cheap).
  std::vector<std::uint32_t> offsets = {0, 0};
  std::vector<std::int32_t> ids;
  for (std::uint32_t s = 0; s < pfac.state_count(); ++s) {
    if (pfac.stt().output_id(static_cast<std::int32_t>(s)) == 0) continue;
    ids.insert(ids.end(), pfac.output_begin(static_cast<std::int32_t>(s)),
               pfac.output_end(static_cast<std::int32_t>(s)));
    // offsets index == output id; ids were assigned in state order.
    offsets.push_back(static_cast<std::uint32_t>(ids.size()));
  }
  out_begin_addr_ = mem.alloc(offsets.size() * 4);
  mem.copy_in(out_begin_addr_, offsets.data(), offsets.size() * 4);
  out_ids_addr_ = mem.alloc(std::max<std::size_t>(1, ids.size() * 4));
  if (!ids.empty()) mem.copy_in(out_ids_addr_, ids.data(), ids.size() * 4);
}

namespace {

using gpusim::DevAddr;
using gpusim::Warp;
using gpusim::WarpTask;

constexpr std::uint32_t L = Warp::kMaxLanes;

struct KParams {
  DevAddr text_addr = 0;
  std::uint64_t text_len = 0;
  std::uint32_t max_len = 0;
  DevAddr counts = 0;
  DevAddr records = 0;
  std::uint32_t capacity = 0;
  std::uint32_t compute_per_byte = 0;
};

WarpTask pfac_kernel_body(Warp& w, KParams p) {
  // Lane l starts matching at text position global_thread(l); state -1 (dead)
  // retires the lane. Threads past the end start dead.
  std::array<std::int32_t, L> state{};
  std::array<std::uint32_t, L> cnt{};
  std::array<bool, L> alive{};
  for (std::uint32_t l = 0; l < w.lane_count; ++l)
    alive[l] = w.global_thread(l) < p.text_len;

  std::array<std::int32_t, L> oid{};

  for (std::uint32_t step = 0; step < p.max_len; ++step) {
    w.mask_none();
    bool any = false;
    for (std::uint32_t l = 0; l < w.lane_count; ++l) {
      const std::uint64_t pos = w.global_thread(l) + step;
      if (alive[l] && pos < p.text_len) {
        w.mask[l] = true;
        w.addr[l] = p.text_addr + pos;
        any = true;
      } else {
        alive[l] = false;
      }
    }
    if (!any) break;
    const std::array<bool, L> scanning = w.mask;

    // At step 0 consecutive lanes read consecutive bytes — PFAC's naturally
    // coalesced access pattern; divergence sets in as lanes die.
    co_await w.global_load_u8();

    w.mask = scanning;
    for (std::uint32_t l = 0; l < w.lane_count; ++l)
      if (w.mask[l]) {
        w.tex_x[l] = 1 + (w.value[l] & 0xff);
        w.tex_y[l] = static_cast<std::uint32_t>(state[l]);
      }
    co_await w.tex_fetch();
    bool any_alive = false;
    for (std::uint32_t l = 0; l < w.lane_count; ++l)
      if (scanning[l]) {
        state[l] = static_cast<std::int32_t>(w.value[l]);
        if (state[l] == ac::PfacAutomaton::kDead) alive[l] = false;
        else any_alive = true;
      }
    co_await w.compute(p.compute_per_byte);
    if (!any_alive) break;

    // Terminal-output check for surviving lanes.
    w.mask_none();
    for (std::uint32_t l = 0; l < w.lane_count; ++l)
      if (scanning[l] && alive[l]) {
        w.mask[l] = true;
        w.tex_x[l] = 0;
        w.tex_y[l] = static_cast<std::uint32_t>(state[l]);
      }
    const std::array<bool, L> live = w.mask;
    co_await w.tex_fetch();
    bool any_match = false;
    for (std::uint32_t l = 0; l < w.lane_count; ++l) {
      oid[l] = 0;
      if (live[l]) {
        oid[l] = static_cast<std::int32_t>(w.value[l]);
        if (oid[l] != 0) any_match = true;
      }
    }
    if (!any_match) continue;

    // Store (end position, output id); the host expands the terminal set.
    std::array<bool, L> storing{};
    bool any_store = false;
    w.mask_none();
    for (std::uint32_t l = 0; l < w.lane_count; ++l) {
      if (!live[l] || oid[l] == 0) continue;
      if (cnt[l] < p.capacity) {
        storing[l] = true;
        w.mask[l] = true;
        w.addr[l] = p.records + (w.global_thread(l) * p.capacity + cnt[l]) * 8;
        w.value[l] = static_cast<std::uint32_t>(w.global_thread(l) + step);
        any_store = true;
      }
      ++cnt[l];
    }
    if (any_store) {
      co_await w.global_store_u32();
      w.mask = storing;
      for (std::uint32_t l = 0; l < w.lane_count; ++l)
        if (w.mask[l]) {
          w.addr[l] += 4;
          w.value[l] = static_cast<std::uint32_t>(oid[l]);
        }
      co_await w.global_store_u32();
    }
  }

  w.mask_all();
  for (std::uint32_t l = 0; l < w.lane_count; ++l) {
    w.addr[l] = p.counts + w.global_thread(l) * 4;
    w.value[l] = cnt[l];
  }
  co_await w.global_store_u32();
}

}  // namespace

namespace {

struct PfacPlan {
  KParams p;
  gpusim::LaunchDims dims;
  std::uint64_t threads = 0;
  std::uint64_t blocks = 0;
  std::optional<MatchBuffer> buffer;
};

PfacPlan plan_pfac_launch(gpusim::DeviceMemory& mem, const DevicePfac& dpfac,
                          gpusim::DevAddr text_addr, std::uint64_t text_len,
                          const PfacLaunchSpec& spec) {
  ACGPU_CHECK(text_len > 0, "run_pfac_kernel: empty text");
  ACGPU_CHECK(spec.threads_per_block > 0, "threads_per_block must be positive");

  PfacPlan plan;
  plan.threads = text_len;  // one thread per byte
  plan.blocks = (plan.threads + spec.threads_per_block - 1) / spec.threads_per_block;
  plan.buffer.emplace(mem, plan.blocks * spec.threads_per_block, spec.match_capacity);

  KParams& p = plan.p;
  p.text_addr = text_addr;
  p.text_len = text_len;
  p.max_len = dpfac.max_pattern_length();
  p.counts = plan.buffer->counts_base();
  p.records = plan.buffer->records_base();
  p.capacity = spec.match_capacity;
  p.compute_per_byte = spec.compute_per_byte;

  plan.dims.grid_blocks = plan.blocks;
  plan.dims.block_threads = spec.threads_per_block;
  plan.dims.shared_bytes = 0;
  return plan;
}

PfacLaunchOutcome collect_pfac_outcome(const PfacPlan& plan, gpusim::LaunchResult sim,
                                       const gpusim::DeviceMemory& mem,
                                       const DevicePfac& dpfac) {
  PfacLaunchOutcome outcome;
  outcome.sim = sim;
  outcome.threads = plan.threads;
  outcome.blocks = plan.blocks;

  // Expand (end, output id) records against the terminal-output CSR. No
  // ownership filtering: each PFAC instance only reports patterns starting
  // at its own byte, so records are already unique.
  const ac::PfacAutomaton& pfac = dpfac.host_automaton();
  const MatchBuffer::RawCollected raw = plan.buffer->collect_records(mem);
  outcome.matches.total_reported = raw.total_reported;
  outcome.matches.overflowed = raw.overflowed;
  for (const MatchBuffer::Record& rec : raw.records) {
    const auto out_id = static_cast<std::int32_t>(rec.word1);
    for (const std::int32_t* pid = pfac.id_output_begin(out_id);
         pid != pfac.id_output_end(out_id); ++pid)
      outcome.matches.matches.push_back(ac::Match{rec.word0, *pid});
  }
  std::sort(outcome.matches.matches.begin(), outcome.matches.matches.end());
  return outcome;
}

}  // namespace

PfacLaunchOutcome run_pfac_kernel(const gpusim::GpuConfig& config,
                                  gpusim::DeviceMemory& mem, const DevicePfac& dpfac,
                                  gpusim::DevAddr text_addr, std::uint64_t text_len,
                                  const PfacLaunchSpec& spec) {
  const PfacPlan plan = plan_pfac_launch(mem, dpfac, text_addr, text_len, spec);
  const KParams p = plan.p;
  const gpusim::LaunchResult sim = gpusim::launch(
      config, mem, &dpfac.texture(), plan.dims,
      [p](Warp& w) { return pfac_kernel_body(w, p); }, spec.sim);
  return collect_pfac_outcome(plan, sim, mem, dpfac);
}

PfacLaunchOutcome run_pfac_kernel_stream(gpusim::StreamSim& streams,
                                         gpusim::StreamId stream,
                                         const DevicePfac& dpfac,
                                         gpusim::DevAddr text_addr,
                                         std::uint64_t text_len,
                                         const PfacLaunchSpec& spec,
                                         std::string label) {
  gpusim::DeviceMemory& mem = streams.memory();
  const PfacPlan plan = plan_pfac_launch(mem, dpfac, text_addr, text_len, spec);
  const KParams p = plan.p;
  const gpusim::LaunchResult sim = streams.launch(
      stream, &dpfac.texture(), plan.dims,
      [p](Warp& w) { return pfac_kernel_body(w, p); }, spec.sim, nullptr,
      std::move(label));
  return collect_pfac_outcome(plan, sim, mem, dpfac);
}

}  // namespace acgpu::kernels
