#include "kernels/store_scheme.h"

#include "util/error.h"

namespace acgpu::kernels {

const char* to_string(StoreScheme scheme) {
  switch (scheme) {
    case StoreScheme::kSequential: return "sequential";
    case StoreScheme::kCoalescedNaive: return "coalesced-naive";
    case StoreScheme::kDiagonal: return "diagonal";
  }
  return "?";
}

std::uint32_t map_word(StoreScheme scheme, std::uint32_t owner, std::uint32_t word,
                       std::uint32_t chunk_words) {
  ACGPU_CHECK(chunk_words > 0, "map_word: zero chunk_words");
  ACGPU_CHECK(word < chunk_words, "map_word: word " << word << " outside a "
                                      << chunk_words << "-word chunk region");
  switch (scheme) {
    case StoreScheme::kSequential:
    case StoreScheme::kCoalescedNaive:
      return owner * chunk_words + word;
    case StoreScheme::kDiagonal:
      // Rotate within the owner's region; the tail overlap region (word can
      // only come from the owner-past-the-end pseudo chunk) stays row-major.
      return owner * chunk_words + (word + owner) % chunk_words;
  }
  return 0;
}

std::uint32_t map_byte(StoreScheme scheme, std::uint32_t logical_byte,
                       std::uint32_t chunk_bytes) {
  ACGPU_CHECK(chunk_bytes % 4 == 0, "chunk_bytes must be word-aligned, got " << chunk_bytes);
  const std::uint32_t owner = logical_byte / chunk_bytes;
  const std::uint32_t in_chunk = logical_byte % chunk_bytes;
  const std::uint32_t word = in_chunk / 4;
  const std::uint32_t phys_word = map_word(scheme, owner, word, chunk_bytes / 4);
  return phys_word * 4 + (in_chunk % 4);
}

}  // namespace acgpu::kernels
