#include "kernels/packet_kernel.h"

#include <algorithm>
#include <array>

#include "util/error.h"

namespace acgpu::kernels {

DeviceBatch::DeviceBatch(gpusim::DeviceMemory& mem,
                         const workload::PacketTrace& trace)
    : packets_(static_cast<std::uint32_t>(trace.packet_count())),
      data_bytes_(trace.data.size()) {
  ACGPU_CHECK(packets_ > 0, "DeviceBatch: empty trace");
  data_addr_ = mem.alloc(trace.data.size() + 8);
  mem.copy_in(data_addr_, trace.data.data(), trace.data.size());
  mem.fill(data_addr_ + trace.data.size(), 0, 8);
  offsets_addr_ = mem.alloc(trace.offsets.size() * 4);
  mem.copy_in(offsets_addr_, trace.offsets.data(), trace.offsets.size() * 4);
}

namespace {

using gpusim::DevAddr;
using gpusim::Warp;
using gpusim::WarpTask;

constexpr std::uint32_t L = Warp::kMaxLanes;

struct KParams {
  DevAddr data = 0;
  DevAddr offsets = 0;
  std::uint32_t packets = 0;
  DevAddr counts = 0;
  DevAddr records = 0;
  std::uint32_t capacity = 0;
  std::uint32_t compute_per_byte = 0;
};

WarpTask packet_kernel_body(Warp& w, KParams p) {
  // Lane l inspects packet global_thread(l): fetch its bounds from the
  // offsets table (two coalesced loads — consecutive lanes read consecutive
  // offsets), then walk the DFA over the payload.
  std::array<std::uint64_t, L> begin{}, end{};
  std::array<std::int32_t, L> state{};
  std::array<std::uint32_t, L> cnt{};
  std::array<std::int32_t, L> oid{};

  w.mask_none();
  for (std::uint32_t l = 0; l < w.lane_count; ++l) {
    if (w.global_thread(l) < p.packets) {
      w.mask[l] = true;
      w.addr[l] = p.offsets + w.global_thread(l) * 4;
    }
  }
  if (!w.any_active()) co_return;
  const std::array<bool, L> active = w.mask;
  co_await w.global_load_u32();
  for (std::uint32_t l = 0; l < w.lane_count; ++l)
    if (active[l]) begin[l] = w.value[l];
  w.mask = active;
  for (std::uint32_t l = 0; l < w.lane_count; ++l)
    if (w.mask[l]) w.addr[l] = p.offsets + (w.global_thread(l) + 1) * 4;
  co_await w.global_load_u32();
  std::uint64_t max_len = 0;
  for (std::uint32_t l = 0; l < w.lane_count; ++l)
    if (active[l]) {
      end[l] = w.value[l];
      max_len = std::max(max_len, end[l] - begin[l]);
    }

  for (std::uint64_t i = 0; i < max_len; ++i) {
    w.mask_none();
    for (std::uint32_t l = 0; l < w.lane_count; ++l)
      if (active[l] && begin[l] + i < end[l]) {
        w.mask[l] = true;
        w.addr[l] = p.data + begin[l] + i;
      }
    const std::array<bool, L> scanning = w.mask;
    if (!w.any_active()) break;
    co_await w.global_load_u8();

    w.mask = scanning;
    for (std::uint32_t l = 0; l < w.lane_count; ++l)
      if (w.mask[l]) {
        w.tex_x[l] = 1 + (w.value[l] & 0xff);
        w.tex_y[l] = static_cast<std::uint32_t>(state[l]);
      }
    co_await w.tex_fetch();
    for (std::uint32_t l = 0; l < w.lane_count; ++l)
      if (scanning[l]) state[l] = static_cast<std::int32_t>(w.value[l]);
    co_await w.compute(p.compute_per_byte);

    w.mask = scanning;
    for (std::uint32_t l = 0; l < w.lane_count; ++l)
      if (w.mask[l]) {
        w.tex_x[l] = 0;
        w.tex_y[l] = static_cast<std::uint32_t>(state[l]);
      }
    co_await w.tex_fetch();
    bool any_match = false;
    for (std::uint32_t l = 0; l < w.lane_count; ++l) {
      oid[l] = 0;
      if (scanning[l]) {
        oid[l] = static_cast<std::int32_t>(w.value[l]);
        if (oid[l] != 0) any_match = true;
      }
    }
    if (!any_match) continue;

    std::array<bool, L> storing{};
    bool any_store = false;
    w.mask_none();
    for (std::uint32_t l = 0; l < w.lane_count; ++l) {
      if (!scanning[l] || oid[l] == 0) continue;
      if (cnt[l] < p.capacity) {
        storing[l] = true;
        w.mask[l] = true;
        w.addr[l] = p.records + (w.global_thread(l) * p.capacity + cnt[l]) * 8;
        w.value[l] = static_cast<std::uint32_t>(i);  // offset inside the packet
        any_store = true;
      }
      ++cnt[l];
    }
    if (any_store) {
      co_await w.global_store_u32();
      w.mask = storing;
      for (std::uint32_t l = 0; l < w.lane_count; ++l)
        if (w.mask[l]) {
          w.addr[l] += 4;
          w.value[l] = static_cast<std::uint32_t>(oid[l]);
        }
      co_await w.global_store_u32();
    }
  }

  w.mask = active;
  for (std::uint32_t l = 0; l < w.lane_count; ++l)
    if (w.mask[l]) {
      w.addr[l] = p.counts + w.global_thread(l) * 4;
      w.value[l] = cnt[l];
    }
  co_await w.global_store_u32();
}

}  // namespace

PacketLaunchOutcome run_packet_kernel(const gpusim::GpuConfig& config,
                                      gpusim::DeviceMemory& mem,
                                      const DeviceDfa& ddfa, const DeviceBatch& batch,
                                      const PacketLaunchSpec& spec) {
  ACGPU_CHECK(spec.threads_per_block > 0, "threads_per_block must be positive");
  const std::uint64_t blocks =
      (batch.packet_count() + spec.threads_per_block - 1) / spec.threads_per_block;
  MatchBuffer buffer(mem, blocks * spec.threads_per_block, spec.match_capacity);

  KParams p;
  p.data = batch.data_addr();
  p.offsets = batch.offsets_addr();
  p.packets = batch.packet_count();
  p.counts = buffer.counts_base();
  p.records = buffer.records_base();
  p.capacity = spec.match_capacity;
  p.compute_per_byte = spec.compute_per_byte;

  gpusim::LaunchDims dims;
  dims.grid_blocks = blocks;
  dims.block_threads = spec.threads_per_block;
  dims.shared_bytes = 0;

  PacketLaunchOutcome outcome;
  outcome.sim = gpusim::launch(
      config, mem, &ddfa.texture(), dims,
      [p](Warp& w) { return packet_kernel_body(w, p); }, spec.sim);
  outcome.blocks = blocks;

  const ac::Dfa& dfa = ddfa.host_dfa();
  const MatchBuffer::RawCollected raw = buffer.collect_records(mem);
  outcome.total_reported = raw.total_reported;
  outcome.overflowed = raw.overflowed;
  for (const MatchBuffer::Record& rec : raw.records) {
    for (const std::int32_t* pid =
             dfa.id_output_begin(static_cast<std::int32_t>(rec.word1));
         pid != dfa.id_output_end(static_cast<std::int32_t>(rec.word1)); ++pid) {
      outcome.matches.push_back(PacketMatch{static_cast<std::uint32_t>(rec.thread),
                                            rec.word0, *pid});
    }
  }
  std::sort(outcome.matches.begin(), outcome.matches.end());
  return outcome;
}

}  // namespace acgpu::kernels
