#include "kernels/ac_kernel.h"

#include <algorithm>
#include <array>
#include <optional>

#include "util/error.h"

namespace acgpu::kernels {

const char* to_string(Approach approach) {
  switch (approach) {
    case Approach::kGlobalOnly: return "global-only";
    case Approach::kShared: return "shared";
  }
  return "?";
}

const char* to_string(SttPlacement placement) {
  switch (placement) {
    case SttPlacement::kTexture: return "texture";
    case SttPlacement::kGlobal: return "global";
  }
  return "?";
}

namespace {

using gpusim::DevAddr;
using gpusim::Warp;
using gpusim::WarpTask;

constexpr std::uint32_t L = Warp::kMaxLanes;

/// Everything the kernels need, copied by value into the coroutine frame
/// (mirrors a CUDA kernel's parameter block).
struct KParams {
  DevAddr text_addr = 0;
  std::uint64_t text_len = 0;
  std::uint32_t chunk_bytes = 0;
  std::uint32_t overlap = 0;  ///< X-1 extra scan bytes per chunk
  std::uint32_t threads_per_block = 0;
  Approach approach{};
  StoreScheme scheme{};
  SttPlacement placement{};
  DevAddr stt_addr = 0;
  std::uint32_t stt_pitch_bytes = 0;
  DevAddr counts = 0;
  DevAddr records = 0;
  std::uint32_t capacity = 0;
  std::uint32_t compute_per_byte = 0;
  std::uint32_t tiles = 1;  ///< tiles per block (double-buffered kernel)
};

// The matching loop appears in both kernel bodies below. C++20 coroutines
// cannot call a sub-coroutine without dedicated task plumbing, and a lambda
// cannot co_await on behalf of its caller, so the loop is written out twice;
// kernels_ac_kernel_test pins both variants to the serial matcher.

WarpTask ac_kernel_body(Warp& w, KParams p) {
  const std::uint64_t chunk = p.chunk_bytes;
  const std::uint32_t chunk_words = p.chunk_bytes / 4;
  const std::uint64_t block_base =
      w.block_id * static_cast<std::uint64_t>(p.threads_per_block) * chunk;

  // ---------------- staging phase (shared-memory approach) ----------------
  if (p.approach == Approach::kShared) {
    const std::uint64_t block_data_end = std::min<std::uint64_t>(
        p.text_len, block_base + static_cast<std::uint64_t>(p.threads_per_block) * chunk);
    const std::uint64_t block_scan_end =
        std::min<std::uint64_t>(p.text_len, block_data_end + p.overlap);
    const std::uint32_t staged_bytes =
        static_cast<std::uint32_t>(block_scan_end - block_base);
    const std::uint32_t total_words = (staged_bytes + 3) / 4;

    if (p.scheme == StoreScheme::kSequential) {
      // Baseline: each thread copies its own chunk front-to-back. The lane
      // addresses are chunk_bytes apart, so these loads barely coalesce.
      for (std::uint32_t step = 0; step < chunk_words; ++step) {
        w.mask_none();
        for (std::uint32_t l = 0; l < w.lane_count; ++l) {
          const std::uint32_t wi = w.thread_in_block(l) * chunk_words + step;
          if (wi < total_words) {
            w.mask[l] = true;
            w.addr[l] = p.text_addr + block_base + static_cast<std::uint64_t>(wi) * 4;
          }
        }
        if (!w.any_active()) continue;
        const std::array<bool, L> loading = w.mask;
        co_await w.global_load_u32();
        w.mask = loading;
        for (std::uint32_t l = 0; l < w.lane_count; ++l)
          if (w.mask[l])
            w.addr[l] = static_cast<DevAddr>(
                            map_word(p.scheme, w.thread_in_block(l), step, chunk_words)) *
                        4;
        co_await w.shared_store_u32();
      }
      // The overlap tail past the last chunk is copied by thread 0.
      if (w.warp_in_block == 0) {
        const std::uint32_t tail_begin = p.threads_per_block * chunk_words;
        for (std::uint32_t wi = tail_begin; wi < total_words; ++wi) {
          w.mask_none();
          w.mask[0] = true;
          w.addr[0] = p.text_addr + block_base + static_cast<std::uint64_t>(wi) * 4;
          co_await w.global_load_u32();
          w.mask_none();
          w.mask[0] = true;
          w.addr[0] = static_cast<DevAddr>(map_word(p.scheme, wi / chunk_words,
                                                    wi % chunk_words, chunk_words)) *
                      4;
          co_await w.shared_store_u32();
        }
      }
    } else {
      // The paper's cooperative load: in step s, thread t fetches word
      // s*T + t — consecutive lanes hit consecutive words, so each warp's
      // load coalesces into a handful of 128-byte transactions.
      const std::uint32_t T = p.threads_per_block;
      const std::uint32_t steps = (total_words + T - 1) / T;
      std::array<std::uint32_t, L> widx{};
      for (std::uint32_t step = 0; step < steps; ++step) {
        w.mask_none();
        for (std::uint32_t l = 0; l < w.lane_count; ++l) {
          const std::uint32_t wi = step * T + w.thread_in_block(l);
          if (wi < total_words) {
            w.mask[l] = true;
            widx[l] = wi;
            w.addr[l] = p.text_addr + block_base + static_cast<std::uint64_t>(wi) * 4;
          }
        }
        if (!w.any_active()) continue;
        const std::array<bool, L> loading = w.mask;
        co_await w.global_load_u32();
        w.mask = loading;
        for (std::uint32_t l = 0; l < w.lane_count; ++l)
          if (w.mask[l])
            w.addr[l] = static_cast<DevAddr>(map_word(p.scheme, widx[l] / chunk_words,
                                                      widx[l] % chunk_words,
                                                      chunk_words)) *
                        4;
        co_await w.shared_store_u32();
      }
    }
    co_await w.barrier();
  }

  // ---------------- matching phase ----------------
  std::array<std::uint64_t, L> begin{};
  std::array<std::uint64_t, L> own_end{};
  std::array<std::uint64_t, L> scan_len{};
  std::array<std::int32_t, L> state{};
  std::array<std::uint32_t, L> cnt{};
  std::uint64_t max_scan = 0;
  for (std::uint32_t l = 0; l < w.lane_count; ++l) {
    const std::uint64_t tg = w.global_thread(l);
    begin[l] = std::min<std::uint64_t>(p.text_len, tg * chunk);
    own_end[l] = std::min<std::uint64_t>(p.text_len, begin[l] + chunk);
    const std::uint64_t se = std::min<std::uint64_t>(p.text_len, own_end[l] + p.overlap);
    scan_len[l] = se - begin[l];
    max_scan = std::max(max_scan, scan_len[l]);
  }

  std::array<std::int32_t, L> oid{};
  std::array<std::uint32_t, L> byte{};

  for (std::uint64_t i = 0; i < max_scan; ++i) {
    // Byte fetch: from the staged shared block or straight from global.
    w.mask_none();
    for (std::uint32_t l = 0; l < w.lane_count; ++l)
      if (i < scan_len[l]) w.mask[l] = true;
    const std::array<bool, L> scanning = w.mask;
    if (p.approach == Approach::kShared) {
      for (std::uint32_t l = 0; l < w.lane_count; ++l)
        if (w.mask[l]) {
          const std::uint32_t logical =
              w.thread_in_block(l) * p.chunk_bytes + static_cast<std::uint32_t>(i);
          w.addr[l] = map_byte(p.scheme, logical, p.chunk_bytes);
        }
      co_await w.shared_load_u8();
    } else {
      for (std::uint32_t l = 0; l < w.lane_count; ++l)
        if (w.mask[l]) w.addr[l] = p.text_addr + begin[l] + i;
      co_await w.global_load_u8();
    }
    for (std::uint32_t l = 0; l < w.lane_count; ++l)
      if (scanning[l]) byte[l] = w.value[l] & 0xff;

    // State transition: one STT lookup per byte (texture or global ablation).
    w.mask = scanning;
    if (p.placement == SttPlacement::kTexture) {
      for (std::uint32_t l = 0; l < w.lane_count; ++l)
        if (w.mask[l]) {
          w.tex_x[l] = 1 + byte[l];
          w.tex_y[l] = static_cast<std::uint32_t>(state[l]);
        }
      co_await w.tex_fetch();
    } else {
      for (std::uint32_t l = 0; l < w.lane_count; ++l)
        if (w.mask[l])
          w.addr[l] = p.stt_addr +
                      static_cast<std::uint64_t>(state[l]) * p.stt_pitch_bytes +
                      (1 + byte[l]) * 4;
      co_await w.global_load_u32();
    }
    for (std::uint32_t l = 0; l < w.lane_count; ++l)
      if (w.mask[l]) state[l] = static_cast<std::int32_t>(w.value[l]);
    co_await w.compute(p.compute_per_byte);

    // Match column of the new state.
    w.mask = scanning;
    if (p.placement == SttPlacement::kTexture) {
      for (std::uint32_t l = 0; l < w.lane_count; ++l)
        if (w.mask[l]) {
          w.tex_x[l] = 0;
          w.tex_y[l] = static_cast<std::uint32_t>(state[l]);
        }
      co_await w.tex_fetch();
    } else {
      for (std::uint32_t l = 0; l < w.lane_count; ++l)
        if (w.mask[l])
          w.addr[l] = p.stt_addr +
                      static_cast<std::uint64_t>(state[l]) * p.stt_pitch_bytes;
      co_await w.global_load_u32();
    }
    bool any_match = false;
    for (std::uint32_t l = 0; l < w.lane_count; ++l) {
      oid[l] = 0;
      if (scanning[l]) {
        oid[l] = static_cast<std::int32_t>(w.value[l]);
        if (oid[l] != 0) any_match = true;
      }
    }
    if (!any_match) continue;

    // ---------------- match emission ----------------
    // Store the minimal record (position, output id); the host expands the
    // output set and applies the chunk-ownership rule. Per-match table walks
    // on the device would serialise the warp on global latency.
    std::array<bool, L> storing{};
    bool any_store = false;
    w.mask_none();
    for (std::uint32_t l = 0; l < w.lane_count; ++l) {
      if (!scanning[l] || oid[l] == 0) continue;
      if (cnt[l] < p.capacity) {
        storing[l] = true;
        w.mask[l] = true;
        w.addr[l] = p.records + (w.global_thread(l) * p.capacity + cnt[l]) * 8;
        w.value[l] = static_cast<std::uint32_t>(begin[l] + i);
        any_store = true;
      }
      ++cnt[l];
    }
    if (any_store) {
      co_await w.global_store_u32();
      w.mask = storing;
      for (std::uint32_t l = 0; l < w.lane_count; ++l)
        if (w.mask[l]) {
          w.addr[l] += 4;
          w.value[l] = static_cast<std::uint32_t>(oid[l]);
        }
      co_await w.global_store_u32();
    }
  }

  // Final per-thread match count.
  w.mask_all();
  for (std::uint32_t l = 0; l < w.lane_count; ++l) {
    w.addr[l] = p.counts + w.global_thread(l) * 4;
    w.value[l] = cnt[l];
  }
  co_await w.global_store_u32();
}

// ---------------------------------------------------------------------------
// Double-buffered variant (extension beyond the paper): each block owns
// `tiles` consecutive tiles of input. While the block matches tile k out of
// one half of the shared region, it stages tile k+1 into the other half
// with asynchronous global loads interleaved into the matching loop.
// ---------------------------------------------------------------------------
WarpTask ac_db_kernel_body(Warp& w, KParams p) {
  const std::uint32_t T = p.threads_per_block;
  const std::uint32_t chunk_words = p.chunk_bytes / 4;
  const std::uint32_t half_words = (T + 1) * chunk_words;
  const std::uint32_t K = p.tiles;
  const std::uint64_t first_tile = w.block_id * K;

  const auto tile_base = [&](std::uint32_t k) {
    return (first_tile + k) * static_cast<std::uint64_t>(T) * p.chunk_bytes;
  };
  const auto staged_words = [&](std::uint32_t k) -> std::uint32_t {
    const std::uint64_t base = tile_base(k);
    if (base >= p.text_len) return 0;
    const std::uint64_t bytes = std::min<std::uint64_t>(
        p.text_len - base, static_cast<std::uint64_t>(T) * p.chunk_bytes + p.overlap);
    return static_cast<std::uint32_t>((bytes + 3) / 4);
  };

  // ---- synchronous staging of tile 0 into half 0 ----
  {
    const std::uint32_t total = staged_words(0);
    const std::uint32_t steps = (total + T - 1) / T;
    std::array<std::uint32_t, L> widx{};
    for (std::uint32_t step = 0; step < steps; ++step) {
      w.mask_none();
      for (std::uint32_t l = 0; l < w.lane_count; ++l) {
        const std::uint32_t wi = step * T + w.thread_in_block(l);
        if (wi < total) {
          w.mask[l] = true;
          widx[l] = wi;
          w.addr[l] = p.text_addr + tile_base(0) + static_cast<std::uint64_t>(wi) * 4;
        }
      }
      if (!w.any_active()) continue;
      const std::array<bool, L> loading = w.mask;
      co_await w.global_load_u32();
      w.mask = loading;
      for (std::uint32_t l = 0; l < w.lane_count; ++l)
        if (w.mask[l])
          w.addr[l] = static_cast<DevAddr>(map_word(p.scheme, widx[l] / chunk_words,
                                                    widx[l] % chunk_words,
                                                    chunk_words)) *
                      4;
      co_await w.shared_store_u32();
    }
    co_await w.barrier();
  }

  std::array<std::int32_t, L> state{};
  std::array<std::uint32_t, L> cnt{};
  std::array<std::int32_t, L> oid{};
  std::array<std::uint32_t, L> byte{};
  std::array<std::uint64_t, L> begin{}, own_end{}, scan_len{};

  for (std::uint32_t k = 0; k < K; ++k) {
    const std::uint32_t cur = k & 1u;
    const std::uint32_t nxt = cur ^ 1u;
    const std::uint32_t cur_base = cur * half_words * 4;

    std::uint64_t max_scan = 0;
    for (std::uint32_t l = 0; l < w.lane_count; ++l) {
      const std::uint64_t vthread =
          (first_tile + k) * T + w.thread_in_block(l);
      begin[l] = std::min<std::uint64_t>(p.text_len, vthread * p.chunk_bytes);
      own_end[l] = std::min<std::uint64_t>(p.text_len, begin[l] + p.chunk_bytes);
      const std::uint64_t se =
          std::min<std::uint64_t>(p.text_len, own_end[l] + p.overlap);
      scan_len[l] = se - begin[l];
      max_scan = std::max(max_scan, scan_len[l]);
      state[l] = 0;
      cnt[l] = 0;
    }

    // Prefetch bookkeeping for tile k+1.
    const std::uint32_t pre_total = (k + 1 < K) ? staged_words(k + 1) : 0;
    const std::uint32_t pre_steps = pre_total ? (pre_total + T - 1) / T : 0;
    std::uint32_t pre_issued = 0, pre_retired = 0;
    std::array<std::uint32_t, L> pre_widx{};
    std::array<bool, L> pre_mask{};
    const std::uint64_t interval =
        pre_steps ? std::max<std::uint64_t>(1, max_scan / (pre_steps + 1)) : 0;

    for (std::uint64_t i = 0; i < max_scan; ++i) {
      // ---- one matching step (same loop as ac_kernel_body's shared path,
      // reading from the current half) ----
      w.mask_none();
      for (std::uint32_t l = 0; l < w.lane_count; ++l)
        if (i < scan_len[l]) w.mask[l] = true;
      const std::array<bool, L> scanning = w.mask;
      if (w.any_active()) {
        for (std::uint32_t l = 0; l < w.lane_count; ++l)
          if (w.mask[l]) {
            const std::uint32_t logical =
                w.thread_in_block(l) * p.chunk_bytes + static_cast<std::uint32_t>(i);
            w.addr[l] = cur_base + map_byte(p.scheme, logical, p.chunk_bytes);
          }
        co_await w.shared_load_u8();
        for (std::uint32_t l = 0; l < w.lane_count; ++l)
          if (scanning[l]) byte[l] = w.value[l] & 0xff;

        w.mask = scanning;
        if (p.placement == SttPlacement::kTexture) {
          for (std::uint32_t l = 0; l < w.lane_count; ++l)
            if (w.mask[l]) {
              w.tex_x[l] = 1 + byte[l];
              w.tex_y[l] = static_cast<std::uint32_t>(state[l]);
            }
          co_await w.tex_fetch();
        } else {
          for (std::uint32_t l = 0; l < w.lane_count; ++l)
            if (w.mask[l])
              w.addr[l] = p.stt_addr +
                          static_cast<std::uint64_t>(state[l]) * p.stt_pitch_bytes +
                          (1 + byte[l]) * 4;
          co_await w.global_load_u32();
        }
        for (std::uint32_t l = 0; l < w.lane_count; ++l)
          if (w.mask[l]) state[l] = static_cast<std::int32_t>(w.value[l]);
        co_await w.compute(p.compute_per_byte);

        w.mask = scanning;
        if (p.placement == SttPlacement::kTexture) {
          for (std::uint32_t l = 0; l < w.lane_count; ++l)
            if (w.mask[l]) {
              w.tex_x[l] = 0;
              w.tex_y[l] = static_cast<std::uint32_t>(state[l]);
            }
          co_await w.tex_fetch();
        } else {
          for (std::uint32_t l = 0; l < w.lane_count; ++l)
            if (w.mask[l])
              w.addr[l] = p.stt_addr +
                          static_cast<std::uint64_t>(state[l]) * p.stt_pitch_bytes;
          co_await w.global_load_u32();
        }
        bool any_match = false;
        for (std::uint32_t l = 0; l < w.lane_count; ++l) {
          oid[l] = 0;
          if (scanning[l]) {
            oid[l] = static_cast<std::int32_t>(w.value[l]);
            if (oid[l] != 0) any_match = true;
          }
        }
        if (any_match) {
          std::array<bool, L> storing{};
          bool any_store = false;
          w.mask_none();
          for (std::uint32_t l = 0; l < w.lane_count; ++l) {
            if (!scanning[l] || oid[l] == 0) continue;
            if (cnt[l] < p.capacity) {
              storing[l] = true;
              w.mask[l] = true;
              const std::uint64_t vthread =
                  (first_tile + k) * T + w.thread_in_block(l);
              w.addr[l] = p.records + (vthread * p.capacity + cnt[l]) * 8;
              w.value[l] = static_cast<std::uint32_t>(begin[l] + i);
              any_store = true;
            }
            ++cnt[l];
          }
          if (any_store) {
            co_await w.global_store_u32();
            w.mask = storing;
            for (std::uint32_t l = 0; l < w.lane_count; ++l)
              if (w.mask[l]) {
                w.addr[l] += 4;
                w.value[l] = static_cast<std::uint32_t>(oid[l]);
              }
            co_await w.global_store_u32();
          }
        }
      }

      // ---- interleaved prefetch of tile k+1 ----
      if (pre_steps && interval && (i + 1) % interval == 0) {
        if (pre_issued > pre_retired) {
          // Retire the outstanding async step: wait, then place the words.
          co_await w.async_wait();
          w.mask = pre_mask;
          for (std::uint32_t l = 0; l < w.lane_count; ++l)
            if (w.mask[l])
              w.addr[l] = nxt * half_words * 4 +
                          static_cast<DevAddr>(
                              map_word(p.scheme, pre_widx[l] / chunk_words,
                                       pre_widx[l] % chunk_words, chunk_words)) *
                              4;
          co_await w.shared_store_u32();
          ++pre_retired;
        }
        if (pre_issued < pre_steps && pre_issued == pre_retired) {
          w.mask_none();
          bool any = false;
          for (std::uint32_t l = 0; l < w.lane_count; ++l) {
            const std::uint32_t wi = pre_issued * T + w.thread_in_block(l);
            if (wi < pre_total) {
              w.mask[l] = true;
              pre_widx[l] = wi;
              w.addr[l] =
                  p.text_addr + tile_base(k + 1) + static_cast<std::uint64_t>(wi) * 4;
              any = true;
            }
          }
          if (any) {
            pre_mask = w.mask;
            co_await w.global_load_u32_async();
            ++pre_issued;
          } else {
            // This warp has no lanes in this step; account it as done.
            ++pre_issued;
            ++pre_retired;
          }
        }
      }
    }

    // Drain the remaining staging steps for tile k+1.
    while (pre_retired < pre_steps) {
      if (pre_issued == pre_retired) {
        w.mask_none();
        bool any = false;
        for (std::uint32_t l = 0; l < w.lane_count; ++l) {
          const std::uint32_t wi = pre_issued * T + w.thread_in_block(l);
          if (wi < pre_total) {
            w.mask[l] = true;
            pre_widx[l] = wi;
            w.addr[l] =
                p.text_addr + tile_base(k + 1) + static_cast<std::uint64_t>(wi) * 4;
            any = true;
          }
        }
        if (!any) {
          ++pre_issued;
          ++pre_retired;
          continue;
        }
        pre_mask = w.mask;
        co_await w.global_load_u32_async();
        ++pre_issued;
      }
      co_await w.async_wait();
      w.mask = pre_mask;
      for (std::uint32_t l = 0; l < w.lane_count; ++l)
        if (w.mask[l])
          w.addr[l] = nxt * half_words * 4 +
                      static_cast<DevAddr>(map_word(p.scheme, pre_widx[l] / chunk_words,
                                                    pre_widx[l] % chunk_words,
                                                    chunk_words)) *
                          4;
      co_await w.shared_store_u32();
      ++pre_retired;
    }

    // Per-tile match counts (virtual thread ids), then swap halves.
    w.mask_all();
    for (std::uint32_t l = 0; l < w.lane_count; ++l) {
      const std::uint64_t vthread = (first_tile + k) * T + w.thread_in_block(l);
      w.addr[l] = p.counts + vthread * 4;
      w.value[l] = cnt[l];
    }
    co_await w.global_store_u32();
    co_await w.barrier();
  }
}

}  // namespace

gpusim::DevAddr upload_text(gpusim::DeviceMemory& mem, std::string_view text) {
  ACGPU_CHECK(!text.empty(), "upload_text: empty text");
  // Pad with zeros so staging can load whole words past the end.
  const DevAddr addr = mem.alloc(text.size() + 8);
  mem.copy_in(addr, text.data(), text.size());
  mem.fill(addr + text.size(), 0, 8);
  return addr;
}

namespace {

/// Everything run_ac_kernel computes before the launch — shared between the
/// plain and the stream-enqueued entry points.
struct AcPlan {
  KParams p;
  gpusim::LaunchDims dims;
  std::uint64_t threads = 0;
  std::uint64_t blocks = 0;
  std::uint32_t shared_bytes = 0;
  std::optional<MatchBuffer> buffer;
  gpusim::KernelFn kernel;
};

AcPlan plan_ac_launch(const gpusim::GpuConfig& config, gpusim::DeviceMemory& mem,
                      const DeviceDfa& ddfa, gpusim::DevAddr text_addr,
                      std::uint64_t text_len, const AcLaunchSpec& spec) {
  ACGPU_CHECK(text_len > 0, "run_ac_kernel: empty text");
  ACGPU_CHECK(spec.chunk_bytes > 0 && spec.chunk_bytes % 4 == 0,
              "chunk_bytes must be a positive multiple of 4, got " << spec.chunk_bytes);
  ACGPU_CHECK(spec.threads_per_block > 0, "threads_per_block must be positive");
  ACGPU_CHECK(spec.tiles_per_block >= 1, "tiles_per_block must be >= 1");
  const bool double_buffer = spec.tiles_per_block > 1;
  if (double_buffer) {
    ACGPU_CHECK(spec.approach == Approach::kShared,
                "double buffering applies to the shared approach only");
    ACGPU_CHECK(spec.scheme != StoreScheme::kSequential,
                "double buffering requires a cooperative staging scheme");
  }
  const std::uint32_t overlap =
      ddfa.max_pattern_length() > 0 ? ddfa.max_pattern_length() - 1 : 0;
  ACGPU_CHECK(overlap < spec.chunk_bytes,
              "max pattern length " << ddfa.max_pattern_length()
                  << " requires chunks larger than " << spec.chunk_bytes << "B");

  const std::uint64_t threads = (text_len + spec.chunk_bytes - 1) / spec.chunk_bytes;
  const std::uint64_t threads_per_launch_block =
      static_cast<std::uint64_t>(spec.threads_per_block) * spec.tiles_per_block;
  const std::uint64_t blocks =
      (threads + threads_per_launch_block - 1) / threads_per_launch_block;
  const std::uint64_t threads_padded = blocks * threads_per_launch_block;

  // Staged region: one chunk-sized area per thread plus a full chunk-sized
  // tail region (diagonal mapping needs the full region for the overlap);
  // twice that when double-buffered.
  const std::uint32_t halves = double_buffer ? 2 : 1;
  const std::uint32_t shared_bytes =
      spec.approach == Approach::kShared
          ? halves * (spec.threads_per_block + 1) * spec.chunk_bytes
          : 0;
  ACGPU_CHECK(shared_bytes <= config.shared_mem_bytes,
              "staged block of " << shared_bytes << "B exceeds the SM's "
                                 << config.shared_mem_bytes << "B shared memory");

  AcPlan plan;
  plan.buffer.emplace(mem, threads_padded, spec.match_capacity);
  plan.threads = threads;
  plan.blocks = blocks;
  plan.shared_bytes = shared_bytes;

  KParams& p = plan.p;
  p.text_addr = text_addr;
  p.text_len = text_len;
  p.chunk_bytes = spec.chunk_bytes;
  p.overlap = overlap;
  p.threads_per_block = spec.threads_per_block;
  p.approach = spec.approach;
  p.scheme = spec.scheme;
  p.placement = spec.stt_placement;
  p.stt_addr = ddfa.stt_addr();
  p.stt_pitch_bytes = ddfa.stt_pitch_elems() * 4;
  p.counts = plan.buffer->counts_base();
  p.records = plan.buffer->records_base();
  p.capacity = spec.match_capacity;
  p.compute_per_byte = spec.compute_per_byte;
  p.tiles = spec.tiles_per_block;

  plan.dims.grid_blocks = blocks;
  plan.dims.block_threads = spec.threads_per_block;
  plan.dims.shared_bytes = shared_bytes;

  plan.kernel =
      double_buffer
          ? gpusim::KernelFn([p](Warp& w) { return ac_db_kernel_body(w, p); })
          : gpusim::KernelFn([p](Warp& w) { return ac_kernel_body(w, p); });
  return plan;
}

AcLaunchOutcome collect_ac_outcome(const AcPlan& plan, gpusim::LaunchResult sim,
                                   const gpusim::DeviceMemory& mem,
                                   const DeviceDfa& ddfa, std::uint64_t text_len,
                                   const AcLaunchSpec& spec) {
  AcLaunchOutcome outcome;
  outcome.sim = sim;
  outcome.threads = plan.threads;
  outcome.blocks = plan.blocks;
  outcome.shared_bytes = plan.shared_bytes;

  // Host-side expansion of the raw (position, output id) records: expand the
  // output set and keep matches whose START lies in the reporting thread's
  // own chunk (ac/chunking.h ownership rule). A fresh-state scan can only
  // produce matches starting at or after the thread's chunk begin, so only
  // the upper bound needs testing.
  const ac::Dfa& dfa = ddfa.host_dfa();
  const MatchBuffer::RawCollected raw = plan.buffer->collect_records(mem);
  outcome.matches.total_reported = raw.total_reported;
  outcome.matches.overflowed = raw.overflowed;
  for (const MatchBuffer::Record& rec : raw.records) {
    const std::uint64_t pos = rec.word0;
    const auto out_id = static_cast<std::int32_t>(rec.word1);
    const std::uint64_t chunk_end =
        std::min(text_len, (rec.thread + 1) * spec.chunk_bytes);
    for (const std::int32_t* pid = dfa.id_output_begin(out_id);
         pid != dfa.id_output_end(out_id); ++pid) {
      const std::uint64_t start = pos + 1 - dfa.pattern_length(*pid);
      if (start < chunk_end)
        outcome.matches.matches.push_back(ac::Match{pos, *pid});
    }
  }
  std::sort(outcome.matches.matches.begin(), outcome.matches.matches.end());
  return outcome;
}

}  // namespace

AcLaunchOutcome run_ac_kernel(const gpusim::GpuConfig& config,
                              gpusim::DeviceMemory& mem, const DeviceDfa& ddfa,
                              gpusim::DevAddr text_addr, std::uint64_t text_len,
                              const AcLaunchSpec& spec) {
  const AcPlan plan = plan_ac_launch(config, mem, ddfa, text_addr, text_len, spec);
  const gpusim::LaunchResult sim =
      gpusim::launch(config, mem, &ddfa.texture(), plan.dims, plan.kernel, spec.sim);
  return collect_ac_outcome(plan, sim, mem, ddfa, text_len, spec);
}

AcLaunchOutcome run_ac_kernel_stream(gpusim::StreamSim& streams,
                                     gpusim::StreamId stream, const DeviceDfa& ddfa,
                                     gpusim::DevAddr text_addr, std::uint64_t text_len,
                                     const AcLaunchSpec& spec, std::string label) {
  const gpusim::GpuConfig& config = streams.config();
  gpusim::DeviceMemory& mem = streams.memory();
  const AcPlan plan = plan_ac_launch(config, mem, ddfa, text_addr, text_len, spec);
  const gpusim::LaunchResult sim =
      streams.launch(stream, &ddfa.texture(), plan.dims, plan.kernel, spec.sim,
                     nullptr, std::move(label));
  return collect_ac_outcome(plan, sim, mem, ddfa, text_len, spec);
}

}  // namespace acgpu::kernels
