// Device-resident copy of a compiled AC DFA: the STT uploaded to (texture)
// memory plus the output CSR and pattern-length tables in plain global
// memory — the phase-1 -> phase-2 handoff the paper describes ("construct
// the STT on a single CPU core, then copy it to the GPU").
#pragma once

#include <cstdint>

#include "ac/dfa.h"
#include "gpusim/device_memory.h"
#include "gpusim/texture.h"

namespace acgpu::kernels {

class DeviceDfa {
 public:
  /// Uploads the DFA. Keeps a reference to `dfa` (for host-side expansion of
  /// device match records); the Dfa must outlive this object.
  DeviceDfa(gpusim::DeviceMemory& mem, const ac::Dfa& dfa);

  const ac::Dfa& host_dfa() const { return *host_dfa_; }

  /// 2-D texture over the STT (width 257, one row per state).
  const gpusim::Texture2D& texture() const { return texture_; }

  /// Raw device address and row pitch of the STT — used by the
  /// SttPlacement::kGlobal ablation, which bypasses the texture path.
  gpusim::DevAddr stt_addr() const { return stt_addr_; }
  std::uint32_t stt_pitch_elems() const { return stt_pitch_; }

  gpusim::DevAddr out_begin_addr() const { return out_begin_addr_; }
  gpusim::DevAddr out_ids_addr() const { return out_ids_addr_; }
  gpusim::DevAddr lengths_addr() const { return lengths_addr_; }

  std::uint32_t state_count() const { return states_; }
  std::uint32_t max_pattern_length() const { return max_pattern_length_; }
  std::size_t stt_bytes() const { return stt_bytes_; }

 private:
  const ac::Dfa* host_dfa_ = nullptr;
  gpusim::Texture2D texture_;
  gpusim::DevAddr stt_addr_ = 0;
  std::uint32_t stt_pitch_ = 0;
  gpusim::DevAddr out_begin_addr_ = 0;
  gpusim::DevAddr out_ids_addr_ = 0;
  gpusim::DevAddr lengths_addr_ = 0;
  std::uint32_t states_ = 0;
  std::uint32_t max_pattern_length_ = 0;
  std::size_t stt_bytes_ = 0;
};

}  // namespace acgpu::kernels
