#include "kernels/device_dfa.h"

namespace acgpu::kernels {

DeviceDfa::DeviceDfa(gpusim::DeviceMemory& mem, const ac::Dfa& dfa)
    : host_dfa_(&dfa),
      states_(dfa.state_count()),
      max_pattern_length_(dfa.max_pattern_length()),
      stt_bytes_(dfa.stt_bytes()) {
  const ac::SttMatrix& stt = dfa.stt();
  stt_addr_ = mem.alloc(stt.size_bytes());
  stt_pitch_ = stt.pitch();
  mem.copy_in(stt_addr_, stt.data(), stt.size_bytes());
  texture_ = gpusim::Texture2D(&mem, stt_addr_, ac::SttMatrix::kColumns, stt.rows(),
                               stt.pitch());

  const auto& offsets = dfa.output_offsets();
  out_begin_addr_ = mem.alloc(offsets.size() * 4);
  mem.copy_in(out_begin_addr_, offsets.data(), offsets.size() * 4);

  const auto& ids = dfa.output_ids();
  // Allocate at least one word so the address is valid for dictionaries
  // whose DFA has no output entries (impossible in practice, cheap to allow).
  out_ids_addr_ = mem.alloc(std::max<std::size_t>(1, ids.size() * 4));
  if (!ids.empty()) mem.copy_in(out_ids_addr_, ids.data(), ids.size() * 4);

  const auto& lengths = dfa.pattern_lengths();
  lengths_addr_ = mem.alloc(lengths.size() * 4);
  mem.copy_in(lengths_addr_, lengths.data(), lengths.size() * 4);
}

}  // namespace acgpu::kernels
