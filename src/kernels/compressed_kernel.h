// GPU kernel over the COMPRESSED STT (ac/compressed_stt.h) — the extension
// that connects the paper's ref [19] (Zha/Scarpazza/Sahni's compressed AC)
// to the GPU memory hierarchy. The trade-off under study:
//
//   dense STT:      1 texel fetch per byte, but a table of states x 257
//                   ints that thrashes the texture caches at large
//                   dictionary sizes;
//   compressed STT: the table shrinks 10-60x (bitmap rows + explicit
//                   targets + a shared-memory root row), so the caches stay
//                   hot, at the price of up to three fetches per byte.
//
// Device layout: a "rows" texture of 17 int32 columns per state (8 bitmap
// words, 8 prefix-popcount bases, 1 output id), a "targets" texture holding
// explicit transitions with the match flag packed into bit 31, and the
// 256-entry root row staged into shared memory (it is touched every time a
// byte falls back to the root default — almost every byte on deep states).
#pragma once

#include <cstdint>

#include "ac/compressed_stt.h"
#include "gpusim/launcher.h"
#include "kernels/ac_kernel.h"
#include "kernels/device_dfa.h"
#include "kernels/match_output.h"

namespace acgpu::kernels {

class DeviceCompressedDfa {
 public:
  /// Uploads the compressed table; keeps references to both host objects
  /// (they must outlive this object).
  DeviceCompressedDfa(gpusim::DeviceMemory& mem, const ac::CompressedStt& stt,
                      const ac::Dfa& dfa);

  const gpusim::Texture2D& rows_texture() const { return rows_tex_; }
  const gpusim::Texture2D& targets_texture() const { return targets_tex_; }
  gpusim::DevAddr root_row_addr() const { return root_addr_; }
  const ac::Dfa& host_dfa() const { return *dfa_; }
  std::uint32_t max_pattern_length() const { return dfa_->max_pattern_length(); }
  std::size_t device_bytes() const { return device_bytes_; }

  /// Width of the targets texture (targets index -> (x, y)).
  static constexpr std::uint32_t kTargetsWidth = 4096;
  /// rows texture columns: 0-7 bitmap, 8-15 prefix base, 16 output id.
  static constexpr std::uint32_t kRowColumns = 17;

 private:
  const ac::Dfa* dfa_ = nullptr;
  gpusim::Texture2D rows_tex_;
  gpusim::Texture2D targets_tex_;
  gpusim::DevAddr root_addr_ = 0;
  std::size_t device_bytes_ = 0;
};

struct CompressedLaunchSpec {
  std::uint32_t chunk_bytes = 64;
  std::uint32_t threads_per_block = 192;
  std::uint32_t match_capacity = 8;
  std::uint32_t compute_per_byte = 10;  ///< popcount/rank adds a couple ALU ops
  gpusim::LaunchOptions sim{};
};

/// Shared-memory approach (diagonal staging) over the compressed table.
/// Outcome fields mirror run_ac_kernel's.
AcLaunchOutcome run_compressed_kernel(const gpusim::GpuConfig& config,
                                      gpusim::DeviceMemory& mem,
                                      const DeviceCompressedDfa& dcdfa,
                                      gpusim::DevAddr text_addr,
                                      std::uint64_t text_len,
                                      const CompressedLaunchSpec& spec);

}  // namespace acgpu::kernels
