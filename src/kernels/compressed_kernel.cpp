#include "kernels/compressed_kernel.h"

#include <algorithm>
#include <array>
#include <bit>

#include "kernels/store_scheme.h"
#include "util/error.h"

namespace acgpu::kernels {

namespace {
constexpr std::uint32_t kMatchBit = 0x80000000u;
}

DeviceCompressedDfa::DeviceCompressedDfa(gpusim::DeviceMemory& mem,
                                         const ac::CompressedStt& stt,
                                         const ac::Dfa& dfa)
    : dfa_(&dfa) {
  ACGPU_CHECK(stt.state_count() == dfa.state_count(),
              "DeviceCompressedDfa: compressed table does not match the DFA");
  const std::uint32_t states = stt.state_count();

  // Rows texture: 17 columns per state, pitch padded to 20 (one 32 B line
  // covers the 8 bitmap words). Prefix bases let the kernel compute a
  // target's rank with ONE extra fetch instead of walking all bitmap words.
  const std::uint32_t pitch = 20;
  const gpusim::DevAddr rows_addr =
      mem.alloc(static_cast<std::size_t>(states) * pitch * 4);
  for (std::uint32_t s = 0; s < states; ++s) {
    const gpusim::DevAddr row = rows_addr + static_cast<std::uint64_t>(s) * pitch * 4;
    std::uint32_t prefix = stt.row_base(static_cast<std::int32_t>(s));
    for (std::uint32_t w = 0; w < 8; ++w) {
      const std::uint32_t bits = stt.row_bitmap(static_cast<std::int32_t>(s), w);
      mem.store_u32(row + w * 4, bits);
      mem.store_u32(row + (8 + w) * 4, prefix);
      prefix += static_cast<std::uint32_t>(std::popcount(bits));
    }
    mem.store_i32(row + 16 * 4, stt.output_id(static_cast<std::int32_t>(s)));
  }
  rows_tex_ = gpusim::Texture2D(&mem, rows_addr, kRowColumns, states, pitch);

  // Targets texture: explicit transitions with the match flag in bit 31.
  const auto& targets = stt.targets();
  const std::uint32_t rows =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(
                                     (targets.size() + kTargetsWidth - 1) / kTargetsWidth));
  const gpusim::DevAddr targets_addr =
      mem.alloc(static_cast<std::size_t>(rows) * kTargetsWidth * 4);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    std::uint32_t packed = static_cast<std::uint32_t>(targets[i]);
    if (stt.output_id(targets[i]) != 0) packed |= kMatchBit;
    mem.store_u32(targets_addr + i * 4, packed);
  }
  targets_tex_ = gpusim::Texture2D(&mem, targets_addr, kTargetsWidth, rows,
                                   kTargetsWidth);

  // Root row (fallback transitions), match flags packed, staged to shared
  // memory by every block.
  root_addr_ = mem.alloc(256 * 4);
  for (std::uint32_t b = 0; b < 256; ++b) {
    std::uint32_t packed =
        static_cast<std::uint32_t>(stt.root_next(static_cast<std::uint8_t>(b)));
    if (stt.output_id(stt.root_next(static_cast<std::uint8_t>(b))) != 0)
      packed |= kMatchBit;
    mem.store_u32(root_addr_ + b * 4, packed);
  }

  device_bytes_ = static_cast<std::size_t>(states) * pitch * 4 +
                  static_cast<std::size_t>(rows) * kTargetsWidth * 4 + 256 * 4;
}

namespace {

using gpusim::DevAddr;
using gpusim::Warp;
using gpusim::WarpTask;

constexpr std::uint32_t L = Warp::kMaxLanes;

struct KParams {
  DevAddr text_addr = 0;
  std::uint64_t text_len = 0;
  std::uint32_t chunk_bytes = 0;
  std::uint32_t overlap = 0;
  std::uint32_t threads_per_block = 0;
  DevAddr root_addr = 0;
  std::uint32_t root_shared_base = 0;  ///< shared offset of the staged root row
  DevAddr counts = 0;
  DevAddr records = 0;
  std::uint32_t capacity = 0;
  std::uint32_t compute_per_byte = 0;
};

WarpTask compressed_kernel_body(Warp& w, KParams p) {
  const std::uint64_t chunk = p.chunk_bytes;
  const std::uint32_t chunk_words = p.chunk_bytes / 4;
  const std::uint32_t T = p.threads_per_block;
  const std::uint64_t block_base =
      w.block_id * static_cast<std::uint64_t>(T) * chunk;

  // ---- stage the input block (cooperative, diagonal scheme) ----
  {
    const std::uint64_t data_end =
        std::min<std::uint64_t>(p.text_len, block_base + static_cast<std::uint64_t>(T) * chunk);
    const std::uint64_t scan_end = std::min<std::uint64_t>(p.text_len, data_end + p.overlap);
    const std::uint32_t total_words =
        (static_cast<std::uint32_t>(scan_end - block_base) + 3) / 4;
    const std::uint32_t steps = (total_words + T - 1) / T;
    std::array<std::uint32_t, L> widx{};
    for (std::uint32_t step = 0; step < steps; ++step) {
      w.mask_none();
      for (std::uint32_t l = 0; l < w.lane_count; ++l) {
        const std::uint32_t wi = step * T + w.thread_in_block(l);
        if (wi < total_words) {
          w.mask[l] = true;
          widx[l] = wi;
          w.addr[l] = p.text_addr + block_base + static_cast<std::uint64_t>(wi) * 4;
        }
      }
      if (!w.any_active()) continue;
      const std::array<bool, L> loading = w.mask;
      co_await w.global_load_u32();
      w.mask = loading;
      for (std::uint32_t l = 0; l < w.lane_count; ++l)
        if (w.mask[l])
          w.addr[l] = static_cast<DevAddr>(map_word(StoreScheme::kDiagonal,
                                                    widx[l] / chunk_words,
                                                    widx[l] % chunk_words,
                                                    chunk_words)) *
                      4;
      co_await w.shared_store_u32();
    }
  }
  // ---- stage the root row into shared memory ----
  {
    const std::uint32_t steps = (256 + T - 1) / T;
    for (std::uint32_t step = 0; step < steps; ++step) {
      w.mask_none();
      for (std::uint32_t l = 0; l < w.lane_count; ++l) {
        const std::uint32_t idx = step * T + w.thread_in_block(l);
        if (idx < 256) {
          w.mask[l] = true;
          w.addr[l] = p.root_addr + idx * 4;
        }
      }
      if (!w.any_active()) continue;
      const std::array<bool, L> loading = w.mask;
      co_await w.global_load_u32();
      w.mask = loading;
      for (std::uint32_t l = 0; l < w.lane_count; ++l)
        if (w.mask[l]) {
          const std::uint32_t idx = step * T + w.thread_in_block(l);
          w.addr[l] = p.root_shared_base + idx * 4;
        }
      co_await w.shared_store_u32();
    }
  }
  co_await w.barrier();

  // ---- matching ----
  std::array<std::uint64_t, L> begin{}, own_end{}, scan_len{};
  std::array<std::int32_t, L> state{};
  std::array<std::uint32_t, L> cnt{}, byte{}, bits{}, packed{};
  std::uint64_t max_scan = 0;
  for (std::uint32_t l = 0; l < w.lane_count; ++l) {
    const std::uint64_t tg = w.global_thread(l);
    begin[l] = std::min<std::uint64_t>(p.text_len, tg * chunk);
    own_end[l] = std::min<std::uint64_t>(p.text_len, begin[l] + chunk);
    const std::uint64_t se = std::min<std::uint64_t>(p.text_len, own_end[l] + p.overlap);
    scan_len[l] = se - begin[l];
    max_scan = std::max(max_scan, scan_len[l]);
  }

  for (std::uint64_t i = 0; i < max_scan; ++i) {
    w.mask_none();
    for (std::uint32_t l = 0; l < w.lane_count; ++l)
      if (i < scan_len[l]) w.mask[l] = true;
    const std::array<bool, L> scanning = w.mask;
    if (!w.any_active()) break;

    for (std::uint32_t l = 0; l < w.lane_count; ++l)
      if (w.mask[l]) {
        const std::uint32_t logical =
            w.thread_in_block(l) * p.chunk_bytes + static_cast<std::uint32_t>(i);
        w.addr[l] = map_byte(StoreScheme::kDiagonal, logical, p.chunk_bytes);
      }
    co_await w.shared_load_u8();
    for (std::uint32_t l = 0; l < w.lane_count; ++l)
      if (scanning[l]) byte[l] = w.value[l] & 0xff;

    // Bitmap word of the (state, byte) entry.
    w.mask = scanning;
    for (std::uint32_t l = 0; l < w.lane_count; ++l)
      if (w.mask[l]) {
        w.tex_x[l] = byte[l] >> 5;
        w.tex_y[l] = static_cast<std::uint32_t>(state[l]);
      }
    co_await w.tex_fetch();
    std::array<bool, L> explicit_lane{};
    bool any_explicit = false, any_default = false;
    for (std::uint32_t l = 0; l < w.lane_count; ++l) {
      if (!scanning[l]) continue;
      bits[l] = w.value[l];
      explicit_lane[l] = (bits[l] >> (byte[l] & 31)) & 1;
      (explicit_lane[l] ? any_explicit : any_default) = true;
    }

    // Default lanes: root-row fallback from shared memory.
    if (any_default) {
      w.mask_none();
      for (std::uint32_t l = 0; l < w.lane_count; ++l)
        if (scanning[l] && !explicit_lane[l]) {
          w.mask[l] = true;
          w.addr[l] = p.root_shared_base + byte[l] * 4;
        }
      co_await w.shared_load_u32();
      for (std::uint32_t l = 0; l < w.lane_count; ++l)
        if (scanning[l] && !explicit_lane[l]) packed[l] = w.value[l];
    }
    // Explicit lanes: prefix base then the packed target.
    if (any_explicit) {
      w.mask_none();
      for (std::uint32_t l = 0; l < w.lane_count; ++l)
        if (explicit_lane[l]) {
          w.mask[l] = true;
          w.tex_x[l] = 8 + (byte[l] >> 5);
          w.tex_y[l] = static_cast<std::uint32_t>(state[l]);
        }
      co_await w.tex_fetch();
      std::array<std::uint32_t, L> rank{};
      for (std::uint32_t l = 0; l < w.lane_count; ++l)
        if (explicit_lane[l]) {
          const std::uint32_t bit = byte[l] & 31;
          const std::uint32_t below =
              bit == 0 ? 0u
                       : static_cast<std::uint32_t>(
                             std::popcount(bits[l] & (~0u >> (32 - bit))));
          rank[l] = w.value[l] + below;
        }
      w.mask_none();
      for (std::uint32_t l = 0; l < w.lane_count; ++l)
        if (explicit_lane[l]) {
          w.mask[l] = true;
          w.tex_x[l] = rank[l] % DeviceCompressedDfa::kTargetsWidth;
          w.tex_y[l] = rank[l] / DeviceCompressedDfa::kTargetsWidth;
        }
      co_await w.tex_fetch2();
      for (std::uint32_t l = 0; l < w.lane_count; ++l)
        if (explicit_lane[l]) packed[l] = w.value[l];
    }

    bool any_match = false;
    for (std::uint32_t l = 0; l < w.lane_count; ++l)
      if (scanning[l]) {
        state[l] = static_cast<std::int32_t>(packed[l] & ~kMatchBit);
        if (packed[l] & kMatchBit) any_match = true;
      }
    co_await w.compute(p.compute_per_byte);
    if (!any_match) continue;

    // Output id of match states (rows texture column 16), then the records.
    std::array<bool, L> matched{};
    w.mask_none();
    for (std::uint32_t l = 0; l < w.lane_count; ++l)
      if (scanning[l] && (packed[l] & kMatchBit)) {
        matched[l] = true;
        w.mask[l] = true;
        w.tex_x[l] = 16;
        w.tex_y[l] = static_cast<std::uint32_t>(state[l]);
      }
    co_await w.tex_fetch();

    std::array<bool, L> storing{};
    std::array<std::uint32_t, L> oid{};
    bool any_store = false;
    for (std::uint32_t l = 0; l < w.lane_count; ++l)
      if (matched[l]) oid[l] = w.value[l];
    w.mask_none();
    for (std::uint32_t l = 0; l < w.lane_count; ++l) {
      if (!matched[l]) continue;
      if (cnt[l] < p.capacity) {
        storing[l] = true;
        w.mask[l] = true;
        w.addr[l] = p.records + (w.global_thread(l) * p.capacity + cnt[l]) * 8;
        w.value[l] = static_cast<std::uint32_t>(begin[l] + i);
        any_store = true;
      }
      ++cnt[l];
    }
    if (any_store) {
      co_await w.global_store_u32();
      w.mask = storing;
      for (std::uint32_t l = 0; l < w.lane_count; ++l)
        if (w.mask[l]) {
          w.addr[l] += 4;
          w.value[l] = oid[l];
        }
      co_await w.global_store_u32();
    }
  }

  w.mask_all();
  for (std::uint32_t l = 0; l < w.lane_count; ++l) {
    w.addr[l] = p.counts + w.global_thread(l) * 4;
    w.value[l] = cnt[l];
  }
  co_await w.global_store_u32();
}

}  // namespace

AcLaunchOutcome run_compressed_kernel(const gpusim::GpuConfig& config,
                                      gpusim::DeviceMemory& mem,
                                      const DeviceCompressedDfa& dcdfa,
                                      gpusim::DevAddr text_addr,
                                      std::uint64_t text_len,
                                      const CompressedLaunchSpec& spec) {
  ACGPU_CHECK(text_len > 0, "run_compressed_kernel: empty text");
  ACGPU_CHECK(spec.chunk_bytes > 0 && spec.chunk_bytes % 4 == 0,
              "chunk_bytes must be a positive multiple of 4");
  const std::uint32_t overlap =
      dcdfa.max_pattern_length() > 0 ? dcdfa.max_pattern_length() - 1 : 0;
  ACGPU_CHECK(overlap < spec.chunk_bytes,
              "max pattern length requires chunks larger than " << spec.chunk_bytes);

  const std::uint64_t threads = (text_len + spec.chunk_bytes - 1) / spec.chunk_bytes;
  const std::uint64_t blocks =
      (threads + spec.threads_per_block - 1) / spec.threads_per_block;

  // Staged input (+ tail region) plus the 1 KB root row.
  const std::uint32_t input_bytes = (spec.threads_per_block + 1) * spec.chunk_bytes;
  const std::uint32_t shared_bytes = input_bytes + 256 * 4;
  ACGPU_CHECK(shared_bytes <= config.shared_mem_bytes,
              "staged block of " << shared_bytes << "B exceeds shared memory");

  MatchBuffer buffer(mem, blocks * spec.threads_per_block, spec.match_capacity);

  KParams p;
  p.text_addr = text_addr;
  p.text_len = text_len;
  p.chunk_bytes = spec.chunk_bytes;
  p.overlap = overlap;
  p.threads_per_block = spec.threads_per_block;
  p.root_addr = dcdfa.root_row_addr();
  p.root_shared_base = input_bytes;
  p.counts = buffer.counts_base();
  p.records = buffer.records_base();
  p.capacity = spec.match_capacity;
  p.compute_per_byte = spec.compute_per_byte;

  gpusim::LaunchDims dims;
  dims.grid_blocks = blocks;
  dims.block_threads = spec.threads_per_block;
  dims.shared_bytes = shared_bytes;

  AcLaunchOutcome outcome;
  outcome.sim = gpusim::launch(
      config, mem, &dcdfa.rows_texture(), dims,
      [p](Warp& w) { return compressed_kernel_body(w, p); }, spec.sim,
      &dcdfa.targets_texture());
  outcome.threads = threads;
  outcome.blocks = blocks;
  outcome.shared_bytes = shared_bytes;

  const ac::Dfa& dfa = dcdfa.host_dfa();
  const MatchBuffer::RawCollected raw = buffer.collect_records(mem);
  outcome.matches.total_reported = raw.total_reported;
  outcome.matches.overflowed = raw.overflowed;
  for (const MatchBuffer::Record& rec : raw.records) {
    const std::uint64_t pos = rec.word0;
    const auto out_id = static_cast<std::int32_t>(rec.word1);
    const std::uint64_t chunk_end =
        std::min(text_len, (rec.thread + 1) * spec.chunk_bytes);
    for (const std::int32_t* pid = dfa.id_output_begin(out_id);
         pid != dfa.id_output_end(out_id); ++pid) {
      const std::uint64_t start = pos + 1 - dfa.pattern_length(*pid);
      if (start < chunk_end)
        outcome.matches.matches.push_back(ac::Match{pos, *pid});
    }
  }
  std::sort(outcome.matches.matches.begin(), outcome.matches.matches.end());
  return outcome;
}

}  // namespace acgpu::kernels
