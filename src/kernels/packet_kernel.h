// Packet-batch inspection kernel — the Gnort [16] deployment model the
// paper cites: a batch of packets ships to the GPU and each thread runs the
// AC machine over one whole packet (no chunk overlap needed — packets are
// independent matching domains). The STT rides the texture path as usual.
#pragma once

#include <cstdint>

#include "gpusim/launcher.h"
#include "kernels/device_dfa.h"
#include "kernels/match_output.h"
#include "workload/packet_trace.h"

namespace acgpu::kernels {

/// Device-resident packet batch: flattened payload bytes plus the offsets
/// table, as uploaded from a workload::PacketTrace.
class DeviceBatch {
 public:
  DeviceBatch(gpusim::DeviceMemory& mem, const workload::PacketTrace& trace);

  gpusim::DevAddr data_addr() const { return data_addr_; }
  gpusim::DevAddr offsets_addr() const { return offsets_addr_; }
  std::uint32_t packet_count() const { return packets_; }
  std::uint64_t data_bytes() const { return data_bytes_; }

 private:
  gpusim::DevAddr data_addr_ = 0;
  gpusim::DevAddr offsets_addr_ = 0;
  std::uint32_t packets_ = 0;
  std::uint64_t data_bytes_ = 0;
};

struct PacketLaunchSpec {
  std::uint32_t threads_per_block = 256;
  std::uint32_t match_capacity = 16;  ///< match records per packet
  std::uint32_t compute_per_byte = 8;
  gpusim::LaunchOptions sim{};
};

/// One alert: a pattern occurrence inside one packet.
struct PacketMatch {
  std::uint32_t packet = 0;
  std::uint32_t end_in_packet = 0;  ///< offset of the last matched byte
  std::int32_t pattern = 0;

  friend bool operator==(const PacketMatch&, const PacketMatch&) = default;
  friend auto operator<=>(const PacketMatch&, const PacketMatch&) = default;
};

struct PacketLaunchOutcome {
  gpusim::LaunchResult sim;
  std::uint64_t blocks = 0;
  std::vector<PacketMatch> matches;  ///< sorted; complete in Functional mode
  std::uint64_t total_reported = 0;
  bool overflowed = false;
};

PacketLaunchOutcome run_packet_kernel(const gpusim::GpuConfig& config,
                                      gpusim::DeviceMemory& mem,
                                      const DeviceDfa& ddfa, const DeviceBatch& batch,
                                      const PacketLaunchSpec& spec);

}  // namespace acgpu::kernels
