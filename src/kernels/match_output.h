// Device-side match output buffer: per-thread record slots plus a count,
// written by the kernels with plain global stores and decoded on the host.
#pragma once

#include <cstdint>
#include <vector>

#include "ac/match.h"
#include "gpusim/device_memory.h"

namespace acgpu::kernels {

/// Layout: counts_addr[thread] (u32) and, per thread, `capacity` records of
/// two u32 words (match end offset, pattern id). A thread whose matches
/// exceed the capacity keeps counting but drops the excess records; collect()
/// reports the overflow so callers can size the buffer up.
class MatchBuffer {
 public:
  MatchBuffer(gpusim::DeviceMemory& mem, std::uint64_t threads,
              std::uint32_t capacity_per_thread);

  std::uint64_t threads() const { return threads_; }
  std::uint32_t capacity() const { return capacity_; }

  gpusim::DevAddr count_addr(std::uint64_t thread) const {
    return counts_addr_ + thread * 4;
  }
  gpusim::DevAddr record_addr(std::uint64_t thread, std::uint32_t slot) const {
    return records_addr_ + (thread * capacity_ + slot) * 8;
  }
  gpusim::DevAddr counts_base() const { return counts_addr_; }
  gpusim::DevAddr records_base() const { return records_addr_; }

  struct Collected {
    std::vector<ac::Match> matches;  ///< sorted by (end, pattern)
    std::uint64_t total_reported = 0;
    bool overflowed = false;
  };

  /// Reads counts and records back (cudaMemcpyDeviceToHost equivalent),
  /// interpreting each record's two words directly as (end, pattern).
  Collected collect(const gpusim::DeviceMemory& mem) const;

  /// One raw device record with its reporting thread — used by the kernels
  /// that store (position, output id) and expand on the host, where the
  /// thread identity determines chunk ownership.
  struct Record {
    std::uint64_t thread = 0;
    std::uint32_t word0 = 0;  ///< position
    std::uint32_t word1 = 0;  ///< output id
  };
  struct RawCollected {
    std::vector<Record> records;  ///< in (thread, slot) order
    std::uint64_t total_reported = 0;
    bool overflowed = false;
  };
  RawCollected collect_records(const gpusim::DeviceMemory& mem) const;

 private:
  std::uint64_t threads_;
  std::uint32_t capacity_;
  gpusim::DevAddr counts_addr_;
  gpusim::DevAddr records_addr_;
};

}  // namespace acgpu::kernels
