// GPU kernel for PFAC (Parallel Failureless Aho-Corasick, Lin et al.) —
// the related-work design the paper contrasts with: one thread per input
// BYTE, no failure transitions, each thread dies at the first absent edge.
// Included as an extension ablation (bench/ext_pfac_vs_ac).
#pragma once

#include <cstdint>

#include "ac/pfac.h"
#include "gpusim/launcher.h"
#include "gpusim/stream.h"
#include "kernels/match_output.h"

namespace acgpu::kernels {

/// Device-resident failureless automaton: STT texture + terminal-output CSR.
class DevicePfac {
 public:
  /// Keeps a reference to `pfac` (host-side record expansion); it must
  /// outlive this object.
  DevicePfac(gpusim::DeviceMemory& mem, const ac::PfacAutomaton& pfac);

  const ac::PfacAutomaton& host_automaton() const { return *host_; }

  const gpusim::Texture2D& texture() const { return texture_; }
  gpusim::DevAddr out_begin_addr() const { return out_begin_addr_; }
  gpusim::DevAddr out_ids_addr() const { return out_ids_addr_; }
  std::uint32_t max_pattern_length() const { return max_pattern_length_; }

 private:
  const ac::PfacAutomaton* host_ = nullptr;
  gpusim::Texture2D texture_;
  gpusim::DevAddr out_begin_addr_ = 0;
  gpusim::DevAddr out_ids_addr_ = 0;
  std::uint32_t max_pattern_length_ = 0;
};

struct PfacLaunchSpec {
  std::uint32_t threads_per_block = 256;
  std::uint32_t match_capacity = 8;  ///< patterns starting at one position
  std::uint32_t compute_per_byte = 6;
  gpusim::LaunchOptions sim{};
};

struct PfacLaunchOutcome {
  gpusim::LaunchResult sim;
  std::uint64_t threads = 0;
  std::uint64_t blocks = 0;
  MatchBuffer::Collected matches;
};

/// One thread per text byte; matches are reported at their end positions,
/// consistent with every other matcher in the library.
PfacLaunchOutcome run_pfac_kernel(const gpusim::GpuConfig& config,
                                  gpusim::DeviceMemory& mem, const DevicePfac& dpfac,
                                  gpusim::DevAddr text_addr, std::uint64_t text_len,
                                  const PfacLaunchSpec& spec);

/// Stream-aware variant (see run_ac_kernel_stream): the launch is enqueued
/// on `stream` of the StreamSim's timeline; config/memory come from it.
PfacLaunchOutcome run_pfac_kernel_stream(gpusim::StreamSim& streams,
                                         gpusim::StreamId stream,
                                         const DevicePfac& dpfac,
                                         gpusim::DevAddr text_addr,
                                         std::uint64_t text_len,
                                         const PfacLaunchSpec& spec,
                                         std::string label = {});

}  // namespace acgpu::kernels
