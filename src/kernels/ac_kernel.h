// The paper's two GPU matching kernels (Section IV.B.3):
//
//  - kGlobalOnly: every thread scans its chunk (+ overlap) straight out of
//    global memory; the STT is fetched through the texture path.
//  - kShared: each thread block first stages its input block into shared
//    memory (cooperative coalesced 4-byte loads, placement chosen by a
//    StoreScheme), synchronises, then matches out of shared memory.
//
// Both kernels use the same matching loop, the same X-byte chunk-overlap
// rule as ac/chunking.h, and write matches to a MatchBuffer (the output
// CSR + pattern-length tables are read from global memory on a match).
#pragma once

#include <cstdint>
#include <string_view>

#include "ac/dfa.h"
#include "gpusim/launcher.h"
#include "gpusim/stream.h"
#include "kernels/device_dfa.h"
#include "kernels/match_output.h"
#include "kernels/store_scheme.h"

namespace acgpu::kernels {

enum class Approach : std::uint8_t { kGlobalOnly, kShared };

const char* to_string(Approach approach);

/// Where the kernel reads the STT from: the paper places it in texture
/// memory (cached); kGlobal is the ablation that validates that choice.
enum class SttPlacement : std::uint8_t { kTexture, kGlobal };

const char* to_string(SttPlacement placement);

struct AcLaunchSpec {
  Approach approach = Approach::kShared;
  StoreScheme scheme = StoreScheme::kDiagonal;  ///< shared approach only
  /// Per-thread chunk (multiple of 4). The defaults stage (256+1)*32 ≈ 8 KB
  /// per block — the paper's "8~12KB of the 16KB shared memory" regime —
  /// giving 8 resident warps per SM.
  std::uint32_t chunk_bytes = 32;
  std::uint32_t threads_per_block = 256;
  std::uint32_t match_capacity = 64;     ///< record slots per thread
  /// ALU warp-instructions charged per scanned byte (state update, address
  /// arithmetic, bounds checks) — the timing model's main calibration knob.
  std::uint32_t compute_per_byte = 8;
  SttPlacement stt_placement = SttPlacement::kTexture;
  /// Extension (shared approach only): each block processes this many
  /// consecutive tiles, staging tile k+1 with asynchronous loads while
  /// matching tile k out of the other half of a double-buffered shared
  /// region. 1 = the paper's kernel.
  std::uint32_t tiles_per_block = 1;
  gpusim::LaunchOptions sim{};
};

struct AcLaunchOutcome {
  gpusim::LaunchResult sim;
  std::uint64_t threads = 0;
  std::uint64_t blocks = 0;
  std::uint32_t shared_bytes = 0;  ///< staged region per block (0 for global-only)
  /// Matches written by the simulated kernel. Complete only in Functional
  /// mode; in Timed mode only the sampled blocks produced output.
  MatchBuffer::Collected matches;
};

/// Uploads `text` into device memory with enough zero padding for whole-word
/// staging loads. Returns the device address.
gpusim::DevAddr upload_text(gpusim::DeviceMemory& mem, std::string_view text);

/// Runs one AC kernel launch over text already resident in device memory.
/// Allocates a MatchBuffer from `mem` — callers sweeping configurations
/// should bracket calls with DeviceMemory::mark()/release().
AcLaunchOutcome run_ac_kernel(const gpusim::GpuConfig& config,
                              gpusim::DeviceMemory& mem, const DeviceDfa& ddfa,
                              gpusim::DevAddr text_addr, std::uint64_t text_len,
                              const AcLaunchSpec& spec);

/// Stream-aware variant: the launch is enqueued on `stream` of the given
/// StreamSim, so its simulated duration lands on the multi-stream timeline
/// (after the stream's prior ops, serialised with other kernels on the
/// compute engine). Config and device memory come from the StreamSim.
/// Functional side effects complete at enqueue, so `matches` is immediately
/// valid in Functional mode.
AcLaunchOutcome run_ac_kernel_stream(gpusim::StreamSim& streams,
                                     gpusim::StreamId stream, const DeviceDfa& ddfa,
                                     gpusim::DevAddr text_addr, std::uint64_t text_len,
                                     const AcLaunchSpec& spec, std::string label = {});

}  // namespace acgpu::kernels
