#include "kernels/match_output.h"

#include <algorithm>

#include "util/error.h"

namespace acgpu::kernels {

MatchBuffer::MatchBuffer(gpusim::DeviceMemory& mem, std::uint64_t threads,
                         std::uint32_t capacity_per_thread)
    : threads_(threads), capacity_(capacity_per_thread) {
  ACGPU_CHECK(threads > 0, "MatchBuffer: zero threads");
  ACGPU_CHECK(capacity_per_thread > 0, "MatchBuffer: zero capacity");
  counts_addr_ = mem.alloc(threads_ * 4);
  records_addr_ = mem.alloc(threads_ * capacity_ * 8);
  mem.fill(counts_addr_, 0, threads_ * 4);
}

MatchBuffer::RawCollected MatchBuffer::collect_records(
    const gpusim::DeviceMemory& mem) const {
  RawCollected out;
  for (std::uint64_t t = 0; t < threads_; ++t) {
    const std::uint32_t count = mem.load_u32(count_addr(t));
    out.total_reported += count;
    if (count > capacity_) out.overflowed = true;
    const std::uint32_t stored = std::min(count, capacity_);
    for (std::uint32_t s = 0; s < stored; ++s) {
      const gpusim::DevAddr rec = record_addr(t, s);
      out.records.push_back(Record{t, mem.load_u32(rec), mem.load_u32(rec + 4)});
    }
  }
  return out;
}

MatchBuffer::Collected MatchBuffer::collect(const gpusim::DeviceMemory& mem) const {
  Collected out;
  for (std::uint64_t t = 0; t < threads_; ++t) {
    const std::uint32_t count = mem.load_u32(count_addr(t));
    out.total_reported += count;
    if (count > capacity_) out.overflowed = true;
    const std::uint32_t stored = std::min(count, capacity_);
    for (std::uint32_t s = 0; s < stored; ++s) {
      const gpusim::DevAddr rec = record_addr(t, s);
      out.matches.push_back(ac::Match{mem.load_u32(rec),
                                      static_cast<std::int32_t>(mem.load_u32(rec + 4))});
    }
  }
  std::sort(out.matches.begin(), out.matches.end());
  return out;
}

}  // namespace acgpu::kernels
