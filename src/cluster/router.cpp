#include "cluster/router.h"

#include <algorithm>
#include <fstream>
#include <mutex>
#include <ostream>
#include <unordered_map>

#include "ac/parallel_matcher.h"
#include "ac/serial_matcher.h"
#include "cluster/merge.h"
#include "dispatch/dispatcher.h"
#include "pipeline/telemetry_export.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/logger.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/trace.h"
#include "telemetry/trace_context.h"
#include "util/stopwatch.h"

namespace acgpu::cluster {

namespace {

/// Shard k's session ids live at (k+1)<<48: disjoint per shard, globally
/// unique across devices, and deterministic — shard k's n-th open is
/// ((k+1)<<48)+n in every run.
constexpr std::uint64_t kShardIdShift = 48;

std::uint64_t shard_namespace(std::uint32_t shard) {
  return (static_cast<std::uint64_t>(shard) + 1) << kShardIdShift;
}

/// router.* series handles, resolved once at create.
struct RouterMetrics {
  telemetry::Counter* opened = nullptr;
  telemetry::Counter* feeds = nullptr;
  telemetry::Counter* feed_bytes = nullptr;
  telemetry::Counter* scans = nullptr;
  telemetry::Counter* rebalances = nullptr;
  telemetry::Counter* sessions_rebalanced = nullptr;
  telemetry::Counter* matches_merged = nullptr;
  telemetry::Gauge* shards = nullptr;
  telemetry::Gauge* healthy = nullptr;
  telemetry::Gauge* live = nullptr;
  telemetry::Gauge* scan_makespan = nullptr;
  telemetry::Gauge* scan_gbps = nullptr;

  void resolve(telemetry::MetricsRegistry& reg) {
    opened = &reg.counter("router.sessions.opened");
    feeds = &reg.counter("router.feeds");
    feed_bytes = &reg.counter("router.feed.bytes");
    scans = &reg.counter("router.scans");
    rebalances = &reg.counter("router.rebalances");
    sessions_rebalanced = &reg.counter("router.sessions.rebalanced");
    matches_merged = &reg.counter("router.matches.merged");
    shards = &reg.gauge("router.shards");
    healthy = &reg.gauge("router.healthy_shards");
    live = &reg.gauge("router.sessions.live");
    scan_makespan = &reg.gauge("router.scan.makespan_seconds");
    scan_gbps = &reg.gauge("router.scan.throughput_gbps");
  }
};

}  // namespace

Status ClusterOptions::validate() const {
  if (devices < 1 || devices > 64)
    return Status::invalid_argument("cluster devices must be in [1, 64], got " +
                                    std::to_string(devices));
  if (!engine.telemetry.metrics_prefix.empty())
    return Status::invalid_argument(
        "ClusterOptions::engine.telemetry.metrics_prefix is managed by the "
        "Router (per-shard prefixes); leave it empty");
  if (engine.host_observer != nullptr)
    return Status::invalid_argument(
        "set ClusterOptions::host_observer, not engine.host_observer — the "
        "Router wires the shared observer seam into every shard");
  if (trace && engine.telemetry.tracer != nullptr)
    return Status::invalid_argument(
        "ClusterOptions::trace manages per-shard tracers; leave "
        "engine.telemetry.tracer null");
  if (engine.telemetry.recorder != nullptr)
    return Status::invalid_argument(
        "set ClusterOptions::recorder, not engine.telemetry.recorder — the "
        "Router stamps per-shard indices onto every layer's events");
  if (health_eval_interval == 0)
    return Status::invalid_argument("health_eval_interval must be >= 1");
  serve::ServeOptions so;
  so.max_sessions = max_sessions_per_shard;
  so.max_queue_bytes = max_queue_bytes;
  so.max_queue_chunks = max_queue_chunks;
  so.coalesce_bytes = coalesce_bytes;
  so.background = background;
  so.admission = admission;
  return so.validate();
}

struct Router::Impl {
  struct Shard {
    std::unique_ptr<Device> device;
    std::optional<serve::StreamService> service;
    std::unique_ptr<Engine> bulk;  ///< lazy: only scan() callers pay for it
    bool failed = false;
    bool draining = false;
    std::uint64_t homed = 0;  ///< sessions currently homed here
    /// Host-span sink for this shard's serve + engine layers (trace mode).
    std::unique_ptr<telemetry::Tracer> tracer;
    /// Last bulk-scan timeline, trimmed of matches — write_trace() exports
    /// it as this shard's simulated-device process (trace mode only).
    std::unique_ptr<pipeline::PipelineResult> last_bulk;
    std::uint32_t feeds_since_eval = 0;
    std::uint64_t seen_evictions = 0;  ///< evictions already fed to health
  };

  ClusterOptions options;
  ac::PatternSet patterns;  ///< kept for lazy bulk-engine compiles
  std::vector<Shard> shards;
  /// Session home lookup; updated on open/close and by every rebalance.
  std::unordered_map<serve::SessionId, std::uint32_t> home;
  RouterStats stats;
  RouterMetrics m;
  bool has_metrics = false;
  bool shut_down = false;

  /// Router-level spans (router.feed, router.scan) — the third clock-domain
  /// process in the fleet trace. Null when ClusterOptions::trace is off.
  std::unique_ptr<telemetry::Tracer> router_tracer;
  /// Deterministic request identities: the n-th traced request gets the
  /// same id in every run.
  telemetry::TraceContextMinter minter;
  /// SLO monitor; null when no target is set.
  std::unique_ptr<telemetry::HealthMonitor> health;

  telemetry::Logger& log() const {
    return options.logger != nullptr ? *options.logger
                                     : telemetry::Logger::global();
  }

  /// Requires options.recorder. Caller holds the router mutex (or is create).
  void write_postmortem_locked(std::ostream& out,
                               std::string_view reason) const {
    if (options.metrics != nullptr) {
      const telemetry::MetricsSnapshot snap = options.metrics->snapshot();
      options.recorder->write_postmortem(out, reason, &snap);
    } else {
      options.recorder->write_postmortem(out, reason);
    }
  }

  /// Serializes topology and routing decisions. Lock order (acyclic):
  /// cluster.router.mu -> serve.mu -> {serve.scheduler.mu,
  /// serve.manager.mu, device.<k>.mu}. Shard pump threads take serve.mu and
  /// the device mutex only, never this one.
  mutable gpusim::TrackedMutex mu{"cluster.router.mu"};

  std::uint32_t healthy_count() const {
    std::uint32_t n = 0;
    for (const Shard& s : shards)
      if (!s.failed && !s.draining) ++n;
    return n;
  }

  /// SLO rank of shard k for placement: ok=0, degraded=1, unhealthy=2
  /// (0 everywhere when no monitor is configured).
  std::uint32_t health_rank(std::uint32_t k) const {
    return health != nullptr ? static_cast<std::uint32_t>(health->state(k)) : 0;
  }

  /// Best placement target (deterministic: lowest index wins ties);
  /// shards.size() when none qualifies. Ranked by (health, load, index):
  /// degraded shards lose to ok ones regardless of load, and an unhealthy
  /// shard is failed-soft — only picked when nothing better exists.
  std::uint32_t pick_target(std::uint32_t exclude = UINT32_MAX) const {
    std::uint32_t best = static_cast<std::uint32_t>(shards.size());
    std::uint32_t best_rank = 0;
    for (std::uint32_t k = 0; k < shards.size(); ++k) {
      const Shard& s = shards[k];
      if (k == exclude || s.failed || s.draining) continue;
      const std::uint32_t rank = health_rank(k);
      if (best == shards.size() || rank < best_rank ||
          (rank == best_rank && s.homed < shards[best].homed)) {
        best = k;
        best_rank = rank;
      }
    }
    return best;
  }

  /// Refreshes shard k's gauge-style inputs (queue depth, evictions) and
  /// re-judges it. Caller holds the router mutex.
  void evaluate_health(std::uint32_t k) {
    if (health == nullptr) return;
    Shard& sh = shards[k];
    const serve::ServiceStats st = sh.service->stats();
    health->observe_queue_depth(k, static_cast<double>(st.queued_chunks));
    if (st.sessions_evicted > sh.seen_evictions) {
      health->observe_eviction(k, st.sessions_evicted - sh.seen_evictions);
      sh.seen_evictions = st.sessions_evicted;
    }
    health->evaluate(k);
  }

  void publish_topology() {
    if (!has_metrics) return;
    m.shards->set(static_cast<double>(shards.size()));
    m.healthy->set(static_cast<double>(healthy_count()));
    m.live->set(static_cast<double>(home.size()));
  }

  Status ensure_bulk_engine(std::uint32_t k) {
    Shard& shard = shards[k];
    if (shard.bulk != nullptr) return Status::ok();
    EngineOptions eopt = options.engine;
    eopt.telemetry.metrics = options.metrics;
    eopt.telemetry.metrics_prefix = "device." + std::to_string(k) + ".";
    eopt.telemetry.tracer = shard.tracer.get();
    eopt.telemetry.recorder = options.recorder;
    eopt.telemetry.logger = options.logger;
    eopt.telemetry.shard = k;
    // host_observer stays null: the engine inherits the device's seam.
    Result<Engine> engine = Engine::create(*shard.device, patterns, eopt);
    if (!engine.is_ok()) return engine.status();
    shard.bulk = std::make_unique<Engine>(std::move(engine).value());
    return Status::ok();
  }

  /// Migrates every session homed on `from` to healthy shards. The caller
  /// already drained `from` (export_session requires it).
  Status rebalance_away(std::uint32_t from) {
    std::vector<serve::SessionId> moving;
    for (const auto& [id, shard] : home)
      if (shard == from) moving.push_back(id);
    std::sort(moving.begin(), moving.end());  // deterministic migration order
    for (serve::SessionId id : moving) {
      const std::uint32_t target = pick_target(from);
      if (target == shards.size())
        return Status::unavailable(
            "no healthy shard left to rebalance session " + std::to_string(id));
      Result<serve::SessionSnapshot> snapshot =
          shards[from].service->export_session(id);
      if (!snapshot.is_ok()) return snapshot.status();
      if (Status s = shards[target].service->import_session(snapshot.value()); !s)
        return s;
      home[id] = target;
      --shards[from].homed;
      ++shards[target].homed;
      ++stats.sessions_rebalanced;
      if (has_metrics) m.sessions_rebalanced->add(1);
    }
    return Status::ok();
  }

  /// Shared by mark_failed (fail-stop) and drain_shard (graceful): drain
  /// the shard's accepted work, then migrate its sessions away.
  Status retire_shard(std::uint32_t k) {
    if (Status s = shards[k].service->drain(); !s) return s;
    if (Status s = rebalance_away(k); !s) return s;
    ++stats.rebalances;
    if (has_metrics) m.rebalances->add(1);
    publish_topology();
    return Status::ok();
  }

  Result<serve::StreamService*> route(serve::SessionId id) {
    const auto it = home.find(id);
    if (it == home.end())
      return Status::invalid_argument("unknown session id " +
                                      std::to_string(id) +
                                      " (never opened, closed, or evicted)");
    return &*shards[it->second].service;
  }
};

Router::Router(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Router::Router(Router&&) noexcept = default;

Router& Router::operator=(Router&& other) noexcept {
  if (this != &other) {
    if (impl_) shutdown();
    impl_ = std::move(other.impl_);
  }
  return *this;
}

Router::~Router() {
  if (impl_) shutdown();
}

Result<Router> Router::create(const ac::PatternSet& patterns,
                              const ClusterOptions& options) {
  if (patterns.empty()) return Status::invalid_argument("empty pattern set");
  if (Status s = options.validate(); !s) return s;

  auto impl = std::make_unique<Impl>();
  impl->options = options;
  impl->patterns = patterns;
  if (options.host_observer != nullptr) impl->mu.attach(options.host_observer);
  if (options.metrics != nullptr) {
    impl->m.resolve(*options.metrics);
    impl->has_metrics = true;
  }
  if (options.trace)
    impl->router_tracer = std::make_unique<telemetry::Tracer>();
  if (options.slo.enabled()) {
    impl->health = std::make_unique<telemetry::HealthMonitor>(
        options.devices, options.slo, options.metrics);
    // Transitions are rare by construction (state changes only), so they go
    // to the recorder AND the log. The listener fires under the router
    // mutex during evaluate_health — both sinks are leaves.
    Impl* im = impl.get();
    impl->health->set_transition_listener(
        [im](std::uint32_t shard, telemetry::HealthState from,
             telemetry::HealthState to) {
          if (im->options.recorder != nullptr)
            im->options.recorder->record(
                telemetry::FlightEventKind::kHealthTransition, shard,
                static_cast<std::uint64_t>(from),
                static_cast<std::uint64_t>(to));
          const std::string key =
              "cluster.health." + std::to_string(shard) + "." +
              telemetry::to_string(from) + "-" + telemetry::to_string(to);
          const std::string msg =
              "shard " + std::to_string(shard) + " went " +
              telemetry::to_string(from) + " -> " + telemetry::to_string(to) +
              " (" + im->health->shard_health(shard).breached + ")";
          if (to > from)
            im->log().warn(key, msg);
          else
            im->log().info(key, msg);
        });
  }

  impl->shards.reserve(options.devices);
  for (std::uint32_t k = 0; k < options.devices; ++k) {
    const std::string prefix = "device." + std::to_string(k) + ".";
    DeviceOptions dopt;
    dopt.gpu = options.engine.gpu;
    dopt.memory_bytes = options.engine.device_memory_bytes;
    dopt.host_observer = options.host_observer;
    dopt.name = "device." + std::to_string(k);
    Result<Device> device = Device::create(dopt);
    if (!device.is_ok()) return device.status();

    Impl::Shard shard;
    shard.device = std::make_unique<Device>(std::move(device).value());
    if (options.trace) shard.tracer = std::make_unique<telemetry::Tracer>();

    serve::ServeOptions so;
    so.engine = options.engine;
    so.engine.telemetry.metrics = options.metrics;
    so.engine.telemetry.metrics_prefix = prefix;
    so.engine.telemetry.tracer = shard.tracer.get();
    so.engine.telemetry.recorder = options.recorder;
    so.engine.telemetry.logger = options.logger;
    so.engine.telemetry.shard = k;
    so.device = shard.device.get();
    so.session_id_namespace = shard_namespace(k);
    so.max_sessions = options.max_sessions_per_shard;
    so.session_limits = options.session_limits;
    so.max_queue_bytes = options.max_queue_bytes;
    so.max_queue_chunks = options.max_queue_chunks;
    so.coalesce_bytes = options.coalesce_bytes;
    so.background = options.background;
    so.admission = options.admission;
    so.metrics = options.metrics;
    so.metrics_prefix = prefix;
    so.tracer = shard.tracer.get();
    so.recorder = options.recorder;
    so.shard = k;
    so.host_observer = options.host_observer;
    so.dispatcher = options.dispatcher;
    Result<serve::StreamService> service =
        serve::StreamService::create(patterns, so);
    if (!service.is_ok()) return service.status();
    shard.service.emplace(std::move(service).value());
    impl->shards.push_back(std::move(shard));
  }
  impl->stats.shards = options.devices;
  impl->publish_topology();
  return Router(std::move(impl));
}

Result<serve::SessionId> Router::open() {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  if (im.shut_down) return Status::invalid_argument("Router is shut down");
  const std::uint32_t target = im.pick_target();
  if (target == im.shards.size())
    return Status::unavailable("no healthy shard to open a session on");
  Result<serve::SessionId> id = im.shards[target].service->open();
  if (!id.is_ok()) return id.status();
  im.home[id.value()] = target;
  ++im.shards[target].homed;
  ++im.stats.sessions_opened;
  im.stats.sessions_live = im.home.size();
  if (im.has_metrics) im.m.opened->add(1);
  im.publish_topology();
  return id;
}

Status Router::feed(serve::SessionId id, std::string_view chunk) {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  const auto it = im.home.find(id);
  if (it == im.home.end())
    return Status::invalid_argument("unknown session id " +
                                    std::to_string(id) +
                                    " (never opened, closed, or evicted)");
  const std::uint32_t shard = it->second;

  // Admission is where a request's causal identity is born: the router.feed
  // span carries the trace id, and the same id annotates every downstream
  // span (superbatch, pipeline, kernel) the request's bytes touch.
  telemetry::Span span(im.router_tracer.get(), "router.feed");
  telemetry::TraceContext trace;
  if (im.router_tracer != nullptr) {
    trace = im.minter.mint(span.id());
    span.annotate("trace_id", telemetry::trace_id_string(trace.trace_id));
    span.annotate("session", std::to_string(id));
    span.annotate("shard", std::to_string(shard));
    span.annotate("bytes", std::to_string(chunk.size()));
  }

  Stopwatch clock;
  const Status s = im.shards[shard].service->feed(id, chunk, trace);
  if (im.health != nullptr) {
    im.health->observe_feed(shard, static_cast<double>(clock.nanos()),
                            s.is_ok());
    Impl::Shard& sh = im.shards[shard];
    if (++sh.feeds_since_eval >= im.options.health_eval_interval) {
      sh.feeds_since_eval = 0;
      im.evaluate_health(shard);
    }
  }
  if (!s) {
    if (im.router_tracer != nullptr)
      span.annotate("status", to_string(s.code()));
    return s;
  }
  ++im.stats.feeds;
  im.stats.bytes += chunk.size();
  if (im.has_metrics) {
    im.m.feeds->add(1);
    im.m.feed_bytes->add(chunk.size());
  }
  return Status::ok();
}

Result<std::vector<ac::Match>> Router::poll(serve::SessionId id) {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  Result<serve::StreamService*> service = im.route(id);
  if (!service.is_ok()) return service.status();
  Result<std::vector<ac::Match>> out = service.value()->poll(id);
  if (!out.is_ok()) return out.status();
  // The service delivers in discovery order; the router's contract is the
  // merged global-offset order.
  std::vector<ac::Match> matches = std::move(out).value();
  ac::normalize_matches(matches);
  return matches;
}

Result<serve::SessionStats> Router::session_stats(serve::SessionId id) const {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  const auto it = im.home.find(id);
  if (it == im.home.end())
    return Status::invalid_argument("unknown session id " + std::to_string(id) +
                                    " (never opened, closed, or evicted)");
  return im.shards[it->second].service->session_stats(id);
}

Status Router::close(serve::SessionId id) {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  const auto it = im.home.find(id);
  if (it == im.home.end())
    return Status::invalid_argument("unknown session id " + std::to_string(id) +
                                    " (never opened, closed, or evicted)");
  const std::uint32_t shard = it->second;
  Status s = im.shards[shard].service->close(id);
  if (s.is_ok()) {
    im.home.erase(it);
    --im.shards[shard].homed;
    im.stats.sessions_live = im.home.size();
    im.publish_topology();
  }
  return s;
}

Status Router::drain() {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  for (Impl::Shard& shard : im.shards)
    if (Status s = shard.service->drain(); !s) return s;
  return Status::ok();
}

void Router::shutdown() {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  if (im.shut_down) return;
  im.shut_down = true;
  for (Impl::Shard& shard : im.shards) shard.service->shutdown();
}

Result<ClusterScanResult> Router::scan(std::string_view text) {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  if (im.shut_down) return Status::invalid_argument("Router is shut down");

  std::vector<std::uint32_t> healthy;
  for (std::uint32_t k = 0; k < im.shards.size(); ++k)
    if (!im.shards[k].failed && !im.shards[k].draining) healthy.push_back(k);
  if (healthy.empty())
    return Status::unavailable("no healthy device to scan on");
  // SLO-unhealthy shards are failed-soft: excluded from the scatter while
  // any better shard remains (the work just spreads across fewer slabs).
  if (im.health != nullptr) {
    std::vector<std::uint32_t> preferred;
    for (std::uint32_t k : healthy)
      if (im.health->state(k) != telemetry::HealthState::kUnhealthy)
        preferred.push_back(k);
    if (!preferred.empty()) healthy = std::move(preferred);
  }

  telemetry::Span span(im.router_tracer.get(), "router.scan");
  telemetry::TraceContext trace;
  if (im.router_tracer != nullptr) {
    trace = im.minter.mint(span.id());
    span.annotate("trace_id", telemetry::trace_id_string(trace.trace_id));
    span.annotate("bytes", std::to_string(text.size()));
    span.annotate("devices", std::to_string(healthy.size()));
  }

  ClusterScanResult result;
  result.input_bytes = text.size();
  result.per_device_seconds.assign(im.shards.size(), 0.0);
  if (text.empty()) return result;

  // Adaptive routing: a CPU decision answers from the host DFA without
  // touching a device; a GPU decision takes the scatter below and feeds
  // the merged makespan back into the model afterwards.
  dispatch::Decision decision;
  dispatch::WorkloadSignature sig;
  const bool dispatched = im.options.dispatcher != nullptr;
  if (dispatched) {
    dispatch::Dispatcher& dsp = *im.options.dispatcher;
    sig = dsp.signature(text, /*session=*/false);
    decision = dsp.choose(sig);
    if (decision.backend != dispatch::Backend::kGpuPipeline) {
      const ac::Dfa& dfa = im.shards[healthy.front()].service->dfa();
      const dispatch::CostModelConfig& cfg = dsp.cost_model().config();
      if (decision.backend == dispatch::Backend::kSerialCpu) {
        result.matches = ac::find_all(dfa, text);
        result.makespan_seconds =
            dispatch::modeled_serial_seconds(dfa, text, cfg.cpu);
      } else {
        result.matches = ac::find_all_parallel(dfa, text, cfg.parallel_threads);
        result.makespan_seconds =
            dispatch::modeled_parallel_seconds(dfa, text, cfg);
      }
      ac::normalize_matches(result.matches);
      dsp.observe(decision, sig, result.makespan_seconds);
      ++im.stats.scans;
      im.stats.matches_merged += result.matches.size();
      if (im.has_metrics) {
        im.m.scans->add(1);
        im.m.matches_merged->add(result.matches.size());
        im.m.scan_makespan->set(result.makespan_seconds);
        im.m.scan_gbps->set(result.throughput_gbps());
      }
      return result;
    }
  }

  for (std::uint32_t k : healthy)
    if (Status s = im.ensure_bulk_engine(k); !s) return s;

  const ac::Dfa& dfa = im.shards[healthy.front()].bulk->dfa();
  const std::uint64_t overlap =
      dfa.max_pattern_length() > 0 ? dfa.max_pattern_length() - 1 : 0;
  const std::uint64_t total = text.size();
  const std::uint64_t slab =
      (total + healthy.size() - 1) / healthy.size();  // ceil

  std::vector<std::vector<ac::Match>> parts;
  parts.reserve(healthy.size());
  for (std::size_t i = 0; i < healthy.size(); ++i) {
    const std::uint32_t k = healthy[i];
    const std::uint64_t base = static_cast<std::uint64_t>(i) * slab;
    if (base >= total) break;
    const std::uint64_t owned = std::min(slab, total - base);
    // The slab's device slice carries the next slab's first overlap bytes so
    // a match STARTING in the owned range is fully visible here; matches
    // starting in the carry belong to the successor (exactly-once).
    const std::uint64_t staged = std::min(owned + overlap, total - base);
    const std::string_view slice = text.substr(base, staged);

    std::vector<ac::Match> matches;
    Result<ScanResult> scan = im.shards[k].bulk->scan(slice);
    if (scan.is_ok() && !scan.value().overflowed) {
      matches = std::move(scan.value().matches);
      result.per_device_seconds[k] = scan.value().stats.makespan_seconds;
      if (im.options.trace) {
        // Keep the timeline (matches already moved out) so write_trace can
        // export this shard's simulated-device process.
        im.shards[k].last_bulk = std::make_unique<pipeline::PipelineResult>(
            std::move(scan).value());
        im.shards[k].last_bulk->matches.clear();
      }
    } else if (!scan.is_ok() &&
               scan.status().code() != StatusCode::kCapacityExceeded) {
      return scan.status();
    } else {
      // Device match buffer overflowed: the host DFA is exact, so the slab
      // degrades to host speed instead of dropping matches.
      matches = ac::find_all(dfa, slice);
      result.host_fallback = true;
      result.overflowed = true;
    }
    std::erase_if(matches, [&](const ac::Match& m) {
      const std::uint64_t len = dfa.pattern_length(m.pattern);
      return m.end + 1 - len >= owned;  // starts in the carry: successor's
    });
    for (ac::Match& m : matches) m.end += base;
    parts.push_back(std::move(matches));
    ++result.devices_used;
  }

  result.makespan_seconds = *std::max_element(result.per_device_seconds.begin(),
                                              result.per_device_seconds.end());
  result.matches = merge_sorted(std::move(parts));
  // A host-fallback slab's time never reached per_device_seconds — the
  // makespan is not a clean GPU measurement, so it must not refine the curve.
  if (dispatched && !result.host_fallback)
    im.options.dispatcher->observe(decision, sig, result.makespan_seconds);
  ++im.stats.scans;
  im.stats.matches_merged += result.matches.size();
  if (im.has_metrics) {
    im.m.scans->add(1);
    im.m.matches_merged->add(result.matches.size());
    im.m.scan_makespan->set(result.makespan_seconds);
    im.m.scan_gbps->set(result.throughput_gbps());
  }
  return result;
}

Status Router::mark_failed(std::uint32_t shard) {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  if (shard >= im.shards.size())
    return Status::invalid_argument("shard " + std::to_string(shard) +
                                    " out of range (cluster has " +
                                    std::to_string(im.shards.size()) + ")");
  Impl::Shard& sh = im.shards[shard];
  if (sh.failed) return Status::ok();  // idempotent
  if (im.healthy_count() <= 1 && !sh.draining)
    return Status::unavailable("cannot fail shard " + std::to_string(shard) +
                               ": it is the last healthy shard");
  // Fail-stop: the device refuses scans from here on. Chunks already
  // accepted drain through the serve layer's exact host-DFA fallback, so
  // nothing accepted is lost.
  sh.device->mark_failed("cluster mark_failed");
  sh.failed = true;
  if (im.options.recorder != nullptr)
    im.options.recorder->record(telemetry::FlightEventKind::kShardFailure,
                                shard);
  im.log().error("cluster.shard_failed." + std::to_string(shard),
                 "shard " + std::to_string(shard) + " (" + sh.device->name() +
                     ") marked failed; draining and migrating its sessions");
  // The black box pays off exactly here: freeze the last window of fleet
  // events + a metrics snapshot before the drain/migration churns state.
  if (im.options.recorder != nullptr && !im.options.postmortem_path.empty()) {
    std::ofstream out(im.options.postmortem_path);
    if (out)
      im.write_postmortem_locked(
          out, "shard " + std::to_string(shard) + " marked failed");
    else
      im.log().warn("cluster.postmortem_path",
                    "could not open postmortem path '" +
                        im.options.postmortem_path + "' for writing");
  }
  return im.retire_shard(shard);
}

Status Router::drain_shard(std::uint32_t shard) {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  if (shard >= im.shards.size())
    return Status::invalid_argument("shard " + std::to_string(shard) +
                                    " out of range (cluster has " +
                                    std::to_string(im.shards.size()) + ")");
  Impl::Shard& sh = im.shards[shard];
  if (sh.draining || sh.failed) return Status::ok();  // idempotent
  if (im.healthy_count() <= 1)
    return Status::unavailable("cannot drain shard " + std::to_string(shard) +
                               ": it is the last healthy shard");
  // Graceful: the device stays healthy, so queued work finishes at device
  // speed; the shard just stops taking new sessions.
  sh.draining = true;
  return im.retire_shard(shard);
}

Status Router::restore(std::uint32_t shard) {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  if (shard >= im.shards.size())
    return Status::invalid_argument("shard " + std::to_string(shard) +
                                    " out of range (cluster has " +
                                    std::to_string(im.shards.size()) + ")");
  Impl::Shard& sh = im.shards[shard];
  sh.device->restore();
  sh.failed = false;
  sh.draining = false;
  if (im.options.recorder != nullptr)
    im.options.recorder->record(telemetry::FlightEventKind::kShardRestore,
                                shard);
  im.publish_topology();
  return Status::ok();
}

Result<std::uint32_t> Router::shard_of(serve::SessionId id) const {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  const auto it = im.home.find(id);
  if (it == im.home.end())
    return Status::invalid_argument("unknown session id " + std::to_string(id));
  return it->second;
}

RouterStats Router::stats() const {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  RouterStats out = im.stats;
  out.shards = static_cast<std::uint32_t>(im.shards.size());
  out.healthy_shards = im.healthy_count();
  out.sessions_live = im.home.size();
  return out;
}

Result<ShardStats> Router::shard_stats(std::uint32_t shard) const {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  if (shard >= im.shards.size())
    return Status::invalid_argument("shard " + std::to_string(shard) +
                                    " out of range (cluster has " +
                                    std::to_string(im.shards.size()) + ")");
  const Impl::Shard& sh = im.shards[shard];
  ShardStats out;
  out.shard = shard;
  out.device_id = sh.device->id();
  out.device_name = sh.device->name();
  out.failed = sh.failed;
  out.draining = sh.draining;
  out.homed_sessions = sh.homed;
  out.service = sh.service->stats();
  if (im.health != nullptr) out.health = im.health->state(shard);
  return out;
}

Status Router::write_trace(std::ostream& out) const {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  if (im.router_tracer == nullptr)
    return Status::invalid_argument(
        "fleet tracing is off; set ClusterOptions::trace");
  telemetry::ChromeTrace trace;
  // One process per clock domain: the router's wall clock, each shard's
  // host wall clock, and each shard's simulated-device clock — distinct
  // pids so Perfetto renders N shards side by side instead of colliding
  // their tracks (the pre-fleet exporter only knew two processes).
  trace.add_tracer(*im.router_tracer, "cluster router");
  for (std::uint32_t k = 0; k < im.shards.size(); ++k) {
    const Impl::Shard& sh = im.shards[k];
    if (sh.tracer != nullptr)
      trace.add_tracer(*sh.tracer, "shard " + std::to_string(k) + " host");
    if (sh.last_bulk != nullptr) {
      pipeline::TraceExportOptions eopt;
      eopt.process_name = "shard " + std::to_string(k) + " device sim";
      pipeline::add_scan_to_trace(trace, *sh.last_bulk, eopt);
    }
  }
  trace.write(out);
  return Status::ok();
}

Status Router::write_postmortem(std::ostream& out,
                                std::string_view reason) const {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  if (im.options.recorder == nullptr)
    return Status::invalid_argument(
        "no flight recorder; set ClusterOptions::recorder");
  im.write_postmortem_locked(out, reason);
  return Status::ok();
}

telemetry::HealthState Router::shard_health_state(std::uint32_t shard) const {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  if (im.health == nullptr || shard >= im.shards.size())
    return telemetry::HealthState::kOk;
  return im.health->state(shard);
}

Result<telemetry::ShardHealth> Router::shard_health(std::uint32_t shard) const {
  Impl& im = *impl_;
  std::unique_lock<gpusim::TrackedMutex> lk(im.mu);
  if (shard >= im.shards.size())
    return Status::invalid_argument("shard " + std::to_string(shard) +
                                    " out of range (cluster has " +
                                    std::to_string(im.shards.size()) + ")");
  if (im.health == nullptr) return telemetry::ShardHealth{};
  return im.health->shard_health(shard);
}

std::uint32_t Router::shard_count() const {
  return static_cast<std::uint32_t>(impl_->shards.size());
}

const ClusterOptions& Router::options() const { return impl_->options; }
const ac::Dfa& Router::dfa() const { return impl_->shards.front().service->dfa(); }

}  // namespace acgpu::cluster
