// K-way merge of per-device match streams back into global-offset order.
//
// The Router's bulk scatter path (cluster/router.h) hands each healthy
// device one slab of the input; every device reports its matches sorted by
// (end, pattern) with ends already rebased to global offsets. Because the
// slabs partition the text, the per-device streams are ALMOST disjoint in
// end-offset — but a match that starts in shard k's owned range may end
// inside shard k+1's slab (the overlap carry), so streams can interleave
// near the seams and a plain concatenation is not sorted. The merge is the
// classic heap k-way: O(total log k), stable across equal keys by shard
// index so the result is deterministic.
#pragma once

#include <vector>

#include "ac/match.h"

namespace acgpu::cluster {

/// Merges `parts` — each sorted ascending by (end, pattern), the
/// ac::normalize_matches order — into one sorted vector. Empty parts are
/// fine; the inputs are consumed.
std::vector<ac::Match> merge_sorted(std::vector<std::vector<ac::Match>> parts);

}  // namespace acgpu::cluster
