#include "cluster/merge.h"

#include <algorithm>
#include <cstddef>
#include <queue>

#include "util/error.h"

namespace acgpu::cluster {
namespace {

struct Head {
  ac::Match match;
  std::size_t part = 0;
  std::size_t index = 0;  ///< next element within the part
};

/// Min-heap order on (match, part): std::priority_queue is a max-heap, so
/// the comparator is inverted. The part index breaks ties deterministically.
struct HeadGreater {
  bool operator()(const Head& a, const Head& b) const {
    if (a.match != b.match) return b.match < a.match;
    return b.part < a.part;
  }
};

}  // namespace

std::vector<ac::Match> merge_sorted(std::vector<std::vector<ac::Match>> parts) {
  std::size_t total = 0;
  for (const auto& part : parts) {
    total += part.size();
    ACGPU_CHECK(std::is_sorted(part.begin(), part.end()),
                "merge_sorted: input part is not in (end, pattern) order");
  }
  if (parts.size() == 1) return std::move(parts.front());

  std::vector<ac::Match> out;
  out.reserve(total);
  std::priority_queue<Head, std::vector<Head>, HeadGreater> heap;
  for (std::size_t p = 0; p < parts.size(); ++p)
    if (!parts[p].empty()) heap.push(Head{parts[p][0], p, 1});
  while (!heap.empty()) {
    Head head = heap.top();
    heap.pop();
    out.push_back(head.match);
    const std::vector<ac::Match>& part = parts[head.part];
    if (head.index < part.size())
      heap.push(Head{part[head.index], head.part, head.index + 1});
  }
  return out;
}

}  // namespace acgpu::cluster
