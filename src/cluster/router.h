// cluster::Router — multi-device sharding: a scatter/gather tier over N
// independent simulated devices.
//
// The ROADMAP's top open item, and the simulated equivalent of the
// MPI-sharded multi-GPU deployments in the related work: one process stands
// up N acgpu::Devices, each carrying its own automaton upload, StreamService
// shard, and bulk Engine, and the Router in front partitions traffic across
// them:
//
//                          Router ("cluster.router.mu")
//            ┌──────────────┬──┴───────────┬──────────────┐
//        shard 0        shard 1        shard 2         shard 3
//      Device 0        Device 1       Device 2        Device 3
//      ├ StreamService ├ StreamService ├ StreamService ├ StreamService
//      └ bulk Engine   └ bulk Engine   └ bulk Engine   └ bulk Engine
//
// Two traffic paths:
//
//  - Session path (open/feed/poll/close): each session is assigned a home
//    shard at open() — least-loaded healthy shard, deterministic tie-break —
//    and all its chunks flow there, so carried boundary state never crosses
//    devices. Session ids are globally unique AND deterministic: shard k
//    namespaces its ids at (k+1)<<48 (serve::ServeOptions::
//    session_id_namespace), so the n-th open on shard k is the same id in
//    every run.
//
//  - Bulk scatter/gather path (scan): the text is slab-partitioned across
//    the healthy devices, each slab carrying max_pattern_length-1 overlap
//    bytes of its successor; a device keeps a match iff its START lies in
//    the owned slab (exactly-once across seams, the same rule the pipeline
//    uses at batch boundaries), and per-device streams are k-way-merged
//    back into global-offset order (cluster/merge.h). The cluster makespan
//    is max over devices of the per-device simulated makespan — devices are
//    independent simulators running concurrently in wall-clock.
//
// Failure model — fail-stop-with-drain (docs/CLUSTER.md): mark_failed(k)
// flags the device (new scans on it fail kUnavailable; in-flight queued
// chunks drain through the serve layer's exact host-DFA fallback, so no
// accepted byte is ever dropped), then every session homed on shard k is
// migrated — export_session -> import_session, preserving id, carried
// state, stats, and unpolled matches — onto the least-loaded healthy
// shards. Zero matches lost, zero duplicated: the soak and conformance
// suites assert byte-identical output with failures injected mid-stream.
// drain_shard(k) is the graceful variant (scans finish on the device, the
// shard just stops taking new sessions); restore(k) readmits a shard.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pipeline/engine.h"
#include "serve/service.h"
#include "telemetry/health.h"
#include "util/error.h"

namespace acgpu::cluster {

struct ClusterOptions {
  /// Shard count = independent simulated devices (>= 1).
  std::uint32_t devices = 2;

  /// Per-shard engine template. The deprecated gpu/device_memory_bytes
  /// fields size each shard's Device; telemetry.metrics_prefix and
  /// host_observer are managed by the Router (per-shard prefixes, shared
  /// observer seam) and must be left defaulted.
  EngineOptions engine;

  /// Per-shard serve knobs (see serve::ServeOptions).
  std::uint32_t max_sessions_per_shard = 1024;
  serve::SessionLimits session_limits;
  std::uint64_t max_queue_bytes = 32u << 20;
  std::uint32_t max_queue_chunks = 4096;
  std::uint64_t coalesce_bytes = 4u << 20;
  /// true: every shard runs its own pump thread — N devices scanning
  /// concurrently (the configuration the hostcheck cluster audit covers).
  bool background = false;
  serve::AdmissionPolicy admission = serve::AdmissionPolicy::kDefault;

  /// router.* and device.<shard>.* series sink; null = off. Shard series
  /// are prefixed by SHARD index ("device.2.serve.batches",
  /// "device.2.pipeline.runs") so they are deterministic across runs
  /// regardless of how many devices the process created before.
  telemetry::MetricsRegistry* metrics = nullptr;

  /// Fleet tracing: the Router creates one tracer for its own router.feed /
  /// router.scan spans plus one per shard (wired into the shard's serve and
  /// engine layers), mints a TraceContext per request, and write_trace()
  /// exports the joined fleet trace — router process, per-shard host
  /// processes, per-shard simulated-device processes. Leave
  /// engine.telemetry.tracer null with this on (the Router manages it).
  bool trace = false;

  /// Flight recorder shared by every layer (admission, batch, lease, shard
  /// failure, health events land in it); null = off, zero cost.
  telemetry::FlightRecorder* recorder = nullptr;
  /// When non-empty and a recorder is set, mark_failed(k) writes a
  /// postmortem JSON (recorder window + metrics snapshot) to this path.
  /// write_postmortem() is the explicit any-time variant.
  std::string postmortem_path;
  /// Failure/health log sink; null = the process-global stderr logger.
  telemetry::Logger* logger = nullptr;

  /// Per-shard SLO targets (telemetry/health.h). Any target set stands the
  /// health monitor up: breaches publish health.<shard>.* series and
  /// placement becomes health-aware — degraded shards are deprioritized for
  /// new sessions, unhealthy shards are treated as failed-soft (skipped by
  /// open() and bulk scans whenever any better shard exists). Default: no
  /// targets, no monitor, classic least-loaded placement.
  telemetry::SloPolicy slo;
  /// Re-judge a shard's health every N feeds routed to it (>= 1).
  std::uint32_t health_eval_interval = 16;

  /// Hostcheck audit hook: observes the router mutex, every shard's serve
  /// mutexes, and every device's stream/lease activity. Null = off.
  gpusim::HostObserver* host_observer = nullptr;

  /// Adaptive backend routing (dispatch/dispatcher.h): when set, bulk
  /// scan() consults the cost model first — a CPU decision runs the whole
  /// text on the host DFA (no scatter, devices_used = 0) and a GPU
  /// decision takes the scatter/gather path, feeding the merged makespan
  /// back; every shard's serve layer shares the same dispatcher for its
  /// superbatches. It must outlive the Router. Null = classic
  /// always-scatter behavior.
  dispatch::Dispatcher* dispatcher = nullptr;

  Status validate() const;
};

/// Cluster-wide counters (also published as router.* metrics).
struct RouterStats {
  std::uint32_t shards = 0;
  std::uint32_t healthy_shards = 0;  ///< not failed, not draining
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_live = 0;
  std::uint64_t feeds = 0;
  std::uint64_t bytes = 0;
  std::uint64_t scans = 0;          ///< bulk scatter/gather scans
  std::uint64_t rebalances = 0;     ///< mark_failed/drain_shard migrations
  std::uint64_t sessions_rebalanced = 0;
  std::uint64_t matches_merged = 0; ///< matches returned by scan()
};

/// One shard's view: its device identity plus the underlying service stats.
struct ShardStats {
  std::uint32_t shard = 0;
  std::uint32_t device_id = 0;  ///< process-unique gpusim device id
  std::string device_name;
  bool failed = false;
  bool draining = false;
  std::uint64_t homed_sessions = 0;
  serve::ServiceStats service;
  /// SLO health (kOk when no policy is configured); see shard_health().
  telemetry::HealthState health = telemetry::HealthState::kOk;
};

/// Bulk scatter/gather output (Router::scan).
struct ClusterScanResult {
  /// Merged matches in global (end, pattern) order, exactly-once across
  /// slab seams. Complete only in Functional mode.
  std::vector<ac::Match> matches;
  std::uint32_t devices_used = 0;
  std::uint64_t input_bytes = 0;
  bool overflowed = false;
  /// Simulated wall-clock: max over devices (they run concurrently).
  double makespan_seconds = 0;
  std::vector<double> per_device_seconds;  ///< indexed by shard
  bool host_fallback = false;  ///< some slab degraded to the host DFA

  double throughput_gbps() const {
    return makespan_seconds > 0
               ? static_cast<double>(input_bytes) * 8.0 / makespan_seconds / 1e9
               : 0.0;
  }
};

class Router {
 public:
  /// Compiles `patterns` onto every shard (each device gets its own
  /// automaton upload) and stands the shards up. Fails (no throw) on
  /// invalid options or any shard's Device/Engine/Service failure.
  static Result<Router> create(const ac::PatternSet& patterns,
                               const ClusterOptions& options = {});

  Router(Router&&) noexcept;
  Router& operator=(Router&&) noexcept;
  ~Router();  ///< shutdown()

  // --- session path --------------------------------------------------------

  /// Opens a session on the least-loaded healthy shard. Fails kUnavailable
  /// when no healthy shard remains.
  Result<serve::SessionId> open();
  /// Routes the chunk to the session's home shard (follows migrations).
  Status feed(serve::SessionId id, std::string_view chunk);
  /// Matches delivered so far, sorted into global (end, pattern) order.
  Result<std::vector<ac::Match>> poll(serve::SessionId id);
  Result<serve::SessionStats> session_stats(serve::SessionId id) const;
  Status close(serve::SessionId id);
  /// Blocks until every accepted chunk on every shard is scanned+delivered.
  Status drain();
  /// Drains and stops every shard. Idempotent; the destructor calls it.
  void shutdown();

  // --- bulk scatter/gather path --------------------------------------------

  /// Slab-scatters `text` across the healthy devices and gathers the
  /// merged, exactly-once match stream (see file comment). Empty text
  /// succeeds empty; fails kUnavailable with no healthy shard.
  Result<ClusterScanResult> scan(std::string_view text);

  // --- topology control ----------------------------------------------------

  /// Fail-stop: flags shard k's device, drains its accepted work (host-DFA
  /// fallback — exact), migrates its sessions to healthy shards. Fails
  /// kUnavailable when k is the last healthy shard (a cluster must keep
  /// one), kInvalidArgument on an out-of-range shard. Idempotent per shard.
  Status mark_failed(std::uint32_t shard);
  /// Graceful variant: scans finish on the device, sessions migrate, the
  /// shard stops taking new sessions until restore().
  Status drain_shard(std::uint32_t shard);
  /// Readmits a failed/drained shard (new sessions may home there again;
  /// migrated sessions stay where they are).
  Status restore(std::uint32_t shard);

  /// Current home shard of a session; kInvalidArgument for unknown ids.
  Result<std::uint32_t> shard_of(serve::SessionId id) const;

  // --- observability -------------------------------------------------------

  /// Writes the fleet Chrome trace (ClusterOptions::trace must be on): the
  /// router's spans as one process, each shard's host spans as its own
  /// process, and each shard's last bulk-scan device timeline as a
  /// simulated-clock process — so Perfetto renders N shards side by side
  /// and a trace-id search joins a request across all of them.
  Status write_trace(std::ostream& out) const;

  /// Serializes a postmortem dump (ClusterOptions::recorder must be set):
  /// the recorder's retained window joined with a metrics snapshot.
  Status write_postmortem(std::ostream& out, std::string_view reason) const;

  /// Per-shard SLO health. Without a policy: kOk / empty breaches.
  telemetry::HealthState shard_health_state(std::uint32_t shard) const;
  Result<telemetry::ShardHealth> shard_health(std::uint32_t shard) const;

  RouterStats stats() const;
  Result<ShardStats> shard_stats(std::uint32_t shard) const;
  std::uint32_t shard_count() const;
  const ClusterOptions& options() const;
  /// The compiled automaton (shard 0's copy — all shards are identical).
  const ac::Dfa& dfa() const;

 private:
  struct Impl;
  explicit Router(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace acgpu::cluster
