#include "hostcheck/report.h"

#include <cstdio>
#include <ostream>

#include "telemetry/metrics_registry.h"

namespace acgpu::hostcheck {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_ref_json(std::ostream& out, const OpRef& ref) {
  if (!ref.valid()) {
    out << "null";
    return;
  }
  out << "{\"sim\":" << ref.sim << ",\"op\":" << ref.op << "}";
}

}  // namespace

std::uint64_t HostAuditReport::total_hazards() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : occurrences) total += n;
  return total;
}

void HostAuditReport::merge(const HostAuditReport& other,
                            std::size_t max_hazards) {
  for (const HostHazard& h : other.hazards) {
    if (hazards.size() < max_hazards)
      hazards.push_back(h);
    else
      ++dropped_hazards;
  }
  for (std::size_t k = 0; k < occurrences.size(); ++k)
    occurrences[k] += other.occurrences[k];
  dropped_hazards += other.dropped_hazards;
  sims += other.sims;
  ops += other.ops;
  accesses += other.accesses;
  leases += other.leases;
  releases += other.releases;
  lock_events += other.lock_events;
  mutexes += other.mutexes;
  lock_edges += other.lock_edges;
}

void HostAuditReport::write_text(std::ostream& out) const {
  out << "host audit: " << sims << " sims, " << ops << " ops, " << accesses
      << " annotated accesses, " << leases << " leases (" << releases
      << " released), " << lock_events << " lock events over " << mutexes
      << " mutexes (" << lock_edges << " order edges)\n";
  if (clean()) {
    out << "no hazards\n";
    return;
  }
  out << total_hazards() << " hazard(s):\n";
  for (std::size_t k = 0; k < occurrences.size(); ++k)
    if (occurrences[k] > 0)
      out << "  " << to_string(static_cast<HazardKind>(k)) << ": "
          << occurrences[k] << "\n";
  for (const HostHazard& h : hazards) out << "  " << h << "\n";
  if (dropped_hazards > 0)
    out << "  (+" << dropped_hazards << " beyond the exemplar cap)\n";
}

void HostAuditReport::write_json(std::ostream& out) const {
  out << "{\"clean\":" << (clean() ? "true" : "false")
      << ",\"total_hazards\":" << total_hazards() << ",\"counts\":{";
  bool first = true;
  for (std::size_t k = 0; k < occurrences.size(); ++k) {
    if (!first) out << ",";
    first = false;
    out << "\"" << to_string(static_cast<HazardKind>(k))
        << "\":" << occurrences[k];
  }
  out << "},\"hazards\":[";
  first = true;
  for (const HostHazard& h : hazards) {
    if (!first) out << ",";
    first = false;
    out << "{\"kind\":\"" << to_string(h.kind) << "\",\"message\":\""
        << json_escape(h.message) << "\",\"first\":";
    write_ref_json(out, h.first);
    out << ",\"second\":";
    write_ref_json(out, h.second);
    out << ",\"pool\":" << h.pool << ",\"buffer\":" << h.buffer
        << ",\"cycle\":[";
    bool c_first = true;
    for (const std::string& name : h.cycle) {
      if (!c_first) out << ",";
      c_first = false;
      out << "\"" << json_escape(name) << "\"";
    }
    out << "]}";
  }
  out << "],\"dropped_hazards\":" << dropped_hazards << ",\"telemetry\":{";
  first = true;
  for (const auto& [name, value] : telemetry_series(*this)) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << value;
  }
  out << "}}";
}

std::vector<std::pair<std::string, double>> telemetry_series(
    const HostAuditReport& report) {
  std::vector<std::pair<std::string, double>> series;
  series.emplace_back("hostcheck.hazards",
                      static_cast<double>(report.total_hazards()));
  for (std::size_t k = 0; k < report.occurrences.size(); ++k) {
    // Hazard names are kebab-case; metric segments only allow [a-z0-9_].
    std::string name = std::string("hostcheck.hazard.") +
                       to_string(static_cast<HazardKind>(k));
    for (char& c : name)
      if (c == '-') c = '_';
    series.emplace_back(std::move(name),
                        static_cast<double>(report.occurrences[k]));
  }
  series.emplace_back("hostcheck.sims", static_cast<double>(report.sims));
  series.emplace_back("hostcheck.ops", static_cast<double>(report.ops));
  series.emplace_back("hostcheck.accesses",
                      static_cast<double>(report.accesses));
  series.emplace_back("hostcheck.leases", static_cast<double>(report.leases));
  series.emplace_back("hostcheck.releases",
                      static_cast<double>(report.releases));
  series.emplace_back("hostcheck.lock_events",
                      static_cast<double>(report.lock_events));
  series.emplace_back("hostcheck.lock_edges",
                      static_cast<double>(report.lock_edges));
  return series;
}

void publish(const HostAuditReport& report,
             telemetry::MetricsRegistry& registry) {
  for (const auto& [name, value] : telemetry_series(report)) {
    // Hazard counts keep the worst audit; shape counters keep the latest.
    if (name.rfind("hostcheck.hazard", 0) == 0)
      registry.gauge(name).set_max(value);
    else
      registry.gauge(name).set(value);
  }
}

}  // namespace acgpu::hostcheck
