// The hostcheck Recorder: the shipped gpusim::HostObserver implementation.
//
// It does no analysis of its own — it serialises every callback into one
// globally ordered trace (HostTrace), which analyze.h replays into an op
// DAG with vector-clock happens-before. Splitting record from analyse keeps
// the hook sites cheap (one lock + one vector push per action), makes the
// trace a test fixture (tests hand-build traces for every hazard kind), and
// lets one trace be analysed under different options.
//
// Thread-safety: every callback locks; the serve-side audit records from
// the worker thread and the feeding threads concurrently. The global record
// order is the lock-acquisition order, which for the single-threaded
// pipeline equals program order — the property the lease-protocol and
// use-after-release passes rely on. (Multi-threaded traces still analyse
// soundly: stream ops of one sim are always enqueued by one thread.)
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "gpusim/host_observer.h"

namespace acgpu::hostcheck {

/// A StagingPool registration (register_pool).
struct PoolInfo {
  std::string name;
  std::uint32_t buffers = 0;
  std::uint64_t buffer_bytes = 0;
  /// The sim whose timeline the pool serves — lease attribution is scoped
  /// to it (device addresses are per-arena offsets; concurrent cluster
  /// shards overlap in offset space).
  std::uint32_t sim = 0;
};

/// The globally ordered record stream plus the registries that name its
/// ids. Everything the analyzer consumes; plain data, copyable.
struct HostTrace {
  using Record =
      std::variant<gpusim::HostOpRecord, gpusim::HostAccessRecord,
                   gpusim::HostEventRecord, gpusim::HostWaitEventRecord,
                   gpusim::HostWaitUntilRecord, gpusim::HostLeaseRecord,
                   gpusim::HostReleaseRecord, gpusim::HostLockRecord>;

  std::uint32_t sims = 0;           ///< StreamSims registered
  std::vector<PoolInfo> pools;      ///< index = registered pool id
  std::vector<std::string> mutexes; ///< index = registered mutex id
  std::vector<Record> records;      ///< global order (= program order for
                                    ///< single-threaded drivers)

  bool empty() const { return records.empty(); }
};

class Recorder final : public gpusim::HostObserver {
 public:
  Recorder() = default;

  std::uint32_t register_sim() override;
  std::uint32_t register_pool(const std::string& name, std::uint32_t buffers,
                              std::uint64_t buffer_bytes,
                              std::uint32_t sim) override;
  std::uint32_t register_mutex(const std::string& name) override;

  void on_op(const gpusim::HostOpRecord& record) override;
  void on_access(const gpusim::HostAccessRecord& record) override;
  void on_event_record(const gpusim::HostEventRecord& record) override;
  void on_wait_event(const gpusim::HostWaitEventRecord& record) override;
  void on_wait_until(const gpusim::HostWaitUntilRecord& record) override;
  void on_lease(const gpusim::HostLeaseRecord& record) override;
  void on_release(const gpusim::HostReleaseRecord& record) override;
  void on_lock(const gpusim::HostLockRecord& record) override;

  /// Snapshot of the trace so far (copies under the lock — call after the
  /// audited run quiesced).
  HostTrace trace() const;

  /// Drops every record and registration (audit loops reuse one Recorder).
  void reset();

 private:
  mutable std::mutex mu_;
  HostTrace trace_;
};

}  // namespace acgpu::hostcheck
