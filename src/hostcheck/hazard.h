// Hazard taxonomy of the host-pipeline auditor (hostcheck) — the findings
// the happens-before analyzer in analyze.h emits.
//
// Where gpucheck's hazards live INSIDE one kernel launch (thread/address
// terms), hostcheck's live BETWEEN the host-orchestrated async operations:
// stream ops that touch overlapping device ranges without an ordering edge,
// staging-lease protocol violations, and host lock-order inversions. A
// finding is identified in (sim, op) terms — the StreamSim registration id
// plus the op's timeline index — which pins the exact enqueue call site in
// the deterministic replay.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace acgpu::hostcheck {

enum class HazardKind : std::uint8_t {
  /// Conflicting device accesses (>= 1 write) on two ops with no
  /// happens-before edge — correct only by timing luck.
  kUnorderedConflict,
  /// The upload-reuse specialisation: an H2D write unordered against a
  /// kernel read of the same staging range (a skipped event wait, or a
  /// buffer recycled before its kernel ended).
  kUploadReuse,
  /// A D2H read unordered against a write of the range it drains — the
  /// readback races the producer.
  kWriteDuringD2H,
  /// An op touched a staging buffer while the buffer was NOT under lease.
  kUseAfterRelease,
  /// A buffer was leased while its previous lease was still outstanding.
  kDoubleLease,
  /// A release declared a drain time EARLIER than the completion of an op
  /// that accessed the buffer during the lease — the next lease's
  /// wait_until handshake will not cover that op.
  kReleaseWhileInFlight,
  /// A buffer still under lease when the trace ended (drain leak).
  kLeakedLease,
  /// The lock-order graph over the tracked host mutexes has a cycle
  /// (AB/BA inversion — a latent deadlock).
  kLockOrderCycle,
};
constexpr std::size_t kHazardKindCount = 8;

const char* to_string(HazardKind kind);

/// One side of a finding: a stream op, addressed as (sim, op id). `op` < 0
/// marks an empty/unused site (one-sided hazards).
struct OpRef {
  std::uint32_t sim = 0;
  std::int64_t op = -1;

  bool valid() const { return op >= 0; }
};

std::ostream& operator<<(std::ostream& out, const OpRef& ref);

/// One finding: the kind, a formatted one-liner, and the structured sites
/// behind it. For conflict kinds `first` is the earlier-enqueued op and
/// `second` the one that completed the hazard; lease kinds carry the pool
/// and buffer; kLockOrderCycle carries the cycle's mutex names instead.
struct HostHazard {
  HazardKind kind{};
  std::string message;
  OpRef first;
  OpRef second;
  std::int64_t pool = -1;    ///< lease hazards: registered pool id
  std::int64_t buffer = -1;  ///< lease hazards: buffer index in the pool
  std::vector<std::string> cycle;  ///< kLockOrderCycle: mutex names in order
};

std::ostream& operator<<(std::ostream& out, const HostHazard& hazard);

}  // namespace acgpu::hostcheck
