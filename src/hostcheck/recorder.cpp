#include "hostcheck/recorder.h"

namespace acgpu::hostcheck {

std::uint32_t Recorder::register_sim() {
  std::scoped_lock lock(mu_);
  return trace_.sims++;
}

std::uint32_t Recorder::register_pool(const std::string& name,
                                      std::uint32_t buffers,
                                      std::uint64_t buffer_bytes,
                                      std::uint32_t sim) {
  std::scoped_lock lock(mu_);
  trace_.pools.push_back(PoolInfo{name, buffers, buffer_bytes, sim});
  return static_cast<std::uint32_t>(trace_.pools.size() - 1);
}

std::uint32_t Recorder::register_mutex(const std::string& name) {
  std::scoped_lock lock(mu_);
  trace_.mutexes.push_back(name);
  return static_cast<std::uint32_t>(trace_.mutexes.size() - 1);
}

void Recorder::on_op(const gpusim::HostOpRecord& record) {
  std::scoped_lock lock(mu_);
  trace_.records.emplace_back(record);
}

void Recorder::on_access(const gpusim::HostAccessRecord& record) {
  std::scoped_lock lock(mu_);
  trace_.records.emplace_back(record);
}

void Recorder::on_event_record(const gpusim::HostEventRecord& record) {
  std::scoped_lock lock(mu_);
  trace_.records.emplace_back(record);
}

void Recorder::on_wait_event(const gpusim::HostWaitEventRecord& record) {
  std::scoped_lock lock(mu_);
  trace_.records.emplace_back(record);
}

void Recorder::on_wait_until(const gpusim::HostWaitUntilRecord& record) {
  std::scoped_lock lock(mu_);
  trace_.records.emplace_back(record);
}

void Recorder::on_lease(const gpusim::HostLeaseRecord& record) {
  std::scoped_lock lock(mu_);
  trace_.records.emplace_back(record);
}

void Recorder::on_release(const gpusim::HostReleaseRecord& record) {
  std::scoped_lock lock(mu_);
  trace_.records.emplace_back(record);
}

void Recorder::on_lock(const gpusim::HostLockRecord& record) {
  std::scoped_lock lock(mu_);
  trace_.records.emplace_back(record);
}

HostTrace Recorder::trace() const {
  std::scoped_lock lock(mu_);
  return trace_;
}

void Recorder::reset() {
  std::scoped_lock lock(mu_);
  trace_ = HostTrace{};
}

}  // namespace acgpu::hostcheck
