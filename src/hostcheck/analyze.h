// The happens-before analyzer: replays a HostTrace into an op DAG and
// reports schedules that are only correct by timing luck.
//
// Ordering model (per sim — sims are totally ordered by host program order
// and never compared):
//
//   same-stream FIFO      op n on stream S happens-before op n+1 on S;
//   record -> wait        wait_event(S, e) orders everything the event
//                         captured before the next op on S;
//   wait_until(S, t)      orders every op already enqueued in the sim with
//                         end <= t before the next op on S. This is the
//                         staging-pool handshake: release() declares the
//                         drain time, the next lease's producer waits for
//                         it. Declared time, not observed time — that is
//                         what makes it an ordering EDGE;
//   engine serialization  deliberately NOT an edge. Two ops that only
//                         happen to serialise on the copy or compute engine
//                         are unordered, which is exactly the class of
//                         timing-luck schedule the auditor exists to catch.
//
// Happens-before is computed with per-op vector clocks over the sim's
// streams. On top of the DAG the analyzer runs three passes:
//
//   conflicts   every pair of annotated device accesses that overlap with
//               >= 1 write must be HB-ordered; unordered pairs classify as
//               upload-reuse (H2D write vs kernel read), write-during-d2h
//               (a D2H op involved), or the generic unordered-conflict;
//   leases      the staging protocol: no access to an un-leased buffer, no
//               double-lease, release must declare a drain time >= the end
//               of every access made under the lease, and every lease must
//               be released by trace end;
//   locks       the lock-order graph over TrackedMutex records (edge
//               held -> acquired per thread); any cycle is a latent
//               deadlock, reported with the full mutex-name cycle.
#pragma once

#include <cstddef>

#include "hostcheck/recorder.h"
#include "hostcheck/report.h"

namespace acgpu::hostcheck {

struct AnalyzeOptions {
  std::size_t max_hazards = 64;  ///< exemplar cap (occurrences still count)
};

/// Replays `trace` and returns the findings. Deterministic: the same trace
/// yields the same report.
HostAuditReport analyze(const HostTrace& trace,
                        const AnalyzeOptions& options = {});

}  // namespace acgpu::hostcheck
