// Host-audit report: the machine-readable outcome of analysing one or more
// recorded traces. Holds hazard exemplars (capped; occurrence counts
// survive the cap) plus trace-shape counters that prove the audit saw real
// work. Serialises to human-readable text and to JSON (consumed by the
// ac_hostcheck CLI, the hostcheck tests, and CI artifacts). The structure
// mirrors gpucheck::AuditReport so the two auditors read the same way.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "hostcheck/hazard.h"

namespace acgpu::telemetry {
class MetricsRegistry;
}

namespace acgpu::hostcheck {

struct HostAuditReport {
  std::vector<HostHazard> hazards;  ///< exemplars, capped by AnalyzeOptions
  /// Total occurrences per HazardKind, including capped findings
  /// (index = static_cast<std::size_t>(kind)).
  std::array<std::uint64_t, kHazardKindCount> occurrences{};
  std::uint64_t dropped_hazards = 0;  ///< findings beyond the exemplar cap

  // Trace-shape counters (sanity that the audit actually saw work).
  std::uint64_t sims = 0;      ///< StreamSims analysed
  std::uint64_t ops = 0;       ///< stream ops (H2D/kernel/D2H)
  std::uint64_t accesses = 0;  ///< annotated device-range accesses
  std::uint64_t leases = 0;    ///< staging-pool acquisitions
  std::uint64_t releases = 0;
  std::uint64_t lock_events = 0;  ///< TrackedMutex acquires + releases
  std::uint64_t mutexes = 0;      ///< distinct tracked mutexes
  std::uint64_t lock_edges = 0;   ///< distinct held -> acquired pairs

  std::uint64_t count(HazardKind kind) const {
    return occurrences[static_cast<std::size_t>(kind)];
  }
  std::uint64_t total_hazards() const;
  /// True when no hazard of any kind occurred (counters are not verdicts).
  bool clean() const { return total_hazards() == 0; }

  /// Folds `other` into this report, keeping at most `max_hazards`
  /// exemplars.
  void merge(const HostAuditReport& other, std::size_t max_hazards);

  void write_text(std::ostream& out) const;
  void write_json(std::ostream& out) const;
};

/// The report's telemetry projection: (metric name, value) pairs under the
/// "hostcheck." prefix (hostcheck.hazards, hostcheck.ops, one
/// hostcheck.hazard.<kind> entry per kind, ...). Single source of truth for
/// both the "telemetry" object in write_json and publish() below.
std::vector<std::pair<std::string, double>> telemetry_series(
    const HostAuditReport& report);

/// Publishes telemetry_series() into `registry` as gauges (hazard counts
/// via set_max so repeated audits keep the worst case).
void publish(const HostAuditReport& report, telemetry::MetricsRegistry& registry);

}  // namespace acgpu::hostcheck
