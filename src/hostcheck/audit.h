// The host-audit harness: drives the production pipeline (and the serve
// layer) under the Recorder across a staging-geometry matrix, analyses each
// run for happens-before hazards, and checks the matches against the serial
// reference at the same time — a hazard-free run that returns wrong matches
// is still a failed audit.
//
// The matrix axes are the knobs that change the host schedule's SHAPE:
//
//   streams          1 (serial baseline) .. 8 (deep lane cycling);
//   depth            upload/readback pool depth — 1 forces total recycling
//                    pressure, 8 removes it;
//   split_readback   dedicated D2H queue vs the GT200 shared copy engine.
//
// Every conformant configuration must audit CLEAN on every workload: the
// pipeline's lease/wait_until handshake is supposed to order every
// conflicting access by construction, not by engine-serialization luck.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hostcheck/analyze.h"
#include "oracle/matcher.h"

namespace acgpu::hostcheck {

/// One point of the staging-geometry matrix.
struct HostAuditConfig {
  std::uint32_t streams = 2;
  std::uint32_t depth = 2;  ///< upload AND readback pool depth
  bool split_readback = true;
};

/// "s2-d4-split" / "s2-d4-shared" — used in reports and --config.
std::string to_string(const HostAuditConfig& config);

/// The default sweep matrix: streams {1,2,4,8} x depth {1,2,8} x
/// split_readback {on,off}.
const std::vector<HostAuditConfig>& default_config_matrix();

struct HostAuditSpec {
  /// Owned bytes per pipeline batch — small, so even oracle-sized texts
  /// (0.5–8 KB) split into several batches and exercise lease recycling.
  std::uint64_t batch_bytes = 1024;
  /// Feeder threads for the serve audit (each opens its own session).
  std::uint32_t serve_threads = 2;
  /// Chunks each serve feeder splits the text into.
  std::uint32_t serve_chunks = 7;
  AnalyzeOptions analyze{};
};

struct HostAuditOutcome {
  HostAuditReport report;
  bool matches_ok = false;  ///< output equals the serial reference
  std::uint64_t match_count = 0;
};

/// Runs one workload through Engine::scan under the Recorder with the
/// config's staging geometry and analyses the trace.
HostAuditOutcome audit_pipeline(const oracle::CompiledWorkload& workload,
                                const HostAuditConfig& config,
                                const HostAuditSpec& spec = {});

/// Runs one workload through a background StreamService under the Recorder:
/// `serve_threads` concurrent feeders, each its own session and chunking,
/// then drain/poll. Exercises the tracked serve/scheduler/session-manager
/// mutexes (lock-order pass) on top of the engine's stream trace.
HostAuditOutcome audit_serve(const oracle::CompiledWorkload& workload,
                             const HostAuditSpec& spec = {});

/// Runs one workload through a background cluster::Router under the
/// Recorder: `devices` shards each pumping on its own thread with `streams`
/// pipeline lanes, `serve_threads` concurrent feeders each owning a
/// session, and — when more than one shard is up — a fail-stop device
/// failure injected halfway through the feed, so the audit trace covers the
/// router mutex, every shard's serve/scheduler/manager locks, N devices'
/// stream activity, AND the drain + export/import rebalance path. Matches
/// are still checked per session against the serial reference.
HostAuditOutcome audit_cluster(const oracle::CompiledWorkload& workload,
                               std::uint32_t devices, std::uint32_t streams,
                               const HostAuditSpec& spec = {});

struct HostSweepResult {
  std::string name;  ///< "pipeline <config>" or "serve"
  HostAuditReport report;  ///< merged across all audited workloads
  std::uint64_t workloads = 0;
  std::uint64_t mismatches = 0;  ///< workloads whose matches diverged
};

/// Conformance workloads under audit: generates `iterations` oracle
/// workloads from `seed` and audits every config over each of them, plus
/// one serve-layer entry. An empty `configs` list means the default matrix.
std::vector<HostSweepResult> audit_conformance(
    std::uint64_t seed, std::uint64_t iterations,
    const std::vector<HostAuditConfig>& configs = {},
    const HostAuditSpec& spec = {});

}  // namespace acgpu::hostcheck
