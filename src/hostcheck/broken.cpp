#include "hostcheck/broken.h"

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gpusim/config.h"
#include "gpusim/device_memory.h"
#include "gpusim/stream.h"
#include "pipeline/staging_pool.h"
#include "util/error.h"

namespace acgpu::hostcheck {

const char* to_string(BrokenSchedule schedule) {
  switch (schedule) {
    case BrokenSchedule::kSkippedEventWait: return "skipped-event-wait";
    case BrokenSchedule::kEarlyRelease: return "early-release";
    case BrokenSchedule::kReleaseBeforeD2H: return "release-before-d2h";
    case BrokenSchedule::kWriteDuringD2H: return "write-during-d2h";
    case BrokenSchedule::kUseAfterRelease: return "use-after-release";
    case BrokenSchedule::kDoubleLease: return "double-lease";
    case BrokenSchedule::kLeakedLease: return "leaked-lease";
    case BrokenSchedule::kLockInversion: return "lock-inversion";
  }
  return "?";
}

const std::vector<BrokenSchedule>& all_broken_schedules() {
  static const std::vector<BrokenSchedule> all = {
      BrokenSchedule::kSkippedEventWait, BrokenSchedule::kEarlyRelease,
      BrokenSchedule::kReleaseBeforeD2H, BrokenSchedule::kWriteDuringD2H,
      BrokenSchedule::kUseAfterRelease,  BrokenSchedule::kDoubleLease,
      BrokenSchedule::kLeakedLease,      BrokenSchedule::kLockInversion,
  };
  return all;
}

BrokenSchedule broken_schedule_from_name(std::string_view name) {
  for (const BrokenSchedule s : all_broken_schedules())
    if (name == to_string(s)) return s;
  std::string valid;
  for (const BrokenSchedule s : all_broken_schedules()) {
    if (!valid.empty()) valid += ", ";
    valid += to_string(s);
  }
  ACGPU_CHECK(false, "unknown broken schedule '" << name << "' (valid: "
                                                 << valid << ")");
  return BrokenSchedule::kSkippedEventWait;
}

HazardKind expected_hazard(BrokenSchedule schedule) {
  switch (schedule) {
    case BrokenSchedule::kSkippedEventWait: return HazardKind::kUploadReuse;
    case BrokenSchedule::kEarlyRelease:
      return HazardKind::kReleaseWhileInFlight;
    case BrokenSchedule::kReleaseBeforeD2H:
      return HazardKind::kReleaseWhileInFlight;
    case BrokenSchedule::kWriteDuringD2H: return HazardKind::kWriteDuringD2H;
    case BrokenSchedule::kUseAfterRelease: return HazardKind::kUseAfterRelease;
    case BrokenSchedule::kDoubleLease: return HazardKind::kDoubleLease;
    case BrokenSchedule::kLeakedLease: return HazardKind::kLeakedLease;
    case BrokenSchedule::kLockInversion: return HazardKind::kLockOrderCycle;
  }
  return HazardKind::kUnorderedConflict;
}

namespace {

constexpr std::uint64_t kBytes = 256;

/// Shared driver scaffolding: a small simulated device under the recorder.
struct Rig {
  gpusim::GpuConfig config = gpusim::GpuConfig::gtx285();
  gpusim::DeviceMemory mem{1u << 20};
  gpusim::StreamSim sim{config, mem};
  std::vector<std::uint8_t> host = std::vector<std::uint8_t>(kBytes, 0xAB);

  explicit Rig(Recorder& recorder) { sim.set_host_observer(&recorder); }

  pipeline::StagingPool make_pool(Recorder& recorder, const char* name,
                                  std::uint64_t buffer_bytes) {
    pipeline::StagingPool::Options options{2, buffer_bytes, 8, false};
    options.observer = &recorder;
    options.name = name;
    options.sim = sim.sim_id();
    return pipeline::StagingPool(mem, options);
  }
};

void drive_skipped_event_wait(Recorder& recorder) {
  Rig rig(recorder);
  const gpusim::StreamId s0 = rig.sim.create_stream();
  const gpusim::StreamId s1 = rig.sim.create_stream();
  const gpusim::DevAddr buf = rig.mem.alloc(kBytes);
  rig.sim.memcpy_h2d(s0, buf, rig.host.data(), kBytes, "h2d upload");
  // CORRECT schedule: record_event(s0) here, wait_event(s1, e) before the
  // kernel. Both dropped — the kernel reads the upload by timing luck only.
  const std::uint64_t kid = rig.sim.charge_kernel(s1, 1e-4, "kernel consume");
  rig.sim.annotate(kid, buf, kBytes, /*is_write=*/false);
}

void drive_early_release(Recorder& recorder) {
  Rig rig(recorder);
  const gpusim::StreamId s0 = rig.sim.create_stream();
  pipeline::StagingPool pool = rig.make_pool(recorder, "upload", kBytes);
  const pipeline::StagingPool::Lease lease = pool.try_acquire().value();
  const std::uint64_t h2d =
      rig.sim.memcpy_h2d(s0, lease.addr, rig.host.data(), kBytes, "h2d b0");
  const std::uint64_t kid = rig.sim.charge_kernel(s0, 1e-3, "kernel b0");
  rig.sim.annotate(kid, lease.addr, kBytes, /*is_write=*/false);
  // BUG: drained_at is the H2D end, not the kernel end — the next lease's
  // wait_until will not cover the kernel still reading the buffer.
  pool.release(lease.index, rig.sim.op_end(h2d));
}

void drive_release_before_d2h(Recorder& recorder) {
  Rig rig(recorder);
  const gpusim::StreamId s0 = rig.sim.create_stream();
  pipeline::StagingPool pool = rig.make_pool(recorder, "readback", kBytes);
  const pipeline::StagingPool::Lease lease = pool.try_acquire().value();
  const std::uint64_t kid = rig.sim.charge_kernel(s0, 1e-3, "kernel b0");
  rig.sim.annotate(kid, lease.addr, kBytes, /*is_write=*/true);
  rig.sim.memcpy_d2h(s0, rig.host.data(), lease.addr, kBytes, "d2h b0");
  // BUG: released at kernel end; the D2H draining the buffer is still in
  // flight past that time.
  pool.release(lease.index, rig.sim.op_end(kid));
}

void drive_write_during_d2h(Recorder& recorder) {
  Rig rig(recorder);
  const gpusim::StreamId s0 = rig.sim.create_stream();
  const gpusim::StreamId s1 = rig.sim.create_stream();
  const gpusim::DevAddr buf = rig.mem.alloc(kBytes);
  rig.sim.memcpy_d2h(s0, rig.host.data(), buf, kBytes, "d2h drain");
  // BUG: the overwrite is on another stream with no edge to the drain.
  rig.sim.memcpy_h2d(s1, buf, rig.host.data(), kBytes, "h2d overwrite");
}

void drive_use_after_release(Recorder& recorder) {
  Rig rig(recorder);
  const gpusim::StreamId s0 = rig.sim.create_stream();
  pipeline::StagingPool pool = rig.make_pool(recorder, "upload", kBytes);
  const pipeline::StagingPool::Lease lease = pool.try_acquire().value();
  pool.release(lease.index, 0.0);
  // BUG: the stage kept the address past its lease.
  rig.sim.memcpy_h2d(s0, lease.addr, rig.host.data(), kBytes, "h2d stale");
}

void drive_double_lease(Recorder& recorder) {
  // The real pool throws before handing a leased buffer out again, so this
  // driver emits the records such a bypassed pool would have produced.
  const std::uint32_t pool = recorder.register_pool("upload", 2, kBytes, 0);
  recorder.on_lease(gpusim::HostLeaseRecord{pool, 0, 0x1000, kBytes, 0.0});
  recorder.on_lease(gpusim::HostLeaseRecord{pool, 0, 0x1000, kBytes, 0.0});
  recorder.on_release(gpusim::HostReleaseRecord{pool, 0, 1.0});
}

void drive_leaked_lease(Recorder& recorder) {
  Rig rig(recorder);
  pipeline::StagingPool pool = rig.make_pool(recorder, "upload", kBytes);
  const pipeline::StagingPool::Lease lease = pool.try_acquire().value();
  (void)lease;  // BUG: never released; the trace ends with it outstanding.
}

void drive_lock_inversion(Recorder& recorder) {
  gpusim::TrackedMutex a("serve.mu");
  gpusim::TrackedMutex b("serve.scheduler.mu");
  a.attach(&recorder);
  b.attach(&recorder);
  // The threads run sequentially (join between them), so this never
  // deadlocks — but the order graph still shows serve.mu ->
  // serve.scheduler.mu -> serve.mu, which a concurrent run could deadlock
  // on. Exactly the latent bug the lock pass exists to surface.
  std::thread t1([&] {
    std::scoped_lock hold(a);
    std::scoped_lock nested(b);
  });
  t1.join();
  std::thread t2([&] {
    std::scoped_lock hold(b);
    std::scoped_lock nested(a);
  });
  t2.join();
}

}  // namespace

HostTrace record_broken_schedule(BrokenSchedule schedule) {
  Recorder recorder;
  switch (schedule) {
    case BrokenSchedule::kSkippedEventWait:
      drive_skipped_event_wait(recorder);
      break;
    case BrokenSchedule::kEarlyRelease: drive_early_release(recorder); break;
    case BrokenSchedule::kReleaseBeforeD2H:
      drive_release_before_d2h(recorder);
      break;
    case BrokenSchedule::kWriteDuringD2H:
      drive_write_during_d2h(recorder);
      break;
    case BrokenSchedule::kUseAfterRelease:
      drive_use_after_release(recorder);
      break;
    case BrokenSchedule::kDoubleLease: drive_double_lease(recorder); break;
    case BrokenSchedule::kLeakedLease: drive_leaked_lease(recorder); break;
    case BrokenSchedule::kLockInversion: drive_lock_inversion(recorder); break;
  }
  return recorder.trace();
}

HostAuditReport run_broken_schedule(BrokenSchedule schedule,
                                    const AnalyzeOptions& options) {
  return analyze(record_broken_schedule(schedule), options);
}

}  // namespace acgpu::hostcheck
