#include "hostcheck/hazard.h"

#include <ostream>

namespace acgpu::hostcheck {

const char* to_string(HazardKind kind) {
  switch (kind) {
    case HazardKind::kUnorderedConflict: return "unordered-conflict";
    case HazardKind::kUploadReuse: return "upload-reuse";
    case HazardKind::kWriteDuringD2H: return "write-during-d2h";
    case HazardKind::kUseAfterRelease: return "use-after-release";
    case HazardKind::kDoubleLease: return "double-lease";
    case HazardKind::kReleaseWhileInFlight: return "release-while-in-flight";
    case HazardKind::kLeakedLease: return "leaked-lease";
    case HazardKind::kLockOrderCycle: return "lock-order-cycle";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& out, const OpRef& ref) {
  if (!ref.valid()) return out << "(none)";
  return out << "sim " << ref.sim << " op " << ref.op;
}

std::ostream& operator<<(std::ostream& out, const HostHazard& hazard) {
  out << to_string(hazard.kind) << ": " << hazard.message;
  if (hazard.first.valid()) out << " [first: " << hazard.first;
  if (hazard.second.valid()) out << "; second: " << hazard.second;
  if (hazard.first.valid()) out << "]";
  return out;
}

}  // namespace acgpu::hostcheck
