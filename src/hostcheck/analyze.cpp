#include "hostcheck/analyze.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace acgpu::hostcheck {
namespace {

using gpusim::HostAccessRecord;
using gpusim::HostEventRecord;
using gpusim::HostLeaseRecord;
using gpusim::HostLockRecord;
using gpusim::HostOpKind;
using gpusim::HostOpRecord;
using gpusim::HostReleaseRecord;
using gpusim::HostWaitEventRecord;
using gpusim::HostWaitUntilRecord;

const char* op_kind_name(HostOpKind kind) {
  switch (kind) {
    case HostOpKind::kH2D: return "h2d";
    case HostOpKind::kKernel: return "kernel";
    case HostOpKind::kD2H: return "d2h";
  }
  return "?";
}

/// Vector clock over a sim's streams: clock[s] = how many of stream s's ops
/// are ordered before this point. Missing entries count as 0.
using Clock = std::vector<std::uint64_t>;

void join(Clock& a, const Clock& b) {
  if (b.size() > a.size()) a.resize(b.size(), 0);
  for (std::size_t i = 0; i < b.size(); ++i) a[i] = std::max(a[i], b[i]);
}

/// One resolved op with its clock. `pos` is the op's 1-based position on
/// its stream, so op A happens-before op B iff B's clock covers A's
/// position on A's stream.
struct OpNode {
  HostOpRecord rec;
  Clock clock;
  std::uint64_t pos = 0;
};

bool happens_before(const OpNode& a, const OpNode& b) {
  const std::uint32_t s = a.rec.stream;
  return s < b.clock.size() && a.pos <= b.clock[s];
}

/// Per-StreamSim replay state; sims never share clocks (they are totally
/// ordered by host program order).
struct SimState {
  std::vector<OpNode> ops;          ///< indexed by op id (timeline index)
  std::vector<Clock> stream_clock;  ///< clock of the stream's last op
  std::vector<Clock> pending;       ///< deps applied to the stream's next op
  std::vector<std::uint64_t> stream_len;
  std::vector<Clock> events;  ///< event id -> captured clock
  std::vector<HostAccessRecord> accesses;

  void ensure_stream(std::uint32_t stream) {
    if (stream >= stream_clock.size()) {
      stream_clock.resize(stream + 1);
      pending.resize(stream + 1);
      stream_len.resize(stream + 1, 0);
    }
  }
};

/// Per-(pool, buffer) lease-protocol state.
struct BufferState {
  bool range_known = false;
  std::uint64_t addr = 0;
  std::uint64_t bytes = 0;
  bool leased = false;
  /// Accesses made under the current lease: (site, op end time). Checked
  /// against the declared drain time at release.
  std::vector<std::pair<OpRef, double>> in_lease;
};

bool ranges_overlap(std::uint64_t a, std::uint64_t an, std::uint64_t b,
                    std::uint64_t bn) {
  return an > 0 && bn > 0 && a < b + bn && b < a + an;
}

class Analyzer {
 public:
  Analyzer(const HostTrace& trace, const AnalyzeOptions& options)
      : trace_(trace), options_(options) {}

  HostAuditReport run() {
    report_.sims = trace_.sims;
    report_.mutexes = trace_.mutexes.size();
    for (const HostTrace::Record& record : trace_.records)
      std::visit([this](const auto& r) { handle(r); }, record);
    finish_leases();
    check_conflicts();
    check_lock_order();
    report_.lock_edges = lock_edges_.size();
    return std::move(report_);
  }

 private:
  SimState& sim(std::uint32_t id) {
    if (id >= sims_.size()) sims_.resize(id + 1);
    return sims_[id];
  }

  void add(HostHazard hazard) {
    ++report_.occurrences[static_cast<std::size_t>(hazard.kind)];
    if (report_.hazards.size() < options_.max_hazards)
      report_.hazards.push_back(std::move(hazard));
    else
      ++report_.dropped_hazards;
  }

  std::string op_label(const OpNode& node) const {
    std::ostringstream out;
    out << op_kind_name(node.rec.kind) << " op " << node.rec.op;
    if (!node.rec.label.empty()) out << " (" << node.rec.label << ")";
    return out.str();
  }

  std::string pool_name(std::uint32_t pool) const {
    return pool < trace_.pools.size() ? trace_.pools[pool].name
                                      : "pool " + std::to_string(pool);
  }

  std::uint32_t pool_sim(std::uint32_t pool) const {
    return pool < trace_.pools.size() ? trace_.pools[pool].sim : 0;
  }

  void handle(const HostOpRecord& r) {
    ++report_.ops;
    SimState& s = sim(r.sim);
    s.ensure_stream(r.stream);
    OpNode node;
    node.rec = r;
    node.clock = s.stream_clock[r.stream];
    join(node.clock, s.pending[r.stream]);
    node.pos = ++s.stream_len[r.stream];
    if (r.stream >= node.clock.size()) node.clock.resize(r.stream + 1, 0);
    node.clock[r.stream] = node.pos;
    s.stream_clock[r.stream] = node.clock;
    s.pending[r.stream].clear();
    if (r.op >= s.ops.size()) s.ops.resize(r.op + 1);
    s.ops[r.op] = std::move(node);
  }

  void handle(const HostAccessRecord& r) {
    ++report_.accesses;
    SimState& s = sim(r.sim);
    s.accesses.push_back(r);

    // Lease-protocol view of the same access: an annotated range that lands
    // in a registered staging buffer must arrive under a live lease.
    const double end =
        r.op < s.ops.size() ? s.ops[r.op].rec.end : 0.0;
    for (auto& [key, buf] : buffers_) {
      // Device addresses are per-arena offsets: pools of concurrently-live
      // sims (cluster shards) occupy overlapping ranges, so only this sim's
      // own pools can claim the access.
      if (pool_sim(key.first) != r.sim) continue;
      if (!buf.range_known ||
          !ranges_overlap(r.addr, r.bytes, buf.addr, buf.bytes))
        continue;
      const OpRef ref{r.sim, static_cast<std::int64_t>(r.op)};
      if (buf.leased) {
        buf.in_lease.emplace_back(ref, end);
      } else {
        std::ostringstream msg;
        msg << (r.is_write ? "write to" : "read of") << " buffer "
            << key.second << " of pool '" << pool_name(key.first)
            << "' while the buffer is not leased";
        HostHazard h;
        h.kind = HazardKind::kUseAfterRelease;
        h.message = msg.str();
        h.first = ref;
        h.pool = key.first;
        h.buffer = key.second;
        add(std::move(h));
      }
    }
  }

  void handle(const HostEventRecord& r) {
    SimState& s = sim(r.sim);
    s.ensure_stream(r.stream);
    if (r.event >= s.events.size()) s.events.resize(r.event + 1);
    s.events[r.event] = s.stream_clock[r.stream];
  }

  void handle(const HostWaitEventRecord& r) {
    SimState& s = sim(r.sim);
    s.ensure_stream(r.stream);
    if (r.event < s.events.size())
      join(s.pending[r.stream], s.events[r.event]);
  }

  void handle(const HostWaitUntilRecord& r) {
    // A declared timestamp dependency orders every already-enqueued op that
    // completes by then. Exact comparison is sound: the release drain time
    // and the op end are the same double, carried through unchanged.
    SimState& s = sim(r.sim);
    s.ensure_stream(r.stream);
    for (const OpNode& node : s.ops)
      if (node.pos != 0 && node.rec.end <= r.seconds)
        join(s.pending[r.stream], node.clock);
  }

  void handle(const HostLeaseRecord& r) {
    ++report_.leases;
    BufferState& buf = buffers_[{r.pool, r.buffer}];
    if (buf.leased) {
      std::ostringstream msg;
      msg << "buffer " << r.buffer << " of pool '" << pool_name(r.pool)
          << "' leased again while its previous lease is outstanding";
      HostHazard h;
      h.kind = HazardKind::kDoubleLease;
      h.message = msg.str();
      h.pool = r.pool;
      h.buffer = r.buffer;
      add(std::move(h));
    }
    buf.leased = true;
    if (r.bytes > 0) {
      // The arena recycles: a pool torn down between scans frees its device
      // range, and the next scan's pool can land on the same addresses.
      // There is no pool-destroy record, so the new lease IS the signal —
      // any other buffer whose known range overlaps it is dead; forget it
      // so its stale range cannot misattribute the new pool's accesses.
      // Scoped to this pool's arena: an overlapping range on another sim's
      // pool (a concurrent cluster shard) is live, not stale.
      for (auto& [other_key, other] : buffers_) {
        if (other_key == std::pair{r.pool, r.buffer} || !other.range_known)
          continue;
        if (pool_sim(other_key.first) != pool_sim(r.pool)) continue;
        if (ranges_overlap(r.addr, r.bytes, other.addr, other.bytes))
          other.range_known = false;
      }
      buf.range_known = true;
      buf.addr = r.addr;
      buf.bytes = r.bytes;
    }
    buf.in_lease.clear();
  }

  void handle(const HostReleaseRecord& r) {
    ++report_.releases;
    BufferState& buf = buffers_[{r.pool, r.buffer}];
    for (const auto& [ref, end] : buf.in_lease) {
      if (end <= r.drained_at) continue;
      std::ostringstream msg;
      msg << "buffer " << r.buffer << " of pool '" << pool_name(r.pool)
          << "' released as drained at " << r.drained_at
          << "s but an access under the lease completes at " << end
          << "s — the next lease will not wait for it";
      HostHazard h;
      h.kind = HazardKind::kReleaseWhileInFlight;
      h.message = msg.str();
      h.first = ref;
      h.pool = r.pool;
      h.buffer = r.buffer;
      add(std::move(h));
    }
    buf.leased = false;
    buf.in_lease.clear();
  }

  void handle(const HostLockRecord& r) {
    ++report_.lock_events;
    std::vector<std::uint32_t>& held = held_[r.thread];
    if (r.acquire) {
      for (const std::uint32_t h : held)
        if (h != r.mutex) lock_edges_.insert({h, r.mutex});
      held.push_back(r.mutex);
    } else {
      // Pop the most recent matching acquire (locks release LIFO in
      // practice, but a stray order must not desync the whole stack).
      for (auto it = held.rbegin(); it != held.rend(); ++it) {
        if (*it != r.mutex) continue;
        held.erase(std::next(it).base());
        break;
      }
    }
  }

  void finish_leases() {
    for (const auto& [key, buf] : buffers_) {
      if (!buf.leased) continue;
      std::ostringstream msg;
      msg << "buffer " << key.second << " of pool '" << pool_name(key.first)
          << "' still leased at trace end (leaked lease)";
      HostHazard h;
      h.kind = HazardKind::kLeakedLease;
      h.message = msg.str();
      h.pool = key.first;
      h.buffer = key.second;
      add(std::move(h));
    }
  }

  void check_conflicts() {
    for (const SimState& s : sims_) {
      // One hazard per unordered op pair, however many ranges collide.
      std::set<std::pair<std::uint64_t, std::uint64_t>> reported;
      for (std::size_t i = 0; i < s.accesses.size(); ++i) {
        for (std::size_t j = i + 1; j < s.accesses.size(); ++j) {
          const HostAccessRecord& x = s.accesses[i];
          const HostAccessRecord& y = s.accesses[j];
          if (x.op == y.op) continue;
          if (!x.is_write && !y.is_write) continue;
          if (!ranges_overlap(x.addr, x.bytes, y.addr, y.bytes)) continue;
          // Accesses of ops the trace never recorded (hand-built traces)
          // cannot be ordered — skip rather than crash.
          if (x.op >= s.ops.size() || s.ops[x.op].pos == 0) continue;
          if (y.op >= s.ops.size() || s.ops[y.op].pos == 0) continue;
          const OpNode& a = s.ops[x.op];
          const OpNode& b = s.ops[y.op];
          if (happens_before(a, b) || happens_before(b, a)) continue;
          const auto pair = std::minmax(x.op, y.op);
          if (!reported.insert({pair.first, pair.second}).second) continue;
          add(conflict_hazard(x, y, a, b));
        }
      }
    }
  }

  HostHazard conflict_hazard(const HostAccessRecord& x,
                             const HostAccessRecord& y, const OpNode& a,
                             const OpNode& b) {
    HostHazard h;
    if (a.rec.kind == HostOpKind::kD2H || b.rec.kind == HostOpKind::kD2H) {
      h.kind = HazardKind::kWriteDuringD2H;
    } else if ((a.rec.kind == HostOpKind::kH2D && x.is_write &&
                b.rec.kind == HostOpKind::kKernel) ||
               (b.rec.kind == HostOpKind::kH2D && y.is_write &&
                a.rec.kind == HostOpKind::kKernel)) {
      h.kind = HazardKind::kUploadReuse;
    } else {
      h.kind = HazardKind::kUnorderedConflict;
    }
    std::ostringstream msg;
    msg << op_label(a) << (x.is_write ? " writes" : " reads") << " ["
        << x.addr << ", +" << x.bytes << ") with no happens-before edge to "
        << op_label(b) << " which " << (y.is_write ? "writes [" : "reads [")
        << y.addr << ", +" << y.bytes << ")";
    h.message = msg.str();
    h.first = OpRef{a.rec.sim, static_cast<std::int64_t>(a.rec.op)};
    h.second = OpRef{b.rec.sim, static_cast<std::int64_t>(b.rec.op)};
    return h;
  }

  void check_lock_order() {
    const std::size_t n = trace_.mutexes.size();
    std::vector<std::vector<std::uint32_t>> adj(n);
    for (const auto& [from, to] : lock_edges_)
      if (from < n && to < n) adj[from].push_back(to);

    // Report each cycle once, anchored at its smallest mutex id: DFS from
    // every node, keep paths that return to the start without visiting a
    // smaller id.
    for (std::uint32_t start = 0; start < n; ++start) {
      std::vector<std::uint32_t> path;
      std::vector<bool> on_path(n, false);
      if (find_cycle(start, start, adj, path, on_path)) {
        HostHazard h;
        h.kind = HazardKind::kLockOrderCycle;
        std::ostringstream msg;
        msg << "lock-order cycle: ";
        for (const std::uint32_t m : path) {
          h.cycle.push_back(trace_.mutexes[m]);
          msg << trace_.mutexes[m] << " -> ";
        }
        h.cycle.push_back(trace_.mutexes[start]);
        msg << trace_.mutexes[start];
        h.message = msg.str();
        add(std::move(h));
      }
    }
  }

  bool find_cycle(std::uint32_t start, std::uint32_t at,
                  const std::vector<std::vector<std::uint32_t>>& adj,
                  std::vector<std::uint32_t>& path,
                  std::vector<bool>& on_path) {
    path.push_back(at);
    on_path[at] = true;
    for (const std::uint32_t next : adj[at]) {
      if (next == start) return true;
      if (next < start || on_path[next]) continue;
      if (find_cycle(start, next, adj, path, on_path)) return true;
    }
    path.pop_back();
    on_path[at] = false;
    return false;
  }

  const HostTrace& trace_;
  AnalyzeOptions options_;
  HostAuditReport report_;
  std::vector<SimState> sims_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, BufferState> buffers_;
  std::map<std::uint64_t, std::vector<std::uint32_t>> held_;
  std::set<std::pair<std::uint32_t, std::uint32_t>> lock_edges_;
};

}  // namespace

HostAuditReport analyze(const HostTrace& trace, const AnalyzeOptions& options) {
  return Analyzer(trace, options).run();
}

}  // namespace acgpu::hostcheck
