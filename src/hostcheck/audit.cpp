#include "hostcheck/audit.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <string_view>
#include <thread>
#include <utility>

#include "ac/match.h"
#include "oracle/workload_gen.h"
#include "pipeline/engine.h"
#include "cluster/router.h"
#include "serve/service.h"
#include "util/error.h"

namespace acgpu::hostcheck {
namespace {

using oracle::CompiledWorkload;

bool same_matches(std::vector<ac::Match> got,
                  const std::vector<ac::Match>& expected) {
  ac::normalize_matches(got);
  return got == expected;
}

}  // namespace

std::string to_string(const HostAuditConfig& config) {
  std::ostringstream name;
  name << "s" << config.streams << "-d" << config.depth
       << (config.split_readback ? "-split" : "-shared");
  return name.str();
}

const std::vector<HostAuditConfig>& default_config_matrix() {
  static const std::vector<HostAuditConfig> matrix = [] {
    std::vector<HostAuditConfig> m;
    for (const std::uint32_t streams : {1u, 2u, 4u, 8u})
      for (const std::uint32_t depth : {1u, 2u, 8u})
        for (const bool split : {true, false})
          m.push_back(HostAuditConfig{streams, depth, split});
    return m;
  }();
  return matrix;
}

HostAuditOutcome audit_pipeline(const CompiledWorkload& workload,
                                const HostAuditConfig& config,
                                const HostAuditSpec& spec) {
  const std::vector<ac::Match> expected = oracle::reference_matches(workload);

  Recorder recorder;
  // Capacity retry mirrors gpucheck: grow the per-thread match buffer until
  // nothing overflows, with a fresh trace per attempt so the audited
  // schedule is the one whose matches we keep.
  for (std::uint32_t capacity = 64;; capacity *= 4) {
    ACGPU_CHECK(capacity <= (1u << 14),
                "hostcheck audit: match buffer still overflowing at capacity "
                    << capacity << " on workload " << workload.name());
    recorder.reset();

    EngineOptions eo;
    eo.streams = config.streams;
    eo.pool_depth = config.depth;
    eo.readback_depth = config.depth;
    eo.split_readback = config.split_readback;
    eo.batch_bytes = spec.batch_bytes;
    eo.match_capacity = capacity;
    eo.host_observer = &recorder;
    DeviceOptions dopt;
    dopt.gpu = eo.gpu;
    dopt.memory_bytes = eo.device_memory_bytes;
    dopt.host_observer = eo.host_observer;
    Result<Device> device = Device::create(dopt);
    ACGPU_CHECK(device.is_ok(), "hostcheck audit: Device::create failed on "
                                 << workload.name() << ": "
                                 << device.status().message());
    Result<Engine> engine =
        Engine::create(device.value(), workload.patterns(), eo);
    ACGPU_CHECK(engine.is_ok(), "hostcheck audit: Engine::create failed on "
                                 << workload.name() << ": "
                                 << engine.status().message());

    Result<ScanResult> scan = engine.value().scan(workload.text());
    ACGPU_CHECK(scan.is_ok(), "hostcheck audit: Engine::scan failed on "
                               << workload.name() << ": "
                               << scan.status().message());
    if (scan.value().overflowed) continue;

    HostAuditOutcome outcome;
    outcome.match_count = scan.value().matches.size();
    outcome.matches_ok = same_matches(scan.value().matches, expected);
    outcome.report = analyze(recorder.trace(), spec.analyze);
    return outcome;
  }
}

HostAuditOutcome audit_serve(const CompiledWorkload& workload,
                             const HostAuditSpec& spec) {
  const std::vector<ac::Match> expected = oracle::reference_matches(workload);
  const std::uint32_t feeders = std::max(1u, spec.serve_threads);
  const std::uint32_t chunks = std::max(1u, spec.serve_chunks);

  Recorder recorder;
  serve::ServeOptions so;
  so.engine.batch_bytes = spec.batch_bytes;
  so.background = true;
  so.host_observer = &recorder;
  Result<serve::StreamService> service =
      serve::StreamService::create(workload.patterns(), so);
  ACGPU_CHECK(service.is_ok(), "hostcheck audit: StreamService::create failed on "
                                << workload.name() << ": "
                                << service.status().message());
  serve::StreamService& svc = service.value();

  // Each feeder streams the whole text through its own session, so every
  // session must poll exactly the reference matches — while the concurrent
  // feeds exercise the tracked service/scheduler/session-manager locks.
  std::vector<serve::SessionId> sessions(feeders);
  for (std::uint32_t f = 0; f < feeders; ++f) {
    Result<serve::SessionId> id = svc.open();
    ACGPU_CHECK(id.is_ok(), "hostcheck audit: open failed: "
                             << id.status().message());
    sessions[f] = id.value();
  }
  std::vector<std::thread> threads;
  threads.reserve(feeders);
  for (std::uint32_t f = 0; f < feeders; ++f) {
    threads.emplace_back([&, f] {
      const std::string_view text = workload.text();
      const std::size_t step = text.size() / chunks + 1;
      for (std::size_t at = 0; at < text.size() || at == 0; at += step) {
        const std::string_view chunk = text.substr(at, step);
        for (;;) {
          const Status status = svc.feed(sessions[f], chunk);
          if (status.is_ok()) break;
          ACGPU_CHECK(status.code() == StatusCode::kOverloaded,
                      "hostcheck audit: feed failed: " << status.message());
          std::this_thread::yield();  // bounded queue full — retry
        }
        if (text.empty()) break;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const Status drained = svc.drain();
  ACGPU_CHECK(drained.is_ok(),
              "hostcheck audit: drain failed: " << drained.message());

  HostAuditOutcome outcome;
  outcome.matches_ok = true;
  for (std::uint32_t f = 0; f < feeders; ++f) {
    Result<std::vector<ac::Match>> polled = svc.poll(sessions[f]);
    ACGPU_CHECK(polled.is_ok(), "hostcheck audit: poll failed: "
                                 << polled.status().message());
    outcome.match_count += polled.value().size();
    outcome.matches_ok =
        outcome.matches_ok && same_matches(polled.value(), expected);
  }
  svc.shutdown();  // quiesce the worker before snapshotting the trace
  outcome.report = analyze(recorder.trace(), spec.analyze);
  return outcome;
}

HostAuditOutcome audit_cluster(const CompiledWorkload& workload,
                               std::uint32_t devices, std::uint32_t streams,
                               const HostAuditSpec& spec) {
  const std::vector<ac::Match> expected = oracle::reference_matches(workload);
  const std::uint32_t feeders = std::max(1u, spec.serve_threads);
  const std::uint32_t chunks = std::max(1u, spec.serve_chunks);

  Recorder recorder;
  cluster::ClusterOptions co;
  co.devices = std::max(1u, devices);
  co.engine.batch_bytes = spec.batch_bytes;
  co.engine.streams = std::max(1u, streams);
  co.background = true;  // one pump thread per shard: N devices in flight
  co.host_observer = &recorder;
  Result<cluster::Router> router =
      cluster::Router::create(workload.patterns(), co);
  ACGPU_CHECK(router.is_ok(), "hostcheck audit: Router::create failed on "
                                  << workload.name() << ": "
                                  << router.status().message());
  cluster::Router& cl = router.value();

  std::vector<serve::SessionId> sessions(feeders);
  for (std::uint32_t f = 0; f < feeders; ++f) {
    Result<serve::SessionId> id = cl.open();
    ACGPU_CHECK(id.is_ok(),
                "hostcheck audit: open failed: " << id.status().message());
    sessions[f] = id.value();
  }
  // The failure is injected from a dedicated thread once any feeder crosses
  // the halfway mark, so the rebalance races real concurrent feeds — the
  // schedule shape the auditor is here to vet.
  std::atomic<std::uint64_t> fed_chunks{0};
  const std::uint64_t trigger = (static_cast<std::uint64_t>(feeders) * chunks) / 2;
  std::thread injector;
  if (co.devices > 1) {
    injector = std::thread([&] {
      while (fed_chunks.load(std::memory_order_relaxed) < trigger)
        std::this_thread::yield();
      const Status failed = cl.mark_failed(0);
      ACGPU_CHECK(failed.is_ok(), "hostcheck audit: mark_failed failed: "
                                      << failed.message());
    });
  }
  std::vector<std::thread> threads;
  threads.reserve(feeders);
  for (std::uint32_t f = 0; f < feeders; ++f) {
    threads.emplace_back([&, f] {
      const std::string_view text = workload.text();
      const std::size_t step = text.size() / chunks + 1;
      for (std::size_t at = 0; at < text.size() || at == 0; at += step) {
        const std::string_view chunk = text.substr(at, step);
        for (;;) {
          const Status status = cl.feed(sessions[f], chunk);
          if (status.is_ok()) break;
          ACGPU_CHECK(status.code() == StatusCode::kOverloaded,
                      "hostcheck audit: feed failed: " << status.message());
          std::this_thread::yield();  // bounded queue full — retry
        }
        fed_chunks.fetch_add(1, std::memory_order_relaxed);
        if (text.empty()) break;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (injector.joinable()) injector.join();
  const Status drained = cl.drain();
  ACGPU_CHECK(drained.is_ok(),
              "hostcheck audit: drain failed: " << drained.message());

  HostAuditOutcome outcome;
  outcome.matches_ok = true;
  for (std::uint32_t f = 0; f < feeders; ++f) {
    Result<std::vector<ac::Match>> polled = cl.poll(sessions[f]);
    ACGPU_CHECK(polled.is_ok(), "hostcheck audit: poll failed: "
                                    << polled.status().message());
    outcome.match_count += polled.value().size();
    outcome.matches_ok =
        outcome.matches_ok && same_matches(polled.value(), expected);
  }
  cl.shutdown();  // quiesce every shard worker before snapshotting the trace
  outcome.report = analyze(recorder.trace(), spec.analyze);
  return outcome;
}

std::vector<HostSweepResult> audit_conformance(
    std::uint64_t seed, std::uint64_t iterations,
    const std::vector<HostAuditConfig>& configs, const HostAuditSpec& spec) {
  const std::vector<HostAuditConfig>& matrix =
      configs.empty() ? default_config_matrix() : configs;

  std::vector<CompiledWorkload> workloads;
  workloads.reserve(iterations);
  for (std::uint64_t i = 0; i < iterations; ++i)
    workloads.emplace_back(oracle::generate_workload(seed, i));

  std::vector<HostSweepResult> results;
  results.reserve(matrix.size() + 1);
  for (const HostAuditConfig& config : matrix) {
    HostSweepResult result;
    result.name = "pipeline " + to_string(config);
    for (const CompiledWorkload& w : workloads) {
      const HostAuditOutcome outcome = audit_pipeline(w, config, spec);
      result.report.merge(outcome.report, spec.analyze.max_hazards);
      ++result.workloads;
      if (!outcome.matches_ok) ++result.mismatches;
    }
    results.push_back(std::move(result));
  }
  {
    HostSweepResult result;
    result.name = "serve";
    for (const CompiledWorkload& w : workloads) {
      const HostAuditOutcome outcome = audit_serve(w, spec);
      result.report.merge(outcome.report, spec.analyze.max_hazards);
      ++result.workloads;
      if (!outcome.matches_ok) ++result.mismatches;
    }
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace acgpu::hostcheck
