// Deliberately-broken host schedules — the auditor's negative controls.
//
// Each driver builds a real StreamSim (and, where the hazard lives in the
// lease protocol, a real StagingPool) under the Recorder and reproduces one
// canonical orchestration bug: the event wait a refactor dropped, the
// staging buffer released a step too early, the AB/BA lock inversion. The
// audit CLI and the WILL_FAIL tests then assert the analyzer flags each
// schedule with exactly the expected hazard kind — if a future analyzer
// change stops catching one of these, CI fails before the regression ships.
//
// (gpucheck has the same pattern one layer down: deliberately-broken
// kernels that its recorder must flag.)
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "hostcheck/analyze.h"
#include "hostcheck/recorder.h"

namespace acgpu::hostcheck {

enum class BrokenSchedule : std::uint8_t {
  /// Producer H2D on stream 0, consumer kernel on stream 1, with the
  /// record_event/wait_event handshake dropped.
  kSkippedEventWait,
  /// Upload buffer released at H2D end instead of kernel end — the kernel
  /// is still reading it when the next lease could recycle it.
  kEarlyRelease,
  /// Readback buffer released at kernel end instead of D2H end — the drain
  /// copy is still in flight.
  kReleaseBeforeD2H,
  /// A D2H drains a range while an unordered H2D on another stream
  /// overwrites it.
  kWriteDuringD2H,
  /// An H2D writes a staging buffer after its lease was released.
  kUseAfterRelease,
  /// A buffer handed out twice without an intervening release. The real
  /// StagingPool refuses this, so the driver emits the record stream the
  /// pool would have produced had its own assertion been bypassed.
  kDoubleLease,
  /// A lease never released before the trace ends.
  kLeakedLease,
  /// Two threads acquire two service locks in opposite orders (run
  /// sequentially — the order graph shows the cycle without the deadlock).
  kLockInversion,
};

const char* to_string(BrokenSchedule schedule);
const std::vector<BrokenSchedule>& all_broken_schedules();
/// Resolves a schedule by its to_string name; throws acgpu::Error on an
/// unknown name (the message lists the valid ones).
BrokenSchedule broken_schedule_from_name(std::string_view name);

/// The hazard kind the analyzer MUST report for the schedule (other kinds
/// may fire alongside — a broken schedule can trip several detectors).
HazardKind expected_hazard(BrokenSchedule schedule);

/// Drives the broken schedule under a fresh Recorder and returns the trace.
HostTrace record_broken_schedule(BrokenSchedule schedule);

/// record + analyze in one step.
HostAuditReport run_broken_schedule(BrokenSchedule schedule,
                                    const AnalyzeOptions& options = {});

}  // namespace acgpu::hostcheck
