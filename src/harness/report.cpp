#include "harness/report.h"

#include <cstdio>
#include <fstream>
#include <iostream>

#include "util/arg_parser.h"
#include "util/csv.h"
#include "util/error.h"

namespace acgpu::harness {

void print_figure(const FigureSpec& spec, const std::vector<PointResult>& results,
                  bool from_cache) {
  std::cout << spec.id << ": " << spec.title << " [" << spec.unit << "]"
            << (from_cache ? "  (sweep loaded from cache)" : "  (sweep computed)")
            << "\n\n";
  figure_table(spec, results).print(std::cout);
  const FigureRange range = figure_range(spec, results);
  std::printf("\nmeasured range: %.3g .. %.3g %s\n", range.min, range.max,
              spec.unit.c_str());
  std::cout << "paper reports:  " << spec.paper_expectation << "\n";
}

void export_figure_csv(const FigureSpec& spec, const std::vector<PointResult>& results,
                       const std::string& path) {
  std::ofstream out(path);
  ACGPU_CHECK(static_cast<bool>(out), "cannot write CSV to '" << path << "'");
  CsvWriter csv(out);
  csv.write_row({"text_bytes", "pattern_count", spec.unit});
  for (const auto& r : results) {
    char value[32];
    std::snprintf(value, sizeof value, "%.17g", spec.value(r));
    csv.write_row({std::to_string(r.text_bytes), std::to_string(r.pattern_count), value});
  }
}

int figure_main(const std::string& figure_id, int argc, const char* const* argv) {
  const FigureSpec& spec = figure(figure_id);
  ArgParser args("Reproduces the paper's " + figure_id + " (" + spec.title + ").");
  args.add_bool_flag("quick", "run the reduced grid instead of the paper grid");
  args.add_bool_flag("no-cache", "ignore and do not write the sweep result cache");
  args.add_flag("csv", "also export the figure grid to this CSV path", "");
  if (!args.parse(argc, argv)) return 0;

  if (args.get_bool("no-cache")) {
#if defined(_WIN32)
    _putenv_s("ACGPU_BENCH_CACHE", "0");
#else
    setenv("ACGPU_BENCH_CACHE", "0", 1);
#endif
  }

  const SweepConfig config =
      args.get_bool("quick") ? SweepConfig::quick() : SweepConfig::paper();
  const SweepOutcome outcome = run_sweep_cached(config, &std::cerr);
  print_figure(spec, outcome.results, outcome.from_cache);
  if (!args.get("csv").empty())
    export_figure_csv(spec, outcome.results, args.get("csv"));
  return 0;
}

}  // namespace acgpu::harness
