// The pipeline evaluation sweep: end-to-end (copy + compute) throughput of
// the batched multi-stream pipeline across stream counts and dictionary
// sizes, against the single-buffer baseline the paper's numbers implicitly
// assume (whole input staged, then one monolithic kernel, then the copy
// back — nothing overlapped). This is the experiment behind
// bench/ext_double_buffer and the BENCH_pipeline.json artifact.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "gpusim/config.h"
#include "pipeline/pipeline.h"

namespace acgpu::harness {

struct PipelineSweepConfig {
  std::uint64_t text_bytes = 64ull << 20;
  std::uint64_t batch_bytes = 4ull << 20;
  std::vector<std::uint32_t> stream_counts = {1, 2, 4};
  std::vector<std::uint32_t> pattern_counts = {1000, 4000, 8000};
  /// Pattern lengths, uniform in [min, max] (the paper's range is 4-16).
  /// The floor of 6 keeps the dictionary representative of keyword lists
  /// while the match stream — and with it the D2H payload — stays a small
  /// fraction of the input, the regime a production scanner runs in.
  std::uint32_t min_pattern_len = 6;
  std::uint32_t max_pattern_len = 16;
  pipeline::KernelVariant variant = pipeline::KernelVariant::kShared;

  // Shared-approach geometry, as in the paper sweep (harness/experiment.h):
  // 192 threads x 64 B chunks stages 12.3 KB per block.
  std::uint32_t chunk_bytes = 64;
  std::uint32_t threads_per_block = 192;
  /// Timed mode never collects matches; capacity only sizes the device
  /// buffer and the D2H payload estimate.
  std::uint32_t match_capacity = 8;
  std::uint32_t sample_waves = 3;

  std::uint64_t seed = 780;
  std::uint64_t pattern_pool_bytes = 4ull << 20;
  std::uint64_t device_bytes = 1ull << 30;  ///< GTX 285: 1 GB
  gpusim::GpuConfig gpu = gpusim::GpuConfig::gtx285();
};

/// One (pattern count, stream count) grid point, with the single-buffer
/// baseline measured on the same dictionary and input.
struct PipelinePoint {
  std::uint32_t pattern_count = 0;
  std::uint32_t streams = 0;
  pipeline::PipelineStats stats;
  double baseline_seconds = 0;  ///< single-buffer: H2D, kernel, D2H in series

  double throughput_gbps() const { return stats.throughput_gbps(); }
  double baseline_gbps() const {
    return baseline_seconds > 0 ? static_cast<double>(stats.input_bytes) * 8.0 /
                                      baseline_seconds / 1e9
                                : 0.0;
  }
  double speedup_vs_single_buffer() const {
    return stats.makespan_seconds > 0 ? baseline_seconds / stats.makespan_seconds
                                      : 0.0;
  }
};

struct PipelineSweepResult {
  PipelineSweepConfig config;
  std::vector<PipelinePoint> points;

  /// Best speedup over the single-buffer baseline among multi-stream
  /// points — the number the >= 1.5x acceptance criterion gates on.
  double best_multi_stream_speedup() const;
};

/// Runs the sweep in Timed mode. Progress lines go to `progress` when
/// non-null. Throws acgpu::Error if any pipeline run fails.
PipelineSweepResult run_pipeline_sweep(const PipelineSweepConfig& config,
                                       std::ostream* progress);

/// Serialises the sweep (config, per-point stats, and the >= 1.5x criterion
/// verdict) as one JSON object — the BENCH_pipeline.json schema.
void write_pipeline_json(const PipelineSweepResult& result, std::ostream& out);

}  // namespace acgpu::harness
