// The pipeline evaluation sweep: end-to-end (copy + compute) throughput of
// the batched multi-stream pipeline across stream counts and dictionary
// sizes, against the single-buffer baseline the paper's numbers implicitly
// assume (whole input staged, then one monolithic kernel, then the copy
// back — nothing overlapped). This is the experiment behind
// bench/ext_double_buffer and the BENCH_pipeline.json artifact.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "gpusim/config.h"
#include "pipeline/pipeline.h"

namespace acgpu::harness {

struct PipelineSweepConfig {
  std::uint64_t text_bytes = 64ull << 20;
  std::uint64_t batch_bytes = 4ull << 20;
  std::vector<std::uint32_t> stream_counts = {1, 2, 4, 8};
  /// Staging-pool depths per stream count (0 = auto, 2x streams). streams=1
  /// only runs depth 0 — a single lane cannot use a deeper pool.
  std::vector<std::uint32_t> pool_depths = {0, 2, 8};
  std::vector<std::uint32_t> pattern_counts = {1000, 4000, 8000};
  /// Pattern lengths, uniform in [min, max] (the paper's range is 4-16).
  /// The floor of 6 keeps the dictionary representative of keyword lists
  /// while the match stream — and with it the D2H payload — stays a small
  /// fraction of the input, the regime a production scanner runs in.
  std::uint32_t min_pattern_len = 6;
  std::uint32_t max_pattern_len = 16;
  pipeline::KernelVariant variant = pipeline::KernelVariant::kShared;

  // Shared-approach geometry, as in the paper sweep (harness/experiment.h):
  // 192 threads x 64 B chunks stages 12.3 KB per block.
  std::uint32_t chunk_bytes = 64;
  std::uint32_t threads_per_block = 192;
  /// Timed mode never collects matches; capacity only sizes the device
  /// buffer and the D2H payload estimate.
  std::uint32_t match_capacity = 8;
  std::uint32_t sample_waves = 3;

  std::uint64_t seed = 780;
  std::uint64_t pattern_pool_bytes = 4ull << 20;
  std::uint64_t device_bytes = 1ull << 30;  ///< GTX 285: 1 GB
  gpusim::GpuConfig gpu = gpusim::GpuConfig::gtx285();
};

/// One (pattern count, stream count, pool depth) grid point, with the
/// single-buffer baseline measured on the same dictionary and input.
struct PipelinePoint {
  std::uint32_t pattern_count = 0;
  std::uint32_t streams = 0;
  std::uint32_t pool_depth_request = 0;  ///< 0 = auto (2x streams)
  pipeline::PipelineStats stats;
  double baseline_seconds = 0;  ///< single-buffer: H2D, kernel, D2H in series

  double throughput_gbps() const { return stats.throughput_gbps(); }
  double baseline_gbps() const {
    return baseline_seconds > 0 ? static_cast<double>(stats.input_bytes) * 8.0 /
                                      baseline_seconds / 1e9
                                : 0.0;
  }
  double speedup_vs_single_buffer() const {
    return stats.makespan_seconds > 0 ? baseline_seconds / stats.makespan_seconds
                                      : 0.0;
  }
};

struct PipelineSweepResult {
  PipelineSweepConfig config;
  std::vector<PipelinePoint> points;

  /// Best speedup over the single-buffer baseline among multi-stream
  /// points (streams >= 2) — kept for the progress table.
  double best_multi_stream_speedup() const;

  /// Best speedup among deep points (streams >= 4) at the largest pattern
  /// count — the number the >= 2.0x acceptance criterion gates on.
  double best_deep_stream_speedup() const;

  /// True when the streams=4 point beats streams=2 on makespan (auto pool
  /// depth, largest pattern count) — proof the stream clamp no longer
  /// collapses the two configurations into byte-identical runs.
  bool streams4_vs_2_distinct() const;

  /// Deepest in-flight batch count observed across the sweep.
  std::uint64_t max_queue_depth() const;

  /// The full plateau-break criterion: >= 2.0x at streams >= 4, distinct
  /// streams=4 vs streams=2 points, and a queue that actually goes deeper
  /// than the old double buffer (max_queue_depth > 2).
  bool criterion_pass() const;
};

/// Runs the streams x pool-depth sweep in Timed mode. Progress lines go to
/// `progress` when non-null. Throws acgpu::Error if any pipeline run fails.
PipelineSweepResult run_pipeline_sweep(const PipelineSweepConfig& config,
                                       std::ostream* progress);

/// Serialises the sweep (config, per-point stats, and the >= 2.0x criterion
/// verdict) as one JSON object — the BENCH_pipeline.json schema.
void write_pipeline_json(const PipelineSweepResult& result, std::ostream& out);

}  // namespace acgpu::harness
