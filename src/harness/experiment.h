// The paper's evaluation sweep (Section V): input sizes 50 KB–200 MB x
// pattern counts 100–20,000, three implementations (serial, global-only,
// shared) plus the store-scheme ablation. One run of this sweep supplies
// every figure (13–23); the bench binaries share its results through the
// result cache.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "gpusim/config.h"

namespace acgpu::harness {

struct SweepConfig {
  std::vector<std::uint64_t> sizes;           ///< input bytes
  std::vector<std::uint32_t> pattern_counts;
  std::uint32_t min_pattern_len = 4;
  std::uint32_t max_pattern_len = 16;
  std::uint64_t seed = 42;

  // Shared-approach launch geometry (Section IV: 8-12 KB of staged input
  // per block): 192 threads x 64 B chunks stages 12.3 KB.
  std::uint32_t chunk_bytes = 64;
  std::uint32_t threads_per_block = 192;
  // Global-only geometry: the paper sizes chunks so the whole input yields
  // enough threads to load the GPU; chunks are >= 128 B, so each lane's
  // byte reads land in their own 128 B segment — the uncoalesced pattern of
  // Fig 7. The actual chunk is clamp(size / global_target_threads,
  // 128, global_max_chunk_bytes), rounded to a word.
  std::uint32_t global_max_chunk_bytes = 1024;
  std::uint32_t global_target_threads = 61440;  ///< ~2 full occupancy waves
  std::uint32_t global_threads_per_block = 256;
  std::uint32_t match_capacity = 8;
  std::uint32_t sample_waves = 3;
  /// The global-only kernel's blocks are large (big chunks x 256 threads),
  /// so one occupancy wave already simulates tens of MB; keep its sampling
  /// cheaper than the shared kernel's.
  std::uint32_t global_sample_waves = 1;
  /// Patterns are cut from a corpus region disjoint from the scanned input,
  /// mirroring the paper's 50 GB pool (input and dictionary both from the
  /// pool, but not from the same bytes).
  std::uint64_t pattern_pool_bytes = 4 * 1024 * 1024;

  std::uint64_t device_bytes = 1ull << 30;   ///< GTX 285: 1 GB
  std::uint64_t cpu_sample_bytes = 2 * 1024 * 1024;  ///< serial-model sample

  gpusim::GpuConfig gpu = gpusim::GpuConfig::gtx285();

  /// The paper's grid (representative points inside its stated ranges).
  static SweepConfig paper();
  /// A small grid for smoke tests and quick runs.
  static SweepConfig quick();

  /// Stable hash of every field that affects results; keys the result cache.
  std::string cache_key() const;
};

/// Per-approach simulation statistics retained for the figures.
struct ApproachStats {
  double seconds = 0;
  double sim_makespan_cycles = 0;
  std::uint64_t simulated_blocks = 0;
  double tex_hit_rate = 0;
  std::uint64_t tex_l2_misses = 0;
  double txn_per_request = 0;
  std::uint64_t issue_cycles = 0;
  std::uint64_t stall_global = 0;
  std::uint64_t stall_tex = 0;
  std::uint64_t stall_shared = 0;
  std::uint64_t stall_barrier = 0;
  std::uint64_t shared_conflict_cycles = 0;
  std::uint64_t warp_instructions = 0;
};

/// One (input size, pattern count) grid point.
struct PointResult {
  std::uint64_t text_bytes = 0;
  std::uint32_t pattern_count = 0;
  std::uint32_t dfa_states = 0;
  double stt_mbytes = 0;

  // Serial baseline: modeled Core2 (drives the figures) + host wall-clock
  // on this machine (reported for transparency).
  double serial_seconds = 0;
  double serial_cycles_per_byte = 0;
  double serial_l1_miss = 0;
  double serial_l2_miss = 0;
  double host_serial_seconds = 0;
  std::uint64_t match_count = 0;

  ApproachStats global;        ///< global-memory-only approach
  ApproachStats shared;        ///< shared approach, diagonal store scheme
  ApproachStats shared_naive;  ///< shared approach, coalesced-only naive store

  double gbps(double seconds) const {
    return static_cast<double>(text_bytes) * 8.0 / seconds / 1e9;
  }
  double serial_gbps() const { return gbps(serial_seconds); }
  double global_gbps() const { return gbps(global.seconds); }
  double shared_gbps() const { return gbps(shared.seconds); }
  double speedup_global() const { return serial_seconds / global.seconds; }
  double speedup_shared() const { return serial_seconds / shared.seconds; }
  double speedup_shared_vs_global() const { return global.seconds / shared.seconds; }
  double speedup_store_scheme() const { return shared_naive.seconds / shared.seconds; }
};

/// Runs the full sweep. Progress lines go to `progress` when non-null.
std::vector<PointResult> run_sweep(const SweepConfig& config, std::ostream* progress);

}  // namespace acgpu::harness
