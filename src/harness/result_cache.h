// File-backed cache for sweep results, so the eleven figure binaries run the
// expensive sweep once per build (`for b in build/bench/*; do $b; done`).
//
// Keyed by SweepConfig::cache_key() (config fields + schema version).
// Set ACGPU_BENCH_CACHE=0 to disable, ACGPU_CACHE_DIR to relocate the files
// (default: the current working directory).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace acgpu::harness {

std::string cache_path(const SweepConfig& config);

std::optional<std::vector<PointResult>> load_cached(const SweepConfig& config);
void store_cached(const SweepConfig& config, const std::vector<PointResult>& results);

struct SweepOutcome {
  std::vector<PointResult> results;
  bool from_cache = false;
};

/// Loads from cache or runs the sweep (and stores it).
SweepOutcome run_sweep_cached(const SweepConfig& config, std::ostream* progress);

}  // namespace acgpu::harness
