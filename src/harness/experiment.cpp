#include "harness/experiment.h"

#include <sstream>

#include "ac/serial_matcher.h"
#include "cpumodel/serial_timing.h"
#include "kernels/ac_kernel.h"
#include "util/byte_units.h"
#include "util/stopwatch.h"
#include "workload/markov_corpus.h"
#include "workload/pattern_extract.h"

namespace acgpu::harness {

SweepConfig SweepConfig::paper() {
  SweepConfig c;
  c.sizes = {50 * kKiB, 1 * kMiB, 8 * kMiB, 64 * kMiB, 200 * kMiB};
  c.pattern_counts = {100, 1000, 5000, 10000, 20000};
  return c;
}

SweepConfig SweepConfig::quick() {
  SweepConfig c;
  c.sizes = {50 * kKiB, 512 * kKiB, 2 * kMiB};
  c.pattern_counts = {100, 1000, 4000};
  c.cpu_sample_bytes = 256 * kKiB;
  c.device_bytes = 256 * kMiB;
  c.sample_waves = 2;
  return c;
}

std::string SweepConfig::cache_key() const {
  // FNV-1a over a textual dump of every result-affecting field, plus a
  // schema version bumped whenever PointResult's layout or the timing model
  // changes meaningfully.
  std::ostringstream os;
  os << "schema=7;";
  for (auto s : sizes) os << s << ',';
  os << ';';
  for (auto p : pattern_counts) os << p << ',';
  os << ';' << min_pattern_len << ';' << max_pattern_len << ';' << seed << ';'
     << chunk_bytes << ';' << threads_per_block << ';' << global_max_chunk_bytes
     << ';' << global_target_threads << ';'
     << global_threads_per_block << ';' << pattern_pool_bytes << ';'
     << match_capacity << ';'
     << sample_waves << ';' << global_sample_waves << ';' << device_bytes << ';'
     << cpu_sample_bytes << ';'
     << gpu.num_sms << ';' << gpu.clock_ghz << ';' << gpu.global_latency_cycles
     << ';' << gpu.cycles_per_segment << ';' << gpu.tex_cache_bytes << ';'
     << gpu.tex_l2_bytes << ';' << gpu.tex_l2_latency_cycles << ';'
     << gpu.tex_hit_cycles << ';' << gpu.tex_miss_latency_cycles << ';'
     << gpu.shared_service_cycles << ';' << gpu.cycles_per_warp_instr;
  const std::string dump = os.str();
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : dump) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  std::ostringstream hex;
  hex << std::hex << h;
  return hex.str();
}

namespace {

ApproachStats to_stats(const kernels::AcLaunchOutcome& outcome) {
  ApproachStats s;
  s.seconds = outcome.sim.seconds;
  s.sim_makespan_cycles = outcome.sim.sim_makespan_cycles;
  s.simulated_blocks = outcome.sim.simulated_blocks;
  const gpusim::Metrics& m = outcome.sim.metrics;
  s.tex_hit_rate = m.tex_hit_rate();
  s.tex_l2_misses = m.tex_l2_misses;
  s.txn_per_request = m.avg_transactions_per_request();
  s.issue_cycles = m.issue_cycles;
  s.stall_global = m.stall_global_cycles;
  s.stall_tex = m.stall_tex_cycles;
  s.stall_shared = m.stall_shared_cycles;
  s.stall_barrier = m.stall_barrier_cycles;
  s.shared_conflict_cycles = m.shared_conflict_cycles;
  s.warp_instructions = m.warp_instructions;
  return s;
}

}  // namespace

std::vector<PointResult> run_sweep(const SweepConfig& config, std::ostream* progress) {
  ACGPU_CHECK(!config.sizes.empty() && !config.pattern_counts.empty(),
              "run_sweep: empty grid");
  std::uint64_t max_size = 0;
  for (auto s : config.sizes) max_size = std::max(max_size, s);

  auto log = [&](const std::string& line) {
    if (progress) *progress << line << '\n' << std::flush;
  };

  // The corpus plays the paper's 50 GB magazine pool: the scanned input is
  // the prefix, the dictionary is cut from a disjoint tail region (patterns
  // still occur in the input — natural language repeats itself — but the
  // automaton is not walking its own source text).
  log("generating " + format_bytes(max_size + config.pattern_pool_bytes) +
      " corpus...");
  const std::string corpus = workload::make_corpus(
      static_cast<std::size_t>(max_size + config.pattern_pool_bytes), config.seed);
  const std::string_view pattern_pool(corpus.data() + max_size,
                                      static_cast<std::size_t>(config.pattern_pool_bytes));

  gpusim::DeviceMemory mem(static_cast<std::size_t>(config.device_bytes));
  const gpusim::DevAddr text_addr =
      kernels::upload_text(mem, std::string_view(corpus.data(), max_size));
  const std::size_t after_text = mem.mark();

  std::vector<PointResult> results;
  for (const std::uint32_t pattern_count : config.pattern_counts) {
    workload::ExtractConfig ec;
    ec.count = pattern_count;
    ec.min_length = config.min_pattern_len;
    ec.max_length = config.max_pattern_len;
    ec.seed = derive_seed(config.seed, pattern_count);
    ec.word_aligned = true;  // dictionaries are words/phrases, not mid-word cuts
    const ac::PatternSet patterns = workload::extract_patterns(pattern_pool, ec);

    log("building DFA for " + std::to_string(pattern_count) + " patterns...");
    // Pitch padded to 8 int32 elements = one 32 B texture line per row start.
    const ac::Dfa dfa = ac::build_dfa(patterns, /*pad_pitch_to=*/8);

    mem.release(after_text);
    const kernels::DeviceDfa ddfa(mem, dfa);
    const std::size_t after_dfa = mem.mark();

    for (const std::uint64_t size : config.sizes) {
      const std::string_view text(corpus.data(), static_cast<std::size_t>(size));

      PointResult r;
      r.text_bytes = size;
      r.pattern_count = pattern_count;
      r.dfa_states = dfa.state_count();
      r.stt_mbytes = static_cast<double>(dfa.stt_bytes()) / 1e6;

      // Serial baseline: real scan for the match count + host wall time...
      Stopwatch host;
      r.match_count = ac::count_matches(dfa, text);
      r.host_serial_seconds = host.seconds();
      // ...and the Core2 model for the figures.
      const std::string_view sample =
          text.substr(0, static_cast<std::size_t>(
                             std::min<std::uint64_t>(size, config.cpu_sample_bytes)));
      const cpumodel::SerialEstimate est = cpumodel::estimate_serial(dfa, sample, size);
      r.serial_seconds = est.seconds;
      r.serial_cycles_per_byte = est.cycles_per_byte;
      r.serial_l1_miss = est.l1_miss_rate;
      r.serial_l2_miss = est.l2_miss_rate;

      auto run = [&](kernels::Approach approach, kernels::StoreScheme scheme) {
        kernels::AcLaunchSpec spec;
        spec.approach = approach;
        spec.scheme = scheme;
        const bool global = approach == kernels::Approach::kGlobalOnly;
        if (global) {
          std::uint64_t chunk = size / config.global_target_threads / 4 * 4;
          chunk = std::clamp<std::uint64_t>(chunk, 128, config.global_max_chunk_bytes);
          spec.chunk_bytes = static_cast<std::uint32_t>(chunk);
          spec.threads_per_block = config.global_threads_per_block;
        } else {
          spec.chunk_bytes = config.chunk_bytes;
          spec.threads_per_block = config.threads_per_block;
        }
        spec.match_capacity = config.match_capacity;
        spec.sim.mode = gpusim::SimMode::Timed;
        spec.sim.sample_waves =
            global ? config.global_sample_waves : config.sample_waves;
        const std::size_t mark = mem.mark();
        const kernels::AcLaunchOutcome out =
            kernels::run_ac_kernel(config.gpu, mem, ddfa, text_addr, size, spec);
        mem.release(mark);
        return to_stats(out);
      };

      r.global = run(kernels::Approach::kGlobalOnly, kernels::StoreScheme::kDiagonal);
      r.shared = run(kernels::Approach::kShared, kernels::StoreScheme::kDiagonal);
      r.shared_naive =
          run(kernels::Approach::kShared, kernels::StoreScheme::kCoalescedNaive);

      std::ostringstream line;
      line << "  " << format_bytes(size) << " x " << pattern_count
           << " patterns: serial " << format_seconds(r.serial_seconds) << ", global "
           << format_seconds(r.global.seconds) << ", shared "
           << format_seconds(r.shared.seconds) << " ("
           << format_gbps(r.shared_gbps()) << " Gbps)";
      log(line.str());

      results.push_back(r);
    }
    mem.release(after_dfa);
  }
  return results;
}

}  // namespace acgpu::harness
