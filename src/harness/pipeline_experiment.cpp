#include "harness/pipeline_experiment.h"

#include <algorithm>
#include <ostream>
#include <string>

#include "ac/dfa.h"
#include "kernels/ac_kernel.h"
#include "util/byte_units.h"
#include "util/error.h"
#include "workload/markov_corpus.h"
#include "workload/pattern_extract.h"

namespace acgpu::harness {
namespace {

pipeline::PipelineStats run_once(const PipelineSweepConfig& config,
                                 gpusim::DeviceMemory& mem,
                                 const kernels::DeviceDfa& ddfa,
                                 std::string_view input,
                                 const pipeline::PipelineOptions& options) {
  const std::size_t mark = mem.mark();
  pipeline::MatchPipeline pipe(config.gpu, mem, ddfa, options);
  auto run = pipe.run(input);
  ACGPU_CHECK(run.is_ok(), "pipeline sweep: " << run.status().to_string());
  pipeline::PipelineStats stats = run.value().stats;
  mem.release(mark);
  return stats;
}

}  // namespace

double PipelineSweepResult::best_multi_stream_speedup() const {
  double best = 0;
  for (const PipelinePoint& p : points)
    if (p.streams >= 2) best = std::max(best, p.speedup_vs_single_buffer());
  return best;
}

namespace {

std::uint32_t largest_pattern_count(const std::vector<PipelinePoint>& points) {
  std::uint32_t largest = 0;
  for (const PipelinePoint& p : points)
    largest = std::max(largest, p.pattern_count);
  return largest;
}

}  // namespace

double PipelineSweepResult::best_deep_stream_speedup() const {
  const std::uint32_t largest = largest_pattern_count(points);
  double best = 0;
  for (const PipelinePoint& p : points)
    if (p.streams >= 4 && p.pattern_count == largest)
      best = std::max(best, p.speedup_vs_single_buffer());
  return best;
}

bool PipelineSweepResult::streams4_vs_2_distinct() const {
  // Compare the auto-depth points at the largest dictionary: before the
  // staging pool, the silent clamp made these two runs byte-identical.
  const std::uint32_t largest = largest_pattern_count(points);
  const PipelinePoint* two = nullptr;
  const PipelinePoint* four = nullptr;
  for (const PipelinePoint& p : points) {
    if (p.pattern_count != largest || p.pool_depth_request != 0) continue;
    if (p.streams == 2) two = &p;
    if (p.streams == 4) four = &p;
  }
  return two && four &&
         four->stats.makespan_seconds < two->stats.makespan_seconds;
}

std::uint64_t PipelineSweepResult::max_queue_depth() const {
  std::uint64_t deepest = 0;
  for (const PipelinePoint& p : points)
    deepest = std::max<std::uint64_t>(deepest, p.stats.max_queue_depth);
  return deepest;
}

bool PipelineSweepResult::criterion_pass() const {
  return best_deep_stream_speedup() >= 2.0 && streams4_vs_2_distinct() &&
         max_queue_depth() > 2;
}

PipelineSweepResult run_pipeline_sweep(const PipelineSweepConfig& config,
                                       std::ostream* progress) {
  PipelineSweepResult result;
  result.config = config;

  const std::string corpus = workload::make_corpus(
      config.text_bytes + config.pattern_pool_bytes, config.seed);
  const std::string_view input(corpus.data(), config.text_bytes);
  const std::string_view pool(corpus.data() + config.text_bytes,
                              config.pattern_pool_bytes);

  for (const std::uint32_t count : config.pattern_counts) {
    workload::ExtractConfig ec;
    ec.count = count;
    ec.min_length = config.min_pattern_len;
    ec.max_length = config.max_pattern_len;
    ec.word_aligned = true;
    const ac::Dfa dfa = ac::build_dfa(workload::extract_patterns(pool, ec), 8);
    gpusim::DeviceMemory mem(config.device_bytes);
    const kernels::DeviceDfa ddfa(mem, dfa);

    pipeline::PipelineOptions base;
    base.variant = config.variant;
    base.chunk_bytes = config.chunk_bytes;
    base.threads_per_block = config.threads_per_block;
    base.match_capacity = config.match_capacity;
    base.mode = gpusim::SimMode::Timed;
    base.sample_waves = config.sample_waves;

    // The single-buffer baseline: one batch spanning the whole input on one
    // stream, so the H2D copy, the kernel, and the D2H copy run strictly in
    // series — the regime every figure bench measures the kernels in.
    pipeline::PipelineOptions single = base;
    single.streams = 1;
    single.batch_bytes = config.text_bytes;
    const double baseline_seconds =
        run_once(config, mem, ddfa, input, single).makespan_seconds;
    if (progress)
      *progress << "  " << count << " patterns: single-buffer baseline "
                << format_seconds(baseline_seconds) << "\n";

    for (const std::uint32_t streams : config.stream_counts) {
      // A single lane cannot use a deeper pool: streams=1 runs depth 0 only.
      const std::vector<std::uint32_t> depths =
          streams == 1 ? std::vector<std::uint32_t>{0} : config.pool_depths;
      for (const std::uint32_t depth : depths) {
        pipeline::PipelineOptions opt = base;
        opt.streams = streams;
        opt.pool_depth = depth;
        opt.batch_bytes = config.batch_bytes;

        PipelinePoint point;
        point.pattern_count = count;
        point.streams = streams;
        point.pool_depth_request = depth;
        point.stats = run_once(config, mem, ddfa, input, opt);
        point.baseline_seconds = baseline_seconds;
        if (progress)
          *progress << "  " << count << " patterns x " << streams
                    << " stream(s) depth " << (depth ? std::to_string(depth)
                                                     : std::string("auto"))
                    << ": " << format_gbps(point.throughput_gbps()) << " ("
                    << point.speedup_vs_single_buffer()
                    << "x vs single-buffer)\n";
        result.points.push_back(point);
      }
    }
  }
  return result;
}

void write_pipeline_json(const PipelineSweepResult& result, std::ostream& out) {
  const PipelineSweepConfig& c = result.config;
  out << "{\"bench\":\"pipeline\"";
  out << ",\"text_bytes\":" << c.text_bytes;
  out << ",\"batch_bytes\":" << c.batch_bytes;
  out << ",\"variant\":\"" << pipeline::to_string(c.variant) << "\"";
  out << ",\"chunk_bytes\":" << c.chunk_bytes;
  out << ",\"threads_per_block\":" << c.threads_per_block;
  out << ",\"seed\":" << c.seed;
  out << ",\"pcie_bytes_per_second\":" << c.gpu.pcie_bytes_per_second;
  out << ",\"points\":[";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const PipelinePoint& p = result.points[i];
    const pipeline::PipelineStats& s = p.stats;
    if (i > 0) out << ",";
    out << "{\"pattern_count\":" << p.pattern_count;
    out << ",\"streams\":" << p.streams;
    out << ",\"pool_depth_request\":" << p.pool_depth_request;
    out << ",\"pool_depth\":" << s.pool_depth;
    out << ",\"readback_depth\":" << s.readback_depth;
    out << ",\"effective_streams\":" << s.effective_streams;
    out << ",\"effective_batch_bytes\":" << s.effective_batch_bytes;
    out << ",\"streams_clamped\":" << (s.streams_clamped ? "true" : "false");
    out << ",\"batches\":" << s.batches;
    out << ",\"input_bytes\":" << s.input_bytes;
    out << ",\"staged_bytes\":" << s.staged_bytes;
    out << ",\"output_bytes\":" << s.output_bytes;
    out << ",\"makespan_seconds\":" << s.makespan_seconds;
    out << ",\"throughput_gbps\":" << p.throughput_gbps();
    out << ",\"copy_busy_seconds\":" << s.copy_busy_seconds;
    out << ",\"h2d_busy_seconds\":" << s.h2d_busy_seconds;
    out << ",\"d2h_busy_seconds\":" << s.d2h_busy_seconds;
    out << ",\"compute_busy_seconds\":" << s.compute_busy_seconds;
    out << ",\"overlap_seconds\":" << s.overlap_seconds;
    out << ",\"overlap_ratio\":" << s.overlap_ratio;
    out << ",\"blocked_seconds\":" << s.blocked_seconds;
    out << ",\"readback_wait_seconds\":" << s.readback_wait_seconds;
    out << ",\"max_queue_depth\":" << s.max_queue_depth;
    out << ",\"latency_p50_seconds\":" << s.latency_p50_seconds;
    out << ",\"latency_p90_seconds\":" << s.latency_p90_seconds;
    out << ",\"latency_p99_seconds\":" << s.latency_p99_seconds;
    out << ",\"baseline_seconds\":" << p.baseline_seconds;
    out << ",\"baseline_gbps\":" << p.baseline_gbps();
    out << ",\"speedup_vs_single_buffer\":" << p.speedup_vs_single_buffer();
    out << "}";
  }
  out << "]";
  // The plateau-break criterion: 2.0x at streams >= 4 on the largest
  // dictionary, with streams=4 strictly faster than streams=2 and a queue
  // that actually runs deeper than the old double buffer.
  out << ",\"criterion\":{\"min_streams\":4,\"required_speedup\":2.0"
      << ",\"achieved_speedup\":" << result.best_deep_stream_speedup()
      << ",\"streams4_vs_2_distinct\":"
      << (result.streams4_vs_2_distinct() ? "true" : "false")
      << ",\"max_queue_depth\":" << result.max_queue_depth()
      << ",\"pass\":" << (result.criterion_pass() ? "true" : "false") << "}";
  out << "}\n";
}

}  // namespace acgpu::harness
