#include "harness/figures.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/byte_units.h"
#include "util/error.h"

namespace acgpu::harness {

const std::vector<FigureSpec>& paper_figures() {
  static const std::vector<FigureSpec> specs = {
      {"fig13", "Run times, serial approach", "seconds",
       "grows with size and with pattern count",
       [](const PointResult& r) { return r.serial_seconds; }},
      {"fig14", "Run times, global memory only approach", "seconds",
       "grows with size; strong pattern-count sensitivity",
       [](const PointResult& r) { return r.global.seconds; }},
      {"fig15", "Run times, shared memory approach", "seconds",
       "grows with size; weak pattern-count sensitivity at large sizes",
       [](const PointResult& r) { return r.shared.seconds; }},
      {"fig16", "Throughput, serial approach", "Gbps",
       "well under 2 Gbps; decreases with pattern count",
       [](const PointResult& r) { return r.serial_gbps(); }},
      {"fig17", "Throughput, global memory only approach", "Gbps",
       "single-digit Gbps; decreases with pattern count",
       [](const PointResult& r) { return r.global_gbps(); }},
      {"fig18", "Throughput, shared memory approach", "Gbps",
       "up to 127 Gbps at 200MB/100 patterns; mild pattern-count decrease",
       [](const PointResult& r) { return r.shared_gbps(); }},
      {"fig20", "Speedup, global-only vs serial", "speedup",
       "3.3 - 13.2x",
       [](const PointResult& r) { return r.speedup_global(); }},
      {"fig21", "Speedup, shared vs serial", "speedup",
       "36.1 - 222.0x (max at 100MB / 20,000 patterns)",
       [](const PointResult& r) { return r.speedup_shared(); }},
      {"fig22", "Speedup, shared vs global-only", "speedup",
       "7.3 - 19.3x",
       [](const PointResult& r) { return r.speedup_shared_vs_global(); }},
      {"fig23", "Speedup of the bank-conflict-avoiding store scheme", "speedup",
       "1.5 - 5.3x vs coalescing-only; grows with pattern count",
       [](const PointResult& r) { return r.speedup_store_scheme(); }},
  };
  return specs;
}

const FigureSpec& figure(const std::string& id) {
  for (const auto& spec : paper_figures())
    if (spec.id == id) return spec;
  ACGPU_CHECK(false, "unknown figure id '" << id << "'");
  return paper_figures().front();  // unreachable
}

namespace {

std::string format_value(const FigureSpec& spec, double v) {
  char buf[32];
  if (spec.unit == "seconds") return format_seconds(v);
  if (spec.unit == "Gbps") return format_gbps(v);
  std::snprintf(buf, sizeof buf, "%.1fx", v);
  return buf;
}

}  // namespace

Table figure_table(const FigureSpec& spec, const std::vector<PointResult>& results) {
  std::set<std::uint64_t> sizes;
  std::set<std::uint32_t> counts;
  for (const auto& r : results) {
    sizes.insert(r.text_bytes);
    counts.insert(r.pattern_count);
  }

  Table table;
  std::vector<std::string> head = {"input \\ patterns"};
  for (auto c : counts) head.push_back(std::to_string(c));
  table.set_header(std::move(head));

  for (auto size : sizes) {
    std::vector<std::string> row = {format_bytes(size)};
    for (auto c : counts) {
      const auto it = std::find_if(results.begin(), results.end(), [&](const auto& r) {
        return r.text_bytes == size && r.pattern_count == c;
      });
      row.push_back(it == results.end() ? "-" : format_value(spec, spec.value(*it)));
    }
    table.add_row(std::move(row));
  }
  return table;
}

FigureRange figure_range(const FigureSpec& spec,
                         const std::vector<PointResult>& results) {
  ACGPU_CHECK(!results.empty(), "figure_range: no results");
  FigureRange range{HUGE_VAL, -HUGE_VAL};
  for (const auto& r : results) {
    const double v = spec.value(r);
    range.min = std::min(range.min, v);
    range.max = std::max(range.max, v);
  }
  return range;
}

}  // namespace acgpu::harness
