// Figure definitions: maps every evaluation figure of the paper (13–23) to
// a value extracted from the sweep results, in the same rows/series layout
// the paper plots (rows = input sizes, series = pattern counts).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "util/table.h"

namespace acgpu::harness {

struct FigureSpec {
  std::string id;        ///< "fig13"
  std::string title;     ///< paper caption, abbreviated
  std::string unit;      ///< "seconds", "Gbps", "speedup"
  std::string paper_expectation;  ///< what the paper reports, for EXPERIMENTS.md
  std::function<double(const PointResult&)> value;
};

/// All figure definitions, fig13..fig23 except fig19 (which is a metrics
/// breakdown rather than a single value grid — see fig19 bench).
const std::vector<FigureSpec>& paper_figures();

/// Look up one figure by id; throws on unknown id.
const FigureSpec& figure(const std::string& id);

/// Grid table for a figure: one row per input size, one column per pattern
/// count — the paper's bar-chart groups as text.
Table figure_table(const FigureSpec& spec, const std::vector<PointResult>& results);

/// Min/max of the figure's value over the grid (the paper quotes ranges,
/// e.g. "the speedup ranges 3.3 – 13.2").
struct FigureRange {
  double min = 0;
  double max = 0;
};
FigureRange figure_range(const FigureSpec& spec, const std::vector<PointResult>& results);

}  // namespace acgpu::harness
