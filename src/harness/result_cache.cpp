#include "harness/result_cache.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/error.h"

namespace acgpu::harness {

namespace {

/// Column schema. Approach stats are flattened with a prefix; keep in sync
/// with write_row/read_row below (the header check catches drift).
std::vector<std::string> header() {
  std::vector<std::string> h = {
      "text_bytes",       "pattern_count", "dfa_states",
      "stt_mbytes",       "serial_seconds", "serial_cycles_per_byte",
      "serial_l1_miss",   "serial_l2_miss", "host_serial_seconds",
      "match_count",
  };
  for (const char* prefix : {"global", "shared", "naive"}) {
    for (const char* field :
         {"seconds", "sim_makespan_cycles", "simulated_blocks", "tex_hit_rate",
          "tex_l2_misses",
          "txn_per_request", "issue_cycles", "stall_global", "stall_tex",
          "stall_shared", "stall_barrier", "shared_conflict_cycles",
          "warp_instructions"}) {
      h.push_back(std::string(prefix) + "_" + field);
    }
  }
  return h;
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void append_stats(std::vector<std::string>& row, const ApproachStats& s) {
  row.push_back(fmt(s.seconds));
  row.push_back(fmt(s.sim_makespan_cycles));
  row.push_back(std::to_string(s.simulated_blocks));
  row.push_back(fmt(s.tex_hit_rate));
  row.push_back(std::to_string(s.tex_l2_misses));
  row.push_back(fmt(s.txn_per_request));
  row.push_back(std::to_string(s.issue_cycles));
  row.push_back(std::to_string(s.stall_global));
  row.push_back(std::to_string(s.stall_tex));
  row.push_back(std::to_string(s.stall_shared));
  row.push_back(std::to_string(s.stall_barrier));
  row.push_back(std::to_string(s.shared_conflict_cycles));
  row.push_back(std::to_string(s.warp_instructions));
}

std::size_t parse_stats(const std::vector<std::string>& row, std::size_t i,
                        ApproachStats& s) {
  s.seconds = std::stod(row[i++]);
  s.sim_makespan_cycles = std::stod(row[i++]);
  s.simulated_blocks = std::stoull(row[i++]);
  s.tex_hit_rate = std::stod(row[i++]);
  s.tex_l2_misses = std::stoull(row[i++]);
  s.txn_per_request = std::stod(row[i++]);
  s.issue_cycles = std::stoull(row[i++]);
  s.stall_global = std::stoull(row[i++]);
  s.stall_tex = std::stoull(row[i++]);
  s.stall_shared = std::stoull(row[i++]);
  s.stall_barrier = std::stoull(row[i++]);
  s.shared_conflict_cycles = std::stoull(row[i++]);
  s.warp_instructions = std::stoull(row[i++]);
  return i;
}

bool cache_enabled() {
  const char* env = std::getenv("ACGPU_BENCH_CACHE");
  return env == nullptr || std::string(env) != "0";
}

}  // namespace

std::string cache_path(const SweepConfig& config) {
  const char* dir = std::getenv("ACGPU_CACHE_DIR");
  std::string base = dir ? dir : ".";
  return base + "/acgpu_sweep_" + config.cache_key() + ".csv";
}

void store_cached(const SweepConfig& config, const std::vector<PointResult>& results) {
  std::ofstream out(cache_path(config));
  if (!out) return;  // unwritable cache dir: silently skip caching
  CsvWriter csv(out);
  csv.write_row(header());
  for (const PointResult& r : results) {
    std::vector<std::string> row = {
        std::to_string(r.text_bytes),
        std::to_string(r.pattern_count),
        std::to_string(r.dfa_states),
        fmt(r.stt_mbytes),
        fmt(r.serial_seconds),
        fmt(r.serial_cycles_per_byte),
        fmt(r.serial_l1_miss),
        fmt(r.serial_l2_miss),
        fmt(r.host_serial_seconds),
        std::to_string(r.match_count),
    };
    append_stats(row, r.global);
    append_stats(row, r.shared);
    append_stats(row, r.shared_naive);
    csv.write_row(row);
  }
}

std::optional<std::vector<PointResult>> load_cached(const SweepConfig& config) {
  std::ifstream in(cache_path(config));
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  if (parse_csv_line(line) != header()) return std::nullopt;  // schema drift

  std::vector<PointResult> results;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto row = parse_csv_line(line);
    if (row.size() != header().size()) return std::nullopt;
    PointResult r;
    std::size_t i = 0;
    r.text_bytes = std::stoull(row[i++]);
    r.pattern_count = static_cast<std::uint32_t>(std::stoul(row[i++]));
    r.dfa_states = static_cast<std::uint32_t>(std::stoul(row[i++]));
    r.stt_mbytes = std::stod(row[i++]);
    r.serial_seconds = std::stod(row[i++]);
    r.serial_cycles_per_byte = std::stod(row[i++]);
    r.serial_l1_miss = std::stod(row[i++]);
    r.serial_l2_miss = std::stod(row[i++]);
    r.host_serial_seconds = std::stod(row[i++]);
    r.match_count = std::stoull(row[i++]);
    i = parse_stats(row, i, r.global);
    i = parse_stats(row, i, r.shared);
    i = parse_stats(row, i, r.shared_naive);
    results.push_back(r);
  }
  if (results.empty()) return std::nullopt;
  return results;
}

SweepOutcome run_sweep_cached(const SweepConfig& config, std::ostream* progress) {
  if (cache_enabled()) {
    if (auto cached = load_cached(config)) {
      return SweepOutcome{std::move(*cached), /*from_cache=*/true};
    }
  }
  SweepOutcome outcome;
  outcome.results = run_sweep(config, progress);
  if (cache_enabled()) store_cached(config, outcome.results);
  return outcome;
}

}  // namespace acgpu::harness
