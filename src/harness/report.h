// Shared main() body for the figure bench binaries: resolve the sweep
// (cached or fresh), print the figure's grid and range, optionally export
// CSV for external plotting.
#pragma once

#include <string>

#include "harness/figures.h"
#include "harness/result_cache.h"

namespace acgpu::harness {

/// Entry point used by every bench/figNN binary. Flags (all optional):
///   --quick        use the small grid instead of the paper grid
///   --csv=<path>   also export the figure grid as CSV
///   --no-cache     ignore and do not write the result cache
/// Returns a process exit code.
int figure_main(const std::string& figure_id, int argc, const char* const* argv);

/// Prints one figure (table + measured range + the paper's expectation).
void print_figure(const FigureSpec& spec, const std::vector<PointResult>& results,
                  bool from_cache);

/// Writes the figure grid as CSV (size, pattern_count, value).
void export_figure_csv(const FigureSpec& spec, const std::vector<PointResult>& results,
                       const std::string& path);

}  // namespace acgpu::harness
