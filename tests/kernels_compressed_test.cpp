#include "kernels/compressed_kernel.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ac/serial_matcher.h"
#include "workload/markov_corpus.h"
#include "workload/pattern_extract.h"

namespace acgpu::kernels {
namespace {

struct Fixture {
  gpusim::GpuConfig cfg;
  gpusim::DeviceMemory mem;
  ac::PatternSet patterns;
  ac::Dfa dfa;
  ac::CompressedStt cstt;
  DeviceCompressedDfa dcdfa;
  gpusim::DevAddr text_addr;
  std::string text;

  Fixture(std::vector<std::string> pats, std::string text_in)
      : cfg(gpusim::GpuConfig::gtx285()),
        mem(128 << 20),
        patterns(std::move(pats)),
        dfa(ac::build_dfa(patterns, 8)),
        cstt(dfa),
        dcdfa(mem, cstt, dfa),
        text_addr(0),
        text(std::move(text_in)) {
    cfg.num_sms = 4;
    text_addr = upload_text(mem, text);
  }

  AcLaunchOutcome run(std::uint32_t chunk = 32, std::uint32_t tpb = 64,
                      std::uint32_t capacity = 64) {
    CompressedLaunchSpec spec;
    spec.chunk_bytes = chunk;
    spec.threads_per_block = tpb;
    spec.match_capacity = capacity;
    spec.sim.mode = gpusim::SimMode::Functional;
    const std::size_t mark = mem.mark();
    auto out = run_compressed_kernel(cfg, mem, dcdfa, text_addr, text.size(), spec);
    mem.release(mark);
    return out;
  }

  std::vector<ac::Match> expected() const {
    auto m = ac::find_all(dfa, text);
    std::sort(m.begin(), m.end());
    return m;
  }
};

TEST(CompressedKernel, MatchesSerialOnPaperExample) {
  Fixture f({"he", "she", "his", "hers"}, "ushers and sheep hide his herbs ushers");
  const auto out = f.run();
  EXPECT_FALSE(out.matches.overflowed);
  EXPECT_EQ(out.matches.matches, f.expected());
}

TEST(CompressedKernel, EnglishCorpusExtractedPatterns) {
  const std::string corpus = workload::make_corpus(20000, 91);
  workload::ExtractConfig ec;
  ec.count = 60;
  const ac::PatternSet patterns = workload::extract_patterns(corpus, ec);
  Fixture f({patterns.begin(), patterns.end()}, corpus);
  ASSERT_FALSE(f.expected().empty());
  EXPECT_EQ(f.run(64, 128, 128).matches.matches, f.expected());
}

TEST(CompressedKernel, BoundaryStraddlingMatches) {
  std::string text(6000, 'y');
  for (std::size_t pos : {30ul, 63ul, 2040ul, 4095ul})
    text.replace(pos, 8, "boundary");
  Fixture f({"boundary", "ound"}, text);
  EXPECT_EQ(f.run().matches.matches, f.expected());
}

TEST(CompressedKernel, DenseOverlapping) {
  Fixture f({"aa", "aba", "a"}, std::string(800, 'a'));
  const auto out = f.run(32, 64, 96);
  EXPECT_FALSE(out.matches.overflowed);
  EXPECT_EQ(out.matches.matches, f.expected());
}

TEST(CompressedKernel, UsesBothTexturesAndSmallerFootprint) {
  const std::string corpus = workload::make_corpus(30000, 92);
  workload::ExtractConfig ec;
  ec.count = 500;
  ec.word_aligned = true;
  const ac::PatternSet patterns = workload::extract_patterns(corpus, ec);
  Fixture f({patterns.begin(), patterns.end()}, corpus);
  const auto out = f.run(64, 128, 64);
  EXPECT_EQ(out.matches.matches, f.expected());
  // The device table is much smaller than the dense STT.
  EXPECT_LT(f.dcdfa.device_bytes(), f.dfa.stt_bytes() / 4);
  EXPECT_GT(out.sim.metrics.tex_requests, 0u);
}

TEST(CompressedKernel, ValidatesSpec) {
  Fixture f({"abcdefgh"}, "text with abcdefgh inside");
  CompressedLaunchSpec spec;
  spec.chunk_bytes = 30;
  EXPECT_THROW(
      run_compressed_kernel(f.cfg, f.mem, f.dcdfa, f.text_addr, f.text.size(), spec),
      Error);
  spec.chunk_bytes = 4;  // overlap 7 >= chunk
  EXPECT_THROW(
      run_compressed_kernel(f.cfg, f.mem, f.dcdfa, f.text_addr, f.text.size(), spec),
      Error);
}

}  // namespace
}  // namespace acgpu::kernels
