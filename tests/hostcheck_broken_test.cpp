// Negative controls as unit tests: every deliberately-broken host schedule
// (hostcheck/broken.h) must be flagged with exactly its expected hazard
// kind, and the flagship schedules must finger the RIGHT ops — a detector
// that fires on the wrong op would pass a coarser count-only assertion while
// sending whoever debugs the report to the wrong line of the pipeline.
#include "hostcheck/broken.h"

#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/json.h"
#include "util/error.h"

namespace acgpu::hostcheck {
namespace {

TEST(HostcheckBroken, EveryScheduleIsCaughtWithItsExpectedKind) {
  for (const BrokenSchedule schedule : all_broken_schedules()) {
    const HostAuditReport report = run_broken_schedule(schedule);
    EXPECT_GT(report.count(expected_hazard(schedule)), 0u)
        << to_string(schedule) << " was not flagged as "
        << to_string(expected_hazard(schedule));
    EXPECT_FALSE(report.clean()) << to_string(schedule);
  }
}

TEST(HostcheckBroken, NamesRoundTrip) {
  for (const BrokenSchedule schedule : all_broken_schedules())
    EXPECT_EQ(broken_schedule_from_name(to_string(schedule)), schedule);
  EXPECT_THROW(broken_schedule_from_name("no-such-schedule"), Error);
}

/// Analyses `schedule` and returns the parsed JSON report.
telemetry::JsonValue json_report(BrokenSchedule schedule) {
  std::ostringstream out;
  run_broken_schedule(schedule).write_json(out);
  const auto json = telemetry::parse_json(out.str());
  EXPECT_TRUE(json.has_value()) << out.str();
  return json.value_or(telemetry::JsonValue{});
}

/// First hazard of `kind` in the parsed report, or nullptr.
const telemetry::JsonValue* find_hazard(const telemetry::JsonValue& json,
                                        const std::string& kind) {
  const telemetry::JsonValue* hazards = json.find("hazards");
  if (hazards == nullptr || !hazards->is_array()) return nullptr;
  for (const telemetry::JsonValue& h : hazards->array())
    if (h.find("kind") != nullptr && h.find("kind")->string() == kind) return &h;
  return nullptr;
}

TEST(HostcheckBroken, SkippedEventWaitFingersProducerAndConsumer) {
  const telemetry::JsonValue json =
      json_report(BrokenSchedule::kSkippedEventWait);
  const telemetry::JsonValue* h = find_hazard(json, "upload-reuse");
  ASSERT_NE(h, nullptr);
  // The driver enqueues exactly two ops: the H2D (op 0, stream 0) and the
  // kernel (op 1, stream 1) whose event handshake was dropped.
  EXPECT_EQ(h->find("first")->number_at("op"), 0.0);
  EXPECT_EQ(h->find("second")->number_at("op"), 1.0);
}

TEST(HostcheckBroken, EarlyReleaseFingersTheKernelStillReading) {
  const telemetry::JsonValue json = json_report(BrokenSchedule::kEarlyRelease);
  const telemetry::JsonValue* h = find_hazard(json, "release-while-in-flight");
  ASSERT_NE(h, nullptr);
  // Op 0 is the H2D whose end the buggy release declared as the drain time;
  // op 1 is the kernel whose read outlives it.
  EXPECT_EQ(h->find("first")->number_at("op"), 1.0);
  EXPECT_EQ(h->find("pool")->number(), 0.0);
  EXPECT_EQ(h->find("buffer")->number(), 0.0);
}

TEST(HostcheckBroken, ReleaseBeforeD2HFingersTheDrainCopy) {
  const telemetry::JsonValue json =
      json_report(BrokenSchedule::kReleaseBeforeD2H);
  const telemetry::JsonValue* h = find_hazard(json, "release-while-in-flight");
  ASSERT_NE(h, nullptr);
  // Op 0 is the kernel, op 1 the D2H still draining past the declared time.
  EXPECT_EQ(h->find("first")->number_at("op"), 1.0);
}

TEST(HostcheckBroken, UseAfterReleaseFingersTheStaleH2D) {
  const telemetry::JsonValue json =
      json_report(BrokenSchedule::kUseAfterRelease);
  const telemetry::JsonValue* h = find_hazard(json, "use-after-release");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("first")->number_at("op"), 0.0);  // the only op
  EXPECT_EQ(h->find("buffer")->number(), 0.0);
}

TEST(HostcheckBroken, LockInversionReportsTheFullCycle) {
  const telemetry::JsonValue json = json_report(BrokenSchedule::kLockInversion);
  const telemetry::JsonValue* h = find_hazard(json, "lock-order-cycle");
  ASSERT_NE(h, nullptr);
  const telemetry::JsonValue* cycle = h->find("cycle");
  ASSERT_NE(cycle, nullptr);
  ASSERT_EQ(cycle->array().size(), 3u);
  EXPECT_EQ(cycle->array().front().string(), cycle->array().back().string());
}

}  // namespace
}  // namespace acgpu::hostcheck
