#include "util/arg_parser.h"

#include <gtest/gtest.h>

#include "util/byte_units.h"
#include "util/error.h"

namespace acgpu {
namespace {

ArgParser make_parser() {
  ArgParser p("test tool");
  p.add_flag("size", "input size", "1MB");
  p.add_flag("count", "pattern count", "100");
  p.add_flag("rate", "a ratio", "0.5");
  p.add_bool_flag("verbose", "chatty output");
  return p;
}

TEST(ArgParser, DefaultsApply) {
  ArgParser p = make_parser();
  const char* argv[] = {"tool"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_EQ(p.get("size"), "1MB");
  EXPECT_EQ(p.get_int("count"), 100);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 0.5);
  EXPECT_FALSE(p.get_bool("verbose"));
}

TEST(ArgParser, EqualsSyntax) {
  ArgParser p = make_parser();
  const char* argv[] = {"tool", "--size=2MB", "--count=5"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_EQ(p.get_bytes("size"), 2 * kMiB);
  EXPECT_EQ(p.get_int("count"), 5);
}

TEST(ArgParser, SpaceSyntax) {
  ArgParser p = make_parser();
  const char* argv[] = {"tool", "--size", "4KB"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_EQ(p.get_bytes("size"), 4 * kKiB);
}

TEST(ArgParser, BoolFlagForms) {
  {
    ArgParser p = make_parser();
    const char* argv[] = {"tool", "--verbose"};
    ASSERT_TRUE(p.parse(2, argv));
    EXPECT_TRUE(p.get_bool("verbose"));
  }
  {
    ArgParser p = make_parser();
    const char* argv[] = {"tool", "--verbose=false"};
    ASSERT_TRUE(p.parse(2, argv));
    EXPECT_FALSE(p.get_bool("verbose"));
  }
}

TEST(ArgParser, PositionalArguments) {
  ArgParser p = make_parser();
  const char* argv[] = {"tool", "input.txt", "--count=3", "more.txt"};
  ASSERT_TRUE(p.parse(4, argv));
  EXPECT_EQ(p.positional(), (std::vector<std::string>{"input.txt", "more.txt"}));
}

TEST(ArgParser, UnknownFlagThrows) {
  ArgParser p = make_parser();
  const char* argv[] = {"tool", "--bogus=1"};
  EXPECT_THROW(p.parse(2, argv), Error);
}

TEST(ArgParser, MissingValueThrows) {
  ArgParser p = make_parser();
  const char* argv[] = {"tool", "--size"};
  EXPECT_THROW(p.parse(2, argv), Error);
}

TEST(ArgParser, MalformedNumbersThrow) {
  ArgParser p = make_parser();
  const char* argv[] = {"tool", "--count=12abc"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_THROW(p.get_int("count"), Error);
}

TEST(ArgParser, HelpShortCircuits) {
  ArgParser p = make_parser();
  const char* argv[] = {"tool", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParser, HelpTextMentionsFlags) {
  ArgParser p = make_parser();
  const std::string help = p.help_text();
  EXPECT_NE(help.find("--size"), std::string::npos);
  EXPECT_NE(help.find("--verbose"), std::string::npos);
  EXPECT_NE(help.find("--help"), std::string::npos);
}

TEST(ArgParser, DuplicateRegistrationThrows) {
  ArgParser p("x");
  p.add_flag("a", "h", "1");
  EXPECT_THROW(p.add_flag("a", "h", "2"), Error);
  EXPECT_THROW(p.add_bool_flag("a", "h"), Error);
}

TEST(ArgParser, UnregisteredGetThrows) {
  ArgParser p("x");
  EXPECT_THROW(p.get("nope"), Error);
}

}  // namespace
}  // namespace acgpu
