#include <gtest/gtest.h>

#include <algorithm>

#include "ac/dfa.h"
#include "ac/naive_matcher.h"
#include "ac/serial_matcher.h"
#include "util/rng.h"

namespace acgpu::ac {
namespace {

TEST(ByteMaps, IdentityIsIdentity) {
  const ByteMap map = identity_byte_map();
  for (int b = 0; b < 256; ++b) EXPECT_EQ(map[b], b);
}

TEST(ByteMaps, AsciiFoldOnlyTouchesUppercase) {
  const ByteMap map = ascii_fold_map();
  EXPECT_EQ(map['A'], 'a');
  EXPECT_EQ(map['Z'], 'z');
  EXPECT_EQ(map['a'], 'a');
  EXPECT_EQ(map['0'], '0');
  EXPECT_EQ(map['@'], '@');  // just below 'A'
  EXPECT_EQ(map['['], '[');  // just above 'Z'
  EXPECT_EQ(map[0xff], 0xff);
}

TEST(FoldedDfa, IdentityMapEqualsPlainBuild) {
  const PatternSet set({"he", "she", "his", "hers"});
  const Dfa plain = build_dfa(set);
  const Dfa mapped = build_dfa_folded(set, identity_byte_map());
  const std::string text = "ushers his sheep";
  auto a = find_all(plain, text);
  auto b = find_all(mapped, text);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(FoldedDfa, CaseInsensitiveMatching) {
  const Dfa dfa = build_dfa_folded(PatternSet({"Attack", "EVIL"}), ascii_fold_map());
  const auto matches = find_all(dfa, "an aTTaCk by eViL actors; ATTACK!");
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0].pattern, 0);  // aTTaCk
  EXPECT_EQ(matches[1].pattern, 1);  // eViL
  EXPECT_EQ(matches[2].pattern, 0);  // ATTACK
}

TEST(FoldedDfa, MatchesNaiveOnFoldedInputs) {
  // Oracle: fold both patterns and text by hand, run the naive matcher.
  Rng rng(9);
  std::vector<std::string> patterns;
  for (int i = 0; i < 30; ++i) {
    std::string p;
    const auto len = rng.next_in(2, 6);
    for (std::uint64_t j = 0; j < len; ++j) {
      const char c = static_cast<char>('a' + rng.next_below(3));
      p.push_back(rng.next_bool(0.5) ? static_cast<char>(std::toupper(c)) : c);
    }
    patterns.push_back(std::move(p));
  }
  std::string text;
  for (int i = 0; i < 2000; ++i) {
    const char c = static_cast<char>('a' + rng.next_below(3));
    text.push_back(rng.next_bool(0.5) ? static_cast<char>(std::toupper(c)) : c);
  }

  const PatternSet set(patterns, /*dedup=*/false);
  const Dfa dfa = build_dfa_folded(set, ascii_fold_map());
  auto got = find_all(dfa, text);
  std::sort(got.begin(), got.end());

  auto fold = [](std::string s) {
    for (auto& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
  };
  std::vector<std::string> folded_patterns;
  for (const auto& p : patterns) folded_patterns.push_back(fold(p));
  const auto expect = find_all_naive(PatternSet(folded_patterns, false), fold(text));
  EXPECT_EQ(got, expect);
}

TEST(FoldedDfa, PatternsFoldingToSameStringBothReported) {
  const Dfa dfa = build_dfa_folded(PatternSet({"AB", "ab"}, /*dedup=*/false),
                                   ascii_fold_map());
  const auto matches = find_all(dfa, "xaBx");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].pattern, 0);
  EXPECT_EQ(matches[1].pattern, 1);
  EXPECT_EQ(matches[0].end, matches[1].end);
}

TEST(FoldedDfa, LengthsReferToOriginalPatterns) {
  const Dfa dfa = build_dfa_folded(PatternSet({"HeLLo"}), ascii_fold_map());
  EXPECT_EQ(dfa.pattern_length(0), 5u);
  EXPECT_EQ(dfa.max_pattern_length(), 5u);
}

TEST(FoldedDfa, SurvivesSerialisation) {
  const Dfa dfa = build_dfa_folded(PatternSet({"MiXeD"}), ascii_fold_map(), 8);
  std::stringstream ss;
  dfa.save(ss);
  const Dfa loaded = Dfa::load(ss);
  EXPECT_EQ(find_all(loaded, "xxmixedXX MIXED").size(), 2u);
}

}  // namespace
}  // namespace acgpu::ac
