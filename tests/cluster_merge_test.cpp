// K-way match-stream merge (cluster/merge.h): ordering, determinism across
// equal keys, and the seam-interleaving case the Router actually produces.
#include "cluster/merge.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace acgpu::cluster {
namespace {

ac::Match m(std::uint64_t end, std::int32_t pattern) { return {end, pattern}; }

TEST(ClusterMerge, EmptyAndSinglePart) {
  EXPECT_TRUE(merge_sorted({}).empty());
  EXPECT_TRUE(merge_sorted({{}, {}, {}}).empty());
  const std::vector<ac::Match> one = {m(3, 0), m(7, 1)};
  EXPECT_EQ(merge_sorted({one}), one);
}

TEST(ClusterMerge, InterleavesSeamStraddlers) {
  // Shard 0 owns [0, 10) but a late straddler ends at 12, inside shard 1's
  // slab — exactly the interleaving the overlap carry produces.
  const std::vector<ac::Match> shard0 = {m(4, 0), m(12, 2)};
  const std::vector<ac::Match> shard1 = {m(11, 1), m(15, 0)};
  const std::vector<ac::Match> merged = merge_sorted({shard0, shard1});
  const std::vector<ac::Match> expected = {m(4, 0), m(11, 1), m(12, 2),
                                           m(15, 0)};
  EXPECT_EQ(merged, expected);
}

TEST(ClusterMerge, EqualKeysKeptOnceEachMergeIsStableByShard) {
  // Identical (end, pattern) in different parts: both survive (the Router's
  // ownership filter guarantees this never happens across a seam, but the
  // merge itself must not drop or reorder duplicates).
  const std::vector<ac::Match> merged =
      merge_sorted({{m(5, 1)}, {m(5, 1)}, {m(5, 0)}});
  const std::vector<ac::Match> expected = {m(5, 0), m(5, 1), m(5, 1)};
  EXPECT_EQ(merged, expected);
}

TEST(ClusterMerge, RandomizedAgainstSort) {
  Rng rng(0xc157e4);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t parts_n = 1 + rng.next_below(7);
    std::vector<std::vector<ac::Match>> parts(parts_n);
    std::vector<ac::Match> all;
    for (auto& part : parts) {
      const std::size_t n = rng.next_below(40);
      for (std::size_t i = 0; i < n; ++i)
        part.push_back(m(rng.next_below(1000), static_cast<std::int32_t>(rng.next_below(8))));
      std::sort(part.begin(), part.end());
      all.insert(all.end(), part.begin(), part.end());
    }
    std::sort(all.begin(), all.end());
    EXPECT_EQ(merge_sorted(std::move(parts)), all);
  }
}

}  // namespace
}  // namespace acgpu::cluster
