#include "ac/dfa.h"

#include <gtest/gtest.h>

#include <sstream>

#include "ac/nfa_matcher.h"
#include "util/error.h"
#include "util/rng.h"

namespace acgpu::ac {
namespace {

Dfa paper_dfa() { return build_dfa(PatternSet({"he", "she", "his", "hers"})); }

// Section II's DFA walk of "ushers": 0 -u-> 0 -s-> 3 -h-> 4 -e-> 5 (emit
// he, she) -r-> 8 -s-> 9 (emit hers).
TEST(Dfa, PaperUshersWalk) {
  Dfa dfa = paper_dfa();
  std::int32_t s = 0;
  s = dfa.next(s, 'u');
  EXPECT_EQ(s, 0);
  s = dfa.next(s, 's');
  EXPECT_EQ(s, 3);
  s = dfa.next(s, 'h');
  EXPECT_EQ(s, 4);
  s = dfa.next(s, 'e');
  EXPECT_EQ(s, 5);
  EXPECT_TRUE(dfa.is_match(5));
  std::vector<std::int32_t> out(dfa.output_begin(5), dfa.output_end(5));
  EXPECT_EQ(out, (std::vector<std::int32_t>{0, 1}));  // he, she
  s = dfa.next(s, 'r');
  EXPECT_EQ(s, 8);
  s = dfa.next(s, 's');
  EXPECT_EQ(s, 9);
  out.assign(dfa.output_begin(9), dfa.output_end(9));
  EXPECT_EQ(out, (std::vector<std::int32_t>{3}));  // hers
}

TEST(Dfa, SttShapeMatchesPaper) {
  Dfa dfa = paper_dfa();
  EXPECT_EQ(dfa.state_count(), 10u);
  EXPECT_EQ(dfa.stt().pitch(), SttMatrix::kColumns);  // 257, unpadded
  EXPECT_EQ(dfa.stt_bytes(), 10u * 257 * 4);
}

TEST(Dfa, PitchPadding) {
  Dfa dfa = build_dfa(PatternSet({"abc"}), /*pad_pitch_to=*/8);
  EXPECT_EQ(dfa.stt().pitch(), 264u);  // 257 rounded up to a multiple of 8
  // Transitions unaffected by padding.
  EXPECT_EQ(dfa.next(0, 'a'), 1);
}

// The defining DFA property: delta(s, b) agrees with the NFA's
// goto-with-failure resolution for EVERY state and byte.
TEST(Dfa, AgreesWithNfaResolutionEverywhere) {
  PatternSet set({"he", "she", "his", "hers"});
  Automaton nfa(set);
  Dfa dfa(nfa, set);
  for (State s = 0; s < static_cast<State>(nfa.state_count()); ++s) {
    for (int b = 0; b < 256; ++b) {
      const auto byte = static_cast<std::uint8_t>(b);
      State expect = s;
      State next = nfa.goto_fn(expect, byte);
      while (next == Automaton::kFail) {
        expect = nfa.fail(expect);
        next = nfa.goto_fn(expect, byte);
      }
      EXPECT_EQ(dfa.next(s, byte), next) << "state " << s << " byte " << b;
    }
  }
}

TEST(Dfa, MatchColumnConsistentWithAutomatonOutputs) {
  PatternSet set({"ab", "bc", "abc", "c"});
  Automaton nfa(set);
  Dfa dfa(nfa, set);
  for (State s = 0; s < static_cast<State>(nfa.state_count()); ++s) {
    EXPECT_EQ(dfa.is_match(s), nfa.has_output(s));
    std::vector<std::int32_t> got(dfa.output_begin(s), dfa.output_end(s));
    EXPECT_EQ(got, nfa.output(s));
  }
}

TEST(Dfa, PatternLengthsPreserved) {
  Dfa dfa = paper_dfa();
  EXPECT_EQ(dfa.pattern_count(), 4u);
  EXPECT_EQ(dfa.pattern_length(0), 2u);
  EXPECT_EQ(dfa.pattern_length(3), 4u);
  EXPECT_EQ(dfa.max_pattern_length(), 4u);
}

TEST(Dfa, SaveLoadRoundTrip) {
  Dfa dfa = build_dfa(PatternSet({"he", "she", "his", "hers"}), 8);
  std::stringstream ss;
  dfa.save(ss);
  Dfa loaded = Dfa::load(ss);
  EXPECT_EQ(loaded.state_count(), dfa.state_count());
  EXPECT_TRUE(loaded.stt() == dfa.stt());
  EXPECT_EQ(loaded.max_pattern_length(), dfa.max_pattern_length());
  EXPECT_EQ(loaded.pattern_lengths(), dfa.pattern_lengths());
  // Behavioural equality on a sample walk.
  std::int32_t a = 0, b = 0;
  for (char c : std::string("xushershishe")) {
    a = dfa.next(a, static_cast<std::uint8_t>(c));
    b = loaded.next(b, static_cast<std::uint8_t>(c));
    EXPECT_EQ(a, b);
    EXPECT_EQ(dfa.is_match(a), loaded.is_match(b));
  }
}

TEST(Dfa, LoadRejectsGarbage) {
  std::stringstream ss;
  ss << "not a dfa stream at all";
  EXPECT_THROW(Dfa::load(ss), Error);
}

TEST(Dfa, LoadRejectsTruncated) {
  Dfa dfa = paper_dfa();
  std::stringstream ss;
  dfa.save(ss);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(Dfa::load(cut), Error);
}

TEST(SttMatrix, SaveLoadRoundTrip) {
  SttMatrix m(5, 8);
  m.at(2, 0) = 7;
  m.at(4, 256) = -3;
  std::stringstream ss;
  m.save(ss);
  const SttMatrix loaded = SttMatrix::load(ss);
  EXPECT_TRUE(loaded == m);
}

TEST(SttMatrix, ColumnForByteLayout) {
  EXPECT_EQ(SttMatrix::column_for_byte(0), 1u);
  EXPECT_EQ(SttMatrix::column_for_byte(255), 256u);
}

TEST(SttMatrix, RejectsZeroRows) {
  EXPECT_THROW(SttMatrix(0), Error);
}

TEST(BuildDfa, RejectsEmptyPatternSet) {
  EXPECT_THROW(build_dfa(PatternSet{}), Error);
}

TEST(Dfa, RootSelfLoopsOnUnmatchedBytes) {
  Dfa dfa = paper_dfa();
  EXPECT_EQ(dfa.next(0, 'z'), 0);
  EXPECT_EQ(dfa.next(0, 0), 0);
  EXPECT_EQ(dfa.next(0, 255), 0);
}

// DFA states are never "fail": every transition lands on a real state.
TEST(Dfa, TotalTransitionFunction) {
  Rng rng(5);
  std::vector<std::string> patterns;
  for (int i = 0; i < 50; ++i) {
    std::string p;
    const auto len = rng.next_in(1, 8);
    for (std::uint64_t j = 0; j < len; ++j)
      p.push_back(static_cast<char>(rng.next_below(256)));
    patterns.push_back(std::move(p));
  }
  Dfa dfa = build_dfa(PatternSet(std::move(patterns)));
  for (std::uint32_t s = 0; s < dfa.state_count(); ++s)
    for (int b = 0; b < 256; ++b) {
      const std::int32_t n = dfa.next(static_cast<std::int32_t>(s),
                                      static_cast<std::uint8_t>(b));
      EXPECT_GE(n, 0);
      EXPECT_LT(n, static_cast<std::int32_t>(dfa.state_count()));
    }
}

}  // namespace
}  // namespace acgpu::ac
