#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace acgpu {
namespace {

std::string write_one(const std::vector<std::string>& row) {
  std::ostringstream os;
  CsvWriter(os).write_row(row);
  return os.str();
}

TEST(CsvWriter, PlainFields) {
  EXPECT_EQ(write_one({"a", "b", "c"}), "a,b,c\n");
}

TEST(CsvWriter, EmptyFields) {
  EXPECT_EQ(write_one({"", "", ""}), ",,\n");
}

TEST(CsvWriter, QuotesCommas) {
  EXPECT_EQ(write_one({"a,b", "c"}), "\"a,b\",c\n");
}

TEST(CsvWriter, DoublesQuotes) {
  EXPECT_EQ(write_one({"say \"hi\""}), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, QuotesNewlines) {
  EXPECT_EQ(write_one({"a\nb"}), "\"a\nb\"\n");
}

TEST(ParseCsvLine, Plain) {
  EXPECT_EQ(parse_csv_line("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ParseCsvLine, EmptyFields) {
  EXPECT_EQ(parse_csv_line(",,"), (std::vector<std::string>{"", "", ""}));
  EXPECT_EQ(parse_csv_line(""), (std::vector<std::string>{""}));
}

TEST(ParseCsvLine, QuotedFields) {
  EXPECT_EQ(parse_csv_line("\"a,b\",c"), (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(parse_csv_line("\"say \"\"hi\"\"\""), (std::vector<std::string>{"say \"hi\""}));
}

TEST(ParseCsvLine, ToleratesCarriageReturn) {
  EXPECT_EQ(parse_csv_line("a,b\r"), (std::vector<std::string>{"a", "b"}));
}

TEST(ParseCsvLine, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv_line("\"abc"), Error);
}

TEST(Csv, RoundTripsArbitraryContent) {
  const std::vector<std::string> row = {"plain", "with,comma", "with\"quote",
                                        "", "multi\nline", "  spaces  "};
  std::ostringstream os;
  CsvWriter(os).write_row(row);
  std::string line = os.str();
  line.pop_back();  // trailing newline
  EXPECT_EQ(parse_csv_line(line), row);
}

}  // namespace
}  // namespace acgpu
