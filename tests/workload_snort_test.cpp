#include "workload/snort_rules.h"

#include <gtest/gtest.h>

#include "ac/dfa.h"
#include "ac/serial_matcher.h"
#include "util/error.h"

namespace acgpu::workload {
namespace {

constexpr const char* kRules = R"(
# Example mini ruleset
alert tcp any any -> any 80 (msg:"shellcode NOP sled"; content:"|90 90 90 90|";)
alert tcp any any -> any any (msg:"suspicious UA"; content:"evil-agent/1.0";)

log udp any any -> any 53 (msg:"dns tunnel marker"; content:"tunnel"; content:"|0d 0a|";)
)";

TEST(SnortRules, ParsesRuleFile) {
  const auto rules = parse_snort_rules(kRules);
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_EQ(rules[0].action, "alert");
  EXPECT_EQ(rules[0].protocol, "tcp");
  EXPECT_EQ(rules[0].message, "shellcode NOP sled");
  EXPECT_EQ(rules[2].action, "log");
  EXPECT_EQ(rules[2].protocol, "udp");
}

TEST(SnortRules, DecodesHexContent) {
  const auto rules = parse_snort_rules(kRules);
  ASSERT_EQ(rules[0].contents.size(), 1u);
  EXPECT_EQ(rules[0].contents[0], std::string("\x90\x90\x90\x90", 4));
}

TEST(SnortRules, MultipleContentsPerRule) {
  const auto rules = parse_snort_rules(kRules);
  ASSERT_EQ(rules[2].contents.size(), 2u);
  EXPECT_EQ(rules[2].contents[0], "tunnel");
  EXPECT_EQ(rules[2].contents[1], "\r\n");
}

TEST(SnortRules, CommentsAndBlanksIgnored) {
  EXPECT_TRUE(parse_snort_rules("# just a comment\n\n   \n").empty());
}

TEST(DecodeContent, MixedLiteralAndHex) {
  EXPECT_EQ(decode_content("GET |20 2f| HTTP"), "GET  / HTTP");
  EXPECT_EQ(decode_content("plain"), "plain");
  EXPECT_EQ(decode_content("|41 42 43|"), "ABC");
}

TEST(DecodeContent, HexWhitespaceFlexible) {
  EXPECT_EQ(decode_content("|4142  43|"), "ABC");
}

TEST(DecodeContent, RejectsBadHex) {
  EXPECT_THROW(decode_content("|4g|"), Error);
  EXPECT_THROW(decode_content("|414|"), Error);   // odd nibble
  EXPECT_THROW(decode_content("|41"), Error);     // unterminated
}

TEST(SnortRules, MalformedRulesThrowWithLineInfo) {
  try {
    parse_snort_rules("alert tcp any any -> any any missing body\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
  EXPECT_THROW(parse_snort_rules("alert tcp a b (msg:\"no content\";)"), Error);
}

TEST(RulesToPatterns, FlattensWithOwners) {
  const auto rules = parse_snort_rules(kRules);
  std::vector<std::uint32_t> owner;
  const ac::PatternSet set = rules_to_patterns(rules, &owner);
  ASSERT_EQ(set.size(), 4u);
  ASSERT_EQ(owner.size(), 4u);
  EXPECT_EQ(owner[0], 0u);
  EXPECT_EQ(owner[1], 1u);
  EXPECT_EQ(owner[2], 2u);
  EXPECT_EQ(owner[3], 2u);
  EXPECT_EQ(set[1], "evil-agent/1.0");
}

TEST(RulesToPatterns, NullOwnerAccepted) {
  const auto rules = parse_snort_rules(kRules);
  EXPECT_EQ(rules_to_patterns(rules, nullptr).size(), 4u);
}

TEST(SnortRules, NocaseModifierParsed) {
  const auto rules = parse_snort_rules(
      "alert tcp any any -> any any (msg:\"a\"; content:\"CmD.eXe\"; nocase;)\n"
      "alert tcp any any -> any any (msg:\"b\"; content:\"exact\";)\n");
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_TRUE(rules[0].nocase);
  EXPECT_FALSE(rules[1].nocase);
  EXPECT_FALSE(all_nocase(rules));
}

TEST(SnortRules, AllNocaseEnablesFoldedDictionary) {
  const auto rules = parse_snort_rules(
      "alert tcp any any -> any any (msg:\"a\"; content:\"Attack\"; nocase;)\n"
      "alert tcp any any -> any any (msg:\"b\"; content:\"EVIL\"; nocase;)\n");
  ASSERT_TRUE(all_nocase(rules));
  const ac::PatternSet set = rules_to_patterns(rules, nullptr);
  const ac::Dfa dfa = ac::build_dfa_folded(set, ac::ascii_fold_map());
  EXPECT_EQ(ac::count_matches(dfa, "an aTTaCk by eViL actors"), 2u);
}

TEST(SnortRules, AllNocaseFalseForEmptyRuleset) {
  EXPECT_FALSE(all_nocase({}));
}

}  // namespace
}  // namespace acgpu::workload
