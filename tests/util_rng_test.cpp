#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace acgpu {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ReseedResetsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next_u64());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), first[i]);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(5);
  EXPECT_THROW(rng.next_below(0), Error);
}

TEST(Rng, NextInIsInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextInRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.next_in(6, 5), Error);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoolRespectsProbabilityRoughly) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, NextBoolZeroAndOneAreDegenerate) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, UniformityOverSmallRange) {
  Rng rng(23);
  std::vector<int> buckets(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++buckets[rng.next_below(8)];
  for (int b : buckets) EXPECT_NEAR(b, n / 8, n / 8 * 0.1);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleHandlesTinyVectors) {
  Rng rng(31);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {7};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{7});
}

TEST(DeriveSeed, DistinctStreamsDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 100; ++s) seeds.insert(derive_seed(42, s));
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(DeriveSeed, DeterministicPerStream) {
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
  EXPECT_NE(derive_seed(42, 7), derive_seed(43, 7));
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace acgpu
