#include "ac/pfac.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ac/dfa.h"
#include "ac/serial_matcher.h"
#include "util/error.h"

namespace acgpu::ac {
namespace {

TEST(Pfac, StateCountEqualsTrieSize) {
  PfacAutomaton pfac(PatternSet({"he", "she", "his", "hers"}));
  EXPECT_EQ(pfac.state_count(), 10u);
}

TEST(Pfac, AbsentEdgesAreDead) {
  PfacAutomaton pfac(PatternSet({"ab"}));
  EXPECT_EQ(pfac.next(0, 'x'), PfacAutomaton::kDead);
  EXPECT_EQ(pfac.next(0, 'b'), PfacAutomaton::kDead);  // no failure to root!
  EXPECT_NE(pfac.next(0, 'a'), PfacAutomaton::kDead);
}

TEST(Pfac, RunFromFindsPatternsAtStart) {
  PfacAutomaton pfac(PatternSet({"he", "hers"}));
  CollectSink sink;
  pfac.run_from("hersx", 0, sink);
  ASSERT_EQ(sink.matches().size(), 2u);
  EXPECT_EQ(sink.matches()[0], (Match{1, 0}));  // he ends at 1
  EXPECT_EQ(sink.matches()[1], (Match{3, 1}));  // hers ends at 3
}

TEST(Pfac, RunFromIgnoresLaterStarts) {
  PfacAutomaton pfac(PatternSet({"he"}));
  CollectSink sink;
  pfac.run_from("xhe", 0, sink);  // "he" starts at 1, not 0
  EXPECT_TRUE(sink.matches().empty());
}

TEST(Pfac, RunFromStopsAtMaxPatternLength) {
  PfacAutomaton pfac(PatternSet({"ab"}));
  CollectSink sink;
  // Would die immediately anyway, but verify no out-of-range scanning.
  pfac.run_from("abababab", 6, sink);
  ASSERT_EQ(sink.matches().size(), 1u);
  EXPECT_EQ(sink.matches()[0].end, 7u);
}

TEST(Pfac, FindAllAgreesWithDfaSerial) {
  PatternSet set({"he", "she", "his", "hers"});
  PfacAutomaton pfac(set);
  Dfa dfa = build_dfa(set);
  const std::string text = "ushers and sheep hide his herbs; shhe";
  auto a = find_all_pfac(pfac, text);
  auto b = find_all(dfa, text);
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(Pfac, OverlappingAndNested) {
  PatternSet set({"aa", "aaa", "a"});
  PfacAutomaton pfac(set);
  Dfa dfa = build_dfa(set);
  const std::string text = "aaaaa";
  auto a = find_all_pfac(pfac, text);
  auto b = find_all(dfa, text);
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(Pfac, SuffixPatternsFoundByOwnInstance) {
  // "ers" is a suffix of "hers": the PFAC instance at the 'e' finds it.
  PatternSet set({"hers", "ers"});
  PfacAutomaton pfac(set);
  const auto matches = find_all_pfac(pfac, "hers");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0], (Match{3, 0}));
  EXPECT_EQ(matches[1], (Match{3, 1}));
}

TEST(Pfac, EmptyPatternSetThrows) {
  EXPECT_THROW(PfacAutomaton(PatternSet{}), Error);
}

TEST(Pfac, MatchColumnSemantics) {
  PatternSet set({"ab", "abc"});
  PfacAutomaton pfac(set);
  std::int32_t s = pfac.next(0, 'a');
  EXPECT_EQ(pfac.stt().output_id(s), 0);
  s = pfac.next(s, 'b');
  EXPECT_NE(pfac.stt().output_id(s), 0);
  std::vector<std::int32_t> out(pfac.output_begin(s), pfac.output_end(s));
  EXPECT_EQ(out, (std::vector<std::int32_t>{0}));
}

}  // namespace
}  // namespace acgpu::ac
