// Tests for the seeded workload generator: determinism, family coverage,
// and the guarantees the adapters rely on (pattern length ceiling, no empty
// patterns, compilable pattern sets).
#include "oracle/workload_gen.h"

#include <gtest/gtest.h>

#include <set>

namespace acgpu::oracle {
namespace {

TEST(WorkloadGen, DeterministicPerSeedAndIteration) {
  for (std::uint64_t i = 0; i < 16; ++i) {
    const Workload a = generate_workload(99, i);
    const Workload b = generate_workload(99, i);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.patterns, b.patterns);
    EXPECT_EQ(a.text, b.text);
  }
}

TEST(WorkloadGen, DifferentSeedsDiffer) {
  const Workload a = generate_workload(1, 0);
  const Workload b = generate_workload(2, 0);
  EXPECT_TRUE(a.text != b.text || a.patterns != b.patterns);
}

TEST(WorkloadGen, CyclesThroughAllFamilies) {
  std::set<std::string> families;
  for (std::uint64_t i = 0; i < workload_family_count(); ++i)
    families.insert(workload_family_name(i));
  EXPECT_EQ(families.size(), workload_family_count());
  EXPECT_GE(workload_family_count(), 8u);
  // The iteration tag prefixes the family name.
  const Workload w = generate_workload(7, 1);
  EXPECT_EQ(w.name.rfind(workload_family_name(1), 0), 0u) << w.name;
}

TEST(WorkloadGen, EveryWorkloadCompilesAndRespectsGuarantees) {
  for (std::uint64_t i = 0; i < 4 * workload_family_count(); ++i) {
    const Workload w = generate_workload(5, i);
    ASSERT_FALSE(w.patterns.empty()) << w.name;
    for (const auto& p : w.patterns) {
      EXPECT_FALSE(p.empty()) << w.name;
      EXPECT_LE(p.size(), 120u) << w.name;
    }
    EXPECT_NO_THROW(CompiledWorkload{w}) << w.name;
  }
}

TEST(WorkloadGen, HardCasesAppearWithinOneCycle) {
  bool empty_or_tiny_text = false;
  bool pattern_longer_than_chunk = false;
  bool nul_byte = false;
  bool ff_byte = false;
  bool suffix_chain = false;
  for (std::uint64_t i = 0; i < 2 * workload_family_count(); ++i) {
    const Workload w = generate_workload(5, i);
    empty_or_tiny_text |= w.text.size() <= 40;
    if (w.text.find('\0') != std::string::npos) nul_byte = true;
    if (w.text.find('\xff') != std::string::npos) ff_byte = true;
    std::size_t longest = 0;
    for (const auto& p : w.patterns) longest = std::max(longest, p.size());
    pattern_longer_than_chunk |= longest > 32;
    // A suffix chain: some pattern is a proper suffix of another.
    for (const auto& a : w.patterns)
      for (const auto& b : w.patterns)
        if (a.size() < b.size() && b.compare(b.size() - a.size(), a.size(), a) == 0)
          suffix_chain = true;
  }
  EXPECT_TRUE(empty_or_tiny_text);
  EXPECT_TRUE(pattern_longer_than_chunk);
  EXPECT_TRUE(nul_byte);
  EXPECT_TRUE(ff_byte);
  EXPECT_TRUE(suffix_chain);
}

}  // namespace
}  // namespace acgpu::oracle
