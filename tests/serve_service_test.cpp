// StreamService lifecycle: admission policies and backpressure, LRU
// eviction wired through the scheduler, drain semantics, stats, and the
// serve.* telemetry series.
#include "serve/service.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ac/serial_matcher.h"
#include "telemetry/metrics_registry.h"

namespace acgpu::serve {
namespace {

ServeOptions fast_options() {
  ServeOptions opt;
  opt.engine.mode = gpusim::SimMode::Functional;
  opt.engine.gpu.num_sms = 4;
  opt.engine.device_memory_bytes = 64u << 20;
  opt.engine.threads_per_block = 64;
  return opt;
}

StreamService make_service(const std::vector<std::string>& patterns,
                           const ServeOptions& opt) {
  auto r = StreamService::create(ac::PatternSet(patterns), opt);
  ACGPU_CHECK(r.is_ok(), r.status().to_string());
  return std::move(r).value();
}

std::vector<ac::Match> drained_matches(StreamService& srv, SessionId id) {
  EXPECT_TRUE(srv.drain().is_ok());
  auto polled = srv.poll(id);
  EXPECT_TRUE(polled.is_ok()) << polled.status().to_string();
  auto out = std::move(polled).value();
  ac::normalize_matches(out);
  return out;
}

TEST(ServeService, FeedsMatchSingleShotScan) {
  StreamService srv = make_service({"he", "she", "his", "hers"}, fast_options());
  const std::string text = "ushers and sheep hide his herbs ushers";
  std::vector<ac::Match> expected = ac::find_all(srv.dfa(), text);
  ac::normalize_matches(expected);

  const SessionId id = srv.open().value();
  for (std::size_t pos = 0; pos < text.size(); pos += 5)
    ASSERT_TRUE(srv.feed(id, std::string_view(text).substr(pos, 5)).is_ok());
  EXPECT_EQ(drained_matches(srv, id), expected);
}

TEST(ServeService, UnknownAndClosedIdsAreInvalidArgument) {
  StreamService srv = make_service({"ab"}, fast_options());
  EXPECT_EQ(srv.feed(99, "x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(srv.poll(99).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(srv.close(99).code(), StatusCode::kInvalidArgument);
  const SessionId id = srv.open().value();
  EXPECT_TRUE(srv.close(id).is_ok());
  EXPECT_EQ(srv.feed(id, "x").code(), StatusCode::kInvalidArgument);
}

TEST(ServeService, RejectPolicyAnswersOverloadedAndPumpMakesRoom) {
  ServeOptions opt = fast_options();
  opt.max_queue_chunks = 2;
  opt.admission = AdmissionPolicy::kReject;
  StreamService srv = make_service({"ab"}, opt);
  const SessionId id = srv.open().value();
  ASSERT_TRUE(srv.feed(id, "aaaa").is_ok());
  ASSERT_TRUE(srv.feed(id, "bbbb").is_ok());
  const Status overloaded = srv.feed(id, "cccc");
  EXPECT_EQ(overloaded.code(), StatusCode::kOverloaded);
  EXPECT_TRUE(srv.pump().is_ok());  // scan one superbatch inline
  EXPECT_TRUE(srv.feed(id, "cccc").is_ok());
  EXPECT_EQ(srv.stats().feeds_rejected, 1u);
  EXPECT_EQ(srv.stats().feeds_accepted, 3u);
  // The rejected feed must not have advanced the stream: global offsets
  // line up with the accepted bytes only.
  EXPECT_EQ(srv.session_stats(id).value().bytes_fed, 12u);
}

TEST(ServeService, AutoFlushNeverRejects) {
  ServeOptions opt = fast_options();
  opt.max_queue_chunks = 1;
  opt.admission = AdmissionPolicy::kAutoFlush;
  StreamService srv = make_service({"ab"}, opt);
  const SessionId id = srv.open().value();
  const std::string text = "abababababababab";
  for (std::size_t pos = 0; pos < text.size(); pos += 2)
    ASSERT_TRUE(srv.feed(id, std::string_view(text).substr(pos, 2)).is_ok());
  EXPECT_EQ(srv.stats().feeds_rejected, 0u);
  EXPECT_EQ(drained_matches(srv, id).size(), 8u);
}

TEST(ServeService, EvictionForgetsQueuedChunksAndUnpolledMatches) {
  ServeOptions opt = fast_options();
  opt.max_sessions = 1;
  StreamService srv = make_service({"ab"}, opt);
  const SessionId first = srv.open().value();
  ASSERT_TRUE(srv.feed(first, "abab").is_ok());
  const SessionId second = srv.open().value();  // evicts `first`
  EXPECT_EQ(srv.stats().sessions_evicted, 1u);
  EXPECT_EQ(srv.poll(first).status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(srv.feed(second, "ab").is_ok());
  EXPECT_EQ(drained_matches(srv, second).size(), 1u);
  // The evicted session's queued chunk was dropped, not scanned into limbo.
  EXPECT_EQ(srv.stats().matches_dropped_closed, 0u);
}

TEST(ServeService, SessionByteQuotaSurfacesAsCapacityExceeded) {
  ServeOptions opt = fast_options();
  opt.session_limits.max_bytes = 4;
  StreamService srv = make_service({"ab"}, opt);
  const SessionId id = srv.open().value();
  ASSERT_TRUE(srv.feed(id, "abab").is_ok());
  EXPECT_EQ(srv.feed(id, "a").code(), StatusCode::kCapacityExceeded);
  EXPECT_EQ(srv.stats().quota_rejects, 1u);
}

TEST(ServeService, EmptyFeedIsAcceptedNoOp) {
  StreamService srv = make_service({"ab"}, fast_options());
  const SessionId id = srv.open().value();
  EXPECT_TRUE(srv.feed(id, "").is_ok());
  EXPECT_TRUE(srv.feed(id, "a").is_ok());
  EXPECT_TRUE(srv.feed(id, "").is_ok());
  EXPECT_TRUE(srv.feed(id, "b").is_ok());
  EXPECT_EQ(drained_matches(srv, id).size(), 1u);  // "ab" across the feeds
}

TEST(ServeService, ShutdownStopsAdmissionButKeepsPolling) {
  StreamService srv = make_service({"ab"}, fast_options());
  const SessionId id = srv.open().value();
  ASSERT_TRUE(srv.feed(id, "ab").is_ok());
  srv.shutdown();
  srv.shutdown();  // idempotent
  EXPECT_EQ(srv.open().status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(srv.feed(id, "x").code(), StatusCode::kInvalidArgument);
  // Accepted work was drained on shutdown and is still pollable.
  EXPECT_EQ(srv.poll(id).value().size(), 1u);
}

TEST(ServeService, BackgroundWorkerDrainsAndDelivers) {
  ServeOptions opt = fast_options();
  opt.background = true;
  StreamService srv = make_service({"he", "she"}, opt);
  const std::string text = "she sells seashells; he hears hershey";
  std::vector<ac::Match> expected = ac::find_all(srv.dfa(), text);
  ac::normalize_matches(expected);
  const SessionId id = srv.open().value();
  std::size_t pos = 0;
  while (pos < text.size()) {
    const Status s = srv.feed(id, std::string_view(text).substr(pos, 3));
    if (s.code() == StatusCode::kOverloaded) continue;  // worker catching up
    ASSERT_TRUE(s.is_ok()) << s.to_string();
    pos += 3;
  }
  EXPECT_EQ(drained_matches(srv, id), expected);
  EXPECT_GE(srv.stats().drains, 1u);
}

TEST(ServeService, BackgroundPumpIsInvalid) {
  ServeOptions opt = fast_options();
  opt.background = true;
  StreamService srv = make_service({"ab"}, opt);
  EXPECT_EQ(srv.pump().code(), StatusCode::kInvalidArgument);
}

TEST(ServeService, BackgroundAutoFlushIsRejectedAtCreate) {
  ServeOptions opt = fast_options();
  opt.background = true;
  opt.admission = AdmissionPolicy::kAutoFlush;
  const auto r = StreamService::create(ac::PatternSet({"ab"}), opt);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeService, CreateFromDfaScansAndRejectsPfac) {
  ac::Dfa dfa = ac::build_dfa(ac::PatternSet({"ab"}), 8);
  auto r = StreamService::create(std::move(dfa), fast_options());
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  StreamService& srv = r.value();
  const SessionId id = srv.open().value();
  ASSERT_TRUE(srv.feed(id, "a").is_ok());
  ASSERT_TRUE(srv.feed(id, "b").is_ok());
  EXPECT_EQ(drained_matches(srv, id).size(), 1u);

  ServeOptions pfac_opt = fast_options();
  pfac_opt.engine.variant = pipeline::KernelVariant::kPfac;
  ac::Dfa dfa2 = ac::build_dfa(ac::PatternSet({"ab"}), 8);
  EXPECT_FALSE(StreamService::create(std::move(dfa2), pfac_opt).is_ok());
}

TEST(ServeService, PublishesServeMetricFamilies) {
  telemetry::MetricsRegistry registry;
  ServeOptions opt = fast_options();
  opt.metrics = &registry;
  opt.max_sessions = 1;
  StreamService srv = make_service({"ab"}, opt);
  const SessionId a = srv.open().value();
  ASSERT_TRUE(srv.feed(a, "abab").is_ok());
  srv.open().value();  // evicts `a`
  ASSERT_TRUE(srv.drain().is_ok());

  const auto snapshot = registry.snapshot();
  for (const char* name :
       {"serve.sessions.opened", "serve.sessions.evicted", "serve.sessions.live",
        "serve.feeds.accepted", "serve.feed.bytes", "serve.queue.depth_chunks",
        "serve.queue.max_depth_chunks", "serve.drains"})
    EXPECT_TRUE(snapshot.value(name).has_value()) << name;
  EXPECT_EQ(snapshot.value("serve.sessions.opened"), 2.0);
  EXPECT_EQ(snapshot.value("serve.sessions.evicted"), 1.0);
  EXPECT_EQ(snapshot.value("serve.feeds.accepted"), 1.0);
  EXPECT_EQ(snapshot.value("serve.feed.bytes"), 4.0);
  // Histograms expand into derived series once observed.
  EXPECT_TRUE(snapshot.value("serve.feed.latency_ns.count").has_value());
}

TEST(ServeService, StatsCountSpanningMatchesSeparately) {
  StreamService srv = make_service({"abcd"}, fast_options());
  const SessionId id = srv.open().value();
  ASSERT_TRUE(srv.feed(id, "xxab").is_ok());
  ASSERT_TRUE(srv.feed(id, "cdxxabcd").is_ok());
  ASSERT_TRUE(srv.drain().is_ok());
  const ServiceStats stats = srv.stats();
  EXPECT_EQ(stats.spanning_matches, 1u);   // the straddling "abcd"
  EXPECT_EQ(stats.matches_delivered, 2u);  // straddler + contained one
  EXPECT_EQ(srv.poll(id).value().size(), 2u);
}

TEST(ServeOptionsValidation, RejectsZeroSessionsAndZeroQueues) {
  ServeOptions opt = fast_options();
  opt.max_sessions = 0;
  EXPECT_FALSE(opt.validate().is_ok());
  opt = fast_options();
  opt.max_queue_chunks = 0;
  EXPECT_FALSE(opt.validate().is_ok());
  EXPECT_TRUE(fast_options().validate().is_ok());
}

}  // namespace
}  // namespace acgpu::serve
