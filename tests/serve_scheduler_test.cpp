// Scheduler admission control, superbatch coalescing, and the scan_batch
// partition filter that keeps concatenated sessions' matches apart.
#include "serve/scheduler.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ac/pattern_set.h"
#include "ac/serial_matcher.h"

namespace acgpu::serve {
namespace {

SchedulerOptions tiny(std::uint32_t chunks, std::uint64_t bytes,
                      std::uint64_t coalesce) {
  SchedulerOptions opt;
  opt.max_queue_chunks = chunks;
  opt.max_queue_bytes = bytes;
  opt.coalesce_bytes = coalesce;
  return opt;
}

PendingChunk chunk(SessionId session, std::uint64_t base, std::string bytes) {
  return PendingChunk{session, base, std::move(bytes), {}};
}

TEST(ServeScheduler, ChunkCountCapAnswersOverloaded) {
  Scheduler s(tiny(2, 1 << 20, 1 << 20));
  EXPECT_TRUE(s.admit(chunk(1, 0, "aa")).is_ok());
  EXPECT_TRUE(s.admit(chunk(1, 2, "bb")).is_ok());
  const Status full = s.admission(1);
  EXPECT_EQ(full.code(), StatusCode::kOverloaded);
  EXPECT_EQ(s.admit(chunk(1, 4, "cc")).code(), StatusCode::kOverloaded);
  EXPECT_EQ(s.queued_chunks(), 2u);
}

TEST(ServeScheduler, ByteCapAnswersOverloaded) {
  Scheduler s(tiny(64, 8, 1 << 20));
  EXPECT_TRUE(s.admit(chunk(1, 0, "123456")).is_ok());
  EXPECT_EQ(s.admission(3).code(), StatusCode::kOverloaded);  // 6 + 3 > 8
  EXPECT_TRUE(s.admission(2).is_ok());
}

TEST(ServeScheduler, OversizedChunkOnlyAdmittedIntoEmptyQueue) {
  Scheduler s(tiny(64, 8, 1 << 20));
  // Bigger than the whole byte budget: rejecting it forever would wedge the
  // producer, so an empty queue takes it.
  EXPECT_TRUE(s.admission(100).is_ok());
  EXPECT_TRUE(s.admit(chunk(1, 0, std::string(100, 'x'))).is_ok());
  // But with anything queued it must wait.
  EXPECT_EQ(s.admission(100).code(), StatusCode::kOverloaded);
  s.take_batch();
  EXPECT_TRUE(s.admit(chunk(1, 0, "ab")).is_ok());
  EXPECT_EQ(s.admission(100).code(), StatusCode::kOverloaded);
}

TEST(ServeScheduler, EmptyChunksAcceptedAndDropped) {
  Scheduler s(tiny(4, 64, 64));
  EXPECT_TRUE(s.admit(chunk(1, 0, "")).is_ok());
  EXPECT_FALSE(s.has_work());
}

TEST(ServeScheduler, TakeBatchCoalescesFifoUpToTarget) {
  Scheduler s(tiny(64, 1 << 20, 8));
  ASSERT_TRUE(s.admit(chunk(1, 0, "aaaa")).is_ok());
  ASSERT_TRUE(s.admit(chunk(2, 100, "bbb")).is_ok());
  ASSERT_TRUE(s.admit(chunk(1, 4, "cc")).is_ok());  // 4+3+2 > 8: next batch

  CoalescedBatch batch = s.take_batch();
  EXPECT_EQ(batch.text, "aaaabbb");
  ASSERT_EQ(batch.spans.size(), 2u);
  EXPECT_EQ(batch.spans[0].session, 1u);
  EXPECT_EQ(batch.spans[0].begin, 0u);
  EXPECT_EQ(batch.spans[0].end, 4u);
  EXPECT_EQ(batch.spans[0].global_base, 0u);
  EXPECT_EQ(batch.spans[1].session, 2u);
  EXPECT_EQ(batch.spans[1].begin, 4u);
  EXPECT_EQ(batch.spans[1].end, 7u);
  EXPECT_EQ(batch.spans[1].global_base, 100u);

  batch = s.take_batch();  // the remainder
  EXPECT_EQ(batch.text, "cc");
  ASSERT_EQ(batch.spans.size(), 1u);
  EXPECT_EQ(batch.spans[0].global_base, 4u);
  EXPECT_FALSE(s.has_work());
  EXPECT_EQ(s.queued_bytes(), 0u);
}

TEST(ServeScheduler, TakeBatchAlwaysTakesAtLeastOneChunk) {
  Scheduler s(tiny(64, 1 << 20, 2));  // coalesce target smaller than chunk
  ASSERT_TRUE(s.admit(chunk(1, 0, "abcdef")).is_ok());
  const CoalescedBatch batch = s.take_batch();
  EXPECT_EQ(batch.text, "abcdef");
}

TEST(ServeScheduler, ForgetDropsOnlyThatSessionsChunks) {
  Scheduler s(tiny(64, 1 << 20, 1 << 20));
  ASSERT_TRUE(s.admit(chunk(1, 0, "aa")).is_ok());
  ASSERT_TRUE(s.admit(chunk(2, 0, "bb")).is_ok());
  ASSERT_TRUE(s.admit(chunk(1, 2, "cc")).is_ok());
  EXPECT_EQ(s.forget(1), 2u);
  EXPECT_EQ(s.queued_chunks(), 1u);
  EXPECT_EQ(s.queued_bytes(), 2u);
  const CoalescedBatch batch = s.take_batch();
  ASSERT_EQ(batch.spans.size(), 1u);
  EXPECT_EQ(batch.spans[0].session, 2u);
}

// ---------------------------------------------------------------------------
// scan_batch: the partition filter and the host-fallback path
// ---------------------------------------------------------------------------

struct ScanFixture {
  ac::PatternSet patterns;
  ac::Dfa dfa;
  Device device;
  Engine engine;

  static EngineOptions options(std::uint32_t match_capacity = 256) {
    EngineOptions opt;
    opt.mode = gpusim::SimMode::Functional;
    opt.gpu = gpusim::GpuConfig::gtx285();
    opt.gpu.num_sms = 4;
    opt.device_memory_bytes = 64u << 20;
    opt.threads_per_block = 64;
    opt.match_capacity = match_capacity;
    return opt;
  }

  explicit ScanFixture(const std::vector<std::string>& pats,
                       std::uint32_t match_capacity = 256)
      : patterns(pats),
        dfa(ac::build_dfa(patterns, 8)),
        device([] {
          const EngineOptions opt = options();
          DeviceOptions dopt;
          dopt.gpu = opt.gpu;
          dopt.memory_bytes = opt.device_memory_bytes;
          auto r = Device::create(dopt);
          ACGPU_CHECK(r.is_ok(), r.status().to_string());
          return std::move(r).value();
        }()),
        engine([&] {
          auto r =
              Engine::create(device, patterns, options(match_capacity));
          ACGPU_CHECK(r.is_ok(), r.status().to_string());
          return std::move(r).value();
        }()) {}
};

TEST(ServeScanBatch, RebasesMatchesOntoSessionOffsets) {
  ScanFixture f({"abcd"});
  CoalescedBatch batch;
  batch.text = "xxabcdxx";
  batch.spans = {{7, 0, 8, 1000, {}}};
  const BatchScan scan = scan_batch(f.engine, f.dfa, batch);
  EXPECT_FALSE(scan.host_fallback);
  ASSERT_EQ(scan.matches.size(), 1u);
  EXPECT_EQ(scan.matches[0].session, 7u);
  EXPECT_EQ(scan.matches[0].match.end, 1005u);  // 1000 + local end 5
}

TEST(ServeScanBatch, DropsMatchesFabricatedAcrossAJoint) {
  // Session 1 contributes "xxab", session 2 "cdyy": the concatenation
  // contains "abcd", but no session's stream does — the filter must kill it.
  ScanFixture f({"abcd"});
  CoalescedBatch batch;
  batch.text = "xxabcdyy";
  batch.spans = {{1, 0, 4, 0, {}}, {2, 4, 8, 0, {}}};
  const BatchScan scan = scan_batch(f.engine, f.dfa, batch);
  EXPECT_TRUE(scan.matches.empty());
}

TEST(ServeScanBatch, DropsSameSessionCrossChunkMatchAlreadyOwnedByContinuation) {
  // Both chunks belong to session 1 and "abcd" spans their joint. The
  // session's boundary continuation reported it at feed time, so the bulk
  // scan must not report it again (exactly-once).
  ScanFixture f({"abcd"});
  CoalescedBatch batch;
  batch.text = "xxabcdyy";
  batch.spans = {{1, 0, 4, 0, {}}, {1, 4, 8, 4, {}}};
  const BatchScan scan = scan_batch(f.engine, f.dfa, batch);
  EXPECT_TRUE(scan.matches.empty());
}

TEST(ServeScanBatch, KeepsContainedMatchesOnBothSidesOfAJoint) {
  ScanFixture f({"ab"});
  CoalescedBatch batch;
  batch.text = "abxxab";
  batch.spans = {{1, 0, 4, 0, {}}, {2, 4, 6, 50, {}}};
  const BatchScan scan = scan_batch(f.engine, f.dfa, batch);
  ASSERT_EQ(scan.matches.size(), 2u);
  EXPECT_EQ(scan.matches[0].session, 1u);
  EXPECT_EQ(scan.matches[0].match.end, 1u);
  EXPECT_EQ(scan.matches[1].session, 2u);
  EXPECT_EQ(scan.matches[1].match.end, 51u);
}

TEST(ServeScanBatch, HostFallbackOnDeviceOverflowIsExact) {
  // An all-'a' text against pattern "a" overflows any small device match
  // buffer; the scheduler then re-scans on the host DFA instead of dropping.
  ScanFixture f({"a"}, /*match_capacity=*/1);
  CoalescedBatch batch;
  batch.text = std::string(4096, 'a');
  batch.spans = {{3, 0, 4096, 0, {}}};
  const BatchScan scan = scan_batch(f.engine, f.dfa, batch);
  EXPECT_TRUE(scan.host_fallback);
  ASSERT_EQ(scan.matches.size(), 4096u);
  EXPECT_EQ(scan.matches[0].match.end, 0u);
  EXPECT_EQ(scan.matches.back().match.end, 4095u);
}

TEST(ServeScanBatch, EmptyBatchScansToNothing) {
  ScanFixture f({"a"});
  const BatchScan scan = scan_batch(f.engine, f.dfa, CoalescedBatch{});
  EXPECT_TRUE(scan.matches.empty());
  EXPECT_FALSE(scan.host_fallback);
}

TEST(ServeSchedulerOptions, ValidationRejectsZeroBounds) {
  EXPECT_FALSE(tiny(0, 1, 1).validate().is_ok());
  EXPECT_FALSE(tiny(1, 0, 1).validate().is_ok());
  EXPECT_FALSE(tiny(1, 1, 0).validate().is_ok());
  EXPECT_TRUE(tiny(1, 1, 1).validate().is_ok());
}

}  // namespace
}  // namespace acgpu::serve
