// Cross-module integration tests: the full pipeline from a Snort ruleset or
// DNA workload down through the simulated kernels, plus end-to-end checks of
// the paper's qualitative claims at small scale.
#include <gtest/gtest.h>

#include <algorithm>

#include "ac/serial_matcher.h"
#include "kernels/ac_kernel.h"
#include "kernels/pfac_kernel.h"
#include "workload/dna.h"
#include "workload/markov_corpus.h"
#include "workload/pattern_extract.h"
#include "workload/snort_rules.h"

namespace acgpu {
namespace {

TEST(Integration, SnortPipelineEndToEnd) {
  // Rules -> patterns -> DFA -> simulated shared-memory kernel over a
  // packet-like payload, attributing matches back to rules.
  const auto rules = workload::parse_snort_rules(
      "alert tcp any any -> any any (msg:\"r0\"; content:\"attack\";)\n"
      "alert tcp any any -> any any (msg:\"r1\"; content:\"evil\"; content:\"bad\";)\n");
  std::vector<std::uint32_t> owner;
  const ac::PatternSet patterns = workload::rules_to_patterns(rules, &owner);
  const ac::Dfa dfa = ac::build_dfa(patterns, 8);

  std::string payload = workload::make_corpus(8000, 50);
  payload.replace(100, 6, "attack");
  payload.replace(4000, 4, "evil");
  payload.replace(7000, 3, "bad");

  gpusim::GpuConfig cfg = gpusim::GpuConfig::gtx285();
  cfg.num_sms = 2;
  gpusim::DeviceMemory mem(32 << 20);
  const kernels::DeviceDfa ddfa(mem, dfa);
  const auto text_addr = kernels::upload_text(mem, payload);

  kernels::AcLaunchSpec spec;
  spec.approach = kernels::Approach::kShared;
  spec.chunk_bytes = 32;
  spec.threads_per_block = 64;
  spec.sim.mode = gpusim::SimMode::Functional;
  const auto out = kernels::run_ac_kernel(cfg, mem, ddfa, text_addr,
                                          payload.size(), spec);

  auto expect = ac::find_all(dfa, payload);
  std::sort(expect.begin(), expect.end());
  ASSERT_EQ(out.matches.matches, expect);
  ASSERT_GE(out.matches.matches.size(), 3u);

  // Rule attribution: the match at 105 must map to rule 0.
  const auto& first = out.matches.matches.front();
  EXPECT_EQ(first.end, 105u);
  EXPECT_EQ(owner[static_cast<std::size_t>(first.pattern)], 0u);
}

TEST(Integration, DnaPipelineAcrossAllMatchers) {
  const std::string genome = workload::make_dna_sequence(30000, 60);
  const ac::PatternSet motifs = workload::extract_dna_motifs(genome, 40, 10, 0.05, 61);
  const ac::Dfa dfa = ac::build_dfa(motifs, 8);

  auto serial = ac::find_all(dfa, genome);
  std::sort(serial.begin(), serial.end());

  gpusim::GpuConfig cfg = gpusim::GpuConfig::gtx285();
  cfg.num_sms = 2;
  gpusim::DeviceMemory mem(32 << 20);
  const kernels::DeviceDfa ddfa(mem, dfa);
  const auto text_addr = kernels::upload_text(mem, genome);
  kernels::AcLaunchSpec spec;
  spec.chunk_bytes = 32;
  spec.threads_per_block = 64;
  spec.sim.mode = gpusim::SimMode::Functional;
  for (auto approach : {kernels::Approach::kGlobalOnly, kernels::Approach::kShared}) {
    spec.approach = approach;
    const std::size_t mark = mem.mark();
    const auto out =
        kernels::run_ac_kernel(cfg, mem, ddfa, text_addr, genome.size(), spec);
    mem.release(mark);
    EXPECT_EQ(out.matches.matches, serial) << kernels::to_string(approach);
  }
}

TEST(Integration, PfacAgreesWithAcKernelsOnSharedWorkload) {
  const std::string corpus = workload::make_corpus(12000, 70);
  workload::ExtractConfig ec;
  ec.count = 30;
  ec.min_length = 4;
  ec.max_length = 10;
  const ac::PatternSet patterns = workload::extract_patterns(corpus, ec);

  gpusim::GpuConfig cfg = gpusim::GpuConfig::gtx285();
  cfg.num_sms = 2;
  gpusim::DeviceMemory mem(64 << 20);

  const ac::Dfa dfa = ac::build_dfa(patterns, 8);
  const kernels::DeviceDfa ddfa(mem, dfa);
  const ac::PfacAutomaton pfac(patterns);
  const kernels::DevicePfac dpfac(mem, pfac);
  const auto text_addr = kernels::upload_text(mem, corpus);

  kernels::AcLaunchSpec ac_spec;
  ac_spec.approach = kernels::Approach::kShared;
  ac_spec.chunk_bytes = 32;
  ac_spec.threads_per_block = 64;
  ac_spec.sim.mode = gpusim::SimMode::Functional;
  const auto ac_out =
      kernels::run_ac_kernel(cfg, mem, ddfa, text_addr, corpus.size(), ac_spec);

  kernels::PfacLaunchSpec pfac_spec;
  pfac_spec.sim.mode = gpusim::SimMode::Functional;
  const auto pfac_out =
      kernels::run_pfac_kernel(cfg, mem, dpfac, text_addr, corpus.size(), pfac_spec);

  EXPECT_EQ(ac_out.matches.matches, pfac_out.matches.matches);
}

TEST(Integration, DfaSerializationFeedsKernels) {
  // Build a DFA, round-trip it through its binary format, upload the loaded
  // copy, and verify kernel results still match.
  const ac::PatternSet patterns({"he", "she", "his", "hers"});
  const ac::Dfa original = ac::build_dfa(patterns, 8);
  std::stringstream ss;
  original.save(ss);
  const ac::Dfa loaded = ac::Dfa::load(ss);

  const std::string text = "ushers herd sheep; his herbs";
  gpusim::GpuConfig cfg = gpusim::GpuConfig::gtx285();
  cfg.num_sms = 2;
  gpusim::DeviceMemory mem(16 << 20);
  const kernels::DeviceDfa ddfa(mem, loaded);
  const auto text_addr = kernels::upload_text(mem, text);
  kernels::AcLaunchSpec spec;
  spec.approach = kernels::Approach::kShared;
  spec.chunk_bytes = 8;
  spec.threads_per_block = 32;
  spec.sim.mode = gpusim::SimMode::Functional;
  const auto out =
      kernels::run_ac_kernel(cfg, mem, ddfa, text_addr, text.size(), spec);
  auto expect = ac::find_all(original, text);
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(out.matches.matches, expect);
}

TEST(Integration, TexHitRateFallsAsDictionaryGrows) {
  // The mechanism behind the paper's pattern-count sensitivity: a bigger
  // STT stresses the texture cache.
  const std::string corpus = workload::make_corpus(60000, 80);
  gpusim::GpuConfig cfg = gpusim::GpuConfig::gtx285();
  cfg.num_sms = 2;

  auto hit_rate_for = [&](std::uint32_t count) {
    workload::ExtractConfig ec;
    ec.count = count;
    const ac::Dfa dfa = ac::build_dfa(workload::extract_patterns(corpus, ec), 8);
    gpusim::DeviceMemory mem(128 << 20);
    const kernels::DeviceDfa ddfa(mem, dfa);
    const auto text_addr = kernels::upload_text(mem, corpus);
    kernels::AcLaunchSpec spec;
    spec.approach = kernels::Approach::kShared;
    spec.sim.mode = gpusim::SimMode::Timed;
    const auto out =
        kernels::run_ac_kernel(cfg, mem, ddfa, text_addr, corpus.size(), spec);
    return out.sim.metrics.tex_hit_rate();
  };

  const double small = hit_rate_for(20);
  const double large = hit_rate_for(2000);
  EXPECT_GT(small, large);
  EXPECT_GT(small, 0.9);
}

}  // namespace
}  // namespace acgpu
