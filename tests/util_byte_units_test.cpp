#include "util/byte_units.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace acgpu {
namespace {

TEST(FormatBytes, ExactUnits) {
  EXPECT_EQ(format_bytes(0), "0B");
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(50 * kKiB), "50KB");
  EXPECT_EQ(format_bytes(200 * kMiB), "200MB");
  EXPECT_EQ(format_bytes(kGiB), "1GB");
}

TEST(FormatBytes, FractionalUnits) {
  EXPECT_EQ(format_bytes(1536), "1.5KB");
  EXPECT_EQ(format_bytes(kMiB + kMiB / 2), "1.5MB");
}

TEST(ParseBytes, PlainAndUnits) {
  EXPECT_EQ(parse_bytes("123"), 123u);
  EXPECT_EQ(parse_bytes("50KB"), 50 * kKiB);
  EXPECT_EQ(parse_bytes("200MB"), 200 * kMiB);
  EXPECT_EQ(parse_bytes("1GB"), kGiB);
  EXPECT_EQ(parse_bytes("2G"), 2 * kGiB);
}

TEST(ParseBytes, CaseAndWhitespaceInsensitive) {
  EXPECT_EQ(parse_bytes("50kb"), 50 * kKiB);
  EXPECT_EQ(parse_bytes("50 KB"), 50 * kKiB);
  EXPECT_EQ(parse_bytes("1 MiB"), kMiB);
}

TEST(ParseBytes, FractionalValues) {
  EXPECT_EQ(parse_bytes("0.5KB"), 512u);
  EXPECT_EQ(parse_bytes("1.5MB"), kMiB + kMiB / 2);
}

TEST(ParseBytes, RoundTripsFormat) {
  for (std::uint64_t v :
       {std::uint64_t{1}, std::uint64_t{512}, 50 * kKiB, 3 * kMiB, 200 * kMiB, kGiB})
    EXPECT_EQ(parse_bytes(format_bytes(v)), v);
}

TEST(ParseBytes, RejectsJunk) {
  EXPECT_THROW(parse_bytes(""), Error);
  EXPECT_THROW(parse_bytes("abc"), Error);
  EXPECT_THROW(parse_bytes("5XB"), Error);
}

TEST(ToGbps, MatchesHandComputation) {
  // 200 MB in 0.0132s ~ the paper's 127 Gbps headline point.
  const double gbps = to_gbps(200 * kMiB, 0.01321);
  EXPECT_NEAR(gbps, 127.0, 1.0);
}

TEST(ToGbps, RejectsNonPositiveTime) {
  EXPECT_THROW(to_gbps(100, 0.0), Error);
  EXPECT_THROW(to_gbps(100, -1.0), Error);
}

TEST(FormatGbps, PrecisionByMagnitude) {
  EXPECT_EQ(format_gbps(127.3), "127");
  EXPECT_EQ(format_gbps(12.34), "12.3");
  EXPECT_EQ(format_gbps(0.5678), "0.568");
}

TEST(FormatSeconds, AdaptiveUnits) {
  EXPECT_EQ(format_seconds(0.0000005), "0us");
  EXPECT_EQ(format_seconds(0.000831), "831us");
  EXPECT_EQ(format_seconds(0.0124), "12.40ms");
  EXPECT_EQ(format_seconds(3.02), "3.02s");
}

}  // namespace
}  // namespace acgpu
