#include "ac/trie.h"

#include <gtest/gtest.h>

namespace acgpu::ac {
namespace {

// The paper's running example. Inserted in this order, the node numbering
// matches Fig. 1: h->1, he->2, s->3, sh->4, she->5, hi->6, his->7, her->8,
// hers->9.
Trie paper_trie() {
  return Trie(PatternSet({"he", "she", "his", "hers"}));
}

TEST(Trie, PaperExampleNodeCount) {
  EXPECT_EQ(paper_trie().node_count(), 10u);
}

TEST(Trie, PaperExampleStructure) {
  Trie t = paper_trie();
  EXPECT_EQ(t.child(0, 'h'), 1);
  EXPECT_EQ(t.child(1, 'e'), 2);
  EXPECT_EQ(t.child(0, 's'), 3);
  EXPECT_EQ(t.child(3, 'h'), 4);
  EXPECT_EQ(t.child(4, 'e'), 5);
  EXPECT_EQ(t.child(1, 'i'), 6);
  EXPECT_EQ(t.child(6, 's'), 7);
  EXPECT_EQ(t.child(2, 'r'), 8);
  EXPECT_EQ(t.child(8, 's'), 9);
}

TEST(Trie, AbsentEdgesReturnNoChild) {
  Trie t = paper_trie();
  EXPECT_EQ(t.child(0, 'x'), Trie::kNoChild);
  EXPECT_EQ(t.child(1, 'h'), Trie::kNoChild);
  EXPECT_EQ(t.child(9, 's'), Trie::kNoChild);
}

TEST(Trie, TerminalsMarkPatternEnds) {
  Trie t = paper_trie();
  EXPECT_EQ(t.terminal_patterns(2), (std::vector<std::int32_t>{0}));  // he
  EXPECT_EQ(t.terminal_patterns(5), (std::vector<std::int32_t>{1}));  // she
  EXPECT_EQ(t.terminal_patterns(7), (std::vector<std::int32_t>{2}));  // his
  EXPECT_EQ(t.terminal_patterns(9), (std::vector<std::int32_t>{3}));  // hers
  EXPECT_TRUE(t.terminal_patterns(0).empty());
  EXPECT_TRUE(t.terminal_patterns(1).empty());
}

TEST(Trie, DepthEqualsStringLength) {
  Trie t = paper_trie();
  EXPECT_EQ(t.depth(0), 0u);
  EXPECT_EQ(t.depth(1), 1u);
  EXPECT_EQ(t.depth(2), 2u);
  EXPECT_EQ(t.depth(5), 3u);
  EXPECT_EQ(t.depth(9), 4u);
}

TEST(Trie, SharedPrefixesShareNodes) {
  Trie t(PatternSet({"abcde", "abcxy", "abc"}));
  // Root + abc (3 nodes) + de (2) + xy (2) = 8.
  EXPECT_EQ(t.node_count(), 8u);
}

TEST(Trie, DuplicateTerminalIdsWhenNoDedup) {
  Trie t(PatternSet({"ab", "ab"}, /*dedup=*/false));
  EXPECT_EQ(t.terminal_patterns(t.child(t.child(0, 'a'), 'b')),
            (std::vector<std::int32_t>{0, 1}));
}

TEST(Trie, SingleCharPatterns) {
  Trie t(PatternSet({"a", "b"}));
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_EQ(t.terminal_patterns(t.child(0, 'a')), (std::vector<std::int32_t>{0}));
}

TEST(Trie, BinaryAlphabetEdges) {
  PatternSet set({std::string("\x00\xff", 2)}, true);
  Trie t(set);
  const State s1 = t.child(0, 0x00);
  ASSERT_NE(s1, Trie::kNoChild);
  EXPECT_NE(t.child(s1, 0xff), Trie::kNoChild);
}

TEST(Trie, ChildrenMapExposesAllEdges) {
  Trie t = paper_trie();
  EXPECT_EQ(t.children(0).size(), 2u);  // h, s
  EXPECT_EQ(t.children(1).size(), 2u);  // e, i
  EXPECT_EQ(t.children(9).size(), 0u);
}

}  // namespace
}  // namespace acgpu::ac
