#include "ac/parallel_matcher.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ac/chunking.h"
#include "ac/serial_matcher.h"
#include "workload/markov_corpus.h"
#include "workload/pattern_extract.h"

namespace acgpu::ac {
namespace {

Dfa corpus_dfa(const std::string& corpus, std::uint32_t count) {
  workload::ExtractConfig ec;
  ec.count = count;
  return build_dfa(workload::extract_patterns(corpus, ec));
}

TEST(ParallelMatcher, EqualsSerialOnPaperExample) {
  const Dfa dfa = build_dfa(PatternSet({"he", "she", "his", "hers"}));
  const std::string text = "ushers heard his sheep; she ushers hers";
  auto expect = find_all(dfa, text);
  std::sort(expect.begin(), expect.end());
  for (unsigned threads : {1u, 2u, 3u, 7u})
    EXPECT_EQ(find_all_parallel(dfa, text, threads), expect) << threads << " threads";
}

TEST(ParallelMatcher, EqualsSerialOnCorpus) {
  const std::string corpus = workload::make_corpus(200000, 31);
  const Dfa dfa = corpus_dfa(corpus, 200);
  auto expect = find_all(dfa, corpus);
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(find_all_parallel(dfa, corpus, 4), expect);
}

TEST(ParallelMatcher, BoundarySpanningMatches) {
  // Worker spans split the text; patterns planted across every split for
  // 1..8 workers of a 1000-byte text must still be found exactly once.
  const Dfa dfa = build_dfa(PatternSet({"boundary"}));
  std::string text(1000, 'x');
  for (std::size_t pos : {121ul, 248ul, 330ul, 496ul, 662ul, 871ul})
    text.replace(pos, 8, "boundary");
  auto expect = find_all(dfa, text);
  ASSERT_EQ(expect.size(), 6u);
  for (unsigned threads = 1; threads <= 8; ++threads)
    EXPECT_EQ(find_all_parallel(dfa, text, threads), expect) << threads;
}

TEST(ParallelMatcher, MoreWorkersThanBytes) {
  const Dfa dfa = build_dfa(PatternSet({"ab"}));
  EXPECT_EQ(find_all_parallel(dfa, "ab", 16).size(), 1u);
}

TEST(ParallelMatcher, EmptyText) {
  const Dfa dfa = build_dfa(PatternSet({"ab"}));
  EXPECT_TRUE(find_all_parallel(dfa, "", 4).empty());
  EXPECT_EQ(count_matches_parallel(dfa, "", 4), 0u);
}

TEST(ParallelMatcher, CountAgreesWithFindAll) {
  const std::string corpus = workload::make_corpus(100000, 32);
  const Dfa dfa = corpus_dfa(corpus, 100);
  EXPECT_EQ(count_matches_parallel(dfa, corpus, 3),
            find_all_parallel(dfa, corpus, 3).size());
  EXPECT_EQ(count_matches_parallel(dfa, corpus, 3), count_matches(dfa, corpus));
}

TEST(ParallelMatcher, ZeroMeansHardwareConcurrency) {
  const Dfa dfa = build_dfa(PatternSet({"the"}));
  const std::string corpus = workload::make_corpus(50000, 33);
  EXPECT_EQ(find_all_parallel(dfa, corpus, 0).size(), count_matches(dfa, corpus));
}

TEST(ParallelMatcher, ThreadCountBySizeMatrix) {
  // The conformance matrix from the decomposition spec: thread counts
  // {1, 2, 7, 64} crossed with texts smaller than one chunk, exactly one
  // chunk, and chunk+overlap-1 bytes. The worker span is ceil(size/threads),
  // so with 64 threads most workers idle on these texts; with 7 the spans
  // land at awkward non-power-of-two offsets. maxlen=8 -> overlap=7, and the
  // repeated-"abcdefgh" filler plants a suffix chain across every possible
  // span boundary.
  const Dfa dfa = build_dfa(PatternSet({"abcdefgh", "fgh", "h"}));
  constexpr std::size_t kChunk = 32;
  const std::uint32_t overlap = required_overlap(dfa.max_pattern_length());
  ASSERT_EQ(overlap, 7u);
  std::string filler;
  while (filler.size() < kChunk + overlap) filler += "abcdefgh";
  for (std::size_t size : {kChunk - 1, kChunk, kChunk + overlap - 1}) {
    const std::string text = filler.substr(0, size);
    auto expect = find_all(dfa, text);
    std::sort(expect.begin(), expect.end());
    ASSERT_FALSE(expect.empty());
    for (unsigned threads : {1u, 2u, 7u, 64u}) {
      EXPECT_EQ(find_all_parallel(dfa, text, threads), expect)
          << size << " bytes, " << threads << " threads";
      EXPECT_EQ(count_matches_parallel(dfa, text, threads), expect.size())
          << size << " bytes, " << threads << " threads";
    }
  }
}

TEST(ParallelMatcher, SixtyFourThreadsOnTinyTexts) {
  // Heavily oversubscribed: every text byte gets its own worker (or less).
  const Dfa dfa = build_dfa(PatternSet({"ab", "b"}));
  for (std::size_t size : {1ul, 2ul, 3ul, 63ul}) {
    std::string text;
    while (text.size() < size) text += "ab";
    text.resize(size);
    auto expect = find_all(dfa, text);
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(find_all_parallel(dfa, text, 64), expect) << size << " bytes";
  }
}

TEST(ParallelMatcher, DenseOverlappingMatches) {
  const Dfa dfa = build_dfa(PatternSet({"aa", "aaa", "a"}));
  const std::string text(513, 'a');
  auto expect = find_all(dfa, text);
  std::sort(expect.begin(), expect.end());
  for (unsigned threads : {1u, 4u, 9u})
    EXPECT_EQ(find_all_parallel(dfa, text, threads), expect);
}

}  // namespace
}  // namespace acgpu::ac
