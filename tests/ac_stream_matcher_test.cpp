#include "ac/stream_matcher.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ac/serial_matcher.h"
#include "util/rng.h"
#include "workload/markov_corpus.h"

namespace acgpu::ac {
namespace {

Dfa paper_dfa() { return build_dfa(PatternSet({"he", "she", "his", "hers"})); }

std::vector<Match> feed_in_slices(const Dfa& dfa, std::string_view text,
                                  std::size_t slice) {
  StreamMatcher matcher(dfa);
  CollectSink sink;
  for (std::size_t pos = 0; pos < text.size(); pos += slice)
    matcher.feed(text.substr(pos, std::min(slice, text.size() - pos)), sink);
  return std::move(sink.matches());
}

TEST(StreamMatcher, SingleFeedEqualsSerial) {
  const Dfa dfa = paper_dfa();
  const std::string text = "ushers heard his sheep";
  EXPECT_EQ(feed_in_slices(dfa, text, text.size()), find_all(dfa, text));
}

TEST(StreamMatcher, MatchStraddlingFeedBoundary) {
  const Dfa dfa = paper_dfa();
  StreamMatcher matcher(dfa);
  CollectSink sink;
  matcher.feed("us", sink);
  matcher.feed("he", sink);  // "she"/"he" straddle the boundary
  matcher.feed("rs", sink);  // "hers" completes here
  ASSERT_EQ(sink.matches().size(), 3u);
  EXPECT_EQ(sink.matches()[0].end, 3u);
  EXPECT_EQ(sink.matches()[2].end, 5u);
}

TEST(StreamMatcher, EverySliceSizeEqualsSerial) {
  const Dfa dfa = paper_dfa();
  const std::string text = workload::make_corpus(4000, 5) + " ushers hers his";
  const auto expect = find_all(dfa, text);
  for (std::size_t slice : {1ul, 2ul, 3ul, 7ul, 64ul, 1000ul})
    EXPECT_EQ(feed_in_slices(dfa, text, slice), expect) << "slice " << slice;
}

TEST(StreamMatcher, TracksConsumedBytes) {
  const Dfa dfa = paper_dfa();
  StreamMatcher matcher(dfa);
  CountSink sink;
  matcher.feed("abc", sink);
  matcher.feed("defgh", sink);
  EXPECT_EQ(matcher.bytes_consumed(), 8u);
}

TEST(StreamMatcher, StateCarriesAcrossFeeds) {
  const Dfa dfa = paper_dfa();
  StreamMatcher matcher(dfa);
  CountSink sink;
  matcher.feed("sh", sink);
  EXPECT_NE(matcher.state(), 0);  // mid-pattern
}

TEST(StreamMatcher, ResetForgetsHistory) {
  const Dfa dfa = paper_dfa();
  StreamMatcher matcher(dfa);
  CollectSink sink;
  matcher.feed("sh", sink);
  matcher.reset();
  EXPECT_EQ(matcher.state(), 0);
  EXPECT_EQ(matcher.bytes_consumed(), 0u);
  matcher.feed("e", sink);  // does NOT complete "she": history was dropped
  EXPECT_TRUE(sink.matches().empty());
}

TEST(StreamMatcher, EmptyFeedIsNoop) {
  const Dfa dfa = paper_dfa();
  StreamMatcher matcher(dfa);
  CountSink sink;
  matcher.feed("sh", sink);
  const auto state = matcher.state();
  matcher.feed("", sink);
  EXPECT_EQ(matcher.state(), state);
  EXPECT_EQ(matcher.bytes_consumed(), 2u);
}

TEST(StreamMatcher, RandomisedSliceFuzz) {
  Rng rng(77);
  const Dfa dfa = build_dfa(PatternSet({"ab", "aba", "bb", "aaab"}));
  for (int round = 0; round < 10; ++round) {
    std::string text;
    for (int i = 0; i < 600; ++i)
      text.push_back(rng.next_bool(0.5) ? 'a' : 'b');
    const auto expect = find_all(dfa, text);
    StreamMatcher matcher(dfa);
    CollectSink sink;
    std::size_t pos = 0;
    while (pos < text.size()) {
      const std::size_t n =
          std::min<std::size_t>(text.size() - pos, 1 + rng.next_below(37));
      matcher.feed(std::string_view(text).substr(pos, n), sink);
      pos += n;
    }
    EXPECT_EQ(sink.matches(), expect) << "round " << round;
  }
}

}  // namespace
}  // namespace acgpu::ac
