// HealthMonitor: the SLO state machine — abstention below min_samples,
// degraded/unhealthy trips per dimension, recovery as the window slides,
// tumbling eviction windows, transition listeners, and the health.<k>.*
// gauge mirror.
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/health.h"
#include "telemetry/metrics_registry.h"

namespace acgpu::telemetry {
namespace {

SloPolicy error_rate_policy() {
  SloPolicy p;
  p.error_rate = {0.1, 0.5};
  p.window = 16;
  p.min_samples = 8;
  return p;
}

TEST(HealthMonitorTest, StartsOkAndAbstainsBelowMinSamples) {
  HealthMonitor mon(1, error_rate_policy());
  EXPECT_EQ(mon.state(0), HealthState::kOk);
  // 4 outright failures — but only 4 of min_samples 8, so no verdict yet:
  // a cold shard is unknown, not unhealthy.
  for (int i = 0; i < 4; ++i) mon.observe_feed(0, 1000, /*ok=*/false);
  EXPECT_EQ(mon.evaluate(0), HealthState::kOk);
  EXPECT_EQ(mon.shard_health(0).window_samples, 4u);
}

TEST(HealthMonitorTest, ErrorRateTripsDegradedThenUnhealthy) {
  HealthMonitor mon(1, error_rate_policy());
  // 8 samples, 2 errors: 25% > the 10% degraded line, under the 50% one.
  for (int i = 0; i < 6; ++i) mon.observe_feed(0, 1000, true);
  for (int i = 0; i < 2; ++i) mon.observe_feed(0, 1000, false);
  EXPECT_EQ(mon.evaluate(0), HealthState::kDegraded);
  ShardHealth h = mon.shard_health(0);
  EXPECT_DOUBLE_EQ(h.error_rate, 0.25);
  EXPECT_EQ(h.breaches, 1u);
  EXPECT_EQ(h.breached, "error_rate");

  // 6 more errors: 8/14 = 57% > 50% -> unhealthy, breaches bumps again.
  for (int i = 0; i < 6; ++i) mon.observe_feed(0, 1000, false);
  EXPECT_EQ(mon.evaluate(0), HealthState::kUnhealthy);
  EXPECT_EQ(mon.shard_health(0).breaches, 2u);
}

TEST(HealthMonitorTest, RecoversAsTheWindowSlides) {
  HealthMonitor mon(1, error_rate_policy());
  for (int i = 0; i < 8; ++i) mon.observe_feed(0, 1000, false);
  EXPECT_EQ(mon.evaluate(0), HealthState::kUnhealthy);
  // 16 clean feeds push every error out of the 16-deep window.
  for (int i = 0; i < 16; ++i) mon.observe_feed(0, 1000, true);
  EXPECT_EQ(mon.evaluate(0), HealthState::kOk);
  // Recovery is not a breach: the count only moves on worsening.
  EXPECT_EQ(mon.shard_health(0).breaches, 1u);
}

TEST(HealthMonitorTest, QueueDepthJudgesWithoutWarmup) {
  SloPolicy p;
  p.queue_depth = {10, 100};
  HealthMonitor mon(2, p);
  // Zero feeds observed — the queue gauge still judges immediately.
  mon.observe_queue_depth(0, 50);
  EXPECT_EQ(mon.evaluate(0), HealthState::kDegraded);
  mon.observe_queue_depth(0, 500);
  EXPECT_EQ(mon.evaluate(0), HealthState::kUnhealthy);
  mon.observe_queue_depth(0, 0);
  EXPECT_EQ(mon.evaluate(0), HealthState::kOk);
  EXPECT_EQ(mon.evaluate(1), HealthState::kOk);  // untouched shard
}

TEST(HealthMonitorTest, LatencyPercentilesTrip) {
  SloPolicy p;
  p.feed_p99_ns = {1e6, 1e9};
  p.window = 16;
  p.min_samples = 8;
  HealthMonitor mon(1, p);
  for (int i = 0; i < 8; ++i) mon.observe_feed(0, 2e6, true);  // p99 = 2 ms
  EXPECT_EQ(mon.evaluate(0), HealthState::kDegraded);
  EXPECT_EQ(mon.shard_health(0).breached, "feed_p99_ns");
  EXPECT_GE(mon.shard_health(0).feed_p99_ns, 1e6);
}

TEST(HealthMonitorTest, EvictionRateUsesTumblingWindows) {
  SloPolicy p;
  p.eviction_rate = {0.1, 1.0};
  p.window = 4;
  p.min_samples = 2;
  HealthMonitor mon(1, p);
  mon.observe_eviction(0, 2);
  // Mid-window: the current tumble has not closed, nothing to judge yet.
  for (int i = 0; i < 3; ++i) mon.observe_feed(0, 1000, true);
  EXPECT_EQ(mon.evaluate(0), HealthState::kOk);
  // The 4th feed closes the tumble: 2 evictions / 4 feeds = 0.5 > 0.1.
  mon.observe_feed(0, 1000, true);
  EXPECT_EQ(mon.evaluate(0), HealthState::kDegraded);
  EXPECT_DOUBLE_EQ(mon.shard_health(0).eviction_rate, 0.5);
}

TEST(HealthMonitorTest, WorstBreachedDimensionWins) {
  SloPolicy p;
  p.error_rate = {0.1, 0.5};     // will breach degraded
  p.queue_depth = {10, 100};     // will breach unhealthy
  p.window = 16;
  p.min_samples = 4;
  HealthMonitor mon(1, p);
  for (int i = 0; i < 3; ++i) mon.observe_feed(0, 1000, true);
  mon.observe_feed(0, 1000, false);  // 25% errors -> degraded tier
  mon.observe_queue_depth(0, 500);   // -> unhealthy tier
  EXPECT_EQ(mon.evaluate(0), HealthState::kUnhealthy);
  const ShardHealth h = mon.shard_health(0);
  EXPECT_NE(h.breached.find("error_rate"), std::string::npos);
  EXPECT_NE(h.breached.find("queue_depth"), std::string::npos);
}

TEST(HealthMonitorTest, TransitionListenerFiresOutsideTheLock) {
  struct Transition {
    std::uint32_t shard;
    HealthState from, to;
  };
  std::vector<Transition> seen;
  HealthMonitor mon(1, error_rate_policy());
  mon.set_transition_listener(
      [&](std::uint32_t shard, HealthState from, HealthState to) {
        // Re-entering the monitor proves the listener runs lock-free.
        (void)mon.shard_health(shard);
        seen.push_back({shard, from, to});
      });
  for (int i = 0; i < 8; ++i) mon.observe_feed(0, 1000, false);
  mon.evaluate(0);
  mon.evaluate(0);  // no change: must not re-fire
  for (int i = 0; i < 16; ++i) mon.observe_feed(0, 1000, true);
  mon.evaluate(0);

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].from, HealthState::kOk);
  EXPECT_EQ(seen[0].to, HealthState::kUnhealthy);
  EXPECT_EQ(seen[1].from, HealthState::kUnhealthy);
  EXPECT_EQ(seen[1].to, HealthState::kOk);
}

TEST(HealthMonitorTest, PublishesHealthGauges) {
  MetricsRegistry registry;
  HealthMonitor mon(2, error_rate_policy(), &registry);
  for (int i = 0; i < 8; ++i) mon.observe_feed(1, 1000, false);
  mon.evaluate(0);
  mon.evaluate(1);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value("health.0.state"), 0.0);
  EXPECT_EQ(snap.value("health.1.state"),
            static_cast<double>(HealthState::kUnhealthy));
  EXPECT_EQ(snap.value("health.1.error_rate"), 1.0);
  EXPECT_EQ(snap.value("health.1.breaches"), 1.0);
}

TEST(HealthMonitorTest, ServingDefaultsEnableAndBlankPolicyDisables) {
  EXPECT_TRUE(SloPolicy::serving_defaults().enabled());
  EXPECT_FALSE(SloPolicy{}.enabled());
  EXPECT_FALSE(SloTarget{}.enforced());
}

TEST(HealthMonitorTest, StateNames) {
  EXPECT_STREQ(to_string(HealthState::kOk), "ok");
  EXPECT_STREQ(to_string(HealthState::kDegraded), "degraded");
  EXPECT_STREQ(to_string(HealthState::kUnhealthy), "unhealthy");
}

}  // namespace
}  // namespace acgpu::telemetry
