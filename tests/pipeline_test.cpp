// MatchPipeline: batch-boundary stitching against the serial oracle, plus
// the Engine facade and the pipeline's timing/backpressure accounting.
#include "pipeline/pipeline.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ac/serial_matcher.h"
#include "pipeline/engine.h"
#include "util/rng.h"

namespace acgpu::pipeline {
namespace {

gpusim::GpuConfig small_gpu() {
  gpusim::GpuConfig cfg = gpusim::GpuConfig::gtx285();
  cfg.num_sms = 4;  // keeps Functional runs fast; model behaviour unchanged
  return cfg;
}

std::string random_text(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::string text(n, '\0');
  for (char& c : text) c = static_cast<char>('a' + rng.next_below(4));
  return text;
}

/// Runs text through a pipeline built from `patterns` and checks the matches
/// against the serial reference.
void expect_conforms(const std::vector<std::string>& pattern_strings,
                     const std::string& text, PipelineOptions opt) {
  const ac::PatternSet patterns(pattern_strings);
  const ac::Dfa dfa = ac::build_dfa(patterns, 8);
  const std::vector<ac::Match> expected = ac::find_all(dfa, text);

  gpusim::DeviceMemory mem(64u << 20);
  opt.mode = gpusim::SimMode::Functional;
  Result<PipelineResult> got = [&] {
    if (opt.variant == KernelVariant::kPfac) {
      ac::PfacAutomaton pfac(patterns);
      kernels::DevicePfac dpfac(mem, pfac);
      return MatchPipeline(small_gpu(), mem, dpfac, opt).run(text);
    }
    kernels::DeviceDfa ddfa(mem, dfa);
    return MatchPipeline(small_gpu(), mem, ddfa, opt).run(text);
  }();
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_FALSE(got.value().overflowed);
  EXPECT_EQ(got.value().matches, expected);
}

TEST(PipelineStitching, MatchesSpanningTwoBatches) {
  // "spanner" straddles the byte-1024 boundary at every offset.
  const std::string needle = "spanner";
  for (std::size_t cut = 1; cut < needle.size(); ++cut) {
    std::string text = random_text(2048, 7 + cut);
    text.replace(1024 - cut, needle.size(), needle);
    PipelineOptions opt;
    opt.batch_bytes = 1024;
    opt.streams = 2;
    expect_conforms({needle, "zzz"}, text, opt);
  }
}

TEST(PipelineStitching, OverlapWindowMatchesReportedOnce) {
  // A match entirely inside the overlap carry is seen by both the tail of
  // batch 0's slice and the head of batch 1 — the ownership rule must keep
  // exactly one copy.
  std::string text = random_text(512, 3);
  text.replace(256, 2, "ab");  // batch_bytes=256 -> "ab" starts batch 1
  text.replace(254, 2, "ab");  // spans the boundary
  PipelineOptions opt;
  opt.batch_bytes = 256;
  expect_conforms({"ab", "abab"}, text, opt);
}

TEST(PipelineStitching, TextExactMultipleOfBatchLeavesNoTrailingBatch) {
  PipelineOptions opt;
  opt.batch_bytes = 512;
  const std::string text = random_text(2048, 11);  // 4 exact batches
  expect_conforms({"aa", "abc"}, text, opt);

  gpusim::DeviceMemory mem(16u << 20);
  const ac::PatternSet patterns({std::string("aa")});
  const ac::Dfa dfa = ac::build_dfa(patterns, 8);
  kernels::DeviceDfa ddfa(mem, dfa);
  auto got = MatchPipeline(small_gpu(), mem, ddfa, opt).run(text);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().stats.batches, 4u);  // not 5
}

TEST(PipelineStitching, MatchEndingExactlyOnBatchBoundaryReportedOnce) {
  // "edge" occupies bytes 252..255 with batch_bytes=256: its last byte is
  // the batch's last byte, and the overlap carry re-scans those bytes at
  // the head of batch 1 — the ownership rule must keep exactly one copy.
  std::string text = random_text(512, 17);
  text.replace(252, 4, "edge");
  PipelineOptions opt;
  opt.batch_bytes = 256;
  expect_conforms({"edge"}, text, opt);
}

TEST(PipelineStitching, MatchStartingExactlyOnBatchBoundaryReportedOnce) {
  // "edge" starts at byte 256 — the first byte batch 1 owns — but the
  // overlap carry means batch 1's slice starts earlier; the match must be
  // credited to batch 1 exactly once.
  std::string text = random_text(512, 19);
  text.replace(256, 4, "edge");
  PipelineOptions opt;
  opt.batch_bytes = 256;
  expect_conforms({"edge"}, text, opt);
}

TEST(PipelineStitching, BoundaryExactMatchesAcrossEveryCutOffset) {
  // Slide a pattern across a batch boundary byte by byte so it ends on the
  // boundary, starts on it, and straddles it at every interior offset.
  const std::string needle = "abcd";
  for (std::size_t start = 248; start <= 256; ++start) {
    std::string text = random_text(512, 23 + start);
    text.replace(start, needle.size(), needle);
    PipelineOptions opt;
    opt.batch_bytes = 256;
    expect_conforms({needle}, text, opt);
  }
}

TEST(PipelineStitching, SingleByteBatches) {
  PipelineOptions opt;
  opt.batch_bytes = 1;  // pathological: every byte is its own batch
  opt.streams = 2;
  expect_conforms({"ab", "ba", "aab"}, random_text(48, 13), opt);
}

TEST(PipelineStitching, BatchLargerThanText) {
  PipelineOptions opt;
  opt.batch_bytes = 1u << 20;
  expect_conforms({"ab", "ca"}, random_text(300, 17), opt);
}

TEST(PipelineStitching, GlobalOnlyVariant) {
  PipelineOptions opt;
  opt.variant = KernelVariant::kGlobalOnly;
  opt.batch_bytes = 777;  // unaligned boundary
  expect_conforms({"ab", "bca"}, random_text(3000, 19), opt);
}

TEST(PipelineStitching, PfacVariant) {
  PipelineOptions opt;
  opt.variant = KernelVariant::kPfac;
  opt.batch_bytes = 400;
  expect_conforms({"ab", "abab", "ba"}, random_text(1500, 23), opt);
}

TEST(PipelineStitching, StreamCountDoesNotChangeMatches) {
  const std::string text = random_text(4000, 29);
  for (std::uint32_t streams : {1u, 2u, 4u}) {
    PipelineOptions opt;
    opt.batch_bytes = 600;
    opt.streams = streams;
    expect_conforms({"aba", "cc", "abcd"}, text, opt);
  }
}

TEST(Pipeline, EmptyTextSucceedsEmpty) {
  gpusim::DeviceMemory mem(16u << 20);
  const ac::PatternSet patterns({std::string("ab")});
  const ac::Dfa dfa = ac::build_dfa(patterns, 8);
  kernels::DeviceDfa ddfa(mem, dfa);
  auto got = MatchPipeline(small_gpu(), mem, ddfa, {}).run("");
  ASSERT_TRUE(got.is_ok());
  EXPECT_TRUE(got.value().matches.empty());
  EXPECT_EQ(got.value().stats.batches, 0u);
}

TEST(Pipeline, InvalidOptionsReportStatusNotThrow) {
  gpusim::DeviceMemory mem(16u << 20);
  const ac::PatternSet patterns({std::string("ab")});
  const ac::Dfa dfa = ac::build_dfa(patterns, 8);
  kernels::DeviceDfa ddfa(mem, dfa);

  PipelineOptions opt;
  opt.streams = 0;
  auto got = MatchPipeline(small_gpu(), mem, ddfa, opt).run("abc");
  ASSERT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);

  opt = {};
  opt.chunk_bytes = 6;  // not a multiple of 4
  got = MatchPipeline(small_gpu(), mem, ddfa, opt).run("abc");
  ASSERT_FALSE(got.is_ok());

  opt = {};
  opt.variant = KernelVariant::kPfac;  // but constructed with a DFA
  got = MatchPipeline(small_gpu(), mem, ddfa, opt).run("abc");
  ASSERT_FALSE(got.is_ok());
}

TEST(Pipeline, DeviceBudgetTooSmallReportsCapacity) {
  gpusim::DeviceMemory mem(1 << 20);
  const ac::PatternSet patterns({std::string("ab")});
  const ac::Dfa dfa = ac::build_dfa(patterns, 8);
  kernels::DeviceDfa ddfa(mem, dfa);
  PipelineOptions opt;
  opt.batch_bytes = 8u << 20;  // slot buffers alone exceed the 1 MB device
  auto got = MatchPipeline(small_gpu(), mem, ddfa, opt).run(
      random_text(9u << 20, 31));
  ASSERT_FALSE(got.is_ok());
}

TEST(Pipeline, TimelineShowsOverlapWithTwoStreams) {
  gpusim::DeviceMemory mem(64u << 20);
  const ac::PatternSet patterns({std::string("ab")});
  const ac::Dfa dfa = ac::build_dfa(patterns, 8);
  kernels::DeviceDfa ddfa(mem, dfa);

  PipelineOptions opt;
  opt.batch_bytes = 4096;
  opt.streams = 2;
  auto got = MatchPipeline(small_gpu(), mem, ddfa, opt).run(random_text(1 << 16, 37));
  ASSERT_TRUE(got.is_ok());
  const PipelineStats& st = got.value().stats;
  EXPECT_EQ(st.batches, 16u);
  EXPECT_GT(st.makespan_seconds, 0);
  EXPECT_GE(st.staged_bytes, st.input_bytes);
  EXPECT_GT(st.overlap_seconds, 0);  // some copy hid under some kernel
  EXPECT_GE(st.overlap_ratio, 0);
  EXPECT_LE(st.overlap_ratio, 1.0 + 1e-9);
  EXPECT_GE(st.latency_p99_seconds, st.latency_p50_seconds);
  // Timeline carries all three op kinds, one triple per batch.
  EXPECT_EQ(got.value().timeline.size(), 3 * 16u);
}

TEST(Pipeline, StreamsClampToPoolDepthAndSaySo) {
  gpusim::DeviceMemory mem(64u << 20);
  const ac::PatternSet patterns({std::string("ab")});
  const ac::Dfa dfa = ac::build_dfa(patterns, 8);
  kernels::DeviceDfa ddfa(mem, dfa);
  const std::string text = random_text(1 << 16, 41);

  // A pool of 2 buffers can feed at most 2 lanes: 4 requested streams clamp.
  PipelineOptions opt;
  opt.batch_bytes = 2048;
  opt.streams = 4;
  opt.pool_depth = 2;
  auto clamped = MatchPipeline(small_gpu(), mem, ddfa, opt).run(text);
  ASSERT_TRUE(clamped.is_ok());
  EXPECT_TRUE(clamped.value().stats.streams_clamped);
  EXPECT_EQ(clamped.value().stats.effective_streams, 2u);
  EXPECT_EQ(clamped.value().stats.pool_depth, 2u);
  for (const BatchTrace& b : clamped.value().batches) {
    EXPECT_LT(b.stream, 2u);  // no batch ran on a lane the pool cannot feed
    EXPECT_GE(b.complete_seconds, b.submit_seconds);
  }

  // The clamped run IS the 2-stream run — same simulated makespan, not a
  // silently degraded in-between.
  opt.streams = 2;
  auto two = MatchPipeline(small_gpu(), mem, ddfa, opt).run(text);
  ASSERT_TRUE(two.is_ok());
  EXPECT_FALSE(two.value().stats.streams_clamped);
  EXPECT_DOUBLE_EQ(two.value().stats.makespan_seconds,
                   clamped.value().stats.makespan_seconds);

  // With an auto-sized pool (2x streams) nothing clamps and the upload
  // stage never waits: each lane always finds a drained slice buffer.
  opt.streams = 4;
  opt.pool_depth = 0;
  auto deep = MatchPipeline(small_gpu(), mem, ddfa, opt).run(text);
  ASSERT_TRUE(deep.is_ok());
  EXPECT_FALSE(deep.value().stats.streams_clamped);
  EXPECT_EQ(deep.value().stats.effective_streams, 4u);
  EXPECT_EQ(deep.value().stats.pool_depth, 8u);
  EXPECT_DOUBLE_EQ(deep.value().stats.blocked_seconds, 0);
}

TEST(Pipeline, MakespanIsMonotonicInStreams) {
  // The historical plateau bug: streams=4 produced a byte-identical timeline
  // to streams=2 because the fixed double-buffer held each slot until D2H
  // end. With the staging pool + split readback, overlap must strictly beat
  // serial staging, and extra lanes must never be slower. (The strict
  // streams=4 < streams=2 separation is a bench-regime property — the
  // 8000-pattern gate in bench/check_regression enforces it.)
  gpusim::DeviceMemory mem(128u << 20);
  const ac::PatternSet patterns({std::string("ab"), std::string("cde")});
  const ac::Dfa dfa = ac::build_dfa(patterns, 8);
  kernels::DeviceDfa ddfa(mem, dfa);
  const std::string text = random_text(8u << 20, 53);

  PipelineOptions opt;
  opt.batch_bytes = 256u << 10;
  opt.mode = gpusim::SimMode::Timed;

  opt.streams = 1;
  auto one = MatchPipeline(small_gpu(), mem, ddfa, opt).run(text);
  ASSERT_TRUE(one.is_ok());
  opt.streams = 2;
  auto two = MatchPipeline(small_gpu(), mem, ddfa, opt).run(text);
  ASSERT_TRUE(two.is_ok());
  opt.streams = 4;
  auto four = MatchPipeline(small_gpu(), mem, ddfa, opt).run(text);
  ASSERT_TRUE(four.is_ok());

  EXPECT_LT(two.value().stats.makespan_seconds,
            one.value().stats.makespan_seconds);
  EXPECT_LE(four.value().stats.makespan_seconds,
            two.value().stats.makespan_seconds);
  EXPECT_EQ(four.value().stats.effective_streams, 4u);
  EXPECT_EQ(four.value().stats.pool_depth, 8u);
}

TEST(Pipeline, TimedModeReportsThroughputWithoutMatches) {
  gpusim::DeviceMemory mem(64u << 20);
  const ac::PatternSet patterns({std::string("ab"), std::string("cde")});
  const ac::Dfa dfa = ac::build_dfa(patterns, 8);
  kernels::DeviceDfa ddfa(mem, dfa);

  PipelineOptions opt;
  opt.batch_bytes = 64 << 10;
  opt.streams = 2;
  opt.mode = gpusim::SimMode::Timed;
  auto got = MatchPipeline(small_gpu(), mem, ddfa, opt).run(random_text(1 << 20, 43));
  ASSERT_TRUE(got.is_ok());
  EXPECT_TRUE(got.value().matches.empty());
  EXPECT_GT(got.value().stats.throughput_gbps(), 0);
  // Timing reuse: identical slice lengths reuse one simulated launch.
  EXPECT_EQ(got.value().stats.batches, 16u);
}

TEST(Engine, ScanMatchesSerialReference) {
  const std::vector<std::string> pats = {"he", "she", "his", "hers"};
  const ac::PatternSet patterns(pats);
  std::string text = random_text(5000, 47);
  text.replace(100, 6, "ushers");
  text.replace(2047, 3, "his");  // spans the default... no, interior

  EngineOptions eopt;
  eopt.gpu = small_gpu();
  eopt.batch_bytes = 1024;
  DeviceOptions dopt;
  dopt.gpu = eopt.gpu;
  auto device = Device::create(dopt);
  ASSERT_TRUE(device.is_ok()) << device.status().to_string();
  auto engine = Engine::create(device.value(), patterns, eopt);
  ASSERT_TRUE(engine.is_ok()) << engine.status().to_string();

  auto scan = engine.value().scan(text);
  ASSERT_TRUE(scan.is_ok()) << scan.status().to_string();
  EXPECT_EQ(scan.value().matches, ac::find_all(engine.value().dfa(), text));

  // Engines are reusable across scans.
  auto scan2 = engine.value().scan("ushers");
  ASSERT_TRUE(scan2.is_ok());
  EXPECT_EQ(scan2.value().matches.size(), 3u);  // she, he, hers
}

TEST(Engine, EmptyPatternSetFails) {
  auto device = Device::create({});
  ASSERT_TRUE(device.is_ok());
  auto engine = Engine::create(device.value(), ac::PatternSet{});
  ASSERT_FALSE(engine.is_ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(Engine, PfacVariantScans) {
  EngineOptions eopt;
  eopt.gpu = small_gpu();
  eopt.variant = KernelVariant::kPfac;
  eopt.batch_bytes = 512;
  DeviceOptions dopt;
  dopt.gpu = eopt.gpu;
  auto device = Device::create(dopt);
  ASSERT_TRUE(device.is_ok()) << device.status().to_string();
  auto engine = Engine::create(device.value(), ac::PatternSet({"ab", "ba"}), eopt);
  ASSERT_TRUE(engine.is_ok()) << engine.status().to_string();
  const std::string text = random_text(2000, 53);
  auto scan = engine.value().scan(text);
  ASSERT_TRUE(scan.is_ok()) << scan.status().to_string();
  EXPECT_EQ(scan.value().matches, ac::find_all(engine.value().dfa(), text));
}

}  // namespace
}  // namespace acgpu::pipeline
