// StreamSim: stream/event ordering, single-copy-engine serialisation,
// copy/compute overlap accounting, and functional data movement.
#include "gpusim/stream.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/error.h"

namespace acgpu::gpusim {
namespace {

GpuConfig test_config() {
  GpuConfig cfg = GpuConfig::gtx285();
  // Round numbers so expected timings are exact: 1 GB/s, no setup latency.
  cfg.pcie_bytes_per_second = 1e9;
  cfg.pcie_latency_seconds = 0;
  return cfg;
}

TEST(StreamSim, H2DMovesBytesImmediately) {
  DeviceMemory mem(1 << 20);
  StreamSim sim(test_config(), mem);
  const StreamId s = sim.create_stream();

  const std::string payload = "stream me";
  const DevAddr dst = mem.alloc(64);
  sim.memcpy_h2d(s, dst, payload.data(), payload.size());

  std::string back(payload.size(), '\0');
  mem.copy_out(back.data(), dst, payload.size());
  EXPECT_EQ(back, payload);
}

TEST(StreamSim, D2HMovesBytesImmediately) {
  DeviceMemory mem(1 << 20);
  StreamSim sim(test_config(), mem);
  const StreamId s = sim.create_stream();

  const DevAddr src = mem.alloc(64);
  const std::string payload = "round trip";
  mem.copy_in(src, payload.data(), payload.size());

  std::string back(payload.size(), '\0');
  sim.memcpy_d2h(s, back.data(), src, payload.size());
  EXPECT_EQ(back, payload);
}

TEST(StreamSim, TransferTimeIsLatencyPlusBandwidth) {
  GpuConfig cfg = test_config();
  cfg.pcie_latency_seconds = 1e-3;
  DeviceMemory mem(1 << 20);
  StreamSim sim(cfg, mem);
  EXPECT_DOUBLE_EQ(sim.transfer_seconds(2'000'000), 1e-3 + 2e-3);
}

TEST(StreamSim, FifoWithinOneStream) {
  DeviceMemory mem(1 << 20);
  StreamSim sim(test_config(), mem);
  const StreamId s = sim.create_stream();
  const DevAddr buf = mem.alloc(4096);
  std::vector<char> host(4096);

  sim.memcpy_h2d(s, buf, host.data(), 1000);      // 1 us at 1 GB/s... (1e-6 s)
  sim.charge_kernel(s, 5e-6, "k");
  sim.memcpy_d2h(s, host.data(), buf, 2000);

  const auto& ops = sim.timeline();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_DOUBLE_EQ(ops[0].start, 0);
  EXPECT_DOUBLE_EQ(ops[0].end, 1e-6);
  EXPECT_DOUBLE_EQ(ops[1].start, 1e-6);  // kernel waits for its stream's copy
  EXPECT_DOUBLE_EQ(ops[1].end, 6e-6);
  EXPECT_DOUBLE_EQ(ops[2].start, 6e-6);
  EXPECT_DOUBLE_EQ(ops[2].end, 8e-6);
  EXPECT_DOUBLE_EQ(sim.synchronize(), 8e-6);
}

TEST(StreamSim, CopiesSerialiseOnTheSingleCopyEngine) {
  DeviceMemory mem(1 << 20);
  StreamSim sim(test_config(), mem);
  const StreamId a = sim.create_stream();
  const StreamId b = sim.create_stream();
  const DevAddr buf = mem.alloc(4096);
  std::vector<char> host(4096);

  sim.memcpy_h2d(a, buf, host.data(), 1000);
  sim.memcpy_h2d(b, buf + 2048, host.data(), 1000);

  const auto& ops = sim.timeline();
  // Different streams, but GT200 has one DMA engine: back to back, not
  // concurrent.
  EXPECT_DOUBLE_EQ(ops[0].end, 1e-6);
  EXPECT_DOUBLE_EQ(ops[1].start, 1e-6);
  EXPECT_DOUBLE_EQ(ops[1].end, 2e-6);
}

TEST(StreamSim, CopyOverlapsComputeAcrossStreams) {
  DeviceMemory mem(1 << 20);
  StreamSim sim(test_config(), mem);
  const StreamId a = sim.create_stream();
  const StreamId b = sim.create_stream();
  const DevAddr buf = mem.alloc(4096);
  std::vector<char> host(4096);

  sim.memcpy_h2d(a, buf, host.data(), 1000);       // [0, 1us] copy engine
  sim.charge_kernel(a, 3e-6, "ka");                // [1us, 4us] compute
  sim.memcpy_h2d(b, buf + 2048, host.data(), 2000);  // [1us, 3us] copy engine

  const auto& ops = sim.timeline();
  EXPECT_DOUBLE_EQ(ops[1].start, 1e-6);
  EXPECT_DOUBLE_EQ(ops[2].start, 1e-6);  // b's copy runs under a's kernel

  const OverlapStats stats = sim.overlap();
  EXPECT_DOUBLE_EQ(stats.makespan, 4e-6);
  EXPECT_DOUBLE_EQ(stats.copy_busy, 3e-6);
  EXPECT_DOUBLE_EQ(stats.compute_busy, 3e-6);
  EXPECT_DOUBLE_EQ(stats.overlapped, 2e-6);  // [1us, 3us]
  EXPECT_DOUBLE_EQ(stats.overlap_ratio(), 2.0 / 3.0);
}

TEST(StreamSim, KernelsSerialiseOnTheComputeEngine) {
  DeviceMemory mem(1 << 20);
  StreamSim sim(test_config(), mem);
  const StreamId a = sim.create_stream();
  const StreamId b = sim.create_stream();

  sim.charge_kernel(a, 2e-6, "ka");
  sim.charge_kernel(b, 2e-6, "kb");  // GT200: no concurrent kernels

  const auto& ops = sim.timeline();
  EXPECT_DOUBLE_EQ(ops[0].end, 2e-6);
  EXPECT_DOUBLE_EQ(ops[1].start, 2e-6);
}

TEST(StreamSim, EventsOrderAcrossStreams) {
  DeviceMemory mem(1 << 20);
  StreamSim sim(test_config(), mem);
  const StreamId a = sim.create_stream();
  const StreamId b = sim.create_stream();

  sim.charge_kernel(a, 4e-6, "ka");
  const EventId e = sim.record_event(a);
  EXPECT_DOUBLE_EQ(sim.event_seconds(e), 4e-6);

  sim.wait_event(b, e);
  sim.charge_kernel(b, 1e-6, "kb");
  // b's kernel could start at 4us anyway (compute engine frees then), so use
  // a copy: it would start at 0 without the event dependency.
  const StreamId c = sim.create_stream();
  sim.wait_event(c, e);
  const DevAddr buf = mem.alloc(64);
  std::vector<char> host(64);
  sim.memcpy_h2d(c, buf, host.data(), 64);
  EXPECT_DOUBLE_EQ(sim.timeline().back().start, 4e-6);
}

TEST(StreamSim, WaitUntilDelaysNextOpOnly) {
  DeviceMemory mem(1 << 20);
  StreamSim sim(test_config(), mem);
  const StreamId s = sim.create_stream();

  sim.wait_until(s, 7e-6);
  sim.charge_kernel(s, 1e-6, "k1");
  sim.charge_kernel(s, 1e-6, "k2");

  const auto& ops = sim.timeline();
  EXPECT_DOUBLE_EQ(ops[0].start, 7e-6);
  EXPECT_DOUBLE_EQ(ops[1].start, 8e-6);  // no residual delay
}

TEST(StreamSim, StreamReadyTracksLastOp) {
  DeviceMemory mem(1 << 20);
  StreamSim sim(test_config(), mem);
  const StreamId a = sim.create_stream();
  const StreamId b = sim.create_stream();
  EXPECT_DOUBLE_EQ(sim.stream_ready(a), 0);
  sim.charge_kernel(a, 2e-6, "ka");
  EXPECT_DOUBLE_EQ(sim.stream_ready(a), 2e-6);
  EXPECT_DOUBLE_EQ(sim.stream_ready(b), 0);
}

TEST(StreamSim, InvalidIdsThrow) {
  DeviceMemory mem(1 << 20);
  StreamSim sim(test_config(), mem);
  EXPECT_THROW(sim.charge_kernel(0, 1e-6, "k"), Error);
  EXPECT_THROW(sim.event_seconds(0), Error);
  EXPECT_THROW(sim.op_end(0), Error);
}

TEST(StreamSim, MultipleCopyEnginesRunConcurrently) {
  GpuConfig cfg = test_config();
  cfg.copy_engines = 2;
  DeviceMemory mem(1 << 20);
  StreamSim sim(cfg, mem);
  const StreamId a = sim.create_stream();
  const StreamId b = sim.create_stream();
  const DevAddr buf = mem.alloc(4096);
  std::vector<char> host(4096);

  sim.memcpy_h2d(a, buf, host.data(), 1000);
  sim.memcpy_h2d(b, buf + 2048, host.data(), 1000);
  EXPECT_DOUBLE_EQ(sim.timeline()[1].start, 0);  // second engine picks it up
}

TEST(StreamSim, DedicatedReadbackEngineDuplexesTransfers) {
  GpuConfig cfg = test_config();
  cfg.readback_engines = 1;
  DeviceMemory mem(1 << 20);
  StreamSim sim(cfg, mem);
  const StreamId a = sim.create_stream();
  const StreamId b = sim.create_stream();
  const DevAddr buf = mem.alloc(4096);
  std::vector<char> host(4096);

  // An upload and a readback on different streams: full-duplex PCIe, both
  // start at t=0 instead of serialising on one DMA engine.
  sim.memcpy_h2d(a, buf, host.data(), 1000);
  sim.memcpy_d2h(b, host.data() + 2048, buf, 1000);
  const auto& ops = sim.timeline();
  EXPECT_DOUBLE_EQ(ops[0].start, 0);
  EXPECT_DOUBLE_EQ(ops[1].start, 0);

  // A second D2H queues behind the first on the readback engine, leaving
  // the upload engine free.
  sim.memcpy_d2h(b, host.data() + 3000, buf, 1000);
  sim.memcpy_h2d(a, buf + 2048, host.data(), 1000);
  EXPECT_DOUBLE_EQ(sim.timeline()[2].start, 1e-6);  // behind first D2H
  EXPECT_DOUBLE_EQ(sim.timeline()[3].start, 1e-6);  // behind first H2D only

  const OverlapStats ov = sim.overlap();
  EXPECT_DOUBLE_EQ(ov.h2d_busy, 2e-6);
  EXPECT_DOUBLE_EQ(ov.d2h_busy, 2e-6);
  // Both directions fully overlapped: the union of transfer intervals is
  // half the serialised total.
  EXPECT_DOUBLE_EQ(ov.copy_busy, 2e-6);
}

TEST(StreamSim, LegacySingleEngineStillSerialisesBothDirections) {
  // readback_engines = 0 (the GT200 default) must keep the historical
  // shared-engine behaviour: a D2H queues behind an in-flight H2D.
  DeviceMemory mem(1 << 20);
  StreamSim sim(test_config(), mem);
  const StreamId a = sim.create_stream();
  const StreamId b = sim.create_stream();
  const DevAddr buf = mem.alloc(4096);
  std::vector<char> host(4096);

  sim.memcpy_h2d(a, buf, host.data(), 1000);
  sim.memcpy_d2h(b, host.data() + 2048, buf, 1000);
  EXPECT_DOUBLE_EQ(sim.timeline()[1].start, 1e-6);

  const OverlapStats ov = sim.overlap();
  EXPECT_DOUBLE_EQ(ov.h2d_busy, 1e-6);
  EXPECT_DOUBLE_EQ(ov.d2h_busy, 1e-6);
  EXPECT_DOUBLE_EQ(ov.copy_busy, 2e-6);  // no duplexing: intervals abut
}

}  // namespace
}  // namespace acgpu::gpusim
