#include "ac/chunking.h"

#include <gtest/gtest.h>

#include "ac/serial_matcher.h"
#include "util/error.h"

namespace acgpu::ac {
namespace {

TEST(MakeChunks, EvenSplit) {
  const auto chunks = make_chunks(100, 25, 3);
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks[0].begin, 0u);
  EXPECT_EQ(chunks[0].end, 25u);
  EXPECT_EQ(chunks[0].scan_end, 28u);
  EXPECT_EQ(chunks[3].begin, 75u);
  EXPECT_EQ(chunks[3].end, 100u);
  EXPECT_EQ(chunks[3].scan_end, 100u);  // clipped at text end
}

TEST(MakeChunks, RaggedTail) {
  const auto chunks = make_chunks(10, 4, 2);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[2].begin, 8u);
  EXPECT_EQ(chunks[2].end, 10u);
  EXPECT_EQ(chunks[2].scan_end, 10u);
}

TEST(MakeChunks, SingleChunk) {
  const auto chunks = make_chunks(5, 100, 7);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].end, 5u);
  EXPECT_EQ(chunks[0].scan_end, 5u);
}

TEST(MakeChunks, EmptyText) {
  EXPECT_TRUE(make_chunks(0, 8, 2).empty());
}

TEST(MakeChunks, ZeroChunkSizeThrows) {
  EXPECT_THROW(make_chunks(10, 0, 0), Error);
}

TEST(MakeChunks, ChunksTileTheText) {
  const auto chunks = make_chunks(1000, 64, 15);
  std::uint64_t expect_begin = 0;
  for (const Chunk& c : chunks) {
    EXPECT_EQ(c.begin, expect_begin);
    EXPECT_GT(c.end, c.begin);
    EXPECT_GE(c.scan_end, c.end);
    EXPECT_LE(c.scan_end, 1000u);
    expect_begin = c.end;
  }
  EXPECT_EQ(expect_begin, 1000u);
}

TEST(RequiredOverlap, IsMaxLenMinusOne) {
  EXPECT_EQ(required_overlap(0), 0u);
  EXPECT_EQ(required_overlap(1), 0u);
  EXPECT_EQ(required_overlap(16), 15u);
}

TEST(ChunkOwnsMatch, StartInsideChunk) {
  const Chunk c{10, 20, 25};
  EXPECT_TRUE(chunk_owns_match(c, 12, 3));   // start 10
  EXPECT_TRUE(chunk_owns_match(c, 21, 3));   // start 19, ends in overlap
  EXPECT_FALSE(chunk_owns_match(c, 22, 3));  // start 20: next chunk's
  EXPECT_FALSE(chunk_owns_match(c, 11, 3));  // start 9: previous chunk's
}

TEST(FindAllChunked, BoundaryStraddlingMatchesFound) {
  Dfa dfa = build_dfa(PatternSet({"abcd"}));
  // Match straddles every chunk boundary for chunk_size 4.
  const std::string text = "xxabcdxxabcdxx";
  const auto expect = find_all(dfa, text);
  ASSERT_EQ(expect.size(), 2u);
  for (std::uint64_t cs : {1ull, 2ull, 3ull, 4ull, 5ull, 7ull, 100ull}) {
    auto got = find_all_chunked(dfa, text, cs);
    EXPECT_EQ(got, expect) << "chunk size " << cs;
  }
}

TEST(FindAllChunked, NoDuplicatesOnRepetitiveText) {
  Dfa dfa = build_dfa(PatternSet({"aa", "aaa"}));
  const std::string text(50, 'a');
  auto expect = find_all(dfa, text);
  std::sort(expect.begin(), expect.end());
  for (std::uint64_t cs : {1ull, 2ull, 3ull, 5ull, 8ull, 50ull}) {
    EXPECT_EQ(find_all_chunked(dfa, text, cs), expect) << "chunk size " << cs;
  }
}

TEST(FindAllChunked, PaperExample) {
  Dfa dfa = build_dfa(PatternSet({"he", "she", "his", "hers"}));
  const std::string text = "ushers ushers his sheep";
  auto expect = find_all(dfa, text);
  std::sort(expect.begin(), expect.end());
  for (std::uint64_t cs : {2ull, 4ull, 6ull, 16ull})
    EXPECT_EQ(find_all_chunked(dfa, text, cs), expect);
}

}  // namespace
}  // namespace acgpu::ac
