#include "kernels/match_output.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace acgpu::kernels {
namespace {

TEST(MatchBuffer, EmptyCollect) {
  gpusim::DeviceMemory mem(1 << 16);
  MatchBuffer buf(mem, 8, 4);
  const auto c = buf.collect(mem);
  EXPECT_TRUE(c.matches.empty());
  EXPECT_EQ(c.total_reported, 0u);
  EXPECT_FALSE(c.overflowed);
}

TEST(MatchBuffer, CollectReadsRecords) {
  gpusim::DeviceMemory mem(1 << 16);
  MatchBuffer buf(mem, 4, 4);
  // Thread 2 reports two matches.
  mem.store_u32(buf.count_addr(2), 2);
  mem.store_u32(buf.record_addr(2, 0), 100);     // end
  mem.store_u32(buf.record_addr(2, 0) + 4, 7);   // pattern
  mem.store_u32(buf.record_addr(2, 1), 50);
  mem.store_u32(buf.record_addr(2, 1) + 4, 3);
  const auto c = buf.collect(mem);
  ASSERT_EQ(c.matches.size(), 2u);
  // Sorted by (end, pattern).
  EXPECT_EQ(c.matches[0], (ac::Match{50, 3}));
  EXPECT_EQ(c.matches[1], (ac::Match{100, 7}));
  EXPECT_EQ(c.total_reported, 2u);
}

TEST(MatchBuffer, OverflowDetected) {
  gpusim::DeviceMemory mem(1 << 16);
  MatchBuffer buf(mem, 2, 2);
  mem.store_u32(buf.count_addr(0), 5);  // thread counted 5, capacity 2
  mem.store_u32(buf.record_addr(0, 0), 1);
  mem.store_u32(buf.record_addr(0, 1), 2);
  const auto c = buf.collect(mem);
  EXPECT_TRUE(c.overflowed);
  EXPECT_EQ(c.total_reported, 5u);
  EXPECT_EQ(c.matches.size(), 2u);  // only the stored records
}

TEST(MatchBuffer, RecordAddressLayout) {
  gpusim::DeviceMemory mem(1 << 16);
  MatchBuffer buf(mem, 4, 3);
  EXPECT_EQ(buf.count_addr(1) - buf.count_addr(0), 4u);
  EXPECT_EQ(buf.record_addr(0, 1) - buf.record_addr(0, 0), 8u);
  EXPECT_EQ(buf.record_addr(1, 0) - buf.record_addr(0, 0), 3u * 8);
}

TEST(MatchBuffer, CountsZeroInitialised) {
  gpusim::DeviceMemory mem(1 << 16);
  // Dirty the memory first to prove the constructor clears counts.
  const auto probe = mem.alloc(64);
  mem.fill(probe, 0xff, 64);
  MatchBuffer buf(mem, 16, 2);
  for (std::uint64_t t = 0; t < 16; ++t)
    EXPECT_EQ(mem.load_u32(buf.count_addr(t)), 0u);
}

TEST(MatchBuffer, ValidatesArguments) {
  gpusim::DeviceMemory mem(1 << 16);
  EXPECT_THROW(MatchBuffer(mem, 0, 4), Error);
  EXPECT_THROW(MatchBuffer(mem, 4, 0), Error);
}

}  // namespace
}  // namespace acgpu::kernels
